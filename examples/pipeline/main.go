// Pipeline: stream-style "hand-off" processing, one of the motivating
// applications the paper cites for synchronous queues.
//
// Three stages — tokenize, transform, emit — are connected by fair
// synchronous queues, so the pipeline has zero internal buffering: a stage
// finishing an item hands it directly to the next stage and observes
// backpressure immediately. The tokenizer is a batched stage: it hands the
// whole token burst over with one PutAllContext call (the items still
// rendezvous with the transformer one by one — batching amortizes the
// producer's claim-and-wait machinery, it does not introduce a buffer),
// and the emitter drains with TakeBatchContext, waiting only for the
// first item of each batch. A context cancels the whole pipeline
// mid-stream, demonstrating the cancellation-aware operations; the
// shutdown is clean because no element can be stranded in a buffer.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"synchq"
)

func main() {
	words := synchq.NewFair[string]()
	shouts := synchq.NewFair[string]()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan struct{})

	// Stage 1: tokenize a document and hand the whole burst off with one
	// batched call. On a partial fill the error reports how far it got and
	// the retry slice holds the rest — here cancellation just ends the run.
	go func() {
		text := "the quick brown fox jumps over the lazy dog and keeps running forever"
		if n, err := words.PutAllContext(ctx, strings.Fields(text)); err != nil {
			fmt.Printf("tokenizer: stopping after %d words: %v\n", n, err)
		}
	}()

	// Stage 2: transform each word and hand it onward.
	go func() {
		for {
			w, err := words.TakeContext(ctx)
			if err != nil {
				fmt.Println("transformer: stopping:", err)
				return
			}
			out := strings.ToUpper(w) + "!"
			if err := shouts.PutContext(ctx, out); err != nil {
				fmt.Println("transformer: stopping:", err)
				return
			}
		}
	}()

	// Stage 3: emit the first eight results in batches — each TakeBatch
	// waits for one value and sweeps up whatever else is already committed
	// — then cancel everything.
	go func() {
		defer close(done)
		emitted := 0
		for emitted < 8 {
			batch, err := shouts.TakeBatchContext(ctx, 8-emitted)
			if err != nil {
				fmt.Println("emitter: stopping:", err)
				return
			}
			for _, s := range batch {
				emitted++
				fmt.Printf("emit %d: %s\n", emitted, s)
			}
		}
		fmt.Println("emitter: done — cancelling the rest of the stream")
		cancel()
	}()

	<-done
	// Give the upstream stages a moment to observe cancellation.
	time.Sleep(50 * time.Millisecond)
	fmt.Println("pipeline: shut down with no buffered residue:",
		words.IsEmpty() && shouts.IsEmpty())
}
