// Pipeline: stream-style "hand-off" processing, one of the motivating
// applications the paper cites for synchronous queues.
//
// Three stages — tokenize, transform, emit — are connected by fair
// synchronous queues, so the pipeline has zero internal buffering: a stage
// finishing an item hands it directly to the next stage and observes
// backpressure immediately. A context cancels the whole pipeline
// mid-stream, demonstrating the cancellation-aware operations; the
// shutdown is clean because no element can be stranded in a buffer.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"synchq"
)

func main() {
	words := synchq.NewFair[string]()
	shouts := synchq.NewFair[string]()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan struct{})

	// Stage 1: tokenize a document and hand each word off.
	go func() {
		text := "the quick brown fox jumps over the lazy dog and keeps running forever"
		for _, w := range strings.Fields(text) {
			if err := words.PutContext(ctx, w); err != nil {
				fmt.Println("tokenizer: stopping:", err)
				return
			}
		}
	}()

	// Stage 2: transform each word and hand it onward.
	go func() {
		for {
			w, err := words.TakeContext(ctx)
			if err != nil {
				fmt.Println("transformer: stopping:", err)
				return
			}
			out := strings.ToUpper(w) + "!"
			if err := shouts.PutContext(ctx, out); err != nil {
				fmt.Println("transformer: stopping:", err)
				return
			}
		}
	}()

	// Stage 3: emit the first eight results, then cancel everything.
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			s, err := shouts.TakeContext(ctx)
			if err != nil {
				fmt.Println("emitter: stopping:", err)
				return
			}
			fmt.Printf("emit %d: %s\n", i+1, s)
		}
		fmt.Println("emitter: done — cancelling the rest of the stream")
		cancel()
	}()

	<-done
	// Give the upstream stages a moment to observe cancellation.
	time.Sleep(50 * time.Millisecond)
	fmt.Println("pipeline: shut down with no buffered residue:",
		words.IsEmpty() && shouts.IsEmpty())
}
