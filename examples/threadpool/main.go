// Threadpool: the paper's "real-world" scenario — a cached thread pool
// whose task hand-off runs through a synchronous queue, the Go analogue of
// java.util.concurrent.ThreadPoolExecutor with newCachedThreadPool.
//
// The pool grows when a burst of tasks arrives faster than idle workers
// can absorb it, hands tasks directly to idle workers when it can (the
// synchronous queue's Offer succeeds only if a worker is waiting in Poll),
// and shrinks again when workers see no work for the keep-alive interval.
// The example prints the pool's vital signs after each phase so the
// grow/handoff/shrink lifecycle is visible.
//
// The later phases exercise the executor tier layered on the hand-off
// core: deadline-aware admission with SubmitContext, and a multi-phase
// graceful drain whose conservation ledger balances exactly — every
// accepted task either ran or was deliberately shed, none lost.
//
// Run with:
//
//	go run ./examples/threadpool
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"synchq"
	"synchq/pool"
)

func main() {
	q := synchq.NewUnfair[pool.Task]()
	p := pool.New(q, pool.Config{
		KeepAlive: 200 * time.Millisecond,
	})

	report := func(phase string) {
		st := p.Stats()
		fmt.Printf("%-22s live=%-3d spawned=%-3d completed=%-4d handoffs=%d\n",
			phase, st.Live, st.Spawned, st.Completed, st.Handoffs)
	}

	// Phase 1: a burst of slow tasks forces the pool to grow — no worker
	// is ever idle, so every submission spawns.
	var burst sync.WaitGroup
	for i := 0; i < 8; i++ {
		burst.Add(1)
		if err := p.Submit(func() {
			defer burst.Done()
			time.Sleep(50 * time.Millisecond) // simulated work
		}); err != nil {
			panic(err)
		}
	}
	burst.Wait()
	report("after burst:")

	// Phase 2: a trickle of quick tasks is served by idle workers via
	// synchronous hand-off; the pool should not grow further.
	for i := 0; i < 100; i++ {
		var one sync.WaitGroup
		one.Add(1)
		if err := p.Submit(func() { one.Done() }); err != nil {
			panic(err)
		}
		one.Wait()
	}
	report("after trickle:")

	// Phase 3: idle beyond keep-alive: workers retire themselves.
	time.Sleep(500 * time.Millisecond)
	report("after idle period:")

	// Futures: submit work with a result.
	fut, err := pool.SubmitFunc(p, func() (int, error) {
		sum := 0
		for i := 1; i <= 1000; i++ {
			sum += i
		}
		return sum, nil
	})
	if err != nil {
		panic(err)
	}
	if v, err := fut.Get(); err == nil {
		fmt.Println("future result:", v)
	}

	// Phase 4: deadline-aware admission. A submission whose context is
	// already done is refused at the door with the context's own error;
	// a live deadline would instead travel with the task, shedding it
	// before dispatch if it expired while queued.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	err = p.SubmitContext(ctx, func() { fmt.Println("never runs") })
	cancel()
	fmt.Println("expired submission refused:", err)

	// Phase 5: graceful drain instead of an abrupt shutdown. Admission
	// quiesces, the workers finish the accepted backlog within the
	// context's bound, and the conservation ledger settles exactly:
	// Accepted == Completed + Shed + Returned.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Second)
	res := p.Drain(dctx)
	dcancel()
	st := p.Stats()
	fmt.Printf("drained=%v forced=%v returned=%d ledger-gap=%d\n",
		res.Drained, res.Forced, len(res.Returned), st.ConservationGap())
	report("after drain:")
}
