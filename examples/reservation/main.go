// Reservation: the paper's first-class request/follow-up interface
// (§2.2, Listing 2) — the feature that distinguishes a dual data structure
// from a "totalized" partial operation.
//
// A worker that needs an item does not have to choose between blocking
// (Take) and contention-generating retry loops (Poll in a loop). It
// registers a reservation — which immediately claims its place in the fair
// queue's FIFO order — and keeps doing useful work, checking the ticket
// with contention-free follow-ups: each unsuccessful TryFollowup reads
// only the reservation's own node, so the polling worker never slows
// anyone else down. When the worker runs out of patience it aborts the
// reservation; if an item arrived in the meantime, the abort fails and the
// follow-up collects it.
//
// Run with:
//
//	go run ./examples/reservation
package main

import (
	"fmt"
	"time"

	"synchq"
)

func main() {
	q := synchq.NewFair[string]()

	// A producer will show up a little later.
	go func() {
		time.Sleep(30 * time.Millisecond)
		q.Put("the result")
	}()

	// Register interest now: our place in line is claimed even though we
	// are not blocked.
	_, ticket, ok := q.TakeReserve()
	if ok {
		fmt.Println("immediate hand-off (producer was already waiting)")
		return
	}

	// Overlap the wait with useful work, polling the ticket between
	// batches. Unsuccessful follow-ups are contention-free.
	batches := 0
	for {
		doUsefulWork(&batches)
		if v, ok := ticket.TryFollowup(); ok {
			fmt.Printf("received %q after %d work batches\n", v, batches)
			break
		}
	}

	// Second act: nobody produces, so the reservation is abandoned.
	_, ticket2, _ := q.TakeReserve()
	for i := 0; i < 3; i++ {
		doUsefulWork(&batches)
		if _, ok := ticket2.TryFollowup(); ok {
			fmt.Println("unexpected delivery")
			return
		}
	}
	if ticket2.Abort() {
		fmt.Println("no producer appeared; reservation aborted cleanly")
	} else {
		// Lost the race to a late producer: the paper's Listing 2
		// handles exactly this by re-running the follow-up.
		v, _ := ticket2.TryFollowup()
		fmt.Printf("abort lost to a late producer; collected %q\n", v)
	}
}

func doUsefulWork(batches *int) {
	time.Sleep(10 * time.Millisecond) // simulated batch of other work
	*batches++
}
