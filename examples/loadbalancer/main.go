// Loadbalancer: a messaging front-end over a TransferQueue, the paper's §5
// scenario of "messaging frameworks that allow messages to be either
// synchronous or asynchronous."
//
// A dispatcher routes requests to a crew of workers through one
// TransferQueue. Fire-and-forget events use Put (asynchronous: the
// dispatcher never waits). Request/replies use Transfer (synchronous: the
// dispatcher's hand-off completes only when a worker has the message, so a
// timed TryTransfer doubles as an instant "are all workers busy?" probe
// that triggers shedding).
//
// The second half upgrades the front-end to the executor tier: a bounded
// pool with a ShedOldest admission budget absorbs an overload burst by
// evicting the stalest requests, and a deadline-bounded graceful drain
// returns the unserved backlog to the dispatcher instead of losing it.
//
// Run with:
//
//	go run ./examples/loadbalancer
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"synchq"
	"synchq/pool"
)

// Message is either an asynchronous event or a synchronous request
// carrying a reply channel.
type Message struct {
	ID    int
	Event string
	Reply chan string // nil for fire-and-forget events
}

func main() {
	q := synchq.NewTransferQueue[Message]()
	var handled, shed atomic.Int64

	// Worker crew.
	const workers = 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				m, ok := q.PollTimeout(50 * time.Millisecond)
				if !ok {
					select {
					case <-stop:
						return
					default:
						continue
					}
				}
				time.Sleep(2 * time.Millisecond) // simulated work
				handled.Add(1)
				if m.Reply != nil {
					m.Reply <- fmt.Sprintf("worker %d served request %d", id, m.ID)
				}
			}
		}(w)
	}

	// Fire-and-forget events: Put never blocks the dispatcher, even when
	// every worker is busy — the events buffer in arrival order.
	for i := 0; i < 10; i++ {
		q.Put(Message{ID: i, Event: "audit-log"})
	}
	fmt.Println("dispatched 10 async events without waiting")

	// Synchronous requests: hand off directly to a worker, shedding load
	// when no worker becomes free within the deadline.
	for i := 100; i < 110; i++ {
		reply := make(chan string, 1)
		m := Message{ID: i, Reply: reply}
		if q.TransferTimeout(m, 10*time.Millisecond) {
			fmt.Println(<-reply)
		} else {
			shed.Add(1)
			fmt.Printf("request %d shed: all workers busy\n", i)
		}
	}

	// Drain: wait for the async backlog to be consumed.
	deadline := time.Now().Add(5 * time.Second)
	for q.HasBufferedData() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	fmt.Printf("handled=%d shed=%d buffered-left=%v\n",
		handled.Load(), shed.Load(), q.HasBufferedData())

	// Executor front-end: the same shedding idea, expressed as admission
	// policy instead of hand-coded probes. Two workers, an admission
	// budget of four, newest-wins eviction under overload.
	frontend := pool.New(pool.NewBuffered(), pool.Config{
		CoreWorkers:  2,
		MaxWorkers:   2,
		MaxPending:   4,
		OnSaturation: pool.ShedOldest,
		KeepAlive:    time.Second,
	})

	// Wedge both workers so an arrival burst lands entirely in the
	// admission budget.
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		if err := frontend.Submit(func() { <-release }); err != nil {
			panic(err)
		}
	}
	for frontend.Stats().Active < 2 {
		time.Sleep(time.Millisecond)
	}
	var served atomic.Int64
	for i := 200; i < 208; i++ {
		if err := frontend.Submit(func() { served.Add(1) }); err != nil {
			panic(err)
		}
	}
	st := frontend.Stats()
	fmt.Printf("burst of 8: pending=%d shed-oldest=%d\n", st.Pending, st.Shed)

	// Graceful drain with a tight deadline: the wedged workers outlast
	// it, so the drain forces and hands the unserved requests back. The
	// dispatcher re-runs them — nothing is lost, and the conservation
	// ledger balances exactly.
	go func() { time.Sleep(50 * time.Millisecond); close(release) }()
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	res := frontend.Drain(dctx)
	dcancel()
	for _, task := range res.Returned {
		task() // requeue or serve dispatcher-side
	}
	st = frontend.Stats()
	fmt.Printf("drain: returned=%d served-total=%d ledger-gap=%d\n",
		len(res.Returned), served.Load(), st.ConservationGap())
}
