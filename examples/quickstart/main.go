// Quickstart: the smallest useful synchq program.
//
// A producer and a consumer rendezvous through an unfair synchronous
// queue: Put blocks until Take arrives and vice versa, so every transfer
// is a handshake. The example then shows the polar operations — Offer and
// Poll — which refuse to wait, and a timed offer with bounded patience.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"synchq"
)

func main() {
	q := synchq.NewUnfair[string]()

	// Demand operations: both sides wait for the handshake.
	go func() {
		// The consumer arrives a moment later; Put waits for it.
		time.Sleep(50 * time.Millisecond)
		fmt.Println("consumer: took", q.Take())
	}()
	fmt.Println("producer: handing off (blocks until taken)...")
	q.Put("hello")
	fmt.Println("producer: handoff complete")

	// Polar operations: succeed only if a counterpart is already there.
	if !q.Offer("nobody is waiting") {
		fmt.Println("offer: refused — no consumer waiting")
	}
	if _, ok := q.Poll(); !ok {
		fmt.Println("poll: refused — no producer waiting")
	}

	// Timed operations: wait, but only so long.
	go func() {
		time.Sleep(20 * time.Millisecond)
		if v, ok := q.PollTimeout(time.Second); ok {
			fmt.Println("consumer: polled", v)
		}
	}()
	if q.OfferTimeout("patient hello", time.Second) {
		fmt.Println("offer: accepted within patience")
	}

	// The fair variant pairs waiters strictly first-come-first-served.
	fair := synchq.NewFair[int]()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 3; i++ {
			fmt.Println("fair consumer: took", fair.Take())
		}
		close(done)
	}()
	for i := 1; i <= 3; i++ {
		fair.Put(i) // arrives in order 1, 2, 3 — delivered in that order
	}
	<-done
}
