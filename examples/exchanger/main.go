// Exchanger: pairwise buffer swapping through the elimination-based
// exchange channel (Scherer, Lea & Scott 2005), the structure behind the
// paper's §5 elimination discussion.
//
// A classic use: double-buffering between a filler and a drainer. The
// filler fills a buffer while the drainer empties the other; when both are
// ready they *swap* buffers through the Exchanger in one rendezvous — no
// allocation, no copying, no queue.
//
// The second part demonstrates a genetic-algorithm-style population mixer:
// worker goroutines pair up anonymously and trade random elements of their
// populations, a workload where any two partners are equally useful and
// elimination spreads the meeting points under contention.
//
// Run with:
//
//	go run ./examples/exchanger
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"synchq"
)

func main() {
	doubleBuffering()
	populationMixing()
}

func doubleBuffering() {
	fmt.Println("— double buffering —")
	x := synchq.NewExchanger[[]int]()
	const rounds = 3

	var wg sync.WaitGroup
	wg.Add(2)

	// Filler: fills its current buffer, then trades it for an empty one.
	go func() {
		defer wg.Done()
		buf := make([]int, 0, 4)
		for r := 0; r < rounds; r++ {
			for i := 0; i < 4; i++ {
				buf = append(buf, r*10+i)
			}
			buf = x.Exchange(buf) // full out, empty in
		}
	}()

	// Drainer: hands over an empty buffer, receives a full one, drains it.
	go func() {
		defer wg.Done()
		buf := make([]int, 0, 4)
		for r := 0; r < rounds; r++ {
			full := x.Exchange(buf[:0])
			fmt.Printf("drained round %d: %v\n", r, full)
			buf = full
		}
	}()
	wg.Wait()
}

func populationMixing() {
	fmt.Println("— population mixing —")
	x := synchq.NewExchanger[int]()
	const workers = 6
	const generations = 200

	sums := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id), 42))
			fitness := id * 100 // each worker starts with a distinctive gene pool
			for g := 0; g < generations; g++ {
				gene := fitness + rng.IntN(10)
				// Trade with whoever shows up; with an odd party
				// count a worker could wait forever, so bounded
				// patience keeps the system live.
				if got, ok := x.ExchangeTimeout(gene, 10*time.Millisecond); ok {
					fitness = (fitness + got) / 2
				}
			}
			sums[id] = fitness
		}(w)
	}
	wg.Wait()
	fmt.Println("final fitness per worker (mixed toward each other):", sums)
}
