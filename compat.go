package synchq

// Compatibility shim: the package's original constructor wrappers, kept
// working forever but superseded by the options API (New /
// NewEliminatingQueue with the Fair, Sharded, AutoShard, Segmented,
// Eliminating and Instrument options). New code should use the options
// API — it composes (one options slice configures the backing structure,
// the front-end and the instrumentation together) where these wrappers do
// not. Everything deprecated lives in this one file so the live API
// surface stays readable; the api_golden_test pins both.

import (
	"time"

	"synchq/internal/exchanger"
)

// NewFair returns the paper's fair synchronous queue (nonblocking dual
// queue): waiting producers and consumers are paired in strict FIFO order.
//
// Deprecated: use New with the Fair(true) option, which composes with the
// rest of the options API (Sharded, Segmented, Instrument, …).
func NewFair[T any]() *SynchronousQueue[T] { return New[T](Fair(true)) }

// NewUnfair returns the paper's unfair synchronous queue (nonblocking dual
// stack): the most recently arrived waiter is paired first, which tends to
// improve cache and scheduling locality.
//
// Deprecated: use New with the Fair(false) option (or no options at all —
// unfair is the default, matching java.util.concurrent.SynchronousQueue).
func NewUnfair[T any]() *SynchronousQueue[T] { return New[T](Fair(false)) }

// NewEliminating wraps q with a static elimination front-end. patience
// bounds the arena attempt on each Put/Take (a few microseconds is
// typical); slots sizes the arena (0 for the platform default).
//
// Deprecated: use NewEliminatingQueue with the Eliminating option, which
// builds the backing queue and the arena from one options slice and lets
// Instrument cover both. NewEliminating remains for callers that need to
// wrap an existing queue; it behaves as it always has (the arena inherits
// q's instrumentation when q has any).
func NewEliminating[T any](q *SynchronousQueue[T], slots int, patience time.Duration) *EliminatingQueue[T] {
	if patience <= 0 {
		patience = 5 * time.Microsecond
	}
	return &EliminatingQueue[T]{
		q:        q,
		arena:    exchanger.NewArena[T](slots).SetMetrics(q.inst.handle()),
		patience: patience,
		m:        q.inst.handle(),
		inst:     q.inst,
	}
}

// NewEliminatingAdaptive wraps q with the self-tuning elimination
// front-end (see EliminatingAdaptive).
//
// Deprecated: use NewEliminatingQueue, whose default front-end is the
// adaptive one. NewEliminatingAdaptive remains for callers that need to
// wrap an existing queue.
func NewEliminatingAdaptive[T any](q *SynchronousQueue[T]) *EliminatingQueue[T] {
	return &EliminatingQueue[T]{
		q:     q,
		arena: exchanger.NewArenaAdaptive[T](0).SetMetrics(q.inst.handle()),
		m:     q.inst.handle(),
		inst:  q.inst,
	}
}
