package synchq

import (
	"context"
	"sync"
	"testing"
	"time"
)

// Public-surface tests for the Sharded option and the adaptive eliminating
// queue: the compositions the multi-core PR added on top of the core
// structures, exercised through the same API the README documents.

func TestShardedOptionRoundTrip(t *testing.T) {
	q := New[int](Fair(true), Sharded(4))
	if got := q.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	if !q.Fair() {
		t.Error("Fair() = false for a fair sharded queue")
	}

	const n = 2000
	const workers = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	sum := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < n/workers; i++ {
				local += q.Take()
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < n/workers; i++ {
				q.Put(base + i)
			}
		}(w * (n / workers))
	}
	wg.Wait()
	if want := n * (n - 1) / 2; sum != want {
		t.Errorf("sum of transfers = %d, want %d", sum, want)
	}
	if !q.IsEmpty() {
		t.Error("sharded queue not empty after balanced run")
	}
}

func TestShardedOptionRounding(t *testing.T) {
	if got := New[int](Sharded(3)).Shards(); got != 4 {
		t.Errorf("Sharded(3) built %d shards, want 4", got)
	}
	// Sharded(0) now means adaptive: the fabric starts collapsed at
	// width 1 with a GOMAXPROCS-sized ceiling.
	q0 := New[int](Sharded(0))
	if got := q0.Shards(); got != 1 {
		t.Errorf("Sharded(0) starts at effective width %d, want 1 (adaptive)", got)
	}
	if got := q0.MaxShards(); got < 1 {
		t.Errorf("Sharded(0) ceiling = %d, want >= 1 (GOMAXPROCS-sized)", got)
	}
	if st, ok := q0.FabricStats(); !ok || !st.Adaptive {
		t.Errorf("Sharded(0) FabricStats = %+v, %v; want adaptive fabric", st, ok)
	}
	if got := New[int]().Shards(); got != 1 {
		t.Errorf("unsharded queue reports Shards() = %d, want 1", got)
	}
}

func TestShardedContextAndClose(t *testing.T) {
	q := New[int](Fair(true), Sharded(2))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := q.TakeContext(ctx); err != ErrTimeout {
		t.Errorf("TakeContext on empty sharded queue = %v, want ErrTimeout", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := q.TakeContext(context.Background())
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("TakeContext after Close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TakeContext stranded after Close")
	}
	if !q.Closed() {
		t.Error("Closed() = false after Close")
	}
	if err := q.PutContext(context.Background(), 1); err != ErrClosed {
		t.Errorf("PutContext on closed sharded queue = %v, want ErrClosed", err)
	}
}

func TestShardedUnfair(t *testing.T) {
	q := New[int](Fair(false), Sharded(2))
	done := make(chan int)
	go func() { done <- q.Take() }()
	deadline := time.Now().Add(2 * time.Second)
	for !q.Offer(5) {
		if time.Now().After(deadline) {
			t.Fatal("Offer never found the waiting consumer")
		}
		time.Sleep(time.Millisecond)
	}
	if got := <-done; got != 5 {
		t.Errorf("Take = %d, want 5", got)
	}
}

func TestEliminatingAdaptiveRoundTrip(t *testing.T) {
	e := NewEliminatingAdaptive(NewFair[int]())
	if !e.Adaptive() {
		t.Fatal("NewEliminatingAdaptive reports Adaptive() = false")
	}
	const n = 1000
	done := make(chan int)
	go func() {
		sum := 0
		for i := 0; i < n; i++ {
			sum += e.Take()
		}
		done <- sum
	}()
	for i := 0; i < n; i++ {
		e.Put(i)
	}
	if got := <-done; got != n*(n-1)/2 {
		t.Errorf("sum = %d, want %d", got, n*(n-1)/2)
	}
	if !e.IsEmpty() {
		t.Error("eliminating queue not empty after balanced run")
	}
}

func TestEliminatingAdaptiveParitySurface(t *testing.T) {
	e := NewEliminatingAdaptive(NewFair[int]())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := e.TakeContext(ctx); err != ErrTimeout {
		t.Errorf("TakeContext = %v, want ErrTimeout", err)
	}
	if ok := e.OfferWait(1, time.Now().Add(5*time.Millisecond), nil); ok {
		t.Error("OfferWait succeeded with no consumer")
	}
	if _, ok := e.PollWait(time.Now().Add(5*time.Millisecond), nil); ok {
		t.Error("PollWait succeeded with no producer")
	}
	if e.HasWaitingConsumer() || e.HasWaitingProducer() || !e.IsEmpty() {
		t.Error("empty eliminating queue reports waiters")
	}

	go func() {
		time.Sleep(2 * time.Millisecond)
		e.Put(9)
	}()
	if v, err := e.TakeContext(context.Background()); err != nil || v != 9 {
		t.Errorf("TakeContext = (%d,%v), want (9,nil)", v, err)
	}

	e.Close()
	if !e.Closed() {
		t.Error("Closed() = false after Close")
	}
	if err := e.PutContext(context.Background(), 1); err != ErrClosed {
		t.Errorf("PutContext on closed eliminating queue = %v, want ErrClosed", err)
	}
	if _, err := e.TakeContext(context.Background()); err != ErrClosed {
		t.Errorf("TakeContext on closed eliminating queue = %v, want ErrClosed", err)
	}
}

func TestEliminatingAdaptiveSharded(t *testing.T) {
	// The two features compose: an adaptive arena in front of a sharded
	// fair queue — the configuration the scaling benchmark headlines.
	e := NewEliminatingAdaptive(New[int](Fair(true), Sharded(2)))
	const n = 500
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			e.Take()
		}
		close(done)
	}()
	for i := 0; i < n; i++ {
		e.Put(i)
	}
	<-done
	if !e.IsEmpty() {
		t.Error("composed queue not empty after balanced run")
	}
}
