package pool

// History-bridge chaos tests: the executor tier's contract, expressed in
// the same recorded-history vocabulary the core structures are verified
// with. A Submit that returns nil is a successful Put of a unique value;
// the task's execution is the matching Take. Conservation then reads
// "every accepted task ran exactly once — none lost, none run twice" and
// is checked by verify.CheckClassified over the bridged history, with the
// backing synchronous queue running under the deterministic fault
// injector. Synchrony deliberately does not apply: execution is
// asynchronous, so the synchrony class of the classifier is ignored here
// (that asymmetry is exactly why the classifier splits its verdicts).

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synchq/internal/core"
	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/verify"
)

// chaosQueue adapts a fault-injected dual queue to the pool's Queue.
type chaosQueue struct{ q *core.DualQueue[Task] }

func (cq chaosQueue) Offer(t Task) bool                        { return cq.q.Offer(t) }
func (cq chaosQueue) PollTimeout(d time.Duration) (Task, bool) { return cq.q.PollTimeout(d) }

// bridgedPool runs a submission storm against a pool whose hand-off queue
// is under chaos injection and returns the bridged history.
func bridgedPool(t *testing.T, seed uint64, submitters, perSubmitter int, keepAlive time.Duration) []verify.Op {
	t.Helper()
	inj := fault.Chaos(seed)
	q := core.NewDualQueue[Task](core.WaitConfig{Metrics: metrics.New(), Fault: inj})
	p := New(chaosQueue{q}, Config{KeepAlive: keepAlive, MaxWorkers: 16})

	rec := verify.NewRecorder()
	// Executions are recorded on a dedicated log per worker-side value:
	// tasks may run on any worker goroutine, so the record itself is
	// funneled through a mutex-guarded log (contention here is fine — the
	// bridge measures the pool, not the recorder).
	var execMu sync.Mutex
	execLog := rec.NewThread()

	var accepted, executed atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			log := rec.NewThread()
			for seq := int64(0); seq < int64(perSubmitter); seq++ {
				v := id<<40 | seq
				inv := log.Begin()
				err := p.Submit(func() {
					execMu.Lock()
					execInv := execLog.Begin()
					execLog.End(verify.Take, v, execInv, true)
					execMu.Unlock()
					executed.Add(1)
				})
				log.End(verify.Put, v, inv, err == nil)
				if err == nil {
					accepted.Add(1)
				}
			}
		}(int64(s))
	}
	wg.Wait()
	p.Shutdown()
	p.Wait()
	q.Close()

	if acc, exe := accepted.Load(), executed.Load(); acc != exe {
		t.Fatalf("accepted %d tasks but executed %d", acc, exe)
	}
	return rec.History()
}

func TestPoolChaosConservation(t *testing.T) {
	for _, seed := range []uint64{1, 42, 1979} {
		history := bridgedPool(t, seed, 8, 200, 2*time.Millisecond)
		c := verify.CheckClassified(history, true)
		// Only the conservation class applies to an asynchronous tier.
		for _, e := range c.Conservation {
			t.Errorf("seed %d: %s", seed, e)
		}
		if c.Transfers == 0 && len(c.Synchrony) == 0 {
			t.Errorf("seed %d: no task executions recorded", seed)
		}
	}
}

// TestPoolChaosWorkerChurn uses a near-zero keep-alive so workers retire
// between submissions constantly: every hand-off then crosses the
// spawn/retire race, the queue's timeout and clean paths run under
// injected CAS failures, and conservation must still hold.
func TestPoolChaosWorkerChurn(t *testing.T) {
	history := bridgedPool(t, 7, 4, 300, 50*time.Microsecond)
	c := verify.CheckClassified(history, true)
	for _, e := range c.Conservation {
		t.Error(e)
	}
}

// chaosWaitQueue adapts the fault-injected dual queue to the pool's
// WaitQueue surface, so blocking offers and cancelable idle polls run the
// queue's deadline/cancel paths under injection (the production shape).
type chaosWaitQueue struct{ q *core.DualQueue[Task] }

func (cq chaosWaitQueue) Offer(t Task) bool                        { return cq.q.Offer(t) }
func (cq chaosWaitQueue) PollTimeout(d time.Duration) (Task, bool) { return cq.q.PollTimeout(d) }
func (cq chaosWaitQueue) Close()                                   { cq.q.Close() }
func (cq chaosWaitQueue) OfferWait(t Task, deadline time.Time, cancel <-chan struct{}) bool {
	return cq.q.PutDeadline(t, deadline, cancel) == core.OK
}
func (cq chaosWaitQueue) PollWait(deadline time.Time, cancel <-chan struct{}) (Task, bool) {
	v, st := cq.q.TakeDeadline(deadline, cancel)
	return v, st == core.OK
}

// TestPoolChaosFullLedger drives the complete conservation equation under
// injection: a mixed storm (a quarter of the submissions carry µs-scale
// deadlines that may shed at dispatch) is cut short by a tightly bounded
// Drain, whose returned tasks the caller re-runs. At rest the ledger must
// balance exactly — Accepted == Completed + Shed + Returned — and every
// accepted task must have run exactly once (worker- or caller-side) or
// been shed, never both, never neither.
func TestPoolChaosFullLedger(t *testing.T) {
	for _, seed := range []uint64{5, 11} {
		inj := fault.Chaos(seed)
		q := core.NewDualQueue[Task](core.WaitConfig{Metrics: metrics.New(), Fault: inj})
		p := New(chaosWaitQueue{q}, Config{
			KeepAlive:          time.Millisecond,
			MaxWorkers:         8,
			MaxPending:         64,
			OnSaturation:       BlockWithDeadline,
			SaturationPatience: 200 * time.Microsecond,
		})

		var ran atomic.Int64
		var accepted atomic.Int64
		var wg sync.WaitGroup
		for s := 0; s < 8; s++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for seq := 0; seq < 200; seq++ {
					ctx := context.Background()
					var cancel context.CancelFunc = func() {}
					if seq%4 == 0 {
						ctx, cancel = context.WithTimeout(ctx, time.Duration(10+seq%50)*time.Microsecond)
					}
					if p.SubmitContext(ctx, func() { ran.Add(1) }) == nil {
						accepted.Add(1)
					}
					cancel()
				}
			}(s)
		}
		time.Sleep(2 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		res := p.Drain(ctx)
		cancel()
		wg.Wait()
		for _, task := range res.Returned {
			task()
		}

		st := p.Stats()
		if gap := st.ConservationGap(); gap != 0 {
			t.Fatalf("seed %d: ledger gap %d: %+v", seed, gap, st)
		}
		if acc := accepted.Load(); acc != st.Accepted {
			t.Fatalf("seed %d: caller counted %d accepted, ledger says %d", seed, acc, st.Accepted)
		}
		if got, want := ran.Load(), st.Completed+st.Returned; got != want {
			t.Fatalf("seed %d: %d executions, want completed+returned = %d (%+v)", seed, got, want, st)
		}
		q.Close()
	}
}

// TestPoolChaosShutdownRejects verifies the closed-pool path under
// injection: once Shutdown is called, Submit must reject with ErrShutdown
// and never leak an accepted-but-unrun task.
func TestPoolChaosShutdownRejects(t *testing.T) {
	inj := fault.Chaos(3)
	q := core.NewDualQueue[Task](core.WaitConfig{Fault: inj})
	p := New(chaosQueue{q}, Config{KeepAlive: time.Millisecond, MaxWorkers: 4})

	var ran atomic.Int64
	accepted := 0
	for i := 0; i < 50; i++ {
		switch err := p.Submit(func() { ran.Add(1) }); err {
		case nil:
			accepted++
		case ErrSaturated: // legal under a tiny MaxWorkers; not a loss
		default:
			t.Fatalf("warm-up submit %d: %v", i, err)
		}
	}
	p.Shutdown()
	p.Wait()
	if err := p.Submit(func() { ran.Add(1) }); err != ErrShutdown {
		t.Fatalf("post-shutdown submit: got %v, want ErrShutdown", err)
	}
	if got := ran.Load(); got != int64(accepted) {
		t.Fatalf("accepted %d tasks, ran %d", accepted, got)
	}
	q.Close()
}
