package pool

import (
	"time"

	"synchq/internal/dual"
)

// buffered adapts the nonblocking dual queue (Scherer & Scott 2004) as an
// unbounded FIFO task queue: Offer deposits without waiting for a worker,
// and idle workers' reservations are fulfilled in arrival order. Note the
// symmetry with the synchronous configuration: the same dual-data-structure
// idea backs both, differing only in whether producers wait.
type buffered struct {
	q *dual.Queue[Task]
}

// NewBuffered returns an unbounded buffered task queue for use with New —
// the work-queue configuration of a fixed pool, as opposed to the
// synchronous hand-off of a cached pool.
func NewBuffered() Queue {
	return buffered{q: dual.NewQueue[Task]()}
}

// Offer deposits t; it always succeeds (the buffer is unbounded).
func (b buffered) Offer(t Task) bool {
	b.q.Enqueue(t)
	return true
}

// PollTimeout receives the oldest buffered task, waiting up to d for one
// to arrive.
func (b buffered) PollTimeout(d time.Duration) (Task, bool) {
	return b.q.DequeueTimeout(d)
}
