package pool

import (
	"time"

	"synchq/internal/dual"
)

// buffered adapts the nonblocking dual queue (Scherer & Scott 2004) as an
// unbounded FIFO task queue: Offer deposits without waiting for a worker,
// and idle workers' reservations are fulfilled in arrival order. Note the
// symmetry with the synchronous configuration: the same dual-data-structure
// idea backs both, differing only in whether producers wait.
type buffered struct {
	q *dual.Queue[Task]
}

// NewBuffered returns an unbounded buffered task queue for use with New —
// the work-queue configuration of a fixed pool, as opposed to the
// synchronous hand-off of a cached pool. The returned queue implements
// WaitQueue, so pools built on it get cancelable idle polls (prompt,
// poison-free shutdown wake-ups).
func NewBuffered() Queue {
	return buffered{q: dual.NewQueue[Task]()}
}

// Offer deposits t; it always succeeds (the buffer is unbounded).
func (b buffered) Offer(t Task) bool {
	b.q.Enqueue(t)
	return true
}

// PollTimeout receives the oldest buffered task, waiting up to d for one
// to arrive.
func (b buffered) PollTimeout(d time.Duration) (Task, bool) {
	return b.q.DequeueTimeout(d)
}

// OfferWait deposits t; an unbounded buffer never makes producers wait,
// so the deadline and cancel channel are irrelevant.
func (b buffered) OfferWait(t Task, _ time.Time, _ <-chan struct{}) bool {
	b.q.Enqueue(t)
	return true
}

// DrainTo appends up to max immediately available buffered tasks to buf
// without waiting — the BatchQueue facet that lets a pool worker claim a
// small burst of backlog in one wakeup.
func (b buffered) DrainTo(buf []Task, max int) []Task {
	for n := 0; n < max; n++ {
		t, ok := b.q.TryDequeue()
		if !ok {
			break
		}
		buf = append(buf, t)
	}
	return buf
}

// pollSlice bounds how long PollWait commits to one uncancelable
// DequeueTimeout leg; it is the worst-case latency for observing the
// cancel channel while idle.
const pollSlice = 5 * time.Millisecond

// PollWait receives the oldest buffered task, waiting until the deadline
// (zero = forever) or the cancel channel fires. The underlying dual queue
// has no cancelable reservation, so the wait runs in short timed slices
// with a cancellation check between them — the hand-off itself stays on
// the queue's lock-free path; only idle waiting is sliced.
func (b buffered) PollWait(deadline time.Time, cancel <-chan struct{}) (Task, bool) {
	for {
		select {
		case <-cancel:
			return nil, false
		default:
		}
		d := pollSlice
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				return nil, false
			}
			if rem < d {
				d = rem
			}
		}
		if t, ok := b.q.DequeueTimeout(d); ok {
			return t, true
		}
	}
}
