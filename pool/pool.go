// Package pool implements a production-grade executor tier in the style of
// java.util.concurrent.ThreadPoolExecutor over a synchronous queue — the
// paper's "real-world" benchmark scenario (Figure 6) and the original
// motivating client of the rich synchronous queue interface.
//
// The hand-off discipline is exactly the executor's: Submit offers the task
// to the synchronous queue, which succeeds only if an idle worker is
// already waiting in a poll; if no worker is waiting, a new worker
// goroutine is spawned with the task in hand. Workers that receive no work
// within the keep-alive interval terminate themselves (never below
// CoreWorkers). The pool therefore grows under load and shrinks when idle,
// and the synchronous queue's pairing performance directly bounds task
// dispatch latency.
//
// On top of that hand-off core the pool layers the robustness machinery a
// production executor needs:
//
//   - Deadline-aware admission: SubmitContext propagates the context's
//     deadline both into the saturation wait (via the queue's timed/
//     cancelable OfferWait) and onto the task itself, so a task whose
//     deadline passes while it sits queued is shed before dispatch — it
//     never runs, and the shed is counted.
//   - Backpressure and shedding: RejectionPolicy grows BlockWithDeadline
//     and ShedOldest arms next to Reject/CallerRuns/Wait, and MaxPending
//     bounds the accepted-but-undispatched backlog so overload degrades by
//     policy instead of unbounded growth.
//   - Conservation: every accepted task is accounted for exactly once —
//     executed, shed, or returned by a forced Drain. Stats exposes the
//     ledger; nothing is ever silently lost.
//   - Multi-phase graceful drain: Drain(ctx) quiesces admission, lets the
//     workers empty the backlog, and only when the context expires forces
//     the remainder back to the caller, composing on the queue's lock-free
//     Close and exiting with no leaked goroutines.
//   - Worker-lifecycle hardening: the Submit/Shutdown spawn race is closed
//     by a post-spawn re-check, panics are contained per task with
//     crash-loop detection that backs off pool growth during a panic
//     storm, and keep-alive retirement can never undershoot CoreWorkers.
package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
)

// Task is a unit of work. A nil Task is reserved by the pool as a poison
// pill and is rejected by Submit.
type Task func()

// Queue is the hand-off channel between Submit and idle workers: any
// synchronous queue carrying tasks. Offer must succeed only if a worker is
// currently waiting in PollTimeout — synchronous hand-off semantics. Both
// the paper's new algorithms and the Java 5 baseline satisfy this (via
// synchq.SynchronousQueue[pool.Task] and friends).
type Queue interface {
	Offer(t Task) bool
	PollTimeout(d time.Duration) (Task, bool)
}

// WaitQueue is the extended hand-off contract: a Queue whose blocking
// operations take a deadline and a cancellation channel (a zero deadline
// means no deadline; a nil channel never fires). The synchq structures all
// satisfy it, and the pool uses it to make saturation waits and idle
// worker polls truly blocking and cancelable — no busy retry loops. A
// plain Queue still works: the pool falls back to poison pills for
// shutdown wake-ups and a yielding retry loop for blocking offers.
type WaitQueue interface {
	Queue
	OfferWait(t Task, deadline time.Time, cancel <-chan struct{}) bool
	PollWait(deadline time.Time, cancel <-chan struct{}) (Task, bool)
}

// BatchQueue is the optional bulk facet of a queue: DrainTo appends up to
// max immediately available tasks to buf without waiting. When the backing
// queue provides it (synchq.SynchronousQueue[pool.Task] and the NewBuffered
// work queue both do) and Config.DispatchBatch asks for it, a worker that
// wakes for one task claims a small batch in the same wakeup.
type BatchQueue interface {
	DrainTo(buf []Task, max int) []Task
}

// Closer is the optional graceful-close facet of a queue. When the backing
// queue provides it (every synchq structure does), a forced Drain closes
// the queue so blocked producers and idle workers wake immediately with
// the closed status instead of burning their full patience.
type Closer interface{ Close() }

// Errors returned by Submit and SubmitContext.
var (
	// ErrShutdown is returned after Shutdown has been called.
	ErrShutdown = errors.New("pool: shut down")
	// ErrDraining is returned while a Drain is quiescing admission.
	ErrDraining = errors.New("pool: draining")
	// ErrNilTask is returned for a nil task.
	ErrNilTask = errors.New("pool: nil task")
	// ErrSaturated is returned when the pool is saturated (at MaxWorkers
	// with no idle worker, or at the MaxPending admission budget) and the
	// rejection policy refuses the submission.
	ErrSaturated = errors.New("pool: saturated")
	// ErrExpired is returned when the submission's deadline passed before
	// the task could be admitted.
	ErrExpired = errors.New("pool: deadline expired")
)

// RejectionPolicy says what Submit does when the pool is saturated: at
// MaxWorkers with no idle worker, or at the MaxPending admission budget.
type RejectionPolicy int

const (
	// Reject makes Submit return ErrSaturated.
	Reject RejectionPolicy = iota
	// CallerRuns makes Submit execute the task on the calling goroutine,
	// providing natural backpressure.
	CallerRuns
	// Wait makes Submit block until the task is admitted, the submission
	// deadline passes, the caller's context is canceled, or the pool
	// shuts down. The block is a real queue-level OfferWait (or budget
	// wait), not a retry spin.
	Wait
	// BlockWithDeadline blocks like Wait but gives up after
	// SaturationPatience (or the submission deadline, whichever is
	// sooner) and returns ErrSaturated — bounded backpressure.
	BlockWithDeadline
	// ShedOldest sheds the oldest accepted-but-undispatched task to make
	// room for the new one — newest-wins load shedding for buffered
	// pools. When nothing is pending to shed (e.g. a purely synchronous
	// hand-off), it degrades to Reject.
	ShedOldest
)

// Config parameterizes a Pool.
type Config struct {
	// KeepAlive is how long an idle worker waits for work before
	// terminating. Zero selects 60 seconds, the Java cached-pool
	// default.
	KeepAlive time.Duration
	// MaxWorkers caps the number of concurrent workers. Zero selects
	// effectively-unbounded (the cached pool configuration).
	MaxWorkers int
	// CoreWorkers is the number of workers retained even when idle
	// beyond KeepAlive (ThreadPoolExecutor's corePoolSize). Zero — the
	// cached-pool configuration — lets every idle worker expire.
	CoreWorkers int
	// OnSaturation selects the rejection policy; the default is Reject.
	OnSaturation RejectionPolicy
	// MaxPending, when positive, bounds the number of accepted tasks
	// that have not yet been picked up by a worker — the admission
	// budget. At the budget, Submit applies the rejection policy. Zero
	// leaves admission unbounded.
	MaxPending int
	// SaturationPatience bounds the BlockWithDeadline policy's wait.
	// Zero selects one millisecond.
	SaturationPatience time.Duration
	// Metrics, when non-nil, receives the executor's counters
	// (tasks-shed/-rejected/-returned, crash-loops) and latency
	// histograms (queue-wait, exec, drain). Obtain a handle from
	// synchq.NewMetrics().RawHandle() to share one instrumentation
	// root between the pool and its queue.
	Metrics *metrics.Handle
	// DispatchBatch, when greater than one, lets a worker that woke for a
	// task claim up to DispatchBatch-1 more immediately available tasks
	// from the queue in the same wakeup, through the queue's BatchQueue
	// facet — amortizing the park/unpark cycle under burst load. Zero or
	// one (or a queue without DrainTo) keeps the one-task-per-wakeup
	// discipline. Every batched task still passes through the normal
	// claim/shed/execute path, so the conservation ledger is unchanged.
	DispatchBatch int
	// Fault, when non-nil, is queried at the pool's own injection sites
	// (spawn race, admission, retirement) for deterministic chaos tests.
	Fault *fault.Injector
}

// Pool is a dynamically sized worker pool fed through a synchronous queue.
// Construct one with New; a Pool must not be copied after first use.
type Pool struct {
	q         Queue
	wq        WaitQueue  // non-nil when q supports blocking cancelable ops
	bq        BatchQueue // non-nil when q supports DrainTo and batching is on
	batch     int        // max tasks a worker claims per wakeup (>= 1)
	keepAlive time.Duration
	maxWorker int64
	core      int64
	policy    RejectionPolicy
	patience  time.Duration
	h         *metrics.Handle
	inj       *fault.Injector

	workers  atomic.Int64 // live worker goroutines
	shut     atomic.Bool
	draining atomic.Bool
	shutCh   chan struct{} // closed by Shutdown; wakes blocking queue ops
	wg       sync.WaitGroup

	// Admission budget: a semaphore of MaxPending tokens (nil when
	// unbounded). Reserving sends, releasing receives; release never
	// blocks because only reserved slots are released.
	slots chan struct{}

	// Pending-task ledger (see pending.go).
	pendN    atomic.Int64 // accepted tasks not yet claimed by anyone
	active   atomic.Int64 // tasks currently executing
	pendMu   sync.Mutex
	pendHead *taskEnv
	pendTail *taskEnv

	// Crash-loop detection: consecutive panicking tasks trip the
	// breaker, which disables pool growth until a task succeeds.
	consecPanics atomic.Int64
	crashLoop    atomic.Bool

	// Statistics (monotone counters; read with Stats).
	spawned    atomic.Int64
	completed  atomic.Int64
	handoffs   atomic.Int64 // submissions served by an already-idle worker
	panicked   atomic.Int64 // tasks that panicked (recovered by the worker)
	accepted   atomic.Int64
	shedN      atomic.Int64
	rejected   atomic.Int64
	returnedN  atomic.Int64
	expired    atomic.Int64
	crashLoops atomic.Int64
}

// crashLoopThreshold is the consecutive-panic count that trips the
// crash-loop breaker and pauses pool growth.
const crashLoopThreshold = 8

// New returns a pool dispatching through q. The zero Config yields a
// cached pool: unbounded workers, 60 s keep-alive, growth on demand.
func New(q Queue, cfg Config) *Pool {
	if cfg.KeepAlive == 0 {
		cfg.KeepAlive = 60 * time.Second
	}
	max := int64(cfg.MaxWorkers)
	if max <= 0 {
		max = 1 << 30
	}
	core := int64(cfg.CoreWorkers)
	if core > max {
		core = max
	}
	patience := cfg.SaturationPatience
	if patience <= 0 {
		patience = time.Millisecond
	}
	p := &Pool{
		q:         q,
		keepAlive: cfg.KeepAlive,
		maxWorker: max,
		core:      core,
		policy:    cfg.OnSaturation,
		patience:  patience,
		h:         cfg.Metrics,
		inj:       cfg.Fault,
		shutCh:    make(chan struct{}),
	}
	if wq, ok := q.(WaitQueue); ok {
		p.wq = wq
	}
	p.batch = 1
	if bq, ok := q.(BatchQueue); ok && cfg.DispatchBatch > 1 {
		p.bq = bq
		p.batch = cfg.DispatchBatch
	}
	if cfg.MaxPending > 0 {
		p.slots = make(chan struct{}, cfg.MaxPending)
	}
	return p
}

// NewFixed returns a fixed-size pool of n workers fed through an unbounded
// buffered queue (the nonblocking dual queue of Scherer & Scott 2004 in
// its data-buffering mode): Submit never blocks and never spawns beyond n,
// and the n workers never expire. It is the analogue of
// java.util.concurrent.newFixedThreadPool, provided as the buffered
// counterpoint to the synchronous cached pool.
func NewFixed(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return New(NewBuffered(), Config{
		MaxWorkers:  n,
		CoreWorkers: n,
		// Core workers ignore expiry; a short keep-alive just makes
		// them re-check the shutdown flag promptly.
		KeepAlive:    100 * time.Millisecond,
		OnSaturation: Wait,
	})
}

// Submit schedules t for execution: it is handed directly to an idle
// worker when one is waiting; otherwise a new worker is started (up to
// MaxWorkers); otherwise the rejection policy applies.
func (p *Pool) Submit(t Task) error { return p.submit(nil, t) }

// SubmitContext schedules t like Submit, with the context governing
// admission: its deadline bounds any saturation wait and travels with the
// task — a task still undispatched when the deadline passes is shed, not
// run — and its cancellation aborts a blocked submission. The error
// distinguishes ErrExpired (deadline passed before admission) from the
// context's own cause on cancellation.
func (p *Pool) SubmitContext(ctx context.Context, t Task) error {
	return p.submit(ctx, t)
}

func (p *Pool) submit(ctx context.Context, t Task) error {
	if t == nil {
		return ErrNilTask
	}
	if p.shut.Load() {
		return ErrShutdown
	}
	if p.draining.Load() {
		return ErrDraining
	}
	var deadline time.Time
	if ctx != nil {
		if d, ok := ctx.Deadline(); ok {
			deadline = d
		}
		if err := context.Cause(ctx); err != nil {
			p.refuse(errors.Is(err, context.DeadlineExceeded))
			return err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			p.refuse(true)
			return ErrExpired
		}
	}

	// Reserve an admission-budget slot (policy applies at the budget).
	switch err := p.reserve(ctx, deadline); {
	case err == nil:
	case errors.Is(err, errRunInline):
		// CallerRuns at the budget: execute on the submitter without
		// ever entering the pending ledger.
		p.accepted.Add(1)
		p.active.Add(1)
		p.execute(t)
		p.active.Add(-1)
		return nil
	default:
		return err
	}

	env := &taskEnv{t: t, deadline: deadline}
	p.link(env)
	p.inj.Preempt(fault.PoolAdmitPause)

	// Below the core size, spawn unconditionally (ThreadPoolExecutor
	// grows to corePoolSize before queueing).
	if spawned, err := p.trySpawn(env, p.core); err != nil {
		return p.unwind(env, err)
	} else if spawned {
		p.accepted.Add(1)
		return nil
	}

	// Fast path: hand to the queue — for a synchronous queue this
	// succeeds only if a worker is idle in a poll right now; a buffered
	// queue accepts unconditionally.
	wrapper := func() { p.dispatch(env) }
	if p.q.Offer(wrapper) {
		p.handoffs.Add(1)
		p.accepted.Add(1)
		return nil
	}

	// Slow path: grow the pool (paused while the crash-loop breaker is
	// tripped — a panic storm must not scale the pool up).
	if !p.crashLoop.Load() {
		if spawned, err := p.trySpawn(env, p.maxWorker); err != nil {
			return p.unwind(env, err)
		} else if spawned {
			p.accepted.Add(1)
			return nil
		}
	}

	// Saturated: apply the rejection policy.
	switch p.policy {
	case CallerRuns:
		p.dispatch(env)
		p.accepted.Add(1)
		return nil
	case Wait:
		return p.offerBlocking(env, wrapper, ctx, deadline, false)
	case BlockWithDeadline:
		bound := time.Now().Add(p.patience)
		if !deadline.IsZero() && deadline.Before(bound) {
			bound = deadline
		}
		return p.offerBlocking(env, wrapper, ctx, bound, true)
	case ShedOldest:
		// A synchronous hand-off has no buffered backlog to evict in
		// the queue itself; shedding the oldest pending submission
		// frees budget but cannot conjure an idle worker, so at
		// queue-level saturation the policy degrades to Reject.
		return p.unwind(env, ErrSaturated)
	default:
		return p.unwind(env, ErrSaturated)
	}
}

// errRunInline is reserve's signal that the CallerRuns policy applies.
var errRunInline = errors.New("pool: run inline")

// reserve takes an admission-budget slot, applying the rejection policy
// when the budget is exhausted. Nil error means a slot is held (a no-op
// without a budget).
func (p *Pool) reserve(ctx context.Context, deadline time.Time) error {
	if p.slots == nil {
		return nil
	}
	select {
	case p.slots <- struct{}{}:
		return nil
	default:
	}
	switch p.policy {
	case ShedOldest:
		for {
			if !p.shedOldest() {
				p.refuse(false)
				return ErrSaturated
			}
			select {
			case p.slots <- struct{}{}:
				return nil
			default:
			}
		}
	case CallerRuns:
		return errRunInline
	case Wait, BlockWithDeadline:
		bound := deadline
		if p.policy == BlockWithDeadline {
			b := time.Now().Add(p.patience)
			if bound.IsZero() || b.Before(bound) {
				bound = b
			}
		}
		var timerC <-chan time.Time
		if !bound.IsZero() {
			tm := time.NewTimer(time.Until(bound))
			defer tm.Stop()
			timerC = tm.C
		}
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case p.slots <- struct{}{}:
			return nil
		case <-p.shutCh:
			return ErrShutdown
		case <-done:
			err := context.Cause(ctx)
			p.refuse(errors.Is(err, context.DeadlineExceeded))
			return err
		case <-timerC:
			if p.policy == BlockWithDeadline && (deadline.IsZero() || bound.Before(deadline)) {
				p.refuse(false)
				return ErrSaturated
			}
			p.refuse(true)
			return ErrExpired
		}
	default:
		p.refuse(false)
		return ErrSaturated
	}
}

// offerBlocking lands the wrapper with a real blocking offer: the queue's
// cancelable OfferWait when available, otherwise a yielding retry loop
// that still honors cancellation, shutdown, and the bound. A zero bound
// means wait indefinitely (Wait policy without a submission deadline).
func (p *Pool) offerBlocking(env *taskEnv, wrapper Task, ctx context.Context, bound time.Time, saturation bool) error {
	if p.wq != nil {
		cancel, stop := p.mergedCancel(ctx)
		ok := p.wq.OfferWait(wrapper, bound, cancel)
		stop()
		if ok {
			p.handoffs.Add(1)
			p.accepted.Add(1)
			return nil
		}
	} else {
		for backoff := time.Microsecond; ; {
			if p.q.Offer(wrapper) {
				p.handoffs.Add(1)
				p.accepted.Add(1)
				return nil
			}
			if p.shut.Load() {
				break
			}
			if ctx != nil && ctx.Err() != nil {
				break
			}
			if !bound.IsZero() && !time.Now().Before(bound) {
				break
			}
			time.Sleep(backoff)
			if backoff < 64*time.Microsecond {
				backoff *= 2
			}
		}
	}
	// The offer did not land: classify the failure.
	switch {
	case ctx != nil && ctx.Err() != nil:
		return p.unwind(env, context.Cause(ctx))
	case p.shut.Load():
		return p.unwind(env, ErrShutdown)
	case saturation:
		return p.unwind(env, ErrSaturated)
	default:
		return p.unwind(env, ErrExpired)
	}
}

// mergedCancel returns a channel that fires when either the context or
// the pool's shutdown channel fires, plus a release for the merger
// goroutine. When the context can never fire, the shutdown channel is
// used directly and no goroutine is spawned.
func (p *Pool) mergedCancel(ctx context.Context) (<-chan struct{}, func()) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if done == nil {
		return p.shutCh, func() {}
	}
	out := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		select {
		case <-done:
			close(out)
		case <-p.shutCh:
			close(out)
		case <-stop:
		}
	}()
	return out, func() { close(stop) }
}

// refuse tallies an admission refusal (expired deadlines doubly so).
func (p *Pool) refuse(expired bool) {
	p.rejected.Add(1)
	p.h.Inc(metrics.TasksRejected)
	if expired {
		p.expired.Add(1)
	}
}

// unwind aborts an admitted-but-not-yet-accepted envelope after a failed
// hand-off and returns err, tallying the refusal. If a concurrent shedder
// or drain already claimed the envelope, the submission actually was
// accepted — its fate (shed or returned) is already counted — so the
// caller gets nil and no refusal is recorded.
func (p *Pool) unwind(env *taskEnv, err error) error {
	if env.claim(envAborted) {
		p.settle(env)
		if !errors.Is(err, ErrShutdown) && !errors.Is(err, ErrDraining) {
			p.refuse(errors.Is(err, ErrExpired) || errors.Is(err, context.DeadlineExceeded))
		}
		return err
	}
	p.accepted.Add(1)
	return nil
}

// trySpawn starts a worker with env in hand if the worker count is below
// limit. The post-spawn shutdown re-check closes the Submit/Shutdown
// race: a Submit that passed the shut check can otherwise commit a worker
// after Shutdown's wake-up sweep, leaving it parked for a full keep-alive
// and its task accepted into a dead pool. Ordering matters — wg.Add
// happens before the re-check, so a false read of shut guarantees the
// following Shutdown+Wait observes this worker.
func (p *Pool) trySpawn(env *taskEnv, limit int64) (bool, error) {
	for {
		n := p.workers.Load()
		if n >= limit {
			return false, nil
		}
		if !p.workers.CompareAndSwap(n, n+1) {
			continue
		}
		p.inj.Preempt(fault.PoolSpawnRacePause)
		p.wg.Add(1)
		if p.shut.Load() {
			p.wg.Done()
			p.workers.Add(-1)
			return false, ErrShutdown
		}
		p.spawned.Add(1)
		go p.worker(env)
		return true, nil
	}
}

// worker dispatches env, then serves the queue until keep-alive expires
// (and the pool is above its core size), a poison pill arrives, or the
// pool shuts down.
func (p *Pool) worker(env *taskEnv) {
	defer p.wg.Done()
	// batch is the worker's private claim buffer, reused across wakeups so
	// batched dispatch allocates nothing in steady state.
	var batch []Task
	for {
		if env != nil {
			p.dispatch(env)
			env = nil
		}
		if p.shut.Load() {
			p.workers.Add(-1)
			return
		}
		var t Task
		var ok bool
		if p.wq != nil {
			t, ok = p.wq.PollWait(time.Now().Add(p.keepAlive), p.shutCh)
		} else {
			t, ok = p.q.PollTimeout(p.keepAlive)
		}
		if !ok {
			if p.shut.Load() {
				p.workers.Add(-1)
				return
			}
			if p.tryRetire() {
				return // keep-alive expired above core: shrink
			}
			continue // core worker: keep serving
		}
		if t == nil {
			p.workers.Add(-1)
			return // poison pill from Shutdown
		}
		t()
		if p.bq != nil {
			// Batched dispatch: having paid for this wakeup, claim up to
			// DispatchBatch-1 more tasks that are immediately available and
			// run them before polling (and possibly parking) again. Each
			// claimed task is a dispatch wrapper, so shedding and the
			// conservation ledger behave exactly as under single dispatch.
			batch = p.bq.DrainTo(batch[:0], p.batch-1)
			pill := false
			for _, bt := range batch {
				if bt == nil {
					// A poison pill swept up mid-batch still means
					// shutdown; honor it once the claimed tasks have run.
					pill = true
					continue
				}
				bt()
			}
			if pill {
				p.workers.Add(-1)
				return
			}
		}
	}
}

// dispatch claims env and runs its task — unless the task's deadline
// passed while it waited, in which case it is shed before execution. A
// lost claim means a shedder or forced drain already settled the task.
func (p *Pool) dispatch(env *taskEnv) {
	if !env.claim(envRunning) {
		return
	}
	p.settle(env)
	p.h.Since(metrics.QueueWaitNs, env.enq)
	if !env.deadline.IsZero() && !time.Now().Before(env.deadline) {
		p.shedN.Add(1)
		p.h.Inc(metrics.TasksShed)
		return
	}
	p.active.Add(1)
	p.execute(env.t)
	p.active.Add(-1)
}

// execute runs t with panic containment and full accounting.
func (p *Pool) execute(t Task) {
	t0 := p.h.Start()
	p.runTask(t)
	p.h.Since(metrics.ExecNs, t0)
	p.completed.Add(1)
}

// tryRetire decrements the worker count only while it stays at or above
// the core size, so keep-alive expiry can never shrink the pool below
// CoreWorkers even when several workers time out together. The injector
// can force the CAS to be treated as lost, replaying the several-workers-
// retire-together race.
func (p *Pool) tryRetire() bool {
	for {
		n := p.workers.Load()
		if n <= p.core {
			return false
		}
		if p.inj.FailCAS(fault.PoolRetireCAS) {
			continue
		}
		if p.workers.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// runTask executes t, containing panics: a panicking task must cost the
// pool nothing but a statistics tick — it must not kill the worker's
// process nor leak the worker (java.util.concurrent likewise survives
// runtime exceptions thrown by tasks). A run of crashLoopThreshold
// consecutive panics trips the crash-loop breaker, which pauses pool
// growth until a task completes normally.
func (p *Pool) runTask(t Task) {
	defer func() {
		if r := recover(); r != nil {
			p.panicked.Add(1)
			if p.consecPanics.Add(1) >= crashLoopThreshold &&
				p.crashLoop.CompareAndSwap(false, true) {
				p.crashLoops.Add(1)
				p.h.Inc(metrics.CrashLoops)
			}
		}
	}()
	t()
	p.consecPanics.Store(0)
	p.crashLoop.Store(false)
}

// Shutdown stops accepting work and wakes idle workers so they exit
// promptly; workers running a task finish it first. It does not wait; call
// Wait for that. Accepted-but-undispatched tasks in a buffered pool are
// not run by Shutdown — use Drain for a graceful stop that either runs or
// returns them.
func (p *Pool) Shutdown() {
	if p.shut.Swap(true) {
		return
	}
	close(p.shutCh)
	if p.wq != nil {
		return // blocking polls observe shutCh directly
	}
	// Plain queues cannot watch shutCh: drain currently idle workers
	// with poison pills, at most one per live worker (a buffered queue
	// would otherwise accept poison forever). Workers that are mid-task
	// re-check the shutdown flag before polling again, so this races
	// benignly: anyone we miss exits at the flag check or after one
	// keep-alive at most.
	for i := p.workers.Load(); i > 0; i-- {
		if !p.q.Offer(nil) {
			break
		}
	}
}

// Wait blocks until all workers have exited. Callers normally Shutdown
// first.
func (p *Pool) Wait() { p.wg.Wait() }

// Stats is a snapshot of the pool's counters. The conservation ledger
// reads: Accepted == Completed + Shed + Returned + Pending + Active, with
// Pending and Active both zero once the pool has quiesced — every
// accepted task executes, is shed, or is returned; none are lost.
type Stats struct {
	// Live is the current number of worker goroutines.
	Live int64
	// Spawned counts workers ever created.
	Spawned int64
	// Completed counts tasks that finished executing (panicking tasks
	// included — their panic was contained, but they did run).
	Completed int64
	// Handoffs counts submissions served by an already-idle worker
	// (i.e. synchronous hand-offs that avoided spawning).
	Handoffs int64
	// Panicked counts tasks that panicked and were contained.
	Panicked int64
	// Accepted counts submissions the pool took responsibility for
	// (Submit returned nil, or the task was shed/returned after
	// admission).
	Accepted int64
	// Shed counts accepted tasks deliberately dropped without running:
	// deadline expiry detected before dispatch, or ShedOldest evictions.
	Shed int64
	// Rejected counts submissions refused at admission: saturation,
	// budget exhaustion, expired deadlines, canceled contexts.
	// Shutdown/draining refusals are not counted.
	Rejected int64
	// Returned counts accepted tasks handed back by a forced Drain.
	Returned int64
	// Expired counts the subset of Rejected refused for a passed
	// deadline.
	Expired int64
	// Pending is the current accepted-but-unclaimed backlog.
	Pending int64
	// Active is the number of tasks currently executing.
	Active int64
	// CrashLoops counts crash-loop breaker trips (panic storms dense
	// enough to pause pool growth).
	CrashLoops int64
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Live:       p.workers.Load(),
		Spawned:    p.spawned.Load(),
		Completed:  p.completed.Load(),
		Handoffs:   p.handoffs.Load(),
		Panicked:   p.panicked.Load(),
		Accepted:   p.accepted.Load(),
		Shed:       p.shedN.Load(),
		Rejected:   p.rejected.Load(),
		Returned:   p.returnedN.Load(),
		Expired:    p.expired.Load(),
		Pending:    p.pendN.Load(),
		Active:     p.active.Load(),
		CrashLoops: p.crashLoops.Load(),
	}
}

// ConservationGap is the executor conservation invariant as a number:
// Accepted − (Completed + Shed + Returned + Pending + Active). It is
// exactly zero on a quiesced pool; during a run it transiently reflects
// tasks between two counter updates.
func (s Stats) ConservationGap() int64 {
	return s.Accepted - (s.Completed + s.Shed + s.Returned + s.Pending + s.Active)
}
