// Package pool implements a cached thread pool in the style of
// java.util.concurrent.ThreadPoolExecutor over a synchronous queue — the
// paper's "real-world" benchmark scenario (Figure 6) and the original
// motivating client of the rich synchronous queue interface.
//
// The hand-off discipline is exactly the executor's: Submit offers the task
// to the synchronous queue, which succeeds only if an idle worker is
// already waiting in Poll; if no worker is waiting, a new worker goroutine
// is spawned with the task in hand. Workers that receive no work within
// the keep-alive interval terminate themselves. The pool therefore grows
// under load and shrinks when idle, and the synchronous queue's pairing
// performance directly bounds task dispatch latency.
package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Task is a unit of work. A nil Task is reserved by the pool as a poison
// pill and is rejected by Submit.
type Task func()

// Queue is the hand-off channel between Submit and idle workers: any
// synchronous queue carrying tasks. Offer must succeed only if a worker is
// currently waiting in PollTimeout — synchronous hand-off semantics. Both
// the paper's new algorithms and the Java 5 baseline satisfy this (via
// synchq.SynchronousQueue[pool.Task] and friends).
type Queue interface {
	Offer(t Task) bool
	PollTimeout(d time.Duration) (Task, bool)
}

// Errors returned by Submit.
var (
	// ErrShutdown is returned after Shutdown has been called.
	ErrShutdown = errors.New("pool: shut down")
	// ErrNilTask is returned for a nil task.
	ErrNilTask = errors.New("pool: nil task")
	// ErrSaturated is returned when the pool is at MaxWorkers, no worker
	// is idle, and the rejection policy is Reject.
	ErrSaturated = errors.New("pool: saturated")
)

// RejectionPolicy says what Submit does when the pool is saturated (at
// MaxWorkers with no idle worker).
type RejectionPolicy int

const (
	// Reject makes Submit return ErrSaturated.
	Reject RejectionPolicy = iota
	// CallerRuns makes Submit execute the task on the calling goroutine,
	// providing natural backpressure.
	CallerRuns
	// Wait makes Submit block until a worker becomes idle.
	Wait
)

// Config parameterizes a Pool.
type Config struct {
	// KeepAlive is how long an idle worker waits for work before
	// terminating. Zero selects 60 seconds, the Java cached-pool
	// default.
	KeepAlive time.Duration
	// MaxWorkers caps the number of concurrent workers. Zero selects
	// effectively-unbounded (the cached pool configuration).
	MaxWorkers int
	// CoreWorkers is the number of workers retained even when idle
	// beyond KeepAlive (ThreadPoolExecutor's corePoolSize). Zero — the
	// cached-pool configuration — lets every idle worker expire.
	CoreWorkers int
	// OnSaturation selects the rejection policy; the default is Reject.
	OnSaturation RejectionPolicy
}

// Pool is a dynamically sized worker pool fed through a synchronous queue.
// Construct one with New; a Pool must not be copied after first use.
type Pool struct {
	q         Queue
	keepAlive time.Duration
	maxWorker int64
	core      int64
	policy    RejectionPolicy

	workers atomic.Int64 // live worker goroutines
	shut    atomic.Bool
	wg      sync.WaitGroup

	// Statistics (monotone counters; read with Stats).
	spawned   atomic.Int64
	completed atomic.Int64
	handoffs  atomic.Int64 // submissions served by an already-idle worker
	panicked  atomic.Int64 // tasks that panicked (recovered by the worker)
}

// New returns a pool dispatching through q. The zero Config yields a
// cached pool: unbounded workers, 60 s keep-alive, growth on demand.
func New(q Queue, cfg Config) *Pool {
	if cfg.KeepAlive == 0 {
		cfg.KeepAlive = 60 * time.Second
	}
	max := int64(cfg.MaxWorkers)
	if max <= 0 {
		max = 1 << 30
	}
	core := int64(cfg.CoreWorkers)
	if core > max {
		core = max
	}
	return &Pool{
		q:         q,
		keepAlive: cfg.KeepAlive,
		maxWorker: max,
		core:      core,
		policy:    cfg.OnSaturation,
	}
}

// NewFixed returns a fixed-size pool of n workers fed through an unbounded
// buffered queue (the nonblocking dual queue of Scherer & Scott 2004 in
// its data-buffering mode): Submit never blocks and never spawns beyond n,
// and the n workers never expire. It is the analogue of
// java.util.concurrent.newFixedThreadPool, provided as the buffered
// counterpoint to the synchronous cached pool.
func NewFixed(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return New(NewBuffered(), Config{
		MaxWorkers:  n,
		CoreWorkers: n,
		// Core workers ignore expiry; a short keep-alive just makes
		// them re-check the shutdown flag promptly.
		KeepAlive:    100 * time.Millisecond,
		OnSaturation: Wait,
	})
}

// Submit schedules t for execution: it is handed directly to an idle
// worker when one is waiting; otherwise a new worker is started (up to
// MaxWorkers); otherwise the rejection policy applies.
func (p *Pool) Submit(t Task) error {
	if t == nil {
		return ErrNilTask
	}
	if p.shut.Load() {
		return ErrShutdown
	}
	// Below the core size, spawn unconditionally (ThreadPoolExecutor
	// grows to corePoolSize before queueing).
	for {
		n := p.workers.Load()
		if n >= p.core {
			break
		}
		if p.workers.CompareAndSwap(n, n+1) {
			p.wg.Add(1)
			p.spawned.Add(1)
			go p.worker(t)
			return nil
		}
	}
	// Fast path: hand to the queue — for a synchronous queue this
	// succeeds only if a worker is idle in PollTimeout right now; a
	// buffered queue accepts unconditionally.
	if p.q.Offer(t) {
		p.handoffs.Add(1)
		return nil
	}
	// Slow path: grow the pool.
	for {
		n := p.workers.Load()
		if n >= p.maxWorker {
			break
		}
		if p.workers.CompareAndSwap(n, n+1) {
			p.wg.Add(1)
			p.spawned.Add(1)
			go p.worker(t)
			return nil
		}
	}
	// Saturated.
	switch p.policy {
	case CallerRuns:
		p.runTask(t)
		p.completed.Add(1)
		return nil
	case Wait:
		for !p.q.Offer(t) {
			if p.shut.Load() {
				return ErrShutdown
			}
			// An idle worker will appear as running tasks
			// finish; yield until the offer lands.
			time.Sleep(10 * time.Microsecond)
		}
		p.handoffs.Add(1)
		return nil
	default:
		return ErrSaturated
	}
}

// worker runs first, then serves the queue until keep-alive expires (and
// the pool is above its core size), a poison pill arrives, or the pool
// shuts down.
func (p *Pool) worker(first Task) {
	defer p.wg.Done()
	t := first
	for {
		if t != nil {
			p.runTask(t)
			p.completed.Add(1)
		}
		if p.shut.Load() {
			p.workers.Add(-1)
			return
		}
		next, ok := p.q.PollTimeout(p.keepAlive)
		if !ok {
			if p.tryRetire() {
				return // keep-alive expired above core: shrink
			}
			t = nil // core worker: keep serving
			continue
		}
		if next == nil {
			p.workers.Add(-1)
			return // poison pill from Shutdown
		}
		t = next
	}
}

// tryRetire decrements the worker count only while it stays at or above
// the core size, so keep-alive expiry can never shrink the pool below
// CoreWorkers even when several workers time out together.
func (p *Pool) tryRetire() bool {
	for {
		n := p.workers.Load()
		if n <= p.core {
			return false
		}
		if p.workers.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// runTask executes t, containing panics: a panicking task must cost the
// pool nothing but a statistics tick — it must not kill the worker's
// process nor leak the worker (java.util.concurrent likewise survives
// runtime exceptions thrown by tasks).
func (p *Pool) runTask(t Task) {
	defer func() {
		if r := recover(); r != nil {
			p.panicked.Add(1)
		}
	}()
	t()
}

// Shutdown stops accepting work and wakes idle workers so they exit
// promptly; workers running a task finish it first. It does not wait; call
// Wait for that.
func (p *Pool) Shutdown() {
	if p.shut.Swap(true) {
		return
	}
	// Drain currently idle workers with poison pills, at most one per
	// live worker (a buffered queue would otherwise accept poison
	// forever). Workers that are mid-task re-check the shutdown flag
	// before polling again, so this races benignly: anyone we miss
	// exits at the flag check or after one keep-alive at most.
	for i := p.workers.Load(); i > 0; i-- {
		if !p.q.Offer(nil) {
			break
		}
	}
}

// Wait blocks until all workers have exited. Callers normally Shutdown
// first.
func (p *Pool) Wait() { p.wg.Wait() }

// Stats is a snapshot of the pool's counters.
type Stats struct {
	// Live is the current number of worker goroutines.
	Live int64
	// Spawned counts workers ever created.
	Spawned int64
	// Completed counts tasks that finished.
	Completed int64
	// Handoffs counts submissions served by an already-idle worker
	// (i.e. synchronous hand-offs that avoided spawning).
	Handoffs int64
	// Panicked counts tasks that panicked and were contained.
	Panicked int64
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Live:      p.workers.Load(),
		Spawned:   p.spawned.Load(),
		Completed: p.completed.Load(),
		Handoffs:  p.handoffs.Load(),
		Panicked:  p.panicked.Load(),
	}
}
