package pool

import (
	"sync/atomic"
	"time"

	"synchq/internal/metrics"
)

// The pending-task ledger. Every submission is wrapped in a taskEnv whose
// one-shot state word decides the task's fate exactly once: run by a
// worker, shed by policy or deadline, returned by a forced drain, or
// aborted by a submission that failed to land. Envelopes awaiting their
// fate sit in an intrusive doubly-linked FIFO list; whoever wins the state
// CAS unlinks the envelope and releases its admission-budget slot. The
// wrapper closures handed to the queue consult the state on dequeue, so a
// task shed or reclaimed while buffered leaves only an inert wrapper
// behind — the queue is never searched or mutated to shed a task.

// taskEnv states. pending is the only state a claim can start from; the
// CAS to a terminal state is the task's linearization point of fate.
const (
	envPending int32 = iota
	envRunning
	envShed
	envReturned
	envAborted
)

// taskEnv is the admission envelope of one submitted task.
type taskEnv struct {
	t        Task
	deadline time.Time
	enq      int64 // sampled queue-wait clock (metrics.Handle.Start)
	state    atomic.Int32

	prev, next *taskEnv // intrusive pending list, guarded by Pool.pendMu
	linked     bool
}

// claim attempts to move the envelope from pending to the given terminal
// state, returning true exactly once across all claimants.
func (e *taskEnv) claim(to int32) bool {
	return e.state.CompareAndSwap(envPending, to)
}

// link registers env at the tail of the pending list and stamps its
// queue-wait clock.
func (p *Pool) link(env *taskEnv) {
	env.enq = p.h.Start()
	p.pendMu.Lock()
	env.linked = true
	env.prev = p.pendTail
	if p.pendTail != nil {
		p.pendTail.next = env
	} else {
		p.pendHead = env
	}
	p.pendTail = env
	p.pendMu.Unlock()
	p.pendN.Add(1)
}

// unlink removes env from the pending list if it is still there.
func (p *Pool) unlink(env *taskEnv) {
	p.pendMu.Lock()
	p.unlinkLocked(env)
	p.pendMu.Unlock()
}

func (p *Pool) unlinkLocked(env *taskEnv) {
	if !env.linked {
		return
	}
	env.linked = false
	if env.prev != nil {
		env.prev.next = env.next
	} else {
		p.pendHead = env.next
	}
	if env.next != nil {
		env.next.prev = env.prev
	} else {
		p.pendTail = env.prev
	}
	env.prev, env.next = nil, nil
}

// settle finishes a won claim: the envelope leaves the pending list, the
// pending count drops, and its admission-budget slot is released. Must be
// called exactly once, by the claim winner.
func (p *Pool) settle(env *taskEnv) {
	p.unlink(env)
	p.pendN.Add(-1)
	p.releaseSlot()
}

// releaseSlot frees one admission-budget token. Never blocks: only held
// slots are released.
func (p *Pool) releaseSlot() {
	if p.slots != nil {
		<-p.slots
	}
}

// shedOldest claims and sheds the oldest still-pending task, freeing its
// budget slot. Returns false when nothing was claimable. The shed
// task's wrapper stays in the queue as an inert tombstone; dispatch
// no-ops on it.
func (p *Pool) shedOldest() bool {
	p.pendMu.Lock()
	for e := p.pendHead; e != nil; e = e.next {
		if e.claim(envShed) {
			p.unlinkLocked(e)
			p.pendMu.Unlock()
			p.pendN.Add(-1)
			p.releaseSlot()
			p.shedN.Add(1)
			p.h.Inc(metrics.TasksShed)
			return true
		}
	}
	p.pendMu.Unlock()
	return false
}

// reclaimPending claims every still-pending task as returned and hands
// back the original task functions, oldest first — the forced-drain arm
// of the conservation guarantee.
func (p *Pool) reclaimPending() []Task {
	var out []Task
	p.pendMu.Lock()
	for e := p.pendHead; e != nil; {
		next := e.next
		if e.claim(envReturned) {
			p.unlinkLocked(e)
			p.pendN.Add(-1)
			p.releaseSlot()
			p.returnedN.Add(1)
			p.h.Inc(metrics.TasksReturned)
			out = append(out, e.t)
		}
		e = next
	}
	p.pendMu.Unlock()
	return out
}
