package pool

// Tests for the executor tier's robustness machinery: the Submit/Shutdown
// spawn-race fix (deterministically frozen with the pool-spawn-race-pause
// fault site), deadline-aware admission and pre-dispatch shedding, the
// backpressure policies, the multi-phase drain with its conservation
// guarantee, goroutine-leak-free lifecycle, and crash-loop containment.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synchq/internal/fault"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitShutdownSpawnRaceRegression deterministically replays the
// Submit/Shutdown spawn race: the pool-spawn-race-pause site freezes
// Submit between winning the worker-count CAS and committing the worker,
// Shutdown then runs to completion (wake-up sweep included), and only
// then is the frozen Submit released. Pre-fix, Submit spawned a worker
// into the dead pool — the task ran after Shutdown and the worker parked
// for a full keep-alive, invisible to the sweep. Post-fix, the post-spawn
// re-check unwinds the spawn and Submit reports ErrShutdown.
func TestSubmitShutdownSpawnRaceRegression(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{})
	inj := fault.New(fault.Config{
		Seed:        1,
		PreemptRate: 1,
		Budget:      1,
		Sites:       []fault.Site{fault.PoolSpawnRacePause},
		PreemptFunc: func(fault.Site) { close(entered); <-hold },
	})
	p := New(newQueue(), Config{KeepAlive: time.Hour, Fault: inj})

	res := make(chan error, 1)
	go func() {
		res <- p.Submit(func() { t.Error("task ran in a shut-down pool") })
	}()
	<-entered    // Submit is frozen inside the race window
	p.Shutdown() // completes fully while the window is open
	close(hold)  // release Submit

	if err := <-res; !errors.Is(err, ErrShutdown) {
		t.Fatalf("Submit in the spawn-race window = %v, want ErrShutdown", err)
	}
	st := p.Stats()
	if st.Spawned != 0 || st.Live != 0 {
		t.Fatalf("worker escaped the re-check: spawned=%d live=%d", st.Spawned, st.Live)
	}
	done := make(chan struct{})
	go func() { p.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung: the race leaked a worker")
	}
}

// TestDeadlineExpiredTaskShedBeforeDispatch covers deadline-aware
// admission end to end: a task accepted into a buffered backlog whose
// context deadline lapses while it queues must be shed before dispatch —
// never run — and show up in the Shed column of the ledger.
func TestDeadlineExpiredTaskShedBeforeDispatch(t *testing.T) {
	p := New(NewBuffered(), Config{KeepAlive: 50 * time.Millisecond, MaxWorkers: 1, CoreWorkers: 1})
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker busy", func() bool { return p.Stats().Active == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var ran atomic.Bool
	if err := p.SubmitContext(ctx, func() { ran.Store(true) }); err != nil {
		t.Fatalf("buffered SubmitContext: %v", err)
	}
	time.Sleep(40 * time.Millisecond) // deadline lapses while queued
	close(gate)

	res := p.Drain(context.Background())
	if !res.Drained {
		t.Fatalf("drain did not complete cleanly: %+v", res)
	}
	if ran.Load() {
		t.Fatal("expired task was executed")
	}
	st := p.Stats()
	if st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1 (stats: %+v)", st.Shed, st)
	}
	if gap := st.ConservationGap(); gap != 0 {
		t.Fatalf("conservation gap %d: %+v", gap, st)
	}
}

// TestSubmitContextRejectsAtAdmission pins the admission-time checks: an
// already-expired or canceled context never admits the task.
func TestSubmitContextRejectsAtAdmission(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 20 * time.Millisecond})
	defer func() { p.Shutdown(); p.Wait() }()

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := p.SubmitContext(expired, func() {}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx = %v, want DeadlineExceeded", err)
	}
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := p.SubmitContext(canceled, func() {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx = %v, want Canceled", err)
	}
	st := p.Stats()
	if st.Rejected != 2 || st.Accepted != 0 {
		t.Fatalf("rejected=%d accepted=%d, want 2/0", st.Rejected, st.Accepted)
	}
}

// TestWaitPolicyHonorsCancellation replaces the old busy-spin contract: a
// Submit blocked at saturation under the Wait policy must return with the
// context's cause as soon as the caller cancels, not spin until shutdown.
func TestWaitPolicyHonorsCancellation(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 100 * time.Millisecond, MaxWorkers: 1, OnSaturation: Wait})
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker busy", func() bool { return p.Stats().Active == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { res <- p.SubmitContext(ctx, func() {}) }()
	select {
	case err := <-res:
		t.Fatalf("blocked Submit returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-res:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled blocked Submit = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Submit never returned")
	}
	close(gate)
	p.Shutdown()
	p.Wait()
}

// TestBlockWithDeadlinePolicy bounds backpressure: the blocked offer gives
// up after SaturationPatience with ErrSaturated instead of waiting
// forever.
func TestBlockWithDeadlinePolicy(t *testing.T) {
	p := New(newQueue(), Config{
		KeepAlive:          100 * time.Millisecond,
		MaxWorkers:         1,
		OnSaturation:       BlockWithDeadline,
		SaturationPatience: 20 * time.Millisecond,
	})
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker busy", func() bool { return p.Stats().Active == 1 })

	t0 := time.Now()
	err := p.Submit(func() {})
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("BlockWithDeadline at saturation = %v, want ErrSaturated", err)
	}
	if el := time.Since(t0); el < 10*time.Millisecond {
		t.Fatalf("gave up after %v — did not actually block", el)
	}
	close(gate)
	p.Shutdown()
	p.Wait()
}

// TestShedOldestEvictsForNewest drives the buffered newest-wins policy:
// at the admission budget the oldest pending task is shed to admit the
// new one, every submission is accepted, and the ledger stays exact.
func TestShedOldestEvictsForNewest(t *testing.T) {
	p := New(NewBuffered(), Config{
		KeepAlive:    50 * time.Millisecond,
		MaxWorkers:   1,
		CoreWorkers:  1,
		MaxPending:   2,
		OnSaturation: ShedOldest,
	})
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker busy", func() bool { return p.Stats().Active == 1 })

	var mu sync.Mutex
	var ranIDs []int
	for i := 1; i <= 5; i++ {
		i := i
		if err := p.Submit(func() {
			mu.Lock()
			ranIDs = append(ranIDs, i)
			mu.Unlock()
		}); err != nil {
			t.Fatalf("submit %d under ShedOldest: %v", i, err)
		}
	}
	close(gate)
	res := p.Drain(context.Background())
	if !res.Drained {
		t.Fatalf("drain: %+v", res)
	}
	st := p.Stats()
	if st.Shed != 3 || st.Completed != 3 { // gate task + newest two
		t.Fatalf("shed=%d completed=%d, want 3/3 (%+v)", st.Shed, st.Completed, st)
	}
	if gap := st.ConservationGap(); gap != 0 {
		t.Fatalf("conservation gap %d: %+v", gap, st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ranIDs) != 2 || ranIDs[0] != 4 || ranIDs[1] != 5 {
		t.Fatalf("survivors = %v, want newest [4 5]", ranIDs)
	}
}

// TestDrainForcedReturnsBacklog drives phase 3: a worker wedged on a task
// keeps the backlog pending past the drain deadline, so the drain forces,
// hands every undispatched task back, and the ledger settles with zero
// loss once the wedge clears.
func TestDrainForcedReturnsBacklog(t *testing.T) {
	p := New(NewBuffered(), Config{KeepAlive: 50 * time.Millisecond, MaxWorkers: 1, CoreWorkers: 1})
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker busy", func() bool { return p.Stats().Active == 1 })

	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		time.Sleep(80 * time.Millisecond)
		close(gate) // un-wedge the worker after the drain deadline
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res := p.Drain(ctx)
	if !res.Forced || res.Drained {
		t.Fatalf("expected forced drain, got %+v", res)
	}
	if len(res.Returned) != 10 {
		t.Fatalf("returned %d tasks, want 10", len(res.Returned))
	}
	if ran.Load() != 0 {
		t.Fatalf("%d returned tasks also ran", ran.Load())
	}
	st := p.Stats()
	if st.Returned != 10 || st.Completed != 1 {
		t.Fatalf("returned=%d completed=%d, want 10/1", st.Returned, st.Completed)
	}
	if gap := st.ConservationGap(); gap != 0 {
		t.Fatalf("conservation gap %d: %+v", gap, st)
	}
	// The caller owns the returned tasks — running them must work.
	for _, task := range res.Returned {
		task()
	}
	if ran.Load() != 10 {
		t.Fatalf("returned tasks not runnable: ran %d", ran.Load())
	}
}

// TestDrainUnderSubmitStorm races Drain against eight submitters: the
// quiesce phase must cut admission over cleanly (every submitter sees
// ErrDraining/ErrShutdown from one point on), the drain must settle the
// ledger exactly, and no goroutine may survive.
func TestDrainUnderSubmitStorm(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 20 * time.Millisecond, MaxWorkers: 8, OnSaturation: CallerRuns})
	var stormed sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 8; s++ {
		stormed.Add(1)
		go func() {
			defer stormed.Done()
			for {
				err := p.Submit(func() { time.Sleep(50 * time.Microsecond) })
				if errors.Is(err, ErrDraining) || errors.Is(err, ErrShutdown) {
					return
				}
				if err != nil {
					t.Errorf("storm submit: %v", err)
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res := p.Drain(ctx)
	close(stop)
	stormed.Wait()
	if !res.Drained && !res.Forced {
		t.Fatalf("drain reached no terminal phase: %+v", res)
	}
	st := p.Stats()
	if st.Live != 0 || st.Active != 0 || st.Pending != 0 {
		t.Fatalf("unsettled pool after drain: %+v", st)
	}
	if gap := st.ConservationGap(); gap != 0 {
		t.Fatalf("conservation gap %d: %+v", gap, st)
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-drain Submit = %v, want ErrShutdown", err)
	}
}

// TestKeepAliveExpiryLeaksNoGoroutines is the lifecycle leak detector:
// after a burst, every worker must retire through keep-alive expiry and
// the goroutine count must return to its pre-pool level.
func TestKeepAliveExpiryLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	p := New(newQueue(), Config{KeepAlive: 5 * time.Millisecond})
	var done sync.WaitGroup
	for i := 0; i < 20; i++ {
		done.Add(1)
		if err := p.Submit(func() { done.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	done.Wait()
	waitFor(t, "workers to expire", func() bool { return p.Stats().Live == 0 })
	p.Shutdown()
	p.Wait()
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC() // flush finalizer goroutines out of the count
		return runtime.NumGoroutine() <= before
	})
}

// TestPanicStormEngagesCrashLoopBackoff: a run of consecutive panicking
// tasks must trip the crash-loop breaker — pausing pool growth — without
// killing workers, and one healthy task must re-arm normal operation.
func TestPanicStormEngagesCrashLoopBackoff(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 200 * time.Millisecond, CoreWorkers: 1, MaxWorkers: 4})
	// Serial panic storm through the single core worker.
	for i := 0; i < crashLoopThreshold+2; i++ {
		done := make(chan struct{})
		submitOne(t, p, func() { defer close(done); panic("storm") })
		<-done
	}
	waitFor(t, "panics tallied", func() bool {
		return p.Stats().Panicked == crashLoopThreshold+2
	})
	if p.Stats().CrashLoops < 1 {
		t.Fatalf("breaker did not trip: %+v", p.Stats())
	}

	// With the breaker tripped and the core worker busy, the grow path
	// is paused: Submit saturates below MaxWorkers.
	gate := make(chan struct{})
	submitOne(t, p, func() { <-gate })
	waitFor(t, "worker busy", func() bool { return p.Stats().Active == 1 })
	if err := p.Submit(func() {}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("growth during crash loop = %v, want ErrSaturated (backoff)", err)
	}
	if st := p.Stats(); st.Spawned != 1 {
		t.Fatalf("pool grew during a crash loop: spawned=%d", st.Spawned)
	}
	close(gate) // the healthy task completes and re-arms growth

	waitFor(t, "breaker reset", func() bool { return !p.crashLoop.Load() })
	gate2 := make(chan struct{})
	submitOne(t, p, func() { <-gate2 })
	waitFor(t, "worker busy again", func() bool { return p.Stats().Active == 1 })
	ok := make(chan struct{})
	if err := p.Submit(func() { close(ok) }); err != nil {
		t.Fatalf("post-recovery growth failed: %v", err)
	}
	select {
	case <-ok:
	case <-time.After(5 * time.Second):
		t.Fatal("grown worker never ran the task")
	}
	close(gate2)
	p.Shutdown()
	p.Wait()
	if gap := p.Stats().ConservationGap(); gap != 0 {
		t.Fatalf("conservation gap %d: %+v", gap, p.Stats())
	}
}

// submitOne lands a task on a synchronous pool, retrying the benign
// window where the worker has not yet returned to its poll.
func submitOne(t *testing.T, p *Pool, task Task) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := p.Submit(task)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrSaturated) || time.Now().After(deadline) {
			t.Fatalf("submit: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMaxPendingBoundsBacklog pins the admission budget: with Reject at
// the budget, the accepted-but-undispatched backlog never exceeds
// MaxPending.
func TestMaxPendingBoundsBacklog(t *testing.T) {
	p := New(NewBuffered(), Config{KeepAlive: 50 * time.Millisecond, MaxWorkers: 1, CoreWorkers: 1, MaxPending: 3})
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker busy", func() bool { return p.Stats().Active == 1 })

	accepted, saturated := 0, 0
	for i := 0; i < 10; i++ {
		switch err := p.Submit(func() {}); {
		case err == nil:
			accepted++
		case errors.Is(err, ErrSaturated):
			saturated++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
		if pend := p.Stats().Pending; pend > 3 {
			t.Fatalf("pending backlog %d exceeds budget 3", pend)
		}
	}
	if accepted != 3 || saturated != 7 {
		t.Fatalf("accepted=%d saturated=%d, want 3/7", accepted, saturated)
	}
	close(gate)
	res := p.Drain(context.Background())
	if !res.Drained {
		t.Fatalf("drain: %+v", res)
	}
	if gap := p.Stats().ConservationGap(); gap != 0 {
		t.Fatalf("conservation gap %d: %+v", gap, p.Stats())
	}
}

// TestDispatchBatchConservation pins the batched-dispatch path: with
// DispatchBatch set, a worker that wakes for one task claims a burst of
// backlog through the queue's DrainTo facet and runs every claimed task
// through the normal dispatch wrapper — so under burst load the ledger
// must balance exactly, and a poison pill swept up mid-batch must still
// shut the worker down. Runs over both queue shapes that provide the
// facet: the buffered work queue and a synchronous hand-off queue.
func TestDispatchBatchConservation(t *testing.T) {
	shapes := []struct {
		name string
		q    Queue
	}{
		{"buffered", NewBuffered()},
		{"synchronous", newQueue()},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			p := New(shape.q, Config{
				KeepAlive: 50 * time.Millisecond, MaxWorkers: 4, CoreWorkers: 2,
				DispatchBatch: 8,
				// The synchronous shape saturates under a 4-producer burst
				// (no backlog to absorb it); Wait gives bounded hand-off
				// backpressure instead of ErrSaturated.
				OnSaturation: Wait,
			})
			const producers, perProducer = 4, 100
			var ran atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < producers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < perProducer; j++ {
						if err := p.Submit(func() { ran.Add(1) }); err != nil {
							t.Errorf("submit: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			waitFor(t, "all tasks completed", func() bool {
				return ran.Load() == producers*perProducer
			})

			p.Shutdown()
			done := make(chan struct{})
			go func() { p.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("Wait hung: a worker missed shutdown under batched dispatch")
			}
			st := p.Stats()
			if st.Completed != producers*perProducer {
				t.Fatalf("Completed = %d, want %d (stats: %+v)", st.Completed, producers*perProducer, st)
			}
			if gap := st.ConservationGap(); gap != 0 {
				t.Fatalf("conservation gap %d under batched dispatch: %+v", gap, st)
			}
		})
	}
}
