package pool_test

import (
	"fmt"
	"sync"

	"synchq"
	"synchq/pool"
)

// A cached pool grows on demand and hands tasks straight to idle workers.
func ExamplePool() {
	p := pool.New(synchq.NewUnfair[pool.Task](), pool.Config{})
	var wg sync.WaitGroup
	results := make([]int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		i := i
		if err := p.Submit(func() {
			defer wg.Done()
			results[i] = i * i
		}); err != nil {
			panic(err)
		}
	}
	wg.Wait()
	fmt.Println(results)
	p.Shutdown()
	p.Wait()
	// Output: [0 1 4 9]
}

// SubmitFunc returns a Future for the task's result.
func ExampleSubmitFunc() {
	p := pool.New(synchq.NewUnfair[pool.Task](), pool.Config{})
	fut, err := pool.SubmitFunc(p, func() (string, error) {
		return "computed", nil
	})
	if err != nil {
		panic(err)
	}
	v, _ := fut.Get()
	fmt.Println(v)
	p.Shutdown()
	p.Wait()
	// Output: computed
}
