package pool_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"synchq"
	"synchq/pool"
)

// A cached pool grows on demand and hands tasks straight to idle workers.
func ExamplePool() {
	p := pool.New(synchq.NewUnfair[pool.Task](), pool.Config{})
	var wg sync.WaitGroup
	results := make([]int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		i := i
		if err := p.Submit(func() {
			defer wg.Done()
			results[i] = i * i
		}); err != nil {
			panic(err)
		}
	}
	wg.Wait()
	fmt.Println(results)
	p.Shutdown()
	p.Wait()
	// Output: [0 1 4 9]
}

// SubmitFunc returns a Future for the task's result.
func ExampleSubmitFunc() {
	p := pool.New(synchq.NewUnfair[pool.Task](), pool.Config{})
	fut, err := pool.SubmitFunc(p, func() (string, error) {
		return "computed", nil
	})
	if err != nil {
		panic(err)
	}
	v, _ := fut.Get()
	fmt.Println(v)
	p.Shutdown()
	p.Wait()
	// Output: computed
}

// SubmitContext makes admission deadline-aware: a context that is already
// done is refused at the door, with the context's own error.
func ExamplePool_SubmitContext() {
	p := pool.New(synchq.NewUnfair[pool.Task](), pool.Config{})
	defer func() { p.Shutdown(); p.Wait() }()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.SubmitContext(ctx, func() {})
	fmt.Println("canceled submission:", err)

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	err = p.SubmitContext(expired, func() {})
	fmt.Println("expired submission:", err)

	st := p.Stats()
	fmt.Println("accepted:", st.Accepted, "rejected:", st.Rejected)
	// Output:
	// canceled submission: context canceled
	// expired submission: context deadline exceeded
	// accepted: 0 rejected: 2
}

// A bounded admission budget with the ShedOldest policy keeps the backlog
// fresh under overload: the newest work evicts the oldest.
func ExamplePool_shedding() {
	p := pool.New(pool.NewBuffered(), pool.Config{
		CoreWorkers:  1,
		MaxWorkers:   1,
		MaxPending:   2,
		OnSaturation: pool.ShedOldest,
	})

	// Wedge the only worker so submissions pile into the pending budget.
	release := make(chan struct{})
	if err := p.Submit(func() { <-release }); err != nil {
		panic(err)
	}
	for p.Stats().Active == 0 {
		time.Sleep(time.Millisecond)
	}

	var mu sync.Mutex
	var ran []int
	for i := 1; i <= 4; i++ {
		i := i
		if err := p.Submit(func() {
			mu.Lock()
			ran = append(ran, i)
			mu.Unlock()
		}); err != nil {
			panic(err)
		}
	}

	close(release)
	p.Drain(nil) // nil context: wait for the surviving backlog
	fmt.Println("ran:", ran)
	fmt.Println("shed:", p.Stats().Shed)
	// Output:
	// ran: [3 4]
	// shed: 2
}

// Drain shuts down gracefully in phases; when its context expires first,
// the undispatched backlog is returned to the caller instead of being
// lost, and the conservation ledger still balances exactly.
func ExamplePool_Drain() {
	p := pool.New(pool.NewBuffered(), pool.Config{CoreWorkers: 1, MaxWorkers: 1})

	release := make(chan struct{})
	if err := p.Submit(func() { <-release }); err != nil {
		panic(err)
	}
	for p.Stats().Active == 0 {
		time.Sleep(time.Millisecond)
	}

	var ran atomic.Int64
	for i := 0; i < 3; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			panic(err)
		}
	}

	go func() { time.Sleep(20 * time.Millisecond); close(release) }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res := p.Drain(ctx)
	for _, task := range res.Returned {
		task() // the caller owns returned tasks: run, log, or requeue
	}

	st := p.Stats()
	fmt.Println("every task ran:", ran.Load() == 3)
	fmt.Println("ledger gap:", st.ConservationGap())
	// Output:
	// every task ran: true
	// ledger gap: 0
}
