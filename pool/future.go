package pool

import (
	"context"
	"fmt"
)

// Future is the pending result of a task submitted with SubmitFunc. It is
// completed exactly once.
type Future[R any] struct {
	done chan struct{}
	val  R
	err  error
}

// SubmitFunc schedules f on p and returns a Future for its result. A panic
// inside f is recovered and surfaced as the Future's error.
func SubmitFunc[R any](p *Pool, f func() (R, error)) (*Future[R], error) {
	fut := &Future[R]{done: make(chan struct{})}
	err := p.Submit(func() {
		defer close(fut.done)
		defer func() {
			if r := recover(); r != nil {
				fut.err = fmt.Errorf("pool: task panicked: %v", r)
			}
		}()
		fut.val, fut.err = f()
	})
	if err != nil {
		return nil, err
	}
	return fut, nil
}

// Get blocks until the task completes and returns its result.
func (f *Future[R]) Get() (R, error) {
	<-f.done
	return f.val, f.err
}

// GetContext is Get abandoned when ctx is done. The task itself keeps
// running; only the wait is abandoned.
func (f *Future[R]) GetContext(ctx context.Context) (R, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero R
		return zero, ctx.Err()
	}
}

// Done reports whether the task has completed.
func (f *Future[R]) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}
