package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synchq"
)

func newQueue() Queue {
	return synchq.NewUnfair[Task]()
}

func TestSubmitRunsTask(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 20 * time.Millisecond})
	done := make(chan struct{})
	if err := p.Submit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("task never ran")
	}
	p.Shutdown()
	p.Wait()
}

func TestTasksRunConcurrentlyOnDemand(t *testing.T) {
	// A cached pool must grow: two blocking tasks need two workers.
	p := New(newQueue(), Config{KeepAlive: 20 * time.Millisecond})
	gate := make(chan struct{})
	var running atomic.Int32
	for i := 0; i < 2; i++ {
		err := p.Submit(func() {
			running.Add(1)
			<-gate
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for running.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d tasks running; pool failed to grow", running.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	p.Shutdown()
	p.Wait()
}

func TestIdleWorkerIsReusedViaHandoff(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: time.Second})
	run := func() {
		done := make(chan struct{})
		if err := p.Submit(func() { close(done) }); err != nil {
			t.Fatal(err)
		}
		<-done
	}
	run()
	// Give the worker time to come back to Poll.
	time.Sleep(20 * time.Millisecond)
	run()
	st := p.Stats()
	if st.Handoffs == 0 {
		t.Fatalf("no synchronous hand-offs recorded: %+v", st)
	}
	if st.Spawned != 1 {
		t.Fatalf("spawned %d workers, want 1 (idle worker should be reused)", st.Spawned)
	}
	p.Shutdown()
	p.Wait()
}

func TestWorkersExpireAfterKeepAlive(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 10 * time.Millisecond})
	done := make(chan struct{})
	if err := p.Submit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	<-done
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Live != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker did not expire: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitAfterShutdownFails(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 10 * time.Millisecond})
	p.Shutdown()
	if err := p.Submit(func() {}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Submit after shutdown = %v, want ErrShutdown", err)
	}
	p.Wait()
}

func TestNilTaskRejected(t *testing.T) {
	p := New(newQueue(), Config{})
	if err := p.Submit(nil); !errors.Is(err, ErrNilTask) {
		t.Fatalf("Submit(nil) = %v, want ErrNilTask", err)
	}
	p.Shutdown()
}

func TestShutdownWakesIdleWorkers(t *testing.T) {
	// Long keep-alive, but Shutdown must still complete promptly by
	// poisoning idle workers.
	p := New(newQueue(), Config{KeepAlive: time.Hour})
	done := make(chan struct{})
	if err := p.Submit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	<-done
	time.Sleep(20 * time.Millisecond) // let the worker reach Poll
	t0 := time.Now()
	p.Shutdown()
	p.Wait()
	if time.Since(t0) > 5*time.Second {
		t.Fatal("Shutdown took too long; idle worker not poisoned")
	}
}

func TestMaxWorkersRejectPolicy(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: time.Second, MaxWorkers: 1, OnSaturation: Reject})
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker is busy.
	time.Sleep(10 * time.Millisecond)
	err := p.Submit(func() {})
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("Submit at saturation = %v, want ErrSaturated", err)
	}
	close(gate)
	p.Shutdown()
	p.Wait()
}

func TestMaxWorkersCallerRunsPolicy(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: time.Second, MaxWorkers: 1, OnSaturation: CallerRuns})
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	ran := false
	if err := p.Submit(func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("CallerRuns did not run the task on the submitter")
	}
	close(gate)
	p.Shutdown()
	p.Wait()
}

func TestMaxWorkersWaitPolicy(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: time.Second, MaxWorkers: 1, OnSaturation: Wait})
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	submitted := make(chan error, 1)
	go func() { submitted <- p.Submit(func() {}) }()
	select {
	case <-submitted:
		t.Fatal("Wait policy returned while the pool was saturated")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate) // worker frees up and polls; the waiting Submit lands
	select {
	case err := <-submitted:
		if err != nil {
			t.Fatalf("waiting Submit failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiting Submit never completed")
	}
	p.Shutdown()
	p.Wait()
}

func TestManySubmittersAllTasksRun(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 20 * time.Millisecond})
	const submitters, perSubmitter = 8, 200
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				for p.Submit(func() { ran.Add(1) }) != nil {
					t.Error("Submit failed unexpectedly")
					return
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for ran.Load() != submitters*perSubmitter {
		if time.Now().After(deadline) {
			t.Fatalf("ran %d tasks, want %d", ran.Load(), submitters*perSubmitter)
		}
		time.Sleep(time.Millisecond)
	}
	p.Shutdown()
	p.Wait()
	if got := p.Stats().Completed; got != submitters*perSubmitter {
		t.Fatalf("Completed = %d, want %d", got, submitters*perSubmitter)
	}
}

func TestPoolOverEveryQueueKind(t *testing.T) {
	kinds := map[string]func() Queue{
		"fair":   func() Queue { return synchq.NewFair[Task]() },
		"unfair": func() Queue { return synchq.NewUnfair[Task]() },
	}
	for name, mk := range kinds {
		t.Run(name, func(t *testing.T) {
			p := New(mk(), Config{KeepAlive: 20 * time.Millisecond})
			var ran atomic.Int64
			for i := 0; i < 100; i++ {
				if err := p.Submit(func() { ran.Add(1) }); err != nil {
					t.Fatal(err)
				}
			}
			deadline := time.Now().Add(5 * time.Second)
			for ran.Load() != 100 {
				if time.Now().After(deadline) {
					t.Fatalf("ran %d/100 tasks", ran.Load())
				}
				time.Sleep(time.Millisecond)
			}
			p.Shutdown()
			p.Wait()
		})
	}
}

func TestFutureGet(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 20 * time.Millisecond})
	fut, err := SubmitFunc(p, func() (int, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	v, err := fut.Get()
	if err != nil || v != 7 {
		t.Fatalf("Get = (%d,%v), want (7,nil)", v, err)
	}
	if !fut.Done() {
		t.Fatal("Done() false after Get")
	}
	p.Shutdown()
	p.Wait()
}

func TestFuturePanicBecomesError(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 20 * time.Millisecond})
	fut, err := SubmitFunc(p, func() (int, error) { panic("boom") })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Get(); err == nil {
		t.Fatal("panicking task produced no error")
	}
	p.Shutdown()
	p.Wait()
}

func TestFutureGetContext(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 50 * time.Millisecond})
	gate := make(chan struct{})
	fut, err := SubmitFunc(p, func() (int, error) { <-gate; return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := fut.GetContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("GetContext = %v, want DeadlineExceeded", err)
	}
	close(gate)
	if v, err := fut.Get(); err != nil || v != 1 {
		t.Fatalf("Get after unblock = (%d,%v)", v, err)
	}
	p.Shutdown()
	p.Wait()
}

func TestPanickingTaskDoesNotKillWorkerOrProcess(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 200 * time.Millisecond})
	if err := p.Submit(func() { panic("task bug") }); err != nil {
		t.Fatal(err)
	}
	// The pool must remain fully serviceable afterwards.
	done := make(chan struct{})
	if err := p.Submit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool unserviceable after a panicking task")
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Panicked != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("Panicked = %d, want 1", p.Stats().Panicked)
		}
		time.Sleep(time.Millisecond)
	}
	p.Shutdown()
	p.Wait()
}

func TestCoreWorkersSurviveKeepAlive(t *testing.T) {
	p := New(newQueue(), Config{KeepAlive: 10 * time.Millisecond, CoreWorkers: 2})
	var done sync.WaitGroup
	done.Add(3)
	for i := 0; i < 3; i++ {
		gate := make(chan struct{})
		if err := p.Submit(func() { close(gate); done.Done() }); err != nil {
			t.Fatal(err)
		}
		<-gate
	}
	done.Wait()
	// Beyond several keep-alive periods, exactly the core must remain.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Live != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("Live = %d, want 2 core workers", p.Stats().Live)
		}
		time.Sleep(time.Millisecond)
	}
	// Core workers must still serve.
	ok := make(chan struct{})
	if err := p.Submit(func() { close(ok) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ok:
	case <-time.After(5 * time.Second):
		t.Fatal("core worker did not pick up work")
	}
	p.Shutdown()
	p.Wait()
}

func TestFixedPoolRunsEverythingWithBoundedWorkers(t *testing.T) {
	p := NewFixed(3)
	const tasks = 500
	var ran atomic.Int64
	for i := 0; i < tasks; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for ran.Load() != tasks {
		if time.Now().After(deadline) {
			t.Fatalf("ran %d/%d tasks", ran.Load(), tasks)
		}
		time.Sleep(time.Millisecond)
	}
	st := p.Stats()
	if st.Spawned > 3 {
		t.Fatalf("fixed pool spawned %d workers, cap is 3", st.Spawned)
	}
	p.Shutdown()
	p.Wait()
	if p.Stats().Live != 0 {
		t.Fatalf("Live = %d after shutdown", p.Stats().Live)
	}
}

func TestFixedPoolSubmitNeverBlocks(t *testing.T) {
	p := NewFixed(1)
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	// With the single worker busy, further submissions buffer without
	// blocking the submitter.
	start := time.Now()
	for i := 0; i < 100; i++ {
		if err := p.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("buffered Submit blocked")
	}
	close(gate)
	p.Shutdown()
	p.Wait()
}

func TestFixedPoolShutdownDrainsBacklog(t *testing.T) {
	p := NewFixed(1)
	var ran atomic.Int64
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate; ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	// FIFO backlog sits ahead of any poison, so everything already
	// submitted runs before the worker exits.
	deadline := time.Now().Add(10 * time.Second)
	for ran.Load() != 11 {
		if time.Now().After(deadline) {
			t.Fatalf("ran %d/11 before shutdown", ran.Load())
		}
		time.Sleep(time.Millisecond)
	}
	p.Shutdown()
	p.Wait()
}

func TestBufferedQueueFIFO(t *testing.T) {
	q := NewBuffered()
	order := make(chan int, 3)
	for i := 1; i <= 3; i++ {
		i := i
		if !q.Offer(func() { order <- i }) {
			t.Fatal("buffered Offer failed")
		}
	}
	for want := 1; want <= 3; want++ {
		task, ok := q.PollTimeout(time.Second)
		if !ok {
			t.Fatal("PollTimeout failed with buffered tasks")
		}
		task()
		if got := <-order; got != want {
			t.Fatalf("task order %d, want %d (FIFO violated)", got, want)
		}
	}
	if _, ok := q.PollTimeout(5 * time.Millisecond); ok {
		t.Fatal("PollTimeout succeeded on drained buffer")
	}
}
