package pool

import (
	"context"
	"time"

	"synchq/internal/metrics"
)

// DrainResult reports how far a Drain got and what it reclaimed.
type DrainResult struct {
	// Drained is true when the accepted backlog executed fully before
	// the context expired (phase 2 completed).
	Drained bool
	// Forced is true when the context expired and phase 3 reclaimed the
	// remaining backlog.
	Forced bool
	// Returned holds the original task functions of accepted tasks that
	// never ran, oldest first. The caller owns them: run them, log
	// them, or requeue them elsewhere — they are counted as Returned in
	// Stats either way, so conservation holds.
	Returned []Task
}

// drainPollInterval paces phase 2's completion checks. Workers are
// executing the backlog concurrently; the drain only observes counters.
const drainPollInterval = 200 * time.Microsecond

// Drain shuts the pool down gracefully in three phases:
//
//  1. Quiesce — admission stops: new submissions fail with ErrDraining
//     while workers keep executing the accepted backlog.
//  2. Drain pending — wait until every accepted task has been dispatched
//     and finished, bounded by ctx.
//  3. Force — if ctx expires first, every accepted-but-undispatched task
//     is reclaimed and returned to the caller, and the backing queue is
//     closed (when it supports Close) so blocked producers and idle
//     workers wake immediately.
//
// In all cases Drain then performs Shutdown and waits for every worker
// goroutine to exit before returning, so a returned Drain means no leaked
// goroutines and a settled conservation ledger: Accepted == Completed +
// Shed + Returned. Tasks already executing when the context expires are
// not interrupted (Go cannot cancel them); Drain waits for them.
//
// A nil ctx waits indefinitely for phase 2. Drain is idempotent in
// effect; concurrent callers race benignly, with reclaimed tasks split
// between their results.
func (p *Pool) Drain(ctx context.Context) DrainResult {
	var res DrainResult

	// Phase 1 — quiesce admission.
	t0 := time.Now()
	p.draining.Store(true)
	p.h.Record(metrics.DrainNs, time.Since(t0))

	// Phase 2 — let the workers drain the accepted backlog.
	t1 := time.Now()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for {
		if p.pendN.Load() == 0 && p.active.Load() == 0 {
			res.Drained = true
			break
		}
		if ctx != nil && ctx.Err() != nil {
			break
		}
		// A buffered backlog with every worker expired has no one left
		// to dispatch it; restart one worker to finish the job.
		if p.workers.Load() == 0 {
			p.trySpawn(nil, 1)
		}
		select {
		case <-done:
		case <-time.After(drainPollInterval):
		}
	}
	p.h.Record(metrics.DrainNs, time.Since(t1))

	// Phase 3 — force: reclaim what never dispatched, wake the blocked.
	if !res.Drained {
		t2 := time.Now()
		res.Forced = true
		res.Returned = p.reclaimPending()
		if c, ok := p.q.(Closer); ok {
			c.Close()
		}
		p.h.Record(metrics.DrainNs, time.Since(t2))
	}

	p.Shutdown()
	p.wg.Wait()

	// A submission that slipped past the quiesce flag can have linked
	// its envelope while phase 2 was finishing; with the workers gone,
	// reclaim such stragglers too so the ledger settles exactly.
	if late := p.reclaimPending(); len(late) > 0 {
		res.Returned = append(res.Returned, late...)
	}
	return res
}
