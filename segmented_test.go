package synchq_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"synchq"
)

// Public-surface tests for the Segmented option. The conformance suite
// already runs the demand/timed contracts over segmented and
// segmented+sharded builds; these pin the option-specific behavior —
// reported fairness, composition with Sharded and Instrument, and the
// closed-queue error surface.

func TestSegmentedOptionRoundTrip(t *testing.T) {
	q := synchq.New[int](synchq.Segmented())
	if !q.Fair() {
		t.Error("Fair() = false for a segmented queue; pairing is FIFO by arrival")
	}
	if got := q.Shards(); got != 1 {
		t.Errorf("Shards() = %d for an unsharded segmented queue, want 1", got)
	}

	const n = 2000
	var wg sync.WaitGroup
	sum := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			sum += q.Take()
		}
	}()
	for i := 0; i < n; i++ {
		q.Put(i)
	}
	wg.Wait()
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("sum of transferred values = %d, want %d", sum, want)
	}
}

func TestSegmentedSharded(t *testing.T) {
	q := synchq.New[int](synchq.Segmented(), synchq.Sharded(4))
	if got := q.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	const n = 1000
	const workers = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	sum := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < n/workers; i++ {
				local += q.Take()
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}()
	}
	for i := 0; i < n; i++ {
		q.Put(i)
	}
	wg.Wait()
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("sum across shards = %d, want %d", sum, want)
	}
}

func TestSegmentedInstrumented(t *testing.T) {
	m := synchq.NewMetrics()
	q := synchq.New[int](synchq.Segmented(), synchq.Instrument(m))
	done := make(chan int)
	go func() { done <- q.Take() }()
	q.Put(1)
	<-done
	if _, ok := q.PollTimeout(time.Millisecond); ok {
		t.Fatal("PollTimeout succeeded with no producer")
	}
	stats := m.Stats()
	if got := stats.Counters["fulfillments"]; got != 1 {
		t.Errorf("fulfillments = %d, want 1", got)
	}
	if got := stats.Counters["timeouts"]; got == 0 {
		t.Error("timeouts = 0 after a timed-out poll")
	}
}

func TestSegmentedContextAndClose(t *testing.T) {
	q := synchq.New[int](synchq.Segmented())

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := q.TakeContext(ctx)
		errc <- err
	}()
	time.Sleep(time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled TakeContext error = %v, want context.Canceled", err)
	}

	statuses := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			statuses <- q.PutContext(context.Background(), 1)
		}()
	}
	time.Sleep(time.Millisecond)
	q.Close()
	for i := 0; i < 2; i++ {
		if err := <-statuses; !errors.Is(err, synchq.ErrClosed) {
			t.Fatalf("post-close waiter error = %v, want ErrClosed", err)
		}
	}
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if err := q.PutContext(context.Background(), 2); !errors.Is(err, synchq.ErrClosed) {
		t.Fatalf("PutContext on closed queue = %v, want ErrClosed", err)
	}
}
