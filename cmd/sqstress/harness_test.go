package main

// Self-tests of the chaos harness plumbing: a small matrix cell runs
// clean and produces a well-formed verdict report, and a deliberately
// broken checker fails its row, fails the run, and carries a replay
// command — the end-to-end proof that a violated property cannot exit
// zero.

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"synchq/internal/props"
)

// tinyOptions is a fast single-cell matrix: one core, one option, two
// scenarios that exercise both the plain engine and the open/close cycle.
func tinyOptions() chaosOptions {
	return chaosOptions{
		seed:        7,
		cores:       []string{"queue"},
		opts:        []string{"default"},
		scenarios:   []string{"steady", "burst-open-close"},
		scenarioDur: 80 * time.Millisecond,
		producers:   2,
		consumers:   2,
		out:         io.Discard,
	}
}

func TestChaosMatrixSmoke(t *testing.T) {
	report, _ := runChaosMatrix(tinyOptions())
	if report == nil {
		t.Fatal("no report")
	}
	if len(report.Configs) != 1 {
		t.Fatalf("want 1 config, got %d", len(report.Configs))
	}
	cr := report.Configs[0]
	if cr.Config != "queue/default" {
		t.Fatalf("config label = %q", cr.Config)
	}
	if !strings.Contains(cr.Replay, "-cores queue") || !strings.Contains(cr.Replay, "-seed 7") {
		t.Fatalf("replay command incomplete: %q", cr.Replay)
	}
	// The always-invariants must hold on a clean structure regardless of
	// how short the run was; sometimes/reachable rows may legitimately
	// lack evidence after two scenarios, so only their presence is
	// asserted here (the full matrix demands they pass — see make soak).
	kinds := map[string]int{}
	for _, v := range cr.Verdicts {
		kinds[v.Kind]++
		if v.Kind == "always" && !v.Pass() {
			t.Errorf("always property %s failed: %s", v.Property, v.Detail)
		}
	}
	if kinds["always"] == 0 || kinds["sometimes"] == 0 || kinds["reachable"] == 0 {
		t.Fatalf("verdict table missing a kind: %v", kinds)
	}

	// The report must round-trip through its JSON schema.
	var back props.Report
	if err := json.Unmarshal(report.JSON(), &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if back.Seed != 7 || len(back.Configs) != 1 {
		t.Fatalf("JSON round-trip lost fields: %+v", back)
	}
}

func TestChaosSabotagedCheckerFailsRun(t *testing.T) {
	o := tinyOptions()
	o.scenarios = []string{"steady"}
	o.sabotage = true
	report, ok := runChaosMatrix(o)
	if ok || report.OK {
		t.Fatal("a run with a deliberately broken checker must fail")
	}
	var row *props.Verdict
	for i, v := range report.Configs[0].Verdicts {
		if v.Property == sabotageProp {
			row = &report.Configs[0].Verdicts[i]
		}
	}
	if row == nil {
		t.Fatalf("no verdict row for %s", sabotageProp)
	}
	if row.Pass() || !strings.Contains(row.Detail, "deliberately broken") {
		t.Fatalf("broken checker row wrong: %+v", row)
	}
	if report.Configs[0].OK {
		t.Fatal("config with a failing row must be marked not-OK")
	}
	// main exits nonzero exactly when runChaosMatrix reports !ok, so the
	// false return here is the nonzero exit.
}

func TestChaosUnknownSelectorsFail(t *testing.T) {
	for _, mutate := range []func(*chaosOptions){
		func(o *chaosOptions) { o.cores = []string{"no-such-core"} },
		func(o *chaosOptions) { o.opts = []string{"no-such-opt"} },
		func(o *chaosOptions) { o.scenarios = []string{"no-such-scenario"} },
	} {
		o := tinyOptions()
		mutate(&o)
		if _, ok := runChaosMatrix(o); ok {
			t.Fatal("unknown selector must fail the run")
		}
	}
}
