package main

// The chaos scenario library. Every scenario drives a fresh instance of
// the structure under test through the shared workload engine while the
// configuration's property suite watches: always-properties are checked
// continuously on a ticker and exactly once after quiesce-and-drain,
// sometimes-properties collect evidence from operation outcomes and
// metrics deltas, and reachable-properties read the shared fault
// injector's site counters at verdict time.

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"synchq/internal/core"
	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/props"
	"synchq/internal/verify"
)

// Property names shared between registration (chaosrun.go) and the
// engine's evidence/failure paths.
const (
	propConservation = "conservation"
	propSynchrony    = "synchrony"
	propFIFO         = "per-producer-fifo"
	propNoStranded   = "no-stranded-waiter"
	propTimeout      = "timeout-expires"
	propCloseReject  = "close-rejects-op"
	propCancelRace   = "cancel-races-fulfill"
	propExecLedger   = "executor-ledger"
	propDrainForce   = "drain-reaches-force"
	propBatchPartial = "batch-partial-unwind"
)

// chaosBatchMax is the largest batch the workload engine offers or polls
// in one operation; it widens the legal conservation slack, since one
// in-flight worker can now carry that many uncounted values.
const chaosBatchMax = 4

// Workload bounds: how long the engine waits for workers to return after
// stop/Close before declaring a stranded waiter, and the drain patience.
const (
	quiesceBound = 5 * time.Second
	closeBound   = 2 * time.Second
	drainWait    = 10 * time.Millisecond
)

// scenarioDef is one entry of the scenario library.
type scenarioDef struct {
	name string
	desc string
	// needsCancel marks scenarios meaningless without cancel support.
	needsCancel bool
	// execOnly marks scenarios that drive the executor tier's own
	// machinery (deadline shedding, graceful drain); they run only
	// against executor cores.
	execOnly bool
	// batchOnly marks scenarios that exercise the batched surface
	// directly; they run only against cores whose adapter implements
	// chaosBatcher.
	batchOnly bool
	run       func(rc *runCtx, dur time.Duration)
}

// scenarioLib is the library, in run order.
var scenarioLib = []scenarioDef{
	{
		name: "steady",
		desc: "balanced mixed workload with jittered patience",
		run: func(rc *runCtx, dur time.Duration) {
			rc.runWorkload("steady", dur, workloadTuning{})
		},
	},
	{
		name: "burst-open-close",
		desc: "bursty open/close cycles: Close mid-traffic, assert every waiter released",
		run:  runBurstOpenClose,
	},
	{
		name: "skew-flip",
		desc: "producer/consumer skew flips between 1:N and N:1 mid-run",
		run: func(rc *runCtx, dur time.Duration) {
			rc.runWorkload("skew-flip", dur, workloadTuning{skewPeriod: dur / 6})
		},
	},
	{
		name:        "cancel-storm",
		desc:        "every operation carries a short-fuse cancel channel",
		needsCancel: true,
		run: func(rc *runCtx, dur time.Duration) {
			rc.runWorkload("cancel-storm", dur, workloadTuning{
				cancelAfter: func(r *rand.Rand) time.Duration {
					return time.Duration(r.IntN(300)) * time.Microsecond
				},
			})
		},
	},
	{
		name: "churn",
		desc: "goroutine churn: workers live for a handful of ops and are respawned",
		run: func(rc *runCtx, dur time.Duration) {
			rc.runWorkload("churn", dur, workloadTuning{opsPerWorker: 24})
		},
	},
	{
		name: "slow-consumer",
		desc: "slow-consumer backpressure: impatient producers against dawdling consumers",
		run: func(rc *runCtx, dur time.Duration) {
			rc.runWorkload("slow-consumer", dur, workloadTuning{
				workerBoost: 4,
				producerPatience: func(r *rand.Rand) time.Duration {
					return time.Duration(r.IntN(150)) * time.Microsecond
				},
				consumerDelay: func(r *rand.Rand) time.Duration {
					return time.Duration(100+r.IntN(400)) * time.Microsecond
				},
			})
		},
	},
	{
		name: "procs-shift",
		desc: "GOMAXPROCS shifts between 1 and the run width mid-workload",
		run: func(rc *runCtx, dur time.Duration) {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wide := runtime.GOMAXPROCS(0)
			if wide < 2 {
				wide = 2
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				narrow := false
				for {
					select {
					case <-stop:
						return
					case <-time.After(25 * time.Millisecond):
						narrow = !narrow
						if narrow {
							runtime.GOMAXPROCS(1)
						} else {
							runtime.GOMAXPROCS(wide)
						}
					}
				}
			}()
			rc.runWorkload("procs-shift", dur, workloadTuning{})
			close(stop)
			wg.Wait()
			runtime.GOMAXPROCS(wide)
		},
	},
	{
		name: "width-shift",
		desc: "fabric width forced through grow/drain cycles mid-workload",
		run: func(rc *runCtx, dur time.Duration) {
			adapter := rc.build()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			if ws, ok := adapter.(widthShifter); ok {
				// Oscillate between a saturating contention signal and a
				// quiet one: each burst walks the controller through its
				// grow (or hysteresis-paced shrink) transitions, and every
				// transition runs the real activate/drain protocol — with
				// live traffic in flight and the injector free to freeze
				// the grow/drain windows.
				wg.Add(1)
				go func() {
					defer wg.Done()
					contended := true
					for {
						select {
						case <-stop:
							return
						case <-time.After(150 * time.Microsecond):
							for i := 0; i < 64; i++ {
								ws.ShiftWidth(contended)
							}
							contended = !contended
						}
					}
				}()
			}
			rc.driveWorkload("width-shift", adapter, dur, workloadTuning{}, nil)
			close(stop)
			wg.Wait()
		},
	},
	{
		name:      "batch-partial",
		desc:      "one consumer against a larger batch: the offer must deliver a prefix-exact partial fill and unwind the rest",
		batchOnly: true,
		run:       runBatchPartial,
	},
	{
		name:     "overload",
		desc:     "admission overload: µs-deadline chaff sheds at dispatch while real traffic flows",
		execOnly: true,
		run:      runOverload,
	},
	{
		name:     "drain-storm",
		desc:     "graceful drain mid-traffic: quiesce, bounded wait, forced reclaim, caller re-runs the returned",
		execOnly: true,
		run:      runDrainStorm,
	},
}

func scenarioByName(name string) (scenarioDef, bool) {
	for _, s := range scenarioLib {
		if s.name == name {
			return s, true
		}
	}
	return scenarioDef{}, false
}

// runCtx is the per-configuration harness context: the structure factory,
// the property suite, and the shared metrics handle and fault injector
// whose counters accumulate across the whole scenario library.
type runCtx struct {
	core  coreDef
	opt   optDef
	suite *props.Suite
	h     *metrics.Handle
	inj   *fault.Injector

	seed                 uint64
	producers, consumers int

	// nextProducer allocates value-tag ids unique across the whole
	// config run, so histories from different cycles never collide.
	nextProducer atomic.Int64

	// state is the scenario currently visible to the always-checkers.
	state atomic.Pointer[scenarioState]
}

// build constructs a fresh structure instance for one scenario (or one
// open/close cycle), wired to the shared handle and injector.
func (rc *runCtx) build() chaosStruct {
	cfg := rc.opt.apply(core.WaitConfig{Metrics: rc.h, Fault: rc.inj})
	return rc.core.build(cfg)
}

// scenarioState is the mutable invariant state of one scenario: the
// recorded history plus the counters the continuous checks read.
type scenarioState struct {
	name    string
	workers int64 // peak concurrent workload goroutines (for slack)
	slackHi int64 // legal offered-delivered gap mid-run
	slackLo int64 // legal gap the other way (takes counted before puts)
	rec     *verify.Recorder
	// adapter is the structure instance under test, for properties that
	// read structure-side ledgers (the executor-ledger check).
	adapter chaosStruct

	offered   atomic.Int64
	delivered atomic.Int64
	// inflight is offered-delivered maintained as ONE counter (+1 per
	// accepted offer, -1 per delivery), so the continuous checker reads
	// a consistent imbalance with a single load. Comparing separate
	// loads of offered and delivered would race with the workload: the
	// checker can be descheduled between the two loads, and every
	// transfer completing in that window skews the difference.
	inflight atomic.Int64

	finalized  atomic.Bool
	classified atomic.Pointer[verify.Classified]
	fifoErrs   atomic.Pointer[[]string]
}

func newScenarioState(rc *runCtx, name string, nworkers int) *scenarioState {
	workers := int64(nworkers)
	// One in-flight operation normally carries one uncounted value; on a
	// batch-capable core it can carry up to chaosBatchMax of them.
	perOp := int64(1)
	if rc.core.batch {
		perOp = chaosBatchMax
	}
	return &scenarioState{
		name:    name,
		workers: workers,
		slackHi: workers*perOp + 2 + rc.core.buffered,
		slackLo: workers*perOp + 2,
		rec:     verify.NewRecorder(),
	}
}

// producerOf recovers the producer tag from a workload value.
func producerOf(v int64) int64 { return v >> 40 }

// conservationCheck is the Always("conservation") checker. Mid-run the
// offered/delivered counters may legally diverge by the number of
// goroutines in flight (plus the structure's buffering capacity); at
// quiesce, after the drain, they must match exactly and the recorded
// history must contain no loss, duplication, or invention.
func (st *scenarioState) conservationCheck(final bool) error {
	if !final || !st.finalized.Load() {
		// A take can be counted before its put's +1 lands (the producer
		// is between the adapter returning OK and the counter update),
		// so the legal imbalance is symmetric in the worker count.
		if gap := st.inflight.Load(); gap > st.slackHi || gap < -st.slackLo {
			return fmt.Errorf("%s: offered/delivered gap %d exceeds in-flight slack [%d,%d]",
				st.name, gap, -st.slackLo, st.slackHi)
		}
		return nil
	}
	if off, del := st.offered.Load(), st.delivered.Load(); off != del {
		return fmt.Errorf("%s: offered=%d delivered=%d after drain", st.name, off, del)
	}
	if c := st.classified.Load(); c != nil && len(c.Conservation) > 0 {
		return fmt.Errorf("%s: %s", st.name, c.Conservation[0])
	}
	return nil
}

// synchronyCheck is the Always("synchrony") checker: every matched pair's
// put and take intervals must overlap. It is decidable only from the full
// history, so it reports at quiesce.
func (st *scenarioState) synchronyCheck(final bool) error {
	if !final || !st.finalized.Load() {
		return nil
	}
	if c := st.classified.Load(); c != nil && len(c.Synchrony) > 0 {
		return fmt.Errorf("%s: %s", st.name, c.Synchrony[0])
	}
	return nil
}

// fifoCheck is the Always("per-producer-fifo") checker for fair cores.
func (st *scenarioState) fifoCheck(final bool) error {
	if !final || !st.finalized.Load() {
		return nil
	}
	if errs := st.fifoErrs.Load(); errs != nil && len(*errs) > 0 {
		return fmt.Errorf("%s: %s", st.name, (*errs)[0])
	}
	return nil
}

// finalize runs the history checks once the workload has quiesced and the
// structure is drained, caching the classified violations for the final
// CheckAlways pass.
func (st *scenarioState) finalize(fifo bool) {
	history := st.rec.History()
	c := verify.CheckClassified(history, true)
	st.classified.Store(&c)
	if fifo {
		errs := verify.FIFOErrors(history, producerOf)
		st.fifoErrs.Store(&errs)
	}
	st.finalized.Store(true)
}

// workloadTuning parameterizes the shared engine.
type workloadTuning struct {
	// producerPatience / consumerPatience jitter each op's deadline;
	// nil selects the default 0–2ms band.
	producerPatience func(r *rand.Rand) time.Duration
	consumerPatience func(r *rand.Rand) time.Duration
	// cancelAfter, when non-nil, arms a cancel channel per operation.
	cancelAfter func(r *rand.Rand) time.Duration
	// consumerDelay, when non-nil, sleeps between polls (slow consumer).
	consumerDelay func(r *rand.Rand) time.Duration
	// opsPerWorker, when positive, retires each worker after that many
	// operations and respawns it (goroutine churn).
	opsPerWorker int
	// workerBoost multiplies the producer/consumer counts (0 = 1×); the
	// slow-consumer scenario uses it to pile enough waiters onto each
	// shard that interior-node cancellation (the clean path) runs.
	workerBoost int
	// skewPeriod, when positive, alternates which side is fully active:
	// odd phases throttle producers to one, even phases throttle
	// consumers to one.
	skewPeriod time.Duration
}

func defaultPatience(r *rand.Rand) time.Duration {
	return time.Duration(r.IntN(2000)) * time.Microsecond
}

// runWorkload drives the standard mixed workload against one fresh
// structure instance and runs the property checks around it.
func (rc *runCtx) runWorkload(name string, dur time.Duration, tune workloadTuning) {
	adapter := rc.build()
	rc.driveWorkload(name, adapter, dur, tune, nil)
}

// driveWorkload is the engine shared by the plain scenarios and the
// open/close cycles: run producers and consumers against adapter for dur,
// optionally firing midway (the close trigger), then quiesce, drain,
// finalize, and run the final always-checks.
func (rc *runCtx) driveWorkload(name string, adapter chaosStruct, dur time.Duration, tune workloadTuning, midway func()) {
	boost := tune.workerBoost
	if boost < 1 {
		boost = 1
	}
	producers, consumers := rc.producers*boost, rc.consumers*boost
	st := newScenarioState(rc, name, producers+consumers)
	st.adapter = adapter
	rc.state.Store(st)
	defer rc.state.Store(nil)

	if tune.producerPatience == nil {
		tune.producerPatience = defaultPatience
	}
	if tune.consumerPatience == nil {
		tune.consumerPatience = defaultPatience
	}

	before := rc.h.Snapshot()
	stop := make(chan struct{})
	tickDone := make(chan struct{})

	// Continuous always-checks on a ticker for the lifetime of the
	// workload: the "checked continuously" half of the Always contract.
	go func() {
		defer close(tickDone)
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				rc.suite.CheckAlways(false)
			}
		}
	}()

	// Phase word for skew flips: 0 = balanced, 1 = producer-heavy,
	// 2 = consumer-heavy.
	var phase atomic.Int32
	var flipWG sync.WaitGroup
	if tune.skewPeriod > 0 {
		flipWG.Add(1)
		go func() {
			defer flipWG.Done()
			p := int32(1)
			for {
				phase.Store(p)
				p = 3 - p // 1 ↔ 2
				select {
				case <-stop:
					return
				case <-time.After(tune.skewPeriod):
				}
			}
		}()
	}

	var wg sync.WaitGroup
	spawnProducer := func(slot int) { rc.producerLoop(&wg, st, adapter, slot, tune, &phase, stop) }
	spawnConsumer := func(slot int) { rc.consumerLoop(&wg, st, adapter, slot, tune, &phase, stop) }
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go spawnProducer(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go spawnConsumer(c)
	}

	if midway != nil {
		time.Sleep(dur / 2)
		midway()
		time.Sleep(dur - dur/2)
	} else {
		time.Sleep(dur)
	}
	close(stop)
	flipWG.Wait()

	bound := quiesceBound
	if midway != nil {
		// The structure was closed mid-run: waiters must be released by
		// the close itself, promptly.
		bound = closeBound
	}
	if !waitBounded(&wg, bound) {
		rc.suite.Lookup(propNoStranded).Fail(
			"%s: workload goroutines still blocked %v after %s",
			name, bound, map[bool]string{true: "Close", false: "stop"}[midway != nil])
		// Leave the stragglers behind; the run is already failed.
	} else if midway != nil {
		rc.suite.Lookup(propNoStranded).AddEvidence(int64(producers + consumers))
	}

	rc.drain(st, adapter)
	if q, ok := adapter.(quiescer); ok {
		if !q.Quiesce(closeBound) {
			rc.suite.Lookup(propNoStranded).Fail("%s: internal workers still live %v after close", name, closeBound)
		}
		rc.drain(st, adapter) // stragglers released by the quiesce
	}

	st.finalize(rc.core.fifo)
	rc.suite.CheckAlways(true)
	<-tickDone

	// Metrics-evidenced sometimes-properties (elimination fired, a
	// cross-shard steal completed) from this scenario's counter deltas.
	after := rc.h.Snapshot()
	for id, prop := range rc.core.sometimesCounters {
		rc.suite.Lookup(prop).AddEvidence(after.Get(id) - before.Get(id))
	}
}

// producerLoop runs one producer slot, respawning itself under churn.
func (rc *runCtx) producerLoop(wg *sync.WaitGroup, st *scenarioState, adapter chaosStruct, slot int, tune workloadTuning, phase *atomic.Int32, stop chan struct{}) {
	defer wg.Done()
	id := rc.nextProducer.Add(1)
	rng := rand.New(rand.NewPCG(rc.seed, uint64(id)))
	log := st.rec.NewThread()
	batcher, _ := adapter.(chaosBatcher)
	for seq := int64(0); ; seq++ {
		select {
		case <-stop:
			return
		default:
		}
		if phase.Load() == 2 && slot != 0 {
			// Consumer-heavy phase: all but one producer idles.
			time.Sleep(100 * time.Microsecond)
			continue
		}
		// A batch consumes several sequence numbers, so the churn check
		// must catch the budget being jumped over, not just hit exactly.
		if tune.opsPerWorker > 0 && seq >= int64(tune.opsPerWorker) {
			// Churn: retire this goroutine and respawn the slot.
			wg.Add(1)
			go rc.producerLoop(wg, st, adapter, slot, tune, phase, stop)
			return
		}
		patience := tune.producerPatience(rng)
		cancel, raced := armCancel(rng, tune.cancelAfter)
		if rc.core.batch && rng.IntN(6) == 0 {
			// Multi-item offer. Values keep the producer tag and ascending
			// sequence low bits, so the FIFO checker can order them even
			// though every item logs the operation's single interval.
			k := 2 + rng.IntN(chaosBatchMax-1)
			orig := make([]int64, k)
			for j := range orig {
				orig[j] = id<<40 | (seq + int64(j))
			}
			vs := append([]int64(nil), orig...)
			inv := log.Begin()
			n, stStatus := batcher.ChaosOfferBatch(vs, patience, cancel)
			// The partial-fill contract: vs[n:] is exactly the undelivered
			// set (the core may have compacted it), so delivery per item is
			// decided by membership, not by position.
			und := make(map[int64]bool, k-n)
			for _, u := range vs[n:] {
				und[u] = true
			}
			for _, v := range orig {
				log.End(verify.Put, v, inv, !und[v])
			}
			seq += int64(k - 1)
			if rc.noteBatchOffer(st, n, k, stStatus, raced) {
				return
			}
			continue
		}
		v := id<<40 | seq
		inv := log.Begin()
		stStatus := adapter.ChaosOffer(v, patience, cancel)
		log.End(verify.Put, v, inv, stStatus == core.OK)
		if rc.noteOutcome(st, stStatus, true, raced) {
			return
		}
	}
}

// consumerLoop runs one consumer slot, respawning itself under churn.
func (rc *runCtx) consumerLoop(wg *sync.WaitGroup, st *scenarioState, adapter chaosStruct, slot int, tune workloadTuning, phase *atomic.Int32, stop chan struct{}) {
	defer wg.Done()
	id := rc.nextProducer.Add(1) // distinct PRNG stream, never tags values
	rng := rand.New(rand.NewPCG(rc.seed+1<<32, uint64(id)))
	log := st.rec.NewThread()
	batcher, _ := adapter.(chaosBatcher)
	for ops := 0; ; ops++ {
		select {
		case <-stop:
			return
		default:
		}
		if phase.Load() == 1 && slot != 0 {
			// Producer-heavy phase: all but one consumer idles.
			time.Sleep(100 * time.Microsecond)
			continue
		}
		if tune.opsPerWorker > 0 && ops >= tune.opsPerWorker {
			wg.Add(1)
			go rc.consumerLoop(wg, st, adapter, slot, tune, phase, stop)
			return
		}
		if tune.consumerDelay != nil {
			time.Sleep(tune.consumerDelay(rng))
		}
		patience := tune.consumerPatience(rng)
		cancel, raced := armCancel(rng, tune.cancelAfter)
		if rc.core.batch && rng.IntN(6) == 0 {
			// Multi-item poll: waits for the first value, fills the rest
			// from committed producers. Every received value logs with the
			// operation's single interval.
			max := 2 + rng.IntN(chaosBatchMax-1)
			inv := log.Begin()
			buf, stStatus := batcher.ChaosPollBatch(max, patience, cancel)
			if len(buf) == 0 {
				log.End(verify.Take, 0, inv, false)
			}
			for _, v := range buf {
				log.End(verify.Take, v, inv, true)
			}
			if rc.noteBatchPoll(st, len(buf), stStatus, raced) {
				return
			}
			continue
		}
		inv := log.Begin()
		v, stStatus := adapter.ChaosPoll(patience, cancel)
		log.End(verify.Take, v, inv, stStatus == core.OK)
		if rc.noteOutcome(st, stStatus, false, raced) {
			return
		}
	}
}

// armCancel builds a per-op cancel channel with a random fuse. The
// returned raced func reports, after the op completed, whether the fuse
// had already blown (used to evidence cancel-races-fulfill on OK).
func armCancel(rng *rand.Rand, after func(*rand.Rand) time.Duration) (<-chan struct{}, func() bool) {
	if after == nil {
		return nil, func() bool { return false }
	}
	ch := make(chan struct{})
	t := time.AfterFunc(after(rng), func() { close(ch) })
	return ch, func() bool { return !t.Stop() }
}

// noteOutcome updates counters and sometimes-evidence for one completed
// operation; it reports whether the worker should exit (structure closed).
func (rc *runCtx) noteOutcome(st *scenarioState, status core.Status, isPut bool, raced func() bool) (exit bool) {
	switch status {
	case core.OK:
		if isPut {
			st.offered.Add(1)
			st.inflight.Add(1)
		} else {
			st.delivered.Add(1)
			st.inflight.Add(-1)
		}
		if raced() {
			// The cancel fuse blew while the operation was in flight,
			// yet it still paired: a cancel raced a fulfill and the
			// fulfill won.
			rc.suite.Observe(propCancelRace)
		}
	case core.Timeout:
		rc.suite.Observe(propTimeout)
	case core.Closed:
		rc.suite.Observe(propCloseReject)
		return true
	}
	return false
}

// noteBatchOffer updates counters and sometimes-evidence for one completed
// multi-item offer that delivered n of k items; it reports whether the
// worker should exit (structure closed). A partial fill cut short by
// timeout, cancellation, or close is the evidence for batch-partial-unwind:
// the run was claimed, some positions paired, and the rest were reclaimed.
func (rc *runCtx) noteBatchOffer(st *scenarioState, n, k int, status core.Status, raced func() bool) (exit bool) {
	if n > 0 {
		st.offered.Add(int64(n))
		st.inflight.Add(int64(n))
	}
	if n > 0 && n < k && status != core.OK {
		rc.suite.Observe(propBatchPartial)
	}
	switch status {
	case core.OK:
		if raced() {
			rc.suite.Observe(propCancelRace)
		}
	case core.Timeout:
		rc.suite.Observe(propTimeout)
	case core.Closed:
		rc.suite.Observe(propCloseReject)
		return true
	}
	return false
}

// noteBatchPoll is noteBatchOffer's consumer-side twin for a poll that
// received got values. Closed may legally accompany a non-empty partial
// fill (the close landed mid-batch); the values count all the same.
func (rc *runCtx) noteBatchPoll(st *scenarioState, got int, status core.Status, raced func() bool) (exit bool) {
	if got > 0 {
		st.delivered.Add(int64(got))
		st.inflight.Add(int64(-got))
	}
	switch status {
	case core.OK:
		if raced() {
			rc.suite.Observe(propCancelRace)
		}
	case core.Timeout:
		rc.suite.Observe(propTimeout)
	case core.Closed:
		rc.suite.Observe(propCloseReject)
		return true
	}
	return false
}

// drain empties the structure after quiesce, recording the takes so the
// history stays conservation-complete. A synchronous structure must come
// up empty immediately; the pool's results buffer legally holds stragglers.
func (rc *runCtx) drain(st *scenarioState, adapter chaosStruct) {
	log := st.rec.NewThread()
	for {
		inv := log.Begin()
		v, status := adapter.ChaosPoll(drainWait, nil)
		log.End(verify.Take, v, inv, status == core.OK)
		if status != core.OK {
			return
		}
		st.delivered.Add(1)
		st.inflight.Add(-1)
	}
}

// waitBounded waits for wg with a timeout.
func waitBounded(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}

// runOverload drives the standard workload while a chaff storm floods the
// executor with tasks whose deadlines lapse between admission and
// dispatch: the shed path, the admission budget, and the bounded
// backpressure all run under live traffic. The chaff stops at three
// quarters of the run so the tail and the quiesce see a normal load.
func runOverload(rc *runCtx, dur time.Duration) {
	adapter := rc.build()
	ex := adapter.(*poolChaos) // overload is execOnly: always the pool
	chaffUntil := time.Now().Add(dur * 3 / 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(chaffUntil) {
			ex.ChaffStorm(64)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	rc.driveWorkload("overload", adapter, dur, workloadTuning{}, nil)
	wg.Wait()
}

// runDrainStorm closes the executor the production way: a bounded
// graceful drain fires mid-traffic with deliberately wedged workers, so
// the forced-reclaim phase runs; reclaimed tasks are re-run caller-side,
// keeping every accepted value delivered exactly once. Late submitters
// must see the quiesce (ErrDraining/ErrShutdown → Closed), and the pool
// must come to rest leak-free with an exact ledger.
func runDrainStorm(rc *runCtx, dur time.Duration) {
	adapter := rc.build()
	ex := adapter.(*poolChaos) // drain-storm is execOnly: always the pool
	rc.driveWorkload("drain-storm", adapter, dur, workloadTuning{}, func() {
		if ex.DrainStorm() {
			rc.suite.Observe(propDrainForce)
		}
	})
}

// runBatchPartial is the deterministic partial-fill scenario: one consumer
// with generous patience against a 3-item offer with a short fuse. Exactly
// one item pairs; the offer must report (1, Timeout), hand back the two
// undelivered items in the retry slice, and leave nothing pollable — the
// multi-cell unwind path runs on every cycle rather than waiting for the
// random workload to stumble into it.
func runBatchPartial(rc *runCtx, dur time.Duration) {
	_ = dur // three fixed cycles; each is bounded by its own patiences
	const cycles = 3
	for i := 0; i < cycles; i++ {
		adapter := rc.build()
		batcher := adapter.(chaosBatcher)
		st := newScenarioState(rc, fmt.Sprintf("batch-partial/%d", i), 2)
		st.adapter = adapter
		rc.state.Store(st)

		id := rc.nextProducer.Add(1)
		clog := st.rec.NewThread()
		done := make(chan struct{})
		go func() {
			defer close(done)
			inv := clog.Begin()
			v, status := adapter.ChaosPoll(200*time.Millisecond, nil)
			clog.End(verify.Take, v, inv, status == core.OK)
			if status == core.OK {
				st.delivered.Add(1)
				st.inflight.Add(-1)
			}
		}()

		orig := []int64{id << 40, id<<40 | 1, id<<40 | 2}
		vs := append([]int64(nil), orig...)
		log := st.rec.NewThread()
		inv := log.Begin()
		n, status := batcher.ChaosOfferBatch(vs, 40*time.Millisecond, nil)
		und := make(map[int64]bool, len(vs)-n)
		for _, u := range vs[n:] {
			und[u] = true
		}
		for _, v := range orig {
			log.End(verify.Put, v, inv, !und[v])
		}
		rc.noteBatchOffer(st, n, len(orig), status, func() bool { return false })

		<-done
		rc.drain(st, adapter)
		adapter.Close()
		st.finalize(rc.core.fifo)
		rc.suite.CheckAlways(true)
		rc.state.Store(nil)
	}
}

// runBurstOpenClose is the open/close-cycle scenario: several short
// workload bursts, each against a fresh structure that is closed while
// traffic is in full flight. Every blocked waiter must be released
// promptly with the Closed status (no stranded waiter), late operations
// must be rejected, and the per-cycle histories must still conserve and
// pair synchronously.
func runBurstOpenClose(rc *runCtx, dur time.Duration) {
	const cycles = 3
	cycleDur := dur / cycles
	if cycleDur < 30*time.Millisecond {
		cycleDur = 30 * time.Millisecond
	}
	for i := 0; i < cycles; i++ {
		adapter := rc.build()
		rc.driveWorkload(fmt.Sprintf("burst-open-close/%d", i), adapter, cycleDur,
			workloadTuning{}, adapter.Close)
	}
}
