package main

// Chaos adapters: one uniform, status-returning surface over every
// structure the chaos harness drives, so the scenario library can run the
// same workload — and the property suite can check the same invariants —
// against the dual stack, the dual queue, the transfer queue, the sharded
// fabric, the eliminating composition, and the executor pool.
//
// Each adapter is described by a coreDef carrying its capability flags
// (which properties apply) and its fault-site classes (which Reachable
// properties are registered), so adding a structure to the harness is one
// table entry, not a new test body.

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"synchq/internal/core"
	"synchq/internal/exchanger"
	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/segq"
	"synchq/internal/shard"
	"synchq/pool"
)

// chaosStruct is the surface the scenario library drives. Offers and polls
// are deadline-bounded and cancelable; both report the full Status so
// scenarios can distinguish timeouts, cancellations, and closed rejections.
type chaosStruct interface {
	ChaosOffer(v int64, patience time.Duration, cancel <-chan struct{}) core.Status
	ChaosPoll(patience time.Duration, cancel <-chan struct{}) (int64, core.Status)
	Close()
	Closed() bool
}

// quiescer is implemented by adapters with internal goroutines (the pool's
// workers): Quiesce waits for them with a bound and reports success. The
// harness's no-stranded-waiter property fails when it reports false.
type quiescer interface {
	Quiesce(d time.Duration) bool
}

// chaosBatcher is the optional batched surface: adapters over cores with
// PutBatch/TakeBatch implement it, and the workload engine mixes k-item
// batch operations into the traffic of every scenario. Offers must stay
// synchronous per item on syncPair cores (the transfer adapter uses
// TransferBatch, not the asynchronous PutAll burst, so the synchrony
// property still holds for batched values). ChaosOfferBatch reports the
// partial-fill count n; per the batch contract, vs[n:] afterwards holds
// exactly the undelivered values.
type chaosBatcher interface {
	ChaosOfferBatch(vs []int64, patience time.Duration, cancel <-chan struct{}) (int, core.Status)
	ChaosPollBatch(max int, patience time.Duration, cancel <-chan struct{}) ([]int64, core.Status)
}

// coreDef describes one structure under test.
type coreDef struct {
	// key is the stable config name used in -cores and the verdict table.
	key string
	// desc is the human-readable structure name.
	desc string
	// fifo: per-producer FIFO delivery is part of the contract (plain
	// fair queue and the transfer queue; sharding and elimination
	// deliberately relax global order, the stack is LIFO).
	fifo bool
	// syncPair: put and take intervals must overlap (every synchronous
	// structure; the executor pool runs tasks asynchronously).
	syncPair bool
	// cancelable: the structure supports per-operation cancel channels.
	cancelable bool
	// executor: the structure is the executor tier; it carries the
	// executor-ledger property, the drain/overload scenarios apply, and
	// submissions propagate context deadlines and cancellation.
	executor bool
	// batch: the adapter implements chaosBatcher and the workload engine
	// mixes multi-item offers/polls into every scenario (the pool's
	// submission surface is per-task, so it opts out).
	batch bool
	// buffered is the structure's legal buffering capacity (0 for the
	// synchronous cores); it widens the continuous conservation slack.
	buffered int64
	// classes are the fault-site classes the structure queries; every
	// site in them is registered as a Reachable property.
	classes []fault.Class
	// sometimesCounters maps a metrics counter to the sometimes-property
	// its per-scenario delta evidences (e.g. ElimHits → elimination-fires).
	sometimesCounters map[metrics.ID]string
	// build constructs a fresh instance wired to the shared metrics
	// handle and injector carried inside cfg.
	build func(cfg core.WaitConfig) chaosStruct
}

// optDef is one WaitConfig variant of the option axis.
type optDef struct {
	key string
	// apply mutates the base WaitConfig (which already carries the
	// metrics handle and injector).
	apply func(cfg core.WaitConfig) core.WaitConfig
}

var optDefs = []optDef{
	{key: "default", apply: func(cfg core.WaitConfig) core.WaitConfig { return cfg }},
	{key: "nospin", apply: func(cfg core.WaitConfig) core.WaitConfig {
		cfg.TimedSpins = -1
		cfg.UntimedSpins = -1
		return cfg
	}},
}

func optByKey(key string) (optDef, bool) {
	for _, o := range optDefs {
		if o.key == key {
			return o, true
		}
	}
	return optDef{}, false
}

// ---- dual queue -----------------------------------------------------------

type queueChaos struct{ q *core.DualQueue[int64] }

func (a queueChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	return a.q.PutDeadline(v, time.Now().Add(d), cancel)
}
func (a queueChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	return a.q.TakeDeadline(time.Now().Add(d), cancel)
}
func (a queueChaos) Close()       { a.q.Close() }
func (a queueChaos) Closed() bool { return a.q.Closed() }

func (a queueChaos) ChaosOfferBatch(vs []int64, d time.Duration, cancel <-chan struct{}) (int, core.Status) {
	return a.q.PutBatch(vs, time.Now().Add(d), cancel)
}
func (a queueChaos) ChaosPollBatch(max int, d time.Duration, cancel <-chan struct{}) ([]int64, core.Status) {
	return a.q.TakeBatch(nil, max, time.Now().Add(d), cancel)
}

// ---- dual stack -----------------------------------------------------------

type stackChaos struct{ s *core.DualStack[int64] }

func (a stackChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	return a.s.PutDeadline(v, time.Now().Add(d), cancel)
}
func (a stackChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	return a.s.TakeDeadline(time.Now().Add(d), cancel)
}
func (a stackChaos) Close()       { a.s.Close() }
func (a stackChaos) Closed() bool { return a.s.Closed() }

func (a stackChaos) ChaosOfferBatch(vs []int64, d time.Duration, cancel <-chan struct{}) (int, core.Status) {
	return a.s.PutBatch(vs, time.Now().Add(d), cancel)
}
func (a stackChaos) ChaosPollBatch(max int, d time.Duration, cancel <-chan struct{}) ([]int64, core.Status) {
	return a.s.TakeBatch(nil, max, time.Now().Add(d), cancel)
}

// ---- transfer queue -------------------------------------------------------

type transferChaos struct{ t *core.TransferQueue[int64] }

func (a transferChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	return a.t.TransferDeadline(v, time.Now().Add(d), cancel)
}
func (a transferChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	return a.t.TakeDeadline(time.Now().Add(d), cancel)
}
func (a transferChaos) Close()       { a.t.Close() }
func (a transferChaos) Closed() bool { return a.t.Closed() }

func (a transferChaos) ChaosOfferBatch(vs []int64, d time.Duration, cancel <-chan struct{}) (int, core.Status) {
	return a.t.TransferBatch(vs, time.Now().Add(d), cancel)
}
func (a transferChaos) ChaosPollBatch(max int, d time.Duration, cancel <-chan struct{}) ([]int64, core.Status) {
	return a.t.TakeBatch(nil, max, time.Now().Add(d), cancel)
}

// ---- segmented core -------------------------------------------------------

type segChaos struct{ q *segq.Queue[int64] }

func (a segChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	return a.q.PutDeadline(v, time.Now().Add(d), cancel)
}
func (a segChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	return a.q.TakeDeadline(time.Now().Add(d), cancel)
}
func (a segChaos) Close()       { a.q.Close() }
func (a segChaos) Closed() bool { return a.q.Closed() }

func (a segChaos) ChaosOfferBatch(vs []int64, d time.Duration, cancel <-chan struct{}) (int, core.Status) {
	return a.q.PutBatch(vs, time.Now().Add(d), cancel)
}
func (a segChaos) ChaosPollBatch(max int, d time.Duration, cancel <-chan struct{}) ([]int64, core.Status) {
	return a.q.TakeBatch(nil, max, time.Now().Add(d), cancel)
}

// ---- sharded fabric -------------------------------------------------------

type fabricChaos struct{ f *shard.Fabric[int64] }

func (a fabricChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	return a.f.PutDeadline(v, time.Now().Add(d), cancel)
}
func (a fabricChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	return a.f.TakeDeadline(time.Now().Add(d), cancel)
}
func (a fabricChaos) Close()       { a.f.Close() }
func (a fabricChaos) Closed() bool { return a.f.Closed() }

func (a fabricChaos) ChaosOfferBatch(vs []int64, d time.Duration, cancel <-chan struct{}) (int, core.Status) {
	return a.f.PutBatch(vs, time.Now().Add(d), cancel)
}
func (a fabricChaos) ChaosPollBatch(max int, d time.Duration, cancel <-chan struct{}) ([]int64, core.Status) {
	return a.f.TakeBatch(nil, max, time.Now().Add(d), cancel)
}

// widthShifter marks adapters whose fabric can be forced through width
// transitions; the width-shift scenario oscillates them mid-workload. On
// a fixed-width fabric ShiftWidth is a no-op, so the scenario degrades to
// a plain steady run there.
type widthShifter interface{ ShiftWidth(contended bool) }

func (a fabricChaos) ShiftWidth(contended bool) { a.f.DriveWidth(contended) }

// ---- eliminating composition ----------------------------------------------

// elimChaos alternates the adaptive arena entry points with fixed-patience
// attempts. The adaptive controller tunes its patience to µs-scale
// hand-off latencies; under the race detector's slowdown on a small host
// every op takes longer than that, the controller correctly collapses,
// and elimination would never fire — so every other operation dwells in
// the arena long enough for a race-slowed partner to arrive, keeping the
// slot CAS/fulfill/retract sites and the elimination-fires event exercised
// in both regimes.
type elimChaos struct {
	arena *exchanger.Arena[int64]
	q     *core.DualQueue[int64]
	alt   *atomic.Int64
}

// elimStaticPatience is the fixed arena dwell of the non-adaptive leg.
const elimStaticPatience = 100 * time.Microsecond

func (a elimChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	if a.alt.Add(1)%2 == 0 {
		if a.arena.TryGiveAdaptive(v) {
			return core.OK
		}
	} else if a.arena.TryGive(v, elimStaticPatience) {
		return core.OK
	}
	return a.q.PutDeadline(v, time.Now().Add(d), cancel)
}
func (a elimChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	if a.alt.Add(1)%2 == 0 {
		if v, ok := a.arena.TryTakeAdaptive(); ok {
			return v, core.OK
		}
	} else if v, ok := a.arena.TryTake(elimStaticPatience); ok {
		return v, core.OK
	}
	return a.q.TakeDeadline(time.Now().Add(d), cancel)
}
func (a elimChaos) Close()       { a.q.Close() }
func (a elimChaos) Closed() bool { return a.q.Closed() }

// Batched operations bypass the arena, like the public EliminatingQueue
// batch entry points: an arena exchange pairs exactly one producer with
// one consumer, so a batch gains nothing from it.
func (a elimChaos) ChaosOfferBatch(vs []int64, d time.Duration, cancel <-chan struct{}) (int, core.Status) {
	return a.q.PutBatch(vs, time.Now().Add(d), cancel)
}
func (a elimChaos) ChaosPollBatch(max int, d time.Duration, cancel <-chan struct{}) ([]int64, core.Status) {
	return a.q.TakeBatch(nil, max, time.Now().Add(d), cancel)
}

// ---- executor pool --------------------------------------------------------

// poolChaos brings the executor tier under the harness invariants: an
// offer is a SubmitContext of a task that delivers its value into a
// results channel, a poll is a receive from that channel. Conservation
// then states "every accepted task runs exactly once"; synchrony does not
// apply (execution is asynchronous), and the backing synchronous queue —
// which the pool drives through its cancelable WaitQueue paths — runs
// under the same fault injector as the bare cores. Harness tasks carry no
// deadline (their values must always deliver, so offered == delivered
// stays exact); the deadline-shed path is driven instead by the overload
// scenario's chaff storm, whose valueless tasks are built to expire
// between admission and dispatch.
type poolChaos struct {
	p       *pool.Pool
	q       *core.DualQueue[pool.Task]
	results chan int64
	closed  atomic.Bool
	chaff   atomic.Int64 // executions of overload chaff (body only)
}

// poolResultsCap bounds the in-flight executed-but-unconsumed values.
const poolResultsCap = 1 << 14

// poolMaxWorkers / poolMaxPending are the executor's worker cap and
// admission budget. An accepted-but-undelivered value can legally sit in
// the pending ledger (≤ poolMaxPending), in an active worker's hands —
// including blocked on a full results channel (≤ poolMaxWorkers) — or in
// the results buffer itself, so the conservation slack declared to the
// harness is the sum of all three capacities.
const (
	poolMaxWorkers = 32
	poolMaxPending = 256
	poolBuffered   = poolResultsCap + poolMaxPending + poolMaxWorkers
)

// poolPatience bounds how long a saturated submission blocks for a worker
// (the BlockWithDeadline backpressure bound). It must be far below the
// harness's stranded-waiter bound: admission never blocks indefinitely.
const poolPatience = 500 * time.Microsecond

// poolQueue adapts the injected dual queue to the pool.WaitQueue surface,
// so the executor's blocking offers and idle polls run the queue's
// deadline-and-cancel paths under fault injection. It also implements
// pool.Closer: a forced drain closes the queue to release the blocked.
type poolQueue struct{ q *core.DualQueue[pool.Task] }

func (pq poolQueue) Offer(t pool.Task) bool                        { return pq.q.Offer(t) }
func (pq poolQueue) PollTimeout(d time.Duration) (pool.Task, bool) { return pq.q.PollTimeout(d) }
func (pq poolQueue) Close()                                        { pq.q.Close() }

func (pq poolQueue) OfferWait(t pool.Task, deadline time.Time, cancel <-chan struct{}) bool {
	return pq.q.PutDeadline(t, deadline, cancel) == core.OK
}

func (pq poolQueue) PollWait(deadline time.Time, cancel <-chan struct{}) (pool.Task, bool) {
	v, st := pq.q.TakeDeadline(deadline, cancel)
	return v, st == core.OK
}

func newPoolChaos(cfg core.WaitConfig) *poolChaos {
	q := core.NewDualQueue[pool.Task](cfg)
	a := &poolChaos{q: q, results: make(chan int64, poolResultsCap)}
	a.p = pool.New(poolQueue{q}, pool.Config{
		// A short keep-alive makes idle workers expire constantly, so
		// the backing queue's timeout, cancel, and clean paths — and the
		// pool's retirement CAS — run under chaos.
		KeepAlive:          2 * time.Millisecond,
		MaxWorkers:         poolMaxWorkers,
		MaxPending:         poolMaxPending,
		OnSaturation:       pool.BlockWithDeadline,
		SaturationPatience: poolPatience,
		Metrics:            cfg.Metrics,
		Fault:              cfg.Fault,
	})
	return a
}

// LedgerGap exposes the executor conservation ledger for the
// executor-ledger always-property: at rest it must be exactly zero.
func (a *poolChaos) LedgerGap() int64 { return a.p.Stats().ConservationGap() }

func (a *poolChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	ctx := context.Background()
	if cancel != nil {
		var cfn context.CancelFunc
		ctx, cfn = context.WithCancel(ctx)
		stop := make(chan struct{})
		defer close(stop)
		defer cfn()
		go func() {
			select {
			case <-cancel:
				cfn()
			case <-stop:
			}
		}()
	}
	err := a.p.SubmitContext(ctx, func() { a.results <- v })
	switch {
	case err == nil:
		return core.OK
	case errors.Is(err, pool.ErrShutdown), errors.Is(err, pool.ErrDraining):
		return core.Closed
	case errors.Is(err, context.Canceled):
		return core.Canceled
	default: // ErrSaturated / ErrExpired: no worker within the patience
		return core.Timeout
	}
}

func (a *poolChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	select {
	case v := <-a.results:
		return v, core.OK
	default:
	}
	if a.closed.Load() {
		// Drain any stragglers before reporting Closed so the harness's
		// drain loop empties the channel.
		select {
		case v := <-a.results:
			return v, core.OK
		default:
			return 0, core.Closed
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case v := <-a.results:
		return v, core.OK
	case <-cancel:
		// A delivery that landed while the cancel fired still pairs: the
		// fulfill won the race (the cores' cancel-races-fulfill shape).
		select {
		case v := <-a.results:
			return v, core.OK
		default:
			return 0, core.Canceled
		}
	case <-t.C:
		return 0, core.Timeout
	}
}

// ChaffStorm floods the executor with valueless tasks whose deadlines are
// long enough to pass the admission check but short enough to usually
// lapse before a worker dispatches them — the deadline-shed path under
// live traffic. Chaff that wins its race and executes only bumps an
// internal counter, so the harness ledger is untouched either way.
func (a *poolChaos) ChaffStorm(n int) {
	for i := 0; i < n; i++ {
		fuse := time.Duration(1+i%25) * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), fuse)
		a.p.SubmitContext(ctx, func() { a.chaff.Add(1) })
		cancel()
	}
}

// DrainStorm performs the production shutdown mid-traffic: a bounded
// graceful drain with two workers deliberately wedged past the bound so
// phase 3 (forced reclaim) must run. Reclaimed tasks belong to the caller
// and are re-run here, so every accepted value still delivers exactly
// once. Reports whether the drain was forced.
func (a *poolChaos) DrainStorm() (forced bool) {
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		a.submitWedge(release)
	}
	// Arm the release only after both wedges are in: submission can retry
	// through saturation for tens of milliseconds under the race detector,
	// and a release clock that started before Submit can expire before the
	// drain context below does — the wedge evaporates and the drain
	// quiesces gracefully instead of reaching the forced phase. The wedge
	// must outlive the drain context by a margin wider than any plausible
	// descheduling gap; Drain itself waits for the released tasks, so the
	// margin only stretches this scenario, not the pool's rest state.
	time.AfterFunc(60*time.Millisecond, func() { close(release) })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res := a.p.Drain(ctx)
	for _, t := range res.Returned {
		t()
	}
	a.closed.Store(true)
	return res.Forced
}

// submitWedge lands one blocking task, retrying through transient
// saturation.
func (a *poolChaos) submitWedge(release <-chan struct{}) {
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if a.p.Submit(func() { <-release }) == nil {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func (a *poolChaos) Close() {
	a.closed.Store(true)
	a.p.Shutdown()
	a.q.Close()
}

func (a *poolChaos) Closed() bool { return a.closed.Load() }

// Quiesce waits for the pool's workers to exit.
func (a *poolChaos) Quiesce(d time.Duration) bool {
	done := make(chan struct{})
	go func() { a.p.Wait(); close(done) }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}

// ---- the core registry ----------------------------------------------------

// coreDefs is the harness's structure matrix, in verdict-table order.
var coreDefs = []coreDef{
	{
		key: "stack", desc: "dual stack (unfair)",
		syncPair: true, cancelable: true, batch: true,
		classes: []fault.Class{fault.ClassStack, fault.ClassWait},
		build: func(cfg core.WaitConfig) chaosStruct {
			return stackChaos{core.NewDualStack[int64](cfg)}
		},
	},
	{
		key: "queue", desc: "dual queue (fair)",
		fifo: true, syncPair: true, cancelable: true, batch: true,
		classes: []fault.Class{fault.ClassQueue, fault.ClassWait},
		build: func(cfg core.WaitConfig) chaosStruct {
			return queueChaos{core.NewDualQueue[int64](cfg)}
		},
	},
	{
		key: "transfer", desc: "transfer queue (§5)",
		fifo: true, syncPair: true, cancelable: true, batch: true,
		classes: []fault.Class{fault.ClassQueue, fault.ClassWait},
		build: func(cfg core.WaitConfig) chaosStruct {
			return transferChaos{core.NewTransferQueue[int64](cfg)}
		},
	},
	{
		// fifo stays false: pairing is FIFO by arrival (each side's F&A
		// counter), but delivery *completion* order can invert between two
		// of one producer's values when the taker of the earlier cell
		// stalls between claiming its index and resolving the cell —
		// interval-sound, yet outside the per-producer FIFO property the
		// dual queue's head-ordered fulfillment guarantees.
		key: "seg", desc: "segmented F&A core",
		syncPair: true, cancelable: true, batch: true,
		classes: []fault.Class{fault.ClassSeg, fault.ClassWait},
		sometimesCounters: map[metrics.ID]string{
			metrics.SegUnlinks: "segment-unlinked",
		},
		build: func(cfg core.WaitConfig) chaosStruct {
			return segChaos{segq.New[int64](cfg)}
		},
	},
	{
		key: "sharded", desc: "sharded fabric over fair queues",
		syncPair: true, cancelable: true, batch: true,
		classes: []fault.Class{fault.ClassQueue, fault.ClassShard, fault.ClassWait},
		sometimesCounters: map[metrics.ID]string{
			metrics.ShardSteals: "cross-shard-steal",
		},
		build: func(cfg core.WaitConfig) chaosStruct {
			fab := shard.New(0, func(int) shard.Dual[int64] {
				return core.NewDualQueue[int64](cfg)
			}).SetMetrics(cfg.Metrics).SetFault(cfg.Fault)
			return fabricChaos{fab}
		},
	},
	{
		// The self-scaling fabric re-picks its effective width from
		// observed contention; the width-shift scenario additionally
		// forces it through grow/drain cycles mid-workload so the
		// activate/drain protocol (and its two fault windows) runs under
		// every schedule the injector can produce.
		key: "auto", desc: "self-scaling fabric over fair queues",
		syncPair: true, cancelable: true, batch: true,
		classes: []fault.Class{fault.ClassQueue, fault.ClassShard, fault.ClassAutoShard, fault.ClassWait},
		sometimesCounters: map[metrics.ID]string{
			metrics.ShardSteals:        "cross-shard-steal",
			metrics.FabricWidthChanges: "width-shift",
		},
		build: func(cfg core.WaitConfig) chaosStruct {
			fab := shard.NewAuto(0, func(int) shard.Dual[int64] {
				return core.NewDualQueue[int64](cfg)
			}).SetMetrics(cfg.Metrics).SetFault(cfg.Fault)
			return fabricChaos{fab}
		},
	},
	{
		key: "elim", desc: "adaptive elimination over fair queue",
		syncPair: true, cancelable: true, batch: true,
		classes: []fault.Class{fault.ClassQueue, fault.ClassExchanger, fault.ClassWait},
		sometimesCounters: map[metrics.ID]string{
			metrics.ElimHits: "elimination-fires",
		},
		build: func(cfg core.WaitConfig) chaosStruct {
			arena := exchanger.NewArenaAdaptive[int64](0).
				SetMetrics(cfg.Metrics).SetFault(cfg.Fault)
			return elimChaos{arena: arena, q: core.NewDualQueue[int64](cfg), alt: new(atomic.Int64)}
		},
	},
	{
		key: "pool", desc: "executor pool over fair queue",
		cancelable: true, executor: true,
		buffered: poolBuffered,
		classes:  []fault.Class{fault.ClassQueue, fault.ClassWait, fault.ClassPool},
		sometimesCounters: map[metrics.ID]string{
			metrics.TasksShed: "shed-under-overload",
		},
		build: func(cfg core.WaitConfig) chaosStruct {
			return newPoolChaos(cfg)
		},
	},
}

func coreByKey(key string) (coreDef, bool) {
	for _, c := range coreDefs {
		if c.key == key {
			return c, true
		}
	}
	return coreDef{}, false
}
