package main

// Chaos adapters: one uniform, status-returning surface over every
// structure the chaos harness drives, so the scenario library can run the
// same workload — and the property suite can check the same invariants —
// against the dual stack, the dual queue, the transfer queue, the sharded
// fabric, the eliminating composition, and the executor pool.
//
// Each adapter is described by a coreDef carrying its capability flags
// (which properties apply) and its fault-site classes (which Reachable
// properties are registered), so adding a structure to the harness is one
// table entry, not a new test body.

import (
	"sync/atomic"
	"time"

	"synchq/internal/core"
	"synchq/internal/exchanger"
	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/shard"
	"synchq/pool"
)

// chaosStruct is the surface the scenario library drives. Offers and polls
// are deadline-bounded and cancelable; both report the full Status so
// scenarios can distinguish timeouts, cancellations, and closed rejections.
type chaosStruct interface {
	ChaosOffer(v int64, patience time.Duration, cancel <-chan struct{}) core.Status
	ChaosPoll(patience time.Duration, cancel <-chan struct{}) (int64, core.Status)
	Close()
	Closed() bool
}

// quiescer is implemented by adapters with internal goroutines (the pool's
// workers): Quiesce waits for them with a bound and reports success. The
// harness's no-stranded-waiter property fails when it reports false.
type quiescer interface {
	Quiesce(d time.Duration) bool
}

// coreDef describes one structure under test.
type coreDef struct {
	// key is the stable config name used in -cores and the verdict table.
	key  string
	// desc is the human-readable structure name.
	desc string
	// fifo: per-producer FIFO delivery is part of the contract (plain
	// fair queue and the transfer queue; sharding and elimination
	// deliberately relax global order, the stack is LIFO).
	fifo bool
	// syncPair: put and take intervals must overlap (every synchronous
	// structure; the executor pool runs tasks asynchronously).
	syncPair bool
	// cancelable: the structure supports per-operation cancel channels.
	cancelable bool
	// buffered is the structure's legal buffering capacity (0 for the
	// synchronous cores); it widens the continuous conservation slack.
	buffered int64
	// classes are the fault-site classes the structure queries; every
	// site in them is registered as a Reachable property.
	classes []fault.Class
	// sometimesCounters maps a metrics counter to the sometimes-property
	// its per-scenario delta evidences (e.g. ElimHits → elimination-fires).
	sometimesCounters map[metrics.ID]string
	// build constructs a fresh instance wired to the shared metrics
	// handle and injector carried inside cfg.
	build func(cfg core.WaitConfig) chaosStruct
}

// optDef is one WaitConfig variant of the option axis.
type optDef struct {
	key string
	// apply mutates the base WaitConfig (which already carries the
	// metrics handle and injector).
	apply func(cfg core.WaitConfig) core.WaitConfig
}

var optDefs = []optDef{
	{key: "default", apply: func(cfg core.WaitConfig) core.WaitConfig { return cfg }},
	{key: "nospin", apply: func(cfg core.WaitConfig) core.WaitConfig {
		cfg.TimedSpins = -1
		cfg.UntimedSpins = -1
		return cfg
	}},
}

func optByKey(key string) (optDef, bool) {
	for _, o := range optDefs {
		if o.key == key {
			return o, true
		}
	}
	return optDef{}, false
}

// ---- dual queue -----------------------------------------------------------

type queueChaos struct{ q *core.DualQueue[int64] }

func (a queueChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	return a.q.PutDeadline(v, time.Now().Add(d), cancel)
}
func (a queueChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	return a.q.TakeDeadline(time.Now().Add(d), cancel)
}
func (a queueChaos) Close()       { a.q.Close() }
func (a queueChaos) Closed() bool { return a.q.Closed() }

// ---- dual stack -----------------------------------------------------------

type stackChaos struct{ s *core.DualStack[int64] }

func (a stackChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	return a.s.PutDeadline(v, time.Now().Add(d), cancel)
}
func (a stackChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	return a.s.TakeDeadline(time.Now().Add(d), cancel)
}
func (a stackChaos) Close()       { a.s.Close() }
func (a stackChaos) Closed() bool { return a.s.Closed() }

// ---- transfer queue -------------------------------------------------------

type transferChaos struct{ t *core.TransferQueue[int64] }

func (a transferChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	return a.t.TransferDeadline(v, time.Now().Add(d), cancel)
}
func (a transferChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	return a.t.TakeDeadline(time.Now().Add(d), cancel)
}
func (a transferChaos) Close()       { a.t.Close() }
func (a transferChaos) Closed() bool { return a.t.Closed() }

// ---- sharded fabric -------------------------------------------------------

type fabricChaos struct{ f *shard.Fabric[int64] }

func (a fabricChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	return a.f.PutDeadline(v, time.Now().Add(d), cancel)
}
func (a fabricChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	return a.f.TakeDeadline(time.Now().Add(d), cancel)
}
func (a fabricChaos) Close()       { a.f.Close() }
func (a fabricChaos) Closed() bool { return a.f.Closed() }

// ---- eliminating composition ----------------------------------------------

// elimChaos alternates the adaptive arena entry points with fixed-patience
// attempts. The adaptive controller tunes its patience to µs-scale
// hand-off latencies; under the race detector's slowdown on a small host
// every op takes longer than that, the controller correctly collapses,
// and elimination would never fire — so every other operation dwells in
// the arena long enough for a race-slowed partner to arrive, keeping the
// slot CAS/fulfill/retract sites and the elimination-fires event exercised
// in both regimes.
type elimChaos struct {
	arena *exchanger.Arena[int64]
	q     *core.DualQueue[int64]
	alt   *atomic.Int64
}

// elimStaticPatience is the fixed arena dwell of the non-adaptive leg.
const elimStaticPatience = 100 * time.Microsecond

func (a elimChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	if a.alt.Add(1)%2 == 0 {
		if a.arena.TryGiveAdaptive(v) {
			return core.OK
		}
	} else if a.arena.TryGive(v, elimStaticPatience) {
		return core.OK
	}
	return a.q.PutDeadline(v, time.Now().Add(d), cancel)
}
func (a elimChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	if a.alt.Add(1)%2 == 0 {
		if v, ok := a.arena.TryTakeAdaptive(); ok {
			return v, core.OK
		}
	} else if v, ok := a.arena.TryTake(elimStaticPatience); ok {
		return v, core.OK
	}
	return a.q.TakeDeadline(time.Now().Add(d), cancel)
}
func (a elimChaos) Close()       { a.q.Close() }
func (a elimChaos) Closed() bool { return a.q.Closed() }

// ---- executor pool --------------------------------------------------------

// poolChaos brings the executor tier under the harness invariants: an
// offer is a Submit of a task that delivers its value into a results
// channel, a poll is a receive from that channel. Conservation then states
// "every accepted task runs exactly once"; synchrony does not apply
// (execution is asynchronous), and the backing synchronous queue runs
// under the same fault injector as the bare cores.
type poolChaos struct {
	p       *pool.Pool
	q       *core.DualQueue[pool.Task]
	results chan int64
	closed  atomic.Bool
}

// poolResultsCap bounds the in-flight executed-but-unconsumed values; it
// is also the pool config's legal buffering for the conservation slack.
const poolResultsCap = 1 << 14

// poolQueue adapts the injected dual queue to the pool.Queue surface.
type poolQueue struct{ q *core.DualQueue[pool.Task] }

func (pq poolQueue) Offer(t pool.Task) bool                        { return pq.q.Offer(t) }
func (pq poolQueue) PollTimeout(d time.Duration) (pool.Task, bool) { return pq.q.PollTimeout(d) }

func newPoolChaos(cfg core.WaitConfig) *poolChaos {
	q := core.NewDualQueue[pool.Task](cfg)
	a := &poolChaos{q: q, results: make(chan int64, poolResultsCap)}
	a.p = pool.New(poolQueue{q}, pool.Config{
		// A short keep-alive makes idle workers expire constantly, so
		// the backing queue's timeout and clean paths run under chaos.
		KeepAlive:  2 * time.Millisecond,
		MaxWorkers: 32,
	})
	return a
}

func (a *poolChaos) ChaosOffer(v int64, d time.Duration, cancel <-chan struct{}) core.Status {
	err := a.p.Submit(func() { a.results <- v })
	switch err {
	case nil:
		return core.OK
	case pool.ErrShutdown:
		return core.Closed
	default: // ErrSaturated: the pool is at MaxWorkers with no idle worker
		return core.Timeout
	}
}

func (a *poolChaos) ChaosPoll(d time.Duration, cancel <-chan struct{}) (int64, core.Status) {
	select {
	case v := <-a.results:
		return v, core.OK
	default:
	}
	if a.closed.Load() {
		// Drain any stragglers before reporting Closed so the harness's
		// drain loop empties the channel.
		select {
		case v := <-a.results:
			return v, core.OK
		default:
			return 0, core.Closed
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case v := <-a.results:
		return v, core.OK
	case <-t.C:
		return 0, core.Timeout
	}
}

func (a *poolChaos) Close() {
	a.closed.Store(true)
	a.p.Shutdown()
	a.q.Close()
}

func (a *poolChaos) Closed() bool { return a.closed.Load() }

// Quiesce waits for the pool's workers to exit.
func (a *poolChaos) Quiesce(d time.Duration) bool {
	done := make(chan struct{})
	go func() { a.p.Wait(); close(done) }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}

// ---- the core registry ----------------------------------------------------

// coreDefs is the harness's structure matrix, in verdict-table order.
var coreDefs = []coreDef{
	{
		key: "stack", desc: "dual stack (unfair)",
		syncPair: true, cancelable: true,
		classes: []fault.Class{fault.ClassStack, fault.ClassWait},
		build: func(cfg core.WaitConfig) chaosStruct {
			return stackChaos{core.NewDualStack[int64](cfg)}
		},
	},
	{
		key: "queue", desc: "dual queue (fair)",
		fifo: true, syncPair: true, cancelable: true,
		classes: []fault.Class{fault.ClassQueue, fault.ClassWait},
		build: func(cfg core.WaitConfig) chaosStruct {
			return queueChaos{core.NewDualQueue[int64](cfg)}
		},
	},
	{
		key: "transfer", desc: "transfer queue (§5)",
		fifo: true, syncPair: true, cancelable: true,
		classes: []fault.Class{fault.ClassQueue, fault.ClassWait},
		build: func(cfg core.WaitConfig) chaosStruct {
			return transferChaos{core.NewTransferQueue[int64](cfg)}
		},
	},
	{
		key: "sharded", desc: "sharded fabric over fair queues",
		syncPair: true, cancelable: true,
		classes: []fault.Class{fault.ClassQueue, fault.ClassShard, fault.ClassWait},
		sometimesCounters: map[metrics.ID]string{
			metrics.ShardSteals: "cross-shard-steal",
		},
		build: func(cfg core.WaitConfig) chaosStruct {
			fab := shard.New(0, func(int) shard.Dual[int64] {
				return core.NewDualQueue[int64](cfg)
			}).SetMetrics(cfg.Metrics).SetFault(cfg.Fault)
			return fabricChaos{fab}
		},
	},
	{
		key: "elim", desc: "adaptive elimination over fair queue",
		syncPair: true, cancelable: true,
		classes: []fault.Class{fault.ClassQueue, fault.ClassExchanger, fault.ClassWait},
		sometimesCounters: map[metrics.ID]string{
			metrics.ElimHits: "elimination-fires",
		},
		build: func(cfg core.WaitConfig) chaosStruct {
			arena := exchanger.NewArenaAdaptive[int64](0).
				SetMetrics(cfg.Metrics).SetFault(cfg.Fault)
			return elimChaos{arena: arena, q: core.NewDualQueue[int64](cfg), alt: new(atomic.Int64)}
		},
	},
	{
		key: "pool", desc: "executor pool over fair queue",
		buffered: poolResultsCap,
		classes:  []fault.Class{fault.ClassQueue, fault.ClassWait},
		build: func(cfg core.WaitConfig) chaosStruct {
			return newPoolChaos(cfg)
		},
	},
}

func coreByKey(key string) (coreDef, bool) {
	for _, c := range coreDefs {
		if c.key == key {
			return c, true
		}
	}
	return coreDef{}, false
}
