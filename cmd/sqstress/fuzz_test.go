package main

// FuzzChaosSchedule feeds arbitrary bytes into the chaos harness as a
// fault schedule: the input selects the structure under test, the wait
// configuration, the scenario, and the injector's rates and seed. Every
// mutation is a differently shaped storm of CAS failures, preemptions,
// spurious wakeups, and timer skew; the always-properties (conservation,
// synchrony, per-producer FIFO, no stranded waiter) must survive all of
// them. Sometimes/reachable rows are coverage demands on the full soak
// matrix, not on a single ~30ms fuzz case, so they are not asserted here.

import (
	"testing"
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/props"
)

func FuzzChaosSchedule(f *testing.F) {
	// One seed per core (byte 0), covering both options (byte 1), varied
	// scenarios (byte 6) and rate bytes from gentle to vicious.
	f.Add(uint64(1), []byte{0, 0, 10, 2, 5, 25, 0})
	f.Add(uint64(2), []byte{1, 1, 30, 8, 10, 50, 3})
	f.Add(uint64(3), []byte{2, 0, 60, 16, 20, 100, 4})
	f.Add(uint64(4), []byte{3, 1, 120, 32, 40, 200, 5})
	f.Add(uint64(5), []byte{4, 0, 200, 64, 80, 255, 2})
	f.Add(uint64(6), []byte{5, 1, 255, 128, 160, 128, 6})
	f.Add(uint64(7), []byte{})

	f.Fuzz(func(t *testing.T, seed uint64, sched []byte) {
		if len(sched) == 0 {
			sched = []byte{0}
		}
		b := func(i int) byte { return sched[i%len(sched)] }

		c := coreDefs[int(b(0))%len(coreDefs)]
		op := optDefs[int(b(1))%len(optDefs)]
		inj := fault.New(fault.Config{
			Seed:             seed,
			FailCASRate:      float64(b(2)) / 512,  // up to ~50%
			PreemptRate:      float64(b(3)) / 4096, // up to ~6%
			SpuriousWakeRate: float64(b(4)) / 1024,
			TimerSkewRate:    float64(b(5)) / 512,
		})
		rc := &runCtx{
			core:      c,
			opt:       op,
			suite:     props.NewSuite("fuzz:" + c.key + "/" + op.key),
			h:         metrics.New(),
			inj:       inj,
			seed:      seed,
			producers: 2,
			consumers: 2,
		}
		registerProperties(rc)

		sc := scenarioLib[int(b(6))%len(scenarioLib)]
		if sc.needsCancel && !c.cancelable {
			sc = scenarioLib[0]
		}
		sc.run(rc, 30*time.Millisecond)

		for _, v := range rc.suite.Verdicts() {
			if v.Kind == props.Always.String() && !v.Pass() {
				t.Errorf("always property %s violated under schedule %v: %s",
					v.Property, sched, v.Detail)
			}
		}
		if t.Failed() {
			report := props.NewReport(seed, 0, []string{sc.name})
			report.Add(rc.suite)
			t.Logf("verdicts:\n%s", report.Render())
		}
	})
}
