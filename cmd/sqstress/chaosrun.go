package main

// The chaos matrix runner: for every requested core × option
// configuration it declares the applicable properties in a props.Suite,
// drives the scenario library against one shared fault injector, and
// folds the suites into a machine-readable verdict report. A failing
// configuration carries a one-line copy-pasteable replay command that
// re-runs exactly that cell of the matrix with the same seed.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/props"
)

// chaosOptions parameterizes one matrix run. Zero-valued fields fall back
// to the full matrix / library.
type chaosOptions struct {
	seed        uint64
	cores       []string // core keys; empty = all
	opts        []string // option keys; empty = all
	scenarios   []string // scenario names; empty = whole library
	scenarioDur time.Duration
	producers   int
	consumers   int
	jsonPath    string // write the JSON report here ("" = don't, "-" = stdout)
	out         io.Writer
	// sabotage registers a deliberately broken always-checker in every
	// suite: the self-test hook proving a violated property produces a
	// failing verdict row and a nonzero exit, end to end.
	sabotage bool
}

// sabotageProp is the broken checker's property name.
const sabotageProp = "sabotage:always-false"

// replayCommand renders the copy-pasteable command that reproduces one
// configuration cell of the matrix.
func (o chaosOptions) replayCommand(coreKey, optKey string) string {
	scen := "all"
	if len(o.scenarios) > 0 {
		scen = strings.Join(o.scenarios, ",")
	}
	return fmt.Sprintf(
		"go run ./cmd/sqstress -chaos -seed %d -cores %s -opts %s -scenarios %s -scenario-duration %s -producers %d -consumers %d -procs %d",
		o.seed, coreKey, optKey, scen, o.scenarioDur, o.producers, o.consumers, runtime.GOMAXPROCS(0))
}

// configSeed derives a per-configuration injector seed so every cell sees
// a distinct but fully replayable injected-event stream (FNV-1a over the
// cell label, folded into the run seed).
func configSeed(seed uint64, coreKey, optKey string) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range []byte(coreKey + "/" + optKey) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return seed ^ h
}

// harnessInjector builds the matrix's fault injector: the chaos-mode
// rates with the CAS-failure and preemption rates raised, so low-traffic
// sites still collect injected hits within a short scenario. The clean
// paths run only when a queued waiter gives up behind another; the
// stack's help path runs only when an operation lands on a fulfilling
// node mid-pairing, a window that the injected fulfill-pauses themselves
// hold open.
func harnessInjector(seed uint64) *fault.Injector {
	return fault.New(fault.Config{
		Seed:             seed,
		FailCASRate:      0.06,
		PreemptRate:      0.02,
		SpuriousWakeRate: 0.01,
		TimerSkewRate:    0.05,
	})
}

// registerProperties declares the configuration's property set on its
// suite: the always-invariants the structure contracts for, the
// sometimes-events its workload must provoke, and one reachable property
// per fault site in the structure's classes.
func registerProperties(rc *runCtx) {
	st := func() *scenarioState { return rc.state.Load() }

	rc.suite.Always(propConservation, func(final bool) error {
		if s := st(); s != nil {
			return s.conservationCheck(final)
		}
		return nil
	})
	if rc.core.syncPair {
		rc.suite.Always(propSynchrony, func(final bool) error {
			if s := st(); s != nil {
				return s.synchronyCheck(final)
			}
			return nil
		})
	}
	if rc.core.fifo {
		rc.suite.Always(propFIFO, func(final bool) error {
			if s := st(); s != nil {
				return s.fifoCheck(final)
			}
			return nil
		})
	}
	// Violations of no-stranded-waiter are detected by the scenario
	// driver's bounded waits, which Fail the property directly.
	rc.suite.Always(propNoStranded, nil)
	if rc.core.executor {
		// The executor's conservation ledger: at every quiesced rest
		// point, accepted == completed + shed + returned (+ nothing in
		// flight). Checked from the structure's own counters, so it
		// holds even for tasks the harness history cannot see (chaff,
		// wedges, drain reclaim).
		rc.suite.Always(propExecLedger, func(final bool) error {
			s := st()
			if s == nil || !final || !s.finalized.Load() {
				return nil
			}
			l, ok := s.adapter.(interface{ LedgerGap() int64 })
			if !ok {
				return nil
			}
			if gap := l.LedgerGap(); gap != 0 {
				return fmt.Errorf("%s: executor ledger gap %d (accepted != completed+shed+returned+pending+active)",
					s.name, gap)
			}
			return nil
		})
		rc.suite.Sometimes(propDrainForce)
	}

	rc.suite.Sometimes(propTimeout)
	rc.suite.Sometimes(propCloseReject)
	if rc.core.cancelable {
		rc.suite.Sometimes(propCancelRace)
	}
	if rc.core.batch {
		rc.suite.Sometimes(propBatchPartial)
	}
	for _, prop := range rc.core.sometimesCounters {
		rc.suite.Sometimes(prop)
	}

	for _, site := range fault.SitesOf(rc.core.classes...) {
		s := site
		rc.suite.Reachable("reach:"+s.String(), func() int64 { return rc.inj.Count(s) })
	}
}

// resolveMatrix expands the requested core/opt/scenario keys, failing fast
// on unknown names.
func resolveMatrix(o chaosOptions) (cores []coreDef, opts []optDef, scenarios []scenarioDef, err error) {
	if len(o.cores) == 0 {
		cores = coreDefs
	} else {
		for _, k := range o.cores {
			c, ok := coreByKey(k)
			if !ok {
				return nil, nil, nil, fmt.Errorf("unknown core %q (have: %s)", k, joinKeys())
			}
			cores = append(cores, c)
		}
	}
	if len(o.opts) == 0 {
		opts = optDefs
	} else {
		for _, k := range o.opts {
			op, ok := optByKey(k)
			if !ok {
				return nil, nil, nil, fmt.Errorf("unknown option %q", k)
			}
			opts = append(opts, op)
		}
	}
	if len(o.scenarios) == 0 {
		scenarios = scenarioLib
	} else {
		for _, name := range o.scenarios {
			s, ok := scenarioByName(name)
			if !ok {
				return nil, nil, nil, fmt.Errorf("unknown scenario %q", name)
			}
			scenarios = append(scenarios, s)
		}
	}
	return cores, opts, scenarios, nil
}

func joinKeys() string {
	keys := make([]string, len(coreDefs))
	for i, c := range coreDefs {
		keys[i] = c.key
	}
	return strings.Join(keys, ",")
}

// runChaosMatrix drives the scenario library over every core × option
// cell and returns the verdict report. ok is false when any property of
// any cell failed.
func runChaosMatrix(o chaosOptions) (*props.Report, bool) {
	if o.out == nil {
		o.out = os.Stdout
	}
	cores, opts, scenarios, err := resolveMatrix(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sqstress: %v\n", err)
		return nil, false
	}

	scenarioNames := make([]string, len(scenarios))
	for i, s := range scenarios {
		scenarioNames[i] = s.name
	}
	report := props.NewReport(o.seed, runtime.GOMAXPROCS(0), scenarioNames)

	for _, c := range cores {
		for _, op := range opts {
			label := c.key + "/" + op.key
			rc := &runCtx{
				core:      c,
				opt:       op,
				suite:     props.NewSuite(label),
				h:         metrics.New(),
				inj:       harnessInjector(configSeed(o.seed, c.key, op.key)),
				seed:      configSeed(o.seed, c.key, op.key),
				producers: o.producers,
				consumers: o.consumers,
			}
			rc.suite.SetReplay(o.replayCommand(c.key, op.key))
			registerProperties(rc)
			if o.sabotage {
				rc.suite.Always(sabotageProp, func(final bool) error {
					return fmt.Errorf("deliberately broken checker (self-test hook)")
				})
			}

			for _, sc := range scenarios {
				if sc.needsCancel && !c.cancelable {
					continue
				}
				if sc.execOnly && !c.executor {
					continue
				}
				if sc.batchOnly && !c.batch {
					continue
				}
				fmt.Fprintf(o.out, "chaos %-20s %s\n", label, sc.name)
				sc.run(rc, o.scenarioDur)
			}
			report.Add(rc.suite)
		}
	}

	fmt.Fprintln(o.out)
	fmt.Fprint(o.out, report.Render())
	if !report.OK {
		fmt.Fprintf(o.out, "\nFAIL: re-run a failing cell with its replay line above (same seed, same injected-event stream)\n")
	}
	if o.jsonPath != "" {
		b := append(report.JSON(), '\n')
		if o.jsonPath == "-" {
			o.out.Write(b)
		} else if err := os.WriteFile(o.jsonPath, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sqstress: writing %s: %v\n", o.jsonPath, err)
			return report, false
		}
	}
	return report, report.OK
}
