// Command sqstress is a long-running invariant stress tester for the
// synchronous queue implementations. It drives a mixed workload — demand
// puts/takes, timed offers/polls with random patience, and cancellation
// storms — while recording a full operation history, then verifies
// conservation (no value lost, duplicated, or invented) and synchrony
// (every transfer's put and take intervals overlap).
//
// Usage:
//
//	sqstress -algo "New SynchQueue (fair)" -duration 10s -producers 8 -consumers 8
//	sqstress -all -duration 2s
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"synchq/internal/baseline"
	"synchq/internal/bench"
	"synchq/internal/core"
	"synchq/internal/stats"
	"synchq/internal/verify"
)

// timedSQ is the rich surface the stress mix needs.
type timedSQ interface {
	OfferTimeout(v int64, d time.Duration) bool
	PollTimeout(d time.Duration) (int64, bool)
}

func newTimed(name string) timedSQ {
	switch name {
	case "SynchronousQueue":
		return baseline.NewJava5[int64](false)
	case "SynchronousQueue (fair)":
		return baseline.NewJava5[int64](true)
	case "New SynchQueue":
		return core.NewDualStack[int64](core.WaitConfig{})
	case "New SynchQueue (fair)":
		return core.NewDualQueue[int64](core.WaitConfig{})
	case "GoChannel":
		return baseline.NewChannel[int64]()
	default:
		return nil
	}
}

func main() {
	var (
		algo      = flag.String("algo", "New SynchQueue (fair)", "algorithm under test (bench registry name)")
		all       = flag.Bool("all", false, "stress every timed algorithm in sequence")
		duration  = flag.Duration("duration", 5*time.Second, "stress duration per algorithm")
		producers = flag.Int("producers", 8, "producer goroutines")
		consumers = flag.Int("consumers", 8, "consumer goroutines")
		seed      = flag.Uint64("seed", 1, "PRNG seed for patience jitter")
	)
	flag.Parse()

	names := []string{*algo}
	if *all {
		names = nil
		for _, a := range bench.Algorithms(true) {
			if newTimed(a.Name) != nil {
				names = append(names, a.Name)
			}
		}
	}

	exit := 0
	for _, name := range names {
		q := newTimed(name)
		if q == nil {
			fmt.Fprintf(os.Stderr, "sqstress: algorithm %q lacks the timed interface\n", name)
			os.Exit(2)
		}
		if !stress(name, q, *duration, *producers, *consumers, *seed) {
			exit = 1
		}
	}
	os.Exit(exit)
}

// stress runs the mixed workload and verifies the recorded history. It
// returns true if every invariant held.
func stress(name string, q timedSQ, d time.Duration, producers, consumers int, seed uint64) bool {
	rec := verify.NewRecorder()
	stop := make(chan struct{})
	var offered, delivered, putTimeouts, pollTimeouts atomic.Int64
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, uint64(id)))
			log := rec.NewThread()
			for seq := int64(0); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				v := id<<40 | seq
				patience := time.Duration(rng.IntN(2000)) * time.Microsecond
				inv := log.Begin()
				ok := q.OfferTimeout(v, patience)
				log.End(verify.Put, v, inv, ok)
				if ok {
					offered.Add(1)
				} else {
					putTimeouts.Add(1)
				}
			}
		}(int64(p))
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed+1000, uint64(id)))
			log := rec.NewThread()
			for {
				select {
				case <-stop:
					return
				default:
				}
				patience := time.Duration(rng.IntN(2000)) * time.Microsecond
				inv := log.Begin()
				v, ok := q.PollTimeout(patience)
				log.End(verify.Take, v, inv, ok)
				if ok {
					delivered.Add(1)
				} else {
					pollTimeouts.Add(1)
				}
			}
		}(int64(c))
	}

	time.Sleep(d)
	close(stop)
	wg.Wait()

	// Drain any value committed to a producer whose consumer had not yet
	// recorded it (cannot happen for a synchronous queue, but the drain
	// also catches implementation bugs that buffer values).
	drainLog := rec.NewThread()
	for {
		inv := drainLog.Begin()
		v, ok := q.PollTimeout(10 * time.Millisecond)
		drainLog.End(verify.Take, v, inv, ok)
		if !ok {
			break
		}
		delivered.Add(1)
	}

	history := rec.History()
	res := verify.Check(history, true)
	status := "PASS"
	if !res.Ok() || offered.Load() != delivered.Load() {
		status = "FAIL"
	}
	fmt.Printf("%-28s %s  transfers=%d put-timeouts=%d poll-timeouts=%d\n",
		name, status, res.Transfers, putTimeouts.Load(), pollTimeouts.Load())
	putLat, takeLat := verify.Latencies(history)
	if len(putLat) > 0 {
		fmt.Printf("  put latency (ns):  %s\n", stats.Summarize(putLat))
	}
	if len(takeLat) > 0 {
		fmt.Printf("  take latency (ns): %s\n", stats.Summarize(takeLat))
	}
	if offered.Load() != delivered.Load() {
		fmt.Printf("  conservation: offered=%d delivered=%d\n", offered.Load(), delivered.Load())
	}
	for _, e := range res.Errors {
		fmt.Printf("  violation: %s\n", e)
	}
	return status == "PASS"
}
