// Command sqstress is a long-running invariant stress tester for the
// synchronous queue implementations. It drives a mixed workload — demand
// puts/takes, timed offers/polls with random patience, and cancellation
// storms — while recording a full operation history, then verifies
// conservation (no value lost, duplicated, or invented) and synchrony
// (every transfer's put and take intervals overlap).
//
// With -chaos, sqstress instead runs the property-declared chaos harness:
// every core × option configuration (dual stack, dual queue, transfer
// queue, sharded fabric, eliminating composition, executor pool; default
// and no-spin wait configs) is driven through a scenario library — bursty
// open/close cycles, skew flips, cancel storms, goroutine churn,
// slow-consumer backpressure, GOMAXPROCS shifts, plus two executor-only
// scenarios (admission overload with deadline shedding, graceful
// drain-storm with forced reclaim) — under the deterministic
// fault injector (internal/fault), against named Always / Sometimes /
// Reachable properties. The run emits a verdict table (text, plus JSON via
// -json); any failing row makes the exit status nonzero and prints a
// one-line replay command that re-runs that configuration with the same
// seed, hence the same injected-event stream.
//
// Usage:
//
//	sqstress -algo "New SynchQueue (fair)" -duration 10s -producers 8 -consumers 8
//	sqstress -all -duration 2s
//	sqstress -chaos -seed 42 -scenario-duration 300ms -json verdicts.json
//	sqstress -chaos -cores queue,elim -opts nospin -scenarios cancel-storm,churn
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"synchq/internal/baseline"
	"synchq/internal/bench"
	"synchq/internal/core"
	"synchq/internal/exchanger"
	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/shard"
	"synchq/internal/stats"
	"synchq/internal/verify"
)

// timedSQ is the rich surface the stress mix needs.
type timedSQ interface {
	OfferTimeout(v int64, d time.Duration) bool
	PollTimeout(d time.Duration) (int64, bool)
}

// transferSQ adapts the §5 transfer queue to the stress mix: an offer is a
// synchronous transfer with bounded patience, so the workload exercises the
// same dual-queue hand-off paths plus the transfer queue's wrappers.
type transferSQ struct{ tq *core.TransferQueue[int64] }

func (a transferSQ) OfferTimeout(v int64, d time.Duration) bool { return a.tq.TransferTimeout(v, d) }
func (a transferSQ) PollTimeout(d time.Duration) (int64, bool)  { return a.tq.PollTimeout(d) }

// elimSQ fronts a dual queue with the adaptive elimination arena, like
// synchq.NewEliminatingAdaptive, so the stress mix covers the arena's
// retract/hand-off races (and, under -chaos, its XArenaPause site).
type elimSQ struct {
	arena *exchanger.Arena[int64]
	q     *core.DualQueue[int64]
}

func (e elimSQ) OfferTimeout(v int64, d time.Duration) bool {
	if e.arena.TryGiveAdaptive(v) {
		return true
	}
	return e.q.OfferTimeout(v, d)
}

func (e elimSQ) PollTimeout(d time.Duration) (int64, bool) {
	if v, ok := e.arena.TryTakeAdaptive(); ok {
		return v, true
	}
	return e.q.PollTimeout(d)
}

// newTimed constructs the named algorithm, attaching h and the fault
// injector f to the implementations that support them. metered reports
// whether h was attached.
func newTimed(name string, h *metrics.Handle, f *fault.Injector) (q timedSQ, metered bool) {
	cfg := core.WaitConfig{Metrics: h, Fault: f}
	switch name {
	case "SynchronousQueue":
		return baseline.NewJava5[int64](false), false
	case "SynchronousQueue (fair)":
		return baseline.NewJava5[int64](true), false
	case "New SynchQueue":
		return core.NewDualStack[int64](cfg), h != nil
	case "New SynchQueue (fair)":
		return core.NewDualQueue[int64](cfg), h != nil
	case "New TransferQueue":
		return transferSQ{core.NewTransferQueue[int64](cfg)}, h != nil
	case "Sharded SynchQueue (fair)":
		fab := shard.New(0, func(int) shard.Dual[int64] {
			return core.NewDualQueue[int64](cfg)
		}).SetMetrics(h).SetFault(f)
		return fab, h != nil
	case "Eliminating SynchQueue (fair)":
		arena := exchanger.NewArenaAdaptive[int64](0).SetMetrics(h).SetFault(f)
		return elimSQ{arena: arena, q: core.NewDualQueue[int64](cfg)}, h != nil
	case "GoChannel":
		return baseline.NewChannel[int64](), false
	default:
		return nil, false
	}
}

func main() {
	var (
		algo      = flag.String("algo", "New SynchQueue (fair)", "algorithm under test (bench registry name); comma-separate to stress several")
		all       = flag.Bool("all", false, "stress every timed algorithm in sequence")
		duration  = flag.Duration("duration", 5*time.Second, "stress duration per algorithm")
		producers = flag.Int("producers", 8, "producer goroutines")
		consumers = flag.Int("consumers", 8, "consumer goroutines")
		seed      = flag.Uint64("seed", 1, "PRNG seed for patience jitter and fault injection")
		chaos     = flag.Bool("chaos", false, "run the property-declared chaos harness: scenario library × core matrix under deterministic fault injection, with a verdict table")
		metricsF  = flag.Bool("metrics", false, "print the instrumentation counter table after the runs (always printed on failure)")
		httpAddr  = flag.String("http", "", "serve expvar at this address (e.g. :8080) so counters are scrapable at /debug/vars during long runs")
		procs     = flag.Int("procs", 0, "GOMAXPROCS for the run; 0 keeps the runtime default. Raising it on a small host widens the shard fabric (its width follows GOMAXPROCS), so the cross-shard steal paths get stressed too")

		// Chaos-harness matrix selectors (with -chaos only).
		coresF      = flag.String("cores", "", "chaos: comma-separated core keys (stack,queue,transfer,seg,sharded,auto,elim,pool); empty = all")
		optsF       = flag.String("opts", "", "chaos: comma-separated option keys (default,nospin); empty = all")
		scenariosF  = flag.String("scenarios", "", "chaos: comma-separated scenario names; empty or \"all\" = whole library")
		scenarioDur = flag.Duration("scenario-duration", 2*time.Second, "chaos: workload duration per scenario")
		jsonPath    = flag.String("json", "", "chaos: write the machine-readable verdict report to this file (\"-\" = stdout)")
		sabotageF   = flag.Bool("chaos-sabotage", false, "chaos: register a deliberately broken always-checker (self-test: the run must fail with a nonzero exit)")
	)
	flag.Parse()

	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	if *chaos {
		o := chaosOptions{
			seed:        *seed,
			cores:       splitKeys(*coresF),
			opts:        splitKeys(*optsF),
			scenarios:   splitKeys(*scenariosF),
			scenarioDur: *scenarioDur,
			producers:   *producers,
			consumers:   *consumers,
			jsonPath:    *jsonPath,
			sabotage:    *sabotageF,
		}
		if _, ok := runChaosMatrix(o); !ok {
			os.Exit(1)
		}
		return
	}

	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "sqstress: expvar server: %v\n", err)
			}
		}()
	}

	var names []string
	for _, n := range strings.Split(*algo, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if *all {
		names = nil
		for _, a := range bench.Algorithms(true) {
			if q, _ := newTimed(a.Name, nil, nil); q != nil {
				names = append(names, a.Name)
			}
		}
		// The transfer queue lives outside the bench registry (its Put is
		// asynchronous, which the throughput benchmarks exclude) but its
		// synchronous paths stress exactly like the fair queue's. The
		// sharded and eliminating compositions likewise join only here,
		// where their cross-shard steals and arena retract races get the
		// long-running mixed workload the figures do not provide.
		names = append(names,
			"New TransferQueue",
			"Sharded SynchQueue (fair)",
			"Eliminating SynchQueue (fair)")
	}

	// One counter table across all stressed algorithms: a row per counter,
	// a column per instrumented algorithm. The core structures are always
	// metered so the table can be dumped when a run fails; -metrics merely
	// prints it unconditionally.
	var cols []string
	for _, name := range names {
		if _, metered := newTimed(name, metrics.New(), nil); metered {
			cols = append(cols, name)
		}
	}
	var counterTable, latencyTable *stats.Table
	if len(cols) > 0 {
		counterTable = stats.NewTable("Instrumentation counters", "counter", "events", cols)
		latencyTable = stats.NewTable("Latency histograms (sampled, ns)", "percentile", "ns", cols)
	}

	exit := 0
	for _, name := range names {
		h := metrics.New()
		q, metered := newTimed(name, h, nil)
		if q == nil {
			fmt.Fprintf(os.Stderr, "sqstress: algorithm %q lacks the timed interface\n", name)
			os.Exit(2)
		}
		if metered {
			metrics.Publish("sqstress."+name, h)
		}
		if !stress(name, q, *duration, *producers, *consumers, *seed) {
			exit = 1
			fmt.Printf("  replay: go run ./cmd/sqstress -algo %q -duration %s -producers %d -consumers %d -seed %d -procs %d\n",
				name, *duration, *producers, *consumers, *seed, runtime.GOMAXPROCS(0))
		}
		if metered && counterTable != nil {
			s := h.Snapshot()
			for i := metrics.ID(0); i < metrics.NumIDs; i++ {
				counterTable.Set(i.String(), name, float64(s.Get(i)))
			}
			hs := h.Histograms()
			for i := metrics.HistID(0); i < metrics.NumHistIDs; i++ {
				c := hs.Get(i)
				if c.Count() == 0 {
					continue
				}
				latencyTable.Set(i.String()+" p50", name, float64(c.Percentile(0.50)))
				latencyTable.Set(i.String()+" p99", name, float64(c.Percentile(0.99)))
			}
		}
	}
	if counterTable != nil && (*metricsF || exit != 0) {
		fmt.Println()
		fmt.Print(counterTable.Render())
		fmt.Println()
		fmt.Print(latencyTable.Render())
	}
	os.Exit(exit)
}

// splitKeys parses a comma-separated selector flag; "all" (or empty)
// selects everything.
func splitKeys(s string) []string {
	var out []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" && k != "all" {
			out = append(out, k)
		}
	}
	return out
}

// stress runs the mixed workload and verifies the recorded history. It
// returns true if every invariant held.
func stress(name string, q timedSQ, d time.Duration, producers, consumers int, seed uint64) bool {
	rec := verify.NewRecorder()
	stop := make(chan struct{})
	var offered, delivered, putTimeouts, pollTimeouts atomic.Int64
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, uint64(id)))
			log := rec.NewThread()
			for seq := int64(0); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				v := id<<40 | seq
				patience := time.Duration(rng.IntN(2000)) * time.Microsecond
				inv := log.Begin()
				ok := q.OfferTimeout(v, patience)
				log.End(verify.Put, v, inv, ok)
				if ok {
					offered.Add(1)
				} else {
					putTimeouts.Add(1)
				}
			}
		}(int64(p))
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed+1000, uint64(id)))
			log := rec.NewThread()
			for {
				select {
				case <-stop:
					return
				default:
				}
				patience := time.Duration(rng.IntN(2000)) * time.Microsecond
				inv := log.Begin()
				v, ok := q.PollTimeout(patience)
				log.End(verify.Take, v, inv, ok)
				if ok {
					delivered.Add(1)
				} else {
					pollTimeouts.Add(1)
				}
			}
		}(int64(c))
	}

	time.Sleep(d)
	close(stop)
	wg.Wait()

	// Drain any value committed to a producer whose consumer had not yet
	// recorded it (cannot happen for a synchronous queue, but the drain
	// also catches implementation bugs that buffer values).
	drainLog := rec.NewThread()
	for {
		inv := drainLog.Begin()
		v, ok := q.PollTimeout(10 * time.Millisecond)
		drainLog.End(verify.Take, v, inv, ok)
		if !ok {
			break
		}
		delivered.Add(1)
	}

	history := rec.History()
	res := verify.Check(history, true)
	status := "PASS"
	if !res.Ok() || offered.Load() != delivered.Load() {
		status = "FAIL"
	}
	fmt.Printf("%-28s %s  transfers=%d put-timeouts=%d poll-timeouts=%d\n",
		name, status, res.Transfers, putTimeouts.Load(), pollTimeouts.Load())
	putLat, takeLat := verify.Latencies(history)
	if len(putLat) > 0 {
		fmt.Printf("  put latency (ns):  %s\n", stats.Summarize(putLat))
	}
	if len(takeLat) > 0 {
		fmt.Printf("  take latency (ns): %s\n", stats.Summarize(takeLat))
	}
	if offered.Load() != delivered.Load() {
		fmt.Printf("  conservation: offered=%d delivered=%d\n", offered.Load(), delivered.Load())
	}
	for _, e := range res.Errors {
		fmt.Printf("  violation: %s\n", e)
	}
	return status == "PASS"
}
