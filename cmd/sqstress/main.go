// Command sqstress is a long-running invariant stress tester for the
// synchronous queue implementations. It drives a mixed workload — demand
// puts/takes, timed offers/polls with random patience, and cancellation
// storms — while recording a full operation history, then verifies
// conservation (no value lost, duplicated, or invented) and synchrony
// (every transfer's put and take intervals overlap).
//
// Usage:
//
//	sqstress -algo "New SynchQueue (fair)" -duration 10s -producers 8 -consumers 8
//	sqstress -all -duration 2s
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"synchq/internal/baseline"
	"synchq/internal/bench"
	"synchq/internal/core"
	"synchq/internal/metrics"
	"synchq/internal/stats"
	"synchq/internal/verify"
)

// timedSQ is the rich surface the stress mix needs.
type timedSQ interface {
	OfferTimeout(v int64, d time.Duration) bool
	PollTimeout(d time.Duration) (int64, bool)
}

// newTimed constructs the named algorithm, attaching h to the
// implementations that support instrumentation (the core dual
// structures). metered reports whether h was attached.
func newTimed(name string, h *metrics.Handle) (q timedSQ, metered bool) {
	switch name {
	case "SynchronousQueue":
		return baseline.NewJava5[int64](false), false
	case "SynchronousQueue (fair)":
		return baseline.NewJava5[int64](true), false
	case "New SynchQueue":
		return core.NewDualStack[int64](core.WaitConfig{Metrics: h}), h != nil
	case "New SynchQueue (fair)":
		return core.NewDualQueue[int64](core.WaitConfig{Metrics: h}), h != nil
	case "GoChannel":
		return baseline.NewChannel[int64](), false
	default:
		return nil, false
	}
}

func main() {
	var (
		algo      = flag.String("algo", "New SynchQueue (fair)", "algorithm under test (bench registry name)")
		all       = flag.Bool("all", false, "stress every timed algorithm in sequence")
		duration  = flag.Duration("duration", 5*time.Second, "stress duration per algorithm")
		producers = flag.Int("producers", 8, "producer goroutines")
		consumers = flag.Int("consumers", 8, "consumer goroutines")
		seed      = flag.Uint64("seed", 1, "PRNG seed for patience jitter")
		metricsF  = flag.Bool("metrics", false, "instrument the core dual structures and print their counter table after each run")
		httpAddr  = flag.String("http", "", "serve expvar at this address (e.g. :8080) so counters are scrapable at /debug/vars during long runs")
	)
	flag.Parse()

	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "sqstress: expvar server: %v\n", err)
			}
		}()
	}

	names := []string{*algo}
	if *all {
		names = nil
		for _, a := range bench.Algorithms(true) {
			if q, _ := newTimed(a.Name, nil); q != nil {
				names = append(names, a.Name)
			}
		}
	}

	// One counter table across all stressed algorithms: a row per
	// counter, a column per instrumented algorithm.
	var counterTable *stats.Table
	if *metricsF {
		var cols []string
		for _, name := range names {
			if _, metered := newTimed(name, metrics.New()); metered {
				cols = append(cols, name)
			}
		}
		if len(cols) > 0 {
			counterTable = stats.NewTable("Instrumentation counters", "counter", "events", cols)
		}
	}

	exit := 0
	for _, name := range names {
		var h *metrics.Handle
		if *metricsF {
			h = metrics.New()
		}
		q, metered := newTimed(name, h)
		if q == nil {
			fmt.Fprintf(os.Stderr, "sqstress: algorithm %q lacks the timed interface\n", name)
			os.Exit(2)
		}
		if metered {
			metrics.Publish("sqstress."+name, h)
		}
		if !stress(name, q, *duration, *producers, *consumers, *seed) {
			exit = 1
		}
		if metered && counterTable != nil {
			s := h.Snapshot()
			for i := metrics.ID(0); i < metrics.NumIDs; i++ {
				counterTable.Set(i.String(), name, float64(s.Get(i)))
			}
		}
	}
	if counterTable != nil {
		fmt.Println()
		fmt.Print(counterTable.Render())
	}
	os.Exit(exit)
}

// stress runs the mixed workload and verifies the recorded history. It
// returns true if every invariant held.
func stress(name string, q timedSQ, d time.Duration, producers, consumers int, seed uint64) bool {
	rec := verify.NewRecorder()
	stop := make(chan struct{})
	var offered, delivered, putTimeouts, pollTimeouts atomic.Int64
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, uint64(id)))
			log := rec.NewThread()
			for seq := int64(0); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				v := id<<40 | seq
				patience := time.Duration(rng.IntN(2000)) * time.Microsecond
				inv := log.Begin()
				ok := q.OfferTimeout(v, patience)
				log.End(verify.Put, v, inv, ok)
				if ok {
					offered.Add(1)
				} else {
					putTimeouts.Add(1)
				}
			}
		}(int64(p))
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed+1000, uint64(id)))
			log := rec.NewThread()
			for {
				select {
				case <-stop:
					return
				default:
				}
				patience := time.Duration(rng.IntN(2000)) * time.Microsecond
				inv := log.Begin()
				v, ok := q.PollTimeout(patience)
				log.End(verify.Take, v, inv, ok)
				if ok {
					delivered.Add(1)
				} else {
					pollTimeouts.Add(1)
				}
			}
		}(int64(c))
	}

	time.Sleep(d)
	close(stop)
	wg.Wait()

	// Drain any value committed to a producer whose consumer had not yet
	// recorded it (cannot happen for a synchronous queue, but the drain
	// also catches implementation bugs that buffer values).
	drainLog := rec.NewThread()
	for {
		inv := drainLog.Begin()
		v, ok := q.PollTimeout(10 * time.Millisecond)
		drainLog.End(verify.Take, v, inv, ok)
		if !ok {
			break
		}
		delivered.Add(1)
	}

	history := rec.History()
	res := verify.Check(history, true)
	status := "PASS"
	if !res.Ok() || offered.Load() != delivered.Load() {
		status = "FAIL"
	}
	fmt.Printf("%-28s %s  transfers=%d put-timeouts=%d poll-timeouts=%d\n",
		name, status, res.Transfers, putTimeouts.Load(), pollTimeouts.Load())
	putLat, takeLat := verify.Latencies(history)
	if len(putLat) > 0 {
		fmt.Printf("  put latency (ns):  %s\n", stats.Summarize(putLat))
	}
	if len(takeLat) > 0 {
		fmt.Printf("  take latency (ns): %s\n", stats.Summarize(takeLat))
	}
	if offered.Load() != delivered.Load() {
		fmt.Printf("  conservation: offered=%d delivered=%d\n", offered.Load(), delivered.Load())
	}
	for _, e := range res.Errors {
		fmt.Printf("  violation: %s\n", e)
	}
	return status == "PASS"
}
