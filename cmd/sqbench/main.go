// Command sqbench regenerates the paper's evaluation figures.
//
// Each figure sweeps a concurrency axis and prints one row per level with
// one column per algorithm, in the paper's legend order:
//
//	Figure 3:  N producers : N consumers   (ns/transfer vs pairs)
//	Figure 4:  1 producer  : N consumers   (ns/transfer vs consumers)
//	Figure 5:  N producers : 1 consumer    (ns/transfer vs producers)
//	Figure 6:  CachedThreadPool ns/task vs submitter threads
//
// Usage:
//
//	sqbench -figure all
//	sqbench -figure 3 -transfers 50000 -repeats 5
//	sqbench -figure 6 -levels 1,2,4,8 -csv > fig6.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"synchq/internal/bench"
	"synchq/internal/sim"
	"synchq/internal/stats"
)

// simTransfers caps the per-cell transfer count for simulated figures:
// simulation is orders of magnitude slower than live measurement, and the
// simulator is deterministic, so small counts already give exact results.
func simTransfers(o bench.SweepOpts) int64 {
	if o.Transfers > 5000 {
		return 2000
	}
	return o.Transfers
}

func main() {
	var (
		figure    = flag.String("figure", "all", `figure to regenerate: "3", "4", "5", "6", "all", an ablation ("spin", "clean", "elim", "procsweep", "ablations"), "scaling" (the producer×consumer scaling sweep), "batch" (k-item batch ops vs k single ops), "latency" (the latency-histogram overhead benchmark), "executor" (the bursty RPC-frontend executor macro-benchmark), or "sim3" (Figure 3 on the simulated multiprocessor)`)
		transfers = flag.Int64("transfers", 20000, "transfers (or tasks) per measurement cell")
		levels    = flag.String("levels", "", "comma-separated sweep levels overriding the paper's defaults")
		repeats   = flag.Int("repeats", 3, "measurements per cell (minimum is reported)")
		extras    = flag.Bool("extras", false, "add Go channel and naive monitor queue series")
		csv       = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		chart     = flag.Bool("chart", false, "emit ASCII bar charts instead of tables")
		speedup   = flag.String("speedup", "", "append a speedup table relative to the named series (e.g. \"SynchronousQueue\")")
		metricsF  = flag.Bool("metrics", false, "append, for live figures 3-5, the instrumented-counter table (CAS failures, spins, parks, unparks, cleaning sweeps per 1000 transfers) recorded alongside throughput")
		jsonF     = flag.Bool("json", false, "emit a JSON report instead of a figure: the hand-off allocation benchmark (BENCH_handoff.json) by default, the scaling sweep (BENCH_scaling.json) with -figure scaling, the batch sweep (BENCH_batch.json) with -figure batch, or the latency-observability overhead benchmark (BENCH_latency.json) with -figure latency")
		gate      = flag.Bool("gate", false, "exit nonzero on a failed regression gate: with -figure scaling, the sharded+adaptive fair queue must not be slower than the plain fair queue at the maximum pair count; with -figure batch, k=8 batches must beat the equivalent single-op loop on the seg and transfer cores; with -figure latency, enabling the latency histograms must not exceed the overhead budget")
		coresF    = flag.String("cores", "", `with -figure scaling or batch: comma-separated series names restricting the sweep (e.g. "queue,seg"), so CI can gate a reduced comparison quickly; the gate checks whichever headline pairs the selection includes`)
		artifacts = flag.Bool("artifacts", false, "regenerate every committed BENCH_*.json with its committed settings (the `make bench-all` entry point), printing per-figure headline deltas vs the files being replaced")
		dirF      = flag.String("dir", ".", "with -artifacts: directory holding the BENCH_*.json files")
		quiet     = flag.Bool("quiet", false, "suppress progress output on stderr")
		procs     = flag.Int("procs", 0, "GOMAXPROCS for the run; 0 selects max(NumCPU, 8) so that the paper's contention regime is reproduced even on small hosts")
		simProcs  = flag.Int("simprocs", 16, "simulated processors for -figure sim3")
	)
	flag.Parse()

	p := *procs
	if p <= 0 {
		p = runtime.NumCPU()
		if p < 8 {
			p = 8
		}
	}
	runtime.GOMAXPROCS(p)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sqbench: GOMAXPROCS=%d (NumCPU=%d)\n", p, runtime.NumCPU())
	}

	if *artifacts {
		os.Exit(runArtifacts(*dirF, *quiet))
	}

	if *jsonF && *figure != "scaling" && *figure != "batch" && *figure != "latency" && *figure != "executor" {
		report := bench.HandoffAllocs(*transfers)
		out, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", out)
		return
	}

	var lv []int
	if *levels != "" {
		for _, part := range strings.Split(*levels, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "sqbench: bad level %q\n", part)
				os.Exit(2)
			}
			lv = append(lv, n)
		}
	}

	opts := bench.SweepOpts{
		Transfers: *transfers,
		Levels:    lv,
		Repeats:   *repeats,
		Extras:    *extras,
	}
	if *coresF != "" {
		for _, part := range strings.Split(*coresF, ",") {
			opts.Cores = append(opts.Cores, strings.TrimSpace(part))
		}
		validate := bench.ValidateScalingCores
		if *figure == "batch" {
			validate = bench.ValidateBatchCores
		}
		if err := validate(opts.Cores); err != nil {
			fmt.Fprintf(os.Stderr, "sqbench: %v\n", err)
			os.Exit(2)
		}
	}
	if !*quiet {
		opts.Progress = func(fig int, algo string, level int) {
			fmt.Fprintf(os.Stderr, "figure %d: %-28s level %d\n", fig, algo, level)
		}
	}

	if *figure == "scaling" {
		t, report := bench.Scaling(opts)
		if *jsonF {
			out, err := report.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "sqbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%s\n", out)
		} else if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
			if report.Summary.ShardedNs > 0 {
				fmt.Printf("\nsummary: queue+shard+elim at %d pairs: %.0f ns/transfer vs %.0f unsharded (%.2fx)\n",
					report.Summary.MaxPairs, report.Summary.ShardedNs,
					report.Summary.BaselineNs, report.Summary.Speedup)
			}
			if report.Summary.SegNs > 0 {
				fmt.Printf("summary: seg at %d pairs: %.0f ns/transfer vs %.0f plain queue (%.2fx)\n",
					report.Summary.MaxPairs, report.Summary.SegNs,
					report.Summary.BaselineNs, report.Summary.SegSpeedup)
			}
			if report.Summary.AutoNs > 0 {
				fmt.Printf("summary: auto at %d pairs: %.0f ns/transfer vs %.0f plain queue (%.2fx)\n",
					report.Summary.MaxPairs, report.Summary.AutoNs,
					report.Summary.BaselineNs, report.Summary.AutoSpeedup)
			}
			if report.Summary.AutoTax > 0 {
				fmt.Printf("summary: auto at 1 pair: %.0f ns/transfer vs %.0f plain queue (collapse tax %.2fx, collapsed in %d/%d repeats)\n",
					report.Summary.Auto1Ns, report.Summary.Baseline1Ns, report.Summary.AutoTax,
					report.Summary.Auto1Collapsed, report.Repeats)
			}
		}
		if *gate {
			if err := report.Gate(); err != nil {
				fmt.Fprintf(os.Stderr, "sqbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "sqbench: scaling gate passed (shard %.2fx, seg %.2fx, auto %.2fx, 1-pair tax %.2fx at %d pairs)\n",
				report.Summary.Speedup, report.Summary.SegSpeedup,
				report.Summary.AutoSpeedup, report.Summary.AutoTax, report.Summary.MaxPairs)
		}
		return
	}

	if *figure == "batch" {
		t, report := bench.Batch(opts)
		if *jsonF {
			out, err := report.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "sqbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%s\n", out)
		} else if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
			if report.Summary.SegBatchNs > 0 {
				fmt.Printf("\nsummary: seg k=%d at %d pairs: %.0f ns/item vs %.0f single-op (%.2fx)\n",
					report.Summary.K, report.Summary.MaxPairs, report.Summary.SegBatchNs,
					report.Summary.SegSingleNs, report.Summary.SegGain)
			}
			if report.Summary.TransferBatchNs > 0 {
				fmt.Printf("summary: transfer k=%d at %d pairs: %.0f ns/item vs %.0f single-op (%.2fx)\n",
					report.Summary.K, report.Summary.MaxPairs, report.Summary.TransferBatchNs,
					report.Summary.TransferSingleNs, report.Summary.TransferGain)
			}
		}
		if *gate {
			if err := report.Gate(); err != nil {
				fmt.Fprintf(os.Stderr, "sqbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "sqbench: batch gate passed (seg %.2fx, transfer %.2fx at k=%d, %d pairs)\n",
				report.Summary.SegGain, report.Summary.TransferGain, report.Summary.K, report.Summary.MaxPairs)
		}
		return
	}

	if *figure == "executor" {
		t, report := bench.Executor(opts)
		if *jsonF {
			out, err := report.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "sqbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%s\n", out)
		} else if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
			for _, run := range report.Runs {
				fmt.Printf("\n%s: burst shed %d, rejected %d; drain %.1fms (forced=%v, returned %d); queue-wait p99 %dns\n",
					run.Series, run.Burst.Shed, run.Burst.Rejected,
					float64(run.DrainNs)/1e6, run.DrainForced, run.Returned, run.QueueWaitP99Ns)
			}
		}
		if *gate {
			if err := report.Gate(); err != nil {
				fmt.Fprintf(os.Stderr, "sqbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "sqbench: executor gate passed (%d runs, ledgers exact, overload bit)\n",
				len(report.Runs))
		}
		return
	}

	if *figure == "latency" {
		t, report := bench.Latency(opts)
		if *jsonF {
			out, err := report.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "sqbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%s\n", out)
		} else if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
			fmt.Printf("\nsummary: worst metrics-on overhead %.1f%%\n",
				report.Summary.MaxOverhead*100)
		}
		if *gate {
			if err := report.Gate(); err != nil {
				fmt.Fprintf(os.Stderr, "sqbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "sqbench: latency gate passed (worst overhead %.1f%%)\n",
				report.Summary.MaxOverhead*100)
		}
		return
	}

	figs := map[string]func(bench.SweepOpts) *stats.Table{
		"3":         bench.Figure3,
		"4":         bench.Figure4,
		"5":         bench.Figure5,
		"6":         bench.Figure6,
		"spin":      bench.AblationSpin,
		"clean":     bench.AblationClean,
		"elim":      bench.AblationElimination,
		"procsweep": func(o bench.SweepOpts) *stats.Table { return bench.ProcsSweep(o, 16) },
		"sim3": func(o bench.SweepOpts) *stats.Table {
			return sim.Figure3(sim.DefaultConfig(*simProcs), o.Levels, simTransfers(o))
		},
		"sim4": func(o bench.SweepOpts) *stats.Table {
			return sim.Figure4(sim.DefaultConfig(*simProcs), o.Levels, simTransfers(o))
		},
		"sim5": func(o bench.SweepOpts) *stats.Table {
			return sim.Figure5(sim.DefaultConfig(*simProcs), o.Levels, simTransfers(o))
		},
		"simprocsweep": func(o bench.SweepOpts) *stats.Table {
			return sim.ProcsSweep(o.Levels, 16, simTransfers(o))
		},
	}
	var order []string
	switch {
	case *figure == "all":
		order = []string{"3", "4", "5", "6"}
	case *figure == "ablations":
		order = []string{"spin", "clean", "elim", "procsweep"}
	case *figure == "sim":
		order = []string{"sim3", "sim4", "sim5", "simprocsweep"}
	default:
		if _, ok := figs[*figure]; !ok {
			fmt.Fprintf(os.Stderr, "sqbench: unknown figure %q\n", *figure)
			os.Exit(2)
		}
		order = []string{*figure}
	}

	for i, f := range order {
		t := figs[f](opts)
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *chart:
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(t.Chart(60))
		default:
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(t.Render())
		}
		if *speedup != "" && !*csv {
			fmt.Println()
			fmt.Print(t.SpeedupTable(*speedup).Render())
		}
		if *metricsF {
			if fig, err := strconv.Atoi(f); err == nil && fig >= 3 && fig <= 5 {
				mt := bench.FigureMetrics(fig, opts)
				if *csv {
					fmt.Print(mt.CSV())
				} else {
					fmt.Println()
					fmt.Print(mt.Render())
				}
			}
		}
	}
}
