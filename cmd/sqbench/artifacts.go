package main

// Artifacts mode (`sqbench -artifacts`, `make bench-all`): regenerate
// every committed BENCH_*.json in one pass, each with the settings
// recorded in its committed header, and print a per-figure delta of the
// headline numbers against the baseline being replaced — so a
// regeneration is reviewable as "what moved and by how much", not just a
// wall of changed JSON.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"synchq/internal/bench"
)

// Committed artifact settings; these mirror the headers of the checked-in
// files and are deliberately longer than the quick `make check` gates.
const (
	artifactHandoffPairs     = 50000
	artifactScalingTransfers = 10000
	// Five repeats (best-of) because the committed sweep runs on a
	// single-CPU CI host where 8-pair cells are scheduler-noisy.
	artifactScalingRepeats    = 5
	artifactLatencyTransfers  = 20000
	artifactLatencyRepeats    = 7
	artifactExecutorTransfers = 20000
	artifactBatchTransfers    = 20000
	// Best-of-five, like scaling: the batched cells at high pair counts
	// are park/unpark-bound and scheduler-noisy on shared CI hosts.
	artifactBatchRepeats = 5
)

// jsonReport is the surface every bench report shares.
type jsonReport interface{ JSON() ([]byte, error) }

// artifactJob regenerates one committed file and names the headline
// metrics its delta report tracks, as paths into the JSON document.
type artifactJob struct {
	file      string
	run       func(progress func(int, string, int)) (jsonReport, error)
	headlines []headline
}

// headline is one tracked metric: a label and a path through the JSON
// object tree. A path element selects a map key; the special element "[]"
// fans out over every element of an array, using each element's keyField
// value as the label suffix.
type headline struct {
	label    string
	path     []string
	keyField string
}

func artifactJobs() []artifactJob {
	return []artifactJob{
		{
			file: "BENCH_handoff.json",
			run: func(func(int, string, int)) (jsonReport, error) {
				return bench.HandoffAllocs(artifactHandoffPairs), nil
			},
			headlines: []headline{
				{label: "allocs/pair", path: []string{"results", "[]", "allocs_per_pair"}, keyField: "algo"},
			},
		},
		{
			file: "BENCH_scaling.json",
			run: func(p func(int, string, int)) (jsonReport, error) {
				_, r := bench.Scaling(bench.SweepOpts{
					Transfers: artifactScalingTransfers,
					Repeats:   artifactScalingRepeats,
					Progress:  p,
				})
				return r, nil
			},
			headlines: []headline{
				{label: "queue ns/transfer", path: []string{"summary", "baseline_ns_per_transfer"}},
				{label: "queue+shard+elim ns/transfer", path: []string{"summary", "sharded_ns_per_transfer"}},
				{label: "seg ns/transfer", path: []string{"summary", "seg_ns_per_transfer"}},
				{label: "auto ns/transfer", path: []string{"summary", "auto_ns_per_transfer"}},
				{label: "shard speedup", path: []string{"summary", "speedup"}},
				{label: "seg speedup", path: []string{"summary", "seg_speedup"}},
				{label: "auto speedup", path: []string{"summary", "auto_speedup"}},
				{label: "auto 1-pair collapse tax", path: []string{"summary", "auto_collapse_tax"}},
			},
		},
		{
			file: "BENCH_batch.json",
			run: func(p func(int, string, int)) (jsonReport, error) {
				_, r := bench.Batch(bench.SweepOpts{
					Transfers: artifactBatchTransfers,
					Repeats:   artifactBatchRepeats,
					Progress:  p,
				})
				return r, nil
			},
			headlines: []headline{
				{label: "seg single ns/item", path: []string{"summary", "seg_single_ns_per_item"}},
				{label: "seg batch ns/item", path: []string{"summary", "seg_batch_ns_per_item"}},
				{label: "seg gain", path: []string{"summary", "seg_gain"}},
				{label: "transfer single ns/item", path: []string{"summary", "transfer_single_ns_per_item"}},
				{label: "transfer batch ns/item", path: []string{"summary", "transfer_batch_ns_per_item"}},
				{label: "transfer gain", path: []string{"summary", "transfer_gain"}},
			},
		},
		{
			file: "BENCH_latency.json",
			run: func(p func(int, string, int)) (jsonReport, error) {
				_, r := bench.Latency(bench.SweepOpts{
					Transfers: artifactLatencyTransfers,
					Repeats:   artifactLatencyRepeats,
					Progress:  p,
				})
				return r, nil
			},
			headlines: []headline{
				{label: "max metrics-on overhead", path: []string{"summary", "max_overhead"}},
			},
		},
		{
			file: "BENCH_executor.json",
			run: func(p func(int, string, int)) (jsonReport, error) {
				_, r := bench.Executor(bench.SweepOpts{
					Transfers: artifactExecutorTransfers,
					Progress:  p,
				})
				return r, nil
			},
			headlines: []headline{
				{label: "queue-wait p99 ns", path: []string{"runs", "[]", "queue_wait_p99_ns"}, keyField: "series"},
			},
		},
	}
}

// runArtifacts regenerates every artifact into dir, printing deltas;
// it returns a process exit code.
func runArtifacts(dir string, quiet bool) int {
	failed := false
	for _, job := range artifactJobs() {
		path := filepath.Join(dir, job.file)
		var progress func(int, string, int)
		if !quiet {
			fmt.Fprintf(os.Stderr, "sqbench: regenerating %s\n", path)
			progress = func(_ int, algo string, level int) {
				fmt.Fprintf(os.Stderr, "  %-28s level %d\n", algo, level)
			}
		}
		report, err := job.run(progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sqbench: %s: %v\n", job.file, err)
			failed = true
			continue
		}
		out, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sqbench: %s: %v\n", job.file, err)
			failed = true
			continue
		}
		old, readErr := os.ReadFile(path)
		fmt.Printf("%s:\n", job.file)
		if readErr != nil {
			fmt.Printf("  (no committed baseline to diff against)\n")
		} else {
			printDeltas(old, out, job.headlines)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sqbench: %s: %v\n", job.file, err)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// printDeltas renders old → new for every headline metric found in both
// documents.
func printDeltas(oldJSON, newJSON []byte, hs []headline) {
	var oldDoc, newDoc any
	if json.Unmarshal(oldJSON, &oldDoc) != nil || json.Unmarshal(newJSON, &newDoc) != nil {
		fmt.Printf("  (baseline unparsable; skipping delta)\n")
		return
	}
	for _, h := range hs {
		for _, m := range extract(oldDoc, h, h.label) {
			nv, ok := lookupLabeled(newDoc, h, m.label)
			if !ok {
				continue
			}
			fmt.Printf("  %-32s %s -> %s%s\n", m.label, trimNum(m.value), trimNum(nv), pct(m.value, nv))
		}
	}
}

type metric struct {
	label string
	value float64
}

// extract walks one headline path through doc, fanning out at "[]".
func extract(doc any, h headline, label string) []metric {
	cur := doc
	for i, elem := range h.path {
		if elem == "[]" {
			arr, ok := cur.([]any)
			if !ok {
				return nil
			}
			var out []metric
			for _, item := range arr {
				obj, ok := item.(map[string]any)
				if !ok {
					continue
				}
				name, _ := obj[h.keyField].(string)
				sub := headline{path: h.path[i+1:], keyField: h.keyField}
				out = append(out, extract(item, sub, label+" "+name)...)
			}
			return out
		}
		obj, ok := cur.(map[string]any)
		if !ok {
			return nil
		}
		cur, ok = obj[elem]
		if !ok {
			return nil
		}
	}
	v, ok := cur.(float64)
	if !ok {
		return nil
	}
	return []metric{{label: label, value: v}}
}

// lookupLabeled finds the metric with the same fan-out label in the new
// document.
func lookupLabeled(doc any, h headline, label string) (float64, bool) {
	for _, m := range extract(doc, h, h.label) {
		if m.label == label {
			return m.value, true
		}
	}
	return 0, false
}

func trimNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// pct renders the relative change, or nothing when the baseline is zero.
func pct(old, new float64) string {
	if old == 0 {
		return ""
	}
	return fmt.Sprintf(" (%+.1f%%)", (new-old)/old*100)
}
