module synchq

go 1.22
