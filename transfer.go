package synchq

import (
	"context"
	"time"

	"synchq/internal/core"
)

// TransferQueue extends the fair synchronous queue so that producers may
// choose, per call, whether to hand off synchronously (Transfer: wait for a
// consumer to take the element) or asynchronously (Put: deposit the element
// and return immediately). Consumers always wait for data. This is the
// paper's §5 TransferQueue extension, the ancestor of
// java.util.concurrent.LinkedTransferQueue, useful for messaging frameworks
// that mix synchronous and asynchronous messages.
//
// Construct one with NewTransferQueue; a TransferQueue must not be copied
// after first use.
type TransferQueue[T any] struct {
	tq   *core.TransferQueue[T]
	inst *Metrics
}

// NewTransferQueue returns an empty transfer queue with default options.
func NewTransferQueue[T any](opts ...Option) *TransferQueue[T] {
	c := buildConfig(opts)
	return &TransferQueue[T]{tq: core.NewTransferQueue[T](c.wait), inst: c.inst}
}

// Metrics returns the instrumentation set attached with the Instrument
// option, or nil for an uninstrumented queue.
func (t *TransferQueue[T]) Metrics() *Metrics { return t.inst }

// Put deposits v asynchronously: a waiting consumer receives it directly,
// otherwise it is buffered in FIFO order. Put never blocks. Like a send on
// a closed channel, Put panics if the queue is closed; use PutErr when the
// queue may be shut down concurrently.
func (t *TransferQueue[T]) Put(v T) {
	if t.tq.Put(v) == core.Closed {
		panic(ErrClosed.Error())
	}
}

// PutErr is Put with the closed state reported as ErrClosed instead of a
// panic, for producers racing a shutdown.
func (t *TransferQueue[T]) PutErr(v T) error {
	if t.tq.Put(v) == core.Closed {
		return ErrClosed
	}
	return nil
}

// Transfer hands v to a consumer synchronously, waiting as long as
// necessary for one to take it. Buffered elements deposited earlier with
// Put are taken first (FIFO).
func (t *TransferQueue[T]) Transfer(v T) { t.tq.Transfer(v) }

// TryTransfer hands v to a consumer only if one is already waiting.
func (t *TransferQueue[T]) TryTransfer(v T) bool { return t.tq.TryTransfer(v) }

// TransferTimeout hands v to a consumer, waiting up to d for one.
func (t *TransferQueue[T]) TransferTimeout(v T, d time.Duration) bool {
	return t.tq.TransferTimeout(v, d)
}

// TransferContext hands v to a consumer, abandoning the attempt when ctx is
// done. It returns nil on success, ErrClosed if the queue is closed,
// ErrTimeout when the context's own deadline expired, and otherwise the
// context's cancellation cause (context.Canceled for a plain cancel).
func (t *TransferQueue[T]) TransferContext(ctx context.Context, v T) error {
	deadline, _ := ctx.Deadline()
	st := t.tq.TransferDeadline(v, deadline, ctx.Done())
	if st == core.OK {
		return nil
	}
	return ctxError(ctx, st)
}

// Take receives a value, waiting as long as necessary for one.
func (t *TransferQueue[T]) Take() T { return t.tq.Take() }

// TakeContext receives a value, abandoning the attempt when ctx is done.
// Errors follow the TransferContext contract: ErrClosed on a closed queue,
// ErrTimeout on deadline expiry, the cancellation cause otherwise. Like
// Take and Poll, TakeContext still returns elements deposited with Put
// before Close — an accepted deposit is a promise the close keeps — and
// reports ErrClosed only once the buffer is empty.
func (t *TransferQueue[T]) TakeContext(ctx context.Context) (T, error) {
	var zero T
	deadline, _ := ctx.Deadline()
	v, st := t.tq.TakeDeadline(deadline, ctx.Done())
	if st == core.OK {
		return v, nil
	}
	return zero, ctxError(ctx, st)
}

// Poll receives a value only if one is immediately available (a waiting
// synchronous producer or a buffered asynchronous element).
func (t *TransferQueue[T]) Poll() (T, bool) { return t.tq.Poll() }

// PollTimeout receives a value, waiting up to d for one.
func (t *TransferQueue[T]) PollTimeout(d time.Duration) (T, bool) { return t.tq.PollTimeout(d) }

// Offer is TryTransfer under the TimedQueue interface: with no buffering
// requested, an offer succeeds only if a consumer is waiting.
func (t *TransferQueue[T]) Offer(v T) bool { return t.tq.TryTransfer(v) }

// OfferTimeout is TransferTimeout under the TimedQueue interface.
func (t *TransferQueue[T]) OfferTimeout(v T, d time.Duration) bool {
	return t.tq.TransferTimeout(v, d)
}

// Drain removes and returns every immediately available element (buffered
// asynchronous deposits and waiting synchronous producers) in FIFO order.
// It is the bulk form of Poll, useful at shutdown to recover undelivered
// messages.
func (t *TransferQueue[T]) Drain() []T { return t.tq.Drain() }

// HasWaitingConsumer reports whether a consumer was observed waiting.
func (t *TransferQueue[T]) HasWaitingConsumer() bool { return t.tq.HasWaitingConsumer() }

// HasBufferedData reports whether asynchronously deposited elements were
// observed waiting to be taken.
func (t *TransferQueue[T]) HasBufferedData() bool { return t.tq.HasBufferedData() }

// Close shuts the queue down: waiting synchronous producers and consumers
// are woken and observe the closed state, and subsequent operations are
// rejected with ErrClosed (or a panic, for the demand operations without an
// error return). Elements already deposited asynchronously with Put are
// retained — Poll and Drain still return them after Close, so no accepted
// element is ever lost to a shutdown. Close is idempotent, lock-free, and
// safe to call concurrently with any operation.
func (t *TransferQueue[T]) Close() { t.tq.Close() }

// Closed reports whether Close has been called.
func (t *TransferQueue[T]) Closed() bool { return t.tq.Closed() }
