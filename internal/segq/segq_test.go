package segq

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synchq/internal/core"
	"synchq/internal/metrics"
)

func TestBasicHandoff(t *testing.T) {
	q := New[int](core.WaitConfig{})
	done := make(chan int)
	go func() { done <- q.Take() }()
	q.Put(42)
	if got := <-done; got != 42 {
		t.Fatalf("Take = %d, want 42", got)
	}
}

func TestConcurrentConservation(t *testing.T) {
	const producers, perProducer = 8, 500
	q := New[int64](core.WaitConfig{})
	var sum atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				q.Put(id*perProducer + i)
			}
		}(int64(p))
	}
	var cg sync.WaitGroup
	for c := 0; c < producers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for i := 0; i < perProducer; i++ {
				sum.Add(q.Take())
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	const n = producers * perProducer
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("sum of delivered values = %d, want %d", sum.Load(), want)
	}
	if !q.IsEmpty() {
		t.Fatal("queue not empty after balanced run")
	}
}

func TestOfferPollMisses(t *testing.T) {
	q := New[int](core.WaitConfig{})
	if q.Offer(1) {
		t.Fatal("Offer succeeded on an empty queue")
	}
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll succeeded on an empty queue")
	}
	if q.OfferTimeout(2, 2*time.Millisecond) {
		t.Fatal("OfferTimeout succeeded with no consumer")
	}
	if _, ok := q.PollTimeout(2 * time.Millisecond); ok {
		t.Fatal("PollTimeout succeeded with no producer")
	}
}

func TestPollFindsWaitingProducer(t *testing.T) {
	q := New[int](core.WaitConfig{})
	go q.Put(7)
	waitCond(t, q.HasWaitingProducer)
	v, ok := q.Poll()
	if !ok || v != 7 {
		t.Fatalf("Poll = (%d, %v), want (7, true)", v, ok)
	}
}

func TestOfferFindsWaitingConsumer(t *testing.T) {
	q := New[int](core.WaitConfig{})
	got := make(chan int)
	go func() { got <- q.Take() }()
	waitCond(t, q.HasWaitingConsumer)
	if !q.Offer(9) {
		t.Fatal("Offer missed a waiting consumer")
	}
	if v := <-got; v != 9 {
		t.Fatalf("consumer received %d, want 9", v)
	}
}

func TestCancel(t *testing.T) {
	q := New[int](core.WaitConfig{})
	cancel := make(chan struct{})
	done := make(chan core.Status)
	go func() {
		_, st := q.TakeDeadline(time.Time{}, cancel)
		done <- st
	}()
	waitCond(t, q.HasWaitingConsumer)
	close(cancel)
	if st := <-done; st != core.Canceled {
		t.Fatalf("canceled take status = %v, want Canceled", st)
	}
}

// TestPoisonedRunThenPairing drives a burst of zero-patience polls on an
// empty queue (each poisons one producer-side cell), then checks a real
// transfer still completes promptly — exercising the segment-skip path
// that fast-forwards the producer counter over fully-broken segments.
func TestPoisonedRunThenPairing(t *testing.T) {
	q := New[int](core.WaitConfig{})
	for i := 0; i < 10*SegSize; i++ {
		if _, ok := q.Poll(); ok {
			t.Fatal("Poll succeeded on an empty queue")
		}
	}
	done := make(chan int)
	go func() { done <- q.Take() }()
	q.Put(5)
	if got := <-done; got != 5 {
		t.Fatalf("post-storm transfer = %d, want 5", got)
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	q := New[int](core.WaitConfig{})
	const waiters = 6
	statuses := make(chan core.Status, 2*waiters)
	for i := 0; i < waiters; i++ {
		go func(v int) {
			statuses <- q.PutDeadline(v, time.Time{}, nil)
		}(i)
		go func() {
			_, st := q.TakeDeadline(time.Time{}, nil)
			statuses <- st
		}()
	}
	// Waiters pair among themselves; whatever remains must be evicted.
	time.Sleep(5 * time.Millisecond)
	q.Close()
	oks, closeds := 0, 0
	for i := 0; i < 2*waiters; i++ {
		switch st := <-statuses; st {
		case core.OK:
			oks++
		case core.Closed:
			closeds++
		default:
			t.Fatalf("unexpected status %v", st)
		}
	}
	if oks%2 != 0 {
		t.Fatalf("odd number of OK outcomes (%d): a transfer completed one-sided", oks)
	}
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if st := q.PutDeadline(1, time.Time{}, nil); st != core.Closed {
		t.Fatalf("post-close put status = %v, want Closed", st)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("demand Put on closed queue did not panic")
		}
	}()
	q.Put(1)
}

func TestReserveTicketLifecycle(t *testing.T) {
	q := New[int](core.WaitConfig{})

	// Pending reservation fulfilled by a producer.
	_, tk, ok, st := q.reserve(false, 0)
	if ok || st != core.OK || tk == nil {
		t.Fatalf("reserve on empty queue = (ok=%v, st=%v, tk=%v)", ok, st, tk)
	}
	if _, ok := tk.TryFollowup(); ok {
		t.Fatal("TryFollowup reported delivery before any producer")
	}
	if !q.Offer(11) {
		t.Fatal("Offer missed the reservation")
	}
	v, ok := tk.TryFollowup()
	if !ok || v != 11 {
		t.Fatalf("TryFollowup = (%d, %v), want (11, true)", v, ok)
	}

	// Aborted reservation: a later producer must not be captured by it.
	_, tk2, ok, _ := q.reserve(false, 0)
	if ok {
		t.Fatal("second reserve immediately fulfilled")
	}
	if !tk2.Abort() {
		t.Fatal("Abort of a pending reservation failed")
	}
	if q.Offer(12) {
		t.Fatal("Offer succeeded against an aborted reservation")
	}

	// Await path.
	_, tk3, ok, _ := q.reserve(false, 0)
	if ok {
		t.Fatal("third reserve immediately fulfilled")
	}
	go q.Put(13)
	v, st = tk3.Await(time.Now().Add(time.Second), nil)
	if st != core.OK || v != 13 {
		t.Fatalf("Await = (%d, %v), want (13, OK)", v, st)
	}

	// Immediate fulfillment: reservation against a waiting producer.
	go q.Put(14)
	waitCond(t, q.HasWaitingProducer)
	v, tk4, ok, st := q.reserve(false, 0)
	if !ok || st != core.OK || tk4 != nil || v != 14 {
		t.Fatalf("reserve vs waiting producer = (%d, tk=%v, ok=%v, st=%v)", v, tk4, ok, st)
	}

	// Put-side reservation delivered to a consumer.
	_, tk5, ok, _ := q.reserve(true, 15)
	if ok {
		t.Fatal("put reserve immediately fulfilled on empty queue")
	}
	v, ok = q.Poll()
	if !ok || v != 15 {
		t.Fatalf("Poll vs put reservation = (%d, %v), want (15, true)", v, ok)
	}
	if _, ok := tk5.TryFollowup(); !ok {
		t.Fatal("put ticket TryFollowup did not observe delivery")
	}
}

func TestReserveClosedQueue(t *testing.T) {
	q := New[int](core.WaitConfig{})
	q.Close()
	if _, _, _, st := q.reserve(false, 0); st != core.Closed {
		t.Fatalf("reserve on closed queue status = %v, want Closed", st)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ReserveTake on closed queue did not panic")
		}
	}()
	q.ReserveTake()
}

func TestTicketClosedWhileWaiting(t *testing.T) {
	q := New[int](core.WaitConfig{})
	_, tk, ok, _ := q.reserve(false, 0)
	if ok {
		t.Fatal("reserve immediately fulfilled")
	}
	q.Close()
	if _, st := tk.Await(time.Time{}, nil); st != core.Closed {
		t.Fatalf("Await on closed queue status = %v, want Closed", st)
	}
}

// TestSegmentedAllocBudget checks the core's headline memory claim: the
// segment amortizes its allocation across SegSize hand-offs, so a
// steady-state transfer allocates well under one object per operation.
func TestSegmentedAllocBudget(t *testing.T) {
	q := New[int64](core.WaitConfig{})
	var consumed sync.WaitGroup
	consumed.Add(1)
	go func() {
		defer consumed.Done()
		for {
			if _, st := q.TakeDeadline(time.Now().Add(time.Second), nil); st != core.OK {
				return
			}
		}
	}()
	const rounds = 2000
	allocs := testing.AllocsPerRun(rounds, func() { q.Put(1) })
	q.Close()
	consumed.Wait()
	// Two parked sides can each allocate timers/notifiers occasionally;
	// the budget just has to stay clearly below one-object-per-op to
	// prove amortization works.
	if allocs > 0.75 {
		t.Fatalf("Put allocates %.2f objects/op, want amortized < 0.75", allocs)
	}
}

func TestMetricsWiring(t *testing.T) {
	h := metrics.New()
	q := New[int](core.WaitConfig{Metrics: h})
	go q.Put(1)
	waitCond(t, q.HasWaitingProducer)
	if v, ok := q.Poll(); !ok || v != 1 {
		t.Fatalf("Poll = (%d, %v)", v, ok)
	}
	if q.OfferTimeout(2, time.Millisecond) {
		t.Fatal("OfferTimeout succeeded with no consumer")
	}
	if got := h.Load(metrics.Fulfillments); got != 1 {
		t.Fatalf("Fulfillments = %d, want 1", got)
	}
	if got := h.Load(metrics.Timeouts); got == 0 {
		t.Fatal("Timeouts = 0 after a timed-out offer")
	}
}

// waitCond polls cond until true, failing the test after a deadline.
func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(50 * time.Microsecond)
	}
}
