package segq_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"synchq/internal/core"
	"synchq/internal/segq"
)

// TestUntimedHandoffStorm is the regression test for the lost-wakeup wedge:
// an install-CAS loser used to reset the cell's shared parker, wiping the
// winner's park state so the fulfilling Unpark deposited a permit nobody
// was told about — and an untimed waiter, with no deadline to force a
// state re-check, slept forever. The race needs real parallelism between
// the two installers, so the test raises GOMAXPROCS itself rather than
// trusting the host (single-CPU CI runs never reproduced it), and treats
// any round outlasting the watchdog as the wedge.
func TestUntimedHandoffStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel storm; skipped in -short")
	}
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	const rounds = 500
	const pairs = 8
	const per = 300
	for round := 0; round < rounds; round++ {
		q := segq.New[int64](core.WaitConfig{})
		var wg sync.WaitGroup
		done := make(chan struct{})
		for p := 0; p < pairs; p++ {
			wg.Add(2)
			go func(p int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					q.Put(int64(p)<<32 | int64(k))
				}
			}(p)
			go func() {
				defer wg.Done()
				for k := 0; k < per; k++ {
					q.Take()
				}
			}()
		}
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: untimed hand-off wedged (lost wakeup)", round)
		}
	}
}
