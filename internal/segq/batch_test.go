package segq

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synchq/internal/core"
)

func TestPutBatchDeliversToWaiters(t *testing.T) {
	const n = 12
	q := New[int](core.WaitConfig{})
	got := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got <- q.Take()
		}()
	}
	for !q.HasWaitingConsumer() {
		time.Sleep(time.Millisecond)
	}
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	d, st := q.PutBatch(items, time.Time{}, nil)
	if d != n || st != core.OK {
		t.Fatalf("PutBatch = (%d, %v), want (%d, OK)", d, st, n)
	}
	wg.Wait()
	close(got)
	seen := make(map[int]bool)
	for v := range got {
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct values, want %d", len(seen), n)
	}
}

func TestPutBatchPartialFillOnTimeout(t *testing.T) {
	q := New[int](core.WaitConfig{})
	taken := make(chan int, 2)
	go func() {
		taken <- q.Take()
		taken <- q.Take()
	}()
	items := []int{1, 2, 3, 4, 5}
	d, st := q.PutBatch(items, time.Now().Add(100*time.Millisecond), nil)
	if st != core.Timeout {
		t.Fatalf("status = %v, want Timeout", st)
	}
	if d != 2 {
		t.Fatalf("delivered = %d, want 2", d)
	}
	// The partial-fill contract: items[d:] holds exactly the undelivered
	// values in order (the retry slice), whatever run positions delivered.
	for i, want := range []int{3, 4, 5} {
		if items[d+i] != want {
			t.Fatalf("items[%d] = %d, want undelivered %d compacted into the tail", d+i, items[d+i], want)
		}
	}
	if a, b := <-taken, <-taken; a != 1 || b != 2 {
		t.Fatalf("consumers got (%d, %d), want the batch's first two items (1, 2)", a, b)
	}
	// The unwind must reclaim the undelivered items: nothing may remain
	// pollable, and the queue must still pair normally afterwards.
	if v, ok := q.Poll(); ok {
		t.Fatalf("Poll after aborted batch = %d, want miss", v)
	}
	done := make(chan int)
	go func() { done <- q.Take() }()
	q.Put(42)
	if got := <-done; got != 42 {
		t.Fatalf("post-batch handoff = %d, want 42", got)
	}
}

func TestPutBatchCanceled(t *testing.T) {
	q := New[int](core.WaitConfig{})
	cancel := make(chan struct{})
	close(cancel)
	d, st := q.PutBatch([]int{1, 2, 3}, time.Now().Add(time.Hour), cancel)
	if d != 0 || st != core.Canceled {
		t.Fatalf("PutBatch = (%d, %v), want (0, Canceled)", d, st)
	}
}

func TestPutBatchEmptyAndClosed(t *testing.T) {
	q := New[int](core.WaitConfig{})
	if d, st := q.PutBatch(nil, time.Time{}, nil); d != 0 || st != core.OK {
		t.Fatalf("PutBatch(nil) = (%d, %v), want (0, OK)", d, st)
	}
	q.Close()
	if d, st := q.PutBatch([]int{1}, time.Time{}, nil); d != 0 || st != core.Closed {
		t.Fatalf("PutBatch on closed = (%d, %v), want (0, Closed)", d, st)
	}
}

func TestPutBatchCloseMidWait(t *testing.T) {
	q := New[int](core.WaitConfig{})
	res := make(chan core.Status, 1)
	go func() {
		_, st := q.PutBatch([]int{1, 2, 3}, time.Time{}, nil)
		res <- st
	}()
	for !q.HasWaitingProducer() {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	if st := <-res; st != core.Closed {
		t.Fatalf("PutBatch across Close = %v, want Closed", st)
	}
}

func TestTakeBatchFillsFromCommittedProducers(t *testing.T) {
	const n = 10
	q := New[int](core.WaitConfig{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			q.Put(v)
		}(i)
	}
	buf, st := q.TakeBatch(nil, n, time.Time{}, nil)
	// The first take waits; the fill claims whatever was committed when it
	// ran, so several rounds may be needed — but nothing may be lost.
	for len(buf) < n {
		if st != core.OK {
			t.Fatalf("TakeBatch status = %v, want OK", st)
		}
		buf, st = q.TakeBatch(buf, n-len(buf), time.Time{}, nil)
	}
	wg.Wait()
	seen := make(map[int]bool)
	for _, v := range buf {
		if seen[v] {
			t.Fatalf("value %d taken twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("took %d distinct values, want %d", len(seen), n)
	}
}

func TestTakeBatchMaxZeroAndTimeout(t *testing.T) {
	q := New[int](core.WaitConfig{})
	if buf, st := q.TakeBatch(nil, 0, time.Time{}, nil); len(buf) != 0 || st != core.OK {
		t.Fatalf("TakeBatch(max=0) = (%v, %v), want ([], OK)", buf, st)
	}
	if buf, st := q.TakeBatch(nil, 3, core.DeadlineFor(0), nil); len(buf) != 0 || st != core.Timeout {
		t.Fatalf("TakeBatch on empty = (%v, %v), want ([], Timeout)", buf, st)
	}
}

func TestTakeBatchClosed(t *testing.T) {
	q := New[int](core.WaitConfig{})
	q.Close()
	if buf, st := q.TakeBatch(nil, 3, time.Time{}, nil); len(buf) != 0 || st != core.Closed {
		t.Fatalf("TakeBatch on closed = (%v, %v), want ([], Closed)", buf, st)
	}
}

func TestBatchFIFOWithinBatch(t *testing.T) {
	// One consumer taking sequentially must see a batch's items in slice
	// order: the multi-cell claim assigns items to run indexes in ascending
	// order and consumer indexes are FIFO by construction.
	q := New[int](core.WaitConfig{})
	const n = 40 // spans multiple runs (SegSize chunks) and segments
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if d, st := q.PutBatch(items, time.Time{}, nil); d != n || st != core.OK {
			t.Errorf("PutBatch = (%d, %v), want (%d, OK)", d, st, n)
		}
	}()
	for i := 0; i < n; i++ {
		if got := q.Take(); got != i {
			t.Fatalf("take %d = %d, want %d (in-batch FIFO violated)", i, got, i)
		}
	}
	<-done
}

func TestBatchConcurrentConservation(t *testing.T) {
	const producers, perBatch, batches = 4, 7, 50
	q := New[int64](core.WaitConfig{})
	var sum atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for b := int64(0); b < batches; b++ {
				items := make([]int64, perBatch)
				for i := range items {
					items[i] = id*batches*perBatch + b*perBatch + int64(i)
				}
				if d, st := q.PutBatch(items, time.Time{}, nil); d != perBatch || st != core.OK {
					t.Errorf("PutBatch = (%d, %v), want (%d, OK)", d, st, perBatch)
					return
				}
			}
		}(int64(p))
	}
	const total = producers * perBatch * batches
	var cg sync.WaitGroup
	var taken atomic.Int64
	for c := 0; c < producers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for taken.Load() < total {
				buf, st := q.TakeBatch(nil, 5, time.Now().Add(50*time.Millisecond), nil)
				if st != core.OK && st != core.Timeout {
					t.Errorf("TakeBatch status = %v", st)
					return
				}
				for _, v := range buf {
					sum.Add(v)
				}
				taken.Add(int64(len(buf)))
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	if want := int64(total) * (total - 1) / 2; sum.Load() != want {
		t.Fatalf("sum of delivered values = %d, want %d (conservation violated)", sum.Load(), want)
	}
	if !q.IsEmpty() {
		t.Fatal("queue not empty after balanced batch run")
	}
}
