package segq

import (
	"time"

	"synchq/internal/core"
	"synchq/internal/fault"
	"synchq/internal/metrics"
)

// Reservation tickets: the request half of a split transfer, mirroring
// internal/core's QueueTicket/StackTicket so the segmented core satisfies
// the same composition surfaces (the shard fabric's rescue scans, the
// public SynchronousQueue reservation API).
//
// A reservation is just an installed cell whose owner walked away instead
// of waiting: the ticket remembers the cell, and TryFollowup/Await/Abort
// play the same state-machine arcs awaitCell plays inline.

// Ticket tracks one pending reservation on a segmented queue.
type Ticket[T any] struct {
	q         *Queue[T]
	s         *segment[T]
	c         *cell[T]
	i         uint64
	installed uint32
	isPut     bool
	t0        int64
	done      bool
}

// reserve claims an index and installs this side in its cell without
// waiting. Unlike transfer it never poisons: a reservation's patience is
// decided later, by Await or Abort.
func (q *Queue[T]) reserve(isPut bool, v T) (T, *Ticket[T], bool, Status) {
	t0 := q.m.Start()
	var zero T
	if q.closed.Load() {
		return zero, nil, false, core.Closed
	}
	ctr, _, hint := q.side(isPut)
	for {
		i := ctr.Add(1) - 1
		s := q.findSeg(hint, i>>segShift)
		if s.id != i>>segShift {
			q.m.Inc(metrics.CleanSweeps)
			q.skipTo(ctr, s.id<<segShift)
			continue
		}
		c := &s.cells[i&segMask]
	resolve:
		for {
			switch st := c.state.Load(); st {
			case cEmpty:
				// Value first; never touch the shared parker — it was
				// armed at segment birth, and a reset by an install-CAS
				// loser would wipe a parked counterpart's state (see
				// resolveArrival).
				if isPut {
					c.v = v
				}
				installed := cWaiter
				if isPut {
					installed = cItem
				}
				q.f.Preempt(fault.SegCloseRacePause)
				if q.f.FailCAS(fault.SegInstallCAS) || !c.state.CompareAndSwap(cEmpty, installed) {
					q.m.Inc(metrics.CASFailEnqueue)
					continue
				}
				if q.closed.Load() {
					// Same install-vs-sweep window as transfer: self-
					// evict so the reservation is never stranded. If a
					// fulfiller got here first the CAS fails and the
					// ticket completes normally; otherwise Await
					// reports Closed and Abort succeeds.
					if c.state.CompareAndSwap(installed, cClosed) {
						q.resolveCell(s)
						if isPut {
							c.v = zero
						}
					}
				}
				return zero, &Ticket[T]{q: q, s: s, c: c, i: i, installed: installed, isPut: isPut, t0: t0}, false, core.OK

			case cItem:
				if isPut {
					panic("segq: producer cell claimed twice")
				}
				if q.f.FailCAS(fault.SegResolveCAS) || !c.state.CompareAndSwap(cItem, cDone) {
					q.m.Inc(metrics.CASFailFulfill)
					continue
				}
				q.resolveCell(s)
				val := c.v
				c.v = zero
				q.m.Inc(metrics.Fulfillments)
				q.f.Preempt(fault.SegResolvePause)
				c.wp.Unpark()
				q.m.Since(metrics.HandoffNs, t0)
				return val, nil, true, core.OK

			case cWaiter:
				if !isPut {
					panic("segq: consumer cell claimed twice")
				}
				c.v = v
				if q.f.FailCAS(fault.SegResolveCAS) || !c.state.CompareAndSwap(cWaiter, cDone) {
					q.m.Inc(metrics.CASFailFulfill)
					if st := c.state.Load(); st == cBroken || st == cClosed {
						c.v = zero
					}
					continue
				}
				q.resolveCell(s)
				q.m.Inc(metrics.Fulfillments)
				q.f.Preempt(fault.SegResolvePause)
				c.wp.Unpark()
				q.m.Since(metrics.HandoffNs, t0)
				return zero, nil, true, core.OK

			case cBroken:
				break resolve // fresh index

			case cDone:
				panic("segq: cell resolved twice")

			default: // cClosed
				return zero, nil, false, core.Closed
			}
		}
	}
}

// TryFollowup checks, without blocking, whether the reservation has been
// fulfilled. A closed or aborted reservation never reports true; collect
// the status with Await, which returns immediately.
func (t *Ticket[T]) TryFollowup() (T, bool) {
	var zero T
	if t.done {
		panic("segq: follow-up on a spent ticket")
	}
	if t.c.state.Load() != cDone {
		return zero, false
	}
	t.done = true
	t.q.m.Since(metrics.HandoffNs, t.t0)
	if t.isPut {
		return zero, true
	}
	v := t.c.v
	t.c.v = zero
	return v, true
}

// Await blocks until fulfillment, the deadline (zero: never), or cancel
// (nil: never). The ticket is spent afterward whatever the outcome.
func (t *Ticket[T]) Await(deadline time.Time, cancel <-chan struct{}) (T, Status) {
	if t.done {
		panic("segq: await on a spent ticket")
	}
	t.done = true
	_, other, _ := t.q.side(t.isPut)
	return t.q.awaitCell(t.s, t.c, t.i, t.installed, t.isPut, deadline, cancel, t.t0, other)
}

// Abort cancels the reservation; false means it was fulfilled first and
// TryFollowup must collect the outcome. A reservation evicted by Close
// aborts successfully (there is nothing to collect).
func (t *Ticket[T]) Abort() bool {
	if t.done {
		panic("segq: abort on a spent ticket")
	}
	var zero T
	for {
		switch st := t.c.state.Load(); st {
		case t.installed:
			if t.c.state.CompareAndSwap(t.installed, cBroken) {
				t.q.resolveCell(t.s)
				if t.isPut {
					t.c.v = zero
				}
				t.q.m.Inc(metrics.Cancellations)
				t.done = true
				return true
			}
		case cClosed:
			t.done = true
			return true
		default: // cDone
			return false
		}
	}
}

// ReserveTake registers a request for a value; if a producer was already
// waiting its value is returned at once with ok true and a nil ticket. It
// panics if the queue is closed, like the demand operations.
func (q *Queue[T]) ReserveTake() (T, core.Ticket[T], bool) {
	v, tk, ok, st := q.ReserveTakeStatus()
	if st == core.Closed {
		panic(errClosedDemand)
	}
	return v, tk, ok
}

// ReservePut offers v to a future consumer; if a consumer was already
// waiting, v is delivered at once with ok true and a nil ticket. It
// panics if the queue is closed.
func (q *Queue[T]) ReservePut(v T) (core.Ticket[T], bool) {
	tk, ok, st := q.ReservePutStatus(v)
	if st == core.Closed {
		panic(errClosedDemand)
	}
	return tk, ok
}

// ReserveTakeStatus is ReserveTake with a status channel for composing
// callers (the shard fabric): a closed queue reports Closed instead of
// panicking.
func (q *Queue[T]) ReserveTakeStatus() (T, core.Ticket[T], bool, Status) {
	v, tk, ok, st := q.reserve(false, *new(T))
	if tk == nil {
		return v, nil, ok, st
	}
	return v, tk, ok, st
}

// ReservePutStatus is ReservePut with a status channel for composing
// callers.
func (q *Queue[T]) ReservePutStatus(v T) (core.Ticket[T], bool, Status) {
	_, tk, ok, st := q.reserve(true, v)
	if tk == nil {
		return nil, ok, st
	}
	return tk, ok, st
}
