// Package segq implements the segment-backed, memory-bounded synchronous
// hand-off core — the module's fourth pairing discipline next to the dual
// queue, the dual stack, and the transfer queue.
//
// Where the paper's dual structures allocate one linked node per waiter
// and chase pointers on every hand-off, this core follows the F&A designs
// that came after the paper (Nikolaev's SCQ/LCRQ family and the CQS
// cancellable-synchronizer framework, see PAPERS.md): the structure is an
// infinite logical array of hand-off cells, emulated by fixed-size,
// cache-line-aligned segments in a linked list. Two fetch-and-add counters
// claim indexes into the array — the i-th producer and the i-th consumer
// rendezvous at cell i — so the hot path is one F&A plus one CAS per
// side, with no head/tail CAS retry storm and no per-operation node
// allocation (a segment of segSize cells amortizes one allocation across
// segSize transfers).
//
// # Cell state machine
//
// Every cell resolves through a CQS-style single-word state machine:
//
//	          ┌── producer installs ──▶ ITEM ──┬─ consumer claims ──▶ DONE
//	          │                                └─ producer aborts ──▶ BROKEN
//	EMPTY ────┼── consumer installs ──▶ WAITER ┬─ producer fulfills ▶ DONE
//	          │                                └─ consumer aborts ──▶ BROKEN
//	          ├── zero-patience poison ───────────────────────────▶ BROKEN
//	          └ (Close evicts installed cells: ITEM/WAITER ───────▶ CLOSED)
//
// DONE, BROKEN, and CLOSED are terminal. The first arrival installs
// itself (depositing its value first, for the producer) and waits
// spin-then-park on the cell's embedded parker; the second arrival
// resolves the cell with a single CAS and unparks. An aborting waiter
// (timeout, cancel) CASes its own installed state to BROKEN — exactly one
// of {resolver, aborter} wins, which is the linearization the paper's
// timed operations need. A party that arrives at an already-BROKEN cell
// (its counterpart poisoned or aborted first) takes a fresh index and
// retries.
//
// # Memory bound and recycling
//
// Each segment counts resolved cells; when all segSize cells are terminal
// the segment is spliced out of the list (a Kotlin-coroutines-style
// two-pointer remove with alive-neighbor revalidation) and left to the
// garbage collector, so a cancellation storm of N waiters retains
// O(N/segSize) segments only transiently and O(1) segments after it
// drains — the tested invariant behind LiveSegments. Fully-broken
// segments that were already unlinked are skipped wholesale: a claimant
// whose index falls into an unlinked segment CAS-maxes its side's counter
// to the first index of the next live segment instead of probing dead
// cells one by one.
//
// Following the module's recycling doctrine (see DESIGN.md "Node and
// parker lifecycle"), segments whose address ever reached another thread
// are never pooled — a stale walker may still hold them, and reusing
// their identity would let an id-based skip jump over live cells. The
// bounded free list recycles only never-linked spares: segments that lost
// the tail-append race before becoming reachable.
package segq

import (
	"sync/atomic"
	"time"

	"synchq/internal/core"
	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/park"
	"synchq/internal/spin"
)

const (
	segShift = 4
	// SegSize is the number of hand-off cells per segment. Sixteen keeps
	// a segment around 1 KiB for word-sized payloads — big enough to
	// amortize allocation and small enough that a cancellation storm's
	// partially-broken tail segment wastes little.
	SegSize = 1 << segShift
	segMask = SegSize - 1
	// spareCap bounds the free list of never-linked spare segments.
	spareCap = 4
)

// Cell states. EMPTY must be zero: fresh segments are zeroed allocations.
const (
	cEmpty uint32 = iota
	cItem
	cWaiter
	cDone
	cBroken
	cClosed
)

// errClosedDemand matches the core package's closed-demand panic text so
// every closed-queue panic reads the same regardless of core.
const errClosedDemand = "synchq: queue closed"

// cell is one hand-off rendezvous. The embedded parker makes the slow
// path allocation-free (its notifier channel is pooled by internal/park),
// and the trailing pad keeps cells on distinct cache lines for word-sized
// payloads, so a spinning waiter does not share its line with the
// neighboring cells' resolution CASes (the layout test pins this down).
//
// The parker is shared by both sides of the rendezvous, so it is armed
// once when the segment is created and never reset afterward: an
// installer that called Init before its install CAS could lose that CAS
// to the counterpart and wipe the winner's live park state — the winner
// would then sleep through its own fulfillment's Unpark. Cells are
// single-install (exactly one EMPTY→ITEM/WAITER winner ever), so a
// birth-time arming is all the preparation a parker needs.
type cell[T any] struct {
	state atomic.Uint32
	wp    park.Parker
	v     T
	_     [16]byte
}

// segment is one fixed-size block of the infinite cell array. The header
// is padded to a cache line so the resolved counter's contended Add does
// not false-share with cells[0].
type segment[T any] struct {
	id       uint64
	next     atomic.Pointer[segment[T]]
	prev     atomic.Pointer[segment[T]]
	resolved atomic.Int32
	_        [64 - 3*8 - 4]byte
	cells    [SegSize]cell[T]
}

// removed reports whether every cell in s reached a terminal state — the
// monotone predicate behind unlinking and head advancement.
func (s *segment[T]) removed() bool { return s.resolved.Load() >= SegSize }

// Queue is the segment-backed synchronous hand-off structure. Pairing is
// FIFO by arrival on each side: the i-th producer transfers to the i-th
// consumer. The two claim counters and the two segment hints are the only
// globally contended words, each padded onto its own cache line.
type Queue[T any] struct {
	putc  atomic.Uint64
	_     [56]byte
	takec atomic.Uint64
	_     [56]byte
	// putSeg/takeSeg are per-side segment hints: the segment of the
	// side's most recent claim. They only move forward; a claimant whose
	// index lies behind its hint restarts the walk from head.
	putSeg  atomic.Pointer[segment[T]]
	_       [56]byte
	takeSeg atomic.Pointer[segment[T]]
	_       [56]byte
	// head is the oldest segment that may still hold a live waiter; the
	// Close eviction sweep starts here, and unlinking advances it.
	head   atomic.Pointer[segment[T]]
	closed atomic.Bool

	// spare is the bounded free list of never-linked spare segments
	// (append-race losers) — see the package comment's recycling rules.
	spare chan *segment[T]

	timedSpins   int
	untimedSpins int
	cal          *spin.Calibrator
	m            *metrics.Handle
	f            *fault.Injector
}

// New returns an empty segmented synchronous queue with the given wait
// policy (use the zero WaitConfig for the paper's defaults).
func New[T any](cfg core.WaitConfig) *Queue[T] {
	q := &Queue[T]{m: cfg.Metrics, f: cfg.Fault, spare: make(chan *segment[T], spareCap)}
	q.timedSpins, q.untimedSpins, q.cal = cfg.SpinPolicy()
	first := q.newSegment(0)
	q.head.Store(first)
	q.putSeg.Store(first)
	q.takeSeg.Store(first)
	return q
}

// Metrics returns the handle the queue records into (nil when
// uninstrumented).
func (q *Queue[T]) Metrics() *metrics.Handle { return q.m }

// ---- segment list maintenance ---------------------------------------------

// newSegment allocates a segment for id and arms every cell's parker
// while the segment is still private (see the cell comment: the shared
// parkers must never be touched again after the segment is published).
func (q *Queue[T]) newSegment(id uint64) *segment[T] {
	s := &segment[T]{id: id}
	for j := range s.cells {
		s.cells[j].wp.Init(q.m, q.f)
	}
	return s
}

// getSegment serves a fresh segment for id, preferring the spare list.
// A recycled spare was never linked, so its cells — parkers included —
// are still in their armed birth state.
func (q *Queue[T]) getSegment(id uint64) *segment[T] {
	select {
	case s := <-q.spare:
		q.m.Inc(metrics.NodeReuses)
		s.id = id
		return s
	default:
	}
	q.m.Inc(metrics.NodeAllocs)
	return q.newSegment(id)
}

// putSpare recycles a segment that lost its append race. Only such
// never-linked segments may enter the free list: their address provably
// reached no other thread, so reuse cannot confuse an id-based walker.
func (q *Queue[T]) putSpare(s *segment[T]) {
	s.prev.Store(nil)
	select {
	case q.spare <- s:
	default:
	}
}

// appendSegment links a successor of t (which must be the current tail)
// and returns the segment now following t, whoever linked it.
func (q *Queue[T]) appendSegment(t *segment[T]) *segment[T] {
	var n *segment[T]
	for {
		if got := t.next.Load(); got != nil {
			if n != nil {
				q.putSpare(n)
			}
			return got
		}
		if n == nil {
			n = q.getSegment(t.id + 1)
			n.prev.Store(t)
		}
		if q.f.FailCAS(fault.SegAppendCAS) || !t.next.CompareAndSwap(nil, n) {
			q.m.Inc(metrics.CASFailEnqueue)
			continue
		}
		// A fully-resolved tail defers its own removal (unlinking needs
		// a successor); the appender that gives it one finishes the job.
		if t.removed() {
			q.unlink(t)
		}
		return n
	}
}

// findSeg returns the segment covering segID, creating tail segments as
// needed, or — when every segment up to segID was already unlinked — the
// first reachable segment past it (the caller then skips its counter
// forward). hint is the calling side's segment hint.
func (q *Queue[T]) findSeg(hint *atomic.Pointer[segment[T]], segID uint64) *segment[T] {
	s := hint.Load()
	if s.id > segID {
		// The hint moved past our segment; it may still be alive
		// (holding our counterpart), so restart from head.
		s = q.head.Load()
		if s.id > segID {
			return s
		}
	}
	for s.id < segID {
		s = q.appendSegment(s)
	}
	for {
		h := hint.Load()
		if h.id >= s.id || hint.CompareAndSwap(h, s) {
			break
		}
	}
	return s
}

// skipTo fast-forwards a side's claim counter past an unlinked run of
// segments (CAS-max, so racing skips and concurrent F&As compose).
func (q *Queue[T]) skipTo(ctr *atomic.Uint64, idx uint64) {
	for {
		c := ctr.Load()
		if c >= idx || ctr.CompareAndSwap(c, idx) {
			return
		}
	}
}

// resolveCell accounts one cell of s reaching a terminal state; the caller
// must be the thread whose CAS made it terminal, so each cell is counted
// exactly once. The counter hitting SegSize triggers the unlink.
func (q *Queue[T]) resolveCell(s *segment[T]) {
	if s.resolved.Add(1) == SegSize {
		q.m.Inc(metrics.SegUnlinks)
		q.unlink(s)
	}
}

// aliveNext returns the first non-removed segment right of s, or the
// physical tail (even if removed) so splices always have a right anchor.
func (s *segment[T]) aliveNext() *segment[T] {
	n := s.next.Load()
	for n != nil && n.removed() {
		nn := n.next.Load()
		if nn == nil {
			break
		}
		n = nn
	}
	return n
}

// alivePrev returns the first non-removed segment left of s, or nil when
// everything to the left is removed (s's successor becomes the new head).
func (s *segment[T]) alivePrev() *segment[T] {
	p := s.prev.Load()
	for p != nil && p.removed() {
		p = p.prev.Load()
	}
	return p
}

// unlink splices the fully-resolved segment s out of the list. The shape
// is the Kotlin-coroutines segment-list remove: link the closest alive
// neighbors around s with plain stores, then revalidate both neighbors
// and retry if either was itself removed mid-splice — all concurrent
// removers' retry loops converge on a list whose alive segments are
// correctly linked. Unlinked segments keep their own next pointer, so a
// stale walker holding one always escapes forward to the live list.
func (q *Queue[T]) unlink(s *segment[T]) {
	if s.next.Load() == nil {
		return // tail-most: the next appender finishes the removal
	}
	for {
		next := s.aliveNext()
		if next == nil {
			return
		}
		prev := s.alivePrev()
		next.prev.Store(prev)
		if prev != nil {
			prev.next.Store(next)
		} else {
			q.advanceHead(next)
		}
		if next.removed() && next.next.Load() != nil {
			continue
		}
		if prev != nil && prev.removed() {
			continue
		}
		return
	}
}

// advanceHead moves head forward to the given leftmost-alive candidate
// (id-guarded, so stale removers never move it backward).
func (q *Queue[T]) advanceHead(to *segment[T]) {
	for {
		h := q.head.Load()
		if h.id >= to.id || q.head.CompareAndSwap(h, to) {
			return
		}
	}
}

// ---- the transfer engine --------------------------------------------------

// transfer is the shared engine behind every public operation: claim an
// index, find its cell, and resolve it against the state machine in the
// package comment. The wait-vs-poison decision at an EMPTY cell is
// attempt-first: expired patience poisons only when no counterpart has
// committed an index ≥ ours (otherC ≤ i); a committed counterpart is on
// its way to this very cell, so even a zero-patience operation installs
// and briefly waits for it.
func (q *Queue[T]) transfer(isPut bool, v T, deadline time.Time, cancel <-chan struct{}) (T, Status) {
	t0 := q.m.Start()
	var zero T
	if q.closed.Load() {
		return zero, core.Closed
	}
	ctr, other, hint := q.side(isPut)
	for {
		i := ctr.Add(1) - 1
		s := q.findSeg(hint, i>>segShift)
		if s.id != i>>segShift {
			// Our segment was unlinked before we arrived — every cell
			// in it was already terminal — so skip the whole dead run.
			q.m.Inc(metrics.CleanSweeps)
			q.skipTo(ctr, s.id<<segShift)
			continue
		}
		c := &s.cells[i&segMask]
		if v2, st, ok := q.resolveArrival(s, c, i, isPut, v, deadline, cancel, t0, other); ok {
			return v2, st
		}
		// The cell was BROKEN before we arrived (the counterpart
		// poisoned it or aborted): take a fresh index.
	}
}

func (q *Queue[T]) side(isPut bool) (ctr, other *atomic.Uint64, hint *atomic.Pointer[segment[T]]) {
	if isPut {
		return &q.putc, &q.takec, &q.putSeg
	}
	return &q.takec, &q.putc, &q.takeSeg
}

// resolveArrival plays this operation's claimed cell through the state
// machine. ok is false only for the BROKEN-on-arrival case, which retries
// with a fresh index.
func (q *Queue[T]) resolveArrival(s *segment[T], c *cell[T], i uint64, isPut bool, v T, deadline time.Time, cancel <-chan struct{}, t0 int64, other *atomic.Uint64) (T, Status, bool) {
	var zero T
	for {
		switch st := c.state.Load(); st {
		case cEmpty:
			expired := !deadline.IsZero() && !time.Now().Before(deadline)
			if expired && other.Load() <= i {
				// No committed counterpart: poison the cell so a later
				// counterpart claim skips it, and report the miss.
				if q.f.FailCAS(fault.SegInstallCAS) || !c.state.CompareAndSwap(cEmpty, cBroken) {
					q.m.Inc(metrics.CASFailEnqueue)
					continue
				}
				q.resolveCell(s)
				q.m.Inc(metrics.Timeouts)
				if t0 != 0 {
					q.m.Record(metrics.WastedNs, time.Duration(metrics.Nanos()-t0))
				}
				return zero, core.Timeout, true
			}
			// Install: value first — the counterpart reads it after
			// acquiring our state CAS. The shared parker is already
			// armed (at segment birth) and must NOT be reset here: if
			// the install CAS below loses, the counterpart may already
			// be parked on it, and a reset would wipe its park state
			// and lose the fulfilling Unpark.
			if isPut {
				c.v = v
			}
			installed := cWaiter
			if isPut {
				installed = cItem
			}
			q.f.Preempt(fault.SegCloseRacePause)
			if q.f.FailCAS(fault.SegInstallCAS) || !c.state.CompareAndSwap(cEmpty, installed) {
				q.m.Inc(metrics.CASFailEnqueue)
				continue
			}
			if q.closed.Load() {
				// Close may have swept past this cell before our
				// install was visible; only we can evict it now.
				if c.state.CompareAndSwap(installed, cClosed) {
					q.resolveCell(s)
					if isPut {
						c.v = zero
					}
					q.m.Inc(metrics.ClosedWakeups)
					if t0 != 0 {
						q.m.Record(metrics.WastedNs, time.Duration(metrics.Nanos()-t0))
					}
					return zero, core.Closed, true
				}
			}
			v2, st2 := q.awaitCell(s, c, i, installed, isPut, deadline, cancel, t0, other)
			return v2, st2, true

		case cItem:
			// A producer deposited and waits: claim the cell, then read
			// the value (safe after winning the CAS — the aborter lost).
			if isPut {
				panic("segq: producer cell claimed twice")
			}
			if q.f.FailCAS(fault.SegResolveCAS) || !c.state.CompareAndSwap(cItem, cDone) {
				q.m.Inc(metrics.CASFailFulfill)
				continue
			}
			q.resolveCell(s)
			val := c.v
			c.v = zero
			q.m.Inc(metrics.Fulfillments)
			q.f.Preempt(fault.SegResolvePause)
			c.wp.Unpark()
			if t0 != 0 {
				q.m.Record(metrics.HandoffNs, time.Duration(metrics.Nanos()-t0))
			}
			return val, core.OK, true

		case cWaiter:
			// A consumer waits: deposit, publish with the CAS, unpark.
			if !isPut {
				panic("segq: consumer cell claimed twice")
			}
			c.v = v
			if q.f.FailCAS(fault.SegResolveCAS) || !c.state.CompareAndSwap(cWaiter, cDone) {
				q.m.Inc(metrics.CASFailFulfill)
				// If the waiter aborted (or Close evicted it) between
				// our deposit and the CAS, reclaim the orphaned copy —
				// nobody will read a dead cell's value.
				if st := c.state.Load(); st == cBroken || st == cClosed {
					c.v = zero
				}
				continue
			}
			q.resolveCell(s)
			q.m.Inc(metrics.Fulfillments)
			q.f.Preempt(fault.SegResolvePause)
			c.wp.Unpark()
			if t0 != 0 {
				q.m.Record(metrics.HandoffNs, time.Duration(metrics.Nanos()-t0))
			}
			return v, core.OK, true

		case cBroken:
			return zero, core.Timeout, false

		case cDone:
			panic("segq: cell resolved twice")

		default: // cClosed
			if t0 != 0 {
				q.m.Record(metrics.WastedNs, time.Duration(metrics.Nanos()-t0))
			}
			return zero, core.Closed, true
		}
	}
}

// awaitCell waits (spin-then-park) on a cell this operation installed
// itself in, until the counterpart resolves it or the wait aborts. The
// spin budget is granted only when the counterpart already committed an
// index past ours (it is on its way to this very cell); deeper waiters
// park immediately, mirroring the paper's "spin only at the head" rule.
// The deadline arm yields to an unspent spin budget so a zero-patience
// operation that installed against a committed counterpart gives it a
// bounded burst to arrive before poisoning the cell.
func (q *Queue[T]) awaitCell(s *segment[T], c *cell[T], i uint64, installed uint32, isPut bool, deadline time.Time, cancel <-chan struct{}, t0 int64, other *atomic.Uint64) (T, Status) {
	var zero T
	spins := 0
	if other.Load() > i {
		if q.cal != nil {
			if deadline.IsZero() {
				spins = q.cal.Untimed()
			} else {
				spins = q.cal.Timed()
			}
		} else if deadline.IsZero() {
			spins = q.untimedSpins
		} else {
			spins = q.timedSpins
		}
	}
	armed := false // the spin phase ended and the parker took over
	parked := false
	status := core.Timeout
	spun := int64(0) // spins batched locally; one Add on exit
	for it := 0; ; it++ {
		if st := c.state.Load(); st != installed {
			q.m.Add(metrics.Spins, spun)
			if t0 != 0 {
				d := time.Duration(metrics.Nanos() - t0)
				if !armed {
					q.m.Record(metrics.SpinNs, d)
				}
				if st == cDone {
					q.m.Record(metrics.HandoffNs, d)
				} else {
					q.m.Record(metrics.WastedNs, d)
				}
			}
			switch st {
			case cDone:
				if q.cal != nil {
					q.cal.Observe(int(spun), parked)
					q.m.Set(metrics.SpinBudget, int64(q.cal.Untimed()))
				}
				if isPut {
					return zero, core.OK
				}
				val := c.v
				c.v = zero
				return val, core.OK
			case cBroken:
				// Only the installer aborts its own cell, so this is
				// our abort winning; reclaim the undelivered value.
				if isPut {
					c.v = zero
				}
				if status == core.Canceled {
					q.m.Inc(metrics.Cancellations)
				} else {
					q.m.Inc(metrics.Timeouts)
				}
				return zero, status
			default: // cClosed: evicted by the Close sweep
				if isPut {
					c.v = zero
				}
				q.m.Inc(metrics.ClosedWakeups)
				return zero, core.Closed
			}
		}
		if spins <= 0 && !deadline.IsZero() && !time.Now().Before(deadline) {
			status = core.Timeout
			if c.state.CompareAndSwap(installed, cBroken) {
				q.resolveCell(s)
			}
			continue // reload state: the abort may have lost to a fulfiller
		}
		if cancel != nil {
			select {
			case <-cancel:
				status = core.Canceled
				if c.state.CompareAndSwap(installed, cBroken) {
					q.resolveCell(s)
				}
				continue
			default:
			}
		}
		if spins > 0 {
			spins--
			spun++
			spin.Pause(it)
			continue
		}
		if !armed {
			spin.EndPhase(q.m, t0) // spin budget exhausted: busy phase ends
			armed = true
			continue // re-check state before the first park
		}
		parked = true
		switch c.wp.Wait(deadline, cancel) {
		case park.DeadlineExceeded:
			status = core.Timeout
			if c.state.CompareAndSwap(installed, cBroken) {
				q.resolveCell(s)
			}
		case park.Canceled:
			status = core.Canceled
			if c.state.CompareAndSwap(installed, cBroken) {
				q.resolveCell(s)
			}
		}
	}
}

// ---- public operation surface ---------------------------------------------

// Status re-exports core.Status for readers of this package's signatures.
type Status = core.Status

// Put transfers v to a consumer, waiting as long as necessary; it panics
// if the queue is closed (the analogue of sending on a closed channel).
func (q *Queue[T]) Put(v T) {
	if _, st := q.transfer(true, v, time.Time{}, nil); st == core.Closed {
		panic(errClosedDemand)
	}
}

// Take receives a value from a producer, waiting as long as necessary; it
// panics if the queue is closed.
func (q *Queue[T]) Take() T {
	v, st := q.transfer(false, *new(T), time.Time{}, nil)
	if st == core.Closed {
		panic(errClosedDemand)
	}
	return v
}

// PutDeadline transfers v, waiting until the deadline (zero: forever) or
// until cancel fires (nil: never).
func (q *Queue[T]) PutDeadline(v T, deadline time.Time, cancel <-chan struct{}) Status {
	_, st := q.transfer(true, v, deadline, cancel)
	return st
}

// TakeDeadline receives a value, waiting until the deadline (zero:
// forever) or until cancel fires (nil: never).
func (q *Queue[T]) TakeDeadline(deadline time.Time, cancel <-chan struct{}) (T, Status) {
	return q.transfer(false, *new(T), deadline, cancel)
}

// Offer transfers v only if a consumer already committed to this hand-off;
// it never blocks beyond a bounded spin.
func (q *Queue[T]) Offer(v T) bool {
	_, st := q.transfer(true, v, core.DeadlineFor(0), nil)
	return st == core.OK
}

// OfferTimeout transfers v, waiting up to d for a consumer.
func (q *Queue[T]) OfferTimeout(v T, d time.Duration) bool {
	_, st := q.transfer(true, v, core.DeadlineFor(d), nil)
	return st == core.OK
}

// Poll receives a value only if a producer already committed to this
// hand-off; it never blocks beyond a bounded spin.
func (q *Queue[T]) Poll() (T, bool) {
	v, st := q.transfer(false, *new(T), core.DeadlineFor(0), nil)
	return v, st == core.OK
}

// PollTimeout receives a value, waiting up to d for a producer.
func (q *Queue[T]) PollTimeout(d time.Duration) (T, bool) {
	v, st := q.transfer(false, *new(T), core.DeadlineFor(d), nil)
	return v, st == core.OK
}

// scan walks the reachable segments looking for a cell in the given
// state. It is a racy snapshot for monitoring, like the other cores'
// observe helpers.
func (q *Queue[T]) scan(want uint32) bool {
	for s := q.head.Load(); s != nil; s = s.next.Load() {
		for j := range s.cells {
			if s.cells[j].state.Load() == want {
				return true
			}
		}
	}
	return false
}

// HasWaitingProducer reports whether a producer is installed and waiting.
func (q *Queue[T]) HasWaitingProducer() bool { return q.scan(cItem) }

// HasWaitingConsumer reports whether a consumer is installed and waiting.
func (q *Queue[T]) HasWaitingConsumer() bool { return q.scan(cWaiter) }

// IsEmpty reports whether no operation is installed and waiting.
func (q *Queue[T]) IsEmpty() bool { return !q.scan(cItem) && !q.scan(cWaiter) }

// Len returns the number of installed, still-waiting operations (both
// sides), as a racy snapshot.
func (q *Queue[T]) Len() int {
	n := 0
	for s := q.head.Load(); s != nil; s = s.next.Load() {
		for j := range s.cells {
			if st := s.cells[j].state.Load(); st == cItem || st == cWaiter {
				n++
			}
		}
	}
	return n
}

// LiveSegments counts the segments still reachable from head — the
// retained-memory figure the leak tests bound. Unlinked segments drop out
// of this walk the moment head passes them.
func (q *Queue[T]) LiveSegments() int {
	n := 0
	for s := q.head.Load(); s != nil; s = s.next.Load() {
		n++
	}
	return n
}

// Close shuts the queue down: new arrivals are refused with the Closed
// status (demand operations panic), and every installed waiter is evicted
// with a CLOSED cell and woken. The closed flag is published before the
// eviction sweep, so an installer racing the sweep detects the close on
// its post-install re-check and evicts itself — the sweep can never
// strand a waiter. Close is idempotent and safe to call concurrently.
func (q *Queue[T]) Close() {
	q.closed.Store(true)
	for s := q.head.Load(); s != nil; s = s.next.Load() {
		for j := range s.cells {
			c := &s.cells[j]
			for {
				st := c.state.Load()
				if st != cItem && st != cWaiter {
					break
				}
				if c.state.CompareAndSwap(st, cClosed) {
					q.resolveCell(s)
					c.wp.Unpark()
					break
				}
			}
		}
	}
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed.Load() }
