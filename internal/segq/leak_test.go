package segq

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"synchq/internal/core"
)

// The segmented core's memory-bound invariants, mirroring the PR 3 pool
// leak tests: a cancellation storm must not grow the structure. Two
// instruments pin it down — LiveSegments bounds what the structure still
// reaches, and a finalizer on an early segment proves unlinked segments
// actually become garbage (splicing that leaves a stale reference behind
// would pass the count but fail the finalizer).

// liveSegmentCeiling is the steady-state bound the storm tests assert:
// after a storm fully resolves, the structure may retain the tail segment
// plus a short, racily-lagging prefix (head advances with unlinking, not
// synchronously) — a constant, independent of storm size.
const liveSegmentCeiling = 4

// expectLiveSegmentsBelow polls (unlinking is asynchronous with respect to
// the storm's waiters returning) until the reachable-segment count drops
// to the ceiling.
func expectLiveSegmentsBelow[T any](t *testing.T, q *Queue[T], want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := q.LiveSegments(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("live segments = %d after storm, want <= %d", q.LiveSegments(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func expectGoroutinesBelow(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not drain: %d > %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

// expectCollected loops the collector until the finalizer-backed channel
// closes, failing after a bounded number of cycles.
func expectCollected(t *testing.T, what string, collected chan struct{}) {
	t.Helper()
	for i := 0; i < 50; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("%s was never collected: the structure still references it", what)
}

// TestCancellationStormSegmentBound is the tentpole's provable-bound test:
// N timed waiters all expire, and the structure must end with O(1) live
// segments (the storm transiently occupies N/SegSize segments, every one
// of which must be unlinked once fully broken) and zero stranded waiter
// goroutines or parkers.
func TestCancellationStormSegmentBound(t *testing.T) {
	base := runtime.NumGoroutine()
	q := New[int](core.WaitConfig{})
	const waiters = 16 * SegSize
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				q.OfferTimeout(i, time.Duration(1+i%5)*time.Millisecond)
			} else {
				q.PollTimeout(time.Duration(1+i%5) * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	expectLiveSegmentsBelow(t, q, liveSegmentCeiling)
	if n := q.Len(); n != 0 {
		t.Fatalf("Len = %d after storm, want 0 (stranded waiters)", n)
	}
	expectGoroutinesBelow(t, base+2)

	// The structure must still pair fine after the storm.
	done := make(chan int)
	go func() { done <- q.Take() }()
	q.Put(99)
	if got := <-done; got != 99 {
		t.Fatalf("post-storm transfer = %d, want 99", got)
	}
}

// TestUnlinkedSegmentsAreCollected proves unlinking actually releases the
// memory: a finalizer on the storm's first segment must fire once the
// storm resolves and head moves past it.
func TestUnlinkedSegmentsAreCollected(t *testing.T) {
	q := New[int](core.WaitConfig{})
	first := q.head.Load()
	collected := make(chan struct{})
	runtime.SetFinalizer(first, func(*segment[int]) { close(collected) })
	first = nil

	const waiters = 8 * SegSize
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q.PollTimeout(time.Duration(1+i%3) * time.Millisecond)
		}(i)
	}
	wg.Wait()
	expectLiveSegmentsBelow(t, q, liveSegmentCeiling)
	expectCollected(t, "the storm's first segment", collected)
}

// TestCancelStormMixedWithTraffic interleaves expiring waiters with real
// transfers, so segments resolve through a mix of DONE and BROKEN cells —
// the partially-broken-segment unlink path.
func TestCancelStormMixedWithTraffic(t *testing.T) {
	q := New[int](core.WaitConfig{})
	const rounds = 4 * SegSize
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			q.OfferTimeout(i, time.Duration(1+i%3)*time.Millisecond)
		}(i)
		go func(i int) {
			defer wg.Done()
			q.PollTimeout(time.Duration(1+(i+1)%3) * time.Millisecond)
		}(i)
	}
	wg.Wait()
	expectLiveSegmentsBelow(t, q, liveSegmentCeiling)
	if n := q.Len(); n != 0 {
		t.Fatalf("Len = %d after mixed storm, want 0", n)
	}
}
