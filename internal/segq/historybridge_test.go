package segq

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"synchq/internal/core"
	"synchq/internal/verify"
)

// The same stress-to-verify bridge internal/core runs over its dual
// structures, pointed at the segmented core: an N×M producer/consumer mix
// of timed and asynchronously-canceled operations with a full recorded
// history, checked for conservation (no value lost, duplicated, or
// invented) and synchrony (every transfer's put and take intervals
// overlap). The cell state machine's abort arms — poison-on-expiry,
// abort-vs-fulfill CAS races, broken-cell retries — are exactly the paths
// this mix hammers.

func runHistoryBridge(t *testing.T, q *Queue[int64], producers, consumers, perProducer int) {
	t.Helper()
	rec := verify.NewRecorder()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id), 11))
			log := rec.NewThread()
			for seq := int64(0); seq < int64(perProducer); seq++ {
				v := id<<40 | seq
				inv := log.Begin()
				var ok bool
				if rng.IntN(5) < 3 {
					patience := time.Duration(rng.IntN(800)) * time.Microsecond
					ok = q.OfferTimeout(v, patience)
				} else {
					cancel := make(chan struct{})
					timer := time.AfterFunc(time.Duration(rng.IntN(500))*time.Microsecond, func() {
						close(cancel)
					})
					ok = q.PutDeadline(v, time.Time{}, cancel) == core.OK
					timer.Stop()
				}
				log.End(verify.Put, v, inv, ok)
			}
		}(int64(p))
	}

	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func(id int64) {
			defer cg.Done()
			rng := rand.New(rand.NewPCG(uint64(id)+1000, 13))
			log := rec.NewThread()
			for {
				select {
				case <-stop:
					return
				default:
				}
				inv := log.Begin()
				var v int64
				var ok bool
				if rng.IntN(5) < 4 {
					patience := time.Duration(rng.IntN(800)) * time.Microsecond
					v, ok = q.PollTimeout(patience)
				} else {
					cancel := make(chan struct{})
					timer := time.AfterFunc(time.Duration(rng.IntN(500))*time.Microsecond, func() {
						close(cancel)
					})
					var st core.Status
					v, st = q.TakeDeadline(time.Time{}, cancel)
					ok = st == core.OK
					timer.Stop()
				}
				log.End(verify.Take, v, inv, ok)
			}
		}(int64(c))
	}

	wg.Wait()
	close(stop)
	cg.Wait()

	// A synchronous queue cannot buffer, but drain anyway: if a bug made
	// a value stick in a cell, the drain converts it into a conservation
	// error instead of a silent leak.
	drainLog := rec.NewThread()
	for {
		inv := drainLog.Begin()
		v, ok := q.PollTimeout(10 * time.Millisecond)
		drainLog.End(verify.Take, v, inv, ok)
		if !ok {
			break
		}
	}

	res := verify.Check(rec.History(), true)
	for _, e := range res.Errors {
		t.Errorf("history violation: %s", e)
	}
	if res.Transfers == 0 {
		t.Fatal("bridge run completed zero transfers; the mix exercised nothing")
	}
}

func bridgeSizes(t *testing.T) (producers, consumers, perProducer int) {
	if testing.Short() {
		return 3, 3, 120
	}
	return 4, 4, 400
}

func TestHistoryBridgeSegmented(t *testing.T) {
	p, c, n := bridgeSizes(t)
	q := New[int64](core.WaitConfig{})
	runHistoryBridge(t, q, p, c, n)
	if got := q.Len(); got != 0 {
		t.Fatalf("Len = %d after bridge run, want 0", got)
	}
	// The bridge's cancellation mix doubles as a storm: the structure must
	// come out memory-bounded too.
	expectLiveSegmentsBelow(t, q, liveSegmentCeiling)
}
