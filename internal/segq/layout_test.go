package segq

import (
	"testing"
	"unsafe"
)

// Whitebox layout audit for the segmented core: the whole point of the
// segment is that adjacent claimants touch adjacent memory *on purpose*,
// so each cell must own a full cache line and the shared header must not
// share a line with cells[0]. These assertions are what "cache-line-
// aligned segments" means, checked rather than assumed; a field added
// without re-padding fails here, not in a benchmark regression.

const cacheLine = 64

func TestCellOwnsACacheLine(t *testing.T) {
	var c cell[int64]
	if got := unsafe.Sizeof(c); got != cacheLine {
		t.Fatalf("cell[int64] size = %d, want exactly %d: a waiter's state+parker must not share a line with its neighbor's", got, cacheLine)
	}
	// The hot fields of one hand-off sit together at the front of the line.
	if off := unsafe.Offsetof(c.state); off != 0 {
		t.Fatalf("cell.state offset = %d, want 0", off)
	}
	if off := unsafe.Offsetof(c.v); off >= cacheLine {
		t.Fatalf("cell.v offset = %d, spills past the cell's line", off)
	}
}

func TestSegmentHeaderIsolatedFromCells(t *testing.T) {
	var s segment[int64]
	if off := unsafe.Offsetof(s.cells); off%cacheLine != 0 {
		t.Fatalf("segment.cells offset = %d, want a multiple of %d so cell i lands on line i", off, cacheLine)
	}
	if off := unsafe.Offsetof(s.cells); off < cacheLine {
		t.Fatalf("segment.cells offset = %d: header (next/prev/resolved, all CASed during unlink) shares a line with cells[0]", off)
	}
	want := unsafe.Offsetof(s.cells) + SegSize*unsafe.Sizeof(s.cells[0])
	if got := unsafe.Sizeof(s); got != want {
		t.Fatalf("segment size = %d, want %d (header padding + %d full-line cells)", got, want, SegSize)
	}
}

func TestQueueCountersOnDistinctLines(t *testing.T) {
	var q Queue[int64]
	offsets := map[string]uintptr{
		"putc":    unsafe.Offsetof(q.putc),
		"takec":   unsafe.Offsetof(q.takec),
		"putSeg":  unsafe.Offsetof(q.putSeg),
		"takeSeg": unsafe.Offsetof(q.takeSeg),
		"head":    unsafe.Offsetof(q.head),
	}
	lines := make(map[uintptr]string, len(offsets))
	for name, off := range offsets {
		line := off / cacheLine
		if prev, clash := lines[line]; clash {
			t.Errorf("%s (offset %d) shares cache line %d with %s: every F&A on one side would invalidate the other", name, off, line, prev)
		}
		lines[line] = name
	}
}
