package segq

import (
	"time"

	"synchq/internal/core"
	"synchq/internal/fault"
	"synchq/internal/metrics"
)

// This file is the segmented core's native batch layer: the multi-cell
// claim. Where the linked cores can only loop a batch through the
// single-arrival engine, the F&A counters make a k-item burst almost free:
// one counter.Add(k) reserves the contiguous cell run [base, base+k), and
// the claimant then resolves each cell of the run through the ordinary
// CQS-style state machine — no per-item claim, at most two segment lookups
// per sixteen cells, and (on the producer side) a single wait phase for
// the whole run instead of k spin-then-park episodes.
//
// A reserved run is a snapshot of a moving structure: while it is being
// resolved, counterpart claims land inside it, waiters abort, segments
// unlink, Close sweeps through. The resolution sweep therefore takes each
// cell as it finds it — WAITER cells are fulfilled on the spot, EMPTY
// cells are installed into (producer) or poisoned (expired taker), BROKEN
// and unlinked cells are dead indexes that consume no item — and the
// partial-fill unwind aborts the run's own still-pending installs when the
// batch's deadline or cancellation fires mid-run. Item order is preserved
// by construction: items are assigned to run indexes in ascending order,
// and consumers claim indexes in FIFO order, so in-batch FIFO holds even
// when dead cells punch holes in the run.
//
// Runs are capped at SegSize indexes so a reservation spans at most two
// segments: the claim window (fault.SegBatchPause) and the unwind are both
// bounded, and a batch that dies mid-run strands at most one segment's
// worth of poisoned cells for the unlinker to reap.

// pendingInstall records one cell this batch installed an ITEM into and
// has not yet seen resolved. The slice of these lives in the claimant's
// stack frame — batch bookkeeping is local memory; only the cells
// themselves are shared.
type pendingInstall[T any] struct {
	s *segment[T]
	c *cell[T]
	i uint64
	// idx is the chunk position of the installed item, for the partial-fill
	// compaction (see putRun's return path).
	idx int
}

// PutBatch transfers items in order, claiming contiguous cell runs with
// one F&A per SegSize items. It returns the number of items actually
// delivered to consumers and OK when that is all of them; on
// Timeout/Canceled/Closed the count is the partial fill (items the unwind
// could not hand off were reclaimed and never leave a waiter behind).
//
// Partial-fill contract: after a non-OK return of (n, st), items[n:]
// holds exactly the undelivered items in their original relative order,
// and items[:n] is unspecified. A consumer can outrun the unwind at a
// later run index while an earlier install aborts, so the delivered
// subset is not always a slice prefix; putRun compacts the undelivered
// values back into the chunk's tail so the caller's retry ("resend
// items[n:]") stays exact anyway.
func (q *Queue[T]) PutBatch(items []T, deadline time.Time, cancel <-chan struct{}) (int, Status) {
	if len(items) == 0 {
		return 0, core.OK
	}
	if q.closed.Load() {
		return 0, core.Closed
	}
	delivered, off := 0, 0
	for off < len(items) {
		end := min(off+SegSize, len(items))
		d, consumed, st := q.putRun(items[off:end], deadline, cancel)
		delivered += d
		off += consumed
		if st != core.OK {
			return delivered, st
		}
		// st OK with consumed < len(chunk) means dead indexes (poisoned or
		// unlinked cells) swallowed part of the run; re-claim for the rest.
		// A fully dead run makes no progress and never reaches putRun's
		// per-cell deadline arm (there is no EMPTY cell to check at), so
		// the abort conditions must be re-checked here or an expired batch
		// would claim-and-skip fresh runs forever.
		if consumed == 0 {
			select {
			case <-cancel:
				return delivered, core.Canceled
			default:
			}
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				return delivered, core.Timeout
			}
		}
	}
	return delivered, core.OK
}

// putRun reserves len(chunk) contiguous indexes with a single F&A and
// resolves them in ascending order. It returns the items delivered, the
// items consumed from chunk (delivered plus aborted installs), and the
// terminating status.
//
// The sweep is two-phase. Phase 1 walks the run without blocking: a cell
// with a waiting consumer is fulfilled immediately; an EMPTY cell gets
// this batch's next item installed (recorded as pending); BROKEN and
// unlinked cells are skipped. Phase 2 awaits the pending installs in index
// order — one wait phase for the whole run. If a wait aborts
// (deadline/cancel/close), the remaining pending installs are unwound with
// the installer's own ITEM→BROKEN abort arm, reclaiming their values; a
// pending cell a consumer resolved first stays delivered and is counted.
func (q *Queue[T]) putRun(chunk []T, deadline time.Time, cancel <-chan struct{}) (delivered, consumed int, st Status) {
	var zero T
	k := uint64(len(chunk))
	base := q.putc.Add(k) - k
	q.f.Preempt(fault.SegBatchPause)

	var pending []pendingInstall[T]
	itemIdx := 0
	closedHit := false
	timedOut := false
	// done marks which chunk positions were delivered, for the partial-fill
	// compaction below. Runs are capped at SegSize, so a fixed array keeps
	// the bookkeeping on the stack.
	var done [SegSize]bool

sweep:
	for j := uint64(0); j < k && itemIdx < len(chunk); j++ {
		i := base + j
		s := q.findSeg(&q.putSeg, i>>segShift)
		if s.id != i>>segShift {
			// The run strayed into unlinked territory: every cell up to s
			// is already terminal, so these indexes are dead. (No skipTo:
			// our own claim already advanced the counter past them.)
			q.m.Inc(metrics.CleanSweeps)
			continue
		}
		c := &s.cells[i&segMask]
	cell:
		for {
			switch c.state.Load() {
			case cEmpty:
				if q.closed.Load() {
					// No consumer can claim this index anymore; poison it
					// so a mid-flight counterpart retries and sees the
					// close, then stop placing items.
					if q.f.FailCAS(fault.SegInstallCAS) || !c.state.CompareAndSwap(cEmpty, cBroken) {
						q.m.Inc(metrics.CASFailEnqueue)
						continue
					}
					q.resolveCell(s)
					closedHit = true
					break sweep
				}
				expired := !deadline.IsZero() && !time.Now().Before(deadline)
				if expired && q.takec.Load() <= i {
					// Attempt-first poison, as in the single-item engine: no
					// consumer has committed an index that reaches this
					// cell, so an expired batch does not install here — and
					// no later index of the run can hold a waiter either
					// (consumers commit indexes in order), so the run is
					// over: poison this cell and report the timeout rather
					// than sweeping on, or a dead run would read as OK and
					// send the caller straight back into a fresh claim.
					if q.f.FailCAS(fault.SegInstallCAS) || !c.state.CompareAndSwap(cEmpty, cBroken) {
						q.m.Inc(metrics.CASFailEnqueue)
						continue
					}
					q.resolveCell(s)
					q.m.Inc(metrics.Timeouts)
					timedOut = true
					break sweep
				}
				c.v = chunk[itemIdx]
				q.f.Preempt(fault.SegCloseRacePause)
				if q.f.FailCAS(fault.SegInstallCAS) || !c.state.CompareAndSwap(cEmpty, cItem) {
					q.m.Inc(metrics.CASFailEnqueue)
					continue
				}
				if q.closed.Load() {
					// Close may have swept past before our install was
					// visible; only we can evict it now (the single-item
					// post-install re-check, per cell of the run).
					if c.state.CompareAndSwap(cItem, cClosed) {
						q.resolveCell(s)
						c.v = zero
						q.m.Inc(metrics.ClosedWakeups)
						itemIdx++ // consumed but not delivered
						closedHit = true
						break sweep
					}
				}
				pending = append(pending, pendingInstall[T]{s: s, c: c, i: i, idx: itemIdx})
				itemIdx++
				break cell

			case cWaiter:
				// A consumer already waits at this index: deliver the
				// batch's next item on the spot.
				c.v = chunk[itemIdx]
				if q.f.FailCAS(fault.SegResolveCAS) || !c.state.CompareAndSwap(cWaiter, cDone) {
					q.m.Inc(metrics.CASFailFulfill)
					if st := c.state.Load(); st == cBroken || st == cClosed {
						c.v = zero
					}
					continue
				}
				q.resolveCell(s)
				q.m.Inc(metrics.Fulfillments)
				q.f.Preempt(fault.SegResolvePause)
				c.wp.Unpark()
				delivered++
				done[itemIdx] = true
				itemIdx++
				break cell

			case cBroken:
				break cell // counterpart poisoned or aborted: dead index

			case cItem:
				panic("segq: producer cell claimed twice")
			case cDone:
				panic("segq: cell resolved twice")

			default: // cClosed: the close sweep evicted this index's waiter
				closedHit = true
				break sweep
			}
		}
	}

	// Phase 2: one wait phase for every install the run made. A run that
	// ended in the expired-poison arm is already over: its pendings go
	// straight to the unwind (a consumer that beat the unwind to one of
	// them still counts as a delivery).
	st = core.OK
	if timedOut {
		st = core.Timeout
	}
	for _, p := range pending {
		if st == core.OK {
			if _, st2 := q.awaitCell(p.s, p.c, p.i, cItem, true, deadline, cancel, 0, &q.takec); st2 == core.OK {
				delivered++
				done[p.idx] = true
			} else {
				st = st2
			}
			continue
		}
		// Unwind: the batch is over, but this cell still advertises an
		// item. Only the installer may abort it; reclaim the value if the
		// abort wins, count the delivery if a consumer won first.
		if p.c.state.CompareAndSwap(cItem, cBroken) {
			q.resolveCell(p.s)
			p.c.v = zero
			if st == core.Canceled {
				q.m.Inc(metrics.Cancellations)
			} else {
				q.m.Inc(metrics.Timeouts)
			}
			continue
		}
		switch p.c.state.Load() {
		case cDone:
			delivered++
			done[p.idx] = true
		case cClosed:
			p.c.v = zero
			q.m.Inc(metrics.ClosedWakeups)
		}
	}
	if closedHit && st == core.OK {
		st = core.Closed
	}
	if delivered < itemIdx {
		// Partial fill: the delivered positions need not be a prefix (a
		// consumer can resolve a later pending install while an earlier one
		// aborts), but the caller's contract is "items[n:] is what did not
		// go through". Compact the undelivered values into the chunk's tail,
		// order preserved.
		var und [SegSize]T
		u := 0
		for j := 0; j < itemIdx; j++ {
			if !done[j] {
				und[u] = chunk[j]
				u++
			}
		}
		copy(chunk[delivered:itemIdx], und[:u])
	}
	return delivered, itemIdx, st
}

// TakeBatch appends up to max values to buf: the first take waits under
// the deadline through the single-item engine, then the fill claims
// already-committed producer runs with one F&A each and resolves them
// non-blocking. The status contract matches the other cores' TakeBatch:
// OK when the batch ended normally, Timeout/Canceled when the first wait
// aborted with nothing taken, Closed when the queue shut down (values
// already taken stay in buf).
func (q *Queue[T]) TakeBatch(buf []T, max int, deadline time.Time, cancel <-chan struct{}) ([]T, Status) {
	if max <= 0 {
		return buf, core.OK
	}
	v, st := q.transfer(false, *new(T), deadline, cancel)
	if st != core.OK {
		return buf, st
	}
	buf = append(buf, v)
	taken := 1
	for taken < max {
		n, st := q.takeRun(&buf, max-taken)
		taken += n
		if st == core.Closed {
			return buf, core.Closed
		}
		if n == 0 {
			break
		}
	}
	return buf, core.OK
}

// takeRun claims up to max already-committed producer indexes with one F&A
// and resolves each cell through resolveArrival with an expired deadline —
// the per-cell semantics of a poll (attempt-first: an installed producer en
// route to a claimed cell still gets a bounded spin to arrive). The claim
// is bounded by the committed-producer surplus read just before the F&A,
// so a drain overshoots by at most the racing claims of that window, and
// capped at SegSize like the producer runs. It returns the values taken
// and Closed when the queue was observed shut down.
func (q *Queue[T]) takeRun(buf *[]T, max int) (int, Status) {
	if q.closed.Load() {
		return 0, core.Closed
	}
	avail := int64(q.putc.Load() - q.takec.Load())
	if avail <= 0 {
		return 0, core.OK
	}
	k := min(int64(max), avail, int64(SegSize))
	base := q.takec.Add(uint64(k)) - uint64(k)
	q.f.Preempt(fault.SegBatchPause)

	var zero T
	taken := 0
	expired := core.DeadlineFor(0)
	for j := int64(0); j < k; j++ {
		i := base + uint64(j)
		s := q.findSeg(&q.takeSeg, i>>segShift)
		if s.id != i>>segShift {
			q.m.Inc(metrics.CleanSweeps)
			continue // unlinked: dead index
		}
		c := &s.cells[i&segMask]
		v, st, ok := q.resolveArrival(s, c, i, false, zero, expired, nil, 0, &q.putc)
		if !ok {
			continue // BROKEN on arrival: dead index
		}
		switch st {
		case core.OK:
			*buf = append(*buf, v)
			taken++
		case core.Closed:
			return taken, core.Closed
		}
		// Timeout: the cell was poisoned (or our brief install aborted) —
		// a miss, not a batch failure.
	}
	return taken, core.OK
}
