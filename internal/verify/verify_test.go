package verify

import (
	"testing"
	"time"
)

func op(kind Kind, v int64, inv, res time.Duration, ok bool) Op {
	return Op{Kind: kind, Value: v, Invoke: inv, Respond: res, OK: ok}
}

func TestAcceptsValidHistory(t *testing.T) {
	h := []Op{
		op(Put, 1, 0, 10, true),
		op(Take, 1, 5, 12, true),
		op(Put, 2, 20, 30, true),
		op(Take, 2, 25, 28, true),
	}
	res := Check(h, true)
	if !res.Ok() {
		t.Fatalf("valid history rejected: %v", res.Errors)
	}
	if res.Transfers != 2 {
		t.Fatalf("Transfers = %d, want 2", res.Transfers)
	}
}

func TestRejectsValueNeverPut(t *testing.T) {
	h := []Op{op(Take, 7, 0, 10, true)}
	if res := Check(h, true); res.Ok() {
		t.Fatal("accepted a take of a value never put")
	}
}

func TestRejectsLostValue(t *testing.T) {
	h := []Op{op(Put, 7, 0, 10, true)}
	if res := Check(h, true); res.Ok() {
		t.Fatal("accepted a successful put never taken (drained run)")
	}
	// In a non-drained run this is tolerated.
	if res := Check(h, false); !res.Ok() {
		t.Fatalf("non-drained check rejected pending put: %v", res.Errors)
	}
}

func TestRejectsDuplicateDelivery(t *testing.T) {
	h := []Op{
		op(Put, 7, 0, 10, true),
		op(Take, 7, 2, 8, true),
		op(Take, 7, 3, 9, true),
	}
	if res := Check(h, true); res.Ok() {
		t.Fatal("accepted a value delivered twice")
	}
}

func TestRejectsDuplicatePut(t *testing.T) {
	h := []Op{
		op(Put, 7, 0, 10, true),
		op(Put, 7, 1, 11, true),
		op(Take, 7, 2, 8, true),
	}
	if res := Check(h, true); res.Ok() {
		t.Fatal("accepted a value put twice")
	}
}

func TestRejectsNonOverlappingTransfer(t *testing.T) {
	// Put completed at t=10, take started at t=20: not synchronous.
	h := []Op{
		op(Put, 7, 0, 10, true),
		op(Take, 7, 20, 30, true),
	}
	if res := Check(h, true); res.Ok() {
		t.Fatal("accepted a non-overlapping (asynchronous) transfer")
	}
}

func TestIgnoresFailedOps(t *testing.T) {
	h := []Op{
		op(Put, 1, 0, 10, true),
		op(Take, 1, 5, 12, true),
		op(Put, 99, 0, 1, false), // timed out: value never transferred
		op(Take, 98, 0, 1, false),
	}
	res := Check(h, true)
	if !res.Ok() {
		t.Fatalf("failed ops caused rejection: %v", res.Errors)
	}
	if res.Transfers != 1 {
		t.Fatalf("Transfers = %d, want 1", res.Transfers)
	}
}

func TestRejectsBackwardsClock(t *testing.T) {
	h := []Op{op(Put, 1, 10, 5, true), op(Take, 1, 6, 11, true)}
	if res := Check(h, true); res.Ok() {
		t.Fatal("accepted respond < invoke")
	}
}

func TestErrorListIsBounded(t *testing.T) {
	var h []Op
	for i := int64(0); i < 100; i++ {
		h = append(h, op(Take, i, 0, 1, true)) // all taken-but-never-put
	}
	res := Check(h, true)
	if res.Ok() {
		t.Fatal("accepted invalid history")
	}
	if len(res.Errors) > 20 {
		t.Fatalf("error list grew to %d entries", len(res.Errors))
	}
}

func TestRecorderCollectsAcrossThreads(t *testing.T) {
	r := NewRecorder()
	t1 := r.NewThread()
	t2 := r.NewThread()
	// Interleave the two ops so their intervals overlap, as a real
	// synchronous transfer's would.
	inv1 := t1.Begin()
	inv2 := t2.Begin()
	t1.End(Put, 1, inv1, true)
	t2.End(Take, 1, inv2, true)
	h := r.History()
	if len(h) != 2 {
		t.Fatalf("history has %d ops, want 2", len(h))
	}
	if res := Check(h, true); !res.Ok() {
		t.Fatalf("recorded history rejected: %v", res.Errors)
	}
}

func TestPairingOrder(t *testing.T) {
	h := []Op{
		op(Put, 10, 0, 4, true),
		op(Take, 10, 1, 3, true), // commit ~2
		op(Put, 20, 10, 14, true),
		op(Take, 20, 11, 13, true), // commit ~12
		op(Put, 30, 5, 9, true),
		op(Take, 30, 6, 8, true), // commit ~7
	}
	order := PairingOrder(h)
	want := []int64{10, 30, 20}
	if len(order) != 3 {
		t.Fatalf("order has %d entries, want 3", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestLatencies(t *testing.T) {
	h := []Op{
		op(Put, 1, 0, 10, true),
		op(Take, 1, 5, 12, true),
		op(Put, 2, 0, 100, false), // excluded: failed
	}
	put, take := Latencies(h)
	if len(put) != 1 || put[0] != 10 {
		t.Fatalf("put latencies = %v, want [10]", put)
	}
	if len(take) != 1 || take[0] != 7 {
		t.Fatalf("take latencies = %v, want [7]", take)
	}
}
