package verify

import (
	"strings"
	"testing"
	"time"
)

func cop(kind Kind, v int64, inv, resp time.Duration) Op {
	return Op{Kind: kind, Value: v, Invoke: inv, Respond: resp, OK: true}
}

func TestCheckClassifiedSplitsViolationClasses(t *testing.T) {
	ms := time.Millisecond
	history := []Op{
		// Clean transfer.
		cop(Put, 1, 0, 2*ms), cop(Take, 1, 1*ms, 3*ms),
		// Synchrony violation: take wholly after put responded.
		cop(Put, 2, 0, 1*ms), cop(Take, 2, 5*ms, 6*ms),
		// Conservation violations: invented value, lost value.
		cop(Take, 3, 0, 1*ms),
		cop(Put, 4, 0, 1*ms),
	}
	c := CheckClassified(history, true)
	if c.Ok() {
		t.Fatal("history has violations of both classes")
	}
	if c.Transfers != 1 {
		t.Fatalf("want 1 clean transfer, got %d", c.Transfers)
	}
	if len(c.Synchrony) != 1 || !strings.Contains(c.Synchrony[0], "non-overlapping transfer of 2") {
		t.Fatalf("synchrony class wrong: %v", c.Synchrony)
	}
	if len(c.Conservation) != 2 {
		t.Fatalf("want 2 conservation violations, got %v", c.Conservation)
	}
	joined := strings.Join(c.Conservation, "\n")
	if !strings.Contains(joined, "value 3 taken but never put") ||
		!strings.Contains(joined, "value 4 put (successfully) but never taken") {
		t.Fatalf("conservation class wrong: %v", c.Conservation)
	}

	// Check must agree with CheckClassified (it delegates).
	res := Check(history, true)
	if res.Transfers != c.Transfers || len(res.Errors) != 3 {
		t.Fatalf("Check/CheckClassified diverged: %+v vs %+v", res, c)
	}
}

func TestCheckClassifiedCleanHistory(t *testing.T) {
	ms := time.Millisecond
	c := CheckClassified([]Op{
		cop(Put, 1, 0, 2*ms), cop(Take, 1, 1*ms, 3*ms),
		{Kind: Put, Value: 99, Invoke: 0, Respond: ms}, // failed op: ignored
	}, true)
	if !c.Ok() || c.Transfers != 1 {
		t.Fatalf("clean history must pass: %+v", c)
	}
}

// producerHigh24 is the harness's value-tagging convention: producer id in
// the bits above 40.
func producerHigh24(v int64) int64 { return v >> 40 }

func TestFIFOErrorsDetectsInversion(t *testing.T) {
	ms := time.Millisecond
	p0 := func(seq int64) int64 { return 0<<40 | seq }
	history := []Op{
		// Producer 0 puts seq 0 then seq 1 (sequential, as a real
		// producer goroutine would).
		cop(Put, p0(0), 0, 2*ms),
		cop(Put, p0(1), 3*ms, 5*ms),
		// Inverted delivery: the take of seq 1 responds entirely before
		// the take of seq 0 is invoked.
		cop(Take, p0(1), 4*ms, 5*ms),
		cop(Take, p0(0), 8*ms, 9*ms),
	}
	errs := FIFOErrors(history, producerHigh24)
	if len(errs) != 1 || !strings.Contains(errs[0], "FIFO inversion") {
		t.Fatalf("want one FIFO inversion, got %v", errs)
	}
}

func TestFIFOErrorsAcceptsOverlapAmbiguity(t *testing.T) {
	ms := time.Millisecond
	p0 := func(seq int64) int64 { return 0<<40 | seq }
	// The takes overlap in real time: either linearization order is
	// possible, so a sound timestamp check must stay silent.
	history := []Op{
		cop(Put, p0(0), 0, 2*ms),
		cop(Put, p0(1), 3*ms, 5*ms),
		cop(Take, p0(0), 1*ms, 6*ms),
		cop(Take, p0(1), 4*ms, 5*ms),
	}
	if errs := FIFOErrors(history, producerHigh24); len(errs) != 0 {
		t.Fatalf("overlapping takes are order-ambiguous, got %v", errs)
	}

	// Independent producers are never ordered against each other.
	p1 := func(seq int64) int64 { return 1<<40 | seq }
	history = []Op{
		cop(Put, p0(0), 0, 2*ms), cop(Take, p0(0), 20*ms, 21*ms),
		cop(Put, p1(0), 3*ms, 5*ms), cop(Take, p1(0), 4*ms, 5*ms),
	}
	if errs := FIFOErrors(history, producerHigh24); len(errs) != 0 {
		t.Fatalf("cross-producer order is unconstrained, got %v", errs)
	}

	// Undrained values (no matching take) are skipped, not flagged.
	history = []Op{
		cop(Put, p0(0), 0, 2*ms),
		cop(Put, p0(1), 3*ms, 5*ms), cop(Take, p0(1), 4*ms, 5*ms),
	}
	if errs := FIFOErrors(history, producerHigh24); len(errs) != 0 {
		t.Fatalf("untaken values carry no ordering obligation, got %v", errs)
	}
}
