// Package verify checks recorded synchronous queue histories against the
// structure's correctness contract (§2.2 of the paper):
//
//   - Conservation — every value taken was put exactly once, and (in a
//     drained run) every value put was taken exactly once; nothing is lost,
//     duplicated, or invented.
//   - Synchrony — a synchronous queue transfers a value only while both
//     parties are inside their operations, so the real-time intervals of a
//     put and its matching take must overlap. This is the observable
//     signature of "producers and consumers wait for one another, shake
//     hands, and leave in pairs."
//
// Strict FIFO fairness of the fair queue is checked separately by
// deterministic scheduling tests (see the core package tests): fairness is
// a property of linearization order that cannot, in general, be decided
// from invocation/response timestamps alone.
package verify

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind distinguishes the two operations.
type Kind uint8

const (
	// Put is a producer operation.
	Put Kind = iota
	// Take is a consumer operation.
	Take
)

// Op is one completed operation in a history. Values must be unique across
// successful puts for conservation checking to be exact (the harness uses
// a per-producer counter with a thread tag to guarantee this).
type Op struct {
	Kind    Kind
	Value   int64
	Invoke  time.Duration // offset from the recorder's base time
	Respond time.Duration
	OK      bool // false for timeouts / cancellations
}

// Recorder collects operations concurrently with per-thread shards so that
// recording does not itself create the contention being measured. Create
// one with NewRecorder, hand each goroutine its own ThreadLog, and call
// History after all threads are done.
type Recorder struct {
	base   time.Time
	mu     sync.Mutex
	shards []*ThreadLog
}

// NewRecorder returns an empty recorder; timestamps are measured from now.
func NewRecorder() *Recorder {
	return &Recorder{base: time.Now()}
}

// ThreadLog is a single goroutine's event log. Each goroutine must use its
// own.
type ThreadLog struct {
	base time.Time
	ops  []Op
}

// NewThread registers and returns a new per-goroutine log.
func (r *Recorder) NewThread() *ThreadLog {
	t := &ThreadLog{base: r.base}
	r.mu.Lock()
	r.shards = append(r.shards, t)
	r.mu.Unlock()
	return t
}

// Begin stamps the start of an operation; pass the result to End.
func (t *ThreadLog) Begin() time.Duration { return time.Since(t.base) }

// End records a completed operation that began at inv.
func (t *ThreadLog) End(kind Kind, value int64, inv time.Duration, ok bool) {
	t.ops = append(t.ops, Op{
		Kind:    kind,
		Value:   value,
		Invoke:  inv,
		Respond: time.Since(t.base),
		OK:      ok,
	})
}

// History merges all shards. Call only after every recording goroutine has
// finished.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	var all []Op
	for _, s := range r.shards {
		all = append(all, s.ops...)
	}
	return all
}

// Result is the outcome of checking a history.
type Result struct {
	// Transfers is the number of matched put/take pairs.
	Transfers int
	// Errors lists every violation found (empty means the history
	// passed). At most 20 are retained.
	Errors []string
}

// Ok reports whether the history passed all checks.
func (r Result) Ok() bool { return len(r.Errors) == 0 }

func (r *Result) errf(format string, args ...any) {
	if len(r.Errors) < 20 {
		r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
	}
}

// Check validates conservation and synchrony of a history. If drained is
// true the run is expected to have completed every transfer (every
// successful put matched by a successful take and vice versa); otherwise
// unmatched successful puts are tolerated only if the caller knows the
// structure may still hold them (not possible for a synchronous queue, so
// drained should almost always be true).
func Check(history []Op, drained bool) Result {
	c := CheckClassified(history, drained)
	res := Result{Transfers: c.Transfers}
	for _, e := range c.Conservation {
		res.errf("%s", e)
	}
	for _, e := range c.Synchrony {
		res.errf("%s", e)
	}
	return res
}

// PairingOrder reconstructs the order in which transfers were committed,
// approximated by the midpoint of each pair's overlap window, and returns
// the put values in that order. It is a diagnostic aid for eyeballing
// fairness behaviour (FIFO queues produce arrival-ish order, LIFO stacks
// produce bursts of reversal); strict fairness is validated by the
// deterministic scheduling tests in the core package, since linearization
// order cannot in general be decided from timestamps alone.
func PairingOrder(history []Op) []int64 {
	type pair struct {
		v      int64
		commit time.Duration
	}
	puts := make(map[int64]Op)
	takes := make(map[int64]Op)
	for _, op := range history {
		if !op.OK {
			continue
		}
		if op.Kind == Put {
			puts[op.Value] = op
		} else {
			takes[op.Value] = op
		}
	}
	var pairs []pair
	for v, p := range puts {
		t, ok := takes[v]
		if !ok {
			continue
		}
		lo := p.Invoke
		if t.Invoke > lo {
			lo = t.Invoke
		}
		hi := p.Respond
		if t.Respond < hi {
			hi = t.Respond
		}
		pairs = append(pairs, pair{v: v, commit: (lo + hi) / 2})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].commit < pairs[j].commit })
	out := make([]int64, len(pairs))
	for i, p := range pairs {
		out[i] = p.v
	}
	return out
}

// Latencies extracts the per-operation wall latencies (respond − invoke),
// in nanoseconds, of the successful puts and takes in a history — the raw
// material for latency summaries in stress reports. Failed (timed-out or
// canceled) operations are excluded, since their latency reflects the
// caller's patience, not the queue.
func Latencies(history []Op) (put, take []float64) {
	for _, op := range history {
		if !op.OK {
			continue
		}
		l := float64((op.Respond - op.Invoke).Nanoseconds())
		if op.Kind == Put {
			put = append(put, l)
		} else {
			take = append(take, l)
		}
	}
	return put, take
}
