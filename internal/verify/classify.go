package verify

import (
	"fmt"
	"sort"
)

// Classified is the outcome of checking a history with the violations
// attributed to the named invariant they break, so a property-declared
// harness can fail the right verdict row instead of a single undifferentiated
// error list.
type Classified struct {
	// Transfers is the number of matched put/take pairs.
	Transfers int
	// Conservation lists violations of "every value taken was put exactly
	// once, and every successful put was taken exactly once": losses,
	// duplications, inventions.
	Conservation []string
	// Synchrony lists transfers whose put and take intervals do not
	// overlap — a value handed through a buffer rather than a handshake.
	Synchrony []string
}

// Ok reports whether the history passed both checks.
func (c Classified) Ok() bool {
	return len(c.Conservation) == 0 && len(c.Synchrony) == 0
}

// CheckClassified is Check with the violations split by the invariant they
// break. The same bound (20 retained violations per class) applies.
func CheckClassified(history []Op, drained bool) Classified {
	var c Classified
	conserve := func(format string, args ...any) { appendBounded(&c.Conservation, format, args...) }
	sync := func(format string, args ...any) { appendBounded(&c.Synchrony, format, args...) }

	puts := make(map[int64]Op)
	takes := make(map[int64]Op)
	for _, op := range history {
		if !op.OK {
			continue
		}
		if op.Respond < op.Invoke {
			sync("operation responds before invocation: %+v", op)
		}
		switch op.Kind {
		case Put:
			if prev, dup := puts[op.Value]; dup {
				conserve("value %d put twice: %+v and %+v", op.Value, prev, op)
				continue
			}
			puts[op.Value] = op
		case Take:
			if prev, dup := takes[op.Value]; dup {
				conserve("value %d taken twice: %+v and %+v", op.Value, prev, op)
				continue
			}
			takes[op.Value] = op
		}
	}
	for v, t := range takes {
		p, ok := puts[v]
		if !ok {
			conserve("value %d taken but never put", v)
			continue
		}
		if p.Respond < t.Invoke || t.Respond < p.Invoke {
			sync("non-overlapping transfer of %d: put [%v,%v] take [%v,%v]",
				v, p.Invoke, p.Respond, t.Invoke, t.Respond)
			continue
		}
		c.Transfers++
	}
	if drained {
		for v := range puts {
			if _, ok := takes[v]; !ok {
				conserve("value %d put (successfully) but never taken", v)
			}
		}
	}
	return c
}

// appendBounded appends a formatted violation, retaining at most 20.
func appendBounded(dst *[]string, format string, args ...any) {
	if len(*dst) < 20 {
		*dst = append(*dst, fmt.Sprintf(format, args...))
	}
}

// FIFOErrors checks per-producer FIFO delivery from timestamps alone,
// conservatively: producer attributes each successful put to its producer
// via the supplied value→producer map (the harness tags values with the
// producer id in the high bits).
//
// A single producer's puts are sequential, so its put order is total. On a
// fair (FIFO) structure, the matching takes must linearize in that same
// order. Linearization order cannot in general be read off timestamps, but
// a sound necessary condition can: if put(v1) responded before put(v2) was
// invoked (always true for one producer's consecutive puts) then take(v1)
// precedes take(v2) in any FIFO linearization, and a take that RESPONDS
// before its predecessor's take was INVOKED cannot follow it in any
// linearization. Flagging only that real-time inversion yields no false
// positives regardless of scheduling skew.
//
// At most 20 violations are returned.
func FIFOErrors(history []Op, producer func(v int64) int64) []string {
	puts := make(map[int64]Op)
	takes := make(map[int64]Op)
	for _, op := range history {
		if !op.OK {
			continue
		}
		if op.Kind == Put {
			puts[op.Value] = op
		} else {
			takes[op.Value] = op
		}
	}

	// Group each producer's successfully put values in put order.
	byProducer := make(map[int64][]Op)
	for v, p := range puts {
		if _, taken := takes[v]; !taken {
			continue // undrained value: no take to order
		}
		byProducer[producer(v)] = append(byProducer[producer(v)], p)
	}
	var errs []string
	for prod, ops := range byProducer {
		// A batched put logs every item of the batch with the operation's
		// single interval, so Invoke alone cannot order items within a
		// batch. The harness encodes the per-producer sequence number in
		// the value's low bits, so for one producer value order IS put
		// order — the tie-break that keeps the inversion check sound for
		// batches.
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].Invoke != ops[j].Invoke {
				return ops[i].Invoke < ops[j].Invoke
			}
			return ops[i].Value < ops[j].Value
		})
		// maxSeen tracks the latest take invocation among predecessors:
		// any later value whose take responded before it is inverted.
		maxSeen := takes[ops[0].Value]
		for _, p := range ops[1:] {
			t := takes[p.Value]
			if t.Respond < maxSeen.Invoke {
				appendBounded(&errs,
					"producer %d FIFO inversion: take of %d [%v,%v] wholly precedes take of earlier-put %d [%v,%v]",
					prod, p.Value, t.Invoke, t.Respond, maxSeen.Value, maxSeen.Invoke, maxSeen.Respond)
			}
			if t.Invoke > maxSeen.Invoke {
				maxSeen = t
			}
		}
	}
	return errs
}
