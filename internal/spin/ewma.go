package spin

import "sync/atomic"

// EWMA is the shared fixed-point exponentially-weighted moving average the
// adaptive controllers are built on: the spin-budget calibrator (this
// package), the elimination arena's width/patience adaptor
// (internal/exchanger), and the hand-off fabric's shard-width controller
// (internal/shard) all smooth one cheap per-operation signal through the
// same filter — α = 1/8, eight fractional bits — so their time constants
// and numeric behavior stay comparable across subsystems.
//
// The read-modify-write in Observe is deliberately racy: concurrent
// observers may lose updates, but every controller using this filter is a
// heuristic whose surviving updates still move the average toward the
// recent signal mean, and a CAS loop here would put a contended word on
// the hot path of structures whose whole point is avoiding one.
type EWMA struct {
	bits atomic.Uint64
}

// ewmaShift is the fixed-point fraction width of the accumulator;
// alphaShift makes the smoothing factor α = 1/8.
const (
	ewmaShift  = 8
	alphaShift = 3
)

// Init seeds the average at v (integer units). Call before the EWMA is
// shared between goroutines.
func (e *EWMA) Init(v uint64) { e.bits.Store(v << ewmaShift) }

// Observe folds one sample (integer units) into the average and returns
// the updated value truncated to integer units. Lost updates under
// concurrency only soften the signal.
func (e *EWMA) Observe(sample uint64) uint64 {
	v := e.bits.Load()
	v += (sample << ewmaShift >> alphaShift) - (v >> alphaShift)
	e.bits.Store(v)
	return v >> ewmaShift
}

// Value returns the current average truncated to integer units.
func (e *EWMA) Value() uint64 { return e.bits.Load() >> ewmaShift }

// Half reports whether the current average is at least one half — the
// natural threshold when the samples are a 0/1 event indicator (e.g. "was
// this completion a steal") and the controller wants "most of them are".
func (e *EWMA) Half() bool { return e.bits.Load() >= 1<<(ewmaShift-1) }
