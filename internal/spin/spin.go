// Package spin provides bounded busy-wait and backoff helpers used by the
// synchronous queue implementations.
//
// The paper's pragmatics section prescribes a spin-then-park waiting policy:
// on multiprocessors, a thread next in line for fulfillment spins briefly
// (about one quarter of a context-switch time) before parking, which handles
// near-simultaneous producer/consumer "flybys" without descheduling either
// thread. On a uniprocessor spinning is pure overhead, so the spin budget
// collapses to zero there.
package spin

import (
	"runtime"
	"sync/atomic"
	"time"

	"synchq/internal/metrics"
)

// multicore records whether more than one logical CPU is available to the
// scheduler. It is sampled once at startup; GOMAXPROCS changes at runtime are
// deliberately ignored, mirroring the paper's static platform check.
var multicore = runtime.GOMAXPROCS(0) > 1

// Multicore reports whether spinning can be productive on this host, i.e.
// whether a counterpart thread can make progress while we busy-wait.
func Multicore() bool { return multicore }

// Default spin budgets, chosen to approximate the paper's "one quarter of a
// typical context switch": a parked/unparked goroutine handoff costs on the
// order of a few microseconds, so a few hundred to a few thousand cheap loop
// iterations is the right order of magnitude.
const (
	// MaxTimedSpins is the spin budget before parking when a deadline is
	// set. Timed waits re-check the clock, so the budget is smaller.
	MaxTimedSpins = 32
	// MaxUntimedSpins is the spin budget before parking when waiting
	// indefinitely.
	MaxUntimedSpins = MaxTimedSpins * 16
)

// TimedSpins returns the platform-appropriate spin budget for a timed wait:
// zero on a uniprocessor, MaxTimedSpins otherwise.
func TimedSpins() int {
	if !multicore {
		return 0
	}
	return MaxTimedSpins
}

// UntimedSpins returns the platform-appropriate spin budget for an untimed
// wait: zero on a uniprocessor, MaxUntimedSpins otherwise.
func UntimedSpins() int {
	if !multicore {
		return 0
	}
	return MaxUntimedSpins
}

// Pause performs one cheap spin iteration. It occasionally yields the
// processor so that, even under GOMAXPROCS=1, a spinning goroutine cannot
// starve the counterpart it is waiting for. The i argument is the caller's
// loop counter.
func Pause(i int) {
	if i&15 == 15 {
		runtime.Gosched()
	}
}

// MeteredPause is Pause plus a spin-counter tick on h (nil-safe). Spin
// loops that already batch their own counts should keep doing so and call
// Pause directly — per-iteration atomics on an instrumented hot loop are
// exactly the overhead batching avoids; this helper is for loops that are
// not themselves throughput-critical.
func MeteredPause(i int, h *metrics.Handle) {
	h.Inc(metrics.Spins)
	Pause(i)
}

// EndPhase records a completed busy-wait phase — from the wait's start t0
// to now — into h's spin-time histogram. Wait loops call it exactly once
// per wait: at the spin→park transition when the budget runs out, or at
// fulfillment when the wait never parked (then the whole wait was the spin
// phase). Together with the parker's park-time recording this yields the
// spin-vs-park breakdown of the waiting policy. Nil-safe on h and a no-op
// on a zero t0, so uninstrumented loops pay only the branch.
func EndPhase(h *metrics.Handle, t0 int64) {
	h.Since(metrics.SpinNs, t0)
}

// Backoff implements randomized-free exponential backoff for CAS retry
// loops. The zero value is ready to use.
type Backoff struct {
	n    int
	caps int // consecutive waits spent at the cap since the last reset
}

// backoffMaxShift caps the exponential ramp (a 1<<backoffMaxShift ns sleep);
// backoffCapResets is how many consecutive cap-level waits are tolerated
// before the ramp restarts from the beginning.
const (
	backoffMaxShift  = 8
	backoffCapResets = 4
)

// Wait backs off for a duration that doubles with each call, starting from a
// single yield and capping at a small sleep. It resets automatically after
// the cap is reached several times, which avoids unbounded punishment of an
// unlucky thread: after backoffCapResets consecutive cap-level sleeps the
// ramp restarts from a single yield, so a thread that was merely unlucky
// gets to probe cheaply again instead of sleeping at the cap forever.
func (b *Backoff) Wait() {
	if b.n < backoffMaxShift {
		b.n++
	} else {
		b.caps++
		if b.caps >= backoffCapResets {
			b.caps = 0
			b.n = 1 // restart the ramp at the initial yield
		}
	}
	if b.n <= 3 {
		runtime.Gosched()
		return
	}
	// 1<<4 .. 1<<8 iterations of yielding, then a timed sleep as a last
	// resort under pathological contention.
	if b.n < backoffMaxShift {
		for i := 0; i < 1<<b.n; i++ {
			runtime.Gosched()
		}
		return
	}
	time.Sleep(time.Duration(1<<b.n) * time.Nanosecond)
}

// Reset clears the backoff state after a successful operation.
func (b *Backoff) Reset() { b.n, b.caps = 0, 0 }

// Counter is a cache-padded event counter used by the benchmark harness and
// the stress tester to tally transfers without introducing false sharing
// between threads that would distort the measurements.
type Counter struct {
	_ [64]byte
	v atomic.Int64
	_ [64]byte
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store sets the counter to v.
func (c *Counter) Store(v int64) { c.v.Store(v) }
