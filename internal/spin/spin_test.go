package spin

import (
	"sync"
	"testing"
)

func TestBudgetsRespectPlatform(t *testing.T) {
	timed, untimed := TimedSpins(), UntimedSpins()
	if Multicore() {
		if timed != MaxTimedSpins || untimed != MaxUntimedSpins {
			t.Fatalf("multicore budgets = (%d,%d), want (%d,%d)",
				timed, untimed, MaxTimedSpins, MaxUntimedSpins)
		}
	} else {
		if timed != 0 || untimed != 0 {
			t.Fatalf("uniprocessor budgets = (%d,%d), want (0,0)", timed, untimed)
		}
	}
	if MaxUntimedSpins <= MaxTimedSpins {
		t.Fatal("untimed spin budget should exceed timed budget")
	}
}

func TestPauseDoesNotBlock(t *testing.T) {
	// Pause must always return promptly, including the yield iterations.
	for i := 0; i < 100; i++ {
		Pause(i)
	}
}

func TestBackoffGrowsAndResets(t *testing.T) {
	var b Backoff
	for i := 0; i < 12; i++ {
		b.Wait() // must never block indefinitely
	}
	if b.n == 0 {
		t.Fatal("backoff never grew")
	}
	b.Reset()
	if b.n != 0 {
		t.Fatalf("Reset left n=%d", b.n)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-2)
	if c.Load() != 3 {
		t.Fatalf("Load = %d, want 3", c.Load())
	}
	c.Store(10)
	if c.Load() != 10 {
		t.Fatalf("Load = %d, want 10", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, rounds = 8, 10000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*rounds {
		t.Fatalf("Load = %d, want %d", c.Load(), workers*rounds)
	}
}

func TestBackoffPeriodicCapReset(t *testing.T) {
	// Pin the promised sequence: the shift ramps 1..backoffMaxShift, holds
	// at the cap for backoffCapResets-1 further waits, then restarts from
	// the initial yield instead of sleeping at the cap forever.
	var b Backoff
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, // ramp
		8, 8, 8, // held at cap (caps = 1..3)
		1, 2, // reset fired on the 4th cap-level wait, ramp restarts
	}
	for i, w := range want {
		b.Wait()
		if b.n != w {
			t.Fatalf("after wait %d: n = %d, want %d", i+1, b.n, w)
		}
	}
	b.Reset()
	if b.n != 0 || b.caps != 0 {
		t.Fatalf("Reset left n=%d caps=%d", b.n, b.caps)
	}
}

func TestCalibratorAdaptsWithinBounds(t *testing.T) {
	if !Multicore() {
		t.Skip("calibrator is inert on a uniprocessor")
	}
	c := NewCalibrator()
	if got := c.Untimed(); got != MaxUntimedSpins {
		t.Fatalf("initial untimed budget = %d, want ceiling %d", got, MaxUntimedSpins)
	}
	// Instant fulfillments (spun=0) must decay the budget to the floor —
	// and never below it.
	for i := 0; i < 200; i++ {
		c.Observe(0, false)
	}
	if got := c.Untimed(); got != MaxTimedSpins {
		t.Fatalf("after instant fulfillments: untimed = %d, want floor %d", got, MaxTimedSpins)
	}
	if got := c.Timed(); got != MaxTimedSpins>>4 {
		t.Fatalf("timed = %d, want %d", got, MaxTimedSpins>>4)
	}
	// Parked waits must push it back to the ceiling — and never above.
	for i := 0; i < 200; i++ {
		c.Observe(MaxUntimedSpins, true)
	}
	if got := c.Untimed(); got != MaxUntimedSpins {
		t.Fatalf("after parked waits: untimed = %d, want ceiling %d", got, MaxUntimedSpins)
	}
	if got := c.Timed(); got != MaxTimedSpins {
		t.Fatalf("timed = %d, want %d", got, MaxTimedSpins)
	}
	// A mid-range signal settles between the bounds: fulfilled after 100
	// spins → signal 200.
	for i := 0; i < 200; i++ {
		c.Observe(100, false)
	}
	if got := c.Untimed(); got <= MaxTimedSpins || got >= MaxUntimedSpins {
		t.Fatalf("mid-range untimed = %d, want strictly between %d and %d",
			got, MaxTimedSpins, MaxUntimedSpins)
	}
}
