package spin

import (
	"sync"
	"testing"
)

func TestBudgetsRespectPlatform(t *testing.T) {
	timed, untimed := TimedSpins(), UntimedSpins()
	if Multicore() {
		if timed != MaxTimedSpins || untimed != MaxUntimedSpins {
			t.Fatalf("multicore budgets = (%d,%d), want (%d,%d)",
				timed, untimed, MaxTimedSpins, MaxUntimedSpins)
		}
	} else {
		if timed != 0 || untimed != 0 {
			t.Fatalf("uniprocessor budgets = (%d,%d), want (0,0)", timed, untimed)
		}
	}
	if MaxUntimedSpins <= MaxTimedSpins {
		t.Fatal("untimed spin budget should exceed timed budget")
	}
}

func TestPauseDoesNotBlock(t *testing.T) {
	// Pause must always return promptly, including the yield iterations.
	for i := 0; i < 100; i++ {
		Pause(i)
	}
}

func TestBackoffGrowsAndResets(t *testing.T) {
	var b Backoff
	for i := 0; i < 12; i++ {
		b.Wait() // must never block indefinitely
	}
	if b.n == 0 {
		t.Fatal("backoff never grew")
	}
	b.Reset()
	if b.n != 0 {
		t.Fatalf("Reset left n=%d", b.n)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-2)
	if c.Load() != 3 {
		t.Fatalf("Load = %d, want 3", c.Load())
	}
	c.Store(10)
	if c.Load() != 10 {
		t.Fatalf("Load = %d, want 10", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, rounds = 8, 10000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*rounds {
		t.Fatalf("Load = %d, want %d", c.Load(), workers*rounds)
	}
}
