package spin

import "sync/atomic"

// Calibrator adapts a structure's spin-before-park budget to the observed
// fulfillment latency, replacing the static MaxTimedSpins/MaxUntimedSpins
// policy when the caller accepts the defaults. The paper's target is "spin
// for about one quarter of a context switch": how many loop iterations that
// is depends on the machine, the load, and how promptly counterparts show
// up, so the calibrator learns it online.
//
// Each completed wait reports Observe(spun, parked):
//
//   - a wait fulfilled while still spinning suggests the budget has
//     headroom — a little more than the observed spin count would have
//     sufficed even if the counterpart had been slightly slower, so the
//     signal is 2×spun;
//   - a wait that had to park means spinning was not enough; the signal
//     pushes the budget toward the ceiling, since a budget that parks
//     anyway only pays the spin cost on top of the context switch.
//
// Signals feed the shared EWMA filter (α = 1/8, fixed-point; see EWMA)
// whose value, clamped to [MaxTimedSpins, MaxUntimedSpins] — the old
// constants demoted to floor and ceiling — becomes the untimed budget. The
// timed budget keeps the static policy's 1:16 ratio (timed waits re-check
// the clock each iteration, so their loop is an order of magnitude more
// expensive).
//
// The EWMA's racy read-modify-write is fine here: the budget is a
// heuristic and every surviving update still moves it toward the recent
// signal mean. On a uniprocessor the calibrator is inert and both budgets
// are zero, matching the static policy.
type Calibrator struct {
	_      [64]byte // keep the hot words off neighbors' cache lines
	ewma   EWMA
	budget atomic.Uint32
	_      [60]byte
}

// NewCalibrator returns a calibrator whose budget starts at the static
// ceiling (the pre-adaptive default), adapting downward as evidence
// accumulates.
func NewCalibrator() *Calibrator {
	c := &Calibrator{}
	c.ewma.Init(MaxUntimedSpins)
	c.budget.Store(MaxUntimedSpins)
	return c
}

// Observe feeds one completed wait into the calibrator: spun is how many
// spin iterations the waiter used, parked whether it gave up spinning and
// blocked. Call only for waits that ended in fulfillment — timeouts and
// cancellations say nothing about how long fulfillment takes.
func (c *Calibrator) Observe(spun int, parked bool) {
	if !multicore {
		return
	}
	signal := uint64(spun) * 2
	if parked || signal > MaxUntimedSpins {
		signal = MaxUntimedSpins
	}
	b := uint32(c.ewma.Observe(signal))
	if b < MaxTimedSpins {
		b = MaxTimedSpins
	}
	if b > MaxUntimedSpins {
		b = MaxUntimedSpins
	}
	c.budget.Store(b)
}

// Untimed returns the current spin budget for unbounded waits: zero on a
// uniprocessor, otherwise the adapted budget within
// [MaxTimedSpins, MaxUntimedSpins].
func (c *Calibrator) Untimed() int {
	if !multicore {
		return 0
	}
	return int(c.budget.Load())
}

// Timed returns the current spin budget for deadline waits: the untimed
// budget scaled by the static policy's 1:16 ratio, i.e. within
// [MaxTimedSpins/16, MaxTimedSpins]. Zero on a uniprocessor.
func (c *Calibrator) Timed() int {
	if !multicore {
		return 0
	}
	return int(c.budget.Load()) >> 4
}
