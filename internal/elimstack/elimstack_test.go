package elimstack

import (
	"sync"
	"testing"
	"time"
)

func TestSequentialLIFO(t *testing.T) {
	s := New[int](0, 0)
	for i := 0; i < 100; i++ {
		s.Push(i)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	for i := 99; i >= 0; i-- {
		v, ok := s.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop succeeded on empty stack")
	}
	if !s.Empty() {
		t.Fatal("stack not empty after drain")
	}
}

func TestEmptyPopDoesNotStealFromNobody(t *testing.T) {
	s := New[int](2, time.Millisecond)
	t0 := time.Now()
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop fabricated a value")
	}
	// The final elimination attempt is bounded by the patience.
	if time.Since(t0) > time.Second {
		t.Fatal("empty Pop took far longer than its patience")
	}
}

func TestEliminationPairsPushWithPop(t *testing.T) {
	// With an empty backing stack, a pop waiting in the arena can be
	// satisfied directly by a push that loses its first CAS... that race
	// is hard to force, but a concurrent storm must conserve values
	// whichever path each op takes.
	s := New[int64](4, 50*time.Microsecond)
	const producers, perProducer = 4, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				s.Push(id<<32 | i)
			}
		}(int64(p))
	}
	var mu sync.Mutex
	seen := make(map[int64]bool)
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			got := 0
			for got < producers*perProducer/4 {
				v, ok := s.Pop()
				if !ok {
					continue
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d popped twice", v)
				}
				seen[v] = true
				mu.Unlock()
				got++
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("popped %d distinct values, want %d", len(seen), producers*perProducer)
	}
	if !s.Empty() {
		t.Fatal("stack not empty after balanced run")
	}
}

func TestMixedPushPopStress(t *testing.T) {
	s := New[int](0, 0)
	var wg sync.WaitGroup
	var popped sync.Map
	const workers, rounds = 4, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s.Push(base + i)
				if v, ok := s.Pop(); ok {
					if _, dup := popped.LoadOrStore(v, true); dup {
						t.Errorf("value %d popped twice", v)
					}
				}
			}
		}(w * rounds * 10)
	}
	wg.Wait()
}
