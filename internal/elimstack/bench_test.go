package elimstack

import (
	"sync"
	"testing"

	"synchq/internal/treiber"
)

// Plain Treiber versus elimination-backoff under a concurrent push/pop
// storm. On hardware with real parallelism the elimination variant pulls
// ahead as contention rises (Hendler et al.'s result); on a small host
// the arena's patience dominates, mirroring Ablation C.
func BenchmarkStormPlainTreiber(b *testing.B) {
	var s treiber.Stack[int]
	storm(b, func(v int) { s.Push(v) }, func() { s.Pop() })
}

func BenchmarkStormEliminationBackoff(b *testing.B) {
	s := New[int](0, 0)
	storm(b, s.Push, func() { s.Pop() })
}

func storm(b *testing.B, push func(int), pop func()) {
	const workers = 4
	per := b.N / workers
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				push(i)
				pop()
			}
		}()
	}
	wg.Wait()
}
