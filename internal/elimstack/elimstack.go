// Package elimstack implements the elimination-backoff stack of Hendler,
// Shavit & Yerushalmi ("A Scalable Lock-Free Stack Algorithm", SPAA 2004)
// — reference [4] of the paper, cited as the demonstration that
// elimination makes stacks scale.
//
// The structure is a Treiber stack with an elimination arena as its
// backoff path: when a push or pop loses a CAS on the stack head (i.e.
// under contention), instead of retrying immediately it visits the arena,
// where a concurrent push/pop pair can cancel out — the push hands its
// value straight to the pop — without either thread ever touching the
// stack again. Pairs that meet leave in O(1) with zero stack contention;
// parties that find no partner return to the main stack.
//
// The paper's §5 discusses applying exactly this idea to synchronous
// queues (our Ablation C); this package provides the cited baseline in its
// original habitat, where the eliminated operations are push/pop rather
// than put/take.
package elimstack

import (
	"time"

	"synchq/internal/exchanger"
	"synchq/internal/treiber"
)

// Stack is a lock-free LIFO stack with elimination backoff. Use New to
// create one; a Stack must not be copied after first use.
type Stack[T any] struct {
	stack    treiber.Stack[T]
	arena    *exchanger.Arena[T]
	patience time.Duration
}

// New returns an empty elimination-backoff stack. slots sizes the arena
// (0 selects the platform default); patience bounds each elimination
// attempt (0 selects a small default suited to backoff).
func New[T any](slots int, patience time.Duration) *Stack[T] {
	if patience <= 0 {
		patience = 2 * time.Microsecond
	}
	return &Stack[T]{
		arena:    exchanger.NewArena[T](slots),
		patience: patience,
	}
}

// Push adds v to the stack, possibly by handing it directly to a
// concurrent Pop through the elimination arena.
func (s *Stack[T]) Push(v T) {
	for {
		if s.stack.TryPush(v) {
			return
		}
		// Contention on the head: back off into the arena.
		if s.arena.TryGive(v, s.patience) {
			return // eliminated against a concurrent pop
		}
	}
}

// Pop removes and returns the value on top of the stack, or a value handed
// over by a concurrent Push through the arena. The second result is false
// if the stack was observed empty and no partner appeared.
func (s *Stack[T]) Pop() (T, bool) {
	for {
		v, ok, contended := s.stack.TryPop()
		if ok {
			return v, true
		}
		if !contended {
			// Genuinely empty: one last elimination attempt
			// catches a concurrent push, then give up.
			if v, ok := s.arena.TryTake(s.patience); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
		// Contention on the head: back off into the arena.
		if v, ok := s.arena.TryTake(s.patience); ok {
			return v, true // eliminated against a concurrent push
		}
	}
}

// Len reports the number of elements in the backing stack (elements in
// flight through the arena are not counted). Snapshot only.
func (s *Stack[T]) Len() int { return s.stack.Len() }

// Empty reports whether the backing stack was observed empty.
func (s *Stack[T]) Empty() bool { return s.stack.Empty() }
