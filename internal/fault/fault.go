// Package fault is the deterministic fault-injection layer for the
// synchronous queue implementations. The paper's algorithms live or die on
// rare interleavings — a consumer canceling while it sits at the queue
// head, a fulfilling stack node whose partner times out mid-annihilation —
// and a load-only stress suite hits those windows by luck. An Injector
// makes the windows wide and the schedules replayable: every labeled retry
// site (the same sites internal/metrics already names) asks the injector
// whether to simulate a lost CAS race, preempt at a linearization-critical
// point, wake a parked waiter spuriously, or skew a timer, and the
// injector answers from a seeded splitmix64 PRNG, so any failing schedule
// reproduces exactly from its seed.
//
// The design mirrors internal/metrics' disabled-is-one-branch rule: every
// method is safe on a nil *Injector and does nothing, so production code
// pays exactly one predictable branch per hook when injection is off.
//
// Injection decisions are drawn from one shared atomic PRNG state. Under
// concurrency the interleaving of draws is scheduler-dependent (the point
// is to perturb real schedules), but a single-goroutine workload consumes
// the stream in program order, which is what the replay tests assert:
// same seed, same injected-event sequence.
package fault

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one injection point. Each CAS site corresponds to a retry arc
// in the paper's pseudocode (see DESIGN.md for the line-by-line map); the
// pause sites sit inside linearization-critical windows between two shared-
// memory steps of one operation.
type Site int

const (
	// QEnqueueCAS is the dual queue's tail-next insertion CAS (Listing 5
	// line 13). An injected failure replays the lost-insertion-race arc.
	QEnqueueCAS Site = iota
	// QFulfillCAS is the dual queue's item fulfillment CAS on the node at
	// head (Listing 5 line 28).
	QFulfillCAS
	// QCleanCAS is the dual queue's canceled-node unlink CAS (the cleanMe
	// protocol's interior unsplice).
	QCleanCAS
	// QEnqueuePause preempts between winning the insertion CAS and
	// swinging the tail, widening the lagging-tail window other threads
	// must help across.
	QEnqueuePause
	// QFulfillPause preempts between winning the item CAS and waking the
	// waiter — the classic lost-wakeup window.
	QFulfillPause
	// SPushCAS is the dual stack's head push CAS (Listing 6 line 11).
	SPushCAS
	// SFulfillCAS is the dual stack's fulfilling-node push CAS (Listing 6
	// line 18).
	SFulfillCAS
	// SCleanCAS is the dual stack's canceled-node unsplice CAS.
	SCleanCAS
	// SFulfillPause preempts after pushing a fulfilling node and before
	// matching it — the window in which other threads observe a
	// fulfilling top and must take the helping path (Listing 6 lines
	// 26–31).
	SFulfillPause
	// SHelpPause preempts on entry to the stack's helping branch.
	SHelpPause
	// XSlotCAS is the exchanger's arena slot claim CAS.
	XSlotCAS
	// XFulfillCAS is the exchanger's partner claim/hole CAS.
	XFulfillCAS
	// XFulfillPause preempts between claiming a partner's slot and
	// filling its hole.
	XFulfillPause
	// QCloseRacePause preempts the dual queue's enqueue arm between
	// reading closed == false and linking the new node — the window in
	// which Close can complete its eviction sweep before the node is
	// reachable, so only the enqueuer's post-link re-check can evict it.
	QCloseRacePause
	// SCloseRacePause is the same window in the dual stack's push arm:
	// between the closed check and the head push CAS.
	SCloseRacePause
	// XArenaPause preempts a party that just lost the main-slot claim
	// race, between the collision and its excursion to an outer slot —
	// the window in which the adaptive arena's contention signal is being
	// formed and other parties reshape the active slot range under it.
	XArenaPause
	// ShardStealCAS is a sharded fabric's steal-probe claim: an injected
	// failure makes the scanning operation treat one shard's probe as a
	// lost race and move on to the next shard, exercising the rescue
	// loop's keep-searching arc.
	ShardStealCAS
	// ParkSpurious is a spurious unpark: park.Parker.Wait returns
	// Unparked without a permit, forcing waiters to re-validate state.
	ParkSpurious
	// TimerSkew perturbs the duration handed to a timed park, modeling
	// coarse or drifting timers.
	TimerSkew
	// PoolSpawnRacePause preempts an executor's Submit between passing
	// the shutdown check and committing a freshly spawned worker — the
	// window in which Shutdown's poison-pill sweep can run to completion
	// before the new worker is countable, so only the post-spawn re-check
	// can stop it from parking a full keep-alive.
	PoolSpawnRacePause
	// PoolAdmitPause preempts an executor's Submit between admission
	// (budget reservation, deadline check) and the hand-off offer,
	// widening the window in which a drain or shutdown overtakes an
	// accepted-but-not-yet-queued task.
	PoolAdmitPause
	// PoolRetireCAS is an executor worker's keep-alive retirement CAS: an
	// injected failure makes the idle worker treat its decrement as a
	// lost race and re-poll, exercising the CoreWorkers floor re-check.
	PoolRetireCAS
	// SegInstallCAS is the segmented core's cell install CAS (EMPTY→ITEM
	// or EMPTY→WAITER, and the zero-patience EMPTY→BROKEN poison): an
	// injected failure replays the lost-install arc, re-reading the cell
	// state before retrying.
	SegInstallCAS
	// SegResolveCAS is the segmented core's cell resolution CAS
	// (ITEM→DONE claim or WAITER→DONE delivery): an injected failure
	// replays the race against the installer's own abort.
	SegResolveCAS
	// SegAppendCAS is the segmented core's tail segment append CAS: an
	// injected failure replays the lost-append race, in which the spare
	// segment goes to the bounded free list and the walker re-reads next.
	SegAppendCAS
	// SegResolvePause preempts between winning a resolution CAS and
	// unparking the cell's waiter — the segmented core's lost-wakeup
	// window.
	SegResolvePause
	// SegCloseRacePause preempts between the segmented core's closed
	// check and the cell install CAS — the window in which Close can
	// complete its eviction sweep before the install is visible, so only
	// the installer's post-install re-check can evict it.
	SegCloseRacePause
	// SegBatchPause preempts between a batched operation's multi-cell
	// F&A claim and the per-cell resolution sweep — the window in which
	// the reserved run straddles concurrently arriving waiters, aborts,
	// and the Close eviction sweep, so the partial-fill unwind must
	// reconcile cells that changed state while the run was frozen.
	SegBatchPause
	// ShardGrowPause preempts a self-scaling fabric's controller between
	// deciding to activate shards and publishing the wider routing mask —
	// the window in which sweeps still run at the old width while the
	// contention evidence that triggered the grow keeps accumulating.
	ShardGrowPause
	// ShardDrainPause preempts a self-scaling fabric's controller inside
	// the deactivation window: the narrower routing mask is already
	// published (no new arrival routes to the retiring shards) but the
	// presence-bit repair sweep over the retiring shards has not run yet,
	// so waiters committed there are reachable only through the full-width
	// summaries the Dekker protocol reloads.
	ShardDrainPause

	// NumSites is the number of injection sites.
	NumSites
)

var siteNames = [NumSites]string{
	QEnqueueCAS:        "q-enqueue-cas",
	QFulfillCAS:        "q-fulfill-cas",
	QCleanCAS:          "q-clean-cas",
	QEnqueuePause:      "q-enqueue-pause",
	QFulfillPause:      "q-fulfill-pause",
	SPushCAS:           "s-push-cas",
	SFulfillCAS:        "s-fulfill-cas",
	SCleanCAS:          "s-clean-cas",
	SFulfillPause:      "s-fulfill-pause",
	SHelpPause:         "s-help-pause",
	XSlotCAS:           "x-slot-cas",
	XFulfillCAS:        "x-fulfill-cas",
	XFulfillPause:      "x-fulfill-pause",
	QCloseRacePause:    "q-close-race-pause",
	SCloseRacePause:    "s-close-race-pause",
	XArenaPause:        "x-arena-pause",
	ShardStealCAS:      "shard-steal-cas",
	ParkSpurious:       "park-spurious",
	TimerSkew:          "timer-skew",
	PoolSpawnRacePause: "pool-spawn-race-pause",
	PoolAdmitPause:     "pool-admit-pause",
	PoolRetireCAS:      "pool-retire-cas",
	SegInstallCAS:      "seg-install-cas",
	SegResolveCAS:      "seg-resolve-cas",
	SegAppendCAS:       "seg-append-cas",
	SegResolvePause:    "seg-resolve-pause",
	SegCloseRacePause:  "seg-close-race-pause",
	SegBatchPause:      "seg-batch-pause",
	ShardGrowPause:     "shard-grow-pause",
	ShardDrainPause:    "shard-drain-pause",
}

// String returns the site's stable name.
func (s Site) String() string {
	if s < 0 || s >= NumSites {
		return fmt.Sprintf("fault.Site(%d)", int(s))
	}
	return siteNames[s]
}

// Config tunes an Injector. Rates are per-query probabilities in [0, 1];
// a zero rate disables that hook class entirely (and consumes no PRNG
// draws, keeping disabled classes out of the replay stream).
type Config struct {
	// Seed seeds the splitmix64 stream. The same seed and the same
	// (single-threaded) query sequence yield the same decisions.
	Seed uint64
	// FailCASRate is the probability that a FailCAS query simulates a
	// lost CAS race.
	FailCASRate float64
	// PreemptRate is the probability that a Preempt query deschedules
	// the caller (Gosched, occasionally a short sleep).
	PreemptRate float64
	// SpuriousWakeRate is the probability that a parked waiter is woken
	// without a permit.
	SpuriousWakeRate float64
	// TimerSkewRate is the probability that a timed wait's duration is
	// perturbed by up to ±MaxTimerSkew.
	TimerSkewRate float64
	// MaxTimerSkew bounds the perturbation magnitude; zero selects
	// 200µs when TimerSkewRate is nonzero.
	MaxTimerSkew time.Duration
	// Budget, when positive, caps the total number of injected events;
	// after the budget is spent the injector answers "no" everywhere.
	// Essential for tests that force the first CAS at a site to fail
	// with rate 1 and still need the retry to succeed.
	Budget int64
	// Sites, when non-empty, restricts injection to the listed sites.
	Sites []Site
	// Record enables the injected-event log read back by Events.
	Record bool
	// RecordLimit bounds the event log; zero selects 4096.
	RecordLimit int
	// PreemptFunc, when non-nil, replaces the default Gosched/sleep
	// preemption. Deterministic tests use it as a gate: block the
	// injected goroutine on a channel to hold an interleaving window
	// open while the test probes it.
	PreemptFunc func(Site)
}

// Injector answers injection queries from a seeded PRNG. A nil *Injector
// is valid and injects nothing; create one with New or Chaos. An Injector
// is safe for concurrent use.
type Injector struct {
	state atomic.Uint64 // splitmix64 state

	seed         uint64
	failCAS      uint64 // probability thresholds on the full uint64 range
	preempt      uint64
	spurious     uint64
	timerSkew    uint64
	maxSkew      time.Duration
	siteMask     uint64 // bit i set = site i enabled
	budgeted     bool
	remaining    atomic.Int64
	preemptFunc  func(Site)
	counts       [NumSites]atomic.Int64
	recordLimit  int
	mu           sync.Mutex
	events       []Site
	recordActive bool
}

// threshold converts a probability to a uint64 comparison threshold.
func threshold(rate float64) uint64 {
	switch {
	case rate <= 0:
		return 0
	case rate >= 1:
		return math.MaxUint64
	default:
		return uint64(rate * float64(math.MaxUint64))
	}
}

// New returns an Injector configured by cfg.
func New(cfg Config) *Injector {
	j := &Injector{
		seed:         cfg.Seed,
		failCAS:      threshold(cfg.FailCASRate),
		preempt:      threshold(cfg.PreemptRate),
		spurious:     threshold(cfg.SpuriousWakeRate),
		timerSkew:    threshold(cfg.TimerSkewRate),
		maxSkew:      cfg.MaxTimerSkew,
		preemptFunc:  cfg.PreemptFunc,
		recordActive: cfg.Record,
		recordLimit:  cfg.RecordLimit,
	}
	j.state.Store(cfg.Seed)
	if j.maxSkew <= 0 {
		j.maxSkew = 200 * time.Microsecond
	}
	if j.recordLimit <= 0 {
		j.recordLimit = 4096
	}
	if len(cfg.Sites) == 0 {
		j.siteMask = math.MaxUint64
	} else {
		for _, s := range cfg.Sites {
			j.siteMask |= 1 << uint(s)
		}
	}
	if cfg.Budget > 0 {
		j.budgeted = true
		j.remaining.Store(cfg.Budget)
	}
	return j
}

// Chaos returns an Injector with the default chaos-mode rates: frequent
// enough to force every retry arc during a short stress run, rare enough
// that the structures still make progress.
func Chaos(seed uint64) *Injector {
	return New(Config{
		Seed:             seed,
		FailCASRate:      0.02,
		PreemptRate:      0.005,
		SpuriousWakeRate: 0.01,
		TimerSkewRate:    0.05,
	})
}

// next draws the next splitmix64 value. The additive state update is a
// single atomic add, so concurrent callers each receive a distinct,
// deterministic-by-interleaving value.
func (j *Injector) next() uint64 {
	z := j.state.Add(0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// fire decides whether to inject at site s with the given threshold, and
// tallies/records the event when it does.
func (j *Injector) fire(s Site, thresh uint64) bool {
	if thresh == 0 || j.siteMask&(1<<uint(s)) == 0 {
		return false
	}
	if j.next() > thresh {
		return false
	}
	if j.budgeted && j.remaining.Add(-1) < 0 {
		return false
	}
	j.counts[s].Add(1)
	if j.recordActive {
		j.mu.Lock()
		if len(j.events) < j.recordLimit {
			j.events = append(j.events, s)
		}
		j.mu.Unlock()
	}
	return true
}

// FailCAS reports whether the caller should treat its upcoming CAS as
// lost without attempting it. Callers must take the same retry arc a real
// lost race would take from a fresh snapshot — never a recovery path that
// assumes the contended word actually changed. Nil-safe.
func (j *Injector) FailCAS(s Site) bool {
	if j == nil {
		return false
	}
	return j.fire(s, j.failCAS)
}

// Preempt possibly deschedules the caller at a linearization-critical
// point: usually a Gosched, occasionally a short sleep, or the
// configured PreemptFunc. Nil-safe.
func (j *Injector) Preempt(s Site) {
	if j == nil || !j.fire(s, j.preempt) {
		return
	}
	if j.preemptFunc != nil {
		j.preemptFunc(s)
		return
	}
	if j.next()&7 == 0 {
		time.Sleep(50 * time.Microsecond)
	} else {
		runtime.Gosched()
	}
}

// SpuriousWake reports whether a parked waiter should wake without a
// permit. Waiters must re-validate their node and re-park. Nil-safe.
func (j *Injector) SpuriousWake() bool {
	if j == nil {
		return false
	}
	return j.fire(ParkSpurious, j.spurious)
}

// SkewTimer possibly perturbs a timed wait's duration by up to
// ±MaxTimerSkew. The result may be non-positive; timed waiters already
// treat that as an expired timer and re-check the real clock. Nil-safe.
func (j *Injector) SkewTimer(d time.Duration) time.Duration {
	if j == nil || !j.fire(TimerSkew, j.timerSkew) {
		return d
	}
	span := uint64(2*j.maxSkew + 1)
	return d + time.Duration(j.next()%span) - j.maxSkew
}

// Seed returns the seed the injector was built with, for replay banners.
func (j *Injector) Seed() uint64 {
	if j == nil {
		return 0
	}
	return j.seed
}

// Count returns the number of events injected at site s.
func (j *Injector) Count(s Site) int64 {
	if j == nil {
		return 0
	}
	return j.counts[s].Load()
}

// Total returns the number of events injected across all sites.
func (j *Injector) Total() int64 {
	if j == nil {
		return 0
	}
	var t int64
	for i := range j.counts {
		t += j.counts[i].Load()
	}
	return t
}

// Events returns a copy of the recorded injected-event sequence (nil
// unless Config.Record was set). For single-goroutine workloads the
// sequence is a deterministic function of the seed.
func (j *Injector) Events() []Site {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Site, len(j.events))
	copy(out, j.events)
	return out
}

// String renders the nonzero per-site injection counts ("quiet" when
// nothing fired). Nil-safe.
func (j *Injector) String() string {
	if j == nil {
		return "fault injection disabled"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", j.seed)
	for i := range j.counts {
		if v := j.counts[i].Load(); v != 0 {
			fmt.Fprintf(&b, " %s=%d", Site(i), v)
		}
	}
	if j.Total() == 0 {
		b.WriteString(" quiet")
	}
	return b.String()
}
