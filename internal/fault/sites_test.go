package fault

import "testing"

// TestEverySiteClassified guards the enumeration against a new site being
// added without a class: an unclassified site would silently drop out of
// every structure's Reachable set.
func TestEverySiteClassified(t *testing.T) {
	seen := make(map[Class]int)
	for _, s := range Sites() {
		c := s.Class()
		if c < ClassQueue || c > ClassAutoShard {
			t.Fatalf("site %s has invalid class %d", s, c)
		}
		seen[c]++
	}
	if len(Sites()) != int(NumSites) {
		t.Fatalf("Sites() returned %d of %d sites", len(Sites()), NumSites)
	}
	for c := ClassQueue; c <= ClassAutoShard; c++ {
		if seen[c] == 0 {
			t.Fatalf("class %s has no sites — classification table stale", c)
		}
	}
}

func TestSitesOfPartitions(t *testing.T) {
	total := 0
	for c := ClassQueue; c <= ClassAutoShard; c++ {
		total += len(SitesOf(c))
	}
	if total != int(NumSites) {
		t.Fatalf("classes must partition the sites: got %d of %d", total, NumSites)
	}

	// A queue-backed structure's set: queue + wait sites, nothing else.
	for _, s := range SitesOf(ClassQueue, ClassWait) {
		if c := s.Class(); c != ClassQueue && c != ClassWait {
			t.Fatalf("SitesOf(queue,wait) leaked %s (class %s)", s, c)
		}
	}
	if len(SitesOf(ClassShard)) != 1 || SitesOf(ClassShard)[0] != ShardStealCAS {
		t.Fatalf("shard class must hold exactly the steal site, got %v", SitesOf(ClassShard))
	}
	if len(SitesOf()) != 0 {
		t.Fatalf("SitesOf() with no classes must be empty")
	}
}
