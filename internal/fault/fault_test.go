package fault

import (
	"reflect"
	"testing"
	"time"
)

// drive runs a fixed single-goroutine query script against j and returns
// the decisions made.
func drive(j *Injector) []bool {
	var out []bool
	for i := 0; i < 400; i++ {
		out = append(out, j.FailCAS(QEnqueueCAS))
		out = append(out, j.FailCAS(SFulfillCAS))
		out = append(out, j.SpuriousWake())
		d := j.SkewTimer(time.Millisecond)
		out = append(out, d != time.Millisecond)
	}
	return out
}

func TestNilInjectorIsInert(t *testing.T) {
	var j *Injector
	if j.FailCAS(QEnqueueCAS) || j.SpuriousWake() {
		t.Fatal("nil injector injected")
	}
	j.Preempt(QFulfillPause)
	if d := j.SkewTimer(time.Second); d != time.Second {
		t.Fatalf("nil injector skewed timer: %v", d)
	}
	if j.Total() != 0 || j.Count(QEnqueueCAS) != 0 || j.Events() != nil || j.Seed() != 0 {
		t.Fatal("nil injector reported state")
	}
	if j.String() != "fault injection disabled" {
		t.Fatalf("nil String = %q", j.String())
	}
}

func TestSameSeedSameDecisionSequence(t *testing.T) {
	cfg := Config{Seed: 42, FailCASRate: 0.3, SpuriousWakeRate: 0.2, TimerSkewRate: 0.25, Record: true}
	a := drive(New(cfg))
	b := drive(New(cfg))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different decision sequences")
	}
	ea, eb := New(cfg), New(cfg)
	drive(ea)
	drive(eb)
	if !reflect.DeepEqual(ea.Events(), eb.Events()) {
		t.Fatal("same seed produced different event sequences")
	}
	if len(ea.Events()) == 0 {
		t.Fatal("no events recorded at these rates")
	}
}

func TestDifferentSeedDiverges(t *testing.T) {
	a := drive(New(Config{Seed: 1, FailCASRate: 0.3}))
	b := drive(New(Config{Seed: 2, FailCASRate: 0.3}))
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

func TestBudgetCapsInjection(t *testing.T) {
	j := New(Config{Seed: 7, FailCASRate: 1, Budget: 3})
	fired := 0
	for i := 0; i < 100; i++ {
		if j.FailCAS(QFulfillCAS) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want budget 3", fired)
	}
	if j.Total() != 3 {
		t.Fatalf("Total = %d, want 3", j.Total())
	}
}

func TestSiteFilter(t *testing.T) {
	j := New(Config{Seed: 9, FailCASRate: 1, Sites: []Site{SPushCAS}})
	if j.FailCAS(QEnqueueCAS) {
		t.Fatal("filtered site fired")
	}
	if !j.FailCAS(SPushCAS) {
		t.Fatal("enabled site did not fire at rate 1")
	}
	if j.Count(QEnqueueCAS) != 0 || j.Count(SPushCAS) != 1 {
		t.Fatal("counts disagree with filter")
	}
}

func TestPreemptFuncGate(t *testing.T) {
	var hit []Site
	j := New(Config{Seed: 3, PreemptRate: 1, PreemptFunc: func(s Site) { hit = append(hit, s) }})
	j.Preempt(SFulfillPause)
	j.Preempt(QFulfillPause)
	want := []Site{SFulfillPause, QFulfillPause}
	if !reflect.DeepEqual(hit, want) {
		t.Fatalf("PreemptFunc saw %v, want %v", hit, want)
	}
}

func TestSkewTimerBounded(t *testing.T) {
	maxSkew := 100 * time.Microsecond
	j := New(Config{Seed: 11, TimerSkewRate: 1, MaxTimerSkew: maxSkew})
	base := 500 * time.Microsecond
	for i := 0; i < 200; i++ {
		d := j.SkewTimer(base)
		if d < base-maxSkew || d > base+maxSkew {
			t.Fatalf("skewed duration %v outside [%v, %v]", d, base-maxSkew, base+maxSkew)
		}
	}
}

func TestZeroRatesConsumeNoPRNG(t *testing.T) {
	// A disabled hook class must not consume draws, or enabling one class
	// would change another's replay stream.
	a := New(Config{Seed: 5, FailCASRate: 0.5})
	b := New(Config{Seed: 5, FailCASRate: 0.5, SpuriousWakeRate: 0})
	var da, db []bool
	for i := 0; i < 100; i++ {
		b.SpuriousWake() // zero rate: must be a pure no-op
		da = append(da, a.FailCAS(QEnqueueCAS))
		db = append(db, b.FailCAS(QEnqueueCAS))
	}
	if !reflect.DeepEqual(da, db) {
		t.Fatal("disabled hook class consumed PRNG draws")
	}
}

func TestSiteStrings(t *testing.T) {
	seen := map[string]bool{}
	for s := Site(0); s < NumSites; s++ {
		n := s.String()
		if n == "" || seen[n] {
			t.Fatalf("site %d has empty or duplicate name %q", s, n)
		}
		seen[n] = true
	}
	if Site(-1).String() != "fault.Site(-1)" {
		t.Fatalf("out-of-range name = %q", Site(-1).String())
	}
}
