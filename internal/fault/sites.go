package fault

// Site enumeration and classification for coverage-driven harnesses.
//
// The chaos harness's Reachable properties assert that every fault site
// registered for a structure is actually hit during a run — a chaos
// schedule that no longer penetrates a site has silently stopped testing
// the interleavings behind it. That requires two things the injector's
// counters alone do not give: a way to enumerate the sites, and a way to
// know which sites a given structure can reach at all (a dual stack never
// queries the queue's sites, a plain core never queries the shard fabric's
// steal probe).

// Class groups the injection sites by the structure that queries them.
type Class int

const (
	// ClassQueue sites are queried by the dual queue (and everything
	// built on it: the transfer queue, queue-backed fabrics and pools).
	ClassQueue Class = iota
	// ClassStack sites are queried by the dual stack.
	ClassStack
	// ClassExchanger sites are queried by the elimination arena.
	ClassExchanger
	// ClassShard sites are queried by the sharded hand-off fabric.
	ClassShard
	// ClassWait sites are queried by the shared waiting machinery
	// (parker and timers) under every structure.
	ClassWait
	// ClassPool sites are queried by the executor tier (pool admission,
	// spawn, and retirement paths) above whatever structure backs it.
	ClassPool
	// ClassSeg sites are queried by the segment-backed hand-off core.
	ClassSeg
	// ClassAutoShard sites are queried only by a self-scaling fabric's
	// width controller. They are deliberately not in ClassShard: a
	// fixed-width fabric never changes width, so registering the
	// grow/drain windows as Reachable for it would make its coverage
	// verdict unsatisfiable.
	ClassAutoShard
)

// String returns the class's stable name.
func (c Class) String() string {
	switch c {
	case ClassQueue:
		return "queue"
	case ClassStack:
		return "stack"
	case ClassExchanger:
		return "exchanger"
	case ClassShard:
		return "shard"
	case ClassWait:
		return "wait"
	case ClassPool:
		return "pool"
	case ClassSeg:
		return "seg"
	case ClassAutoShard:
		return "auto-shard"
	default:
		return "invalid"
	}
}

// siteClasses maps each site to the structure class that queries it.
var siteClasses = [NumSites]Class{
	QEnqueueCAS:        ClassQueue,
	QFulfillCAS:        ClassQueue,
	QCleanCAS:          ClassQueue,
	QEnqueuePause:      ClassQueue,
	QFulfillPause:      ClassQueue,
	SPushCAS:           ClassStack,
	SFulfillCAS:        ClassStack,
	SCleanCAS:          ClassStack,
	SFulfillPause:      ClassStack,
	SHelpPause:         ClassStack,
	XSlotCAS:           ClassExchanger,
	XFulfillCAS:        ClassExchanger,
	XFulfillPause:      ClassExchanger,
	QCloseRacePause:    ClassQueue,
	SCloseRacePause:    ClassStack,
	XArenaPause:        ClassExchanger,
	ShardStealCAS:      ClassShard,
	ParkSpurious:       ClassWait,
	TimerSkew:          ClassWait,
	PoolSpawnRacePause: ClassPool,
	PoolAdmitPause:     ClassPool,
	PoolRetireCAS:      ClassPool,
	SegInstallCAS:      ClassSeg,
	SegResolveCAS:      ClassSeg,
	SegAppendCAS:       ClassSeg,
	SegResolvePause:    ClassSeg,
	SegCloseRacePause:  ClassSeg,
	SegBatchPause:      ClassSeg,
	ShardGrowPause:     ClassAutoShard,
	ShardDrainPause:    ClassAutoShard,
}

// Class returns the structure class that queries s.
func (s Site) Class() Class {
	if s < 0 || s >= NumSites {
		return Class(-1)
	}
	return siteClasses[s]
}

// Sites returns every injection site in declaration order.
func Sites() []Site {
	out := make([]Site, NumSites)
	for i := range out {
		out[i] = Site(i)
	}
	return out
}

// SitesOf returns, in declaration order, the sites queried by any of the
// given classes — the site set a structure composed of those classes can
// reach, and therefore the set a coverage harness should register as
// Reachable for it.
func SitesOf(classes ...Class) []Site {
	var mask uint64
	for _, c := range classes {
		mask |= 1 << uint(c)
	}
	var out []Site
	for s := Site(0); s < NumSites; s++ {
		if mask&(1<<uint(s.Class())) != 0 {
			out = append(out, s)
		}
	}
	return out
}
