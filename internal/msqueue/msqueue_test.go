package msqueue

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int]()
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue succeeded on empty queue")
	}
}

func TestEmptyAndLen(t *testing.T) {
	q := New[string]()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	q.Enqueue("a")
	q.Enqueue("b")
	if q.Empty() || q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	q.Dequeue()
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestSequentialMatchesModel(t *testing.T) {
	// Property: any sequence of enqueue/dequeue operations matches a
	// slice-based model.
	f := func(ops []int16) bool {
		q := New[int16]()
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				q.Enqueue(op)
				model = append(model, op)
			} else {
				v, ok := q.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentConservation(t *testing.T) {
	q := New[int64]()
	const producers, perProducer = 8, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				q.Enqueue(id<<32 | i)
			}
		}(int64(p))
	}
	var mu sync.Mutex
	seen := make(map[int64]bool)
	var cg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 8; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					select {
					case <-stop:
						// Drain once more to avoid a race
						// between stop and a late enqueue.
						for {
							v, ok := q.Dequeue()
							if !ok {
								return
							}
							mu.Lock()
							seen[v] = true
							mu.Unlock()
						}
					default:
						continue
					}
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d dequeued twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stop)
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("dequeued %d distinct values, want %d", len(seen), producers*perProducer)
	}
}

func TestPerProducerOrderPreserved(t *testing.T) {
	// FIFO per producer: values from one producer must come out in the
	// order they went in, even with racing producers.
	q := New[int64]()
	const producers, perProducer = 4, 3000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				q.Enqueue(id<<32 | i)
			}
		}(int64(p))
	}
	wg.Wait()
	last := make(map[int64]int64)
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		id, seq := v>>32, v&0xffffffff
		if prev, seen := last[id]; seen && seq <= prev {
			t.Fatalf("producer %d: sequence %d after %d", id, seq, prev)
		}
		last[id] = seq
	}
}
