package msqueue

import (
	"sync"
	"testing"
)

// Sequential enqueue/dequeue round trip.
func BenchmarkSequentialRoundTrip(b *testing.B) {
	q := New[int]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(i)
		q.Dequeue()
	}
}

// Producer/consumer pairs hammering the queue; the M&S queue is the
// contention profile the synchronous dual queue inherits.
func BenchmarkConcurrentPingPong(b *testing.B) {
	q := New[int]()
	var wg sync.WaitGroup
	const pairs = 2
	per := b.N / pairs
	b.ResetTimer()
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(i)
			}
		}()
		go func() {
			defer wg.Done()
			got := 0
			for got < per {
				if _, ok := q.Dequeue(); ok {
					got++
				}
			}
		}()
	}
	wg.Wait()
}
