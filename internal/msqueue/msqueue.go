// Package msqueue implements the Michael & Scott nonblocking FIFO queue
// (PODC 1996), the classic lock-free queue from which the paper's
// synchronous dual queue is derived.
//
// The structure is a singly linked list with head and tail pointers and a
// permanent dummy node at the head. Enqueue swings tail.next with CAS and
// then the tail pointer itself; lagging tails are helped forward by any
// thread that observes them. Dequeue advances head past the dummy.
package msqueue

import "sync/atomic"

type node[T any] struct {
	value T
	next  atomic.Pointer[node[T]]
}

// Queue is a lock-free multi-producer multi-consumer FIFO queue. Use New to
// create one. A Queue must not be copied after first use.
type Queue[T any] struct {
	head atomic.Pointer[node[T]]
	tail atomic.Pointer[node[T]]
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	dummy := &node[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Enqueue appends v to the tail of the queue. It never blocks; under
// contention some CAS attempts retry, but system-wide progress is
// guaranteed (lock freedom).
func (q *Queue[T]) Enqueue(v T) {
	n := &node[T]{value: v}
	for {
		t := q.tail.Load()
		next := t.next.Load()
		if t != q.tail.Load() {
			continue // inconsistent snapshot
		}
		if next != nil {
			// Tail is lagging; help swing it forward.
			q.tail.CompareAndSwap(t, next)
			continue
		}
		if t.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(t, n)
			return
		}
	}
}

// Dequeue removes and returns the value at the head of the queue. The
// second result is false if the queue was observed empty.
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	for {
		h := q.head.Load()
		t := q.tail.Load()
		next := h.next.Load()
		if h != q.head.Load() {
			continue
		}
		if h == t {
			if next == nil {
				return zero, false // empty
			}
			// Tail lagging behind an in-progress enqueue; help.
			q.tail.CompareAndSwap(t, next)
			continue
		}
		if q.head.CompareAndSwap(h, next) {
			// Read the value only after winning the CAS: the winner is
			// unique, so no concurrent dequeuer can be zeroing next.value
			// while we read it. (The 1996 paper reads before the CAS
			// because its freelist can recycle the node; under GC the node
			// cannot be reclaimed while we hold it.)
			v := next.value
			// Drop the value reference from the new dummy so the
			// GC is not blocked by long-lived dummies (the paper's
			// "forget references" pragmatic).
			var z T
			next.value = z
			return v, true
		}
	}
}

// Empty reports whether the queue was observed empty. The answer may be
// stale immediately.
func (q *Queue[T]) Empty() bool {
	h := q.head.Load()
	return h.next.Load() == nil
}

// Len counts the elements by walking the list. It is linear time, intended
// for tests and diagnostics only, and is only a snapshot under concurrency.
func (q *Queue[T]) Len() int {
	n := 0
	for cur := q.head.Load().next.Load(); cur != nil; cur = cur.next.Load() {
		n++
	}
	return n
}
