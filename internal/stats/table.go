package stats

import (
	"fmt"
	"strings"
)

// Table accumulates a benchmark result grid — one row per sweep level, one
// column per series (algorithm) — and renders it as aligned text or CSV,
// mirroring the figures in the paper's evaluation section.
type Table struct {
	Title    string
	XLabel   string // name of the sweep variable (e.g. "pairs")
	YLabel   string // unit of the cells (e.g. "ns/transfer")
	Columns  []string
	rows     []row
	rowIndex map[string]int
}

type row struct {
	x     string
	cells []float64
	set   []bool
}

// NewTable returns a table with the given series columns.
func NewTable(title, xlabel, ylabel string, columns []string) *Table {
	return &Table{
		Title:    title,
		XLabel:   xlabel,
		YLabel:   ylabel,
		Columns:  append([]string(nil), columns...),
		rowIndex: make(map[string]int),
	}
}

// Set records the cell for sweep level x and series col.
func (t *Table) Set(x string, col string, v float64) {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		panic(fmt.Sprintf("stats: unknown column %q", col))
	}
	ri, ok := t.rowIndex[x]
	if !ok {
		ri = len(t.rows)
		t.rowIndex[x] = ri
		t.rows = append(t.rows, row{
			x:     x,
			cells: make([]float64, len(t.Columns)),
			set:   make([]bool, len(t.Columns)),
		})
	}
	t.rows[ri].cells[ci] = v
	t.rows[ri].set[ci] = true
}

// Render draws the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s (%s)\n", t.Title, t.YLabel)
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.rows {
		if len(r.x) > widths[0] {
			widths[0] = len(r.x)
		}
	}
	cells := make([][]string, len(t.rows))
	for i, r := range t.rows {
		cells[i] = make([]string, len(t.Columns))
		for j := range t.Columns {
			if r.set[j] {
				cells[i][j] = formatCell(r.cells[j])
			} else {
				cells[i][j] = "-"
			}
		}
	}
	for j, c := range t.Columns {
		widths[j+1] = len(c)
		for i := range cells {
			if len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0], t.XLabel)
	for j, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", widths[j+1], c)
	}
	b.WriteByte('\n')
	for i, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r.x)
		for j := range t.Columns {
			fmt.Fprintf(&b, "  %*s", widths[j+1], cells[i][j])
		}
		_ = i
		b.WriteByte('\n')
	}
	return b.String()
}

// formatCell prints large values without decimals, small ones with one.
func formatCell(v float64) string {
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(csvEscape(r.x))
		for j := range t.Columns {
			b.WriteByte(',')
			if r.set[j] {
				fmt.Fprintf(&b, "%g", r.cells[j])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
