package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("Stddev = %v, want sqrt(2)", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestQuantileEndpointsAndMidpoint(t *testing.T) {
	s := []float64{10, 20, 30, 40}
	if Quantile(s, 0) != 10 || Quantile(s, 1) != 40 {
		t.Fatal("quantile endpoints wrong")
	}
	if got := Quantile(s, 0.5); got != 25 {
		t.Fatalf("median = %v, want 25 (interpolated)", got)
	}
}

func TestQuantileProperties(t *testing.T) {
	// Quantiles are monotone in q and bounded by min/max.
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		qa := math.Abs(math.Mod(q1, 1))
		qb := math.Abs(math.Mod(q2, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		return va <= vb && va >= xs[0] && vb <= xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile of empty sample did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1, 5, 9.9, 100} {
		h.Observe(x)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	// -1 clamps into bucket 0; 100 clamps into the last bucket.
	if h.Buckets[0] != 3 { // -1, 0, 1
		t.Fatalf("bucket 0 = %d, want 3", h.Buckets[0])
	}
	if h.Buckets[4] != 2 { // 9.9, 100
		t.Fatalf("bucket 4 = %d, want 2", h.Buckets[4])
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatal("Render drew no bars")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := NewTable("T", "x", "ns", []string{"a", "b"})
	tb.Set("1", "a", 100)
	tb.Set("1", "b", 200.5)
	tb.Set("2", "a", 300)
	text := tb.Render()
	if !strings.Contains(text, "T (ns)") || !strings.Contains(text, "100") {
		t.Fatalf("Render missing content:\n%s", text)
	}
	// Missing cell renders as "-".
	if !strings.Contains(text, "-") {
		t.Fatalf("missing cell not marked:\n%s", text)
	}
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), csv)
	}
	if lines[0] != "x,a,b" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[1] != "1,100,200.5" {
		t.Fatalf("CSV row = %q", lines[1])
	}
	if lines[2] != "2,300," {
		t.Fatalf("CSV row with missing cell = %q", lines[2])
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("", "x", "ns", []string{`col,with"comma`})
	tb.Set("r1", `col,with"comma`, 1)
	csv := tb.CSV()
	if !strings.Contains(csv, `"col,with""comma"`) {
		t.Fatalf("CSV not escaped: %q", csv)
	}
}

func TestTableUnknownColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set with unknown column did not panic")
		}
	}()
	tb := NewTable("", "x", "ns", []string{"a"})
	tb.Set("1", "nope", 1)
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "n=3") || !strings.Contains(str, "mean=2.0") {
		t.Fatalf("String = %q", str)
	}
}
