package stats

import (
	"strings"
	"testing"
)

func chartFixture() *Table {
	tb := NewTable("Fig", "pairs", "ns", []string{"slow", "fast"})
	tb.Set("1", "slow", 1000)
	tb.Set("1", "fast", 250)
	tb.Set("2", "slow", 2000)
	tb.Set("2", "fast", 500)
	return tb
}

func TestChartRendersGroupsAndBars(t *testing.T) {
	out := chartFixture().Chart(40)
	if !strings.Contains(out, "pairs = 1") || !strings.Contains(out, "pairs = 2") {
		t.Fatalf("chart missing groups:\n%s", out)
	}
	if !strings.Contains(out, "█") {
		t.Fatalf("chart drew no bars:\n%s", out)
	}
	// The global max (2000) must own the longest bar.
	lines := strings.Split(out, "\n")
	longest, longestLine := 0, ""
	for _, l := range lines {
		if n := strings.Count(l, "█"); n > longest {
			longest = n
			longestLine = l
		}
	}
	if !strings.Contains(longestLine, "slow") || !strings.Contains(longestLine, "2000") {
		t.Fatalf("longest bar is not the global max:\n%s", out)
	}
}

func TestChartEmptyTable(t *testing.T) {
	tb := NewTable("E", "x", "ns", []string{"a"})
	if out := tb.Chart(40); strings.Contains(out, "█") {
		t.Fatalf("empty table drew bars:\n%s", out)
	}
}

func TestSpeedupTable(t *testing.T) {
	sp := chartFixture().SpeedupTable("slow")
	out := sp.Render()
	// fast is 4x the slow baseline on both rows.
	if !strings.Contains(out, "4.0") {
		t.Fatalf("speedup not computed:\n%s", out)
	}
	if strings.Contains(out, "slow") && !strings.Contains(out, "vs slow") {
		t.Fatalf("baseline column should be dropped:\n%s", out)
	}
}

func TestSpeedupTableUnknownBaselinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown baseline did not panic")
		}
	}()
	chartFixture().SpeedupTable("nope")
}
