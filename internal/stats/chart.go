package stats

import (
	"fmt"
	"strings"
)

// Chart renders the table as a grouped horizontal bar chart — an ASCII
// stand-in for the paper's line plots. Each sweep level becomes a group;
// within a group there is one bar per series, scaled to the global
// maximum, so both the per-level ordering and the cross-level growth are
// visible at a glance.
func (t *Table) Chart(width int) string {
	if width < 10 {
		width = 60
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s (%s)\n", t.Title, t.YLabel)
	}

	var max float64
	for _, r := range t.rows {
		for j := range t.Columns {
			if r.set[j] && r.cells[j] > max {
				max = r.cells[j]
			}
		}
	}
	if max <= 0 {
		return b.String()
	}

	nameW := 0
	for _, c := range t.Columns {
		if len(c) > nameW {
			nameW = len(c)
		}
	}

	for _, r := range t.rows {
		fmt.Fprintf(&b, "%s = %s\n", t.XLabel, r.x)
		for j, c := range t.Columns {
			if !r.set[j] {
				continue
			}
			n := int(r.cells[j] / max * float64(width))
			if n < 1 && r.cells[j] > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-*s %s %s\n",
				nameW, c, strings.Repeat("█", n), formatCell(r.cells[j]))
		}
	}
	return b.String()
}

// SpeedupTable derives a new table expressing every series as a speedup
// relative to the named baseline column (baseline ns / series ns), the
// form in which the paper states its headline results ("outperforms ...
// by a factor of three"). Cells where either value is missing are left
// unset.
func (t *Table) SpeedupTable(baseline string) *Table {
	bi := -1
	for i, c := range t.Columns {
		if c == baseline {
			bi = i
			break
		}
	}
	if bi < 0 {
		panic(fmt.Sprintf("stats: unknown baseline column %q", baseline))
	}
	var cols []string
	for i, c := range t.Columns {
		if i != bi {
			cols = append(cols, c)
		}
	}
	out := NewTable(t.Title+" — speedup vs "+baseline, t.XLabel, "x", cols)
	for _, r := range t.rows {
		if !r.set[bi] || r.cells[bi] == 0 {
			continue
		}
		for j, c := range t.Columns {
			if j == bi || !r.set[j] || r.cells[j] == 0 {
				continue
			}
			out.Set(r.x, c, r.cells[bi]/r.cells[j])
		}
	}
	return out
}
