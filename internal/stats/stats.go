// Package stats provides the small statistics toolkit used by the
// benchmark harness: summaries (mean/median/percentiles), fixed-bucket
// histograms, and plain-text table/CSV rendering of benchmark series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary of xs. It copies xs before sorting, so the
// argument is not disturbed. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)

	var sum, sumsq float64
	for _, x := range s {
		sum += x
		sumsq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0 // floating point wobble
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		Min:    s[0],
		Max:    s[len(s)-1],
		P50:    Quantile(s, 0.50),
		P90:    Quantile(s, 0.90),
		P99:    Quantile(s, 0.99),
	}
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the sorted sample s
// using linear interpolation between order statistics. It panics if s is
// empty or unsorted inputs are the caller's responsibility.
func Quantile(s []float64, q float64) float64 {
	if len(s) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f",
		s.N, s.Mean, s.Stddev, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Histogram is a fixed-bucket histogram over [Lo, Hi) with uniform bucket
// width; observations outside the range are clamped into the end buckets.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int64
	count   int64
}

// NewHistogram returns a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n)}
}

// Observe records x.
func (h *Histogram) Observe(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Render draws the histogram as rows of "lo..hi | #### count", width
// columns wide at the longest bar.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	var max int64
	for _, b := range h.Buckets {
		if b > max {
			max = b
		}
	}
	out := ""
	bw := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, b := range h.Buckets {
		bar := 0
		if max > 0 {
			bar = int(float64(b) / float64(max) * float64(width))
		}
		out += fmt.Sprintf("%10.1f..%-10.1f |%-*s %d\n",
			h.Lo+float64(i)*bw, h.Lo+float64(i+1)*bw, width, repeat('#', bar), b)
	}
	return out
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
