package baseline

import (
	"synchq/internal/sem"
)

// Hanson is Hanson's classic synchronous queue (Listing 1), built from
// three semaphores: sync indicates whether item is valid, send holds one
// minus the number of pending puts, and recv holds zero minus the number of
// pending takes. Every transfer costs three synchronization events per side
// and normally blocks at least once per operation — the overhead the paper
// is written to eliminate. As the paper notes, the algorithm offers no
// simple way to support timeout, so Hanson provides only the demand
// operations Put and Take. Use NewHanson to create one.
type Hanson[T any] struct {
	item T
	sync *sem.Semaphore
	send *sem.Semaphore
	recv *sem.Semaphore
}

// NewHanson returns an empty Hanson synchronous queue.
func NewHanson[T any]() *Hanson[T] {
	return &Hanson[T]{
		sync: sem.New(0),
		send: sem.New(1),
		recv: sem.New(0),
	}
}

// Take receives a value, waiting for a producer (Listing 1, lines 06–12).
func (q *Hanson[T]) Take() T {
	q.recv.Acquire()
	x := q.item
	q.sync.Release()
	q.send.Release()
	return x
}

// Put transfers v, waiting for a consumer (Listing 1, lines 14–19).
func (q *Hanson[T]) Put(v T) {
	q.send.Acquire()
	q.item = v
	q.recv.Release()
	q.sync.Acquire()
}

// HansonFast is Hanson's queue over fast-path semaphores (sem.Fast): the
// "streamlined synchronization points in common execution scenarios by
// using a fast-path acquire sequence" configuration the paper attributes
// to early releases of dl.util.concurrent (§3.1). The algorithm is
// identical; only the semaphore implementation changes, which isolates
// how much of Hanson's cost is semaphore overhead versus the protocol's
// six synchronization events. Use NewHansonFast to create one.
type HansonFast[T any] struct {
	item T
	sync *sem.Fast
	send *sem.Fast
	recv *sem.Fast
}

// NewHansonFast returns an empty fast-path Hanson queue.
func NewHansonFast[T any]() *HansonFast[T] {
	return &HansonFast[T]{
		sync: sem.NewFast(0),
		send: sem.NewFast(1),
		recv: sem.NewFast(0),
	}
}

// Take receives a value, waiting for a producer.
func (q *HansonFast[T]) Take() T {
	q.recv.Acquire()
	x := q.item
	q.sync.Release()
	q.send.Release()
	return x
}

// Put transfers v, waiting for a consumer.
func (q *HansonFast[T]) Put(v T) {
	q.send.Acquire()
	q.item = v
	q.recv.Release()
	q.sync.Acquire()
}
