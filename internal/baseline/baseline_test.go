package baseline

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sq is the demand-only surface every baseline shares.
type sq interface {
	Put(int)
	Take() int
}

// runBasicSuite exercises the demand operations common to every baseline.
func runBasicSuite(t *testing.T, name string, mk func() sq) {
	t.Run(name+"/PairsPutWithTake", func(t *testing.T) {
		q := mk()
		done := make(chan int)
		go func() { done <- q.Take() }()
		q.Put(42)
		if got := <-done; got != 42 {
			t.Fatalf("Take = %d, want 42", got)
		}
	})
	t.Run(name+"/PutBlocksUntilConsumer", func(t *testing.T) {
		q := mk()
		var delivered atomic.Bool
		go func() {
			q.Put(1)
			delivered.Store(true)
		}()
		time.Sleep(20 * time.Millisecond)
		if delivered.Load() {
			t.Fatal("Put returned before a consumer arrived")
		}
		if got := q.Take(); got != 1 {
			t.Fatalf("Take = %d, want 1", got)
		}
	})
	t.Run(name+"/ConservationUnderLoad", func(t *testing.T) {
		q := mk()
		const producers, consumers, perProducer = 4, 4, 250
		var mu sync.Mutex
		seen := make(map[int]bool)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					q.Put(id<<20 | i)
				}
			}(p)
		}
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < producers*perProducer/consumers; i++ {
					v := q.Take()
					mu.Lock()
					if seen[v] {
						t.Errorf("value %d delivered twice", v)
					}
					seen[v] = true
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if len(seen) != producers*perProducer {
			t.Fatalf("delivered %d values, want %d", len(seen), producers*perProducer)
		}
	})
}

func TestAllBaselinesBasicContract(t *testing.T) {
	runBasicSuite(t, "Naive", func() sq { return NewNaive[int]() })
	runBasicSuite(t, "Hanson", func() sq { return NewHanson[int]() })
	runBasicSuite(t, "HansonFast", func() sq { return NewHansonFast[int]() })
	runBasicSuite(t, "Java5Fair", func() sq { return NewJava5[int](true) })
	runBasicSuite(t, "Java5Unfair", func() sq { return NewJava5[int](false) })
	runBasicSuite(t, "Channel", func() sq { return chanAdapter{NewChannel[int]()} })
}

type chanAdapter struct{ c *Channel[int] }

func (a chanAdapter) Put(v int) { a.c.Put(v) }
func (a chanAdapter) Take() int { return a.c.Take() }

func TestJava5OfferPoll(t *testing.T) {
	for _, fair := range []bool{true, false} {
		q := NewJava5[int](fair)
		if q.Offer(1) {
			t.Fatal("Offer succeeded with no consumer")
		}
		if _, ok := q.Poll(); ok {
			t.Fatal("Poll succeeded with no producer")
		}
		done := make(chan int)
		go func() { done <- q.Take() }()
		deadline := time.Now().Add(5 * time.Second)
		for q.WaitingConsumers() != 1 {
			if time.Now().After(deadline) {
				t.Fatal("consumer never queued")
			}
			time.Sleep(100 * time.Microsecond)
		}
		if !q.Offer(9) {
			t.Fatal("Offer failed with a waiting consumer")
		}
		if got := <-done; got != 9 {
			t.Fatalf("Take = %d, want 9", got)
		}
	}
}

func TestJava5Timeouts(t *testing.T) {
	q := NewJava5[int](false)
	t0 := time.Now()
	if q.OfferTimeout(1, 20*time.Millisecond) {
		t.Fatal("OfferTimeout succeeded with no consumer")
	}
	if time.Since(t0) < 15*time.Millisecond {
		t.Fatal("OfferTimeout returned early")
	}
	if q.WaitingProducers() != 0 {
		t.Fatal("timed-out producer still queued")
	}
	if _, ok := q.PollTimeout(20 * time.Millisecond); ok {
		t.Fatal("PollTimeout succeeded with no producer")
	}
	if q.WaitingConsumers() != 0 {
		t.Fatal("timed-out consumer still queued")
	}
}

func TestJava5FairIsFIFO(t *testing.T) {
	q := NewJava5[int](true)
	const n = 6
	for i := 0; i < n; i++ {
		v := i
		go q.Put(v)
		deadline := time.Now().Add(5 * time.Second)
		for q.WaitingProducers() != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("producer %d never queued", i)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	for i := 0; i < n; i++ {
		if got := q.Take(); got != i {
			t.Fatalf("Take = %d, want %d (FIFO violated)", got, i)
		}
	}
}

func TestJava5UnfairIsLIFO(t *testing.T) {
	q := NewJava5[int](false)
	const n = 6
	for i := 0; i < n; i++ {
		v := i
		go q.Put(v)
		deadline := time.Now().Add(5 * time.Second)
		for q.WaitingProducers() != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("producer %d never queued", i)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	for i := n - 1; i >= 0; i-- {
		if got := q.Take(); got != i {
			t.Fatalf("Take = %d, want %d (LIFO violated)", got, i)
		}
	}
}

func TestJava5TimeoutFulfillRace(t *testing.T) {
	// Offer with tiny patience racing Poll with tiny patience: both must
	// agree on whether the transfer happened.
	q := NewJava5[int](false)
	for i := 0; i < 200; i++ {
		got := make(chan int, 1)
		go func() {
			if v, ok := q.PollTimeout(time.Millisecond); ok {
				got <- v
			} else {
				got <- -1
			}
		}()
		sent := q.OfferTimeout(i, time.Millisecond)
		v := <-got
		if sent != (v != -1) {
			t.Fatalf("iteration %d: producer says %v, consumer got %d", i, sent, v)
		}
	}
}

func TestChannelTimedSurface(t *testing.T) {
	q := NewChannel[int]()
	if q.Offer(1) {
		t.Fatal("Offer succeeded with no consumer")
	}
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll succeeded with no producer")
	}
	if q.OfferTimeout(1, 10*time.Millisecond) {
		t.Fatal("OfferTimeout succeeded with no consumer")
	}
	if _, ok := q.PollTimeout(10 * time.Millisecond); ok {
		t.Fatal("PollTimeout succeeded with no producer")
	}
	go q.Put(5)
	if v, ok := q.PollTimeout(time.Second); !ok || v != 5 {
		t.Fatalf("PollTimeout = (%d,%v), want (5,true)", v, ok)
	}
	done := make(chan int)
	go func() { done <- q.Take() }()
	if !q.OfferTimeout(6, time.Second) {
		t.Fatal("OfferTimeout failed with a waiting consumer")
	}
	if got := <-done; got != 6 {
		t.Fatalf("Take = %d, want 6", got)
	}
}

func TestNaivePutSerializesProducers(t *testing.T) {
	// The putting flag admits one producer at a time; with two producers
	// and two consumers everything still transfers exactly once.
	q := NewNaive[int]()
	var wg sync.WaitGroup
	results := make(chan int, 2)
	wg.Add(2)
	go func() { defer wg.Done(); q.Put(1) }()
	go func() { defer wg.Done(); q.Put(2) }()
	results <- q.Take()
	results <- q.Take()
	wg.Wait()
	close(results)
	sum := 0
	for v := range results {
		sum += v
	}
	if sum != 3 {
		t.Fatalf("transferred sum = %d, want 3", sum)
	}
}

func TestHansonSixSynchronizationEvents(t *testing.T) {
	// Behavioural check of Hanson's protocol: after one complete
	// transfer, the semaphores are back in their initial state, ready
	// for the next producer.
	q := NewHanson[int]()
	done := make(chan int)
	go func() { done <- q.Take() }()
	q.Put(1)
	<-done
	if q.send.Permits() != 1 {
		t.Fatalf("send semaphore = %d after transfer, want 1", q.send.Permits())
	}
	if q.sync.Permits() != 0 || q.recv.Permits() != 0 {
		t.Fatalf("sync/recv = %d/%d after transfer, want 0/0",
			q.sync.Permits(), q.recv.Permits())
	}
}
