package baseline

import (
	"time"
)

// Channel adapts an unbuffered Go channel to the synchronous queue
// interface. It is not one of the paper's comparators — the paper predates
// Go — but it is the idiomatic Go rendezvous primitive and therefore the
// natural extra baseline for a Go reproduction: an unbuffered channel send
// completes only when a receiver takes the value, which is exactly
// synchronous hand-off. The runtime services waiting senders and receivers
// in FIFO order, so it is closest in spirit to the fair algorithms. Use
// NewChannel to create one.
type Channel[T any] struct {
	ch chan T
}

// NewChannel returns a synchronous queue backed by an unbuffered channel.
func NewChannel[T any]() *Channel[T] {
	return &Channel[T]{ch: make(chan T)}
}

// Put transfers v, waiting for a consumer.
func (q *Channel[T]) Put(v T) { q.ch <- v }

// Take receives a value, waiting for a producer.
func (q *Channel[T]) Take() T { return <-q.ch }

// Offer transfers v only if a consumer is already waiting.
func (q *Channel[T]) Offer(v T) bool {
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// OfferTimeout transfers v, waiting up to d for a consumer.
func (q *Channel[T]) OfferTimeout(v T, d time.Duration) bool {
	if d <= 0 {
		return q.Offer(v)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case q.ch <- v:
		return true
	case <-t.C:
		return false
	}
}

// Poll receives a value only if a producer is already waiting.
func (q *Channel[T]) Poll() (T, bool) {
	select {
	case v := <-q.ch:
		return v, true
	default:
		var zero T
		return zero, false
	}
}

// PollTimeout receives a value, waiting up to d for a producer.
func (q *Channel[T]) PollTimeout(d time.Duration) (T, bool) {
	if d <= 0 {
		return q.Poll()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case v := <-q.ch:
		return v, true
	case <-t.C:
		var zero T
		return zero, false
	}
}
