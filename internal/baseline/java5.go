package baseline

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"synchq/internal/fairlock"
	"synchq/internal/park"
)

// Node states for the Java 5 algorithm's waiter nodes.
const (
	j5Waiting int32 = iota
	j5Fulfilled
	j5Canceled
)

// j5node is one waiting producer or consumer. Producers store their item
// before publishing the node; consumers' items are written by the
// fulfilling producer before the node is unparked.
type j5node[T any] struct {
	item  *T
	state atomic.Int32
	p     *park.Parker
	elem  *list.Element // position in its wait list, guarded by the queue lock
}

// waitList is one of the two collections of Listing 4
// (waitingProducers/waitingConsumers), generalized — as the Java 5 code is
// — to act as a FIFO queue in fair mode and a LIFO stack in unfair mode.
// All access is guarded by the queue's single lock.
type waitList[T any] struct {
	l    list.List
	fifo bool
}

// push appends a waiter and remembers its position for O(1) removal.
func (w *waitList[T]) push(n *j5node[T]) {
	n.elem = w.l.PushBack(n)
}

// pop removes and fulfills the next eligible waiter, skipping (and
// discarding) canceled nodes. It returns nil if no waiter remains. The
// returned node has already won its state CAS, so the caller owns it.
func (w *waitList[T]) pop() *j5node[T] {
	for {
		var e *list.Element
		if w.fifo {
			e = w.l.Front()
		} else {
			e = w.l.Back()
		}
		if e == nil {
			return nil
		}
		n := w.l.Remove(e).(*j5node[T])
		n.elem = nil
		if n.state.CompareAndSwap(j5Waiting, j5Fulfilled) {
			return n
		}
		// Canceled while queued: discard and keep looking.
	}
}

// remove unlinks a canceled node if it is still in the list.
func (w *waitList[T]) remove(n *j5node[T]) {
	if n.elem != nil {
		w.l.Remove(n.elem)
		n.elem = nil
	}
}

// Java5 is the Java SE 5.0 SynchronousQueue algorithm (Listing 4): a single
// lock protects a list of waiting producers and a list of waiting
// consumers. In fair mode the lists are FIFO queues and the entry lock is
// itself FIFO-fair (as in Java 5); in unfair mode the lists are LIFO stacks
// under an ordinary (barging) mutex. A thread that finds its counterpart
// already waiting performs one lock acquisition; otherwise it enqueues
// itself and blocks — three synchronization events per transfer versus
// Hanson's six. Use NewJava5 to create one.
type Java5[T any] struct {
	lock             sync.Locker
	waitingProducers waitList[T]
	waitingConsumers waitList[T]
	fair             bool
	canceledSentinel *T // placeholder; reserved for parity with core sentinels
}

// NewJava5 returns an empty Java 5-style synchronous queue; fair selects
// FIFO pairing under a fair entry lock, unfair selects LIFO pairing under a
// regular mutex.
func NewJava5[T any](fair bool) *Java5[T] {
	q := &Java5[T]{fair: fair, canceledSentinel: new(T)}
	if fair {
		q.lock = &fairlock.Mutex{}
	} else {
		q.lock = &sync.Mutex{}
	}
	q.waitingProducers.fifo = fair
	q.waitingConsumers.fifo = fair
	return q
}

// Put transfers v, waiting for a consumer (Listing 4, lines 30–43).
func (q *Java5[T]) Put(v T) {
	q.put(v, time.Time{})
}

// Offer transfers v only if a consumer is already waiting.
func (q *Java5[T]) Offer(v T) bool {
	return q.put(v, time.Unix(0, 1)) // expired deadline: no waiting
}

// OfferTimeout transfers v, waiting up to d for a consumer.
func (q *Java5[T]) OfferTimeout(v T, d time.Duration) bool {
	if d <= 0 {
		return q.Offer(v)
	}
	return q.put(v, time.Now().Add(d))
}

func (q *Java5[T]) put(v T, deadline time.Time) bool {
	q.lock.Lock()
	if node := q.waitingConsumers.pop(); node != nil {
		q.lock.Unlock()
		node.item = &v
		node.p.Unpark()
		return true
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		q.lock.Unlock()
		return false
	}
	node := &j5node[T]{item: &v, p: park.New()}
	q.waitingProducers.push(node)
	q.lock.Unlock()
	return q.await(node, &q.waitingProducers, deadline)
}

// Take receives a value, waiting for a producer (Listing 4, lines 15–28).
func (q *Java5[T]) Take() T {
	v, _ := q.take(time.Time{})
	return v
}

// Poll receives a value only if a producer is already waiting.
func (q *Java5[T]) Poll() (T, bool) {
	return q.take(time.Unix(0, 1))
}

// PollTimeout receives a value, waiting up to d for a producer.
func (q *Java5[T]) PollTimeout(d time.Duration) (T, bool) {
	if d <= 0 {
		return q.Poll()
	}
	return q.take(time.Now().Add(d))
}

func (q *Java5[T]) take(deadline time.Time) (T, bool) {
	var zero T
	q.lock.Lock()
	if node := q.waitingProducers.pop(); node != nil {
		q.lock.Unlock()
		v := *node.item
		node.p.Unpark()
		return v, true
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		q.lock.Unlock()
		return zero, false
	}
	node := &j5node[T]{p: park.New()}
	q.waitingConsumers.push(node)
	q.lock.Unlock()
	if !q.await(node, &q.waitingConsumers, deadline) {
		return zero, false
	}
	return *node.item, true
}

// await blocks on the node until it is fulfilled or the deadline passes.
// On timeout it cancels the node and removes it from its wait list; if the
// cancellation loses to a concurrent fulfiller, the fulfillment is accepted
// instead.
func (q *Java5[T]) await(node *j5node[T], lst *waitList[T], deadline time.Time) bool {
	for {
		if node.p.ParkDeadline(deadline) {
			// Unparked: the fulfiller committed before waking us.
			return true
		}
		// Deadline passed.
		if node.state.CompareAndSwap(j5Waiting, j5Canceled) {
			q.lock.Lock()
			lst.remove(node)
			q.lock.Unlock()
			return false
		}
		// A fulfiller won the race; its unpark is in flight.
		node.p.Park()
		return true
	}
}

// WaitingProducers returns the number of queued producers (tests only).
func (q *Java5[T]) WaitingProducers() int {
	q.lock.Lock()
	defer q.lock.Unlock()
	return q.waitingProducers.l.Len()
}

// WaitingConsumers returns the number of queued consumers (tests only).
func (q *Java5[T]) WaitingConsumers() int {
	q.lock.Lock()
	defer q.lock.Unlock()
	return q.waitingConsumers.l.Len()
}
