// Package baseline implements the synchronous queue algorithms the paper
// compares against: the naive monitor-based queue (Listing 3), Hanson's
// three-semaphore queue (Listing 1), the Java SE 5.0 SynchronousQueue in
// both fair (two FIFO queues) and unfair (two stacks) modes (Listing 4),
// and — as a Go-native comparator not in the paper — an unbuffered channel.
//
// All baselines transfer values of a type parameter T and, where the
// original algorithm supports it, provide the same poll/offer/timeout
// surface as the paper's new algorithms so the benchmark harness can drive
// every implementation uniformly.
package baseline

import (
	"synchq/internal/monitor"
)

// Naive is the naive monitor-based synchronous queue of Listing 3: a single
// monitor serializes access to a single item slot and a putting flag, and
// every state change awakens all waiting threads — the quadratic-wakeup
// pattern responsible for its poor performance. Use NewNaive to create
// one.
type Naive[T any] struct {
	mon     monitor.Monitor
	putting bool
	item    *T
}

// NewNaive returns an empty naive synchronous queue.
func NewNaive[T any]() *Naive[T] {
	return &Naive[T]{}
}

// Take receives a value, waiting for a producer (Listing 3, lines 04–11).
func (q *Naive[T]) Take() T {
	q.mon.Lock()
	defer q.mon.Unlock()
	for q.item == nil {
		q.mon.Wait()
	}
	e := *q.item
	q.item = nil
	q.mon.NotifyAll()
	return e
}

// Put transfers v, waiting both for its turn to insert and for a consumer
// to take the item (Listing 3, lines 13–24).
func (q *Naive[T]) Put(v T) {
	q.mon.Lock()
	defer q.mon.Unlock()
	for q.putting {
		q.mon.Wait()
	}
	q.putting = true
	q.item = &v
	q.mon.NotifyAll()
	for q.item != nil {
		q.mon.Wait()
	}
	q.putting = false
	q.mon.NotifyAll()
}
