// Package treiber implements Treiber's lock-free stack (IBM RJ 5118, 1986),
// the classic nonblocking LIFO structure from which the paper's synchronous
// dual stack is derived.
//
// The stack is a singly linked list manipulated only through CAS on the head
// pointer. In Go, node reuse (the ABA hazard of the original algorithm) is
// rendered safe by garbage collection: a node can never be recycled while
// any thread still holds a reference to it.
package treiber

import "sync/atomic"

type node[T any] struct {
	value T
	next  *node[T]
}

// Stack is a lock-free multi-producer multi-consumer LIFO stack. The zero
// value is an empty stack ready to use. A Stack must not be copied after
// first use.
type Stack[T any] struct {
	head atomic.Pointer[node[T]]
}

// Push adds v to the top of the stack.
func (s *Stack[T]) Push(v T) {
	n := &node[T]{value: v}
	for {
		h := s.head.Load()
		n.next = h
		if s.head.CompareAndSwap(h, n) {
			return
		}
	}
}

// Pop removes and returns the value on top of the stack. The second result
// is false if the stack was observed empty.
func (s *Stack[T]) Pop() (T, bool) {
	var zero T
	for {
		h := s.head.Load()
		if h == nil {
			return zero, false
		}
		if s.head.CompareAndSwap(h, h.next) {
			return h.value, true
		}
	}
}

// TryPush makes a single CAS attempt to add v, reporting success. A false
// return means the head moved underneath us — contention — and is the
// signal an elimination-backoff wrapper uses to divert to its arena.
func (s *Stack[T]) TryPush(v T) bool {
	h := s.head.Load()
	return s.head.CompareAndSwap(h, &node[T]{value: v, next: h})
}

// TryPop makes a single CAS attempt to remove the top value. ok reports
// success; when ok is false, contended distinguishes a lost race (true)
// from an empty stack (false).
func (s *Stack[T]) TryPop() (v T, ok, contended bool) {
	h := s.head.Load()
	if h == nil {
		var zero T
		return zero, false, false
	}
	if s.head.CompareAndSwap(h, h.next) {
		return h.value, true, false
	}
	var zero T
	return zero, false, true
}

// Peek returns the value on top of the stack without removing it.
func (s *Stack[T]) Peek() (T, bool) {
	var zero T
	h := s.head.Load()
	if h == nil {
		return zero, false
	}
	return h.value, true
}

// Empty reports whether the stack was observed empty.
func (s *Stack[T]) Empty() bool { return s.head.Load() == nil }

// Len counts the elements by walking the list. Linear time; a snapshot only.
func (s *Stack[T]) Len() int {
	n := 0
	for cur := s.head.Load(); cur != nil; cur = cur.next {
		n++
	}
	return n
}
