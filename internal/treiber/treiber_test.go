package treiber

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLIFOOrder(t *testing.T) {
	var s Stack[int]
	for i := 0; i < 100; i++ {
		s.Push(i)
	}
	for i := 99; i >= 0; i-- {
		v, ok := s.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop succeeded on empty stack")
	}
}

func TestPeekAndLen(t *testing.T) {
	var s Stack[string]
	if _, ok := s.Peek(); ok || !s.Empty() || s.Len() != 0 {
		t.Fatal("fresh stack misreports state")
	}
	s.Push("a")
	s.Push("b")
	if v, ok := s.Peek(); !ok || v != "b" {
		t.Fatalf("Peek = (%q,%v), want (b,true)", v, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// Peek must not remove.
	if v, _ := s.Pop(); v != "b" {
		t.Fatalf("Pop = %q after Peek, want b", v)
	}
}

func TestSequentialMatchesModel(t *testing.T) {
	f := func(ops []int16) bool {
		var s Stack[int16]
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				s.Push(op)
				model = append(model, op)
			} else {
				v, ok := s.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[len(model)-1] {
					return false
				}
				model = model[:len(model)-1]
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentConservation(t *testing.T) {
	var s Stack[int64]
	const producers, perProducer = 8, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				s.Push(id<<32 | i)
			}
		}(int64(p))
	}
	wg.Wait()
	seen := make(map[int64]bool)
	for {
		v, ok := s.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("popped %d distinct values, want %d", len(seen), producers*perProducer)
	}
}

func TestConcurrentPushPop(t *testing.T) {
	var s Stack[int]
	var wg sync.WaitGroup
	var popped sync.Map
	const workers, rounds = 4, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s.Push(base + i)
				if v, ok := s.Pop(); ok {
					if _, dup := popped.LoadOrStore(v, true); dup {
						t.Errorf("value %d popped twice", v)
					}
				}
			}
		}(w * rounds * 10)
	}
	wg.Wait()
}

func TestTryPushTryPop(t *testing.T) {
	var s Stack[int]
	if !s.TryPush(1) {
		t.Fatal("TryPush failed on an uncontended stack")
	}
	v, ok, contended := s.TryPop()
	if !ok || contended || v != 1 {
		t.Fatalf("TryPop = (%d,%v,%v), want (1,true,false)", v, ok, contended)
	}
	// Empty: not ok, not contended.
	if _, ok, contended := s.TryPop(); ok || contended {
		t.Fatalf("TryPop on empty = (%v,%v), want (false,false)", ok, contended)
	}
}

func TestTryOpsUnderContentionEventuallySucceed(t *testing.T) {
	var s Stack[int]
	var wg sync.WaitGroup
	pushed := make([]int, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 1000; i++ {
				if s.TryPush(id*10000 + i) {
					n++
				}
			}
			pushed[id] = n
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range pushed {
		total += n
	}
	if s.Len() != total {
		t.Fatalf("Len = %d, want %d successful pushes", s.Len(), total)
	}
}
