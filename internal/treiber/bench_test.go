package treiber

import (
	"sync"
	"testing"
)

// Sequential push/pop round trip.
func BenchmarkSequentialRoundTrip(b *testing.B) {
	var s Stack[int]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(i)
		s.Pop()
	}
}

// Concurrent push/pop storm on one head word — the contention profile the
// synchronous dual stack inherits and that elimination (internal/exchanger)
// is designed to relieve.
func BenchmarkConcurrentPushPop(b *testing.B) {
	var s Stack[int]
	var wg sync.WaitGroup
	const workers = 4
	per := b.N / workers
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Push(i)
				s.Pop()
			}
		}()
	}
	wg.Wait()
}
