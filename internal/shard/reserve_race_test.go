package shard

import (
	"testing"
	"time"

	"synchq/internal/core"
)

// This file pins down two interleavings that are too narrow for the stress
// suites to hit reliably, using a hooked shard to stop the fabric exactly
// inside the window under test.
//
// The first is the announce/link race in the pinned-reservation paths:
// Fabric.ReserveTake and ReservePut announce the home shard's presence bit
// BEFORE the shard reservation links. A sweep probing in that window finds
// the flagged shard empty and clears the bit; if the fabric did not
// re-establish it after linking, the reservation would be invisible to
// every future sweep — a counterpart then commits to waiting on its own
// shard and both strand forever, with no rescue.
//
// The second is Close linearization: Close shuts shards down in index
// order, so Closed() must not report true (from shard 0) while transfers
// can still complete on higher-index shards.

// hookedDual wraps a shard and runs a callback immediately before the
// reservation links — i.e., inside the fabric's announce-to-link window —
// and before Close.
type hookedDual struct {
	Dual[int64]
	beforeReserveTake func()
	beforeReservePut  func()
	beforeClose       func()
}

func (h *hookedDual) ReserveTake() (int64, core.Ticket[int64], bool) {
	if h.beforeReserveTake != nil {
		h.beforeReserveTake()
	}
	return h.Dual.ReserveTake()
}

func (h *hookedDual) ReservePut(v int64) (core.Ticket[int64], bool) {
	if h.beforeReservePut != nil {
		h.beforeReservePut()
	}
	return h.Dual.ReservePut(v)
}

func (h *hookedDual) Close() {
	if h.beforeClose != nil {
		h.beforeClose()
	}
	h.Dual.Close()
}

func newHookedFabric(n int) (*Fabric[int64], []*hookedDual) {
	var hooks []*hookedDual
	f := New(n, func(int) Dual[int64] {
		h := &hookedDual{Dual: core.NewDualQueue[int64](core.WaitConfig{})}
		hooks = append(hooks, h)
		return h
	})
	return f, hooks
}

func TestReserveTakeSurvivesPreLinkSweepClear(t *testing.T) {
	f, hooks := newHookedFabric(2)
	fired := false
	for _, h := range hooks {
		h.beforeReserveTake = func() {
			fired = true
			// The racing producer sweep: the cons summary is flagged but
			// the reservation has not linked yet, so the probe finds the
			// shard empty, clears the "stale" bit, and misses.
			if f.Offer(99) {
				t.Fatal("Offer paired inside the pre-link window")
			}
			if f.cons.Load() != 0 {
				t.Fatal("racing sweep did not clear the pre-link bit; window not exercised")
			}
		}
	}
	_, tkt, ok := f.ReserveTake()
	if ok {
		t.Fatal("immediate pairing on an empty fabric")
	}
	if !fired {
		t.Fatal("pre-link hook never fired")
	}
	// The fix: the bit is re-established after the reservation links, so
	// the pinned reservation is visible to a later producer's sweep.
	if f.cons.Load() == 0 {
		t.Fatal("cons bit not re-established after link; pinned reservation invisible to sweeps")
	}
	if !f.Offer(42) {
		t.Fatal("sweep missed the pinned reservation")
	}
	v, ok := tkt.TryFollowup()
	if !ok || v != 42 {
		t.Fatalf("TryFollowup = (%d,%v), want (42,true)", v, ok)
	}
}

func TestReservePutSurvivesPreLinkSweepClear(t *testing.T) {
	f, hooks := newHookedFabric(2)
	fired := false
	for _, h := range hooks {
		h.beforeReservePut = func() {
			fired = true
			if _, ok := f.Poll(); ok {
				t.Fatal("Poll paired inside the pre-link window")
			}
			if f.prod.Load() != 0 {
				t.Fatal("racing sweep did not clear the pre-link bit; window not exercised")
			}
		}
	}
	tkt, ok := f.ReservePut(7)
	if ok {
		t.Fatal("immediate pairing on an empty fabric")
	}
	if !fired {
		t.Fatal("pre-link hook never fired")
	}
	if f.prod.Load() == 0 {
		t.Fatal("prod bit not re-established after link; pinned reservation invisible to sweeps")
	}
	if v, ok := f.Poll(); !ok || v != 7 {
		t.Fatalf("Poll = (%d,%v), want (7,true)", v, ok)
	}
	if !tkt.Abort() {
		// Fulfilled, as expected: Abort must report the loss.
		return
	}
	t.Fatal("Abort succeeded on a fulfilled reservation")
}

func TestClosedNotObservedBeforeLastShardCloses(t *testing.T) {
	f, hooks := newHookedFabric(4)
	last := len(hooks) - 1
	checked := false
	hooks[last].beforeClose = func() {
		checked = true
		// Shards 0..last-1 are already closed here, but a transfer could
		// still complete on this shard — Closed() must not lead it.
		if f.Closed() {
			t.Error("Closed() = true while the last shard can still transfer")
		}
		// The still-open shard must indeed still accept a hand-off: pin a
		// consumer and pair with it, proving the Closed()==false report
		// above is honest, not just late.
		_, tkt, ok := f.Shard(last).ReserveTake()
		if ok {
			t.Fatal("immediate pairing on an empty shard")
		}
		if !f.Shard(last).Offer(11) {
			t.Fatal("open shard refused a hand-off during Close")
		}
		if v, ok := tkt.TryFollowup(); !ok || v != 11 {
			t.Fatalf("TryFollowup = (%d,%v), want (11,true)", v, ok)
		}
	}
	f.Close()
	if !checked {
		t.Fatal("close hook never fired")
	}
	if !f.Closed() {
		t.Fatal("Closed() = false after Close returned")
	}
	if st := f.PutDeadline(1, time.Now().Add(time.Millisecond), nil); st != core.Closed {
		t.Fatalf("PutDeadline on closed fabric = %v, want Closed", st)
	}
}
