package shard

// GOMAXPROCS-matrix harness for the self-scaling fabric: the same
// grow → shrink → grow storyline at every parallelism level the width
// controller must serve, with a conservation ledger checked at each step.
// Organic contention cannot be provoked on demand (the CI host may have
// one CPU), so real mixed traffic runs while DriveWidth forces the
// controller through the transitions; the transitions themselves execute
// the real activate/drain protocol against that live traffic.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synchq/internal/core"
	"synchq/internal/metrics"
	"synchq/internal/segq"
)

// runWidthStorm drives concurrent producers/consumers through f while the
// width is forced through grow → shrink → grow cycles, then verifies the
// conservation ledger: every produced item is consumed exactly once.
func runWidthStorm(t *testing.T, f *Fabric[int64], procs int) {
	t.Helper()
	const (
		workers = 4
		perW    = 400
	)
	var (
		produced atomic.Int64
		consumed atomic.Int64
		wg       sync.WaitGroup // traffic workers
		oscWg    sync.WaitGroup // width oscillator
	)
	stop := make(chan struct{})
	// Width oscillator: forced transitions while traffic is live.
	oscWg.Add(1)
	go func() {
		defer oscWg.Done()
		for cycle := 0; ; cycle++ {
			select {
			case <-stop:
				return
			default:
			}
			contended := cycle%2 == 0
			for i := 0; i < 64; i++ {
				f.DriveWidth(contended)
			}
			w := f.Shards()
			if w < 1 || w > f.MaxShards() || w&(w-1) != 0 {
				t.Errorf("width %d out of range at procs=%d", w, procs)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < perW; i++ {
				f.Put(base + i)
				produced.Add(base + i)
			}
		}(int64(w) * perW)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				consumed.Add(f.Take())
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait() // traffic drains while the oscillator keeps shifting width
		close(stop)
		oscWg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("width storm deadlocked at procs=%d (produced %d consumed %d)",
			procs, produced.Load(), consumed.Load())
	}
	n := int64(workers) * perW
	want := n * (n - 1) / 2
	if produced.Load() != want || consumed.Load() != want {
		t.Fatalf("conservation violated at procs=%d: produced %d consumed %d want %d",
			procs, produced.Load(), consumed.Load(), want)
	}
}

// TestWidthMatrixQueueFabric runs the storm over forced GOMAXPROCS
// 1/2/4/8 on a queue-backed self-scaling fabric.
func TestWidthMatrixQueueFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("width matrix is a soak-style test")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		f := newAutoFabric(8, nil)
		runWidthStorm(t, f, procs)
		// Quiet drive must collapse the fabric back to one shard.
		for i := 0; i < 512 && f.Shards() > 1; i++ {
			f.DriveWidth(false)
		}
		if w := f.Shards(); w != 1 {
			t.Errorf("procs=%d: post-storm collapse stalled at width %d", procs, w)
		}
		if !f.IsEmpty() {
			t.Errorf("procs=%d: fabric not empty after balanced storm", procs)
		}
		// Close ordering holds at whatever width the storm ended on.
		f.Close()
		if !f.Closed() {
			t.Errorf("procs=%d: Closed() false after Close", procs)
		}
	}
}

// TestWidthMatrixSegFabric runs a storm leg on a segment-backed
// self-scaling fabric and checks the memory bound still pays off across
// width changes: timed-out waiters leave, and fully-consumed segments are
// unlinked (SegUnlinks accumulates) rather than pinned by the fabric.
func TestWidthMatrixSegFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("width matrix is a soak-style test")
	}
	h := metrics.New()
	f := NewAuto(4, func(int) Dual[int64] {
		return segq.New[int64](core.WaitConfig{Metrics: h})
	}).SetMetrics(h)
	runWidthStorm(t, f, runtime.GOMAXPROCS(0))
	// Generate churn that retires whole segments: parked-then-timed-out
	// consumers at full width, then a collapse, then another wave.
	for i := 0; i < 64 && f.Shards() < 4; i++ {
		f.DriveWidth(true)
	}
	for i := 0; i < 200; i++ {
		f.PollTimeout(10 * time.Microsecond)
	}
	for i := 0; i < 512 && f.Shards() > 1; i++ {
		f.DriveWidth(false)
	}
	for i := 0; i < 200; i++ {
		f.PollTimeout(10 * time.Microsecond)
	}
	if n := h.Snapshot().Get(metrics.SegUnlinks); n == 0 {
		t.Error("segment-backed fabric retired no segments across the width cycle")
	}
}
