// Package shard implements the sharded hand-off fabric: N independent core
// dual structures composed behind one synchronous-queue surface, so that
// the single contended head/tail word the paper identifies as the
// scalability limit becomes N words on N cache lines.
//
// Dispatch is striped: each operation draws a random home shard (per-P
// randomness, so the choice itself contends on nothing) and first sweeps
// the shards the presence summaries flag as occupied, probing with a
// zero-patience Offer or Poll, starting at home. A probe that succeeds on
// a foreign shard is a steal: the operation rescued a waiter another
// stripe left behind, counted by metrics.ShardSteals. Only when the sweep
// finds no counterpart anywhere does the operation commit to waiting on
// its home shard, through a Dekker-style protocol — link a reservation,
// announce the shard's bit in the own-side summary, reload the opposite
// summary — that makes cross-shard stranding impossible without any
// timer-based rescue: of two parties racing to commit on different
// shards, at least one's reload observes the other's announced bit, and
// the probe it then launches finds the other's already-linked
// reservation. The observer aborts its own reservation and pairs; the
// observed party is fulfilled where it waits.
//
// The price of sharding is the pairing discipline: FIFO (fair) order holds
// only per shard. Two producers that wait on different shards may be
// fulfilled in either order, whatever their arrival order; the fabric's
// contract is "per-shard FIFO, globally none", which is the standard
// relaxation scalable queues trade for cache-line independence (cf. the
// distributed-queue designs surveyed in PAPERS.md). Synchrony and
// conservation — the §2.2 dual-structure contract — are NOT relaxed:
// every transfer still happens inside one shard's linearized hand-off,
// which the history-bridge tests verify end to end.
//
// Close composes per shard: Close closes every shard, each shard's own
// eviction sweep wakes its waiters with the Closed status, and the
// fabric's waiting paths return it unchanged. Fault injection composes
// the same way — the shards share the fabric's injector, and the fabric
// adds its own site (fault.ShardStealCAS) that makes an opportunistic
// steal probe lose its race and move on, exercising the keep-searching
// arc of the sweep. The commit protocol's own probes are exempt: they
// carry the no-stranding guarantee, so a manufactured lost race there
// would inject a deadlock no real execution can produce.
package shard

import (
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"time"

	"synchq/internal/core"
	"synchq/internal/fault"
	"synchq/internal/metrics"
)

// Dual is the surface the fabric requires of each shard — exactly the
// method set both core dual structures provide.
type Dual[T any] interface {
	Put(T)
	Take() T
	PutDeadline(T, time.Time, <-chan struct{}) core.Status
	TakeDeadline(time.Time, <-chan struct{}) (T, core.Status)
	Offer(T) bool
	OfferTimeout(T, time.Duration) bool
	Poll() (T, bool)
	PollTimeout(time.Duration) (T, bool)
	HasWaitingConsumer() bool
	HasWaitingProducer() bool
	IsEmpty() bool
	ReserveTake() (T, core.Ticket[T], bool)
	ReservePut(T) (core.Ticket[T], bool)
	ReserveTakeStatus() (T, core.Ticket[T], bool, core.Status)
	ReservePutStatus(T) (core.Ticket[T], bool, core.Status)
	Close()
	Closed() bool
}

// errClosedDemand matches the core structures' closed-demand panic text
// (and the public ErrClosed message) so every closed-queue panic reads the
// same regardless of sharding.
const errClosedDemand = "synchq: queue closed"

// Fabric composes n power-of-two shards behind the synchronous queue
// surface. Create one with New; a Fabric must not be copied after first
// use.
type Fabric[T any] struct {
	shards []Dual[T]
	mask   int
	// st is the per-shard controller state (probe-skip streaks, depth and
	// steal gauges), one padded cache line per shard; see adaptive.go.
	st []shardState
	// ctl is the self-scaling width controller; nil on fixed-width
	// fabrics, which then never touch a controller word.
	ctl *widthCtl
	// m receives the fabric's counters (ShardSteals; the shards usually
	// share the same handle so per-shard events aggregate); nil disables.
	m *metrics.Handle
	// f injects deterministic faults at the steal-probe site and the
	// width controller's grow/drain windows; nil disables.
	f *fault.Injector
	// wmask is the effective routing mask: home() draws from
	// [0, wmask+1). On a fixed-width fabric it equals mask forever; on a
	// self-scaling one the controller republishes it. Width is a routing
	// hint only — sweeps, Dekker reloads and Close always cover all
	// mask+1 shards, which is what makes width changes safe (see
	// adaptive.go).
	wmask atomic.Int32
	// closed is published by Close only after every shard has shut down,
	// so Closed() never leads the last shard: once a caller observes
	// Closed()==true, no transfer can complete on any shard — the same
	// linearization the unsharded structures give.
	closed atomic.Bool

	// prod and cons are presence summaries: bit i set means shard i MAY
	// hold a waiting producer (prod) or consumer (cons). A waiter sets its
	// shard's bit before committing, so a sweep is one atomic load plus
	// probes of only the flagged shards — not a walk of every shard. The
	// summaries are conservative, never authoritative: a set bit can be
	// stale (the waiter was fulfilled, timed out, or has announced but not
	// yet enqueued), and probes clear bits they find stale. A missed
	// pairing due to a stale or not-yet-visible bit is always repaired by
	// the rescue loop, so the summaries are purely an optimization — the
	// steal sweep's correctness never depends on them being exact.
	//
	// The commit path orders "set own bit, then reload the opposite
	// summary" (Dekker-style): of two parties racing to commit on
	// different shards, at least one's reload observes the other's bit and
	// probes it, shrinking the mutual-stranding window from a rescue round
	// to the enqueue latency.
	_    [64]byte // keep the hot summaries off the shards header's line
	prod atomic.Uint64
	_    [56]byte // producers RMW prod, consumers RMW cons: split the lines
	cons atomic.Uint64
	_    [64]byte
}

// DefaultShards returns the platform shard count: GOMAXPROCS rounded up to
// a power of two, capped at 64 — one shard per hardware thread that could
// be hammering the structure, and a mask-friendly size.
func DefaultShards() int {
	return ceilPow2(runtime.GOMAXPROCS(0))
}

// ceilPow2 rounds n up to a power of two in [1, 64].
func ceilPow2(n int) int {
	p := 1
	for p < n && p < 64 {
		p <<= 1
	}
	return p
}

// New returns a fabric of n shards (0 or negative: DefaultShards; any
// other value is rounded up to a power of two and capped at 64, since the
// presence summaries are single 64-bit words) built by mk, which is
// called once per shard. Use Shards to read the count actually chosen.
// Attach metrics and fault injection to the shards
// inside mk — sharing one handle across shards keeps the counter set
// aggregated, which is how the -metrics tables expect it.
func New[T any](n int, mk func(i int) Dual[T]) *Fabric[T] {
	if n <= 0 {
		n = DefaultShards()
	} else {
		n = ceilPow2(n)
	}
	f := &Fabric[T]{shards: make([]Dual[T], n), mask: n - 1, st: make([]shardState, n)}
	f.wmask.Store(int32(n - 1))
	for i := range f.shards {
		f.shards[i] = mk(i)
	}
	return f
}

// SetMetrics attaches an instrumentation handle for the fabric-level
// counters (nil disables) and returns f for chaining. Call before the
// fabric is shared between goroutines.
func (f *Fabric[T]) SetMetrics(h *metrics.Handle) *Fabric[T] {
	f.m = h
	return f
}

// SetFault attaches a fault injector for the steal-probe site (nil
// disables) and returns f for chaining. Call before the fabric is shared
// between goroutines.
func (f *Fabric[T]) SetFault(inj *fault.Injector) *Fabric[T] {
	f.f = inj
	return f
}

// Metrics returns the fabric's instrumentation handle (nil when disabled).
func (f *Fabric[T]) Metrics() *metrics.Handle { return f.m }

// Shards returns the current effective width: the number of shards new
// arrivals route to. On a fixed-width fabric this is the constructed
// count forever; on a self-scaling one (NewAuto) it moves with observed
// contention, between 1 and MaxShards.
func (f *Fabric[T]) Shards() int { return int(f.wmask.Load()) + 1 }

// MaxShards returns the number of constructed shards — the self-scaling
// controller's width ceiling, and the count sweeps and Close always
// cover.
func (f *Fabric[T]) MaxShards() int { return len(f.shards) }

// Shard returns shard i (for tests and monitoring).
func (f *Fabric[T]) Shard(i int) Dual[T] { return f.shards[i] }

// home draws a random home shard within the effective width.
// math/rand/v2's global generator is per-P, so striping itself introduces
// no shared word — the entire point of the fabric.
func (f *Fabric[T]) home() int {
	m := int(f.wmask.Load())
	if m == 0 {
		return 0
	}
	return int(rand.Uint64()) & m
}

// sweepPut probes the shards the cons summary flags as holding a waiting
// consumer, starting at home. Probes that find a flagged shard actually
// empty clear its stale bit, keeping the summary tight. A critical sweep
// is exempt from fault injection: it is the reload of the commit
// protocol's announce-then-recheck handshake, whose probes are what make
// cross-shard stranding impossible, so an injected "lost race" there would
// manufacture a deadlock no real execution can produce.
// t0 is the fabric operation's arrival timestamp (zero when the fabric is
// uninstrumented); a probe that completes on a non-home shard records the
// arrival-to-steal latency separately from the shards' own hand-off
// histograms. ss accumulates the operation's contention evidence (lost
// probe races, completed-as-a-steal) for the width controller.
//
// Non-critical sweeps are steal-weighted: a foreign shard observed empty
// on probeSkipAfter consecutive probes is passed over without probing
// (with a periodic re-probe), so drained shards stop costing two loads on
// every sweep of every operation. Critical sweeps never skip — they carry
// the commit protocol's no-stranding guarantee — and the home shard is
// never skipped, since it is where the operation would commit anyway.
func (f *Fabric[T]) sweepPut(home int, v T, critical bool, t0 int64, ss *sweepStat) bool {
	avail := f.cons.Load()
	for avail != 0 {
		i := nearestBit(avail, home)
		avail &^= 1 << uint(i)
		if !critical && i != home {
			if f.skipProbe(i, &f.st[i].emptyCons) {
				continue // steal-weighting: shard repeatedly seen drained
			}
			if f.f.FailCAS(fault.ShardStealCAS) {
				continue // injected lost steal race: move to the next shard
			}
		}
		// Check occupancy before probing: a stale hint costs one load here
		// instead of a full failed hand-off attempt. A linked reservation is
		// visible to HasWaitingConsumer the instant it is enqueued, so the
		// critical sweep's no-stranding guarantee survives the shortcut.
		if f.shards[i].HasWaitingConsumer() {
			resetStreak(&f.st[i].emptyCons)
			if f.shards[i].Offer(v) {
				if i != home {
					f.st[i].steals.Add(1)
					ss.stole = true
					f.m.Inc(metrics.ShardSteals)
					f.m.Since(metrics.StealNs, t0)
				}
				return true
			}
			// A waiter was there and another operation claimed it first: a
			// lost probe race, the contention evidence the width follows.
			ss.fails++
		} else {
			f.noteProbeEmpty(i, &f.st[i].emptyCons)
			clearBit(&f.cons, 1<<uint(i))
			// The staleness check and the clear are two steps: a consumer
			// may link and announce between them, and its announce can be a
			// no-op when the bit was already set, so the clear would erase a
			// live hint for good. Re-check and restore — a set bit with a
			// waiter behind it must stay durable, or the commit protocol's
			// Dekker reload can miss the waiter forever.
			if f.shards[i].HasWaitingConsumer() {
				f.st[i].emptyCons.Store(0)
				setBit(&f.cons, 1<<uint(i))
				avail |= 1 << uint(i)
			}
		}
	}
	return false
}

// sweepTake probes the shards the prod summary flags as holding a waiting
// producer, starting at home.
func (f *Fabric[T]) sweepTake(home int, critical bool, t0 int64, ss *sweepStat) (T, bool) {
	avail := f.prod.Load()
	for avail != 0 {
		i := nearestBit(avail, home)
		avail &^= 1 << uint(i)
		if !critical && i != home {
			if f.skipProbe(i, &f.st[i].emptyProd) {
				continue
			}
			if f.f.FailCAS(fault.ShardStealCAS) {
				continue
			}
		}
		if f.shards[i].HasWaitingProducer() {
			resetStreak(&f.st[i].emptyProd)
			if v, ok := f.shards[i].Poll(); ok {
				if i != home {
					f.st[i].steals.Add(1)
					ss.stole = true
					f.m.Inc(metrics.ShardSteals)
					f.m.Since(metrics.StealNs, t0)
				}
				return v, true
			}
			ss.fails++
		} else {
			f.noteProbeEmpty(i, &f.st[i].emptyProd)
			clearBit(&f.prod, 1<<uint(i))
			// Same check-then-clear repair as sweepPut: restore the hint if
			// a producer linked between the staleness check and the clear.
			if f.shards[i].HasWaitingProducer() {
				f.st[i].emptyProd.Store(0)
				setBit(&f.prod, 1<<uint(i))
				avail |= 1 << uint(i)
			}
		}
	}
	var zero T
	return zero, false
}

// nearestBit returns the index of a set bit of avail (avail != 0),
// preferring home, then the bits cyclically above it — the same
// home-first order the unsummarized sweep would visit.
func nearestBit(avail uint64, home int) int {
	if avail&(1<<uint(home)) != 0 {
		return home
	}
	rot := avail>>uint(home) | avail<<(64-uint(home))
	return (home + bits.TrailingZeros64(rot)) & 63
}

// setBit and clearBit are the summary updates, written as CAS loops (the
// module predates the atomic Or/And helpers). Lost races only delay a
// hint, never a transfer.
func setBit(w *atomic.Uint64, bit uint64) {
	for {
		old := w.Load()
		if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

func clearBit(w *atomic.Uint64, bit uint64) {
	for {
		old := w.Load()
		if old&bit == 0 || w.CompareAndSwap(old, old&^bit) {
			return
		}
	}
}

// put is the producer engine, built on the commit protocol that makes
// cross-shard stranding impossible without any timer-based rescue:
//
//  1. Opportunistic sweep: pair with a consumer already flagged anywhere.
//  2. Reserve on the home shard — the node is LINKED before anything is
//     announced.
//  3. Announce: set home's bit in the prod summary.
//  4. Dekker reload: re-read the cons summary. Because every waiter links
//     then announces then reloads, of any producer/consumer pair racing to
//     commit on different shards, at least one's reload observes the
//     other's already-set bit (the bit-sets and reloads are totally
//     ordered), and the shard it then probes already holds the other's
//     linked node. A flagged consumer means our datum must come back out
//     of the reservation first: abort the ticket (an abort that fails
//     means a fulfiller beat us — we are done) and retry from the sweep.
//  5. Await the reservation — untimed for a demand put, so the steady
//     state costs one reservation and one park, with no timer and no
//     periodic rescue wakeups.
func (f *Fabric[T]) put(v T, deadline time.Time, cancel <-chan struct{}) core.Status {
	var ss sweepStat
	st := f.putEngine(v, deadline, cancel, &ss)
	f.observe(&ss)
	return st
}

func (f *Fabric[T]) putEngine(v T, deadline time.Time, cancel <-chan struct{}, ss *sweepStat) core.Status {
	t0 := f.m.Start()
	home := f.home()
	critical := false
	for {
		if f.sweepPut(home, v, critical, t0, ss) {
			return core.OK
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			// No counterpart and the caller's patience is spent (or was
			// zero to begin with: a pure Offer).
			return core.Timeout
		}
		tkt, ok, st := f.shards[home].ReservePutStatus(v)
		if st == core.Closed {
			return core.Closed
		}
		if ok {
			return core.OK
		}
		f.st[home].depth.Add(1)
		bit := uint64(1) << uint(home)
		setBit(&f.prod, bit)
		// The announce doubles as the steal-weighting reset: a linked
		// producer makes the shard worth probing again immediately.
		resetStreak(&f.st[home].emptyProd)
		if f.cons.Load() != 0 {
			// The Dekker reload flags a consumer somewhere. Reclaim the
			// datum and retry through the sweep; critical from here on —
			// these probes carry the no-stranding guarantee.
			f.st[home].depth.Add(-1)
			if !tkt.Abort() {
				// A fulfiller took the reservation first.
				tkt.TryFollowup()
				return core.OK
			}
			if !f.shards[home].HasWaitingProducer() {
				clearBit(&f.prod, bit)
			}
			// Losing the commit to a cross-shard race is contention
			// evidence just like a lost probe.
			ss.fails++
			critical = true
			continue
		}
		_, st = tkt.Await(deadline, cancel)
		f.st[home].depth.Add(-1)
		if st != core.OK && !f.shards[home].HasWaitingProducer() {
			// Our bit may now be stale; drop it so sweeps stay tight.
			clearBit(&f.prod, bit)
		}
		return st
	}
}

// take is the consumer engine, symmetric to put (with the simplification
// that a request reservation holds no datum, so the abort arm collects the
// value directly when a fulfiller wins the race).
func (f *Fabric[T]) take(deadline time.Time, cancel <-chan struct{}) (T, core.Status) {
	var ss sweepStat
	v, st := f.takeEngine(deadline, cancel, &ss)
	f.observe(&ss)
	return v, st
}

func (f *Fabric[T]) takeEngine(deadline time.Time, cancel <-chan struct{}, ss *sweepStat) (T, core.Status) {
	t0 := f.m.Start()
	var zero T
	home := f.home()
	critical := false
	for {
		if v, ok := f.sweepTake(home, critical, t0, ss); ok {
			return v, core.OK
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return zero, core.Timeout
		}
		v, tkt, ok, st := f.shards[home].ReserveTakeStatus()
		if st == core.Closed {
			return zero, core.Closed
		}
		if ok {
			return v, core.OK
		}
		f.st[home].depth.Add(1)
		bit := uint64(1) << uint(home)
		setBit(&f.cons, bit)
		resetStreak(&f.st[home].emptyCons)
		if f.prod.Load() != 0 {
			f.st[home].depth.Add(-1)
			if !tkt.Abort() {
				v, _ := tkt.TryFollowup()
				return v, core.OK
			}
			if !f.shards[home].HasWaitingConsumer() {
				clearBit(&f.cons, bit)
			}
			ss.fails++
			critical = true
			continue
		}
		v, st = tkt.Await(deadline, cancel)
		f.st[home].depth.Add(-1)
		if st != core.OK && !f.shards[home].HasWaitingConsumer() {
			clearBit(&f.cons, bit)
		}
		return v, st
	}
}

// closedStatus reports Closed for operations that must refuse a shut-down
// fabric before sweeping (a sweep on a closed fabric merely misses, since
// closed shards refuse zero-patience probes with a false). It reads the
// fabric-level flag, not shard state: during a concurrent Close the
// individual shards close in index order, and reporting Closed from a
// partially closed fabric would let a caller observe Closed()==true while
// transfers still complete on not-yet-closed shards. Operations racing
// the shard shutdowns themselves still get core.Closed from their shard.
func (f *Fabric[T]) closedStatus() bool { return f.closed.Load() }

// Put transfers v to a consumer, waiting as long as necessary. It panics
// if the fabric is closed, mirroring the unsharded demand operations.
func (f *Fabric[T]) Put(v T) {
	if st := f.put(v, time.Time{}, nil); st == core.Closed {
		panic(errClosedDemand)
	}
}

// Take receives a value from a producer, waiting as long as necessary. It
// panics if the fabric is closed.
func (f *Fabric[T]) Take() T {
	v, st := f.take(time.Time{}, nil)
	if st == core.Closed {
		panic(errClosedDemand)
	}
	return v
}

// PutDeadline transfers v, giving up at the deadline (zero: never) or when
// cancel fires (nil: never).
func (f *Fabric[T]) PutDeadline(v T, deadline time.Time, cancel <-chan struct{}) core.Status {
	if f.closedStatus() {
		return core.Closed
	}
	return f.put(v, deadline, cancel)
}

// TakeDeadline receives a value, giving up at the deadline (zero: never)
// or when cancel fires (nil: never).
func (f *Fabric[T]) TakeDeadline(deadline time.Time, cancel <-chan struct{}) (T, core.Status) {
	if f.closedStatus() {
		var zero T
		return zero, core.Closed
	}
	return f.take(deadline, cancel)
}

// Offer transfers v only if a consumer is already waiting on some shard.
func (f *Fabric[T]) Offer(v T) bool {
	var ss sweepStat
	ok := f.sweepPut(f.home(), v, false, f.m.Start(), &ss)
	f.observe(&ss)
	return ok
}

// OfferTimeout transfers v, waiting up to d for a consumer.
func (f *Fabric[T]) OfferTimeout(v T, d time.Duration) bool {
	if d <= 0 {
		return f.Offer(v)
	}
	return f.put(v, time.Now().Add(d), nil) == core.OK
}

// Poll receives a value only if a producer is already waiting on some
// shard.
func (f *Fabric[T]) Poll() (T, bool) {
	var ss sweepStat
	v, ok := f.sweepTake(f.home(), false, f.m.Start(), &ss)
	f.observe(&ss)
	return v, ok
}

// PollTimeout receives a value, waiting up to d for a producer.
func (f *Fabric[T]) PollTimeout(d time.Duration) (T, bool) {
	if d <= 0 {
		return f.Poll()
	}
	v, st := f.take(time.Now().Add(d), nil)
	return v, st == core.OK
}

// ReserveTake registers a request for a value: an immediate counterpart on
// any shard is consumed at once (nil ticket); otherwise the reservation is
// pinned to the home shard and its ticket returned. A pinned reservation
// is visible to every producer's sweep, but — unlike the demand operations
// — its Await has no rescue loop (the ticket belongs to one shard), so
// callers that mix long-lived reservations from both sides should bound
// Await and re-reserve, or use the demand operations. Panics if the fabric
// is closed, like the unsharded reservation requests.
func (f *Fabric[T]) ReserveTake() (T, core.Ticket[T], bool) {
	var ss sweepStat
	defer f.observe(&ss)
	t0 := f.m.Start()
	var zero T
	home := f.home()
	bit := uint64(1) << uint(home)
	critical := false
	for {
		if v, ok := f.sweepTake(home, critical, t0, &ss); ok {
			return v, nil, true
		}
		// Announce early — unlike the demand path, which reserves first and
		// announces second, the pre-link bit narrows the window in which a
		// producer's Dekker reload misses us. It is only a hint at this
		// point: a sweep probing in the announce-to-link window sees no
		// waiter and may clear it, which is why the bit is re-established
		// below once the reservation has actually linked.
		setBit(&f.cons, bit)
		resetStreak(&f.st[home].emptyCons)
		v, tkt, ok := f.shards[home].ReserveTake()
		if ok {
			// Paired immediately; drop our announce if it is now stale.
			if !f.shards[home].HasWaitingConsumer() {
				clearBit(&f.cons, bit)
			}
			return v, nil, true
		}
		// The reservation is linked. Re-establish the bit to repair any
		// clear that raced the pre-link window: from here on announced
		// implies linked, so the pinned reservation is durably visible to
		// every producer's sweep (the sweeps restore a set bit they clear
		// while a waiter is present).
		setBit(&f.cons, bit)
		resetStreak(&f.st[home].emptyCons)
		if f.prod.Load() != 0 {
			// Dekker reload flags a producer somewhere: it may have
			// committed to waiting before our announce was visible, so no
			// rescue would find either of us. Abort and retry through the
			// sweep, exactly as the demand path does.
			if !tkt.Abort() {
				v, _ := tkt.TryFollowup()
				return v, nil, true
			}
			if !f.shards[home].HasWaitingConsumer() {
				clearBit(&f.cons, bit)
			}
			critical = true
			continue
		}
		return zero, tkt, false
	}
}

// ReservePut offers v to a future consumer, with the same shard-pinning
// contract as ReserveTake.
func (f *Fabric[T]) ReservePut(v T) (core.Ticket[T], bool) {
	var ss sweepStat
	defer f.observe(&ss)
	t0 := f.m.Start()
	home := f.home()
	bit := uint64(1) << uint(home)
	critical := false
	for {
		if f.sweepPut(home, v, critical, t0, &ss) {
			return nil, true
		}
		// Early hint; see ReserveTake for the announce/link protocol.
		setBit(&f.prod, bit)
		resetStreak(&f.st[home].emptyProd)
		tkt, ok := f.shards[home].ReservePut(v)
		if ok {
			if !f.shards[home].HasWaitingProducer() {
				clearBit(&f.prod, bit)
			}
			return nil, true
		}
		// Linked: re-establish the bit so a clear that raced the pre-link
		// window cannot leave the pinned reservation invisible.
		setBit(&f.prod, bit)
		resetStreak(&f.st[home].emptyProd)
		if f.cons.Load() != 0 {
			if !tkt.Abort() {
				tkt.TryFollowup()
				return nil, true
			}
			if !f.shards[home].HasWaitingProducer() {
				clearBit(&f.prod, bit)
			}
			critical = true
			continue
		}
		return tkt, false
	}
}

// Close shuts every shard down. Each shard's eviction sweep wakes its own
// waiters with the Closed status; waiters inside a rescue round observe
// Closed on their next bounded wait. Close is idempotent and safe to call
// concurrently with any operation.
func (f *Fabric[T]) Close() {
	for _, s := range f.shards {
		s.Close()
	}
	f.closed.Store(true)
}

// Closed reports whether Close has been called.
func (f *Fabric[T]) Closed() bool { return f.closedStatus() }

// HasWaitingConsumer reports whether a consumer was observed waiting on
// any shard.
func (f *Fabric[T]) HasWaitingConsumer() bool {
	for _, s := range f.shards {
		if s.HasWaitingConsumer() {
			return true
		}
	}
	return false
}

// HasWaitingProducer reports whether a producer was observed waiting on
// any shard.
func (f *Fabric[T]) HasWaitingProducer() bool {
	for _, s := range f.shards {
		if s.HasWaitingProducer() {
			return true
		}
	}
	return false
}

// IsEmpty reports whether every shard was observed empty.
func (f *Fabric[T]) IsEmpty() bool {
	for _, s := range f.shards {
		if !s.IsEmpty() {
			return false
		}
	}
	return true
}
