package shard

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"synchq/internal/core"
	"synchq/internal/metrics"
)

// newAutoFabric builds a self-scaling fabric of fair dual queues with a
// max-width ceiling, sharing one metrics handle.
func newAutoFabric(max int, h *metrics.Handle) *Fabric[int64] {
	return NewAuto(max, func(int) Dual[int64] {
		return core.NewDualQueue[int64](core.WaitConfig{Metrics: h})
	}).SetMetrics(h)
}

// TestStealWeightingSkipsDrainedShards is the regression test for the
// wasted-steal fix: shards whose presence hint keeps turning out stale
// stop being probed after probeSkipAfter consecutive empty observations,
// so the per-sweep miss count plateaus instead of growing with every
// sweep.
func TestStealWeightingSkipsDrainedShards(t *testing.T) {
	f := newQueueFabric(8, nil)
	const rounds = 200
	var ss sweepStat
	for r := 0; r < rounds; r++ {
		// A skewed workload keeps re-flagging shards 1..7 even though no
		// producer ever lingers there: re-assert the stale hints, then
		// sweep from home 0 like a consumer that found its own shard dry.
		setBit(&f.prod, 0xFE)
		if _, ok := f.sweepTake(0, false, 0, &ss); ok {
			t.Fatal("sweep of an empty fabric found a producer")
		}
	}
	st := f.Stats()
	// Without steal-weighting every round probes all 7 flagged shards:
	// 7*rounds misses. With it, each shard is probed until its streak
	// reaches probeSkipAfter, plus the periodic re-probes.
	unweighted := int64(7 * rounds)
	bound := int64(7*probeSkipAfter) + unweighted/probeReprobeEvery + 7
	if st.ProbeMisses > bound {
		t.Errorf("probe misses = %d, want <= %d (unweighted sweeps would cost %d)",
			st.ProbeMisses, bound, unweighted)
	}
	if st.ProbeSkips == 0 {
		t.Error("no probes were skipped despite 200 rounds of stale hints")
	}
	if st.ProbeMisses >= unweighted/2 {
		t.Errorf("probe misses = %d did not drop vs the unweighted cost %d",
			st.ProbeMisses, unweighted)
	}
}

// TestStealWeightingLiveness: a skip-listed shard that gains a real
// waiter is still found — the announce resets the streak, and even a
// stale streak is re-sensed by the periodic re-probe and by critical
// sweeps, which never skip.
func TestStealWeightingLiveness(t *testing.T) {
	f := newQueueFabric(8, nil)
	var ss sweepStat
	// Build a maxed-out empty streak on shard 3's producer side.
	for r := 0; r < 4*probeSkipAfter; r++ {
		setBit(&f.prod, 1<<3)
		f.sweepTake(0, false, 0, &ss)
	}
	if f.st[3].emptyProd.Load() < probeSkipAfter {
		t.Fatalf("streak = %d, want >= %d", f.st[3].emptyProd.Load(), probeSkipAfter)
	}

	// A real producer parks on shard 3 (directly on the shard: simulates a
	// waiter whose announce was not observed, the worst case for skipping).
	done := make(chan struct{})
	go func() {
		f.shards[3].Put(42)
		close(done)
	}()
	for !f.shards[3].HasWaitingProducer() {
		runtime.Gosched()
	}

	// Critical sweeps never skip: first one finds the producer.
	setBit(&f.prod, 1<<3)
	if v, ok := f.sweepTake(0, true, 0, &ss); !ok || v != 42 {
		t.Fatalf("critical sweep = %v, %v; want 42, true", v, ok)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("producer did not unpark after critical-sweep hand-off")
	}
	if f.st[3].emptyProd.Load() != 0 {
		t.Errorf("successful probe left streak at %d, want 0", f.st[3].emptyProd.Load())
	}

	// And the periodic re-probe bounds how long a non-critical sweep can
	// ignore a skip-listed shard: within probeReprobeEvery sweeps one goes
	// through.
	for r := 0; r < 4*probeSkipAfter; r++ {
		setBit(&f.prod, 1<<3)
		f.sweepTake(0, false, 0, &ss)
	}
	go func() { f.shards[3].Put(7) }()
	for !f.shards[3].HasWaitingProducer() {
		runtime.Gosched()
	}
	found := false
	for r := 0; r < probeReprobeEvery+1; r++ {
		setBit(&f.prod, 1<<3)
		if v, ok := f.sweepTake(0, false, 0, &ss); ok {
			if v != 7 {
				t.Fatalf("re-probe sweep returned %d, want 7", v)
			}
			found = true
			break
		}
	}
	if !found {
		t.Errorf("skip-listed shard with a live producer not re-probed within %d sweeps", probeReprobeEvery+1)
	}
}

// TestAutoFabricStartsCollapsed: a self-scaling fabric begins at width 1
// and a quiet ping-pong load keeps it there.
func TestAutoFabricStartsCollapsed(t *testing.T) {
	f := newAutoFabric(8, nil)
	if w := f.Shards(); w != 1 {
		t.Fatalf("fresh auto fabric width = %d, want 1", w)
	}
	if m := f.MaxShards(); m != 8 {
		t.Fatalf("ceiling = %d, want 8", m)
	}
	done := make(chan int64, 1)
	go func() {
		var sum int64
		for i := 0; i < 3000; i++ {
			sum += f.Take()
		}
		done <- sum
	}()
	var want int64
	for i := int64(0); i < 3000; i++ {
		f.Put(i)
		want += i
	}
	if got := <-done; got != want {
		t.Fatalf("transfer sum = %d, want %d", got, want)
	}
	if w := f.Shards(); w != 1 {
		t.Errorf("quiet ping-pong grew the fabric to width %d, want 1", w)
	}
	if f.WidthChanges() != 0 {
		t.Errorf("quiet run performed %d width changes, want 0", f.WidthChanges())
	}
}

// TestDriveWidthTransitions pushes the controller through grow → shrink →
// grow deterministically and checks the protocol at each step.
func TestDriveWidthTransitions(t *testing.T) {
	f := newAutoFabric(8, nil)
	for i := 0; i < 64 && f.Shards() < 8; i++ {
		f.DriveWidth(true)
	}
	if w := f.Shards(); w != 8 {
		t.Fatalf("contended drive stalled at width %d, want 8", w)
	}
	grown := f.WidthChanges()
	if grown == 0 {
		t.Fatal("no width changes recorded after growth")
	}
	for i := 0; i < 256 && f.Shards() > 1; i++ {
		f.DriveWidth(false)
	}
	if w := f.Shards(); w != 1 {
		t.Fatalf("quiet drive stalled at width %d, want 1", w)
	}
	if f.WidthChanges() <= grown {
		t.Error("collapse recorded no width changes")
	}
	for i := 0; i < 64 && f.Shards() < 8; i++ {
		f.DriveWidth(true)
	}
	if w := f.Shards(); w != 8 {
		t.Fatalf("re-grow stalled at width %d, want 8", w)
	}
}

// TestShrinkDrainsParkedWaiters: consumers parked on high shards while
// the fabric is wide still pair after a collapse to width 1 — the drain
// protocol re-asserts their presence and the full-summary sweeps find
// them.
func TestShrinkDrainsParkedWaiters(t *testing.T) {
	f := newAutoFabric(8, nil)
	for i := 0; i < 64 && f.Shards() < 8; i++ {
		f.DriveWidth(true)
	}

	const consumers = 16
	var got sync.Map
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			got.Store(c, f.Take())
		}(c)
	}
	// Wait until every consumer is parked somewhere in the fabric.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := 0
		for i := range f.shards {
			if f.shards[i].HasWaitingConsumer() {
				n++
			}
		}
		if n > 0 && !f.IsEmpty() {
			time.Sleep(time.Millisecond)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("consumers never parked")
		}
		runtime.Gosched()
	}

	// Collapse to width 1 with the waiters still parked.
	for i := 0; i < 256 && f.Shards() > 1; i++ {
		f.DriveWidth(false)
	}
	if w := f.Shards(); w != 1 {
		t.Fatalf("collapse stalled at width %d", w)
	}

	// Producers homed on shard 0 must still reach every parked consumer.
	for c := 0; c < consumers; c++ {
		f.Put(int64(100 + c))
	}
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(10 * time.Second):
		t.Fatal("parked consumers stranded after width collapse")
	}
	var sum int64
	got.Range(func(_, v any) bool { sum += v.(int64); return true })
	var want int64
	for c := 0; c < consumers; c++ {
		want += int64(100 + c)
	}
	if sum != want {
		t.Fatalf("conservation violated after collapse: sum %d, want %d", sum, want)
	}
}

// TestFixedFabricIgnoresController: a fixed-width fabric has no controller
// — DriveWidth is a no-op and stats report non-adaptive.
func TestFixedFabricIgnoresController(t *testing.T) {
	f := newQueueFabric(4, nil)
	f.DriveWidth(true)
	f.DriveWidth(true)
	if w := f.Shards(); w != 4 {
		t.Errorf("fixed fabric width = %d after DriveWidth, want 4", w)
	}
	if f.Adaptive() || f.WidthChanges() != 0 {
		t.Errorf("fixed fabric reports adaptive=%v changes=%d", f.Adaptive(), f.WidthChanges())
	}
}

// TestStatsSnapshot sanity-checks the introspection snapshot fields.
func TestStatsSnapshot(t *testing.T) {
	h := metrics.New()
	f := newAutoFabric(4, h)
	for i := 0; i < 64 && f.Shards() < 4; i++ {
		f.DriveWidth(true)
	}
	st := f.Stats()
	if st.MaxShards != 4 || st.Width != 4 || !st.Adaptive {
		t.Errorf("snapshot %+v, want max 4 width 4 adaptive", st)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("per-shard entries = %d, want 4", len(st.Shards))
	}
	for i, sh := range st.Shards {
		if sh.Index != i || !sh.Active {
			t.Errorf("shard %d snapshot %+v, want active with matching index", i, sh)
		}
	}
	if st.WidthChanges == 0 {
		t.Error("snapshot lost the width transitions")
	}
	// The gauge mirrors the effective width.
	if g := h.Snapshot().Get(metrics.FabricWidth); g != 4 {
		t.Errorf("fabric-width gauge = %d, want 4", g)
	}
}
