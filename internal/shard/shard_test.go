package shard

import (
	"sync"
	"testing"
	"time"

	"synchq/internal/core"
	"synchq/internal/metrics"
)

// newQueueFabric builds an n-shard fabric of fair dual queues sharing one
// metrics handle.
func newQueueFabric(n int, h *metrics.Handle) *Fabric[int64] {
	return New(n, func(int) Dual[int64] {
		return core.NewDualQueue[int64](core.WaitConfig{Metrics: h})
	}).SetMetrics(h)
}

func TestCeilPow2(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
		{63, 64}, {64, 64}, {65, 64}, {1000, 64},
	} {
		if got := ceilPow2(tc.in); got != tc.want {
			t.Errorf("ceilPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestNewRoundsShardCount(t *testing.T) {
	if got := newQueueFabric(3, nil).Shards(); got != 4 {
		t.Errorf("New(3) built %d shards, want 4", got)
	}
	if got := newQueueFabric(0, nil).Shards(); got != DefaultShards() {
		t.Errorf("New(0) built %d shards, want DefaultShards()=%d", got, DefaultShards())
	}
}

func TestNearestBit(t *testing.T) {
	for _, tc := range []struct {
		avail uint64
		home  int
		want  int
	}{
		{1 << 5, 5, 5},       // home itself
		{1 << 5, 0, 5},       // above home
		{1 << 2, 5, 2},       // wraps around
		{1<<2 | 1<<7, 5, 7},  // nearest cyclically above wins
		{1<<2 | 1<<7, 1, 2},  // from 1, bit 2 is nearer than 7
		{1, 63, 0},           // wrap from the top
		{1 << 63, 0, 63},     // far bit
		{^uint64(0), 17, 17}, // all set: home
	} {
		if got := nearestBit(tc.avail, tc.home); got != tc.want {
			t.Errorf("nearestBit(%#x, %d) = %d, want %d", tc.avail, tc.home, got, tc.want)
		}
	}
}

func TestPutTakePairsAcrossShards(t *testing.T) {
	f := newQueueFabric(4, nil)
	const n = 4000
	const workers = 4
	var sum int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < n/workers; i++ {
				local += f.Take()
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < n/workers; i++ {
				f.Put(base + i)
			}
		}(int64(w) * (n / workers))
	}
	wg.Wait()
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Errorf("sum of transferred values = %d, want %d (lost or duplicated hand-off)", sum, want)
	}
	if !f.IsEmpty() {
		t.Error("fabric not empty after balanced run")
	}
}

func TestOfferPollRequireWaiter(t *testing.T) {
	f := newQueueFabric(4, nil)
	if f.Offer(1) {
		t.Error("Offer succeeded on an empty fabric")
	}
	if _, ok := f.Poll(); ok {
		t.Error("Poll succeeded on an empty fabric")
	}
	done := make(chan int64)
	go func() { done <- f.Take() }()
	// The taker parks on a random shard; the offer's sweep must find it
	// there whatever our home draw is.
	deadline := time.Now().Add(2 * time.Second)
	for !f.Offer(42) {
		if time.Now().After(deadline) {
			t.Fatal("Offer never found the waiting consumer")
		}
		time.Sleep(time.Millisecond)
	}
	if got := <-done; got != 42 {
		t.Errorf("Take = %d, want 42", got)
	}
}

func TestOfferTimeoutExpiresAndPairs(t *testing.T) {
	f := newQueueFabric(2, nil)
	t0 := time.Now()
	if f.OfferTimeout(1, 10*time.Millisecond) {
		t.Error("OfferTimeout succeeded with no consumer")
	}
	if time.Since(t0) < 10*time.Millisecond {
		t.Error("OfferTimeout returned before its patience expired")
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		f.Put(7)
	}()
	if v, ok := f.PollTimeout(2 * time.Second); !ok || v != 7 {
		t.Errorf("PollTimeout = (%d,%v), want (7,true)", v, ok)
	}
}

func TestCancelUnblocksWaiters(t *testing.T) {
	f := newQueueFabric(4, nil)
	cancel := make(chan struct{})
	done := make(chan core.Status)
	go func() {
		_, st := f.TakeDeadline(time.Time{}, cancel)
		done <- st
	}()
	time.Sleep(2 * time.Millisecond)
	close(cancel)
	if st := <-done; st != core.Canceled {
		t.Errorf("canceled TakeDeadline status = %v, want Canceled", st)
	}
	if f.HasWaitingConsumer() {
		t.Error("fabric still reports a waiting consumer after cancellation")
	}
}

func TestCloseWakesWaitersAndRefusesNewWork(t *testing.T) {
	f := newQueueFabric(4, nil)
	// All waiters are consumers — a mixed population would pair up instead
	// of waiting for Close. (The producer side of the wake-on-close path is
	// covered by TestCloseWakesProducers.)
	const waiters = 6
	statuses := make(chan core.Status, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, st := f.TakeDeadline(time.Time{}, nil)
			statuses <- st
		}()
	}
	// Let the waiters commit to their shards before closing.
	time.Sleep(5 * time.Millisecond)
	f.Close()
	for i := 0; i < waiters; i++ {
		select {
		case st := <-statuses:
			if st != core.Closed {
				t.Errorf("waiter %d woke with status %v, want Closed", i, st)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d stranded after Close", i)
		}
	}
	if !f.Closed() {
		t.Error("Closed() = false after Close")
	}
	if st := f.PutDeadline(1, time.Time{}, nil); st != core.Closed {
		t.Errorf("PutDeadline on closed fabric = %v, want Closed", st)
	}
	if f.Offer(1) {
		t.Error("Offer succeeded on a closed fabric")
	}
	func() {
		defer func() {
			if r := recover(); r != errClosedDemand {
				t.Errorf("Put on closed fabric panicked with %v, want %q", r, errClosedDemand)
			}
		}()
		f.Put(1)
	}()
}

func TestCloseWakesProducers(t *testing.T) {
	f := newQueueFabric(4, nil)
	const waiters = 6
	statuses := make(chan core.Status, waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			statuses <- f.PutDeadline(int64(i), time.Time{}, nil)
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	f.Close()
	for i := 0; i < waiters; i++ {
		select {
		case st := <-statuses:
			if st != core.Closed {
				t.Errorf("producer %d woke with status %v, want Closed", i, st)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("producer %d stranded after Close", i)
		}
	}
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	f := newQueueFabric(4, nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); f.Close() }()
	}
	wg.Wait()
	if !f.Closed() {
		t.Error("fabric not closed after concurrent Close calls")
	}
}

func TestReservationsPinToShardAndPair(t *testing.T) {
	f := newQueueFabric(4, nil)
	tkt, ok := f.ReservePut(9)
	if ok || tkt == nil {
		t.Fatalf("ReservePut on empty fabric = (%v,%v), want a pinned ticket", tkt, ok)
	}
	// The pinned reservation must be visible to a consumer's sweep.
	v, tk2, ok := f.ReserveTake()
	if !ok || tk2 != nil || v != 9 {
		t.Fatalf("ReserveTake = (%d,%v,%v), want immediate (9,nil,true)", v, tk2, ok)
	}
	// A put ticket's followup reports fulfillment; the datum traveled to
	// the consumer.
	if _, ok := tkt.TryFollowup(); !ok {
		t.Error("producer followup did not report fulfillment")
	}

	// And symmetrically: a pinned take reservation absorbs a later put.
	_, tkt3, ok := f.ReserveTake()
	if ok || tkt3 == nil {
		t.Fatal("second ReserveTake should pin a ticket on the empty fabric")
	}
	if tk, ok := f.ReservePut(11); !ok || tk != nil {
		t.Fatal("ReservePut should have fulfilled the pinned take reservation")
	}
	if got, ok := tkt3.TryFollowup(); !ok || got != 11 {
		t.Errorf("consumer followup = (%d,%v), want (11,true)", got, ok)
	}

	// Aborted reservations leave the fabric clean.
	_, tkt4, ok := f.ReserveTake()
	if ok {
		t.Fatal("ReserveTake found a counterpart on a drained fabric")
	}
	if !tkt4.Abort() {
		t.Error("Abort of an unmatched reservation failed")
	}
	if !f.IsEmpty() {
		t.Error("fabric not empty after aborted reservation")
	}
}

// TestStealIsCountedAndPairs pins the steal arc deterministically: a
// reservation pinned to a known shard, then a sweep homed elsewhere must
// find it, transfer the value, and count a ShardSteals event.
func TestStealIsCountedAndPairs(t *testing.T) {
	h := metrics.New()
	f := newQueueFabric(4, h)
	const shard = 2
	tkt, ok := f.Shard(shard).ReservePut(33)
	if ok {
		t.Fatal("ReservePut found a counterpart on an empty shard")
	}
	setBit(&f.prod, 1<<shard)

	home := (shard + 1) & f.mask
	v, ok := f.sweepTake(home, false, 0, &sweepStat{})
	if !ok || v != 33 {
		t.Fatalf("sweepTake(home=%d) = (%d,%v), want (33,true)", home, v, ok)
	}
	if got := h.Snapshot().Get(metrics.ShardSteals); got != 1 {
		t.Errorf("ShardSteals = %d after a cross-shard rescue, want 1", got)
	}
	if _, ok := tkt.TryFollowup(); !ok {
		t.Error("stolen producer's followup did not report fulfillment")
	}

	// A sweep homed on the reservation's own shard is a local pairing, not
	// a steal.
	tkt2, _ := f.Shard(shard).ReservePut(44)
	setBit(&f.prod, 1<<shard)
	if v, ok := f.sweepTake(shard, false, 0, &sweepStat{}); !ok || v != 44 {
		t.Fatalf("home sweep = (%d,%v), want (44,true)", v, ok)
	}
	if got := h.Snapshot().Get(metrics.ShardSteals); got != 1 {
		t.Errorf("ShardSteals = %d after a home-shard pairing, want still 1", got)
	}
	tkt2.TryFollowup()
}

// TestSweepClearsStaleBits verifies the summaries stay tight: a bit left
// set after its waiter is gone is dropped by the next sweep that probes it.
func TestSweepClearsStaleBits(t *testing.T) {
	f := newQueueFabric(4, nil)
	setBit(&f.prod, 1<<1)
	if _, ok := f.sweepTake(0, false, 0, &sweepStat{}); ok {
		t.Fatal("sweep paired on an empty fabric")
	}
	if f.prod.Load() != 0 {
		t.Errorf("stale prod bit survived the sweep: %#x", f.prod.Load())
	}
}
