package shard

import (
	"math/rand/v2"
	"slices"
	"sync"
	"testing"
	"time"

	"synchq/internal/core"
	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/verify"
)

// This file extends the stress-to-verify bridge to the sharded fabric: the
// fabric's striped dispatch, cross-shard steals, and commit protocol all
// relax ordering, but synchrony and conservation must hold exactly as they
// do for one shard — every transfer's put and take intervals overlap, no
// value is lost, duplicated, or invented. The bridge drives the real
// fabric with a mixed timed/canceled workload, records the full history,
// and hands it to verify.Check.

// runFabricBridge is the shard-package twin of core's runHistoryBridge.
func runFabricBridge(t *testing.T, f *Fabric[int64], producers, consumers, perProducer int) {
	t.Helper()
	rec := verify.NewRecorder()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id), 11))
			log := rec.NewThread()
			for seq := int64(0); seq < int64(perProducer); seq++ {
				v := id<<40 | seq
				inv := log.Begin()
				var ok bool
				if rng.IntN(5) < 3 {
					patience := time.Duration(rng.IntN(800)) * time.Microsecond
					ok = f.OfferTimeout(v, patience)
				} else {
					cancel := make(chan struct{})
					timer := time.AfterFunc(time.Duration(rng.IntN(500))*time.Microsecond, func() {
						close(cancel)
					})
					ok = f.PutDeadline(v, time.Time{}, cancel) == core.OK
					timer.Stop()
				}
				log.End(verify.Put, v, inv, ok)
			}
		}(int64(p))
	}

	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func(id int64) {
			defer cg.Done()
			rng := rand.New(rand.NewPCG(uint64(id)+1000, 13))
			log := rec.NewThread()
			for {
				select {
				case <-stop:
					return
				default:
				}
				inv := log.Begin()
				var v int64
				var ok bool
				if rng.IntN(5) < 4 {
					patience := time.Duration(rng.IntN(800)) * time.Microsecond
					v, ok = f.PollTimeout(patience)
				} else {
					cancel := make(chan struct{})
					timer := time.AfterFunc(time.Duration(rng.IntN(500))*time.Microsecond, func() {
						close(cancel)
					})
					var st core.Status
					v, st = f.TakeDeadline(time.Time{}, cancel)
					ok = st == core.OK
					timer.Stop()
				}
				log.End(verify.Take, v, inv, ok)
			}
		}(int64(c))
	}

	wg.Wait()
	close(stop)
	cg.Wait()

	drainLog := rec.NewThread()
	for {
		inv := drainLog.Begin()
		v, ok := f.PollTimeout(10 * time.Millisecond)
		drainLog.End(verify.Take, v, inv, ok)
		if !ok {
			break
		}
	}

	res := verify.Check(rec.History(), true)
	for _, e := range res.Errors {
		t.Errorf("history violation: %s", e)
	}
	if res.Transfers == 0 {
		t.Fatal("bridge run completed zero transfers; the mix exercised nothing")
	}
}

func fabricBridgeSizes(t *testing.T) (producers, consumers, perProducer int) {
	if testing.Short() {
		return 3, 3, 120
	}
	return 4, 4, 400
}

func TestHistoryBridgeFabric(t *testing.T) {
	p, c, n := fabricBridgeSizes(t)
	f := newQueueFabric(4, nil)
	runFabricBridge(t, f, p, c, n)
	// The drain must leave no LIVE node behind — a leftover data node is a
	// lost value, a leftover reservation a stranded waiter. Structural
	// emptiness (IsEmpty) is deliberately not asserted: the dual queue's
	// deferred cleaning legitimately leaves up to one canceled node linked
	// per shard (a canceled tail cannot be unlinked until a later enqueue;
	// see cleanMe in core/dualqueue.go), so each shard's live count is
	// checked instead. Conservation is verified from the history either way.
	for i := 0; i < f.Shards(); i++ {
		if n := f.Shard(i).(*core.DualQueue[int64]).Len(); n != 0 {
			t.Errorf("shard %d holds %d live nodes after bridge run", i, n)
		}
	}
}

func TestHistoryBridgeFabricStackShards(t *testing.T) {
	p, c, n := fabricBridgeSizes(t)
	f := New(4, func(int) Dual[int64] {
		return core.NewDualStack[int64](core.WaitConfig{})
	})
	runFabricBridge(t, f, p, c, n)
}

// TestHistoryBridgeFabricChaos reruns the bridge with the chaos injector
// shared by the shards and the fabric's steal site: injected CAS losses,
// preemption pauses, spurious unparks, and timer skew must delay
// transfers, never corrupt them.
func TestHistoryBridgeFabricChaos(t *testing.T) {
	p, c, n := fabricBridgeSizes(t)
	for _, seed := range []uint64{1, 42} {
		inj := fault.Chaos(seed)
		h := metrics.New()
		f := New(4, func(int) Dual[int64] {
			return core.NewDualQueue[int64](core.WaitConfig{Metrics: h, Fault: inj})
		}).SetMetrics(h).SetFault(inj)
		runFabricBridge(t, f, p, c, n)
	}
}

// TestShardStealReplayDeterminism is the fabric's slice of the chaos
// replay guarantee: with a single goroutine driving a fixed script of
// pinned reservations and fixed-home sweeps, the injector's PRNG draw
// order is fully determined, so the same seed must yield the identical
// stream of ShardStealCAS events and a different seed a different one.
func stealScriptEvents(t *testing.T, seed uint64) []fault.Site {
	t.Helper()
	inj := fault.New(fault.Config{
		Seed:        seed,
		FailCASRate: 0.7,
		Record:      true,
		PreemptFunc: func(fault.Site) {}, // scripted: no real sleeps
	})
	f := New(4, func(int) Dual[int64] {
		return core.NewDualQueue[int64](core.WaitConfig{})
	}).SetFault(inj)
	for i := 0; i < 60; i++ {
		shard := i % 4
		tkt, ok := f.Shard(shard).ReservePut(int64(i))
		if ok {
			t.Fatalf("op %d: immediate fulfillment on an empty shard", i)
		}
		setBit(&f.prod, 1<<uint(shard))
		home := (shard + 1 + i%3) & f.mask
		v, ok := f.sweepTake(home, false, 0, &sweepStat{})
		if ok {
			if v != int64(i) {
				t.Fatalf("op %d: sweep returned %d", i, v)
			}
			tkt.TryFollowup()
			continue
		}
		// The injected lost race skipped the only occupied shard; the
		// critical sweep must still find it (the no-stranding guarantee).
		if v, ok := f.sweepTake(home, true, 0, &sweepStat{}); !ok || v != int64(i) {
			t.Fatalf("op %d: critical sweep = (%d,%v), want (%d,true)", i, v, ok, i)
		}
		tkt.TryFollowup()
	}
	ev := inj.Events()
	if len(ev) == 0 {
		t.Fatal("script triggered no injected events; replay test proved nothing")
	}
	for _, s := range ev {
		if s != fault.ShardStealCAS {
			t.Fatalf("unexpected site %v in a steal-only script", s)
		}
	}
	return ev
}

func TestShardStealReplayDeterminism(t *testing.T) {
	a := stealScriptEvents(t, 42)
	b := stealScriptEvents(t, 42)
	if !slices.Equal(a, b) {
		t.Fatalf("same seed diverged: run1 %d events, run2 %d events", len(a), len(b))
	}
	// With one fixed script, a different seed changes which probes lose
	// their race, so the event count (not just contents) should differ for
	// at least one of a few alternative seeds.
	different := false
	for _, seed := range []uint64{43, 44, 45} {
		if len(stealScriptEvents(t, seed)) != len(a) {
			different = true
			break
		}
	}
	if !different {
		t.Log("alternative seeds matched run length; contents compared instead")
	}
}
