package shard

import (
	"testing"
	"unsafe"
)

const cacheLine = 64

// TestPresenceSummaryLayout pins the fabric's false-sharing contract: the
// prod and cons presence words are RMWed by opposite parties (producers
// announce on prod, consumers on cons) and both are re-set/cleared during
// steal sweeps, so they must not share a cache line with each other or
// with the read-only shards header.
func TestPresenceSummaryLayout(t *testing.T) {
	var f Fabric[int64]
	prod, cons := unsafe.Offsetof(f.prod), unsafe.Offsetof(f.cons)
	if prod/cacheLine == cons/cacheLine {
		t.Errorf("prod (%d) and cons (%d) share a cache line: producer announcements would invalidate consumer announcements", prod, cons)
	}
	if hdr := unsafe.Offsetof(f.shards); hdr/cacheLine == prod/cacheLine {
		t.Errorf("shards header (%d) shares a line with prod (%d): summary RMWs would thrash the per-op shard lookup", hdr, prod)
	}
}
