package shard

// The self-scaling width controller. A fixed-width fabric makes the
// caller guess the contention level at construction; guessed too wide, a
// quiet structure pays the sweep-and-announce machinery across shards
// that never hold anyone (the committed scaling sweep shows ~25% over the
// plain core at one pair), guessed too narrow, the single hot shard is
// the very bottleneck the fabric exists to split. The controller makes
// the guess continuously instead: every completed operation reports how
// many probe races it lost and whether it completed as a cross-shard
// steal, the evidence feeds the shared spin.EWMA filter, and the
// effective width — the number of shards NEW arrivals route to — follows
// the smoothed contention level, growing immediately under pressure and
// collapsing one power-of-two step at a time when it lifts.
//
// Width is a routing hint, never a correctness boundary. Three facts make
// a width change safe with no handshake:
//
//   - home() consults the width only to place new arrivals; every sweep
//     and every Dekker reload scans the FULL 64-bit presence summaries,
//     so a waiter committed to a shard above the current width is exactly
//     as visible as one below it.
//   - presence bits are cleared only by probes that re-check occupancy
//     and restore the bit when a waiter is present, so deactivation
//     cannot strand a bit: nothing about a width change touches the
//     summaries' durability invariant.
//   - Close() closes every constructed shard regardless of width, so the
//     closed total order (no transfer completes after Closed() is
//     observed true) is width-independent.
//
// Deactivation is still an active protocol, not just a smaller mask: the
// controller publishes the narrower mask first (no new arrival routes to
// a retiring shard), then sweeps the retiring shards — re-asserting the
// presence bit of any shard still holding waiters and resetting its
// probe-skip streak — so every stranded-looking waiter is immediately
// flagged for the next sweep and drains through the ordinary Dekker
// commit path. The fault sites ShardGrowPause and ShardDrainPause freeze
// the two windows (decide-to-grow → wider mask visible, narrower mask
// visible → repair sweep done) so the chaos harness can hold them open.

import (
	"math/rand/v2"
	"sync/atomic"

	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/spin"
)

const (
	// probeSkipAfter is the steal-weighting threshold: a shard observed
	// empty on this many consecutive probes is skipped by non-critical
	// sweeps (an announce or a successful probe resets the streak).
	probeSkipAfter = 8
	// probeReprobeEvery lets one in this many skipped probes through, so
	// a skip-listed shard whose reset was lost to a racy streak update is
	// re-sensed within a bounded number of sweeps.
	probeReprobeEvery = 16
	// ctlSigCap bounds one operation's lost-race contribution to the
	// contention EWMA so a single pathological operation cannot saturate
	// the signal (same role as the arena adaptor's cap).
	ctlSigCap = 8
	// ctlQuietMask samples uncontended completions 1-in-64 into the
	// controller: the quiet path pays a per-P random draw instead of a
	// shared-word RMW, which is what keeps the adaptive fabric within a
	// few percent of the plain core at one pair.
	ctlQuietMask = 63
	// ctlShrinkRuns is the hysteresis: this many consecutive
	// shrink-leaning evaluations before one halving step. A steal-heavy
	// signal (most completions are cross-shard rescues: the population is
	// spread too thin) bypasses the hysteresis and halves at once.
	ctlShrinkRuns = 4
	// ctlGrowRuns is the grow-side hysteresis: this many consecutive
	// grow-leaning evaluations before widening. Real contention sustains
	// the signal across back-to-back operations, so the delay it adds is
	// microseconds; a lone descheduling storm (one operation losing many
	// races to preemption, common when GOMAXPROCS exceeds the CPU count)
	// decays before the second vote and no longer flips the width.
	ctlGrowRuns = 2
)

// shardState is the per-shard controller state, one cache line per shard
// so probe bookkeeping on shard i never false-shares with shard j.
type shardState struct {
	// emptyProd / emptyCons count consecutive probes that found the shard
	// holding no waiting producer / consumer; at probeSkipAfter the
	// steal-weighted sweeps stop probing that side of the shard.
	emptyProd atomic.Int32
	emptyCons atomic.Int32
	// reprobe ticks the skipped probes so one in probeReprobeEvery goes
	// through anyway.
	reprobe atomic.Uint32
	_       uint32
	// depth gauges the shard's committed demand-path waiters (pinned
	// Reserve tickets are owned by the caller past the fabric's sight and
	// are not gauged).
	depth atomic.Int64
	// steals counts hand-offs completed on this shard by an operation
	// homed elsewhere.
	steals atomic.Int64
	// misses counts probes of this shard that found a stale presence
	// hint; skips counts sweeps that passed over it un-probed.
	misses atomic.Int64
	skips  atomic.Int64
	_      [16]byte
}

// widthCtl is the fabric-level half of the controller, present only on
// self-scaling fabrics (nil ctl = fixed width, controller code fully
// skipped).
type widthCtl struct {
	_ [64]byte
	// contend smooths lost probe races per operation: the per-shard
	// CAS-failure-rate signal the width follows.
	contend spin.EWMA
	// stray smooths the completed-as-a-steal indicator: the steal-rate
	// signal that weights the shrink decision.
	stray spin.EWMA
	// shrink / grow count consecutive shrink-/grow-leaning evaluations
	// (two-sided hysteresis).
	shrink atomic.Uint32
	grow   atomic.Uint32
	// changes counts width transitions (mirrors metrics.FabricWidthChanges
	// so uninstrumented fabrics can still report it).
	changes atomic.Int64
	_       [32]byte
}

// sweepStat accumulates one operation's contention evidence across its
// sweeps and commit attempts; the wrappers hand it to observe once when
// the operation completes.
type sweepStat struct {
	fails int  // probe and Dekker races lost
	stole bool // completed on a non-home shard
}

// NewAuto returns a self-scaling fabric of up to max shards (0 or
// negative: DefaultShards; other values round up to a power of two,
// capped at 64). The fabric starts collapsed at effective width 1 and
// re-picks its width from observed contention; Shards() reports the
// current effective width, MaxShards the ceiling.
func NewAuto[T any](max int, mk func(i int) Dual[T]) *Fabric[T] {
	f := New(max, mk)
	f.ctl = &widthCtl{}
	f.wmask.Store(0)
	return f
}

// Adaptive reports whether the fabric re-picks its own width (NewAuto)
// rather than keeping the constructed count (New).
func (f *Fabric[T]) Adaptive() bool { return f.ctl != nil }

// WidthChanges returns the number of width transitions the controller has
// performed (always 0 on a fixed-width fabric).
func (f *Fabric[T]) WidthChanges() int64 {
	if f.ctl == nil {
		return 0
	}
	return f.ctl.changes.Load()
}

// observe folds one completed operation's evidence into the controller.
// Fixed-width fabrics return after one branch. Uncontended completions
// are sampled 1-in-64 through a per-P random draw so the quiet fast path
// shares no controller word; contended completions (which already paid
// for their races) always report and always evaluate.
func (f *Fabric[T]) observe(ss *sweepStat) {
	c := f.ctl
	if c == nil {
		return
	}
	if ss.fails == 0 && !ss.stole {
		if rand.Uint32()&ctlQuietMask != 0 {
			return
		}
		c.contend.Observe(0)
		c.stray.Observe(0)
		f.evalWidth()
		return
	}
	// Races lost by an operation that completed as a steal are evidence of
	// misrouting (the waiter population is spread thinner than the traffic),
	// not of parallelism demand: counting them toward contend would lock a
	// spuriously-grown fabric wide — at width 2 with one pair, every op is a
	// steal and loses probe races, so contend would never decay back below
	// one. Steal completions feed only stray, which accelerates collapse.
	n := uint64(ss.fails)
	if ss.stole {
		n = 0
	}
	if n > ctlSigCap {
		n = ctlSigCap
	}
	c.contend.Observe(n)
	if ss.stole {
		c.stray.Observe(1)
	} else {
		c.stray.Observe(0)
	}
	f.evalWidth()
}

// evalWidth compares the smoothed contention level against the current
// effective width: one more shard per unit of average lost races per
// operation (the arena adaptor's widening rule), rounded up to a power of
// two for the routing mask. Growth waits for ctlGrowRuns consecutive
// votes (sustained contention re-votes within microseconds; a lone
// preemption burst does not); shrinking waits out the longer hysteresis —
// unless most completions are steals, in which case the waiter population
// is spread too thin for even the hysteresis to be worth paying and the
// fabric halves at once (steal-weighted collapse).
func (f *Fabric[T]) evalWidth() {
	c := f.ctl
	cur := int(f.wmask.Load()) + 1
	desired := ceilPow2(1 + int(c.contend.Value()))
	if n := len(f.shards); desired > n {
		desired = n
	}
	switch {
	case desired > cur:
		c.shrink.Store(0)
		if c.grow.Add(1) >= ctlGrowRuns {
			c.grow.Store(0)
			f.setWidth(desired, cur)
		}
	case desired < cur:
		c.grow.Store(0)
		need := uint32(ctlShrinkRuns)
		if c.stray.Half() {
			need = 1
		}
		if c.shrink.Add(1) >= need {
			c.shrink.Store(0)
			f.setWidth(cur>>1, cur)
		}
	default:
		c.shrink.Store(0)
		c.grow.Store(0)
	}
}

// setWidth publishes a new effective width. Concurrent calls race
// benignly: the mask is a single word, the repair sweep is idempotent,
// and a stale transition is corrected by the next evaluation.
func (f *Fabric[T]) setWidth(to, from int) {
	if to < 1 || to > len(f.shards) || to == from {
		return
	}
	if to > from {
		// Activate window: between the decision and the wider mask
		// becoming visible, arrivals still pile onto the old shards.
		f.f.Preempt(fault.ShardGrowPause)
		f.wmask.Store(int32(to - 1))
	} else {
		// Drain window: narrow the routing mask first — from here on no
		// new arrival is homed on a retiring shard — then sweep the
		// retiring shards clean: any that still holds waiters gets its
		// presence bit re-asserted and its probe-skip streak cleared, so
		// the next sweep (or the counterpart's Dekker reload) finds it
		// and the waiters drain through the ordinary commit path.
		f.wmask.Store(int32(to - 1))
		f.f.Preempt(fault.ShardDrainPause)
		for i := to; i < from; i++ {
			st := &f.st[i]
			st.emptyProd.Store(0)
			st.emptyCons.Store(0)
			if f.shards[i].HasWaitingProducer() {
				setBit(&f.prod, 1<<uint(i))
			}
			if f.shards[i].HasWaitingConsumer() {
				setBit(&f.cons, 1<<uint(i))
			}
		}
	}
	f.ctl.changes.Add(1)
	f.m.Set(metrics.FabricWidth, int64(to))
	f.m.Inc(metrics.FabricWidthChanges)
}

// DriveWidth feeds one synthetic controller observation — a saturating
// contended sample or a quiet one — and forces an immediate width
// evaluation, bypassing the quiet-path sampling. It exists for harnesses
// and tests that must push the controller through grow → shrink → grow
// transitions deterministically (single-CPU hosts cannot provoke real
// contention on demand); the transitions themselves run the real
// protocol, including the grow/drain fault windows. No-op on a
// fixed-width fabric.
func (f *Fabric[T]) DriveWidth(contended bool) {
	c := f.ctl
	if c == nil {
		return
	}
	if contended {
		c.contend.Observe(ctlSigCap)
	} else {
		c.contend.Observe(0)
		c.stray.Observe(0)
	}
	f.evalWidth()
}

// skipProbe implements the steal-weighted sweep: a foreign shard observed
// empty on probeSkipAfter consecutive probes is passed over, except for
// the periodic re-probe. streak is the side-specific empty counter of the
// shard under consideration.
func (f *Fabric[T]) skipProbe(i int, streak *atomic.Int32) bool {
	if streak.Load() < probeSkipAfter {
		return false
	}
	if f.st[i].reprobe.Add(1)%probeReprobeEvery == 0 {
		return false
	}
	f.st[i].skips.Add(1)
	f.m.Inc(metrics.ShardProbeSkips)
	return true
}

// resetStreak clears an empty-probe streak, loading first so the common
// already-zero case (every probe of a busy shard) costs a read, not a
// read-modify-write.
func resetStreak(streak *atomic.Int32) {
	if streak.Load() != 0 {
		streak.Store(0)
	}
}

// noteProbeEmpty records a probe that found a flagged shard empty on the
// probed side.
func (f *Fabric[T]) noteProbeEmpty(i int, streak *atomic.Int32) {
	streak.Add(1)
	f.st[i].misses.Add(1)
	f.m.Inc(metrics.ShardProbeMisses)
}

// ShardStats is one shard's slice of Stats.
type ShardStats struct {
	Index  int   `json:"index"`
	Active bool  `json:"active"` // within the current effective width
	Depth  int64 `json:"depth"`
	Steals int64 `json:"steals"`
}

// Stats is a point-in-time snapshot of the fabric's introspection
// surface: the width pair, the controller's transition count, and the
// per-shard depth/steal breakdown. Field names are stable (snake_case
// JSON tags) in the same way the metrics counter names are.
type Stats struct {
	MaxShards    int          `json:"max_shards"`
	Width        int          `json:"width"`
	Adaptive     bool         `json:"adaptive"`
	WidthChanges int64        `json:"width_changes"`
	Steals       int64        `json:"steals"`
	ProbeMisses  int64        `json:"probe_misses"`
	ProbeSkips   int64        `json:"probe_skips"`
	Shards       []ShardStats `json:"shards"`
}

// Stats snapshots the fabric. Counters are read without mutual exclusion;
// the snapshot is consistent per word, like a metrics.Snapshot.
func (f *Fabric[T]) Stats() Stats {
	width := int(f.wmask.Load()) + 1
	s := Stats{
		MaxShards:    len(f.shards),
		Width:        width,
		Adaptive:     f.ctl != nil,
		WidthChanges: f.WidthChanges(),
		Shards:       make([]ShardStats, len(f.shards)),
	}
	for i := range f.st {
		st := &f.st[i]
		steals := st.steals.Load()
		s.Steals += steals
		s.ProbeMisses += st.misses.Load()
		s.ProbeSkips += st.skips.Load()
		s.Shards[i] = ShardStats{
			Index:  i,
			Active: i < width,
			Depth:  st.depth.Load(),
			Steals: steals,
		}
	}
	return s
}
