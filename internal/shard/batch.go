package shard

import (
	"time"

	"synchq/internal/core"
	"synchq/internal/fault"
	"synchq/internal/metrics"
)

// Batched operations over the fabric route each burst home-first with
// spillover: one home draw and one summary load dispatch the whole batch,
// and the sweep drains each flagged shard until it refuses before moving to
// the next — so a k-item burst fans across shards without re-dispatching
// (re-drawing a home, re-loading the summary) per item. Only the items the
// burst sweep cannot pair fall back to the blocking single-item engines,
// which is unavoidable: a synchronous hand-off with no counterpart must
// wait, and waiting is per-reservation.
//
// The fabric's ordering contract ("per-shard FIFO, globally none") extends
// to batches: items of one burst delivered to the same shard keep their
// slice order, items spilled across shards may pair in any order.

// PutBatch transfers items in order of dispatch, burst-sweeping flagged
// shards first and committing the remainder one reservation at a time. It
// returns the count delivered and OK when all of items transferred; on
// Timeout/Canceled/Closed the count is the partial fill.
func (f *Fabric[T]) PutBatch(items []T, deadline time.Time, cancel <-chan struct{}) (int, core.Status) {
	if len(items) == 0 {
		return 0, core.OK
	}
	if f.closedStatus() {
		return 0, core.Closed
	}
	var ss sweepStat
	defer f.observe(&ss)
	t0 := f.m.Start()
	home := f.home()
	n := 0
	for n < len(items) {
		n += f.sweepPutBurst(home, items[n:], t0, &ss)
		if n == len(items) {
			break
		}
		if st := f.putEngine(items[n], deadline, cancel, &ss); st != core.OK {
			return n, st
		}
		n++
	}
	return n, core.OK
}

// TakeBatch appends up to max values to buf: the first take waits under the
// deadline through the single-item engine, the fill burst-sweeps flagged
// shards for producers already committed. See the core TakeBatch contract:
// OK on a normal end, Timeout/Canceled only when the first wait aborted
// empty-handed, Closed with already-taken values kept in buf.
func (f *Fabric[T]) TakeBatch(buf []T, max int, deadline time.Time, cancel <-chan struct{}) ([]T, core.Status) {
	if max <= 0 {
		return buf, core.OK
	}
	if f.closedStatus() {
		return buf, core.Closed
	}
	var ss sweepStat
	defer f.observe(&ss)
	v, st := f.takeEngine(deadline, cancel, &ss)
	if st != core.OK {
		return buf, st
	}
	buf = append(buf, v)
	taken := 1
	t0 := f.m.Start()
	home := f.home()
	for taken < max {
		got := f.sweepTakeBurst(home, &buf, max-taken, t0, &ss)
		taken += got
		if got == 0 {
			break
		}
	}
	return buf, core.OK
}

// sweepPutBurst is sweepPut's batched form: the same home-first flagged
// walk with the stale-bit clear/re-check/restore repair, except a shard
// that accepts keeps receiving items until it refuses — one summary load
// and one occupancy check amortized over however many consumers the shard
// holds. It returns the number of items delivered. Burst sweeps are never
// the commit protocol's critical reload, so the steal-race injection
// applies to every foreign probe.
func (f *Fabric[T]) sweepPutBurst(home int, items []T, t0 int64, ss *sweepStat) int {
	n := 0
	avail := f.cons.Load()
	for avail != 0 && n < len(items) {
		i := nearestBit(avail, home)
		avail &^= 1 << uint(i)
		if i != home {
			if f.skipProbe(i, &f.st[i].emptyCons) {
				continue
			}
			if f.f.FailCAS(fault.ShardStealCAS) {
				continue
			}
		}
		if f.shards[i].HasWaitingConsumer() {
			resetStreak(&f.st[i].emptyCons)
			for n < len(items) && f.shards[i].Offer(items[n]) {
				if i != home {
					f.st[i].steals.Add(1)
					ss.stole = true
					f.m.Inc(metrics.ShardSteals)
					f.m.Since(metrics.StealNs, t0)
				}
				n++
			}
		} else {
			f.noteProbeEmpty(i, &f.st[i].emptyCons)
			clearBit(&f.cons, 1<<uint(i))
			if f.shards[i].HasWaitingConsumer() {
				resetStreak(&f.st[i].emptyCons)
				setBit(&f.cons, 1<<uint(i))
				avail |= 1 << uint(i)
			}
		}
	}
	return n
}

// sweepTakeBurst drains up to max values from flagged producer shards,
// home-first, polling each shard dry before moving on. It appends to *buf
// and returns the count taken.
func (f *Fabric[T]) sweepTakeBurst(home int, buf *[]T, max int, t0 int64, ss *sweepStat) int {
	n := 0
	avail := f.prod.Load()
	for avail != 0 && n < max {
		i := nearestBit(avail, home)
		avail &^= 1 << uint(i)
		if i != home {
			if f.skipProbe(i, &f.st[i].emptyProd) {
				continue
			}
			if f.f.FailCAS(fault.ShardStealCAS) {
				continue
			}
		}
		if f.shards[i].HasWaitingProducer() {
			resetStreak(&f.st[i].emptyProd)
			for n < max {
				v, ok := f.shards[i].Poll()
				if !ok {
					break
				}
				if i != home {
					f.st[i].steals.Add(1)
					ss.stole = true
					f.m.Inc(metrics.ShardSteals)
					f.m.Since(metrics.StealNs, t0)
				}
				*buf = append(*buf, v)
				n++
			}
		} else {
			f.noteProbeEmpty(i, &f.st[i].emptyProd)
			clearBit(&f.prod, 1<<uint(i))
			if f.shards[i].HasWaitingProducer() {
				resetStreak(&f.st[i].emptyProd)
				setBit(&f.prod, 1<<uint(i))
				avail |= 1 << uint(i)
			}
		}
	}
	return n
}
