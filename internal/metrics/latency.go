package metrics

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// This file is the latency layer of the instrumentation package: fixed-size
// log₂-nanosecond histograms recorded with the same discipline as the
// counters — lock-free, allocation-free, nil-safe, cache-line padded — so
// that enabling them perturbs the hand-off paths by clock reads only, and
// disabling them costs exactly one predictable branch. Log₂ buckets trade
// resolution the paper's figures do not need (ns/transfer curves span four
// decades) for a Record that is one bits.Len64 plus one atomic add, with no
// search, no table, and no configuration.

// HistID names one latency histogram in a Handle's set.
type HistID int

// The histogram inventory. All values are durations in nanoseconds; each
// histogram isolates one phase of an operation's life so the paper's
// ns/transfer curves (Figs. 5–6) can be decomposed by where the time went.
const (
	// HandoffNs is the end-to-end latency of successful transfers: from an
	// operation's arrival at the structure to the moment it observes its
	// pairing. Both sides of a pair record it — the fulfilling side sees
	// its own (short) arrival-to-CAS time, the waiting side its full
	// arrival-to-wakeup time — so the distribution answers "how long does
	// an operation spend inside the queue?", not "how often do pairs form".
	HandoffNs HistID = iota
	// SpinNs is the busy-wait phase of each wait: from the wait's start to
	// either the moment it gives up and arms its parker (the spin→park
	// transition) or, for waits fulfilled without ever parking, to the
	// fulfillment itself. Together with ParkNs this is the spin-vs-park
	// breakdown of the §Pragmatics waiting policy.
	SpinNs
	// ParkNs is the blocked interval of each wait that actually parked:
	// from slow-path entry in the parker to its return, including re-parks
	// after stale tokens. Recorded in internal/park, so it covers every
	// structure's waiters uniformly.
	ParkNs
	// WastedNs is the wait time thrown away by operations that gave up:
	// from arrival to abandoning the attempt on timeout, cancellation, or
	// close. Zero-patience poll/offer misses record (near-)zero samples
	// here, so the count tracks the Timeouts+Cancellations counters while
	// the upper percentiles expose how long real patience was burned.
	WastedNs
	// StealNs is the latency of cross-shard rescues in a sharded fabric:
	// from the fabric operation's arrival to a hand-off completed on a
	// shard other than its home shard. Recorded on the fabric's own
	// (merged) handle, separately from the per-shard HandoffNs.
	StealNs
	// ElimNs is the latency of hand-offs completed in an elimination
	// arena: from the arena attempt's start to the slot exchange. Kept
	// apart from HandoffNs so arena hits and backing-structure transfers
	// remain separately visible.
	ElimNs
	// FallbackNs is the end-to-end latency of eliminating-queue operations
	// that missed the arena and succeeded on the backing queue: from the
	// operation's arrival (before the arena detour) to the backing
	// hand-off. FallbackNs − HandoffNs at matching percentiles is the
	// price of a failed elimination probe.
	FallbackNs
	// QueueWaitNs is an executor task's time-in-queue: from acceptance at
	// Submit to the moment a worker dequeues it for execution. The
	// executor-tier analogue of HandoffNs, recorded on the pool's handle
	// so the dispatch delay and the structure's own hand-off latency stay
	// separately visible.
	QueueWaitNs
	// ExecNs is an executor task's execution time: from dequeue to the
	// task function's return (panicking tasks record up to the recover).
	ExecNs
	// DrainNs is the duration of executor drain phases: one sample per
	// phase reached (quiesce, drain-pending, force), so the count exposes
	// how far the drain state machine ran and the buckets how long each
	// phase took.
	DrainNs

	// NumHistIDs is the number of histograms in a Handle.
	NumHistIDs
)

var histNames = [NumHistIDs]string{
	HandoffNs:   "handoff",
	SpinNs:      "spin",
	ParkNs:      "park",
	WastedNs:    "wasted",
	StealNs:     "steal",
	ElimNs:      "elim",
	FallbackNs:  "fallback",
	QueueWaitNs: "queue-wait",
	ExecNs:      "exec",
	DrainNs:     "drain",
}

// String returns the histogram's stable name (used as expvar keys and JSON
// field names; the unit — nanoseconds — is carried by the value fields).
func (id HistID) String() string {
	if id < 0 || id >= NumHistIDs {
		return fmt.Sprintf("metrics.HistID(%d)", int(id))
	}
	return histNames[id]
}

// HistogramNames returns all histogram names in HistID order.
func HistogramNames() []string {
	out := make([]string, NumHistIDs)
	for i := range out {
		out[i] = HistID(i).String()
	}
	return out
}

// HistBuckets is the fixed bucket count of every histogram. Bucket 0 holds
// zero (and clamped negative) durations; bucket i ≥ 1 holds durations in
// [2^(i-1), 2^i − 1] nanoseconds. 63 buckets of powers of two cover every
// positive int64 nanosecond count, so Record needs no range check beyond
// the sign clamp.
const HistBuckets = 64

// BucketIndex returns the histogram bucket for a duration. Negative
// durations (a clock stepping backwards under coarse timers) clamp to
// bucket 0 rather than corrupting an out-of-range index.
func BucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// BucketValue returns the representative duration (in nanoseconds) reported
// for a bucket: its inclusive upper bound, so percentile estimates err on
// the pessimistic side by less than 2×. The top bucket is open-ended and
// reports its lower bound, 2^62 ns — a saturation marker, not a
// measurement.
func BucketValue(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= HistBuckets-1:
		return 1 << 62
	default:
		return (int64(1) << uint(i)) - 1
	}
}

// Histogram is one lock-free log₂-nanosecond histogram: 64 atomic
// buckets. Unlike the Handle's counters the buckets are deliberately NOT
// cache-line padded: a padded histogram set is ~28KB per handle, and the
// resulting cache footprint taxes the instrumented hot path far more than
// the occasional false share between adjacent buckets (under a steady
// latency distribution only a handful of buckets are hot, and neighbors
// are rarely hot together). The zero value is ready to use; it must not be
// copied after first use. Unlike Handle it has no nil-receiver contract —
// a standalone Histogram is always live; the nil-safe path goes through
// Handle.Record/Handle.Since.
type Histogram struct {
	b [HistBuckets]atomic.Int64
}

// Record adds one sample. It is allocation-free and safe for any number of
// concurrent recorders.
func (g *Histogram) Record(d time.Duration) {
	g.b[BucketIndex(d)].Add(1)
}

// Snapshot copies the current bucket counts. Per-bucket atomic, not
// globally consistent — samples recorded concurrently land on one side or
// the other.
func (g *Histogram) Snapshot() BucketCounts {
	var s BucketCounts
	for i := range g.b {
		s[i] = g.b[i].Load()
	}
	return s
}

// reset zeroes the buckets (same caveats as Handle.Reset).
func (g *Histogram) reset() {
	for i := range g.b {
		g.b[i].Store(0)
	}
}

// BucketCounts is a point-in-time copy of one histogram's buckets.
type BucketCounts [HistBuckets]int64

// Count returns the total number of recorded samples.
func (c BucketCounts) Count() int64 {
	var t int64
	for _, v := range c {
		t += v
	}
	return t
}

// Percentile returns the estimated p-quantile (p in [0,1]) in nanoseconds:
// the representative value of the bucket containing the ceil(p·count)-th
// sample. Zero when the histogram is empty; p ≥ 1 returns Max.
func (c BucketCounts) Percentile(p float64) int64 {
	total := c.Count()
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if float64(rank) < p*float64(total) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, v := range c {
		cum += v
		if cum >= rank {
			return BucketValue(i)
		}
	}
	return BucketValue(HistBuckets - 1)
}

// Max returns the representative value of the highest nonempty bucket
// (zero when empty).
func (c BucketCounts) Max() int64 {
	for i := HistBuckets - 1; i >= 0; i-- {
		if c[i] != 0 {
			return BucketValue(i)
		}
	}
	return 0
}

// Add returns the per-bucket sum c + o — the merge operation behind a
// sharded fabric's combined view.
func (c BucketCounts) Add(o BucketCounts) BucketCounts {
	var s BucketCounts
	for i := range c {
		s[i] = c[i] + o[i]
	}
	return s
}

// Sub returns the per-bucket delta c − o, for interval measurements.
func (c BucketCounts) Sub(o BucketCounts) BucketCounts {
	var s BucketCounts
	for i := range c {
		s[i] = c[i] - o[i]
	}
	return s
}

// HistSnapshot is a point-in-time copy of all of a Handle's histograms.
type HistSnapshot [NumHistIDs]BucketCounts

// Get returns the snapshot's buckets for id.
func (s HistSnapshot) Get(id HistID) BucketCounts { return s[id] }

// Add returns the per-bucket sum s + o.
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	var out HistSnapshot
	for i := range s {
		out[i] = s[i].Add(o[i])
	}
	return out
}

// Sub returns the per-bucket delta s − o.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	var out HistSnapshot
	for i := range s {
		out[i] = s[i].Sub(o[i])
	}
	return out
}

// latencyBase anchors the monotonic nanosecond timestamps below. Reading
// elapsed time against a fixed base costs one monotonic-clock read, about
// half the price of time.Now (which also reads the wall clock) — and the
// hand-off paths read this clock twice per instrumented operation, so the
// cheaper form is what keeps the metrics-on overhead inside the
// bench-latency budget.
var latencyBase = time.Now()

// Nanos returns the current monotonic timestamp in nanoseconds since an
// arbitrary process-local base — the clock behind Start/Since, exported
// for recording sites that need to split one reading across several
// histograms. It is never zero (the base predates any caller).
func Nanos() int64 { return int64(time.Since(latencyBase)) }

// SampleShift sets the latency layer's sampling rate: Start times one in
// every SampleRate = 2^SampleShift operations, chosen uniformly at random
// per operation (a per-thread PRNG costing a few nanoseconds, no shared
// state). Unsampled operations carry the zero timestamp, which every
// downstream recording site already treats as "record nothing" — so the
// whole chain of clock reads (arrival, spin→park transition, park exit,
// fulfillment) is paid by only 1/SampleRate of operations, which is what
// holds the metrics-on overhead of a ~600ns hand-off under the
// bench-latency gate's 10% budget. Sampling at the arrival site is
// unbiased for the distributions (an operation's fate cannot influence a
// decision made before it unfolds); histogram counts are sample counts —
// multiply by SampleRate to estimate operation counts, or use the exact
// event counters (Fulfillments, Timeouts, …), which are never sampled.
const (
	SampleShift = 4
	SampleRate  = 1 << SampleShift
)

// Start returns the current monotonic timestamp for a sampled operation,
// and 0 on a nil handle or an unsampled operation — the entry half of the
// Start/Since pair that keeps the uninstrumented path free of clock reads
// and the instrumented path nearly so:
//
//	t0 := q.m.Start()              // 0 (no clock read) when q.m == nil or unsampled
//	...
//	q.m.Since(metrics.HandoffNs, t0) // no-op when t0 is 0
func (h *Handle) Start() int64 {
	if h == nil {
		return 0
	}
	if rand.Uint64()&(SampleRate-1) != 0 {
		return 0
	}
	return Nanos()
}

// Record adds one sample to the histogram. No-op on a nil handle.
func (h *Handle) Record(id HistID, d time.Duration) {
	if h != nil {
		h.hist[id].Record(d)
	}
}

// Since records the elapsed time from t0 — a timestamp produced by Start —
// into the histogram. No-op on a nil handle or a zero t0, so a timestamp
// taken through a nil handle flows through unrecorded.
func (h *Handle) Since(id HistID, t0 int64) {
	if h != nil && t0 != 0 {
		h.hist[id].Record(time.Duration(Nanos() - t0))
	}
}

// Hist returns the underlying histogram (nil on a nil handle), for callers
// that record many samples in a loop and want to hoist the handle check.
func (h *Handle) Hist(id HistID) *Histogram {
	if h == nil {
		return nil
	}
	return &h.hist[id]
}

// Histograms copies the current bucket counts of every histogram (all zero
// on a nil handle).
func (h *Handle) Histograms() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.hist {
		s[i] = h.hist[i].Snapshot()
	}
	return s
}

// LatencyMap renders the snapshot as the stable expvar/JSON shape published
// under a handle's "latency" key: histogram name → {count, p50_ns, p90_ns,
// p99_ns, p999_ns, max_ns}. Empty histograms are omitted so idle structures
// publish compact documents.
func (s HistSnapshot) LatencyMap() map[string]any {
	m := make(map[string]any, NumHistIDs)
	for i := range s {
		c := s[i]
		n := c.Count()
		if n == 0 {
			continue
		}
		m[HistID(i).String()] = map[string]int64{
			"count":   n,
			"p50_ns":  c.Percentile(0.50),
			"p90_ns":  c.Percentile(0.90),
			"p99_ns":  c.Percentile(0.99),
			"p999_ns": c.Percentile(0.999),
			"max_ns":  c.Max(),
		}
	}
	return m
}
