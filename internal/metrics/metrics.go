// Package metrics is the low-overhead instrumentation layer for the
// synchronous queue implementations. It exposes the micro-behaviors behind
// the paper's performance claims — CAS retry rates at each loop site, the
// spin-vs-park split of the §Pragmatics waiting strategy, fulfillment and
// cancellation rates, and how often canceled-node cleaning (the queue's
// lazy cleanMe protocol, the stack's traversal sweep) actually runs — so
// that performance work on the hot paths can be judged by what the
// algorithm did, not only by wall time.
//
// A Handle is a per-queue set of cache-line-padded atomic counters. All
// methods are safe on a nil *Handle and do nothing, so instrumented code
// carries exactly one predictable branch when metrics are disabled:
//
//	q.m.Inc(metrics.Parks) // no-op (one nil check) when q.m == nil
//
// Counters are monotonically increasing; deltas over an interval are taken
// with Snapshot and Snapshot.Sub. A Handle can be published to expvar for
// long-running processes.
package metrics

import (
	"expvar"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// ID names one counter in a Handle's set.
type ID int

// The counter inventory. Each site-specific CAS-failure counter maps to a
// retry arc in the paper's pseudocode; the event counters tally the
// waiting-policy and cleaning behaviors of §Pragmatics.
const (
	// CASFailEnqueue counts lost enqueue/push races: the tail-next CAS of
	// the dual queue (Listing 5 line 13) or the head push CAS of the dual
	// stack (Listing 6 line 11) failed and the engage loop retried.
	CASFailEnqueue ID = iota
	// CASFailFulfill counts failed fulfillment attempts: the item CAS on
	// the node at head (queue, Listing 5 line 28) or the fulfilling-node
	// push / match CAS (stack, Listing 6 lines 18–21) lost to a racing
	// fulfiller or to cancellation.
	CASFailFulfill
	// CASFailClean counts lost unlink CASes while removing canceled nodes.
	CASFailClean
	// HelpCollisions counts encounters with another thread's incomplete
	// operation that this thread helped finish: a lagging tail in the
	// queue, a foreign fulfilling node on top of the stack (the helping
	// protocol of Listing 6 lines 26–31).
	HelpCollisions
	// Spins counts busy-wait iterations taken before parking.
	Spins
	// Parks counts waits that actually blocked (slow-path park entries).
	Parks
	// Unparks counts permits delivered to blocked or about-to-block
	// waiters (coalesced unparks of an already-available permit are not
	// counted).
	Unparks
	// Fulfillments counts matched put/take pairs, tallied once per pair
	// by the fulfilling side.
	Fulfillments
	// AsyncDeposits counts asynchronous data deposits (the TransferQueue
	// extension's Put path).
	AsyncDeposits
	// Timeouts counts operations abandoned because their patience
	// expired, including zero-patience poll/offer misses.
	Timeouts
	// Cancellations counts operations abandoned because their cancel
	// channel fired (the Go analogue of thread interruption).
	Cancellations
	// CleanSweeps counts canceled nodes actually unlinked: cleanMe
	// flushes and interior unlinks in the queue, head absorption and
	// traversal unsplices in the stack.
	CleanSweeps
	// ClosedWakeups counts waiters woken with the Closed status by a
	// graceful shutdown (Close), including waiters that detected the
	// close themselves after racing an in-flight close sweep.
	ClosedWakeups
	// NodeAllocs counts hot-path allocations the recycling layer could
	// not avoid: a waiter node or item box requested while its pool was
	// empty.
	NodeAllocs
	// NodeReuses counts waiter nodes and item boxes served from a
	// structure's recycling pool instead of the allocator.
	NodeReuses
	// SpinBudget is a gauge, not a counter: the adaptive calibrator's
	// current untimed spin budget (see internal/spin.Calibrator), written
	// with Set. Zero when the structure uses a static spin policy.
	SpinBudget
	// ElimHits counts hand-offs completed in an elimination arena — pairs
	// that met in a slot and never touched the backing structure's
	// head/tail word.
	ElimHits
	// ElimMisses counts elimination attempts that expired (or were skipped
	// by the adaptive front-end's collapse-to-direct policy after probing)
	// and fell through to the backing structure.
	ElimMisses
	// ArenaWidth is a gauge: the adaptive arena's current active slot
	// count (see internal/exchanger.adaptor), written with Set. Zero when
	// the arena runs the static fixed-width policy.
	ArenaWidth
	// ShardSteals counts hand-offs a sharded fabric completed on a shard
	// other than the operation's home shard — the work-stealing rescue
	// that keeps waiters from stranding on an idle shard.
	ShardSteals
	// TasksShed counts executor tasks dropped by an explicit shedding
	// decision — an expired deadline detected before dispatch, or a
	// ShedOldest eviction that made room for a newer submission. Shed
	// tasks never run; they are the executor's graceful-degradation arm.
	TasksShed
	// TasksRejected counts executor submissions refused at admission
	// (saturation under the Reject policy, admission-budget exhaustion,
	// or a blocking offer that timed out / was canceled before landing).
	// Rejected tasks were never accepted, so they sit outside the
	// conservation ledger.
	TasksRejected
	// TasksReturned counts accepted-but-unrun tasks handed back to the
	// caller by a forced Drain — the conservation ledger's third column
	// (accepted == executed + shed + returned).
	TasksReturned
	// CrashLoops counts crash-loop detections in an executor's workers:
	// a panic burst dense enough that the pool engaged spawn backoff.
	CrashLoops
	// SegUnlinks counts hand-off segments whose cells all reached a
	// terminal state (the segmented core's recycling trigger): each such
	// segment is handed to the unlinker and spliced out of the ring, so
	// this counter evidences that cancellation storms actually reclaim
	// their segments instead of growing the structure.
	SegUnlinks
	// FabricWidth is a gauge: a self-scaling shard fabric's current
	// effective width (the number of shards new arrivals route to),
	// written with Set on every width change. Zero when the fabric runs a
	// fixed width chosen at construction.
	FabricWidth
	// FabricWidthChanges counts width transitions of a self-scaling shard
	// fabric — activations under contention and collapses on quiet
	// structures both count, so a nonzero delta evidences the controller
	// actually moved.
	FabricWidthChanges
	// ShardProbeMisses counts sweep probes of a presence-flagged shard
	// that found no waiter behind the hint — the wasted-steal work the
	// probe-skip policy exists to bound.
	ShardProbeMisses
	// ShardProbeSkips counts flagged shards a sweep passed over without
	// probing because the shard had been observed empty on K consecutive
	// probes (steal-weighting); periodic re-probes keep skipped shards
	// from going dark.
	ShardProbeSkips

	// NumIDs is the number of counters in a Handle.
	NumIDs
)

var names = [NumIDs]string{
	CASFailEnqueue:     "cas-fail-enqueue",
	CASFailFulfill:     "cas-fail-fulfill",
	CASFailClean:       "cas-fail-clean",
	HelpCollisions:     "help-collisions",
	Spins:              "spins",
	Parks:              "parks",
	Unparks:            "unparks",
	Fulfillments:       "fulfillments",
	AsyncDeposits:      "async-deposits",
	Timeouts:           "timeouts",
	Cancellations:      "cancellations",
	CleanSweeps:        "clean-sweeps",
	ClosedWakeups:      "closed-wakeups",
	NodeAllocs:         "node-allocs",
	NodeReuses:         "node-reuses",
	SpinBudget:         "spin-budget",
	ElimHits:           "elim-hits",
	ElimMisses:         "elim-misses",
	ArenaWidth:         "arena-width",
	ShardSteals:        "shard-steals",
	TasksShed:          "tasks-shed",
	TasksRejected:      "tasks-rejected",
	TasksReturned:      "tasks-returned",
	CrashLoops:         "crash-loops",
	SegUnlinks:         "seg-unlinks",
	FabricWidth:        "fabric-width",
	FabricWidthChanges: "fabric-width-changes",
	ShardProbeMisses:   "shard-probe-misses",
	ShardProbeSkips:    "shard-probe-skips",
}

// String returns the counter's stable snake-ish name (used as expvar map
// keys and table row labels).
func (id ID) String() string {
	if id < 0 || id >= NumIDs {
		return fmt.Sprintf("metrics.ID(%d)", int(id))
	}
	return names[id]
}

// Names returns all counter names in ID order.
func Names() []string {
	out := make([]string, NumIDs)
	for i := range out {
		out[i] = ID(i).String()
	}
	return out
}

// counter is one cache-line-padded counter: the trailing pad keeps
// neighbors in the Handle's array on distinct 64-byte lines so that
// threads hammering different counters do not false-share.
type counter struct {
	v atomic.Int64
	_ [56]byte
}

// Handle is a per-queue counter set. The zero value is ready to use;
// a nil *Handle is valid and every method on it is a no-op, which is how
// the disabled path stays at a single branch. A Handle must not be copied
// after first use.
type Handle struct {
	_    [64]byte // keep c[0] off whatever cache line precedes the allocation
	c    [NumIDs]counter
	hist [NumHistIDs]Histogram
}

// New returns a fresh, zeroed counter set.
func New() *Handle { return &Handle{} }

// Enabled reports whether the handle records anything (i.e. is non-nil).
func (h *Handle) Enabled() bool { return h != nil }

// Inc adds one to the counter. No-op on a nil handle.
func (h *Handle) Inc(id ID) {
	if h != nil {
		h.c[id].v.Add(1)
	}
}

// Add adds n to the counter. No-op on a nil handle or zero n.
func (h *Handle) Add(id ID, n int64) {
	if h != nil && n != 0 {
		h.c[id].v.Add(n)
	}
}

// Set stores v as the counter's value — the gauge-style write used for
// levels such as SpinBudget, as opposed to the monotone Inc/Add. No-op on
// a nil handle.
func (h *Handle) Set(id ID, v int64) {
	if h != nil {
		h.c[id].v.Store(v)
	}
}

// Load returns the counter's current value (zero on a nil handle).
func (h *Handle) Load(id ID) int64 {
	if h == nil {
		return 0
	}
	return h.c[id].v.Load()
}

// Reset zeroes every counter. Counters written concurrently with Reset
// land on one side or the other; use Snapshot deltas when exactness under
// concurrency matters.
func (h *Handle) Reset() {
	if h == nil {
		return
	}
	for i := range h.c {
		h.c[i].v.Store(0)
	}
	for i := range h.hist {
		h.hist[i].reset()
	}
}

// Snapshot is a point-in-time copy of a Handle's counters.
type Snapshot [NumIDs]int64

// Snapshot copies the current counter values (all zero on a nil handle).
// The copy is per-counter atomic, not globally consistent — fine for the
// monotone counters recorded here.
func (h *Handle) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.c {
		s[i] = h.c[i].v.Load()
	}
	return s
}

// Get returns the snapshot's value for id.
func (s Snapshot) Get(id ID) int64 { return s[id] }

// Sub returns the per-counter delta s − prev.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var d Snapshot
	for i := range s {
		d[i] = s[i] - prev[i]
	}
	return d
}

// Total returns the sum of the listed counters (all counters if none are
// listed).
func (s Snapshot) Total(ids ...ID) int64 {
	var t int64
	if len(ids) == 0 {
		for _, v := range s {
			t += v
		}
		return t
	}
	for _, id := range ids {
		t += s[id]
	}
	return t
}

// CASFailures returns the sum of the per-site CAS-failure counters.
func (s Snapshot) CASFailures() int64 {
	return s.Total(CASFailEnqueue, CASFailFulfill, CASFailClean)
}

// Map returns the snapshot as name→value, the expvar representation.
func (s Snapshot) Map() map[string]int64 {
	m := make(map[string]int64, NumIDs)
	for i, v := range s {
		m[ID(i).String()] = v
	}
	return m
}

// String renders the nonzero counters as "name=value" pairs in ID order
// ("all-zero" when nothing fired).
func (s Snapshot) String() string {
	var b strings.Builder
	for i, v := range s {
		if v == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", ID(i), v)
	}
	if b.Len() == 0 {
		return "all-zero"
	}
	return b.String()
}

// published maps expvar names to the handle currently backing them.
// expvar forbids re-publishing a name, so the Func closure indirects
// through this registry and Publish may rebind a name to a new handle.
var (
	pubMu     sync.Mutex
	published = make(map[string]*Handle)
)

// Publish exposes h's counters and latency histograms under the given
// expvar name (shown as a JSON object at /debug/vars when the process
// serves HTTP): counters at the top level under their ID names, and
// histogram percentile summaries nested under the "latency" key (see
// HistSnapshot.LatencyMap for the shape). Publishing an already-published
// name rebinds it to h rather than panicking, so fresh queues can take
// over a stable name across restarts of a subsystem.
func Publish(name string, h *Handle) {
	pubMu.Lock()
	defer pubMu.Unlock()
	if _, ok := published[name]; ok {
		published[name] = h
		return
	}
	published[name] = h
	expvar.Publish(name, expvar.Func(func() any {
		pubMu.Lock()
		cur := published[name]
		pubMu.Unlock()
		doc := make(map[string]any, NumIDs+1)
		for k, v := range cur.Snapshot().Map() {
			doc[k] = v
		}
		if lat := cur.Histograms().LatencyMap(); len(lat) > 0 {
			doc["latency"] = lat
		}
		return doc
	}))
}
