package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0}, // clock stepped backwards: clamp, don't corrupt
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{(1 << 10) - 1, 10},
		{1 << 10, 11},
		{1<<62 - 1, 62},
		{1 << 62, 63},
	}
	for _, c := range cases {
		if got := BucketIndex(c.d); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every positive duration must land in a valid bucket, and bucket
	// boundaries must respect BucketValue's representative upper bound.
	for i := 1; i < HistBuckets-1; i++ {
		upper := BucketValue(i)
		if got := BucketIndex(time.Duration(upper)); got != i {
			t.Errorf("BucketIndex(BucketValue(%d)=%d) = %d, want %d", i, upper, got, i)
		}
		if got := BucketIndex(time.Duration(upper + 1)); got != i+1 {
			t.Errorf("BucketIndex(%d) = %d, want %d", upper+1, got, i+1)
		}
	}
}

func TestBucketValueSaturation(t *testing.T) {
	if got := BucketValue(0); got != 0 {
		t.Errorf("BucketValue(0) = %d, want 0", got)
	}
	if got := BucketValue(1); got != 1 {
		t.Errorf("BucketValue(1) = %d, want 1", got)
	}
	if got := BucketValue(HistBuckets - 1); got != 1<<62 {
		t.Errorf("BucketValue(top) = %d, want %d", got, int64(1)<<62)
	}
	if got := BucketValue(HistBuckets + 7); got != 1<<62 {
		t.Errorf("BucketValue(out of range) = %d, want saturation marker", got)
	}
}

func TestPercentileBoundaries(t *testing.T) {
	var g Histogram

	// Empty: everything reports zero.
	if s := g.Snapshot(); s.Count() != 0 || s.Percentile(0.5) != 0 || s.Max() != 0 {
		t.Fatalf("empty histogram not all-zero: %v", s)
	}

	// All-zero-duration samples stay in bucket 0 and report 0 at every
	// percentile.
	for i := 0; i < 100; i++ {
		g.Record(0)
	}
	s := g.Snapshot()
	if s.Count() != 100 {
		t.Fatalf("count = %d, want 100", s.Count())
	}
	for _, p := range []float64{0, 0.5, 0.999, 1} {
		if got := s.Percentile(p); got != 0 {
			t.Errorf("p%v of all-zero samples = %d, want 0", p, got)
		}
	}

	// 1ns lands in bucket 1, representative value 1.
	g.reset()
	g.Record(1)
	if got := g.Snapshot().Percentile(0.5); got != 1 {
		t.Errorf("p50 of single 1ns sample = %d, want 1", got)
	}

	// Saturation: a duration beyond the top bucket's lower bound reports
	// the 2^62 marker at Max and the top percentile.
	g.reset()
	g.Record(time.Duration(1<<62 + 12345))
	s = g.Snapshot()
	if got := s.Max(); got != 1<<62 {
		t.Errorf("Max of saturated sample = %d, want %d", got, int64(1)<<62)
	}
	if got := s.Percentile(1); got != 1<<62 {
		t.Errorf("p100 of saturated sample = %d, want %d", got, int64(1)<<62)
	}

	// Percentile rank arithmetic: 99 samples at ~1µs, 1 at ~1ms. p50 and
	// p99 must report the 1µs bucket, p999 the 1ms bucket.
	g.reset()
	for i := 0; i < 99; i++ {
		g.Record(time.Microsecond)
	}
	g.Record(time.Millisecond)
	s = g.Snapshot()
	lo := BucketValue(BucketIndex(time.Microsecond))
	hi := BucketValue(BucketIndex(time.Millisecond))
	if got := s.Percentile(0.50); got != lo {
		t.Errorf("p50 = %d, want %d", got, lo)
	}
	if got := s.Percentile(0.99); got != lo {
		t.Errorf("p99 = %d, want %d", got, lo)
	}
	if got := s.Percentile(0.999); got != hi {
		t.Errorf("p999 = %d, want %d", got, hi)
	}
}

func TestBucketCountsAddSub(t *testing.T) {
	var a, b Histogram
	a.Record(time.Microsecond)
	a.Record(time.Millisecond)
	b.Record(time.Microsecond)

	sum := a.Snapshot().Add(b.Snapshot())
	if sum.Count() != 3 {
		t.Errorf("merged count = %d, want 3", sum.Count())
	}
	back := sum.Sub(b.Snapshot())
	if back != a.Snapshot() {
		t.Errorf("Sub did not invert Add: %v != %v", back, a.Snapshot())
	}
}

// TestHistogramHammer drives many concurrent recorders into every
// histogram of one handle and checks that no sample is lost or misfiled:
// per-histogram counts must equal exactly what was recorded.
func TestHistogramHammer(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	h := New()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			x := uint64(seed)*2654435761 + 1
			for i := 0; i < perG; i++ {
				// xorshift: cheap deterministic spread over all buckets.
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				d := time.Duration(x % (1 << 40))
				h.Record(HistID(i%int(NumHistIDs)), d)
			}
		}(int64(g + 1))
	}
	wg.Wait()

	snap := h.Histograms()
	var total int64
	for i := HistID(0); i < NumHistIDs; i++ {
		c := snap.Get(i).Count()
		// Exact share of the round-robin i%NumHistIDs distribution.
		want := int64(perG / int(NumHistIDs))
		if int(i) < perG%int(NumHistIDs) {
			want++
		}
		want *= goroutines
		if c != want {
			t.Errorf("%v count = %d, want %d", i, c, want)
		}
		total += c
	}
	if total != goroutines*perG {
		t.Errorf("total = %d, want %d", total, goroutines*perG)
	}
}

// TestNilHandleZeroOverhead pins the disabled path's contract: no clock
// reads (Start returns 0), no allocation, no recording.
func TestNilHandleZeroOverhead(t *testing.T) {
	var h *Handle

	if h.Start() != 0 {
		t.Error("nil handle Start() read the clock (non-zero timestamp)")
	}
	if n := testing.AllocsPerRun(100, func() {
		t0 := h.Start()
		h.Record(HandoffNs, time.Microsecond)
		h.Since(HandoffNs, t0)
	}); n != 0 {
		t.Errorf("nil handle latency path allocates %v per op, want 0", n)
	}
	if got := h.Histograms(); got != (HistSnapshot{}) {
		t.Error("nil handle Histograms() not all-zero")
	}
	if h.Hist(HandoffNs) != nil {
		t.Error("nil handle Hist() returned a live histogram")
	}

	// A zero t0 produced through a nil handle must stay unrecorded even
	// when it later flows into a live handle's Since.
	live := New()
	live.Since(HandoffNs, h.Start())
	if c := live.Histograms().Get(HandoffNs).Count(); c != 0 {
		t.Errorf("zero t0 was recorded into live handle (count=%d)", c)
	}
}

// TestLiveHandleRecordNoAlloc checks the enabled path is allocation-free
// too — the histogram layer must not disturb TestHandoffAllocBudget.
func TestLiveHandleRecordNoAlloc(t *testing.T) {
	h := New()
	if n := testing.AllocsPerRun(100, func() {
		t0 := h.Start()
		h.Record(SpinNs, time.Microsecond)
		h.Since(HandoffNs, t0)
	}); n != 0 {
		t.Errorf("live handle latency path allocates %v per op, want 0", n)
	}
}

func TestLatencyMapShape(t *testing.T) {
	h := New()
	h.Record(HandoffNs, time.Microsecond)
	m := h.Histograms().LatencyMap()
	if len(m) != 1 {
		t.Fatalf("LatencyMap has %d entries, want 1 (empty histograms omitted)", len(m))
	}
	entry, ok := m["handoff"].(map[string]int64)
	if !ok {
		t.Fatalf("LatencyMap[handoff] has type %T", m["handoff"])
	}
	for _, k := range []string{"count", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns"} {
		if _, ok := entry[k]; !ok {
			t.Errorf("LatencyMap[handoff] missing key %q", k)
		}
	}
	if entry["count"] != 1 {
		t.Errorf("count = %d, want 1", entry["count"])
	}
}
