package metrics

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
)

func TestNilHandleIsSafe(t *testing.T) {
	var h *Handle
	if h.Enabled() {
		t.Fatal("nil handle reports Enabled")
	}
	h.Inc(Parks) // must not panic
	h.Add(Spins, 42)
	h.Reset()
	if got := h.Load(Parks); got != 0 {
		t.Fatalf("nil handle Load = %d, want 0", got)
	}
	s := h.Snapshot()
	for i, v := range s {
		if v != 0 {
			t.Fatalf("nil handle snapshot[%s] = %d, want 0", ID(i), v)
		}
	}
	if s.String() != "all-zero" {
		t.Fatalf("nil snapshot String = %q", s.String())
	}
}

func TestIncAddLoad(t *testing.T) {
	h := New()
	if !h.Enabled() {
		t.Fatal("fresh handle reports disabled")
	}
	h.Inc(Parks)
	h.Inc(Parks)
	h.Add(Spins, 5)
	h.Add(Spins, 0) // no-op by contract
	if got := h.Load(Parks); got != 2 {
		t.Fatalf("Load(Parks) = %d, want 2", got)
	}
	if got := h.Load(Spins); got != 5 {
		t.Fatalf("Load(Spins) = %d, want 5", got)
	}
	if got := h.Load(Unparks); got != 0 {
		t.Fatalf("Load(Unparks) = %d, want 0", got)
	}
}

func TestSnapshotDeltaReset(t *testing.T) {
	h := New()
	h.Add(Fulfillments, 10)
	before := h.Snapshot()
	h.Add(Fulfillments, 7)
	h.Inc(Timeouts)
	delta := h.Snapshot().Sub(before)
	if got := delta.Get(Fulfillments); got != 7 {
		t.Fatalf("delta fulfillments = %d, want 7", got)
	}
	if got := delta.Get(Timeouts); got != 1 {
		t.Fatalf("delta timeouts = %d, want 1", got)
	}
	if got := delta.Total(); got != 8 {
		t.Fatalf("delta total = %d, want 8", got)
	}
	h.Reset()
	for i := ID(0); i < NumIDs; i++ {
		if got := h.Load(i); got != 0 {
			t.Fatalf("after Reset, %s = %d, want 0", i, got)
		}
	}
}

func TestCASFailuresAggregates(t *testing.T) {
	h := New()
	h.Add(CASFailEnqueue, 3)
	h.Add(CASFailFulfill, 4)
	h.Add(CASFailClean, 5)
	h.Add(Parks, 100) // not a CAS failure
	if got := h.Snapshot().CASFailures(); got != 12 {
		t.Fatalf("CASFailures = %d, want 12", got)
	}
}

func TestNamesCompleteAndDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for i := ID(0); i < NumIDs; i++ {
		n := i.String()
		if n == "" || strings.HasPrefix(n, "metrics.ID(") {
			t.Fatalf("counter %d has no name", int(i))
		}
		if seen[n] {
			t.Fatalf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
	if got := len(Names()); got != int(NumIDs) {
		t.Fatalf("Names() returned %d entries, want %d", got, NumIDs)
	}
	if out := ID(-1).String(); out != "metrics.ID(-1)" {
		t.Fatalf("out-of-range ID String = %q", out)
	}
}

// TestConcurrentIncrements is the -race correctness test: concurrent Inc
// and Add calls from many goroutines must neither race nor lose counts.
func TestConcurrentIncrements(t *testing.T) {
	h := New()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Inc(Parks)
				h.Add(Spins, 2)
				// A concurrent reader must be race-free too.
				if g == 0 && i%64 == 0 {
					_ = h.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Load(Parks); got != goroutines*perG {
		t.Fatalf("Parks = %d, want %d", got, goroutines*perG)
	}
	if got := h.Load(Spins); got != 2*goroutines*perG {
		t.Fatalf("Spins = %d, want %d", got, 2*goroutines*perG)
	}
}

func TestSnapshotString(t *testing.T) {
	h := New()
	h.Add(Parks, 3)
	h.Inc(Timeouts)
	s := h.Snapshot().String()
	if !strings.Contains(s, "parks=3") || !strings.Contains(s, "timeouts=1") {
		t.Fatalf("snapshot String = %q, want parks=3 and timeouts=1", s)
	}
	if strings.Contains(s, "spins") {
		t.Fatalf("snapshot String %q includes zero counter", s)
	}
}

func TestPublishAndRebind(t *testing.T) {
	h1 := New()
	h1.Add(Fulfillments, 11)
	Publish("test-metrics-handle", h1)
	v := expvar.Get("test-metrics-handle")
	if v == nil {
		t.Fatal("expvar name not published")
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar value is not JSON: %v", err)
	}
	if m["fulfillments"] != 11 {
		t.Fatalf("expvar fulfillments = %d, want 11", m["fulfillments"])
	}
	// Rebinding the same name must not panic and must serve the new handle.
	h2 := New()
	h2.Add(Fulfillments, 99)
	Publish("test-metrics-handle", h2)
	if err := json.Unmarshal([]byte(expvar.Get("test-metrics-handle").String()), &m); err != nil {
		t.Fatalf("expvar value after rebind is not JSON: %v", err)
	}
	if m["fulfillments"] != 99 {
		t.Fatalf("after rebind, fulfillments = %d, want 99", m["fulfillments"])
	}
}
