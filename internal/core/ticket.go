package core

import (
	"time"

	"synchq/internal/metrics"
)

// This file exposes the paper's §2.2 dual-data-structure interface as
// first-class operations: partial methods split into a request that
// registers a reservation and follow-ups that check it (Listing 2).
//
//	reservation r = Q.dequeue_reserve();     ->  v, tk, ok := q.TakeReserve()
//	d = Q.dequeue_followup(r);               ->  v, ok := tk.TryFollowup()
//	Q.dequeue_abort(r);                      ->  tk.Abort()
//
// The decisive property is contention freedom: an unsuccessful
// TryFollowup reads only the reservation's own node (a location no other
// thread writes until fulfillment), so polling a reservation performs a
// constant number of remote memory accesses across all unsuccessful
// follow-ups — unlike retrying a totalized operation, which hammers the
// structure's head on every attempt.
//
// A Ticket is owned by the goroutine that created it and must not be used
// concurrently; this matches the paper's model, in which the requester
// itself performs the follow-ups.

// QueueTicket is a pending reservation on a DualQueue — either a request
// for a value (from TakeReserve) or an offered value awaiting a consumer
// (from PutReserve).
type QueueTicket[T any] struct {
	q    *DualQueue[T]
	node *qnode[T]
	pred *qnode[T]
	e    *qitem[T] // the node's initial item state
	t0   int64     // reservation arrival, for the latency histograms
	done bool      // a follow-up already consumed the outcome
}

// TakeReserveStatus registers a request for a value (the request
// operation, which linearizes the caller's place in line). If a producer
// was already waiting, its value is returned at once with ok true and a
// nil ticket; otherwise ok is false and the ticket tracks the pending
// reservation. A closed queue is reported as the Closed status — the
// variant for callers (such as the shard fabric) that compose reservations
// inside status-reporting operations.
func (q *DualQueue[T]) TakeReserveStatus() (T, *QueueTicket[T], bool, Status) {
	t0 := q.m.Start()
	var zero T
	imm, node, pred, st := q.engage(nil, func() bool { return true }, false)
	if st == Closed {
		return zero, nil, false, Closed
	}
	if node == nil {
		// Consume the delivered value and recycle the fulfiller's box.
		q.m.Since(metrics.HandoffNs, t0)
		v := imm.v
		q.putBox(imm)
		return v, nil, true, OK
	}
	if q.closed.Load() {
		// Close may have raced our enqueue and finished its eviction
		// sweep before the node was linked; self-evict (as transfer
		// does) so the reservation is never stranded. If a fulfiller
		// got here first the CAS fails and the ticket completes
		// normally; otherwise Await reports Closed and Abort succeeds.
		node.item.CompareAndSwap(nil, q.closedSent)
	}
	return zero, &QueueTicket[T]{q: q, node: node, pred: pred, e: nil, t0: t0}, false, OK
}

// TakeReserve is TakeReserveStatus for callers with no status channel: it
// panics if the queue is closed, like the demand operations.
func (q *DualQueue[T]) TakeReserve() (T, *QueueTicket[T], bool) {
	v, tk, ok, st := q.TakeReserveStatus()
	if st == Closed {
		panic(errClosedDemand)
	}
	return v, tk, ok
}

// PutReserveStatus offers v to a future consumer (the request operation).
// If a consumer was already waiting, v is delivered at once and ok is true
// with a nil ticket; otherwise ok is false and the ticket tracks the
// pending offer. A closed queue is reported as the Closed status.
func (q *DualQueue[T]) PutReserveStatus(v T) (*QueueTicket[T], bool, Status) {
	t0 := q.m.Start()
	e := q.getBox(v)
	_, node, pred, st := q.engage(e, func() bool { return true }, false)
	if st == Closed {
		q.putBox(e)
		return nil, false, Closed
	}
	if node == nil {
		q.m.Since(metrics.HandoffNs, t0)
		return nil, true, OK
	}
	if q.closed.Load() {
		// Same enqueue-vs-sweep window as TakeReserveStatus: self-evict
		// so the offer is never stranded by a Close that missed it.
		node.item.CompareAndSwap(e, q.closedSent)
	}
	return &QueueTicket[T]{q: q, node: node, pred: pred, e: e, t0: t0}, false, OK
}

// PutReserve is PutReserveStatus for callers with no status channel: it
// panics if the queue is closed.
func (q *DualQueue[T]) PutReserve(v T) (*QueueTicket[T], bool) {
	tk, ok, st := q.PutReserveStatus(v)
	if st == Closed {
		panic(errClosedDemand)
	}
	return tk, ok
}

// TryFollowup checks, without blocking, whether the reservation has been
// fulfilled. For a take ticket the fulfilled value is returned; for a put
// ticket the returned value is the zero value and ok simply reports
// delivery. An unsuccessful TryFollowup touches no shared state beyond
// the ticket's own node. After a successful TryFollowup the ticket is
// spent.
func (t *QueueTicket[T]) TryFollowup() (T, bool) {
	var zero T
	if t.done {
		panic("core: follow-up on a spent ticket")
	}
	x := t.node.item.Load()
	if x == t.e || t.q.isDead(x) {
		// Still pending, aborted, or evicted by Close. A closed
		// reservation never reports true; collect the Closed status
		// with Await, which returns immediately.
		return zero, false
	}
	t.done = true
	t.q.m.Since(metrics.HandoffNs, t.t0)
	t.q.finish(t.node, t.pred, x)
	if x != nil {
		// Take ticket: consume the delivered value and recycle the
		// fulfiller's box.
		v := x.v
		t.q.putBox(x)
		return v, true
	}
	return zero, true // put ticket: delivered (the taker recycles the box)
}

// Await blocks until the reservation is fulfilled, the deadline passes
// (zero deadline: never), or cancel fires (nil: never) — the "demand"
// completion built from spin-then-park waiting. On Timeout/Canceled the
// reservation has been aborted and the ticket is spent.
func (t *QueueTicket[T]) Await(deadline time.Time, cancel <-chan struct{}) (T, Status) {
	var zero T
	if t.done {
		panic("core: await on a spent ticket")
	}
	x, status := t.q.awaitFulfill(t.node, t.e, deadline, cancel, t.t0)
	t.done = true
	if t.q.isDead(x) {
		t.q.clean(t.pred, t.node)
		t.q.putBox(t.e) // abandoned offer: the datum never transferred
		return zero, status
	}
	t.q.finish(t.node, t.pred, x)
	if x != nil {
		v := x.v
		t.q.putBox(x)
		return v, OK
	}
	return zero, OK
}

// Abort attempts to cancel the reservation. It returns true if the
// reservation was canceled (the ticket is spent) and false if a
// counterpart fulfilled it first — in which case the outcome must still be
// collected with TryFollowup, exactly as in the paper's Listing 2, whose
// abort path re-runs the follow-up. A reservation evicted by Close also
// aborts successfully: no value was transferred.
func (t *QueueTicket[T]) Abort() bool {
	if t.done {
		panic("core: abort of a spent ticket")
	}
	if t.node.item.CompareAndSwap(t.e, t.q.canceled) ||
		t.node.item.Load() == t.q.closedSent {
		t.done = true
		t.q.clean(t.pred, t.node)
		t.q.putBox(t.e) // aborted offer: the datum never transferred
		return true
	}
	return false
}

// StackTicket is a pending reservation on a DualStack.
type StackTicket[T any] struct {
	q    *DualStack[T]
	node *snode[T]
	t0   int64 // reservation arrival, for the latency histograms
	done bool
}

// TakeReserveStatus registers a request for a value on the stack. If a
// producer was already waiting (or a fulfillment completed during the
// attempt), the value is returned at once with ok true and a nil ticket. A
// closed stack is reported as the Closed status.
func (q *DualStack[T]) TakeReserveStatus() (T, *StackTicket[T], bool, Status) {
	t0 := q.m.Start()
	var zero T
	imm, node, st := q.engageReserve(*new(T), modeRequest)
	if st == Closed {
		return zero, nil, false, Closed
	}
	if node == nil {
		q.m.Since(metrics.HandoffNs, t0)
		return imm, nil, true, OK
	}
	return zero, &StackTicket[T]{q: q, node: node, t0: t0}, false, OK
}

// TakeReserve is TakeReserveStatus for callers with no status channel: it
// panics if the stack is closed.
func (q *DualStack[T]) TakeReserve() (T, *StackTicket[T], bool) {
	v, tk, ok, st := q.TakeReserveStatus()
	if st == Closed {
		panic(errClosedDemand)
	}
	return v, tk, ok
}

// PutReserveStatus offers v on the stack. If a consumer was already
// waiting, v is delivered at once and ok is true with a nil ticket. A
// closed stack is reported as the Closed status.
func (q *DualStack[T]) PutReserveStatus(v T) (*StackTicket[T], bool, Status) {
	t0 := q.m.Start()
	_, node, st := q.engageReserve(v, modeData)
	if st == Closed {
		return nil, false, Closed
	}
	if node == nil {
		q.m.Since(metrics.HandoffNs, t0)
		return nil, true, OK
	}
	return &StackTicket[T]{q: q, node: node, t0: t0}, false, OK
}

// PutReserve is PutReserveStatus for callers with no status channel: it
// panics if the stack is closed.
func (q *DualStack[T]) PutReserve(v T) (*StackTicket[T], bool) {
	tk, ok, st := q.PutReserveStatus(v)
	if st == Closed {
		panic(errClosedDemand)
	}
	return tk, ok
}

// TryFollowup checks, without blocking, whether the reservation has been
// annihilated with a counterpart. Unsuccessful follow-ups read only the
// ticket's own node's match word.
func (t *StackTicket[T]) TryFollowup() (T, bool) {
	var zero T
	if t.done {
		panic("core: follow-up on a spent ticket")
	}
	m := t.node.match.Load()
	if m == nil || m == t.node || m == t.q.closedMark {
		// Pending, aborted, or evicted by Close; a closed reservation
		// reports its Closed status through Await.
		return zero, false
	}
	t.done = true
	t.q.m.Since(metrics.HandoffNs, t.t0)
	t.q.finishMatch(t.node)
	if t.node.mode == modeRequest {
		return m.item.Load().v, true
	}
	return zero, true
}

// Await blocks until the reservation is matched, the deadline passes, or
// cancel fires. On Timeout/Canceled the reservation has been aborted and
// the ticket is spent.
func (t *StackTicket[T]) Await(deadline time.Time, cancel <-chan struct{}) (T, Status) {
	var zero T
	if t.done {
		panic("core: await on a spent ticket")
	}
	m, status := t.q.awaitFulfill(t.node, deadline, cancel, t.t0)
	t.done = true
	if m == t.node || m == t.q.closedMark {
		t.q.clean(t.node)
		return zero, status
	}
	t.q.finishMatch(t.node)
	if t.node.mode == modeRequest {
		return m.item.Load().v, OK
	}
	return zero, OK
}

// Abort attempts to cancel the reservation; false means a counterpart
// matched it first and TryFollowup must be used to collect the outcome. A
// reservation evicted by Close also aborts successfully: no value was
// transferred.
func (t *StackTicket[T]) Abort() bool {
	if t.done {
		panic("core: abort of a spent ticket")
	}
	if t.node.match.CompareAndSwap(nil, t.node) ||
		t.node.match.Load() == t.q.closedMark {
		t.done = true
		t.q.clean(t.node)
		return true
	}
	return false
}

// Ticket is the interface satisfied by both structures' reservation
// tickets, so callers can be written against either pairing discipline.
type Ticket[T any] interface {
	// TryFollowup checks for fulfillment without blocking; an
	// unsuccessful call is contention-free.
	TryFollowup() (T, bool)
	// Await blocks until fulfillment, the deadline (zero: never), or
	// cancel (nil: never).
	Await(deadline time.Time, cancel <-chan struct{}) (T, Status)
	// Abort cancels the reservation; false means it was fulfilled first
	// and TryFollowup must collect the outcome.
	Abort() bool
}

// ReserveTake is TakeReserve with the ticket as the shared Ticket
// interface (nil ticket when ok is true).
func (q *DualQueue[T]) ReserveTake() (T, Ticket[T], bool) {
	v, tk, ok := q.TakeReserve()
	if tk == nil {
		return v, nil, ok
	}
	return v, tk, ok
}

// ReservePut is PutReserve with the ticket as the shared Ticket interface.
func (q *DualQueue[T]) ReservePut(v T) (Ticket[T], bool) {
	tk, ok := q.PutReserve(v)
	if tk == nil {
		return nil, ok
	}
	return tk, ok
}

// ReserveTake is TakeReserve with the ticket as the shared Ticket
// interface (nil ticket when ok is true).
func (q *DualStack[T]) ReserveTake() (T, Ticket[T], bool) {
	v, tk, ok := q.TakeReserve()
	if tk == nil {
		return v, nil, ok
	}
	return v, tk, ok
}

// ReservePut is PutReserve with the ticket as the shared Ticket interface.
func (q *DualStack[T]) ReservePut(v T) (Ticket[T], bool) {
	tk, ok := q.PutReserve(v)
	if tk == nil {
		return nil, ok
	}
	return tk, ok
}

// ReserveTakeStatus is TakeReserveStatus with the ticket as the shared
// Ticket interface (nil ticket when ok is true or the status is Closed).
func (q *DualQueue[T]) ReserveTakeStatus() (T, Ticket[T], bool, Status) {
	v, tk, ok, st := q.TakeReserveStatus()
	if tk == nil {
		return v, nil, ok, st
	}
	return v, tk, ok, st
}

// ReservePutStatus is PutReserveStatus with the ticket as the shared
// Ticket interface.
func (q *DualQueue[T]) ReservePutStatus(v T) (Ticket[T], bool, Status) {
	tk, ok, st := q.PutReserveStatus(v)
	if tk == nil {
		return nil, ok, st
	}
	return tk, ok, st
}

// ReserveTakeStatus is TakeReserveStatus with the ticket as the shared
// Ticket interface (nil ticket when ok is true or the status is Closed).
func (q *DualStack[T]) ReserveTakeStatus() (T, Ticket[T], bool, Status) {
	v, tk, ok, st := q.TakeReserveStatus()
	if tk == nil {
		return v, nil, ok, st
	}
	return v, tk, ok, st
}

// ReservePutStatus is PutReserveStatus with the ticket as the shared
// Ticket interface.
func (q *DualStack[T]) ReservePutStatus(v T) (Ticket[T], bool, Status) {
	tk, ok, st := q.PutReserveStatus(v)
	if tk == nil {
		return nil, ok, st
	}
	return tk, ok, st
}
