package core

import (
	"testing"
	"unsafe"
)

// False-sharing audit: these assertions pin the memory layout the hot
// paths depend on. The allocator places objects at size-class intervals,
// so a node type whose size is a cache-line multiple never straddles a
// line shared with its neighbor; and a header whose contended words are a
// line apart never lets one side's CAS invalidate the other's. A field
// added without re-padding fails here instead of surfacing as an
// unexplained throughput regression.

const cacheLine = 64

func TestQnodeLayout(t *testing.T) {
	var n qnode[int64]
	if got := unsafe.Sizeof(n); got%cacheLine != 0 {
		t.Fatalf("qnode[int64] size = %d, want a multiple of %d: neighbors in the same size class would share a line", got, cacheLine)
	}
	// The three atomics every fulfiller CASes lead the node.
	if off := unsafe.Offsetof(n.waiter); off >= cacheLine {
		t.Fatalf("qnode.waiter offset = %d, spills onto a second line", off)
	}
}

func TestSnodeLayout(t *testing.T) {
	var n snode[int64]
	if got := unsafe.Sizeof(n); got%cacheLine != 0 {
		t.Fatalf("snode[int64] size = %d, want a multiple of %d: neighbors in the same size class would share a line", got, cacheLine)
	}
	if off := unsafe.Offsetof(n.match); off >= cacheLine {
		t.Fatalf("snode.match offset = %d, spills onto a second line", off)
	}
}

func TestDualQueueHeaderLayout(t *testing.T) {
	var q DualQueue[int64]
	head, tail, clean := unsafe.Offsetof(q.head), unsafe.Offsetof(q.tail), unsafe.Offsetof(q.cleanMe)
	if tail/cacheLine == head/cacheLine {
		t.Errorf("head (%d) and tail (%d) share a cache line: consumer dequeues would invalidate producer enqueues", head, tail)
	}
	if clean/cacheLine == tail/cacheLine || clean/cacheLine == head/cacheLine {
		t.Errorf("cleanMe (%d) shares a line with head (%d) or tail (%d): cancellation sweeps would thrash the transfer path", clean, head, tail)
	}
	// The read-mostly sentinels must not sit on any CASed line either.
	if s := unsafe.Offsetof(q.canceled); s/cacheLine == clean/cacheLine {
		t.Errorf("canceled sentinel (%d) shares a line with cleanMe (%d)", s, clean)
	}
}

func TestDualStackHeaderLayout(t *testing.T) {
	var s DualStack[int64]
	head, mark := unsafe.Offsetof(s.head), unsafe.Offsetof(s.closedMark)
	if mark/cacheLine == head/cacheLine {
		t.Errorf("closedMark (%d) shares a line with head (%d): every push CAS would invalidate the wait loops reading the sentinel", mark, head)
	}
}
