package core

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests target the TransferQueue-specific hazard the generic cancel
// storm cannot see: canceled *synchronous* transfers interleaved with
// *asynchronous* puts. Both kinds of producer share the node list — a
// canceled transfer leaves a dead reservation-or-data node that clean()
// must unlink without detaching the async data nodes threaded around it.
// Losing or reordering an async item here would be invisible to the
// sync-only tests, because their canceled nodes never carry must-deliver
// data.

// asyncTag marks asynchronously deposited values so consumers can tell
// the two producer populations apart. Async payloads are id<<40|seq, so
// bit 62 is free.
const asyncTag = int64(1) << 62

// TestTransferQueueCancelAsyncConservation interleaves canceled
// synchronous transfers with asynchronous puts from the same producers
// and checks exact conservation of both populations: every async put and
// every successful sync transfer is received exactly once, and nothing
// else is.
func TestTransferQueueCancelAsyncConservation(t *testing.T) {
	const producers = 6
	const consumers = 3
	perProducer := int64(300)
	if testing.Short() {
		perProducer = 100
	}

	q := NewTransferQueue[int64](WaitConfig{})
	var syncOK, asyncCount atomic.Int64
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id), 17))
			for seq := int64(0); seq < perProducer; seq++ {
				v := id<<40 | seq
				if rng.IntN(2) == 0 {
					q.Put(v | asyncTag)
					asyncCount.Add(1)
					continue
				}
				cancel := make(chan struct{})
				timer := time.AfterFunc(time.Duration(rng.IntN(400))*time.Microsecond, func() {
					close(cancel)
				})
				if q.TransferDeadline(v, time.Time{}, cancel) == OK {
					syncOK.Add(1)
				}
				timer.Stop()
			}
		}(int64(p))
	}

	var syncRecv, asyncRecv atomic.Int64
	seen := make([]sync.Map, consumers) // per-consumer to keep maps uncontended
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func(i int) {
			defer cg.Done()
			for {
				v, ok := q.PollTimeout(20 * time.Millisecond)
				if !ok {
					return // producers exhausted and queue drained
				}
				if _, dup := seen[i].LoadOrStore(v, struct{}{}); dup {
					t.Errorf("value %#x delivered twice to consumer %d", v, i)
				}
				if v&asyncTag != 0 {
					asyncRecv.Add(1)
				} else {
					syncRecv.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	cg.Wait()

	if got, want := asyncRecv.Load(), asyncCount.Load(); got != want {
		t.Errorf("async conservation: deposited %d, received %d", want, got)
	}
	if got, want := syncRecv.Load(), syncOK.Load(); got != want {
		t.Errorf("sync conservation: %d transfers reported OK, %d received", want, got)
	}
	if asyncCount.Load() == 0 || syncOK.Load() == 0 {
		t.Fatal("mix degenerated; both populations must be exercised")
	}
	if q.HasBufferedData() {
		t.Error("buffered data remains after full drain")
	}
	// Duplicates across consumers: merge the per-consumer sets.
	all := make(map[int64]struct{})
	for i := range seen {
		seen[i].Range(func(k, _ any) bool {
			if _, dup := all[k.(int64)]; dup {
				t.Errorf("value %#x delivered to two consumers", k.(int64))
			}
			all[k.(int64)] = struct{}{}
			return true
		})
	}
}

// TestTransferQueueCancelAsyncOrdering uses a single consumer to check
// the FIFO guarantee for asynchronous deposits: per producer, async
// values must arrive in strictly increasing sequence order even while
// canceled synchronous transfers from the same producer die between
// them. A clean() that unlinked the wrong node would surface here as a
// skipped or reordered sequence number.
func TestTransferQueueCancelAsyncOrdering(t *testing.T) {
	const producers = 4
	perProducer := int64(400)
	if testing.Short() {
		perProducer = 150
	}

	q := NewTransferQueue[int64](WaitConfig{})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id), 29))
			for seq := int64(0); seq < perProducer; seq++ {
				if rng.IntN(3) == 0 {
					// Doomed synchronous transfer: no consumer is polling
					// fast enough for most of these; many cancel mid-wait,
					// planting dead nodes between the async deposits.
					cancel := make(chan struct{})
					timer := time.AfterFunc(time.Duration(rng.IntN(200))*time.Microsecond, func() {
						close(cancel)
					})
					q.TransferDeadline(id<<40|seq|asyncTag>>1, time.Time{}, cancel)
					timer.Stop()
					continue
				}
				q.Put(id<<40 | seq)
			}
		}(int64(p))
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	lastSeq := make(map[int64]int64)
	for {
		v, ok := q.PollTimeout(20 * time.Millisecond)
		if !ok {
			select {
			case <-done:
				// Producers finished and a full patience window passed
				// empty: drained.
				if v, ok = q.Poll(); !ok {
					goto drained
				}
			default:
				continue
			}
		}
		if v&(asyncTag>>1) != 0 {
			continue // a synchronous transfer that found us; unordered by design
		}
		id, seq := v>>40, v&(1<<40-1)
		if last, present := lastSeq[id]; present && seq <= last {
			t.Fatalf("producer %d: async seq %d arrived after %d", id, seq, last)
		}
		lastSeq[id] = seq
	}
drained:
	if len(lastSeq) != producers {
		t.Fatalf("async data from %d producers observed, want %d", len(lastSeq), producers)
	}
	if q.HasBufferedData() {
		t.Error("buffered data remains after drain")
	}
}
