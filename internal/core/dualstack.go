package core

import (
	"sync"
	"sync/atomic"
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/park"
	"synchq/internal/spin"
)

// Node modes for the dual stack. A node is a request, a datum, or a
// fulfilling node pushed on top of a complementary node to "annihilate"
// with it. The paper notes Java cannot set flag bits in pointers, so the
// mode lives in a word of its own in the node — the same choice made here.
const (
	modeRequest    uint8 = 0
	modeData       uint8 = 1
	modeFulfilling uint8 = 2
)

// snode is a node of the synchronous dual stack. match is the annihilation
// pointer: a fulfiller CASes it from nil to itself; a waiter that times out
// CASes it from nil to the node itself (self-match means canceled), and a
// close sweep CASes it from nil to the stack's closed sentinel. item is
// boxed (qitem) so the ticket API can share value plumbing with the queue;
// unlike the queue's circulating boxes, a stack node's datum rides in the
// node's own embedded box, stored into item before the publishing push.
//
// wp is the embedded parker, initialized in place by awaitFulfill, and box
// the embedded item box, so a push-and-wait allocates only the node itself.
// A node that has been linked into the stack (its push CAS succeeded) is
// reclaimed only by the garbage collector — never pooled — because stale
// traversers (helpers, cleaners, losing fulfillers, the close sweep) may
// still hold its address for head/next/match CASes, and address reuse would
// reintroduce exactly the ABA those CASes rely on pointer identity to avoid
// (see DESIGN.md "Node and parker lifecycle").
type snode[T any] struct {
	next   atomic.Pointer[snode[T]]
	match  atomic.Pointer[snode[T]]
	waiter atomic.Pointer[park.Parker]
	item   atomic.Pointer[qitem[T]]
	wp     park.Parker
	box    qitem[T]
	mode   uint8
	// Pad to the next cache-line multiple (88 → 128 bytes for word-sized
	// T): at 88 the allocator's 96-byte size class leaves consecutive
	// nodes straddling shared lines, so one waiter's match CAS invalidates
	// its neighbor's spin on a different node.
	_ [47]byte
}

// tryMatch attempts to match node m with fulfiller f, waking m's waiter on
// success. It also returns true if m was already matched with f by a
// helping thread.
func tryMatch[T any](m, f *snode[T]) bool {
	if m.match.CompareAndSwap(nil, f) {
		if p := m.waiter.Load(); p != nil {
			p.Unpark()
		}
		return true
	}
	return m.match.Load() == f
}

// casNext replaces m with mn in n's next pointer.
func (n *snode[T]) casNext(m, mn *snode[T]) bool {
	return n.next.Load() == m && n.next.CompareAndSwap(m, mn)
}

// DualStack is the paper's unfair synchronous queue: a nonblocking,
// contention-free dual stack derived from the Treiber stack, in which the
// most recently arrived waiter is paired first (LIFO). Use NewDualStack to
// create one; a DualStack must not be copied after first use.
type DualStack[T any] struct {
	// head owns its cache line: it is the single CAS target every push,
	// annihilation, and unlink fights over, and the fields below it are
	// read in those same loops.
	head atomic.Pointer[snode[T]]
	_    [56]byte

	// closedMark is the shutdown sentinel: a waiter whose node's match is
	// swung here was evicted by Close and reports the Closed status. It
	// plays the role self-matching plays for cancellation, but from the
	// outside — only the waiter itself may self-match, so Close needs a
	// third party every fulfiller already treats as "not my match".
	closedMark *snode[T]
	// closed is set by Close; the push arm of engageWait refuses to add
	// waiters once it is set.
	closed atomic.Bool

	// npool recycles spare nodes that lost their push race and were never
	// linked — the only nodes whose address provably reached no other
	// thread.
	npool sync.Pool

	timedSpins   int
	untimedSpins int
	// cal, when non-nil, adapts the spin budgets at runtime (zero-value
	// WaitConfig); explicit budgets pin the static policy instead.
	cal *spin.Calibrator
	// m receives the instrumentation counters; nil disables them.
	m *metrics.Handle
	// f injects deterministic faults at the labeled sites; nil disables.
	f *fault.Injector
}

// NewDualStack returns an empty unfair synchronous queue with the given
// wait policy (use the zero WaitConfig for the paper's defaults).
func NewDualStack[T any](cfg WaitConfig) *DualStack[T] {
	s := &DualStack[T]{closedMark: &snode[T]{}, m: cfg.Metrics, f: cfg.Fault}
	s.timedSpins, s.untimedSpins = cfg.resolve()
	s.cal = cfg.calibrator()
	return s
}

// Metrics returns the stack's instrumentation handle (nil when disabled).
func (q *DualStack[T]) Metrics() *metrics.Handle { return q.m }

// getNode returns a fresh or recycled node with the given mode, its datum
// box empty. Pooled nodes are spares that were never linked (see putSpare),
// so their match, waiter and parker words are pristine.
func (q *DualStack[T]) getNode(mode uint8) *snode[T] {
	if n, _ := q.npool.Get().(*snode[T]); n != nil {
		q.m.Inc(metrics.NodeReuses)
		n.mode = mode
		return n
	}
	q.m.Inc(metrics.NodeAllocs)
	return &snode[T]{mode: mode}
}

// putSpare recycles a node that was NEVER linked into the stack — its push
// CAS failed, or the engage loop completed through another arm before
// attempting it. Such a node's address was never published, so no other
// thread can hold a stale pointer to it and reuse is ABA-free; linked nodes
// must never come here. The link word and the embedded box are scrubbed so
// the pool retains neither stack references nor user values. Nil-safe, so
// call sites can hand over a maybe-built spare unconditionally.
func (q *DualStack[T]) putSpare(s *snode[T]) {
	if s == nil {
		return
	}
	s.next.Store(nil)
	s.item.Store(nil)
	var zero T
	s.box.v = zero
	q.npool.Put(s)
}

// isDead reports whether node n has been abandoned — canceled
// (self-matched) or evicted by Close (matched with the closed sentinel) —
// and should be unlinked rather than fulfilled.
func (q *DualStack[T]) isDead(n *snode[T]) bool {
	m := n.match.Load()
	return m == n || m == q.closedMark
}

// transfer is the shared engine for put and take (Listing 6): isData true
// pushes the datum v, isData false pushes a request. A zero deadline waits
// forever; an expired deadline makes the operation a pure offer/poll. On
// success the returned value is the transferred datum for takes (the zero
// value for puts). The datum rides in the waiting or fulfilling node's
// embedded box, so no separate box circulates.
func (q *DualStack[T]) transfer(isData bool, v T, deadline time.Time, cancel <-chan struct{}) (T, Status) {
	t0 := q.m.Start() // arrival timestamp (zero — no clock read — when uninstrumented)
	var zero T
	mode := modeRequest
	if isData {
		mode = modeData
	}
	canWait := func() bool {
		return deadline.IsZero() || time.Now().Before(deadline)
	}
	imm, s, st := q.engageWait(v, mode, canWait)
	if st != OK {
		q.m.Since(metrics.WastedNs, t0)
		return zero, st
	}
	if s == nil {
		q.m.Since(metrics.HandoffNs, t0)
		return imm, OK // fulfilled a waiting counterpart directly
	}

	if q.closed.Load() {
		// Close may have raced our push and finished its eviction
		// sweep before our node was visible; self-evict so the waiter
		// is never stranded. If a fulfiller matched us first the CAS
		// fails and the transfer completes normally.
		s.match.CompareAndSwap(nil, q.closedMark)
	}
	m, status := q.awaitFulfill(s, deadline, cancel, t0)
	if m == s || m == q.closedMark {
		q.clean(s)
		return zero, status // canceled or evicted by Close
	}
	q.finishMatch(s)
	if mode == modeRequest {
		return m.item.Load().v, OK
	}
	return zero, OK
}

// engageReserve is engageWait with unconditional waiting, for the ticket
// API. A closed stack is reported as the Closed status (node nil).
func (q *DualStack[T]) engageReserve(v T, mode uint8) (T, *snode[T], Status) {
	imm, s, st := q.engageWait(v, mode, func() bool { return true })
	if st == Closed {
		return imm, nil, Closed
	}
	if s != nil && q.closed.Load() {
		// Close may have raced our push and finished its eviction
		// sweep before the node was visible; self-evict (as transfer
		// does) so the reservation is never stranded. If a fulfiller
		// matched us first the CAS fails and the ticket completes
		// normally; otherwise Await reports Closed and Abort succeeds.
		s.match.CompareAndSwap(nil, q.closedMark)
	}
	return imm, s, OK
}

// engageWait is the lock-free half of a transfer: it either completes
// immediately by annihilating with a complementary node (returning the
// exchanged value, node nil) or pushes a waiting node s for the caller to
// await. canWait is consulted at the moment pushing becomes necessary.
//
// The waiting node s and the fulfilling node f are each built at most once
// and carried across retry laps. Either may be recycled through the spare
// pool at any exit where it was never linked; f, however, is abandoned to
// the garbage collector the moment its push succeeds — helpers observed its
// address, so reusing it could match a later wait against a stale helper's
// CAS (the same position ABA the queue's doctrine forbids).
func (q *DualStack[T]) engageWait(v T, mode uint8, canWait func() bool) (T, *snode[T], Status) {
	var zero T
	var s, f *snode[T] // hoisted spares; never linked while held here

	for {
		h := q.head.Load()

		switch {
		case h == nil || h.mode == mode:
			// Empty or same-mode: push and wait (lines 07–16).
			if q.closed.Load() {
				// Shut down: nothing may wait. Checked before
				// canWait so a poll on a closed empty stack
				// reports Closed, not Timeout.
				q.putSpare(s)
				q.putSpare(f)
				return zero, nil, Closed
			}
			if !canWait() {
				if h != nil && q.isDead(h) {
					if q.head.CompareAndSwap(h, h.next.Load()) {
						q.m.Inc(metrics.CleanSweeps)
					}
					continue // retire canceled top, retry
				}
				q.m.Inc(metrics.Timeouts)
				q.putSpare(s)
				q.putSpare(f)
				return zero, nil, Timeout // can't wait
			}
			if s == nil {
				s = q.getNode(mode)
				if mode == modeData {
					s.box.v = v
					s.item.Store(&s.box)
				}
			}
			s.next.Store(h)
			// The closed check above and the push CAS below bracket the
			// push-vs-sweep race: Close may run entirely in between, and
			// only the caller's post-push re-check can then evict s.
			q.f.Preempt(fault.SCloseRacePause)
			if q.f.FailCAS(fault.SPushCAS) || !q.head.CompareAndSwap(h, s) {
				q.m.Inc(metrics.CASFailEnqueue)
				continue // lost push race
			}
			q.putSpare(f) // fulfill spare from an earlier lap, never linked
			return zero, s, OK

		case h.mode&modeFulfilling == 0:
			// Complementary node on top: push a fulfilling node
			// above it (lines 17–25).
			if q.isDead(h) {
				if q.head.CompareAndSwap(h, h.next.Load()) {
					q.m.Inc(metrics.CleanSweeps)
				}
				continue
			}
			if f == nil {
				f = q.getNode(mode | modeFulfilling)
				if mode == modeData {
					f.box.v = v
					f.item.Store(&f.box)
				}
			}
			f.next.Store(h)
			if q.f.FailCAS(fault.SFulfillCAS) || !q.head.CompareAndSwap(h, f) {
				q.m.Inc(metrics.CASFailFulfill)
				continue
			}
			q.f.Preempt(fault.SFulfillPause)
			for {
				m := f.next.Load() // the node we are fulfilling
				if m == nil {
					// All waiters vanished (canceled and
					// cleaned): pop our fulfilling node
					// and restart.
					q.head.CompareAndSwap(f, nil)
					break
				}
				mn := m.next.Load()
				if tryMatch(m, f) {
					q.m.Inc(metrics.Fulfillments)
					q.head.CompareAndSwap(f, mn) // pop both
					q.putSpare(s)                // push spare, never linked
					if mode == modeRequest {
						return m.item.Load().v, nil, OK
					}
					return zero, nil, OK
				}
				// m was canceled under us: unlink it and try
				// the next waiter down.
				q.m.Inc(metrics.CASFailFulfill)
				if f.casNext(m, mn) {
					q.m.Inc(metrics.CleanSweeps)
				}
			}
			// f was published at the top of the stack: helpers may
			// hold its address, so it is tainted for reuse — leave
			// it to the garbage collector and build a fresh one if
			// another fulfill lap is needed.
			f = nil

		default:
			// Top is another thread's fulfilling node: help it
			// complete the annihilation before proceeding with
			// our own work (lines 26–31).
			q.m.Inc(metrics.HelpCollisions)
			q.f.Preempt(fault.SHelpPause)
			m := h.next.Load()
			if m == nil {
				q.head.CompareAndSwap(h, nil)
			} else {
				mn := m.next.Load()
				if tryMatch(m, h) {
					q.head.CompareAndSwap(h, mn)
				} else {
					h.casNext(m, mn)
				}
			}
		}
	}
}

// finishMatch performs the post-annihilation bookkeeping for a node we
// waited on: help our fulfiller pop the pair (Figure 2, step D) and forget
// the waiter reference.
func (q *DualStack[T]) finishMatch(s *snode[T]) {
	if h := q.head.Load(); h != nil && h.next.Load() == s {
		q.head.CompareAndSwap(h, s.next.Load())
	}
	s.waiter.Store(nil)
}

// awaitFulfill waits (spin-then-park) until node s is matched or canceled.
// It returns the match; a self-match means canceled, with status saying
// why. The parker is the node's own (wp), initialized in place and
// published through the waiter word, so entering the slow path allocates
// nothing; fulfilled waits feed the adaptive spin calibrator when one is
// attached.
//
// t0 is the operation's arrival timestamp (from Handle.Start; zero when
// uninstrumented); awaitFulfill owns the wait's latency accounting exactly
// as the queue's does — spin phase at the arming transition, hand-off or
// wasted time at exit with one shared clock read.
func (q *DualStack[T]) awaitFulfill(s *snode[T], deadline time.Time, cancel <-chan struct{}, t0 int64) (*snode[T], Status) {
	spins := 0
	if q.shouldSpin(s) {
		if q.cal != nil {
			if deadline.IsZero() {
				spins = q.cal.Untimed()
			} else {
				spins = q.cal.Timed()
			}
		} else if deadline.IsZero() {
			spins = q.untimedSpins
		} else {
			spins = q.timedSpins
		}
	}
	armed := false  // wp initialized and published
	parked := false // entered at least one slow-path wait
	status := Timeout
	spun := int64(0) // spins batched locally; one Add on exit keeps the hot loop free of atomics
	for i := 0; ; i++ {
		if m := s.match.Load(); m != nil {
			q.m.Add(metrics.Spins, spun)
			if t0 != 0 {
				// One clock read for both views of the wait (see the
				// queue's awaitFulfill).
				d := time.Duration(metrics.Nanos() - t0)
				if !armed {
					q.m.Record(metrics.SpinNs, d)
				}
				if m == q.closedMark || m == s {
					q.m.Record(metrics.WastedNs, d)
				} else {
					q.m.Record(metrics.HandoffNs, d)
				}
			}
			if m == q.closedMark {
				q.m.Inc(metrics.ClosedWakeups)
				return m, Closed
			}
			if m == s {
				if status == Canceled {
					q.m.Inc(metrics.Cancellations)
				} else {
					q.m.Inc(metrics.Timeouts)
				}
				return m, status
			}
			if q.cal != nil {
				q.cal.Observe(int(spun), parked)
				q.m.Set(metrics.SpinBudget, int64(q.cal.Untimed()))
			}
			return m, OK
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			status = Timeout
			s.match.CompareAndSwap(nil, s)
			continue // reload match: cancel may have lost the race
		}
		if cancel != nil {
			select {
			case <-cancel:
				status = Canceled
				s.match.CompareAndSwap(nil, s)
				continue
			default:
			}
		}
		if spins > 0 {
			// Keep spinning while we remain plausibly next in
			// line; the budget still decays so a preempted
			// fulfiller cannot strand us spinning.
			if q.shouldSpin(s) {
				spins--
				spun++
				spin.Pause(i)
				continue
			}
			spins = 0
			continue
		}
		if !armed {
			spin.EndPhase(q.m, t0) // spin budget exhausted: the busy phase ends here
			s.wp.Init(q.m, q.f)
			s.waiter.Store(&s.wp)
			armed = true
			continue // re-check match before first park
		}
		parked = true
		switch s.wp.Wait(deadline, cancel) {
		case park.Unparked:
			// Re-read match.
		case park.DeadlineExceeded:
			status = Timeout
			s.match.CompareAndSwap(nil, s)
		case park.Canceled:
			status = Canceled
			s.match.CompareAndSwap(nil, s)
		}
	}
}

// shouldSpin reports whether node s is at or adjacent to the top of the
// stack, i.e. likely to be fulfilled imminently.
func (q *DualStack[T]) shouldSpin(s *snode[T]) bool {
	h := q.head.Load()
	return h == s || h == nil || h.mode&modeFulfilling != 0
}

// clean unlinks the canceled node s from the stack. Unlike the queue there
// is no tail obstruction: we simply sweep from the top down to s's
// (approximate) successor, unsplicing canceled nodes along the way. The
// successor is recorded first so the sweep is bounded even while other
// threads push above us.
func (q *DualStack[T]) clean(s *snode[T]) {
	s.item.Store(nil)
	s.waiter.Store(nil)
	// Scrub the abandoned datum so the dead node, which may linger linked
	// until a later sweep, does not pin the caller's value. Safe because
	// the self-match (or eviction) CAS already won: no fulfiller will
	// read this box.
	var zero T
	s.box.v = zero

	past := s.next.Load()
	if past != nil && q.isDead(past) {
		past = past.next.Load()
	}

	// Absorb canceled nodes at the head.
	p := q.head.Load()
	for p != nil && p != past && q.isDead(p) {
		if q.head.CompareAndSwap(p, p.next.Load()) {
			q.m.Inc(metrics.CleanSweeps)
		}
		p = q.head.Load()
	}
	// Unsplice embedded canceled nodes between the head and past.
	for p != nil && p != past {
		n := p.next.Load()
		if n != nil && q.isDead(n) {
			if q.f.FailCAS(fault.SCleanCAS) || !p.casNext(n, n.next.Load()) {
				q.m.Inc(metrics.CASFailClean)
			} else {
				q.m.Inc(metrics.CleanSweeps)
			}
		} else {
			p = n
		}
	}
}

// Close shuts the stack down gracefully: every waiter parked or spinning
// in the structure is woken and returns the Closed status, and every
// subsequent operation observes Closed (status-returning operations
// report it; demand operations panic). Close is idempotent and safe to
// call concurrently with any operation; it does not block on waiters.
//
// Close linearizes against in-flight annihilations without locking: both
// a fulfiller and the close sweep resolve a waiter with a single CAS on
// the node's match word (the fulfiller installs itself, the sweep
// installs the closed sentinel), so each waiter is either transferred or
// evicted, never both.
func (q *DualStack[T]) Close() {
	q.closed.Store(true)
	// Eviction sweep. No new waiters can be pushed once closed is set
	// (the push arm re-checks it, and transfer self-evicts nodes that
	// raced the sweep). Popped nodes keep their next pointers, so one
	// walk reaches every node that was ever below the observed head.
	for n := q.head.Load(); n != nil; n = n.next.Load() {
		if n.mode&modeFulfilling != 0 {
			continue // an in-flight fulfiller; its own thread completes or retries
		}
		if n.match.CompareAndSwap(nil, q.closedMark) {
			if p := n.waiter.Load(); p != nil {
				p.Unpark()
			}
		}
	}
}

// Closed reports whether Close has been called.
func (q *DualStack[T]) Closed() bool { return q.closed.Load() }

// Put transfers v to a consumer, waiting as long as necessary for one to
// arrive. Put panics if the stack is closed while waiting (or was already
// closed), since it has no status channel to report Closed through.
func (q *DualStack[T]) Put(v T) {
	if _, st := q.transfer(true, v, time.Time{}, nil); st == Closed {
		panic(errClosedDemand)
	}
}

// PutDeadline transfers v to a consumer, giving up at the deadline (zero
// means never) or when cancel fires (nil means never).
func (q *DualStack[T]) PutDeadline(v T, deadline time.Time, cancel <-chan struct{}) Status {
	_, st := q.transfer(true, v, deadline, cancel)
	return st
}

// Offer transfers v only if a consumer is already waiting.
func (q *DualStack[T]) Offer(v T) bool {
	_, st := q.transfer(true, v, deadlineFor(0), nil)
	return st == OK
}

// OfferTimeout transfers v, waiting up to d for a consumer.
func (q *DualStack[T]) OfferTimeout(v T, d time.Duration) bool {
	_, st := q.transfer(true, v, deadlineFor(d), nil)
	return st == OK
}

// Take receives a value from a producer, waiting as long as necessary for
// one to arrive. Take panics if the stack is closed while waiting (or was
// already closed), rather than inventing a zero value.
func (q *DualStack[T]) Take() T {
	v, st := q.transfer(false, *new(T), time.Time{}, nil)
	if st == Closed {
		panic(errClosedDemand)
	}
	return v
}

// TakeDeadline receives a value, giving up at the deadline (zero means
// never) or when cancel fires (nil means never).
func (q *DualStack[T]) TakeDeadline(deadline time.Time, cancel <-chan struct{}) (T, Status) {
	return q.transfer(false, *new(T), deadline, cancel)
}

// Poll receives a value only if a producer is already waiting.
func (q *DualStack[T]) Poll() (T, bool) {
	v, st := q.transfer(false, *new(T), deadlineFor(0), nil)
	return v, st == OK
}

// PollTimeout receives a value, waiting up to d for a producer.
func (q *DualStack[T]) PollTimeout(d time.Duration) (T, bool) {
	v, st := q.transfer(false, *new(T), deadlineFor(d), nil)
	return v, st == OK
}

// observe classifies the stack's current content (tests/monitoring only).
func (q *DualStack[T]) observe() (data, reservations bool) {
	h := q.head.Load()
	if h == nil || q.isDead(h) {
		return false, false
	}
	switch h.mode &^ modeFulfilling {
	case modeData:
		return true, false
	default:
		return false, true
	}
}

// HasWaitingProducer reports whether a producer was observed waiting.
func (q *DualStack[T]) HasWaitingProducer() bool { d, _ := q.observe(); return d }

// HasWaitingConsumer reports whether a consumer was observed waiting.
func (q *DualStack[T]) HasWaitingConsumer() bool { _, r := q.observe(); return r }

// IsEmpty reports whether the stack was observed empty.
func (q *DualStack[T]) IsEmpty() bool { return q.head.Load() == nil }

// Len counts the live (unmatched, non-canceled) waiting nodes by walking
// the stack. Linear time and only a snapshot under concurrency; intended
// for tests and monitoring.
func (q *DualStack[T]) Len() int {
	n := 0
	for cur := q.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.match.Load() == nil && cur.mode&modeFulfilling == 0 {
			n++
		}
	}
	return n
}
