package core

import (
	"sync/atomic"
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/park"
	"synchq/internal/spin"
)

// Node modes for the dual stack. A node is a request, a datum, or a
// fulfilling node pushed on top of a complementary node to "annihilate"
// with it. The paper notes Java cannot set flag bits in pointers, so the
// mode lives in a word of its own in the node — the same choice made here.
const (
	modeRequest    uint8 = 0
	modeData       uint8 = 1
	modeFulfilling uint8 = 2
)

// snode is a node of the synchronous dual stack. match is the annihilation
// pointer: a fulfiller CASes it from nil to itself; a waiter that times out
// CASes it from nil to the node itself (self-match means canceled), and a
// close sweep CASes it from nil to the stack's closed sentinel. item is
// boxed (qitem) so the ticket API can share value plumbing with the queue.
type snode[T any] struct {
	next   atomic.Pointer[snode[T]]
	match  atomic.Pointer[snode[T]]
	waiter atomic.Pointer[park.Parker]
	item   atomic.Pointer[qitem[T]]
	mode   uint8
}

// tryMatch attempts to match node m with fulfiller f, waking m's waiter on
// success. It also returns true if m was already matched with f by a
// helping thread.
func tryMatch[T any](m, f *snode[T]) bool {
	if m.match.CompareAndSwap(nil, f) {
		if p := m.waiter.Load(); p != nil {
			p.Unpark()
		}
		return true
	}
	return m.match.Load() == f
}

// casNext replaces m with mn in n's next pointer.
func (n *snode[T]) casNext(m, mn *snode[T]) bool {
	return n.next.Load() == m && n.next.CompareAndSwap(m, mn)
}

// DualStack is the paper's unfair synchronous queue: a nonblocking,
// contention-free dual stack derived from the Treiber stack, in which the
// most recently arrived waiter is paired first (LIFO). Use NewDualStack to
// create one; a DualStack must not be copied after first use.
type DualStack[T any] struct {
	head atomic.Pointer[snode[T]]

	// closedMark is the shutdown sentinel: a waiter whose node's match is
	// swung here was evicted by Close and reports the Closed status. It
	// plays the role self-matching plays for cancellation, but from the
	// outside — only the waiter itself may self-match, so Close needs a
	// third party every fulfiller already treats as "not my match".
	closedMark *snode[T]
	// closed is set by Close; the push arm of engageWait refuses to add
	// waiters once it is set.
	closed atomic.Bool

	timedSpins   int
	untimedSpins int
	// m receives the instrumentation counters; nil disables them.
	m *metrics.Handle
	// f injects deterministic faults at the labeled sites; nil disables.
	f *fault.Injector
}

// NewDualStack returns an empty unfair synchronous queue with the given
// wait policy (use the zero WaitConfig for the paper's defaults).
func NewDualStack[T any](cfg WaitConfig) *DualStack[T] {
	s := &DualStack[T]{closedMark: &snode[T]{}, m: cfg.Metrics, f: cfg.Fault}
	s.timedSpins, s.untimedSpins = cfg.resolve()
	return s
}

// Metrics returns the stack's instrumentation handle (nil when disabled).
func (q *DualStack[T]) Metrics() *metrics.Handle { return q.m }

// isDead reports whether node n has been abandoned — canceled
// (self-matched) or evicted by Close (matched with the closed sentinel) —
// and should be unlinked rather than fulfilled.
func (q *DualStack[T]) isDead(n *snode[T]) bool {
	m := n.match.Load()
	return m == n || m == q.closedMark
}

// transfer is the shared engine for put and take (Listing 6): e non-nil
// pushes a datum, e nil pushes a request. A zero deadline waits forever; an
// expired deadline makes the operation a pure offer/poll.
func (q *DualStack[T]) transfer(e *qitem[T], deadline time.Time, cancel <-chan struct{}) (*qitem[T], Status) {
	mode := modeRequest
	if e != nil {
		mode = modeData
	}
	canWait := func() bool {
		return deadline.IsZero() || time.Now().Before(deadline)
	}
	imm, s, st := q.engageWait(e, mode, canWait)
	if st != OK {
		return nil, st
	}
	if s == nil {
		return imm, OK // fulfilled a waiting counterpart directly
	}

	if q.closed.Load() {
		// Close may have raced our push and finished its eviction
		// sweep before our node was visible; self-evict so the waiter
		// is never stranded. If a fulfiller matched us first the CAS
		// fails and the transfer completes normally.
		s.match.CompareAndSwap(nil, q.closedMark)
	}
	m, status := q.awaitFulfill(s, deadline, cancel)
	if m == s || m == q.closedMark {
		q.clean(s)
		return nil, status // canceled or evicted by Close
	}
	q.finishMatch(s)
	if mode == modeRequest {
		return m.item.Load(), OK
	}
	return s.item.Load(), OK
}

// engage is engageWait with unconditional waiting, for the ticket API. It
// panics on a closed stack (the reservation request operations have no
// status channel to report Closed through).
func (q *DualStack[T]) engage(e *qitem[T], mode uint8) (*qitem[T], *snode[T]) {
	imm, s, st := q.engageWait(e, mode, func() bool { return true })
	if st == Closed {
		panic(errClosedDemand)
	}
	if s != nil && q.closed.Load() {
		// Close may have raced our push and finished its eviction
		// sweep before the node was visible; self-evict (as transfer
		// does) so the reservation is never stranded. If a fulfiller
		// matched us first the CAS fails and the ticket completes
		// normally; otherwise Await reports Closed and Abort succeeds.
		s.match.CompareAndSwap(nil, q.closedMark)
	}
	return imm, s
}

// engageWait is the lock-free half of a transfer: it either completes
// immediately by annihilating with a complementary node (returning the
// exchanged item, node nil) or pushes a waiting node s for the caller to
// await. canWait is consulted at the moment pushing becomes necessary.
func (q *DualStack[T]) engageWait(e *qitem[T], mode uint8, canWait func() bool) (*qitem[T], *snode[T], Status) {
	var s *snode[T]

	for {
		h := q.head.Load()

		switch {
		case h == nil || h.mode == mode:
			// Empty or same-mode: push and wait (lines 07–16).
			if q.closed.Load() {
				// Shut down: nothing may wait. Checked before
				// canWait so a poll on a closed empty stack
				// reports Closed, not Timeout.
				return nil, nil, Closed
			}
			if !canWait() {
				if h != nil && q.isDead(h) {
					if q.head.CompareAndSwap(h, h.next.Load()) {
						q.m.Inc(metrics.CleanSweeps)
					}
					continue // retire canceled top, retry
				}
				q.m.Inc(metrics.Timeouts)
				return nil, nil, Timeout // can't wait
			}
			if s == nil {
				s = &snode[T]{mode: mode}
				s.item.Store(e)
			}
			s.next.Store(h)
			// The closed check above and the push CAS below bracket the
			// push-vs-sweep race: Close may run entirely in between, and
			// only the caller's post-push re-check can then evict s.
			q.f.Preempt(fault.SCloseRacePause)
			if q.f.FailCAS(fault.SPushCAS) || !q.head.CompareAndSwap(h, s) {
				q.m.Inc(metrics.CASFailEnqueue)
				continue // lost push race
			}
			return nil, s, OK

		case h.mode&modeFulfilling == 0:
			// Complementary node on top: push a fulfilling node
			// above it (lines 17–25).
			if q.isDead(h) {
				if q.head.CompareAndSwap(h, h.next.Load()) {
					q.m.Inc(metrics.CleanSweeps)
				}
				continue
			}
			f := &snode[T]{mode: mode | modeFulfilling}
			f.item.Store(e)
			f.next.Store(h)
			if q.f.FailCAS(fault.SFulfillCAS) || !q.head.CompareAndSwap(h, f) {
				q.m.Inc(metrics.CASFailFulfill)
				continue
			}
			q.f.Preempt(fault.SFulfillPause)
			for {
				m := f.next.Load() // the node we are fulfilling
				if m == nil {
					// All waiters vanished (canceled and
					// cleaned): pop our fulfilling node
					// and restart.
					q.head.CompareAndSwap(f, nil)
					break
				}
				mn := m.next.Load()
				if tryMatch(m, f) {
					q.m.Inc(metrics.Fulfillments)
					q.head.CompareAndSwap(f, mn) // pop both
					if mode == modeRequest {
						return m.item.Load(), nil, OK
					}
					return f.item.Load(), nil, OK
				}
				// m was canceled under us: unlink it and try
				// the next waiter down.
				q.m.Inc(metrics.CASFailFulfill)
				if f.casNext(m, mn) {
					q.m.Inc(metrics.CleanSweeps)
				}
			}

		default:
			// Top is another thread's fulfilling node: help it
			// complete the annihilation before proceeding with
			// our own work (lines 26–31).
			q.m.Inc(metrics.HelpCollisions)
			q.f.Preempt(fault.SHelpPause)
			m := h.next.Load()
			if m == nil {
				q.head.CompareAndSwap(h, nil)
			} else {
				mn := m.next.Load()
				if tryMatch(m, h) {
					q.head.CompareAndSwap(h, mn)
				} else {
					h.casNext(m, mn)
				}
			}
		}
	}
}

// finishMatch performs the post-annihilation bookkeeping for a node we
// waited on: help our fulfiller pop the pair (Figure 2, step D) and forget
// the waiter reference.
func (q *DualStack[T]) finishMatch(s *snode[T]) {
	if h := q.head.Load(); h != nil && h.next.Load() == s {
		q.head.CompareAndSwap(h, s.next.Load())
	}
	s.waiter.Store(nil)
}

// awaitFulfill waits (spin-then-park) until node s is matched or canceled.
// It returns the match; a self-match means canceled, with status saying
// why.
func (q *DualStack[T]) awaitFulfill(s *snode[T], deadline time.Time, cancel <-chan struct{}) (*snode[T], Status) {
	spins := 0
	if q.shouldSpin(s) {
		if deadline.IsZero() {
			spins = q.untimedSpins
		} else {
			spins = q.timedSpins
		}
	}
	var p *park.Parker
	status := Timeout
	spun := int64(0) // spins batched locally; one Add on exit keeps the hot loop free of atomics
	for i := 0; ; i++ {
		if m := s.match.Load(); m != nil {
			q.m.Add(metrics.Spins, spun)
			if m == q.closedMark {
				q.m.Inc(metrics.ClosedWakeups)
				return m, Closed
			}
			if m == s {
				if status == Canceled {
					q.m.Inc(metrics.Cancellations)
				} else {
					q.m.Inc(metrics.Timeouts)
				}
				return m, status
			}
			return m, OK
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			status = Timeout
			s.match.CompareAndSwap(nil, s)
			continue // reload match: cancel may have lost the race
		}
		if cancel != nil {
			select {
			case <-cancel:
				status = Canceled
				s.match.CompareAndSwap(nil, s)
				continue
			default:
			}
		}
		if spins > 0 {
			// Keep spinning while we remain plausibly next in
			// line; the budget still decays so a preempted
			// fulfiller cannot strand us spinning.
			if q.shouldSpin(s) {
				spins--
				spun++
				spin.Pause(i)
				continue
			}
			spins = 0
			continue
		}
		if p == nil {
			p = park.NewFaulty(q.m, q.f)
			s.waiter.Store(p)
			continue // re-check match before first park
		}
		switch p.Wait(deadline, cancel) {
		case park.Unparked:
			// Re-read match.
		case park.DeadlineExceeded:
			status = Timeout
			s.match.CompareAndSwap(nil, s)
		case park.Canceled:
			status = Canceled
			s.match.CompareAndSwap(nil, s)
		}
	}
}

// shouldSpin reports whether node s is at or adjacent to the top of the
// stack, i.e. likely to be fulfilled imminently.
func (q *DualStack[T]) shouldSpin(s *snode[T]) bool {
	h := q.head.Load()
	return h == s || h == nil || h.mode&modeFulfilling != 0
}

// clean unlinks the canceled node s from the stack. Unlike the queue there
// is no tail obstruction: we simply sweep from the top down to s's
// (approximate) successor, unsplicing canceled nodes along the way. The
// successor is recorded first so the sweep is bounded even while other
// threads push above us.
func (q *DualStack[T]) clean(s *snode[T]) {
	s.item.Store(nil)
	s.waiter.Store(nil)

	past := s.next.Load()
	if past != nil && q.isDead(past) {
		past = past.next.Load()
	}

	// Absorb canceled nodes at the head.
	p := q.head.Load()
	for p != nil && p != past && q.isDead(p) {
		if q.head.CompareAndSwap(p, p.next.Load()) {
			q.m.Inc(metrics.CleanSweeps)
		}
		p = q.head.Load()
	}
	// Unsplice embedded canceled nodes between the head and past.
	for p != nil && p != past {
		n := p.next.Load()
		if n != nil && q.isDead(n) {
			if q.f.FailCAS(fault.SCleanCAS) || !p.casNext(n, n.next.Load()) {
				q.m.Inc(metrics.CASFailClean)
			} else {
				q.m.Inc(metrics.CleanSweeps)
			}
		} else {
			p = n
		}
	}
}

// Close shuts the stack down gracefully: every waiter parked or spinning
// in the structure is woken and returns the Closed status, and every
// subsequent operation observes Closed (status-returning operations
// report it; demand operations panic). Close is idempotent and safe to
// call concurrently with any operation; it does not block on waiters.
//
// Close linearizes against in-flight annihilations without locking: both
// a fulfiller and the close sweep resolve a waiter with a single CAS on
// the node's match word (the fulfiller installs itself, the sweep
// installs the closed sentinel), so each waiter is either transferred or
// evicted, never both.
func (q *DualStack[T]) Close() {
	q.closed.Store(true)
	// Eviction sweep. No new waiters can be pushed once closed is set
	// (the push arm re-checks it, and transfer self-evicts nodes that
	// raced the sweep). Popped nodes keep their next pointers, so one
	// walk reaches every node that was ever below the observed head.
	for n := q.head.Load(); n != nil; n = n.next.Load() {
		if n.mode&modeFulfilling != 0 {
			continue // an in-flight fulfiller; its own thread completes or retries
		}
		if n.match.CompareAndSwap(nil, q.closedMark) {
			if p := n.waiter.Load(); p != nil {
				p.Unpark()
			}
		}
	}
}

// Closed reports whether Close has been called.
func (q *DualStack[T]) Closed() bool { return q.closed.Load() }

// Put transfers v to a consumer, waiting as long as necessary for one to
// arrive. Put panics if the stack is closed while waiting (or was already
// closed), since it has no status channel to report Closed through.
func (q *DualStack[T]) Put(v T) {
	if _, st := q.transfer(&qitem[T]{v: v}, time.Time{}, nil); st == Closed {
		panic(errClosedDemand)
	}
}

// PutDeadline transfers v to a consumer, giving up at the deadline (zero
// means never) or when cancel fires (nil means never).
func (q *DualStack[T]) PutDeadline(v T, deadline time.Time, cancel <-chan struct{}) Status {
	_, st := q.transfer(&qitem[T]{v: v}, deadline, cancel)
	return st
}

// Offer transfers v only if a consumer is already waiting.
func (q *DualStack[T]) Offer(v T) bool {
	_, st := q.transfer(&qitem[T]{v: v}, deadlineFor(0), nil)
	return st == OK
}

// OfferTimeout transfers v, waiting up to d for a consumer.
func (q *DualStack[T]) OfferTimeout(v T, d time.Duration) bool {
	_, st := q.transfer(&qitem[T]{v: v}, deadlineFor(d), nil)
	return st == OK
}

// Take receives a value from a producer, waiting as long as necessary for
// one to arrive. Take panics if the stack is closed while waiting (or was
// already closed), rather than inventing a zero value.
func (q *DualStack[T]) Take() T {
	x, st := q.transfer(nil, time.Time{}, nil)
	if st == Closed {
		panic(errClosedDemand)
	}
	return x.v
}

// TakeDeadline receives a value, giving up at the deadline (zero means
// never) or when cancel fires (nil means never).
func (q *DualStack[T]) TakeDeadline(deadline time.Time, cancel <-chan struct{}) (T, Status) {
	x, st := q.transfer(nil, deadline, cancel)
	if st != OK {
		var zero T
		return zero, st
	}
	return x.v, OK
}

// Poll receives a value only if a producer is already waiting.
func (q *DualStack[T]) Poll() (T, bool) {
	x, st := q.transfer(nil, deadlineFor(0), nil)
	if st != OK {
		var zero T
		return zero, false
	}
	return x.v, true
}

// PollTimeout receives a value, waiting up to d for a producer.
func (q *DualStack[T]) PollTimeout(d time.Duration) (T, bool) {
	x, st := q.transfer(nil, deadlineFor(d), nil)
	if st != OK {
		var zero T
		return zero, false
	}
	return x.v, true
}

// observe classifies the stack's current content (tests/monitoring only).
func (q *DualStack[T]) observe() (data, reservations bool) {
	h := q.head.Load()
	if h == nil || q.isDead(h) {
		return false, false
	}
	switch h.mode &^ modeFulfilling {
	case modeData:
		return true, false
	default:
		return false, true
	}
}

// HasWaitingProducer reports whether a producer was observed waiting.
func (q *DualStack[T]) HasWaitingProducer() bool { d, _ := q.observe(); return d }

// HasWaitingConsumer reports whether a consumer was observed waiting.
func (q *DualStack[T]) HasWaitingConsumer() bool { _, r := q.observe(); return r }

// IsEmpty reports whether the stack was observed empty.
func (q *DualStack[T]) IsEmpty() bool { return q.head.Load() == nil }

// Len counts the live (unmatched, non-canceled) waiting nodes by walking
// the stack. Linear time and only a snapshot under concurrency; intended
// for tests and monitoring.
func (q *DualStack[T]) Len() int {
	n := 0
	for cur := q.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.match.Load() == nil && cur.mode&modeFulfilling == 0 {
			n++
		}
	}
	return n
}
