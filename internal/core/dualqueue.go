package core

import (
	"sync"
	"sync/atomic"
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/park"
	"synchq/internal/spin"
)

// qnode is a node of the synchronous dual queue. The list holds either data
// nodes (isData true, item initially non-nil) or reservation nodes (isData
// false, item initially nil), never both at once; the node at head is always
// a retired dummy.
//
// Fulfillment, cancellation, and close are all CASes on item:
//
//	data node:    item: &v ──taken──▶ nil        or ──canceled/closed──▶ sentinel
//	request node: item: nil ──filled──▶ &v       or ──canceled/closed──▶ sentinel
//
// wp is the waiter's embedded parker: the waiter initializes it in place and
// publishes it through the waiter word, so the steady park/unpark handshake
// allocates nothing beyond the node itself. A node that has been linked into
// the list is reclaimed only by the garbage collector — never pooled — because
// stale traversers (losing fulfillers, helpers, cleaners, the close sweep)
// may still hold its address for head/next CASes, and address reuse would
// reintroduce exactly the ABA those CASes rely on pointer identity to avoid
// (see DESIGN.md "Node and parker lifecycle").
type qnode[T any] struct {
	next   atomic.Pointer[qnode[T]]
	item   atomic.Pointer[qitem[T]]
	waiter atomic.Pointer[park.Parker]
	wp     park.Parker
	isData bool
	// async marks a data node deposited without a waiting producer (the
	// TransferQueue extension). Close leaves async nodes in place so
	// already-accepted data can still be drained.
	async bool
}

// qitem boxes a transferred value. The pooled flag doubles as the padding
// byte that guarantees every allocation a unique address even when T is
// zero-sized (new(struct{}) aliases a single runtime address), so pointer
// identity against the queue's cancellation sentinel is always meaningful.
//
// Boxes with pooled set circulate through the queue's item pool: unlike the
// nodes, an item box is ABA-safe to recycle because item words only ever
// move away from a box, never back to it (nil→&v→sentinel for requests,
// &v→nil→sentinel for data), and only the single receiver that won the CAS
// dereferences it. The sentinels and any caller-visible boxes are created
// without the flag and are never pooled.
type qitem[T any] struct {
	v      T
	pooled bool
}

// DualQueue is the paper's fair synchronous queue: a nonblocking,
// contention-free dual queue derived from the Michael & Scott queue, in
// which producers and consumers pair up in strict FIFO order. Use
// NewDualQueue to create one; a DualQueue must not be copied after first
// use.
type DualQueue[T any] struct {
	// head, tail, and cleanMe each own a cache line: consumers CAS head,
	// producers CAS tail, and cancellation sweeps CAS cleanMe, so sharing
	// a line would make every advance on one end invalidate the other —
	// and the read-mostly sentinels below it.
	head atomic.Pointer[qnode[T]]
	_    [56]byte
	tail atomic.Pointer[qnode[T]]
	_    [56]byte
	// cleanMe is the predecessor of the last canceled node that could not
	// be unlinked immediately because it was the tail (the paper's — and
	// Java 6's — lazy cleaning strategy).
	cleanMe atomic.Pointer[qnode[T]]
	_       [56]byte
	// canceled is this queue's cancellation sentinel: a canceled node's
	// item points here. It stands in for the JDK's "item == this"
	// self-marker, which Go's typed atomics cannot express.
	canceled *qitem[T]
	// closedSent is the shutdown sentinel: a waiter whose node's item is
	// swung here was evicted by Close and reports the Closed status
	// (distinct from canceled so close-time wakeups are not mistaken for
	// timeouts or cancellations).
	closedSent *qitem[T]
	// closed is set by Close; the enqueue arm of engage refuses to add
	// waiters once it is set.
	closed atomic.Bool

	// ipool recycles pooled item boxes (see qitem); npool recycles spare
	// nodes that lost their insertion race and were never linked — the
	// only nodes whose address provably reached no other thread.
	ipool sync.Pool
	npool sync.Pool

	timedSpins   int
	untimedSpins int
	// cal, when non-nil, adapts the spin budgets at runtime (zero-value
	// WaitConfig); explicit budgets pin the static policy instead.
	cal *spin.Calibrator
	// m receives the instrumentation counters; nil disables them.
	m *metrics.Handle
	// f injects deterministic faults at the labeled sites; nil disables.
	f *fault.Injector
}

// NewDualQueue returns an empty fair synchronous queue with the given wait
// policy (use the zero WaitConfig for the paper's defaults).
func NewDualQueue[T any](cfg WaitConfig) *DualQueue[T] {
	q := &DualQueue[T]{canceled: new(qitem[T]), closedSent: new(qitem[T]), m: cfg.Metrics, f: cfg.Fault}
	q.timedSpins, q.untimedSpins = cfg.resolve()
	q.cal = cfg.calibrator()
	dummy := &qnode[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Metrics returns the queue's instrumentation handle (nil when disabled).
func (q *DualQueue[T]) Metrics() *metrics.Handle { return q.m }

// getBox returns an item box holding v, recycled from the item pool when
// possible.
func (q *DualQueue[T]) getBox(v T) *qitem[T] {
	if x, _ := q.ipool.Get().(*qitem[T]); x != nil {
		q.m.Inc(metrics.NodeReuses)
		x.v = v
		return x
	}
	q.m.Inc(metrics.NodeAllocs)
	return &qitem[T]{v: v, pooled: true}
}

// putBox recycles an item box whose value has been consumed (or never
// transferred). Only boxes the queue itself issued are pooled — the pooled
// flag excludes the sentinels and embedded or caller-built boxes — and the
// value is scrubbed first so the pool never retains user data.
func (q *DualQueue[T]) putBox(x *qitem[T]) {
	if x == nil || !x.pooled {
		return
	}
	var zero T
	x.v = zero
	q.ipool.Put(x)
}

// getNode returns a fresh or recycled waiting node. Pooled nodes are spares
// that were never linked (see putSpare), so their parker and link words are
// pristine.
func (q *DualQueue[T]) getNode(isData, async bool) *qnode[T] {
	if n, _ := q.npool.Get().(*qnode[T]); n != nil {
		q.m.Inc(metrics.NodeReuses)
		n.isData, n.async = isData, async
		return n
	}
	q.m.Inc(metrics.NodeAllocs)
	return &qnode[T]{isData: isData, async: async}
}

// putSpare recycles a node that was NEVER linked into the list — the
// engage loop built it, then completed through the fulfill arm instead.
// Such a node's address was never published (the insertion CAS that would
// have published it failed), so no other thread can hold a stale pointer
// to it and reuse is ABA-free; linked nodes must never come here. The item
// word is scrubbed so the pool retains no reference to a value box.
func (q *DualQueue[T]) putSpare(s *qnode[T]) {
	s.item.Store(nil)
	q.npool.Put(s)
}

// isDead reports whether an observed item value is one of the two
// abandonment sentinels (canceled or evicted by Close).
func (q *DualQueue[T]) isDead(x *qitem[T]) bool { return x == q.canceled || x == q.closedSent }

func (q *DualQueue[T]) isCancelled(n *qnode[T]) bool { return q.isDead(n.item.Load()) }

// advanceHead swings head from h to nh and self-links the retired node so
// that isOffList observes it and the garbage collector can reclaim the
// chain behind it.
func (q *DualQueue[T]) advanceHead(h, nh *qnode[T]) bool {
	if h != nh && q.head.CompareAndSwap(h, nh) {
		h.next.Store(h)
		return true
	}
	return false
}

// isOffList reports whether n has been unlinked from the queue (self-linked
// by advanceHead).
func isOffList[T any](n *qnode[T]) bool { return n.next.Load() == n }

// transfer is the shared engine for put and take: isData true transfers v
// in, isData false transfers a value out (the two operations are symmetric,
// as the paper observes). A zero deadline waits forever; an expired deadline
// makes the operation a pure offer/poll. If async is true a data node is
// deposited without waiting for a consumer (the paper's TransferQueue
// extension). On success the returned value is the transferred datum for
// takes and v echoed back for puts.
//
// Box ownership: a datum rides in a pooled item box obtained here. Whichever
// side ends up reading the value out of a pooled box — the taker, for both
// queue orientations — recycles it; a datum that never transferred (timeout,
// cancel, close, refused engage) is reclaimed by its producer.
func (q *DualQueue[T]) transfer(isData bool, v T, deadline time.Time, cancel <-chan struct{}, async bool) (T, Status) {
	t0 := q.m.Start() // arrival timestamp (zero — no clock read — when uninstrumented)
	var zero T
	var e *qitem[T]
	if isData {
		e = q.getBox(v)
	}
	canWait := func() bool {
		return async || deadline.IsZero() || time.Now().Before(deadline)
	}
	imm, s, pred, st := q.engage(e, canWait, async)
	if st != OK {
		q.putBox(e) // the datum never entered the structure
		q.m.Since(metrics.WastedNs, t0)
		return zero, st
	}
	if s == nil {
		// Completed immediately: fulfilled a waiter, or async deposit.
		// For a take, imm is the counterpart's box — consume and
		// recycle it. For a put (and an async deposit) the box now
		// belongs to its eventual taker.
		if !async {
			q.m.Since(metrics.HandoffNs, t0) // a deposit is not a pairing
		}
		if !isData {
			v = imm.v
			q.putBox(imm)
		}
		return v, OK
	}

	if q.closed.Load() {
		// Close may have raced our enqueue and finished its eviction
		// sweep before our node was linked; self-evict so the waiter
		// is never stranded. If a fulfiller got here first the CAS
		// fails and the transfer completes normally.
		s.item.CompareAndSwap(e, q.closedSent)
	}
	x, status := q.awaitFulfill(s, e, deadline, cancel, t0)
	if q.isDead(x) {
		q.clean(pred, s)
		q.putBox(e) // abandoned put: the datum never transferred
		return zero, status
	}
	q.finish(s, pred, x)
	if x != nil {
		// Fulfilled take: x is the putter's box; consume and recycle.
		// (finish already swung our item word off x, so the retired
		// dummy does not pin the recycled box.)
		v = x.v
		q.putBox(x)
	}
	return v, OK
}

// engage is the lock-free half of a transfer (the paper's request
// linearization): it either fulfills a complementary waiter immediately
// (returning the exchanged item with node nil), deposits an async data
// node (node nil, item e), or enqueues a waiting node s with predecessor
// pred for the caller to await. canWait is consulted at the moment
// enqueueing becomes necessary; if it reports false, engage returns
// Timeout without touching the queue.
func (q *DualQueue[T]) engage(e *qitem[T], canWait func() bool, async bool) (imm *qitem[T], node, pred *qnode[T], st Status) {
	var s *qnode[T]
	isData := e != nil

	for {
		t := q.tail.Load()
		h := q.head.Load()

		if h == t || t.isData == isData {
			// Queue empty or holds same-mode nodes: enqueue and
			// wait (Listing 5, lines 08–21).
			tn := t.next.Load()
			if t != q.tail.Load() {
				continue // inconsistent snapshot
			}
			if tn != nil {
				q.tail.CompareAndSwap(t, tn) // help lagging tail
				q.m.Inc(metrics.HelpCollisions)
				continue
			}
			if q.closed.Load() {
				// The queue is shut down: nothing may wait (and
				// async deposits are refused). Checked before
				// canWait so a poll on a closed empty queue
				// reports Closed, not Timeout.
				if s != nil {
					q.putSpare(s) // built on an earlier lap, never linked
				}
				return nil, nil, nil, Closed
			}
			if !canWait() {
				q.m.Inc(metrics.Timeouts)
				if s != nil {
					q.putSpare(s) // built on an earlier lap, never linked
				}
				return nil, nil, nil, Timeout // can't wait
			}
			if s == nil {
				s = q.getNode(isData, async)
				s.item.Store(e)
			}
			// The closed check above and the link CAS below bracket the
			// enqueue-vs-sweep race: Close may run entirely in between,
			// and only the caller's post-link re-check can then evict s.
			q.f.Preempt(fault.QCloseRacePause)
			if q.f.FailCAS(fault.QEnqueueCAS) || !t.next.CompareAndSwap(nil, s) {
				q.m.Inc(metrics.CASFailEnqueue)
				continue // lost insertion race
			}
			q.f.Preempt(fault.QEnqueuePause)
			q.tail.CompareAndSwap(t, s)
			if async {
				q.m.Inc(metrics.AsyncDeposits)
				return e, nil, nil, OK
			}
			return nil, s, t, OK

		}

		// Complementary mode at head: try to fulfill the oldest
		// waiter (Listing 5, lines 23–31).
		m := h.next.Load()
		if t != q.tail.Load() || m == nil || h != q.head.Load() {
			continue // inconsistent snapshot
		}
		if q.f.FailCAS(fault.QFulfillCAS) {
			// Injected lost fulfill race: retry from a fresh
			// snapshot, as a loser whose mate already dequeued m
			// would. (The dequeue-and-retry arc below is only
			// taken after a real item change — taking it here
			// would evict a live waiter.)
			q.m.Inc(metrics.CASFailFulfill)
			continue
		}
		x := m.item.Load()
		if isData == (x != nil) || // m already fulfilled
			q.isDead(x) || // m canceled or evicted by Close
			!m.item.CompareAndSwap(x, e) { // lost fulfill race
			q.m.Inc(metrics.CASFailFulfill)
			q.advanceHead(h, m) // dequeue and retry
			continue
		}
		q.m.Inc(metrics.Fulfillments)
		q.f.Preempt(fault.QFulfillPause)
		q.advanceHead(h, m)
		if p := m.waiter.Load(); p != nil {
			p.Unpark()
		}
		if s != nil {
			// The spare built for the enqueue arm was never linked
			// (its insertion CAS failed or was never attempted):
			// recycle it.
			q.putSpare(s)
		}
		if x != nil {
			return x, nil, nil, OK
		}
		return e, nil, nil, OK
	}
}

// finish performs the post-fulfillment bookkeeping for a node we waited
// on: help dequeue ourselves (Listing 5, lines 17–19) and forget
// references so blocked threads don't pin garbage (§Pragmatics). x is the
// item value observed at fulfillment.
func (q *DualQueue[T]) finish(s, pred *qnode[T], x *qitem[T]) {
	if !isOffList(s) {
		q.advanceHead(pred, s)
		if x != nil {
			s.item.Store(q.canceled)
		}
		s.waiter.Store(nil)
	}
}

// awaitFulfill waits (spin-then-park) until node s is fulfilled or
// canceled, returning the observed item and, if canceled, why. The parker
// is the node's own (wp), initialized in place and published through the
// waiter word, so entering the slow path allocates nothing; fulfilled waits
// feed the adaptive spin calibrator when one is attached.
//
// t0 is the operation's arrival timestamp (from Handle.Start; zero when
// uninstrumented). awaitFulfill owns the wait's latency accounting: the
// spin phase ends at the spin→park transition (or at fulfillment if the
// wait never armed), and the exit records hand-off or wasted time from t0
// with a single clock read shared by both histograms.
func (q *DualQueue[T]) awaitFulfill(s *qnode[T], e *qitem[T], deadline time.Time, cancel <-chan struct{}, t0 int64) (*qitem[T], Status) {
	spins := 0
	if q.head.Load().next.Load() == s {
		// Only the node next in line for fulfillment spins; deeper
		// nodes park immediately (§Pragmatics).
		if q.cal != nil {
			if deadline.IsZero() {
				spins = q.cal.Untimed()
			} else {
				spins = q.cal.Timed()
			}
		} else if deadline.IsZero() {
			spins = q.untimedSpins
		} else {
			spins = q.timedSpins
		}
	}
	armed := false  // wp initialized and published
	parked := false // entered at least one slow-path wait
	status := Timeout
	spun := int64(0) // spins batched locally; one Add on exit keeps the hot loop free of atomics
	for i := 0; ; i++ {
		x := s.item.Load()
		if x != e {
			q.m.Add(metrics.Spins, spun)
			if t0 != 0 {
				// One clock read serves both views of the wait: the
				// spin phase (if the wait never armed its parker, the
				// whole wait was the spin phase) and the operation's
				// end-to-end outcome.
				d := time.Duration(metrics.Nanos() - t0)
				if !armed {
					q.m.Record(metrics.SpinNs, d)
				}
				if q.isDead(x) {
					q.m.Record(metrics.WastedNs, d)
				} else {
					q.m.Record(metrics.HandoffNs, d)
				}
			}
			if x == q.closedSent {
				q.m.Inc(metrics.ClosedWakeups)
				return x, Closed
			}
			if x == q.canceled {
				if status == Canceled {
					q.m.Inc(metrics.Cancellations)
				} else {
					q.m.Inc(metrics.Timeouts)
				}
				return x, status
			}
			if q.cal != nil {
				q.cal.Observe(int(spun), parked)
				q.m.Set(metrics.SpinBudget, int64(q.cal.Untimed()))
			}
			return x, OK
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			status = Timeout
			s.item.CompareAndSwap(e, q.canceled)
			continue // reload item: cancel may have lost to a fulfiller
		}
		if cancel != nil {
			select {
			case <-cancel:
				status = Canceled
				s.item.CompareAndSwap(e, q.canceled)
				continue
			default:
			}
		}
		if spins > 0 {
			spins--
			spun++
			spin.Pause(i)
			continue
		}
		if !armed {
			spin.EndPhase(q.m, t0) // spin budget exhausted: the busy phase ends here
			s.wp.Init(q.m, q.f)
			s.waiter.Store(&s.wp)
			armed = true
			continue // re-check item before first park
		}
		parked = true
		switch s.wp.Wait(deadline, cancel) {
		case park.Unparked:
			// Re-read item.
		case park.DeadlineExceeded:
			status = Timeout
			s.item.CompareAndSwap(e, q.canceled)
		case park.Canceled:
			status = Canceled
			s.item.CompareAndSwap(e, q.canceled)
		}
	}
}

// clean unlinks the canceled node s with predecessor pred. A canceled node
// at the tail cannot be unlinked (its predecessor's next pointer is the
// insertion point), so the queue remembers pred in cleanMe and the node is
// removed by a later clean — the paper's deferred cleaning strategy, which
// bounds garbage to one canceled node per queue rather than letting
// high-rate/low-patience workloads accumulate them.
func (q *DualQueue[T]) clean(pred, s *qnode[T]) {
	s.waiter.Store(nil)

	for pred.next.Load() == s { // early exit if already unlinked
		h := q.head.Load()
		hn := h.next.Load()
		if hn != nil && q.isCancelled(hn) {
			if q.advanceHead(h, hn) {
				q.m.Inc(metrics.CleanSweeps)
			}
			continue
		}
		t := q.tail.Load()
		if t == h {
			return // queue empty: s is gone
		}
		tn := t.next.Load()
		if t != q.tail.Load() {
			continue
		}
		if tn != nil {
			q.tail.CompareAndSwap(t, tn)
			continue
		}
		if s != t {
			// Interior node: unlink it now.
			sn := s.next.Load()
			if sn == s {
				return
			}
			if q.f.FailCAS(fault.QCleanCAS) {
				q.m.Inc(metrics.CASFailClean)
				continue // injected lost unlink: re-examine from the top
			}
			if pred.next.CompareAndSwap(s, sn) {
				q.m.Inc(metrics.CleanSweeps)
				return
			}
			q.m.Inc(metrics.CASFailClean)
		}
		// s is the tail: defer. First try to flush a previously
		// deferred node, then (if the slot is free) record ours.
		dp := q.cleanMe.Load()
		if dp != nil {
			d := dp.next.Load()
			unlinked := false
			if d == nil || d == dp || !q.isCancelled(d) {
				unlinked = true // stale record
			} else if d != t {
				if dn := d.next.Load(); dn != nil && dn != d && dp.next.CompareAndSwap(d, dn) {
					q.m.Inc(metrics.CleanSweeps)
					unlinked = true
				}
			}
			if unlinked {
				q.cleanMe.CompareAndSwap(dp, nil)
			}
			if dp == pred {
				return // s is already saved
			}
		} else if q.cleanMe.CompareAndSwap(nil, pred) {
			return // postpone cleaning s
		}
	}
}

// Close shuts the queue down gracefully: every waiter parked or spinning
// in the structure is woken and returns the Closed status, and every
// subsequent operation observes Closed (status-returning operations
// report it; demand operations panic, mirroring Go's closed-channel
// semantics). Asynchronously deposited data nodes (the TransferQueue
// extension) are left in place so already-accepted items can still be
// polled or drained. Close is idempotent and safe to call concurrently
// with any operation; it does not block on waiters.
//
// Close linearizes against in-flight fulfillments without locking: both a
// fulfiller and the close sweep resolve a waiter with a single CAS on the
// node's item word, so each waiter is either transferred or evicted,
// never both. An operation concurrent with Close may complete as if it
// happened just before the close; an operation that begins after Close
// returns always observes Closed.
func (q *DualQueue[T]) Close() {
	q.closed.Store(true)
	// Eviction sweep. No new waiters can be linked once closed is set
	// (the enqueue arm re-checks it, and transfer self-evicts nodes that
	// raced the sweep), so one pass over the list suffices; the walk
	// restarts if it steps onto a node advanceHead already retired.
	for {
		n := q.head.Load().next.Load()
		restarted := false
		for n != nil && !restarted {
			if isOffList(n) {
				restarted = true // raced a head advance: restart the walk
				break
			}
			x := n.item.Load()
			live := !q.isDead(x) && (n.isData == (x != nil))
			if live && n.isData && n.async {
				// Deposited data with no waiting producer:
				// keep it for Drain.
				n = n.next.Load()
				continue
			}
			if live {
				if !n.item.CompareAndSwap(x, q.closedSent) {
					continue // item changed under us: re-examine this node
				}
				if p := n.waiter.Load(); p != nil {
					p.Unpark()
				}
			}
			n = n.next.Load()
		}
		if !restarted {
			return
		}
	}
}

// Closed reports whether Close has been called.
func (q *DualQueue[T]) Closed() bool { return q.closed.Load() }

// Put transfers v to a consumer, waiting as long as necessary for one to
// arrive. Put panics if the queue is closed while waiting (or was already
// closed), since it has no status channel to report Closed through.
func (q *DualQueue[T]) Put(v T) {
	if _, st := q.transfer(true, v, time.Time{}, nil, false); st == Closed {
		panic(errClosedDemand)
	}
}

// PutDeadline transfers v to a consumer, giving up at the deadline (zero
// means never) or when cancel fires (nil means never).
func (q *DualQueue[T]) PutDeadline(v T, deadline time.Time, cancel <-chan struct{}) Status {
	_, st := q.transfer(true, v, deadline, cancel, false)
	return st
}

// Offer transfers v only if a consumer is already waiting; it reports
// whether the transfer happened.
func (q *DualQueue[T]) Offer(v T) bool {
	_, st := q.transfer(true, v, deadlineFor(0), nil, false)
	return st == OK
}

// OfferTimeout transfers v, waiting up to d for a consumer.
func (q *DualQueue[T]) OfferTimeout(v T, d time.Duration) bool {
	_, st := q.transfer(true, v, deadlineFor(d), nil, false)
	return st == OK
}

// PutAsync deposits v without waiting for a consumer: the paper's
// TransferQueue extension ("releasing producers before items are taken").
// It reports OK, or Closed when the queue has been shut down (the deposit
// is refused so closed queues cannot accumulate unreachable data).
func (q *DualQueue[T]) PutAsync(v T) Status {
	_, st := q.transfer(true, v, time.Time{}, nil, true)
	return st
}

// Take receives a value from a producer, waiting as long as necessary for
// one to arrive. Take panics if the queue is closed while waiting (or was
// already closed), rather than inventing a zero value.
func (q *DualQueue[T]) Take() T {
	v, st := q.transfer(false, *new(T), time.Time{}, nil, false)
	if st == Closed {
		panic(errClosedDemand)
	}
	return v
}

// TakeDeadline receives a value, giving up at the deadline (zero means
// never) or when cancel fires (nil means never).
func (q *DualQueue[T]) TakeDeadline(deadline time.Time, cancel <-chan struct{}) (T, Status) {
	return q.transfer(false, *new(T), deadline, cancel, false)
}

// Poll receives a value only if a producer is already waiting (or a datum
// was deposited asynchronously).
func (q *DualQueue[T]) Poll() (T, bool) {
	v, st := q.transfer(false, *new(T), deadlineFor(0), nil, false)
	return v, st == OK
}

// PollTimeout receives a value, waiting up to d for a producer.
func (q *DualQueue[T]) PollTimeout(d time.Duration) (T, bool) {
	v, st := q.transfer(false, *new(T), deadlineFor(d), nil, false)
	return v, st == OK
}

// observe classifies the queue's current content. The answer may be stale
// immediately; it is intended for tests, monitoring and heuristics.
func (q *DualQueue[T]) observe() (data, reservations bool) {
	h := q.head.Load()
	t := q.tail.Load()
	if h == t {
		return false, false
	}
	n := h.next.Load()
	if n == nil || n == h {
		return false, false
	}
	if q.isCancelled(n) {
		return false, false
	}
	return t.isData, !t.isData
}

// HasWaitingProducer reports whether a producer was observed waiting.
func (q *DualQueue[T]) HasWaitingProducer() bool { d, _ := q.observe(); return d }

// HasWaitingConsumer reports whether a consumer was observed waiting.
func (q *DualQueue[T]) HasWaitingConsumer() bool { _, r := q.observe(); return r }

// IsEmpty reports whether the queue was observed holding neither data nor
// reservations.
func (q *DualQueue[T]) IsEmpty() bool {
	h := q.head.Load()
	return h == q.tail.Load() && h.next.Load() == nil
}

// Len counts the live (non-canceled) waiting nodes by walking the list. It
// is linear time and only a snapshot under concurrency; intended for tests
// and monitoring.
func (q *DualQueue[T]) Len() int {
	n := 0
	cur := q.head.Load().next.Load()
	for cur != nil {
		next := cur.next.Load()
		if next == cur {
			break // node raced off-list; snapshot ends here
		}
		if !q.isCancelled(cur) {
			// A data node whose item was taken (nil) or a request
			// node already filled is retired, not waiting.
			x := cur.item.Load()
			if (cur.isData && x != nil) || (!cur.isData && x == nil) {
				n++
			}
		}
		cur = next
	}
	return n
}
