package core

import (
	"sync/atomic"
	"time"

	"synchq/internal/metrics"
	"synchq/internal/park"
	"synchq/internal/spin"
)

// qnode is a node of the synchronous dual queue. The list holds either data
// nodes (isData true, item initially non-nil) or reservation nodes (isData
// false, item initially nil), never both at once; the node at head is always
// a retired dummy.
//
// Fulfillment and cancellation are both CASes on item:
//
//	data node:    item: &v ──taken──▶ nil        or ──canceled──▶ sentinel
//	request node: item: nil ──filled──▶ &v       or ──canceled──▶ sentinel
type qnode[T any] struct {
	next   atomic.Pointer[qnode[T]]
	item   atomic.Pointer[qitem[T]]
	waiter atomic.Pointer[park.Parker]
	isData bool
}

// qitem boxes a transferred value. The trailing pad guarantees every
// allocation a unique address even when T is zero-sized (new(struct{})
// aliases a single runtime address), so pointer identity against the
// queue's cancellation sentinel is always meaningful.
type qitem[T any] struct {
	v T
	_ byte
}

// DualQueue is the paper's fair synchronous queue: a nonblocking,
// contention-free dual queue derived from the Michael & Scott queue, in
// which producers and consumers pair up in strict FIFO order. Use
// NewDualQueue to create one; a DualQueue must not be copied after first
// use.
type DualQueue[T any] struct {
	head atomic.Pointer[qnode[T]]
	tail atomic.Pointer[qnode[T]]
	// cleanMe is the predecessor of the last canceled node that could not
	// be unlinked immediately because it was the tail (the paper's — and
	// Java 6's — lazy cleaning strategy).
	cleanMe atomic.Pointer[qnode[T]]
	// canceled is this queue's cancellation sentinel: a canceled node's
	// item points here. It stands in for the JDK's "item == this"
	// self-marker, which Go's typed atomics cannot express.
	canceled *qitem[T]

	timedSpins   int
	untimedSpins int
	// m receives the instrumentation counters; nil disables them.
	m *metrics.Handle
}

// NewDualQueue returns an empty fair synchronous queue with the given wait
// policy (use the zero WaitConfig for the paper's defaults).
func NewDualQueue[T any](cfg WaitConfig) *DualQueue[T] {
	q := &DualQueue[T]{canceled: new(qitem[T]), m: cfg.Metrics}
	q.timedSpins, q.untimedSpins = cfg.resolve()
	dummy := &qnode[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Metrics returns the queue's instrumentation handle (nil when disabled).
func (q *DualQueue[T]) Metrics() *metrics.Handle { return q.m }

func (q *DualQueue[T]) isCancelled(n *qnode[T]) bool { return n.item.Load() == q.canceled }

// advanceHead swings head from h to nh and self-links the retired node so
// that isOffList observes it and the garbage collector can reclaim the
// chain behind it.
func (q *DualQueue[T]) advanceHead(h, nh *qnode[T]) bool {
	if h != nh && q.head.CompareAndSwap(h, nh) {
		h.next.Store(h)
		return true
	}
	return false
}

// isOffList reports whether n has been unlinked from the queue (self-linked
// by advanceHead).
func isOffList[T any](n *qnode[T]) bool { return n.next.Load() == n }

// transfer is the shared engine for put and take: e non-nil transfers a
// datum in, e nil transfers one out (the two operations are symmetric, as
// the paper observes). A zero deadline waits forever; an expired deadline
// makes the operation a pure offer/poll. If async is true a data node is
// deposited without waiting for a consumer (the paper's TransferQueue
// extension). On success the returned pointer is the transferred datum for
// takes and e for puts.
func (q *DualQueue[T]) transfer(e *qitem[T], deadline time.Time, cancel <-chan struct{}, async bool) (*qitem[T], Status) {
	canWait := func() bool {
		return async || deadline.IsZero() || time.Now().Before(deadline)
	}
	imm, s, pred, st := q.engage(e, canWait, async)
	if st != OK {
		return nil, st
	}
	if s == nil {
		return imm, OK // completed immediately (fulfilled a waiter, or async deposit)
	}

	x, status := q.awaitFulfill(s, e, deadline, cancel)
	if x == q.canceled {
		q.clean(pred, s)
		return nil, status
	}
	q.finish(s, pred, x)
	if x != nil {
		return x, OK
	}
	return e, OK
}

// engage is the lock-free half of a transfer (the paper's request
// linearization): it either fulfills a complementary waiter immediately
// (returning the exchanged item with node nil), deposits an async data
// node (node nil, item e), or enqueues a waiting node s with predecessor
// pred for the caller to await. canWait is consulted at the moment
// enqueueing becomes necessary; if it reports false, engage returns
// Timeout without touching the queue.
func (q *DualQueue[T]) engage(e *qitem[T], canWait func() bool, async bool) (imm *qitem[T], node, pred *qnode[T], st Status) {
	var s *qnode[T]
	isData := e != nil

	for {
		t := q.tail.Load()
		h := q.head.Load()

		if h == t || t.isData == isData {
			// Queue empty or holds same-mode nodes: enqueue and
			// wait (Listing 5, lines 08–21).
			tn := t.next.Load()
			if t != q.tail.Load() {
				continue // inconsistent snapshot
			}
			if tn != nil {
				q.tail.CompareAndSwap(t, tn) // help lagging tail
				q.m.Inc(metrics.HelpCollisions)
				continue
			}
			if !canWait() {
				q.m.Inc(metrics.Timeouts)
				return nil, nil, nil, Timeout // can't wait
			}
			if s == nil {
				s = &qnode[T]{isData: isData}
				s.item.Store(e)
			}
			if !t.next.CompareAndSwap(nil, s) {
				q.m.Inc(metrics.CASFailEnqueue)
				continue // lost insertion race
			}
			q.tail.CompareAndSwap(t, s)
			if async {
				q.m.Inc(metrics.AsyncDeposits)
				return e, nil, nil, OK
			}
			return nil, s, t, OK

		}

		// Complementary mode at head: try to fulfill the oldest
		// waiter (Listing 5, lines 23–31).
		m := h.next.Load()
		if t != q.tail.Load() || m == nil || h != q.head.Load() {
			continue // inconsistent snapshot
		}
		x := m.item.Load()
		if isData == (x != nil) || // m already fulfilled
			x == q.canceled || // m canceled
			!m.item.CompareAndSwap(x, e) { // lost fulfill race
			q.m.Inc(metrics.CASFailFulfill)
			q.advanceHead(h, m) // dequeue and retry
			continue
		}
		q.m.Inc(metrics.Fulfillments)
		q.advanceHead(h, m)
		if p := m.waiter.Load(); p != nil {
			p.Unpark()
		}
		if x != nil {
			return x, nil, nil, OK
		}
		return e, nil, nil, OK
	}
}

// finish performs the post-fulfillment bookkeeping for a node we waited
// on: help dequeue ourselves (Listing 5, lines 17–19) and forget
// references so blocked threads don't pin garbage (§Pragmatics). x is the
// item value observed at fulfillment.
func (q *DualQueue[T]) finish(s, pred *qnode[T], x *qitem[T]) {
	if !isOffList(s) {
		q.advanceHead(pred, s)
		if x != nil {
			s.item.Store(q.canceled)
		}
		s.waiter.Store(nil)
	}
}

// awaitFulfill waits (spin-then-park) until node s is fulfilled or
// canceled, returning the observed item and, if canceled, why.
func (q *DualQueue[T]) awaitFulfill(s *qnode[T], e *qitem[T], deadline time.Time, cancel <-chan struct{}) (*qitem[T], Status) {
	spins := 0
	if q.head.Load().next.Load() == s {
		// Only the node next in line for fulfillment spins; deeper
		// nodes park immediately (§Pragmatics).
		if deadline.IsZero() {
			spins = q.untimedSpins
		} else {
			spins = q.timedSpins
		}
	}
	var p *park.Parker
	status := Timeout
	spun := int64(0) // spins batched locally; one Add on exit keeps the hot loop free of atomics
	for i := 0; ; i++ {
		x := s.item.Load()
		if x != e {
			q.m.Add(metrics.Spins, spun)
			if x == q.canceled {
				if status == Canceled {
					q.m.Inc(metrics.Cancellations)
				} else {
					q.m.Inc(metrics.Timeouts)
				}
				return x, status
			}
			return x, OK
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			status = Timeout
			s.item.CompareAndSwap(e, q.canceled)
			continue // reload item: cancel may have lost to a fulfiller
		}
		if cancel != nil {
			select {
			case <-cancel:
				status = Canceled
				s.item.CompareAndSwap(e, q.canceled)
				continue
			default:
			}
		}
		if spins > 0 {
			spins--
			spun++
			spin.Pause(i)
			continue
		}
		if p == nil {
			p = park.NewMetered(q.m)
			s.waiter.Store(p)
			continue // re-check item before first park
		}
		switch p.Wait(deadline, cancel) {
		case park.Unparked:
			// Re-read item.
		case park.DeadlineExceeded:
			status = Timeout
			s.item.CompareAndSwap(e, q.canceled)
		case park.Canceled:
			status = Canceled
			s.item.CompareAndSwap(e, q.canceled)
		}
	}
}

// clean unlinks the canceled node s with predecessor pred. A canceled node
// at the tail cannot be unlinked (its predecessor's next pointer is the
// insertion point), so the queue remembers pred in cleanMe and the node is
// removed by a later clean — the paper's deferred cleaning strategy, which
// bounds garbage to one canceled node per queue rather than letting
// high-rate/low-patience workloads accumulate them.
func (q *DualQueue[T]) clean(pred, s *qnode[T]) {
	s.waiter.Store(nil)

	for pred.next.Load() == s { // early exit if already unlinked
		h := q.head.Load()
		hn := h.next.Load()
		if hn != nil && q.isCancelled(hn) {
			if q.advanceHead(h, hn) {
				q.m.Inc(metrics.CleanSweeps)
			}
			continue
		}
		t := q.tail.Load()
		if t == h {
			return // queue empty: s is gone
		}
		tn := t.next.Load()
		if t != q.tail.Load() {
			continue
		}
		if tn != nil {
			q.tail.CompareAndSwap(t, tn)
			continue
		}
		if s != t {
			// Interior node: unlink it now.
			sn := s.next.Load()
			if sn == s {
				return
			}
			if pred.next.CompareAndSwap(s, sn) {
				q.m.Inc(metrics.CleanSweeps)
				return
			}
			q.m.Inc(metrics.CASFailClean)
		}
		// s is the tail: defer. First try to flush a previously
		// deferred node, then (if the slot is free) record ours.
		dp := q.cleanMe.Load()
		if dp != nil {
			d := dp.next.Load()
			unlinked := false
			if d == nil || d == dp || !q.isCancelled(d) {
				unlinked = true // stale record
			} else if d != t {
				if dn := d.next.Load(); dn != nil && dn != d && dp.next.CompareAndSwap(d, dn) {
					q.m.Inc(metrics.CleanSweeps)
					unlinked = true
				}
			}
			if unlinked {
				q.cleanMe.CompareAndSwap(dp, nil)
			}
			if dp == pred {
				return // s is already saved
			}
		} else if q.cleanMe.CompareAndSwap(nil, pred) {
			return // postpone cleaning s
		}
	}
}

// Put transfers v to a consumer, waiting as long as necessary for one to
// arrive.
func (q *DualQueue[T]) Put(v T) {
	q.transfer(&qitem[T]{v: v}, time.Time{}, nil, false)
}

// PutDeadline transfers v to a consumer, giving up at the deadline (zero
// means never) or when cancel fires (nil means never).
func (q *DualQueue[T]) PutDeadline(v T, deadline time.Time, cancel <-chan struct{}) Status {
	_, st := q.transfer(&qitem[T]{v: v}, deadline, cancel, false)
	return st
}

// Offer transfers v only if a consumer is already waiting; it reports
// whether the transfer happened.
func (q *DualQueue[T]) Offer(v T) bool {
	_, st := q.transfer(&qitem[T]{v: v}, deadlineFor(0), nil, false)
	return st == OK
}

// OfferTimeout transfers v, waiting up to d for a consumer.
func (q *DualQueue[T]) OfferTimeout(v T, d time.Duration) bool {
	_, st := q.transfer(&qitem[T]{v: v}, deadlineFor(d), nil, false)
	return st == OK
}

// PutAsync deposits v without waiting for a consumer: the paper's
// TransferQueue extension ("releasing producers before items are taken").
func (q *DualQueue[T]) PutAsync(v T) {
	q.transfer(&qitem[T]{v: v}, time.Time{}, nil, true)
}

// Take receives a value from a producer, waiting as long as necessary for
// one to arrive.
func (q *DualQueue[T]) Take() T {
	x, _ := q.transfer(nil, time.Time{}, nil, false)
	return x.v
}

// TakeDeadline receives a value, giving up at the deadline (zero means
// never) or when cancel fires (nil means never).
func (q *DualQueue[T]) TakeDeadline(deadline time.Time, cancel <-chan struct{}) (T, Status) {
	x, st := q.transfer(nil, deadline, cancel, false)
	if st != OK {
		var zero T
		return zero, st
	}
	return x.v, OK
}

// Poll receives a value only if a producer is already waiting (or a datum
// was deposited asynchronously).
func (q *DualQueue[T]) Poll() (T, bool) {
	x, st := q.transfer(nil, deadlineFor(0), nil, false)
	if st != OK {
		var zero T
		return zero, false
	}
	return x.v, true
}

// PollTimeout receives a value, waiting up to d for a producer.
func (q *DualQueue[T]) PollTimeout(d time.Duration) (T, bool) {
	x, st := q.transfer(nil, deadlineFor(d), nil, false)
	if st != OK {
		var zero T
		return zero, false
	}
	return x.v, true
}

// observe classifies the queue's current content. The answer may be stale
// immediately; it is intended for tests, monitoring and heuristics.
func (q *DualQueue[T]) observe() (data, reservations bool) {
	h := q.head.Load()
	t := q.tail.Load()
	if h == t {
		return false, false
	}
	n := h.next.Load()
	if n == nil || n == h {
		return false, false
	}
	if q.isCancelled(n) {
		return false, false
	}
	return t.isData, !t.isData
}

// HasWaitingProducer reports whether a producer was observed waiting.
func (q *DualQueue[T]) HasWaitingProducer() bool { d, _ := q.observe(); return d }

// HasWaitingConsumer reports whether a consumer was observed waiting.
func (q *DualQueue[T]) HasWaitingConsumer() bool { _, r := q.observe(); return r }

// IsEmpty reports whether the queue was observed holding neither data nor
// reservations.
func (q *DualQueue[T]) IsEmpty() bool {
	h := q.head.Load()
	return h == q.tail.Load() && h.next.Load() == nil
}

// Len counts the live (non-canceled) waiting nodes by walking the list. It
// is linear time and only a snapshot under concurrency; intended for tests
// and monitoring.
func (q *DualQueue[T]) Len() int {
	n := 0
	cur := q.head.Load().next.Load()
	for cur != nil {
		next := cur.next.Load()
		if next == cur {
			break // node raced off-list; snapshot ends here
		}
		if !q.isCancelled(cur) {
			// A data node whose item was taken (nil) or a request
			// node already filled is retired, not waiting.
			x := cur.item.Load()
			if (cur.isData && x != nil) || (!cur.isData && x == nil) {
				n++
			}
		}
		cur = next
	}
	return n
}
