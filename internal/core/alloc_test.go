package core

import (
	"testing"

	"synchq/internal/exchanger"
)

// This file pins the zero-allocation hand-off hot path: with pooled item
// boxes, spare-node recycling, and embedded parkers, a steady-state paired
// Put/Take costs one node allocation per pair on the queue (the waiter's
// linked node, which the ABA doctrine forbids pooling) and two on the stack
// (waiter plus fulfilling node) — at most one allocation per operation per
// side, where the seed implementation paid four or more (node, item box,
// parker, parker channel).

// benchPairs drives b.N paired hand-offs: a partner goroutine takes while
// the benchmark goroutine puts.
func benchPairs(b *testing.B, put func(int64), take func() int64) {
	b.ReportAllocs()
	done := make(chan struct{})
	go func() {
		for i := 0; i < b.N; i++ {
			take()
		}
		close(done)
	}()
	for i := 0; i < b.N; i++ {
		put(int64(i))
	}
	<-done
}

// BenchmarkHandoffAllocs reports allocations per paired hand-off for the
// three dual structures and the exchanger under the default wait policy
// (adaptive spinning, parking allowed). The allocs/op figure is per pair:
// divide by two for the per-side cost.
func BenchmarkHandoffAllocs(b *testing.B) {
	b.Run("DualQueue", func(b *testing.B) {
		q := NewDualQueue[int64](WaitConfig{})
		benchPairs(b, q.Put, q.Take)
	})
	b.Run("DualStack", func(b *testing.B) {
		q := NewDualStack[int64](WaitConfig{})
		benchPairs(b, q.Put, q.Take)
	})
	b.Run("TransferQueue", func(b *testing.B) {
		q := NewTransferQueue[int64](WaitConfig{})
		benchPairs(b, q.Transfer, q.Take)
	})
	b.Run("Exchanger", func(b *testing.B) {
		e := exchanger.New[int64]()
		benchPairs(b,
			func(v int64) { e.Exchange(v) },
			func() int64 { return e.Exchange(0) })
	})
}

// measurePairAllocs reports the steady-state allocations per paired
// put/take, with both sides' allocations counted (testing.AllocsPerRun
// measures the global allocation counter). The structure is warmed first so
// the pools are primed; -1 is the partner's stop sentinel and must not be
// used as a payload.
func measurePairAllocs(t *testing.T, put func(int64), take func() int64) float64 {
	t.Helper()
	done := make(chan struct{})
	go func() {
		for take() != -1 {
		}
		close(done)
	}()
	for i := 0; i < 200; i++ {
		put(int64(i))
	}
	got := testing.AllocsPerRun(200, func() { put(7) })
	put(-1)
	<-done
	return got
}

// TestHandoffAllocBudget enforces the PR's acceptance bound — at most one
// allocation per operation per side, i.e. at most two per paired hand-off —
// on the spin-success path. Enormous explicit spin budgets guarantee waits
// are fulfilled while spinning (AllocsPerRun pins GOMAXPROCS to 1, but
// spin.Pause yields periodically, so the pair still makes progress), which
// keeps parking and timer machinery out of the measurement: what remains is
// exactly the node/box lifecycle this PR pools.
func TestHandoffAllocBudget(t *testing.T) {
	cfg := WaitConfig{TimedSpins: 1 << 30, UntimedSpins: 1 << 30}

	t.Run("DualQueue", func(t *testing.T) {
		q := NewDualQueue[int64](cfg)
		if got := measurePairAllocs(t, q.Put, q.Take); got > 2 {
			t.Errorf("allocs per put/take pair = %v, want at most 2", got)
		}
	})
	t.Run("DualStack", func(t *testing.T) {
		q := NewDualStack[int64](cfg)
		if got := measurePairAllocs(t, q.Put, q.Take); got > 2 {
			t.Errorf("allocs per put/take pair = %v, want at most 2", got)
		}
	})
	t.Run("TransferQueue", func(t *testing.T) {
		q := NewTransferQueue[int64](cfg)
		if got := measurePairAllocs(t, q.Transfer, q.Take); got > 2 {
			t.Errorf("allocs per transfer/take pair = %v, want at most 2", got)
		}
	})
	t.Run("Exchanger", func(t *testing.T) {
		// The exchanger's boxes are pooled like the dual structures' item
		// boxes, so a steady-state exchange pair recycles both sides' boxes
		// and allocates at most the occasional pool refill. Under -race
		// sync.Pool drops a quarter of Puts by design; with two pool
		// round-trips per pair that costs up to one extra allocation, so the
		// budget widens there.
		budget := 2.0
		if raceEnabled {
			budget = 3
		}
		e := exchanger.New[int64]()
		got := measurePairAllocs(t,
			func(v int64) { e.Exchange(v) },
			func() int64 { return e.Exchange(0) })
		if got > budget {
			t.Errorf("allocs per exchange pair = %v, want at most %v", got, budget)
		}
	})
}

// TestOfferPollMissesDoNotAllocate pins the other hot path the pools serve:
// a missed offer or poll (zero patience, empty structure) gets its item box
// from the pool and returns it, so probing an empty queue settles to zero
// allocations.
func TestOfferPollMissesDoNotAllocate(t *testing.T) {
	t.Run("DualQueue", func(t *testing.T) {
		q := NewDualQueue[int64](WaitConfig{})
		for i := 0; i < 10; i++ { // prime the item pool
			q.Offer(1)
		}
		if got := testing.AllocsPerRun(100, func() {
			q.Offer(2)
			q.Poll()
		}); got > 0 {
			t.Errorf("allocs per missed offer+poll = %v, want 0", got)
		}
	})
	t.Run("DualStack", func(t *testing.T) {
		q := NewDualStack[int64](WaitConfig{})
		for i := 0; i < 10; i++ {
			q.Offer(1)
		}
		if got := testing.AllocsPerRun(100, func() {
			q.Offer(2)
			q.Poll()
		}); got > 0 {
			t.Errorf("allocs per missed offer+poll = %v, want 0", got)
		}
	})
}
