package core

import (
	"sync"
	"testing"

	"synchq/internal/metrics"
)

// BenchmarkMetricsOverhead measures the cost of the instrumentation layer
// on the fair queue's 1:1 handoff — the hot path every counter hook sits
// on.
//
// Expectation (documented, and what the padding + nil-receiver design is
// for): Disabled must match the uninstrumented seed — every hook is a
// single highly-predictable nil check, and the spin counter is batched
// into one local variable per wait, so no atomic traffic is added.
// Enabled may pay a few percent for the counter Adds; each counter lives
// on its own cache line so the cost stays additive rather than exploding
// under cross-core contention.
//
// Compare with:
//
//	go test -run - -bench MetricsOverhead -count 10 ./internal/core/ | benchstat
func BenchmarkMetricsOverhead(b *testing.B) {
	bench := func(b *testing.B, h *metrics.Handle) {
		q := NewDualQueue[int64](WaitConfig{Metrics: h})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				q.Take()
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Put(int64(i))
		}
		wg.Wait()
	}
	b.Run("Disabled", func(b *testing.B) { bench(b, nil) })
	b.Run("Enabled", func(b *testing.B) { bench(b, metrics.New()) })
}
