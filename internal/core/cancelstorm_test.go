package core

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// cancelStorm drives producers whose waits are asynchronously canceled at
// random moments — the Go analogue of the paper's thread interruption —
// and checks that exactly the successful puts are received, no more, no
// less. This exercises the cancel-channel path of awaitFulfill (distinct
// from the deadline path the timeout tests cover).
func cancelStorm(t *testing.T, put func(int64, <-chan struct{}) Status, poll func(time.Duration) (int64, bool)) {
	t.Helper()
	const producers = 6
	const perProducer = 200
	var succeeded atomic.Int64
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id), 7))
			for i := int64(0); i < perProducer; i++ {
				cancel := make(chan struct{})
				timer := time.AfterFunc(time.Duration(rng.IntN(500))*time.Microsecond, func() {
					close(cancel)
				})
				if put(id<<32|i, cancel) == OK {
					succeeded.Add(1)
				}
				timer.Stop()
			}
		}(int64(p))
	}

	var received atomic.Int64
	var cg sync.WaitGroup
	cg.Add(1)
	go func() {
		defer cg.Done()
		for {
			if _, ok := poll(20 * time.Millisecond); !ok {
				return // producers exhausted and queue drained
			}
			received.Add(1)
		}
	}()
	wg.Wait()
	cg.Wait()

	if succeeded.Load() != received.Load() {
		t.Fatalf("producers report %d successes but %d values received",
			succeeded.Load(), received.Load())
	}
	if succeeded.Load() == 0 {
		t.Fatal("storm canceled everything; no transfers exercised the success path")
	}
}

func TestDualQueueCancelStormConservation(t *testing.T) {
	q := NewDualQueue[int64](WaitConfig{})
	cancelStorm(t,
		func(v int64, c <-chan struct{}) Status { return q.PutDeadline(v, time.Time{}, c) },
		q.PollTimeout,
	)
	if n := q.Len(); n != 0 {
		t.Fatalf("Len = %d after storm, want 0", n)
	}
}

func TestDualStackCancelStormConservation(t *testing.T) {
	q := NewDualStack[int64](WaitConfig{})
	cancelStorm(t,
		func(v int64, c <-chan struct{}) Status { return q.PutDeadline(v, time.Time{}, c) },
		q.PollTimeout,
	)
	if n := q.Len(); n != 0 {
		t.Fatalf("Len = %d after storm, want 0", n)
	}
}

// TestCancelRaceWithFulfillAgreement pins the razor-edge case: the cancel
// fires at (nearly) the same instant a consumer fulfills. Producer and
// consumer must agree on the outcome every single time.
func TestCancelRaceWithFulfillAgreement(t *testing.T) {
	run := func(t *testing.T, put func(int64, <-chan struct{}) Status, poll func(time.Duration) (int64, bool)) {
		for i := 0; i < 300; i++ {
			cancel := make(chan struct{})
			consumerGot := make(chan bool, 1)
			go func() {
				_, ok := poll(300 * time.Microsecond)
				consumerGot <- ok
			}()
			go func() {
				time.Sleep(time.Duration(i%7) * 50 * time.Microsecond)
				close(cancel)
			}()
			st := put(int64(i), cancel)
			got := <-consumerGot
			if (st == OK) != got {
				t.Fatalf("iteration %d: producer status %v but consumer got=%v", i, st, got)
			}
		}
	}
	t.Run("queue", func(t *testing.T) {
		q := NewDualQueue[int64](WaitConfig{})
		run(t, func(v int64, c <-chan struct{}) Status { return q.PutDeadline(v, time.Time{}, c) }, q.PollTimeout)
	})
	t.Run("stack", func(t *testing.T) {
		q := NewDualStack[int64](WaitConfig{})
		run(t, func(v int64, c <-chan struct{}) Status { return q.PutDeadline(v, time.Time{}, c) }, q.PollTimeout)
	})
}
