//go:build race

package core

// raceEnabled reports whether the race detector is on. Under -race,
// sync.Pool deliberately drops a quarter of Puts (see sync/pool.go), so
// tests asserting that a specific single Put is later reused must retry.
const raceEnabled = true
