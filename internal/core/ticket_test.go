package core

import (
	"testing"
	"time"
)

// ticketSide abstracts queue/stack so the reserve/followup/abort contract
// is tested identically on both structures.
type ticketSide interface {
	takeReserve() (int, ticket, bool)
	putReserve(v int) (ticket, bool)
	put(v int)
	take() int
	len() int
}

type ticket interface {
	TryFollowup() (int, bool)
	Await(deadline time.Time, cancel <-chan struct{}) (int, Status)
	Abort() bool
}

type queueSide struct{ q *DualQueue[int] }

func (s queueSide) takeReserve() (int, ticket, bool) {
	v, t, ok := s.q.TakeReserve()
	if t == nil {
		return v, nil, ok
	}
	return v, t, ok
}
func (s queueSide) putReserve(v int) (ticket, bool) {
	t, ok := s.q.PutReserve(v)
	if t == nil {
		return nil, ok
	}
	return t, ok
}
func (s queueSide) put(v int) { s.q.Put(v) }
func (s queueSide) take() int { return s.q.Take() }
func (s queueSide) len() int  { return s.q.Len() }

type stackSide struct{ q *DualStack[int] }

func (s stackSide) takeReserve() (int, ticket, bool) {
	v, t, ok := s.q.TakeReserve()
	if t == nil {
		return v, nil, ok
	}
	return v, t, ok
}
func (s stackSide) putReserve(v int) (ticket, bool) {
	t, ok := s.q.PutReserve(v)
	if t == nil {
		return nil, ok
	}
	return t, ok
}
func (s stackSide) put(v int) { s.q.Put(v) }
func (s stackSide) take() int { return s.q.Take() }
func (s stackSide) len() int  { return s.q.Len() }

func ticketSides() map[string]func() ticketSide {
	return map[string]func() ticketSide{
		"queue": func() ticketSide { return queueSide{NewDualQueue[int](WaitConfig{})} },
		"stack": func() ticketSide { return stackSide{NewDualStack[int](WaitConfig{})} },
	}
}

func TestTicketTakeReserveThenProducerArrives(t *testing.T) {
	for name, mk := range ticketSides() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			_, tk, ok := s.takeReserve()
			if ok || tk == nil {
				t.Fatal("expected a pending ticket on an empty structure")
			}
			if _, ok := tk.TryFollowup(); ok {
				t.Fatal("TryFollowup succeeded before any producer")
			}
			go s.put(42)
			deadline := time.Now().Add(5 * time.Second)
			for {
				if v, ok := tk.TryFollowup(); ok {
					if v != 42 {
						t.Fatalf("followup = %d, want 42", v)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("followup never succeeded")
				}
				time.Sleep(100 * time.Microsecond)
			}
		})
	}
}

func TestTicketImmediateFulfillment(t *testing.T) {
	for name, mk := range ticketSides() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			// A waiting producer means TakeReserve completes at once.
			go s.put(7)
			deadline := time.Now().Add(5 * time.Second)
			for s.len() != 1 {
				if time.Now().After(deadline) {
					t.Fatal("producer never queued")
				}
				time.Sleep(100 * time.Microsecond)
			}
			v, tk, ok := s.takeReserve()
			if !ok || tk != nil || v != 7 {
				t.Fatalf("TakeReserve = (%d,%v,%v), want immediate 7", v, tk, ok)
			}
		})
	}
}

func TestTicketPutReserveDelivered(t *testing.T) {
	for name, mk := range ticketSides() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			tk, ok := s.putReserve(9)
			if ok || tk == nil {
				t.Fatal("expected a pending put ticket")
			}
			got := make(chan int)
			go func() { got <- s.take() }()
			if v := <-got; v != 9 {
				t.Fatalf("consumer took %d, want 9", v)
			}
			// The producer's follow-up observes delivery.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if _, ok := tk.TryFollowup(); ok {
					return
				}
				if time.Now().After(deadline) {
					t.Fatal("put followup never observed delivery")
				}
				time.Sleep(100 * time.Microsecond)
			}
		})
	}
}

func TestTicketAbort(t *testing.T) {
	for name, mk := range ticketSides() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			tk, ok := s.putReserve(1)
			if ok {
				t.Fatal("unexpected immediate delivery")
			}
			if !tk.Abort() {
				t.Fatal("Abort failed on an unfulfilled reservation")
			}
			// The aborted offer must be invisible to consumers.
			tk2, ok := s.putReserve(2)
			if ok {
				t.Fatal("unexpected immediate delivery of second offer")
			}
			if got := s.take(); got != 2 {
				t.Fatalf("take = %d, want 2 (aborted 1 must be skipped)", got)
			}
			// tk2 was fulfilled by that take.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if _, ok := tk2.TryFollowup(); ok {
					return
				}
				if time.Now().After(deadline) {
					t.Fatal("followup never observed delivery")
				}
				time.Sleep(100 * time.Microsecond)
			}
		})
	}
}

func TestTicketAbortLosesToFulfillment(t *testing.T) {
	for name, mk := range ticketSides() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			tk, _ := s.putReserve(5)
			// Fulfill it...
			if got := s.take(); got != 5 {
				t.Fatalf("take = %d, want 5", got)
			}
			// ...then try to abort: must fail, and the follow-up must
			// still report delivery (Listing 2's abort path).
			if tk.Abort() {
				t.Fatal("Abort succeeded after fulfillment")
			}
			if _, ok := tk.TryFollowup(); !ok {
				t.Fatal("followup after failed abort did not report delivery")
			}
		})
	}
}

func TestTicketAwaitBlocksAndDelivers(t *testing.T) {
	for name, mk := range ticketSides() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			_, tk, ok := s.takeReserve()
			if ok {
				t.Fatal("unexpected immediate value")
			}
			go func() {
				time.Sleep(5 * time.Millisecond)
				s.put(11)
			}()
			v, st := tk.Await(time.Time{}, nil)
			if st != OK || v != 11 {
				t.Fatalf("Await = (%d,%v), want (11,OK)", v, st)
			}
		})
	}
}

func TestTicketAwaitTimesOut(t *testing.T) {
	for name, mk := range ticketSides() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			_, tk, _ := s.takeReserve()
			_, st := tk.Await(time.Now().Add(10*time.Millisecond), nil)
			if st != Timeout {
				t.Fatalf("Await = %v, want Timeout", st)
			}
			// The canceled reservation must not absorb a later put.
			done := make(chan int)
			go func() { done <- s.take() }()
			s.put(3)
			if got := <-done; got != 3 {
				t.Fatalf("take = %d, want 3", got)
			}
		})
	}
}

func TestTicketSpentPanics(t *testing.T) {
	s := ticketSides()["queue"]()
	_, tk, _ := s.takeReserve()
	if !tk.Abort() {
		t.Fatal("abort failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("follow-up on a spent ticket did not panic")
		}
	}()
	tk.TryFollowup()
}
