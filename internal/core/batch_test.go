package core

import (
	"sync"
	"testing"
	"time"
)

func TestPutAllAsyncBuffersInOrder(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	n, st := q.PutAll([]int{1, 2, 3, 4, 5})
	if n != 5 || st != OK {
		t.Fatalf("PutAll = (%d, %v), want (5, OK)", n, st)
	}
	for want := 1; want <= 5; want++ {
		v, ok := q.Poll()
		if !ok || v != want {
			t.Fatalf("Poll = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	if _, ok := q.Poll(); ok {
		t.Fatal("queue not empty after draining the burst")
	}
}

func TestPutAllAsyncServesWaitingConsumersFirst(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	got := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got <- q.Take()
		}()
	}
	for !q.HasWaitingConsumer() {
		time.Sleep(time.Millisecond)
	}
	n, st := q.PutAll([]int{10, 20, 30, 40})
	if n != 4 || st != OK {
		t.Fatalf("PutAll = (%d, %v), want (4, OK)", n, st)
	}
	wg.Wait()
	close(got)
	seen := map[int]bool{}
	for v := range got {
		seen[v] = true
	}
	// The two waiting consumers must have received the batch's first two
	// items; the rest stays buffered in order.
	if !seen[10] || !seen[20] {
		t.Fatalf("waiting consumers got %v, want the front of the batch {10, 20}", seen)
	}
	for _, want := range []int{30, 40} {
		if v, ok := q.Poll(); !ok || v != want {
			t.Fatalf("Poll = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
}

func TestPutAllAsyncEmptyAndClosed(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	if n, st := q.PutAll(nil); n != 0 || st != OK {
		t.Fatalf("PutAll(nil) = (%d, %v), want (0, OK)", n, st)
	}
	q.Close()
	if n, st := q.PutAll([]int{1, 2}); n != 0 || st != Closed {
		t.Fatalf("PutAll on closed = (%d, %v), want (0, Closed)", n, st)
	}
	// Nothing from the refused burst may have been buffered.
	if _, ok := q.Poll(); ok {
		t.Fatal("closed queue buffered part of a refused burst")
	}
}

func TestTransferBatchPartialFillOnTimeout(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	taken := make(chan int, 2)
	go func() {
		taken <- q.Take()
		taken <- q.Take()
	}()
	n, st := q.TransferBatch([]int{1, 2, 3, 4}, time.Now().Add(100*time.Millisecond), nil)
	if n != 2 || st != Timeout {
		t.Fatalf("TransferBatch = (%d, %v), want (2, Timeout)", n, st)
	}
	if a, b := <-taken, <-taken; a != 1 || b != 2 {
		t.Fatalf("consumers got (%d, %d), want (1, 2)", a, b)
	}
	// Aborted items are reclaimed: nothing buffered, nothing pollable.
	if v, ok := q.Poll(); ok {
		t.Fatalf("Poll after aborted batch = %d, want miss", v)
	}
}

func TestTakeBatchMixesBufferedAndOrder(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	q.PutAll([]int{1, 2, 3, 4, 5})
	buf, st := q.TakeBatch(nil, 3, time.Time{}, nil)
	if st != OK || len(buf) != 3 {
		t.Fatalf("TakeBatch = (%v, %v), want 3 values, OK", buf, st)
	}
	for i, want := range []int{1, 2, 3} {
		if buf[i] != want {
			t.Fatalf("buf[%d] = %d, want %d", i, buf[i], want)
		}
	}
	// Appending to a caller buffer preserves what was already there.
	buf2, st := q.TakeBatch(buf, 10, time.Time{}, nil)
	if st != OK || len(buf2) != 5 || buf2[3] != 4 || buf2[4] != 5 {
		t.Fatalf("second TakeBatch = (%v, %v), want append of 4, 5", buf2, st)
	}
}

// TestDrainToClosedDrainsBufferedFirst is the regression test for the
// closed-drain contract: DrainTo on a closed TransferQueue must keep
// returning buffered asynchronous deposits — the promise Take and Poll
// already keep — and report Closed only once the buffer is empty.
func TestDrainToClosedDrainsBufferedFirst(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	q.PutAll([]int{1, 2, 3})
	q.Close()

	buf, st := q.DrainTo(nil, 2)
	if st != OK || len(buf) != 2 || buf[0] != 1 || buf[1] != 2 {
		t.Fatalf("DrainTo on closed queue with buffered deposits = (%v, %v), want ([1 2], OK)", buf, st)
	}
	// The last deposit comes out even as the drain hits the closed end.
	buf, st = q.DrainTo(nil, 2)
	if len(buf) != 1 || buf[0] != 3 {
		t.Fatalf("second DrainTo = (%v, %v), want the final deposit [3]", buf, st)
	}
	// Only now — buffer empty — may DrainTo report Closed.
	buf, st = q.DrainTo(nil, 2)
	if len(buf) != 0 || st != Closed {
		t.Fatalf("DrainTo on drained closed queue = (%v, %v), want ([], Closed)", buf, st)
	}
}

func TestDrainToOpenQueueNeverReportsClosed(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	if buf, st := q.DrainTo(nil, 4); len(buf) != 0 || st != OK {
		t.Fatalf("DrainTo on empty open queue = (%v, %v), want ([], OK)", buf, st)
	}
	q.PutAll([]int{7})
	if buf, st := q.DrainTo(nil, 4); st != OK || len(buf) != 1 || buf[0] != 7 {
		t.Fatalf("DrainTo = (%v, %v), want ([7], OK)", buf, st)
	}
}

func TestDualBatchLoopFallbacks(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() interface {
			PutBatch([]int, time.Time, <-chan struct{}) (int, Status)
			TakeBatch([]int, int, time.Time, <-chan struct{}) ([]int, Status)
		}
	}{
		{"queue", func() interface {
			PutBatch([]int, time.Time, <-chan struct{}) (int, Status)
			TakeBatch([]int, int, time.Time, <-chan struct{}) ([]int, Status)
		} {
			return NewDualQueue[int](WaitConfig{})
		}},
		{"stack", func() interface {
			PutBatch([]int, time.Time, <-chan struct{}) (int, Status)
			TakeBatch([]int, int, time.Time, <-chan struct{}) ([]int, Status)
		} {
			return NewDualStack[int](WaitConfig{})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.mk()
			if n, st := q.PutBatch(nil, time.Time{}, nil); n != 0 || st != OK {
				t.Fatalf("PutBatch(nil) = (%d, %v), want (0, OK)", n, st)
			}
			if buf, st := q.TakeBatch(nil, 0, time.Time{}, nil); len(buf) != 0 || st != OK {
				t.Fatalf("TakeBatch(max=0) = (%v, %v), want ([], OK)", buf, st)
			}
			done := make(chan []int)
			go func() {
				var buf []int
				for len(buf) < 4 {
					got, st := q.TakeBatch(buf, 4-len(buf), time.Time{}, nil)
					if st != OK {
						t.Errorf("TakeBatch status = %v", st)
						break
					}
					buf = got
				}
				done <- buf
			}()
			if n, st := q.PutBatch([]int{1, 2, 3, 4}, time.Time{}, nil); n != 4 || st != OK {
				t.Fatalf("PutBatch = (%d, %v), want (4, OK)", n, st)
			}
			buf := <-done
			seen := map[int]bool{}
			for _, v := range buf {
				seen[v] = true
			}
			if len(seen) != 4 {
				t.Fatalf("received %v, want 4 distinct values", buf)
			}
		})
	}
}

func TestPutBatchPartialOnTimeoutDualQueue(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	got := make(chan int, 1)
	go func() { got <- q.Take() }()
	n, st := q.PutBatch([]int{1, 2, 3}, time.Now().Add(100*time.Millisecond), nil)
	if n != 1 || st != Timeout {
		t.Fatalf("PutBatch = (%d, %v), want (1, Timeout)", n, st)
	}
	if v := <-got; v != 1 {
		t.Fatalf("consumer got %d, want the batch's first item 1", v)
	}
}
