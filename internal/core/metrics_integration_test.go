package core

import (
	"sync"
	"testing"
	"time"

	"synchq/internal/metrics"
)

func metricsHandleForTest() *metrics.Handle { return metrics.New() }

// assertBridgeCounters checks the counter story of a verified bridge run:
// transfers happened, the cancellation mix drove the abandon paths, and
// waiting actually blocked goroutines.
func assertBridgeCounters(t *testing.T, h *metrics.Handle) {
	t.Helper()
	s := h.Snapshot()
	if s.Get(metrics.Fulfillments) == 0 {
		t.Error("no fulfillments counted in a run that verified transfers")
	}
	if s.Get(metrics.Timeouts)+s.Get(metrics.Cancellations) == 0 {
		t.Error("no timeouts or cancellations counted in a mix full of both")
	}
	if s.Get(metrics.Parks) == 0 {
		t.Error("no parks counted in a blocking workload")
	}
	if s.Get(metrics.Unparks) > s.Get(metrics.Parks)+s.Get(metrics.Fulfillments) {
		t.Errorf("unparks (%d) exceed parks+fulfillments (%d+%d): permit deliveries unaccounted",
			s.Get(metrics.Unparks), s.Get(metrics.Parks), s.Get(metrics.Fulfillments))
	}
}

// TestMetricsQueueCleanSweepDeterministic pins the cleanMe counter to the
// paper's cleaning protocol with a deterministic interleaving: a waiter
// that times out while an *interior* node (a live waiter sits behind it)
// must be unlinked by its own clean() call, and the unlink must be
// counted.
func TestMetricsQueueCleanSweepDeterministic(t *testing.T) {
	h := metrics.New()
	q := NewDualQueue[int](WaitConfig{Metrics: h})

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	// g1: long-patience waiter at the front.
	go func() {
		defer wg.Done()
		<-release
		if _, st := q.TakeDeadline(time.Now().Add(2*time.Second), nil); st != OK {
			t.Errorf("front waiter: status %v, want OK", st)
		}
	}()
	close(release)
	waitFor(t, func() bool { return q.Len() == 1 })

	// g2: short-patience waiter behind it — this node will cancel.
	timedOut := make(chan struct{})
	go func() {
		_, st := q.TakeDeadline(time.Now().Add(3*time.Millisecond), nil)
		if st != Timeout {
			t.Errorf("middle waiter: status %v, want Timeout", st)
		}
		close(timedOut)
	}()
	waitFor(t, func() bool { return q.Len() == 2 })

	// g3: another long waiter so the canceled node is interior, not tail.
	go func() {
		defer wg.Done()
		<-release
		if _, st := q.TakeDeadline(time.Now().Add(2*time.Second), nil); st != OK {
			t.Errorf("back waiter: status %v, want OK", st)
		}
	}()
	waitFor(t, func() bool { return q.Len() == 3 })

	<-timedOut
	if got := h.Load(metrics.Timeouts); got == 0 {
		t.Error("timeout not counted")
	}
	// The canceled node was interior, so clean() must have unlinked it
	// immediately (possibly after absorbing at head) — a counted sweep.
	if got := h.Load(metrics.CleanSweeps); got == 0 {
		t.Errorf("clean-sweeps = %d after interior cancellation, want > 0", got)
	}

	q.Put(1)
	q.Put(2)
	wg.Wait()
	if got := h.Load(metrics.Fulfillments); got != 2 {
		t.Errorf("fulfillments = %d, want 2", got)
	}
	if got := q.Len(); got != 0 {
		t.Fatalf("Len = %d at end, want 0", got)
	}
}

// waitFor polls cond until true or a generous deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestMetricsStackCountersFire drives the dual stack through its
// fulfillment, timeout, and cancellation paths and checks the counters
// tell that story.
func TestMetricsStackCountersFire(t *testing.T) {
	h := metrics.New()
	q := NewDualStack[int](WaitConfig{Metrics: h})

	// Timeout path (pure poll: nothing waiting).
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll on empty stack succeeded")
	}
	if got := h.Load(metrics.Timeouts); got == 0 {
		t.Error("poll miss not counted as timeout")
	}

	// Cancellation path.
	cancel := make(chan struct{})
	close(cancel)
	if st := q.PutDeadline(1, time.Time{}, cancel); st != Canceled {
		t.Fatalf("PutDeadline with closed cancel: %v, want Canceled", st)
	}
	if got := h.Load(metrics.Cancellations); got == 0 {
		t.Error("cancellation not counted")
	}

	// Fulfillment (and park/unpark) path.
	done := make(chan int, 1)
	go func() { done <- q.Take() }()
	waitFor(t, func() bool { return q.Len() == 1 })
	q.Put(7)
	if got := <-done; got != 7 {
		t.Fatalf("Take = %d, want 7", got)
	}
	if got := h.Load(metrics.Fulfillments); got != 1 {
		t.Errorf("fulfillments = %d, want 1", got)
	}
}

// TestMetricsDisabledStructuresWork re-checks the basic rendezvous with a
// nil handle, guarding the disabled path of every hook (one branch, no
// recording, no panic).
func TestMetricsDisabledStructuresWork(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	if q.Metrics() != nil {
		t.Fatal("zero WaitConfig attached a metrics handle")
	}
	done := make(chan int, 1)
	go func() { done <- q.Take() }()
	q.Put(42)
	if got := <-done; got != 42 {
		t.Fatalf("Take = %d, want 42", got)
	}
	s := NewDualStack[int](WaitConfig{})
	if s.Metrics() != nil {
		t.Fatal("zero WaitConfig attached a metrics handle to the stack")
	}
	if _, ok := s.Poll(); ok {
		t.Fatal("Poll on empty stack succeeded")
	}
}
