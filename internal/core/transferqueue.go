package core

import (
	"time"

	"synchq/internal/metrics"
)

// TransferQueue is the paper's §5 extension of the fair synchronous queue:
// producers may enqueue either synchronously (Transfer: wait for a consumer
// to take the item) or asynchronously (Put: deposit the item and return at
// once), while consumers always wait for data. The base synchronous support
// mirrors the fair dual queue; the asynchronous additions differ only by
// releasing producers before items are taken. This is the ancestor of
// java.util.concurrent.LinkedTransferQueue.
//
// Use NewTransferQueue to create one; a TransferQueue must not be copied
// after first use.
type TransferQueue[T any] struct {
	q *DualQueue[T]
}

// NewTransferQueue returns an empty transfer queue with the given wait
// policy.
func NewTransferQueue[T any](cfg WaitConfig) *TransferQueue[T] {
	return &TransferQueue[T]{q: NewDualQueue[T](cfg)}
}

// Metrics returns the instrumentation handle shared with the underlying
// dual queue (nil when disabled).
func (t *TransferQueue[T]) Metrics() *metrics.Handle { return t.q.Metrics() }

// Put deposits v asynchronously: it hands v to a waiting consumer if one is
// present and otherwise buffers it as a data node, returning immediately in
// either case. It reports OK, or Closed when the queue has been shut down
// (the deposit is refused).
func (t *TransferQueue[T]) Put(v T) Status { return t.q.PutAsync(v) }

// Transfer hands v to a consumer synchronously, waiting as long as
// necessary for one to take it.
func (t *TransferQueue[T]) Transfer(v T) { t.q.Put(v) }

// TransferDeadline hands v to a consumer synchronously, giving up at the
// deadline (zero means never) or when cancel fires (nil means never).
func (t *TransferQueue[T]) TransferDeadline(v T, deadline time.Time, cancel <-chan struct{}) Status {
	return t.q.PutDeadline(v, deadline, cancel)
}

// TryTransfer hands v to a consumer only if one is already waiting.
func (t *TransferQueue[T]) TryTransfer(v T) bool { return t.q.Offer(v) }

// TransferTimeout hands v to a consumer, waiting up to d for one to take
// it.
func (t *TransferQueue[T]) TransferTimeout(v T, d time.Duration) bool {
	return t.q.OfferTimeout(v, d)
}

// Take receives a value, waiting as long as necessary for one.
func (t *TransferQueue[T]) Take() T { return t.q.Take() }

// TakeDeadline receives a value, giving up at the deadline (zero means
// never) or when cancel fires (nil means never).
func (t *TransferQueue[T]) TakeDeadline(deadline time.Time, cancel <-chan struct{}) (T, Status) {
	return t.q.TakeDeadline(deadline, cancel)
}

// Poll receives a value only if one is immediately available.
func (t *TransferQueue[T]) Poll() (T, bool) { return t.q.Poll() }

// PollTimeout receives a value, waiting up to d.
func (t *TransferQueue[T]) PollTimeout(d time.Duration) (T, bool) { return t.q.PollTimeout(d) }

// Close shuts the queue down gracefully: every waiter (synchronous
// producers in Transfer, consumers in Take) is woken and returns the
// Closed status, and subsequent operations observe Closed. Data already
// deposited asynchronously with Put is retained and remains available to
// Poll and Drain — an accepted deposit is a promise the close keeps.
// Close is idempotent and safe to call concurrently with any operation.
func (t *TransferQueue[T]) Close() { t.q.Close() }

// Closed reports whether Close has been called.
func (t *TransferQueue[T]) Closed() bool { return t.q.Closed() }

// Drain removes and returns every immediately available element —
// buffered asynchronous deposits and waiting synchronous producers — in
// FIFO order, without waiting for more. It is the bulk form of Poll,
// useful at shutdown to recover undelivered messages: after Close, Drain
// returns exactly the asynchronous deposits that no consumer took.
func (t *TransferQueue[T]) Drain() []T {
	var out []T
	for {
		v, ok := t.q.Poll()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// HasWaitingConsumer reports whether a consumer was observed waiting — the
// signal ThreadPoolExecutor-style users consult to decide whether to grow
// the worker pool.
func (t *TransferQueue[T]) HasWaitingConsumer() bool { return t.q.HasWaitingConsumer() }

// HasBufferedData reports whether asynchronously deposited items were
// observed waiting to be taken.
func (t *TransferQueue[T]) HasBufferedData() bool { return t.q.HasWaitingProducer() }
