package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countStackNodes counts every linked node, canceled or not.
func countStackNodes[T any](q *DualStack[T]) int {
	n := 0
	for cur := q.head.Load(); cur != nil; cur = cur.next.Load() {
		n++
	}
	return n
}

func TestDualStackPairsPutWithTake(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	done := make(chan int)
	go func() { done <- q.Take() }()
	q.Put(42)
	if got := <-done; got != 42 {
		t.Fatalf("Take = %d, want 42", got)
	}
}

func TestDualStackPutBlocksUntilConsumer(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	var delivered atomic.Bool
	go func() {
		q.Put(1)
		delivered.Store(true)
	}()
	waitLen[int](t, q, 1)
	if delivered.Load() {
		t.Fatal("Put returned before a consumer arrived")
	}
	if got := q.Take(); got != 1 {
		t.Fatalf("Take = %d, want 1", got)
	}
}

func TestDualStackOfferPollSemantics(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	if q.Offer(1) {
		t.Fatal("Offer succeeded with no waiting consumer")
	}
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll succeeded on empty stack")
	}
	done := make(chan int)
	go func() { done <- q.Take() }()
	waitLen[int](t, q, 1)
	if !q.Offer(9) {
		t.Fatal("Offer failed with a waiting consumer")
	}
	if got := <-done; got != 9 {
		t.Fatalf("Take = %d, want 9", got)
	}
	go q.Put(3)
	waitLen[int](t, q, 1)
	if v, ok := q.Poll(); !ok || v != 3 {
		t.Fatalf("Poll = (%d,%v), want (3,true)", v, ok)
	}
}

func TestDualStackTimeoutsExpire(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	t0 := time.Now()
	if q.OfferTimeout(1, 20*time.Millisecond) {
		t.Fatal("OfferTimeout succeeded with no consumer")
	}
	if elapsed := time.Since(t0); elapsed < 15*time.Millisecond {
		t.Fatalf("OfferTimeout returned after %v, before its patience elapsed", elapsed)
	}
	if _, ok := q.PollTimeout(20 * time.Millisecond); ok {
		t.Fatal("PollTimeout succeeded with no producer")
	}
}

func TestDualStackTimeoutsSucceedWithinPatience(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	go func() {
		waitLen[int](t, q, 1)
		if got := q.Take(); got != 5 {
			t.Errorf("Take = %d, want 5", got)
		}
	}()
	if !q.OfferTimeout(5, 5*time.Second) {
		t.Fatal("OfferTimeout expired despite a consumer arriving")
	}
	go func() {
		waitLen[int](t, q, 1)
		q.Put(11)
	}()
	if v, ok := q.PollTimeout(5 * time.Second); !ok || v != 11 {
		t.Fatalf("PollTimeout = (%d,%v), want (11,true)", v, ok)
	}
}

func TestDualStackCancel(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	cancel := make(chan struct{})
	done := make(chan Status)
	go func() { done <- q.PutDeadline(1, time.Time{}, cancel) }()
	waitLen[int](t, q, 1)
	close(cancel)
	if st := <-done; st != Canceled {
		t.Fatalf("PutDeadline = %v, want Canceled", st)
	}
	// Canceled node must not satisfy a later consumer.
	if _, ok := q.PollTimeout(10 * time.Millisecond); ok {
		t.Fatal("Poll received a value from a canceled producer")
	}
}

func TestDualStackLIFOAmongProducers(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		v := i
		go func() {
			defer wg.Done()
			q.Put(v)
		}()
		waitLen[int](t, q, i+1)
	}
	// Most recently arrived producer pairs first.
	for i := n - 1; i >= 0; i-- {
		if got := q.Take(); got != i {
			t.Fatalf("Take = %d, want %d (LIFO violated)", got, i)
		}
	}
	wg.Wait()
}

func TestDualStackLIFOAmongConsumers(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	const n = 8
	results := make([]chan int, n)
	for i := 0; i < n; i++ {
		results[i] = make(chan int, 1)
		ch := results[i]
		go func() { ch <- q.Take() }()
		waitLen[int](t, q, i+1)
	}
	// Consumer n-1 arrived last, so it receives the first value.
	for i := 0; i < n; i++ {
		q.Put(100 + i)
	}
	for i := 0; i < n; i++ {
		want := 100 + (n - 1 - i)
		if got := <-results[i]; got != want {
			t.Fatalf("consumer %d received %d, want %d (LIFO violated)", i, got, want)
		}
	}
}

func TestDualStackInteriorCancellationIsCleaned(t *testing.T) {
	// Build a stack of three waiting producers, cancel the middle one,
	// and check both that consumers skip it and that the structure does
	// not accumulate the canceled node.
	q := NewDualStack[int](WaitConfig{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); q.Put(1) }()
	waitLen[int](t, q, 1)
	cancelDone := make(chan Status, 1)
	cancel := make(chan struct{})
	go func() { cancelDone <- q.PutDeadline(2, time.Time{}, cancel) }()
	waitLen[int](t, q, 2)
	go func() { defer wg.Done(); q.Put(3) }()
	waitLen[int](t, q, 3)

	close(cancel)
	if st := <-cancelDone; st != Canceled {
		t.Fatalf("middle producer: status %v, want Canceled", st)
	}
	// LIFO: 3 then 1; the canceled 2 must be skipped.
	if got := q.Take(); got != 3 {
		t.Fatalf("Take = %d, want 3", got)
	}
	if got := q.Take(); got != 1 {
		t.Fatalf("Take = %d, want 1", got)
	}
	wg.Wait()
	if n := countStackNodes(q); n != 0 {
		t.Fatalf("%d nodes linger after all producers finished", n)
	}
}

func TestDualStackTimeoutStormLeavesNoGarbage(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	for i := 0; i < 500; i++ {
		q.OfferTimeout(i, 10*time.Microsecond)
	}
	if n := countStackNodes(q); n > 2 {
		t.Fatalf("%d nodes linger after timeout storm; cleaning failed", n)
	}
	done := make(chan int)
	go func() { done <- q.Take() }()
	waitLen[int](t, q, 1)
	q.Put(1234)
	if got := <-done; got != 1234 {
		t.Fatalf("Take = %d after storm, want 1234", got)
	}
}

func TestDualStackCancellationDoesNotLoseValues(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	for i := 0; i < 200; i++ {
		got := make(chan int, 1)
		go func() {
			if v, ok := q.PollTimeout(time.Millisecond); ok {
				got <- v
			} else {
				got <- -1
			}
		}()
		sent := q.OfferTimeout(i, time.Millisecond)
		v := <-got
		if sent && v == -1 {
			t.Fatalf("iteration %d: producer succeeded but consumer got nothing", i)
		}
		if !sent && v != -1 {
			t.Fatalf("iteration %d: consumer got %d but producer timed out", i, v)
		}
	}
}

func TestDualStackConservationUnderLoad(t *testing.T) {
	q := NewDualStack[int64](WaitConfig{})
	const producers, consumers = 8, 8
	const perProducer = 500
	var mu sync.Mutex
	seen := make(map[int64]bool, producers*perProducer)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				q.Put(id<<32 | i)
			}
		}(int64(p))
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < producers*perProducer/consumers; i++ {
				v := q.Take()
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d delivered twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d distinct values, want %d", len(seen), producers*perProducer)
	}
	if !q.IsEmpty() {
		t.Fatal("stack not empty after balanced run")
	}
}

func TestDualStackObservers(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	if q.HasWaitingProducer() || q.HasWaitingConsumer() || !q.IsEmpty() {
		t.Fatal("fresh stack misreports state")
	}
	go q.Put(1)
	waitLen[int](t, q, 1)
	if !q.HasWaitingProducer() || q.HasWaitingConsumer() {
		t.Fatal("waiting producer not observed")
	}
	if got := q.Take(); got != 1 {
		t.Fatalf("Take = %d", got)
	}
	done := make(chan int)
	go func() { done <- q.Take() }()
	waitLen[int](t, q, 1)
	if !q.HasWaitingConsumer() || q.HasWaitingProducer() {
		t.Fatal("waiting consumer not observed")
	}
	q.Put(2)
	<-done
}

func TestDualStackSpinConfigVariants(t *testing.T) {
	// The queue must behave identically under every wait policy; this
	// exercises the spin paths (Always) and the park-only path (Never).
	for _, cfg := range []WaitConfig{
		{},                                  // platform default
		{TimedSpins: -1, UntimedSpins: -1},  // park immediately
		{TimedSpins: 64, UntimedSpins: 512}, // force spinning
	} {
		q := NewDualStack[int](cfg)
		done := make(chan int)
		go func() { done <- q.Take() }()
		q.Put(5)
		if got := <-done; got != 5 {
			t.Fatalf("cfg %+v: Take = %d, want 5", cfg, got)
		}
	}
}
