package core

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"synchq/internal/verify"
)

// This file is the stress-to-verify bridge: it drives the real structures
// with an N×M producer/consumer mix of timed and asynchronously-canceled
// operations while recording a full operation history, then hands the
// history to verify.Check. Before this bridge, verify was exercised only
// on hand-written histories; here it validates conservation (no value
// lost, duplicated, or invented) and synchrony (every transfer's put and
// take intervals overlap) of actual concurrent executions — the hunting
// ground where untested cancellation paths hide bugs.

// bridgeOps is the operation surface the bridge drives, expressed as
// funcs so one harness covers DualQueue, DualStack, and TransferQueue's
// synchronous face.
type bridgeOps struct {
	offerTimeout func(v int64, d time.Duration) bool
	putCancel    func(v int64, cancel <-chan struct{}) Status
	pollTimeout  func(d time.Duration) (int64, bool)
	takeCancel   func(cancel <-chan struct{}) (int64, Status)
}

// runHistoryBridge stresses ops with producers×consumers goroutines mixing
// timed offers, canceled puts, timed polls, and canceled takes, then
// checks the recorded history.
func runHistoryBridge(t *testing.T, ops bridgeOps, producers, consumers, perProducer int) {
	t.Helper()
	rec := verify.NewRecorder()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id), 11))
			log := rec.NewThread()
			for seq := int64(0); seq < int64(perProducer); seq++ {
				v := id<<40 | seq
				inv := log.Begin()
				var ok bool
				if rng.IntN(5) < 3 {
					patience := time.Duration(rng.IntN(800)) * time.Microsecond
					ok = ops.offerTimeout(v, patience)
				} else {
					cancel := make(chan struct{})
					timer := time.AfterFunc(time.Duration(rng.IntN(500))*time.Microsecond, func() {
						close(cancel)
					})
					ok = ops.putCancel(v, cancel) == OK
					timer.Stop()
				}
				log.End(verify.Put, v, inv, ok)
			}
		}(int64(p))
	}

	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func(id int64) {
			defer cg.Done()
			rng := rand.New(rand.NewPCG(uint64(id)+1000, 13))
			log := rec.NewThread()
			for {
				select {
				case <-stop:
					return
				default:
				}
				inv := log.Begin()
				var v int64
				var ok bool
				if rng.IntN(5) < 4 {
					patience := time.Duration(rng.IntN(800)) * time.Microsecond
					v, ok = ops.pollTimeout(patience)
				} else {
					cancel := make(chan struct{})
					timer := time.AfterFunc(time.Duration(rng.IntN(500))*time.Microsecond, func() {
						close(cancel)
					})
					var st Status
					v, st = ops.takeCancel(cancel)
					ok = st == OK
					timer.Stop()
				}
				log.End(verify.Take, v, inv, ok)
			}
		}(int64(c))
	}

	wg.Wait()
	close(stop)
	cg.Wait()

	// A synchronous queue cannot buffer, but drain anyway: if an
	// implementation bug made a value stick, the drain converts it into
	// a conservation error instead of a silent leak.
	drainLog := rec.NewThread()
	for {
		inv := drainLog.Begin()
		v, ok := ops.pollTimeout(10 * time.Millisecond)
		drainLog.End(verify.Take, v, inv, ok)
		if !ok {
			break
		}
	}

	res := verify.Check(rec.History(), true)
	for _, e := range res.Errors {
		t.Errorf("history violation: %s", e)
	}
	if res.Transfers == 0 {
		t.Fatal("bridge run completed zero transfers; the mix exercised nothing")
	}
}

func bridgeSizes(t *testing.T) (producers, consumers, perProducer int) {
	if testing.Short() {
		return 3, 3, 120
	}
	return 4, 4, 400
}

func TestHistoryBridgeDualQueue(t *testing.T) {
	p, c, n := bridgeSizes(t)
	q := NewDualQueue[int64](WaitConfig{})
	runHistoryBridge(t, bridgeOps{
		offerTimeout: q.OfferTimeout,
		putCancel:    func(v int64, cancel <-chan struct{}) Status { return q.PutDeadline(v, time.Time{}, cancel) },
		pollTimeout:  q.PollTimeout,
		takeCancel:   func(cancel <-chan struct{}) (int64, Status) { return q.TakeDeadline(time.Time{}, cancel) },
	}, p, c, n)
	if got := q.Len(); got != 0 {
		t.Fatalf("queue Len = %d after bridge run, want 0", got)
	}
}

func TestHistoryBridgeDualStack(t *testing.T) {
	p, c, n := bridgeSizes(t)
	q := NewDualStack[int64](WaitConfig{})
	runHistoryBridge(t, bridgeOps{
		offerTimeout: q.OfferTimeout,
		putCancel:    func(v int64, cancel <-chan struct{}) Status { return q.PutDeadline(v, time.Time{}, cancel) },
		pollTimeout:  q.PollTimeout,
		takeCancel:   func(cancel <-chan struct{}) (int64, Status) { return q.TakeDeadline(time.Time{}, cancel) },
	}, p, c, n)
	if got := q.Len(); got != 0 {
		t.Fatalf("stack Len = %d after bridge run, want 0", got)
	}
}

func TestHistoryBridgeTransferQueue(t *testing.T) {
	p, c, n := bridgeSizes(t)
	q := NewTransferQueue[int64](WaitConfig{})
	// The synchronous face only: asynchronous Puts deliberately violate
	// synchrony (the producer returns before the take), so the async/sync
	// interplay is covered by the cancellation-interleaving tests instead.
	runHistoryBridge(t, bridgeOps{
		offerTimeout: q.TransferTimeout,
		putCancel: func(v int64, cancel <-chan struct{}) Status {
			return q.TransferDeadline(v, time.Time{}, cancel)
		},
		pollTimeout: q.PollTimeout,
		takeCancel:  func(cancel <-chan struct{}) (int64, Status) { return q.TakeDeadline(time.Time{}, cancel) },
	}, p, c, n)
	if q.HasBufferedData() {
		t.Fatal("transfer queue still holds buffered data after bridge run")
	}
}

// TestHistoryBridgeMetered reruns the queue bridge with instrumentation
// attached, pinning down that a verified-correct concurrent run records a
// coherent counter story: every fulfillment pairs a put with a take, and
// the cancellation mix actually drove the cancel paths the bridge exists
// to cover.
func TestHistoryBridgeMetered(t *testing.T) {
	p, c, n := bridgeSizes(t)
	h := metricsHandleForTest()
	q := NewDualQueue[int64](WaitConfig{Metrics: h})
	runHistoryBridge(t, bridgeOps{
		offerTimeout: q.OfferTimeout,
		putCancel:    func(v int64, cancel <-chan struct{}) Status { return q.PutDeadline(v, time.Time{}, cancel) },
		pollTimeout:  q.PollTimeout,
		takeCancel:   func(cancel <-chan struct{}) (int64, Status) { return q.TakeDeadline(time.Time{}, cancel) },
	}, p, c, n)
	assertBridgeCounters(t, h)
}
