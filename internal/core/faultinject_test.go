package core

import (
	"slices"
	"testing"
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
)

// This file drives the structures under deterministic fault injection:
// forced CAS failures on the zero-patience fast paths (the operations with
// no retry budget to spare), a scripted preemption that freezes a
// fulfilling node on top of the stack to exercise the helping protocol of
// Listing 6 lines 26–31, and an end-to-end replay check that the same
// seed produces the same injected-event stream through real operations.

// oneShot builds an injector that forces exactly one CAS failure at the
// given site and nothing else.
func oneShot(site fault.Site) *fault.Injector {
	return fault.New(fault.Config{
		Seed:        1,
		FailCASRate: 1,
		Budget:      1,
		Sites:       []fault.Site{site},
	})
}

// TestOfferSurvivesInjectedFulfillCASFailure: a zero-patience Offer with a
// consumer already waiting must absorb a lost fulfillment CAS (forced at
// the queue's item CAS / the stack's fulfilling push) by retrying from a
// fresh snapshot, not by reporting a miss.
func TestOfferSurvivesInjectedFulfillCASFailure(t *testing.T) {
	type mk struct {
		name string
		site fault.Site
		ctr  metrics.ID
		new  func(h *metrics.Handle, f *fault.Injector) interface {
			Offer(int) bool
			TakeDeadline(time.Time, <-chan struct{}) (int, Status)
			HasWaitingConsumer() bool
		}
	}
	for _, tc := range []mk{
		{"queue", fault.QFulfillCAS, metrics.CASFailFulfill,
			func(h *metrics.Handle, f *fault.Injector) interface {
				Offer(int) bool
				TakeDeadline(time.Time, <-chan struct{}) (int, Status)
				HasWaitingConsumer() bool
			} {
				return NewDualQueue[int](WaitConfig{Metrics: h, Fault: f})
			}},
		{"stack", fault.SFulfillCAS, metrics.CASFailFulfill,
			func(h *metrics.Handle, f *fault.Injector) interface {
				Offer(int) bool
				TakeDeadline(time.Time, <-chan struct{}) (int, Status)
				HasWaitingConsumer() bool
			} {
				return NewDualStack[int](WaitConfig{Metrics: h, Fault: f})
			}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := oneShot(tc.site)
			h := metrics.New()
			q := tc.new(h, inj)
			got := make(chan int, 1)
			go func() {
				v, st := q.TakeDeadline(time.Now().Add(5*time.Second), nil)
				if st != OK {
					v = -1
				}
				got <- v
			}()
			waitFor(t, q.HasWaitingConsumer)
			if !q.Offer(42) {
				t.Fatal("Offer missed a waiting consumer after injected CAS failure")
			}
			if v := <-got; v != 42 {
				t.Fatalf("consumer received %d, want 42", v)
			}
			if n := inj.Count(tc.site); n != 1 {
				t.Errorf("injected %d failures at %v, want 1", n, tc.site)
			}
			if n := h.Snapshot().Get(tc.ctr); n < 1 {
				t.Errorf("%v counter = %d, want >= 1 (injection invisible to metrics)", tc.ctr, n)
			}
		})
	}
}

// TestPollSurvivesInjectedFulfillCASFailure is the mirror image: a
// zero-patience Poll with a producer already waiting.
func TestPollSurvivesInjectedFulfillCASFailure(t *testing.T) {
	t.Run("queue", func(t *testing.T) {
		inj := oneShot(fault.QFulfillCAS)
		q := NewDualQueue[int](WaitConfig{Fault: inj})
		done := make(chan Status, 1)
		go func() { done <- q.PutDeadline(7, time.Now().Add(5*time.Second), nil) }()
		waitFor(t, q.HasWaitingProducer)
		v, ok := q.Poll()
		if !ok || v != 7 {
			t.Fatalf("Poll = (%d,%v), want (7,true)", v, ok)
		}
		if st := <-done; st != OK {
			t.Fatalf("producer status %v, want OK", st)
		}
		if n := inj.Count(fault.QFulfillCAS); n != 1 {
			t.Errorf("injected %d failures, want 1", n)
		}
	})
	t.Run("stack", func(t *testing.T) {
		inj := oneShot(fault.SFulfillCAS)
		q := NewDualStack[int](WaitConfig{Fault: inj})
		done := make(chan Status, 1)
		go func() { done <- q.PutDeadline(7, time.Now().Add(5*time.Second), nil) }()
		waitFor(t, q.HasWaitingProducer)
		v, ok := q.Poll()
		if !ok || v != 7 {
			t.Fatalf("Poll = (%d,%v), want (7,true)", v, ok)
		}
		if st := <-done; st != OK {
			t.Fatalf("producer status %v, want OK", st)
		}
		if n := inj.Count(fault.SFulfillCAS); n != 1 {
			t.Errorf("injected %d failures, want 1", n)
		}
	})
}

// TestEnqueueSurvivesInjectedCASFailure forces the waiter-insertion CAS
// (queue tail link / stack head push) to fail once; the timed offer must
// retry, link, and still hand off to a later Poll.
func TestEnqueueSurvivesInjectedCASFailure(t *testing.T) {
	for _, tc := range []struct {
		name string
		site fault.Site
	}{
		{"queue", fault.QEnqueueCAS},
		{"stack", fault.SPushCAS},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := oneShot(tc.site)
			var q interface {
				OfferTimeout(int, time.Duration) bool
				PollTimeout(time.Duration) (int, bool)
				HasWaitingProducer() bool
			}
			if tc.name == "queue" {
				q = NewDualQueue[int](WaitConfig{Fault: inj})
			} else {
				q = NewDualStack[int](WaitConfig{Fault: inj})
			}
			done := make(chan bool, 1)
			go func() { done <- q.OfferTimeout(9, 5*time.Second) }()
			waitFor(t, q.HasWaitingProducer)
			if v, ok := q.PollTimeout(5 * time.Second); !ok || v != 9 {
				t.Fatalf("PollTimeout = (%d,%v), want (9,true)", v, ok)
			}
			if !<-done {
				t.Fatal("offer failed after injected insert-CAS failure")
			}
			if n := inj.Count(tc.site); n != 1 {
				t.Errorf("injected %d failures at %v, want 1", n, tc.site)
			}
		})
	}
}

// TestStackHelpingPathDeterministic freezes a fulfilling node on top of
// the stack — a consumer stalled between its fulfilling push and its match
// CAS, via a scripted preemption gate at SFulfillPause — and checks that a
// third thread's zero-patience Offer takes the helping path (Listing 6
// lines 26–31): it completes the stranger's match, counts a help
// collision, and then correctly reports its own miss on the now-empty
// stack.
func TestStackHelpingPathDeterministic(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	inj := fault.New(fault.Config{
		Seed:        1,
		PreemptRate: 1,
		Budget:      1,
		Sites:       []fault.Site{fault.SFulfillPause},
		PreemptFunc: func(fault.Site) {
			entered <- struct{}{}
			<-gate
		},
	})
	h := metrics.New()
	q := NewDualStack[int](WaitConfig{Metrics: h, Fault: inj})

	aDone := make(chan Status, 1)
	go func() { aDone <- q.PutDeadline(1, time.Now().Add(5*time.Second), nil) }() // A: waiting producer
	waitFor(t, q.HasWaitingProducer)

	bDone := make(chan int, 1)
	go func() { // B: consumer; will stall with its fulfilling node on top
		v, st := q.TakeDeadline(time.Now().Add(5*time.Second), nil)
		if st != OK {
			v = -1
		}
		bDone <- v
	}()
	<-entered // B has won its fulfilling push and is frozen pre-match

	before := h.Snapshot().Get(metrics.HelpCollisions)
	ok := q.Offer(2) // must help B's match to completion, then miss
	if got := h.Snapshot().Get(metrics.HelpCollisions); got <= before {
		t.Errorf("help-collisions = %d after Offer, want > %d", got, before)
	}
	if ok {
		t.Error("Offer succeeded with no waiting consumer; helping should not transfer the helper's own value")
	}

	close(gate)
	if v := <-bDone; v != 1 {
		t.Fatalf("stalled consumer received %d, want 1 (helped match lost)", v)
	}
	if st := <-aDone; st != OK {
		t.Fatalf("producer status %v, want OK", st)
	}
}

// scriptedEvents runs a fixed single-goroutine operation script against a
// fresh structure with a fresh recording injector and returns the
// injected-event stream. With one goroutine the PRNG draw order is fully
// determined by the script, so two runs with the same seed must produce
// identical streams — the replay property that makes failing chaos
// schedules reproducible from just the seed.
func scriptedEvents(t *testing.T, seed uint64, stack bool) []fault.Site {
	t.Helper()
	inj := fault.New(fault.Config{
		Seed:        seed,
		FailCASRate: 0.7,
		PreemptRate: 0.5,
		Record:      true,
		PreemptFunc: func(fault.Site) {}, // scripted: no real sleeps
	})
	run := func(ops interface {
		PutReserve(v int) (ok bool, abort func() bool)
		TakeReserve() (int, bool)
	}) {
		for i := 0; i < 40; i++ {
			immediate, abort := ops.PutReserve(i)
			if immediate {
				t.Fatalf("op %d: immediate fulfillment on an empty structure", i)
			}
			if i%5 == 4 {
				if !abort() {
					t.Fatalf("op %d: abort of an unmatched reservation failed", i)
				}
				continue
			}
			if v, ok := ops.TakeReserve(); !ok || v != i {
				t.Fatalf("op %d: TakeReserve = (%d,%v), want (%d,true)", i, v, ok, i)
			}
		}
	}
	if stack {
		q := NewDualStack[int](WaitConfig{Fault: inj})
		run(stackScript{q})
	} else {
		q := NewDualQueue[int](WaitConfig{Fault: inj})
		run(queueScript{q})
	}
	ev := inj.Events()
	if len(ev) == 0 {
		t.Fatal("script triggered no injected events; replay test proved nothing")
	}
	return ev
}

// queueScript / stackScript adapt the reservation API to the script's
// tiny surface (PutReserve returning an abort thunk).
type queueScript struct{ q *DualQueue[int] }

func (s queueScript) PutReserve(v int) (bool, func() bool) {
	tk, ok := s.q.PutReserve(v)
	if ok {
		return true, nil
	}
	return false, tk.Abort
}
func (s queueScript) TakeReserve() (int, bool) {
	v, tk, ok := s.q.TakeReserve()
	if tk != nil {
		tk.Abort()
	}
	return v, ok
}

type stackScript struct{ q *DualStack[int] }

func (s stackScript) PutReserve(v int) (bool, func() bool) {
	tk, ok := s.q.PutReserve(v)
	if ok {
		return true, nil
	}
	return false, tk.Abort
}
func (s stackScript) TakeReserve() (int, bool) {
	v, tk, ok := s.q.TakeReserve()
	if tk != nil {
		tk.Abort()
	}
	return v, ok
}

// TestChaosReplayDeterminism is the acceptance check for replayability:
// the same seed yields the identical injected-event sequence through real
// structure operations, and a different seed yields a different one.
func TestChaosReplayDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name  string
		stack bool
	}{{"queue", false}, {"stack", true}} {
		t.Run(tc.name, func(t *testing.T) {
			a := scriptedEvents(t, 42, tc.stack)
			b := scriptedEvents(t, 42, tc.stack)
			if !slices.Equal(a, b) {
				t.Fatalf("same seed diverged:\n run1 (%d events) %v\n run2 (%d events) %v",
					len(a), a[:min(len(a), 20)], len(b), b[:min(len(b), 20)])
			}
			c := scriptedEvents(t, 43, tc.stack)
			if slices.Equal(a, c) {
				t.Error("different seeds produced identical event streams (suspicious)")
			}
		})
	}
}
