// Package core implements the paper's primary contribution: two
// nonblocking, contention-free synchronous queues built as dual data
// structures.
//
//   - DualQueue is the fair (FIFO) algorithm of §3.3 "The synchronous dual
//     queue": a Michael&Scott-style linked list that holds either data
//     nodes or reservation nodes, never both, with producers now waiting in
//     the structure just as consumers do.
//   - DualStack is the unfair (LIFO) algorithm of §3.3 "The synchronous dual
//     stack": a Treiber-style stack in which a fulfilling node is pushed on
//     top of a complementary node and the adjacent pair "annihilates".
//
// Both support the full rich interface the paper calls for: demand
// operations (block until paired), poll/offer (succeed only if a
// counterpart is already waiting), timed operations with a patience
// interval, and asynchronous cancellation (the Go analogue of thread
// interruption), plus the pragmatics the paper describes — spin-then-park
// waiting, reference forgetting for the garbage collector, and cleaning of
// canceled nodes (lazy cleanMe unlinking in the queue, traversal unlinking
// in the stack).
//
// The implementations are ports of the algorithms as adopted into Java 6
// (java.util.concurrent.SynchronousQueue), adapted to Go: goroutines park
// on a channel-based permit (internal/park) instead of LockSupport, and
// since Go generics preclude the JDK's "item == this" self-sentinels, each
// structure carries typed sentinel pointers with identical roles.
package core

import (
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/spin"
)

// Status is the outcome of a transfer attempt.
type Status int

const (
	// OK means the operation paired up and transferred a value.
	OK Status = iota
	// Timeout means the patience interval expired (for zero patience:
	// no counterpart was waiting).
	Timeout
	// Canceled means the operation was abandoned because its cancel
	// channel fired.
	Canceled
	// Closed means the structure was shut down with Close: either the
	// operation arrived after the close, or the caller was waiting in
	// the structure when the close happened.
	Closed
)

// String returns a human-readable form of s.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Timeout:
		return "timeout"
	case Canceled:
		return "canceled"
	case Closed:
		return "closed"
	default:
		return "invalid"
	}
}

// errClosedDemand is the panic value for demand operations (Put, Take, the
// reservation request operations) invoked on a closed structure, which
// have no status channel to report Closed through — the analogue of Go's
// "send on closed channel" panic. Status-returning operations report
// Closed instead of panicking. The text deliberately matches the public
// package's ErrClosed message so every closed-queue panic reads the same.
const errClosedDemand = "synchq: queue closed"

// WaitConfig tunes the waiting policy of a synchronous queue. The zero
// value selects the paper's defaults: spin briefly before parking on
// multiprocessors, park immediately on uniprocessors.
type WaitConfig struct {
	// TimedSpins is the spin budget before parking for operations with a
	// deadline. Negative disables spinning; zero selects the platform
	// default.
	TimedSpins int
	// UntimedSpins is the spin budget for unbounded waits. Negative
	// disables spinning; zero selects the platform default.
	UntimedSpins int
	// Metrics, if non-nil, receives the queue's event counters (CAS
	// failures per loop site, spins, parks, unparks, fulfillments,
	// timeouts, cancellations, cleaning sweeps). Nil disables
	// instrumentation at the cost of one branch per hook.
	Metrics *metrics.Handle
	// Fault, if non-nil, injects deterministic faults (forced CAS
	// failures, preemption at linearization-critical points, spurious
	// unparks, timer skew) at the same sites the metrics counters name.
	// Nil disables injection at the cost of one branch per hook.
	Fault *fault.Injector
}

// calibrator returns the adaptive spin calibrator for the zero-value spin
// policy, or nil when either budget was set explicitly (an explicit budget
// — including the "disable spinning" negatives — pins the static policy).
// With a calibrator attached the structure's wait loops consult it instead
// of the resolved static budgets, and feed every fulfilled wait back into
// it.
func (c WaitConfig) calibrator() *spin.Calibrator {
	if c.TimedSpins != 0 || c.UntimedSpins != 0 {
		return nil
	}
	return spin.NewCalibrator()
}

// resolve returns the effective spin budgets.
func (c WaitConfig) resolve() (timed, untimed int) {
	timed, untimed = c.TimedSpins, c.UntimedSpins
	if timed == 0 {
		timed = spin.TimedSpins()
	} else if timed < 0 {
		timed = 0
	}
	if untimed == 0 {
		untimed = spin.UntimedSpins()
	} else if untimed < 0 {
		untimed = 0
	}
	return timed, untimed
}

// SpinPolicy resolves the config into the effective static spin budgets
// and, for the zero-value policy, the adaptive calibrator — the same
// resolution NewDualQueue and NewDualStack apply internally, exported so
// hand-off cores outside this package (internal/segq) share one waiting
// policy. cal is nil whenever either budget was set explicitly.
func (c WaitConfig) SpinPolicy() (timed, untimed int, cal *spin.Calibrator) {
	timed, untimed = c.resolve()
	return timed, untimed, c.calibrator()
}

// DeadlineFor converts a patience duration into an absolute deadline with
// the poll/offer convention shared by every core: zero patience yields an
// already-expired deadline (pure poll/offer), negative patience is treated
// as zero.
func DeadlineFor(d time.Duration) time.Time { return deadlineFor(d) }

// deadlineFor converts a patience duration into an absolute deadline; zero
// patience yields an already-expired deadline (pure poll/offer), negative
// patience is treated as zero.
func deadlineFor(d time.Duration) time.Time {
	if d <= 0 {
		// Any non-zero time in the past: expired immediately.
		return time.Unix(0, 1)
	}
	return time.Now().Add(d)
}
