package core

import (
	"sync"
	"testing"
	"time"
)

func TestTransferQueuePutIsAsync(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			q.Put(i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("asynchronous Put blocked")
	}
	if !q.HasBufferedData() {
		t.Fatal("buffered data not observed")
	}
	for i := 0; i < 10; i++ {
		if v := q.Take(); v != i {
			t.Fatalf("Take = %d, want %d (FIFO violated)", v, i)
		}
	}
}

func TestTransferQueueTransferIsSync(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	delivered := make(chan struct{})
	go func() {
		q.Transfer(42)
		close(delivered)
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-delivered:
		t.Fatal("Transfer returned before a consumer took the element")
	default:
	}
	if v := q.Take(); v != 42 {
		t.Fatalf("Take = %d, want 42", v)
	}
	select {
	case <-delivered:
	case <-time.After(5 * time.Second):
		t.Fatal("Transfer never returned after Take")
	}
}

func TestTransferQueueTryTransfer(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	if q.TryTransfer(1) {
		t.Fatal("TryTransfer succeeded with no waiting consumer")
	}
	done := make(chan int)
	go func() { done <- q.Take() }()
	// Wait for the consumer to be registered.
	deadline := time.Now().Add(5 * time.Second)
	for !q.HasWaitingConsumer() {
		if time.Now().After(deadline) {
			t.Fatal("consumer never registered")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if !q.TryTransfer(2) {
		t.Fatal("TryTransfer failed with a waiting consumer")
	}
	if got := <-done; got != 2 {
		t.Fatalf("Take = %d, want 2", got)
	}
}

func TestTransferQueueTransferTimeout(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	if q.TransferTimeout(1, 20*time.Millisecond) {
		t.Fatal("TransferTimeout succeeded with no consumer")
	}
	// The timed-out element must not be visible to a later Poll.
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll returned an element from a timed-out Transfer")
	}
}

func TestTransferQueueMixedSyncAsyncFIFO(t *testing.T) {
	// Async elements and waiting sync producers share one FIFO order.
	q := NewTransferQueue[int](WaitConfig{})
	q.Put(1)
	q.Put(2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		q.Transfer(3)
	}()
	// Wait until the sync producer is queued behind the async data.
	deadline := time.Now().Add(5 * time.Second)
	for q.q.Len() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sync producer never queued (Len=%d)", q.q.Len())
		}
		time.Sleep(100 * time.Microsecond)
	}
	for want := 1; want <= 3; want++ {
		if v := q.Take(); v != want {
			t.Fatalf("Take = %d, want %d", v, want)
		}
	}
	wg.Wait()
}

func TestTransferQueuePollTimeout(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	if _, ok := q.PollTimeout(10 * time.Millisecond); ok {
		t.Fatal("PollTimeout succeeded on empty queue")
	}
	q.Put(7)
	if v, ok := q.PollTimeout(time.Second); !ok || v != 7 {
		t.Fatalf("PollTimeout = (%d,%v), want (7,true)", v, ok)
	}
}

func TestTransferQueueTakeDeadlineCancel(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	cancel := make(chan struct{})
	done := make(chan Status)
	go func() {
		_, st := q.TakeDeadline(time.Time{}, cancel)
		done <- st
	}()
	time.Sleep(5 * time.Millisecond)
	close(cancel)
	if st := <-done; st != Canceled {
		t.Fatalf("TakeDeadline status = %v, want Canceled", st)
	}
}

func TestTransferQueueConcurrentMixedLoad(t *testing.T) {
	q := NewTransferQueue[int64](WaitConfig{})
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				if i%2 == 0 {
					q.Put(id<<32 | i) // async
				} else {
					q.Transfer(id<<32 | i) // sync
				}
			}
		}(int64(p))
	}
	seen := make(map[int64]bool)
	var mu sync.Mutex
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for i := 0; i < producers*perProducer/4; i++ {
				v := q.Take()
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d delivered twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d values, want %d", len(seen), producers*perProducer)
	}
}

func TestTransferQueueDrain(t *testing.T) {
	q := NewTransferQueue[int](WaitConfig{})
	if got := q.Drain(); len(got) != 0 {
		t.Fatalf("Drain of empty queue = %v", got)
	}
	q.Put(1)
	q.Put(2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		q.Transfer(3) // waiting synchronous producer joins the FIFO
	}()
	deadline := time.Now().Add(5 * time.Second)
	for q.q.Len() != 3 {
		if time.Now().After(deadline) {
			t.Fatal("sync producer never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	got := q.Drain()
	wg.Wait()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Drain = %v, want [1 2 3]", got)
	}
	if !q.q.IsEmpty() {
		t.Fatal("queue not empty after Drain")
	}
}
