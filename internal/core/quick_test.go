package core

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickConservationRandomShapes drives randomized producer/consumer
// counts and transfer totals through both algorithms and checks value
// conservation — the property-based version of the fixed-shape
// conservation tests.
func TestQuickConservationRandomShapes(t *testing.T) {
	run := func(fair bool, producers, consumers uint8, nSeed uint16) bool {
		p := int(producers%5) + 1
		c := int(consumers%5) + 1
		n := int64(nSeed%400) + 50

		var put func(int64)
		var take func() int64
		if fair {
			q := NewDualQueue[int64](WaitConfig{})
			put, take = q.Put, q.Take
		} else {
			q := NewDualStack[int64](WaitConfig{})
			put, take = q.Put, q.Take
		}

		quota := func(total int64, k, i int) int64 {
			q := total / int64(k)
			if int64(i) < total%int64(k) {
				q++
			}
			return q
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var sumOut int64
		var sumIn int64
		next := int64(0)
		for i := 0; i < p; i++ {
			wg.Add(1)
			cnt := quota(n, p, i)
			go func(cnt int64) {
				defer wg.Done()
				for j := int64(0); j < cnt; j++ {
					mu.Lock()
					v := next
					next++
					sumIn += v
					mu.Unlock()
					put(v)
				}
			}(cnt)
		}
		for i := 0; i < c; i++ {
			wg.Add(1)
			cnt := quota(n, c, i)
			go func(cnt int64) {
				defer wg.Done()
				var local int64
				for j := int64(0); j < cnt; j++ {
					local += take()
				}
				mu.Lock()
				sumOut += local
				mu.Unlock()
			}(cnt)
		}
		wg.Wait()
		return sumIn == sumOut
	}
	f := func(fair bool, producers, consumers uint8, nSeed uint16) bool {
		return run(fair, producers, consumers, nSeed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAsyncQueueMatchesFIFOModel checks that the dual queue in
// asynchronous mode (PutAsync + Poll from one goroutine) behaves exactly
// like a sequential FIFO queue — the degenerate case in which the dual
// queue must coincide with its M&S ancestor.
func TestQuickAsyncQueueMatchesFIFOModel(t *testing.T) {
	f := func(ops []int16) bool {
		q := NewDualQueue[int16](WaitConfig{})
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				q.PutAsync(op)
				model = append(model, op)
			} else {
				v, ok := q.Poll()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPolarOpsNeverBlockOrInvent: any sequence of Offer/Poll from a
// single goroutine on the synchronous structures must fail every time
// (there is never a waiting counterpart) and leave the structure empty.
func TestQuickPolarOpsNeverBlockOrInvent(t *testing.T) {
	f := func(ops []bool, fair bool) bool {
		var offer func(int) bool
		var poll func() (int, bool)
		var empty func() bool
		if fair {
			q := NewDualQueue[int](WaitConfig{})
			offer, poll, empty = q.Offer, q.Poll, q.IsEmpty
		} else {
			q := NewDualStack[int](WaitConfig{})
			offer, poll, empty = q.Offer, q.Poll, q.IsEmpty
		}
		for i, isOffer := range ops {
			if isOffer {
				if offer(i) {
					return false
				}
			} else if _, ok := poll(); ok {
				return false
			}
		}
		return empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWaitConfigResolution checks the resolve() contract: negatives
// disable, zero picks platform defaults, positives pass through.
func TestQuickWaitConfigResolution(t *testing.T) {
	f := func(timed, untimed int16) bool {
		cfg := WaitConfig{TimedSpins: int(timed), UntimedSpins: int(untimed)}
		rt, ru := cfg.resolve()
		okT := (timed > 0 && rt == int(timed)) || (timed < 0 && rt == 0) || (timed == 0 && rt >= 0)
		okU := (untimed > 0 && ru == int(untimed)) || (untimed < 0 && ru == 0) || (untimed == 0 && ru >= 0)
		return okT && okU
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestZeroSizedAndPointerPayloads exercises payload types with tricky
// representations: zero-sized structs (all values alias one address) and
// pointers (nil must be transferable), both of which stress the internal
// sentinel encoding.
func TestZeroSizedAndPointerPayloads(t *testing.T) {
	t.Run("struct{}", func(t *testing.T) {
		q := NewDualQueue[struct{}](WaitConfig{})
		done := make(chan struct{})
		go func() {
			q.Take()
			close(done)
		}()
		q.Put(struct{}{})
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("zero-sized payload transfer hung")
		}
	})
	t.Run("nil pointer", func(t *testing.T) {
		q := NewDualStack[*int](WaitConfig{})
		done := make(chan *int, 1)
		go func() { done <- q.Take() }()
		q.Put(nil)
		if got := <-done; got != nil {
			t.Fatalf("Take = %v, want nil", got)
		}
	})
	t.Run("large struct", func(t *testing.T) {
		type big struct {
			a [64]int64
			s string
		}
		q := NewDualQueue[big](WaitConfig{})
		want := big{s: "payload"}
		want.a[63] = 42
		done := make(chan big, 1)
		go func() { done <- q.Take() }()
		q.Put(want)
		got := <-done
		if got.s != "payload" || got.a[63] != 42 {
			t.Fatalf("large payload corrupted: %+v", got)
		}
	})
}

// TestZeroSizedSentinelsRemainDistinct guards the sentinel encoding
// directly: for zero-sized T every &T{} may share an address, so the
// implementation must never depend on value identity — only on the
// specific sentinel pointers. A timeout on a zero-sized queue must not be
// mistaken for fulfillment.
func TestZeroSizedSentinelsRemainDistinct(t *testing.T) {
	q := NewDualQueue[struct{}](WaitConfig{})
	if q.OfferTimeout(struct{}{}, 5*time.Millisecond) {
		t.Fatal("OfferTimeout succeeded with no consumer (sentinel confusion?)")
	}
	if _, ok := q.PollTimeout(5 * time.Millisecond); ok {
		t.Fatal("PollTimeout succeeded with no producer (sentinel confusion?)")
	}
	s := NewDualStack[struct{}](WaitConfig{})
	if s.OfferTimeout(struct{}{}, 5*time.Millisecond) {
		t.Fatal("stack OfferTimeout succeeded (sentinel confusion?)")
	}
}
