package core

import (
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
)

// This file is the batched-operation layer of the two dual structures and
// the transfer queue.
//
// The per-node cores have no multi-slot claim to exploit — every hand-off
// is one CAS-visible node — so their PutBatch/TakeBatch are the documented
// loop-with-single-arrival fallback: the batch contract (ordering, partial
// fill, status reporting) without the amortization. The segmented core
// (internal/segq) overrides both with a true multi-cell claim.
//
// The one native batch path a linked structure does offer is the producer
// side of the TransferQueue: asynchronous deposits need no per-item
// rendezvous, so a burst can be assembled as a private chain of data nodes
// in local memory and published with a single tail splice — one CAS for k
// items instead of k tail CASes. PutAllAsync below implements it.

// batchPut abstracts one side of the loop fallback.
type batchPut[T any] func(T, time.Time, <-chan struct{}) Status

type batchTake[T any] func(time.Time, <-chan struct{}) (T, Status)

// putBatchLoop transfers items in order through a single-item operation.
// It returns the number delivered and OK when every item transferred; a
// non-OK status reports why the batch stopped early (the returned count is
// the partial fill).
func putBatchLoop[T any](put batchPut[T], items []T, deadline time.Time, cancel <-chan struct{}) (int, Status) {
	for n, v := range items {
		if st := put(v, deadline, cancel); st != OK {
			return n, st
		}
	}
	return len(items), OK
}

// takeBatchLoop appends up to max received values to buf: the first take
// waits until the deadline (so an already-expired deadline makes the whole
// batch a pure poll burst), every subsequent take is non-blocking. The
// returned status is OK when the batch ended normally (max reached, or
// nothing more immediately available), Timeout/Canceled when the wait for
// the first value aborted with nothing taken, and Closed when the
// structure shut down — values already appended stay in buf.
func takeBatchLoop[T any](take batchTake[T], buf []T, max int, deadline time.Time, cancel <-chan struct{}) ([]T, Status) {
	if max <= 0 {
		return buf, OK
	}
	v, st := take(deadline, cancel)
	if st != OK {
		return buf, st
	}
	buf = append(buf, v)
	for taken := 1; taken < max; taken++ {
		v, st := take(deadlineFor(0), nil)
		if st == Closed {
			return buf, Closed
		}
		if st != OK {
			break
		}
		buf = append(buf, v)
	}
	return buf, OK
}

// PutBatch transfers items in order, each waiting for its own consumer
// under the shared deadline — the loop-with-single-arrival fallback (see
// the file comment). It returns the count delivered and OK when all of
// items transferred.
func (q *DualQueue[T]) PutBatch(items []T, deadline time.Time, cancel <-chan struct{}) (int, Status) {
	return putBatchLoop(q.PutDeadline, items, deadline, cancel)
}

// TakeBatch appends up to max values to buf: it waits for the first under
// the deadline, then opportunistically claims already-committed producers
// without waiting. See takeBatchLoop for the status contract.
func (q *DualQueue[T]) TakeBatch(buf []T, max int, deadline time.Time, cancel <-chan struct{}) ([]T, Status) {
	return takeBatchLoop(q.TakeDeadline, buf, max, deadline, cancel)
}

// PutBatch is the dual stack's loop-with-single-arrival batch fallback,
// with the same contract as the queue's. Within one batch the items are
// still delivered in slice order (each put completes before the next
// begins); LIFO pairing only decides which waiting consumer gets each one.
func (q *DualStack[T]) PutBatch(items []T, deadline time.Time, cancel <-chan struct{}) (int, Status) {
	return putBatchLoop(q.PutDeadline, items, deadline, cancel)
}

// TakeBatch is the dual stack's batch fill; see takeBatchLoop.
func (q *DualStack[T]) TakeBatch(buf []T, max int, deadline time.Time, cancel <-chan struct{}) ([]T, Status) {
	return takeBatchLoop(q.TakeDeadline, buf, max, deadline, cancel)
}

// PutAllAsync deposits items asynchronously as one burst — the batched
// form of PutAsync. Consumers already waiting are fulfilled directly, in
// order, from the front of the batch; the remainder is assembled as a
// privately linked chain of async data nodes and published with a single
// tail-splice CAS, so k buffered deposits cost one linearization point
// instead of k.
//
// It returns the number of items accepted and OK, or Closed when the queue
// was shut down before the remainder could be deposited (like PutAsync,
// nothing is accepted into a closed queue; items already handed to waiting
// consumers before the close are counted and stay delivered).
func (q *DualQueue[T]) PutAllAsync(items []T) (int, Status) {
	if len(items) == 0 {
		return 0, OK
	}
	idx := 0
	// first..last is the not-yet-published chain for items[idx:]; box is a
	// peeled item box awaiting a direct fulfillment. All local until the
	// splice CAS publishes the chain.
	var first, last *qnode[T]
	var box *qitem[T]
	for {
		t := q.tail.Load()
		h := q.head.Load()

		if h == t || t.isData {
			// Empty or data mode: splice the whole remainder at the tail.
			tn := t.next.Load()
			if t != q.tail.Load() {
				continue
			}
			if tn != nil {
				q.tail.CompareAndSwap(t, tn) // help lagging tail
				q.m.Inc(metrics.HelpCollisions)
				continue
			}
			if q.closed.Load() {
				q.recycleChain(first, box)
				return idx, Closed
			}
			if box != nil && first == nil && idx+1 < len(items) {
				// box came from getBox in the fulfill arm, not from a
				// peeled chain — items[idx+1:] have no nodes yet.
				first, last = q.buildChain(items[idx+1:])
			}
			if box != nil {
				// A box peeled for a consumer that vanished: re-head the
				// chain with a fresh node so the splice carries it.
				n := q.getNode(true, true)
				n.item.Store(box)
				n.next.Store(first)
				if first == nil {
					last = n
				}
				first, box = n, nil
			}
			if first == nil {
				first, last = q.buildChain(items[idx:])
			}
			q.f.Preempt(fault.QCloseRacePause)
			if q.f.FailCAS(fault.QEnqueueCAS) || !t.next.CompareAndSwap(nil, first) {
				q.m.Inc(metrics.CASFailEnqueue)
				continue
			}
			q.tail.CompareAndSwap(t, last)
			q.m.Add(metrics.AsyncDeposits, int64(len(items)-idx))
			return len(items), OK
		}

		// Reservation mode: hand the next item straight to the oldest
		// waiting consumer, exactly as the single-item fulfill arm does.
		m := h.next.Load()
		if t != q.tail.Load() || m == nil || h != q.head.Load() {
			continue
		}
		if q.f.FailCAS(fault.QFulfillCAS) {
			q.m.Inc(metrics.CASFailFulfill)
			continue
		}
		if box == nil {
			if first != nil {
				// Peel the chain's head node: it was never published, so
				// its box can fulfill directly and the node is a spare.
				n := first
				first = n.next.Load()
				if first == nil {
					last = nil
				}
				n.next.Store(nil)
				box = n.item.Load()
				q.putSpare(n)
			} else {
				box = q.getBox(items[idx])
			}
		}
		x := m.item.Load()
		if x != nil || q.isDead(x) || !m.item.CompareAndSwap(x, box) {
			// m was already fulfilled, canceled, or we lost the race:
			// dequeue it and retry with the same box.
			q.m.Inc(metrics.CASFailFulfill)
			q.advanceHead(h, m)
			continue
		}
		q.m.Inc(metrics.Fulfillments)
		q.f.Preempt(fault.QFulfillPause)
		q.advanceHead(h, m)
		if p := m.waiter.Load(); p != nil {
			p.Unpark()
		}
		box = nil
		idx++
		if idx == len(items) {
			return idx, OK
		}
	}
}

// buildChain assembles a private chain of async data nodes for items,
// returning its head and tail. The chain is entirely local memory — no
// other thread can observe it — until the caller's splice CAS publishes
// the head.
func (q *DualQueue[T]) buildChain(items []T) (first, last *qnode[T]) {
	for _, v := range items {
		n := q.getNode(true, true)
		n.item.Store(q.getBox(v))
		if first == nil {
			first = n
		} else {
			last.next.Store(n)
		}
		last = n
	}
	return first, last
}

// recycleChain returns a never-published chain (and a peeled box, if any)
// to the pools. Chain nodes were never linked into the queue, so reuse is
// ABA-free; their next words are scrubbed before pooling because getNode
// promises pristine links.
func (q *DualQueue[T]) recycleChain(first *qnode[T], box *qitem[T]) {
	q.putBox(box)
	for n := first; n != nil; {
		next := n.next.Load()
		n.next.Store(nil)
		q.putBox(n.item.Load())
		q.putSpare(n)
		n = next
	}
}

// PutAll deposits items asynchronously as one burst: waiting consumers are
// served in order from the front, the rest is linked in with a single tail
// splice. See DualQueue.PutAllAsync for the status contract.
func (t *TransferQueue[T]) PutAll(items []T) (int, Status) {
	return t.q.PutAllAsync(items)
}

// TransferBatch hands items to consumers synchronously, in order, under
// one shared deadline; it returns the count transferred and OK when all of
// items were taken.
func (t *TransferQueue[T]) TransferBatch(items []T, deadline time.Time, cancel <-chan struct{}) (int, Status) {
	return t.q.PutBatch(items, deadline, cancel)
}

// TakeBatch appends up to max values to buf, waiting for the first under
// the deadline and filling the rest from whatever is immediately available
// (buffered deposits and waiting synchronous producers, FIFO). Like Take
// and Poll, it keeps returning buffered deposits after Close and reports
// Closed only once the buffer is empty.
func (t *TransferQueue[T]) TakeBatch(buf []T, max int, deadline time.Time, cancel <-chan struct{}) ([]T, Status) {
	return takeBatchLoop(t.q.TakeDeadline, buf, max, deadline, cancel)
}

// DrainTo appends up to max immediately available values to buf without
// waiting: the bounded form of Drain. The status is OK when the queue
// simply had nothing more to give, and Closed only once a closed queue's
// buffered deposits have all been drained — an accepted deposit is a
// promise the close keeps, so DrainTo never reports Closed while one
// remains.
func (t *TransferQueue[T]) DrainTo(buf []T, max int) ([]T, Status) {
	buf, st := takeBatchLoop(t.q.TakeDeadline, buf, max, deadlineFor(0), nil)
	if st == Timeout || st == Canceled {
		st = OK
	}
	return buf, st
}
