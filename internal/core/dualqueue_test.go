package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitLen polls until q reports n live waiting nodes, failing after a
// generous deadline. It makes ordering tests deterministic without
// sleeps-as-synchronization.
func waitLen[T any](t *testing.T, q interface{ Len() int }, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for q.Len() != n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for Len()==%d (have %d)", n, q.Len())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// countQueueNodes walks the whole list, counting every linked node
// (canceled or not, excluding the dummy). Used to assert that cleaning
// bounds garbage.
func countQueueNodes[T any](q *DualQueue[T]) int {
	n := 0
	cur := q.head.Load().next.Load()
	for cur != nil {
		next := cur.next.Load()
		if next == cur {
			break
		}
		n++
		cur = next
	}
	return n
}

func TestDualQueuePairsPutWithTake(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	done := make(chan int)
	go func() { done <- q.Take() }()
	q.Put(42)
	if got := <-done; got != 42 {
		t.Fatalf("Take = %d, want 42", got)
	}
}

func TestDualQueuePutBlocksUntilConsumer(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	var delivered atomic.Bool
	go func() {
		q.Put(1)
		delivered.Store(true)
	}()
	waitLen[int](t, q, 1)
	if delivered.Load() {
		t.Fatal("Put returned before a consumer arrived")
	}
	if got := q.Take(); got != 1 {
		t.Fatalf("Take = %d, want 1", got)
	}
}

func TestDualQueueTakeBlocksUntilProducer(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	var got atomic.Int64
	var finished atomic.Bool
	go func() {
		got.Store(int64(q.Take()))
		finished.Store(true)
	}()
	waitLen[int](t, q, 1)
	if finished.Load() {
		t.Fatal("Take returned before a producer arrived")
	}
	q.Put(7)
	deadline := time.Now().Add(5 * time.Second)
	for !finished.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Take never returned")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got.Load() != 7 {
		t.Fatalf("Take = %d, want 7", got.Load())
	}
}

func TestDualQueueOfferWithoutConsumerFails(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	if q.Offer(1) {
		t.Fatal("Offer succeeded with no waiting consumer")
	}
	if !q.IsEmpty() {
		t.Fatal("queue not empty after failed Offer")
	}
}

func TestDualQueueOfferToWaitingConsumer(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	done := make(chan int)
	go func() { done <- q.Take() }()
	waitLen[int](t, q, 1)
	if !q.Offer(9) {
		t.Fatal("Offer failed with a waiting consumer")
	}
	if got := <-done; got != 9 {
		t.Fatalf("Take = %d, want 9", got)
	}
}

func TestDualQueuePollWithoutProducerFails(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll succeeded on empty queue")
	}
}

func TestDualQueuePollFromWaitingProducer(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	go q.Put(3)
	waitLen[int](t, q, 1)
	v, ok := q.Poll()
	if !ok || v != 3 {
		t.Fatalf("Poll = (%d,%v), want (3,true)", v, ok)
	}
}

func TestDualQueueOfferTimeoutExpires(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	t0 := time.Now()
	if q.OfferTimeout(1, 20*time.Millisecond) {
		t.Fatal("OfferTimeout succeeded with no consumer")
	}
	if elapsed := time.Since(t0); elapsed < 15*time.Millisecond {
		t.Fatalf("OfferTimeout returned after %v, before its patience elapsed", elapsed)
	}
}

func TestDualQueueOfferTimeoutSucceedsWithinPatience(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	go func() {
		waitLen[int](t, q, 1)
		if got := q.Take(); got != 5 {
			t.Errorf("Take = %d, want 5", got)
		}
	}()
	if !q.OfferTimeout(5, 5*time.Second) {
		t.Fatal("OfferTimeout expired despite a consumer arriving")
	}
}

func TestDualQueuePollTimeoutExpires(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	if _, ok := q.PollTimeout(20 * time.Millisecond); ok {
		t.Fatal("PollTimeout succeeded with no producer")
	}
}

func TestDualQueuePollTimeoutSucceedsWithinPatience(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	go func() {
		waitLen[int](t, q, 1)
		q.Put(11)
	}()
	v, ok := q.PollTimeout(5 * time.Second)
	if !ok || v != 11 {
		t.Fatalf("PollTimeout = (%d,%v), want (11,true)", v, ok)
	}
}

func TestDualQueueCancelPut(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	cancel := make(chan struct{})
	done := make(chan Status)
	go func() { done <- q.PutDeadline(1, time.Time{}, cancel) }()
	waitLen[int](t, q, 1)
	close(cancel)
	if st := <-done; st != Canceled {
		t.Fatalf("PutDeadline = %v, want Canceled", st)
	}
}

func TestDualQueueCancelTake(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	cancel := make(chan struct{})
	type out struct {
		v  int
		st Status
	}
	done := make(chan out)
	go func() {
		v, st := q.TakeDeadline(time.Time{}, cancel)
		done <- out{v, st}
	}()
	waitLen[int](t, q, 1)
	close(cancel)
	if o := <-done; o.st != Canceled {
		t.Fatalf("TakeDeadline = %+v, want Canceled", o)
	}
}

func TestDualQueueFIFOAmongProducers(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		v := i
		go func() {
			defer wg.Done()
			q.Put(v)
		}()
		waitLen[int](t, q, i+1) // producer i is parked before i+1 starts
	}
	for i := 0; i < n; i++ {
		if got := q.Take(); got != i {
			t.Fatalf("Take #%d = %d, want %d (FIFO violated)", i, got, i)
		}
	}
	wg.Wait()
}

func TestDualQueueFIFOAmongConsumers(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	const n = 8
	results := make([]chan int, n)
	for i := 0; i < n; i++ {
		results[i] = make(chan int, 1)
		ch := results[i]
		go func() { ch <- q.Take() }()
		waitLen[int](t, q, i+1)
	}
	// Consumer i arrived i-th, so it must receive the i-th value.
	for i := 0; i < n; i++ {
		q.Put(100 + i)
	}
	for i := 0; i < n; i++ {
		if got := <-results[i]; got != 100+i {
			t.Fatalf("consumer %d received %d, want %d (FIFO violated)", i, got, 100+i)
		}
	}
}

func TestDualQueuePutAsyncBuffersFIFO(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	q.PutAsync(1)
	q.PutAsync(2)
	q.PutAsync(3)
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3 buffered", q.Len())
	}
	for want := 1; want <= 3; want++ {
		v, ok := q.Poll()
		if !ok || v != want {
			t.Fatalf("Poll = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll succeeded on drained queue")
	}
}

func TestDualQueueAsyncServesWaitingConsumerDirectly(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	done := make(chan int)
	go func() { done <- q.Take() }()
	waitLen[int](t, q, 1)
	q.PutAsync(77)
	if got := <-done; got != 77 {
		t.Fatalf("Take = %d, want 77", got)
	}
}

func TestDualQueueCancellationDoesNotLoseValues(t *testing.T) {
	// A producer with patience and a consumer race; either the transfer
	// happens for both or for neither.
	q := NewDualQueue[int](WaitConfig{})
	for i := 0; i < 200; i++ {
		got := make(chan int, 1)
		go func() {
			if v, ok := q.PollTimeout(time.Millisecond); ok {
				got <- v
			} else {
				got <- -1
			}
		}()
		sent := q.OfferTimeout(i, time.Millisecond)
		v := <-got
		if sent && v == -1 {
			t.Fatalf("iteration %d: producer reported success but consumer got nothing", i)
		}
		if !sent && v != -1 {
			t.Fatalf("iteration %d: consumer got %d but producer reported timeout", i, v)
		}
		if sent && v != i {
			t.Fatalf("iteration %d: consumer got %d", i, v)
		}
	}
}

func TestDualQueueTimeoutStormLeavesNoGarbage(t *testing.T) {
	// The paper's pragmatics: high offer rate with low patience must not
	// accumulate canceled nodes. The deferred cleanMe strategy bounds
	// leftover canceled nodes to a small constant.
	q := NewDualQueue[int](WaitConfig{})
	for i := 0; i < 500; i++ {
		q.OfferTimeout(i, 10*time.Microsecond)
	}
	if n := countQueueNodes(q); n > 2 {
		t.Fatalf("%d nodes linger after timeout storm; cleaning failed", n)
	}
	// The queue must still work.
	done := make(chan int)
	go func() { done <- q.Take() }()
	waitLen[int](t, q, 1)
	q.Put(1234)
	if got := <-done; got != 1234 {
		t.Fatalf("Take = %d after storm, want 1234", got)
	}
}

func TestDualQueueCanceledTailThenTransfer(t *testing.T) {
	// Force the cleanMe path deterministically: a live producer at the
	// head, a canceled producer at the tail (unremovable immediately),
	// then transfers proceed and the canceled node is eventually swept.
	q := NewDualQueue[int](WaitConfig{})
	go q.Put(1)
	waitLen[int](t, q, 1)
	if q.OfferTimeout(2, 10*time.Millisecond) {
		t.Fatal("second offer unexpectedly matched")
	}
	if got := q.Take(); got != 1 {
		t.Fatalf("Take = %d, want 1", got)
	}
	// Run one more full transfer so a later clean() sweeps the deferred
	// node, then check the structure is bounded.
	go q.Put(3)
	waitLen[int](t, q, 1)
	if got := q.Take(); got != 3 {
		t.Fatalf("Take = %d, want 3", got)
	}
	if n := countQueueNodes(q); n > 2 {
		t.Fatalf("%d nodes linger after cleanMe exercise", n)
	}
}

func TestDualQueueConservationUnderLoad(t *testing.T) {
	q := NewDualQueue[int64](WaitConfig{})
	const producers, consumers = 8, 8
	const perProducer = 500
	var mu sync.Mutex
	seen := make(map[int64]bool, producers*perProducer)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				q.Put(id<<32 | i)
			}
		}(int64(p))
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < producers*perProducer/consumers; i++ {
				v := q.Take()
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d delivered twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d distinct values, want %d", len(seen), producers*perProducer)
	}
	if !q.IsEmpty() {
		t.Fatal("queue not empty after balanced run")
	}
}

func TestDualQueueMixedTimedUntimedStress(t *testing.T) {
	q := NewDualQueue[int64](WaitConfig{})
	const n = 2000
	var produced, consumed atomic.Int64
	var wg sync.WaitGroup
	// Timed producers against untimed consumers: every successful offer
	// must be consumed; consumers stop via a final poison drain.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < n; i++ {
			if q.OfferTimeout(i, time.Millisecond) {
				produced.Add(1)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			if _, ok := q.PollTimeout(20 * time.Millisecond); !ok {
				return // producer exhausted
			}
			consumed.Add(1)
		}
	}()
	wg.Wait()
	if produced.Load() != consumed.Load() {
		t.Fatalf("produced %d != consumed %d", produced.Load(), consumed.Load())
	}
}

func TestDualQueueStatusString(t *testing.T) {
	cases := map[Status]string{OK: "ok", Timeout: "timeout", Canceled: "canceled", Status(99): "invalid"}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestDualQueueObservers(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	if q.HasWaitingProducer() || q.HasWaitingConsumer() || !q.IsEmpty() {
		t.Fatal("fresh queue misreports state")
	}
	go q.Put(1)
	waitLen[int](t, q, 1)
	if !q.HasWaitingProducer() || q.HasWaitingConsumer() {
		t.Fatal("waiting producer not observed")
	}
	if got := q.Take(); got != 1 {
		t.Fatalf("Take = %d", got)
	}
	done := make(chan int)
	go func() { done <- q.Take() }()
	waitLen[int](t, q, 1)
	if !q.HasWaitingConsumer() || q.HasWaitingProducer() {
		t.Fatal("waiting consumer not observed")
	}
	q.Put(2)
	<-done
}
