package core

import (
	"sync/atomic"
	"time"

	"testing"

	"synchq/internal/fault"
	"synchq/internal/metrics"
)

// churnConfig is the wait policy for the pooling stress: instrumented, and
// with a high deterministic CAS-failure rate so insertion races — the only
// way a spare node enters a pool — fire constantly even at modest
// goroutine counts. This doubles as the proof that the fault sites still
// fire on the pooled paths.
func churnConfig(h *metrics.Handle) WaitConfig {
	return WaitConfig{
		Metrics: h,
		Fault:   fault.New(fault.Config{Seed: 1, FailCASRate: 0.25, SpuriousWakeRate: 0.02}),
	}
}

// This file stresses the node/box recycling layer specifically: the
// history-verified bridge mix (timed offers, canceled puts, timed polls,
// canceled takes) is rerun on instrumented structures and, afterwards, the
// recycling counters are required to show that the pools actually cycled
// during the verified run. Churning the pools while the history checker
// watches for lost, duplicated, or invented values is the direct test of
// the ABA and scrubbing doctrine: a box recycled while still reachable, or
// a spare pooled after being linked, surfaces here as a conservation or
// synchrony violation (and, under -race, as a data race on the reused
// memory).

// assertPoolCycled fails unless the run both allocated and reused pooled
// objects — reuse without allocation (or vice versa) would mean the mix
// never actually exercised the recycling layer.
func assertPoolCycled(t *testing.T, h *metrics.Handle) {
	t.Helper()
	s := h.Snapshot()
	if s.Get(metrics.NodeReuses) == 0 {
		t.Error("pooling stress completed without a single pool reuse; the mix did not exercise recycling")
	}
	if s.Get(metrics.NodeAllocs) == 0 {
		t.Error("pooling stress recorded reuses but no allocations; counters are wired wrong")
	}
}

func TestPoolingChurnHistoryDualQueue(t *testing.T) {
	p, c, n := bridgeSizes(t)
	h := metrics.New()
	q := NewDualQueue[int64](churnConfig(h))
	runHistoryBridge(t, bridgeOps{
		offerTimeout: q.OfferTimeout,
		putCancel:    func(v int64, cancel <-chan struct{}) Status { return q.PutDeadline(v, time.Time{}, cancel) },
		pollTimeout:  q.PollTimeout,
		takeCancel:   func(cancel <-chan struct{}) (int64, Status) { return q.TakeDeadline(time.Time{}, cancel) },
	}, p, c, n)
	assertPoolCycled(t, h)
}

func TestPoolingChurnHistoryDualStack(t *testing.T) {
	p, c, n := bridgeSizes(t)
	h := metrics.New()
	q := NewDualStack[int64](churnConfig(h))
	runHistoryBridge(t, bridgeOps{
		offerTimeout: q.OfferTimeout,
		putCancel:    func(v int64, cancel <-chan struct{}) Status { return q.PutDeadline(v, time.Time{}, cancel) },
		pollTimeout:  q.PollTimeout,
		takeCancel:   func(cancel <-chan struct{}) (int64, Status) { return q.TakeDeadline(time.Time{}, cancel) },
	}, p, c, n)
	// The stack's datum rides in its node, so no item boxes circulate, and
	// a spare node is pooled only when an engage switches arms after a lost
	// push — too interleaving-dependent to demand from a randomized run.
	// TestDualStackSparePooling forces that window deterministically; here
	// we only require that the counters are wired.
	if h.Snapshot().Get(metrics.NodeAllocs) == 0 {
		t.Error("stack bridge run recorded no node allocations; counters are wired wrong")
	}
}

// TestDualStackSparePooling forces the one window in which the stack pools
// a node — a waiter built for the push arm loses its push CAS, then the
// operation completes through the fulfill arm — and verifies the spare is
// recycled into a later node. The lost push is staged with the injector's
// preempt gate at the push-CAS site: the victim consumer is held between
// building its node and the CAS while the stack's top is swapped from a
// request to a datum under it.
//
// The choreography is deterministic, but under -race sync.Pool drops a
// quarter of Puts on the floor by design, so a single forced cycle can
// legitimately pool nothing; retry until a reuse is observed.
func TestDualStackSparePooling(t *testing.T) {
	attempts := 1
	if raceEnabled {
		attempts = 10
	}
	for i := 0; i < attempts; i++ {
		if dualStackSparePoolingCycle(t) {
			return
		}
	}
	t.Error("forced push-then-fulfill completion pooled no spare node")
}

func dualStackSparePoolingCycle(t *testing.T) bool {
	gate := make(chan struct{})
	release := make(chan struct{})
	var pushes atomic.Int32
	inj := fault.New(fault.Config{
		Seed:        1,
		PreemptRate: 1,
		Sites:       []fault.Site{fault.SCloseRacePause},
		PreemptFunc: func(fault.Site) {
			// Gate only the second push (the victim consumer C);
			// every other push proceeds unhindered.
			if pushes.Add(1) == 2 {
				close(gate)
				<-release
			}
		},
	})
	h := metrics.New()
	q := NewDualStack[int](WaitConfig{Metrics: h, Fault: inj})

	// Push 1: a parked request R1 so C's take starts in the push arm.
	r1 := make(chan int)
	go func() { r1 <- q.Take() }()
	waitLen[int](t, q, 1)

	// Push 2: victim consumer C builds its node, then blocks at the gate
	// with the old head (R1) captured for its push CAS.
	c := make(chan int)
	go func() { c <- q.Take() }()
	<-gate

	// Swap the top under C: fulfill R1 (pops it), then park a datum D.
	q.Put(100)
	if got := <-r1; got != 100 {
		t.Fatalf("R1 took %d, want 100", got)
	}
	p2 := make(chan struct{})
	go func() { q.Put(200); close(p2) }() // push 3: datum D
	waitLen[int](t, q, 1)

	// Release C: its push CAS fails (head is D, not R1), and the retry lap
	// finds a complementary top — the fulfill arm completes the take and
	// the never-linked node C built for the push arm goes to the pool.
	close(release)
	if got := <-c; got != 200 {
		t.Fatalf("C took %d, want 200", got)
	}
	<-p2

	// Push 4 draws from the pool: the recycled spare becomes R2's node.
	r2 := make(chan int)
	go func() { r2 <- q.Take() }()
	waitLen[int](t, q, 1)
	q.Put(300)
	if got := <-r2; got != 300 {
		t.Fatalf("R2 took %d, want 300", got)
	}
	return h.Snapshot().Get(metrics.NodeReuses) > 0
}

func TestPoolingChurnHistoryTransferQueue(t *testing.T) {
	p, c, n := bridgeSizes(t)
	h := metrics.New()
	q := NewTransferQueue[int64](churnConfig(h))
	runHistoryBridge(t, bridgeOps{
		offerTimeout: q.TransferTimeout,
		putCancel: func(v int64, cancel <-chan struct{}) Status {
			return q.TransferDeadline(v, time.Time{}, cancel)
		},
		pollTimeout: q.PollTimeout,
		takeCancel:  func(cancel <-chan struct{}) (int64, Status) { return q.TakeDeadline(time.Time{}, cancel) },
	}, p, c, n)
	assertPoolCycled(t, h)
}
