package core

import (
	"sync"
	"testing"
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/verify"
)

// This file verifies graceful shutdown: Close must wake every waiter with
// the Closed status, reject subsequent operations, lose no in-flight
// transfer (each hand-off completes in both parties or in neither), and —
// for the transfer queue — keep every asynchronous deposit it accepted.

// closeOps is the shutdown surface shared by the three structures,
// expressed as funcs so one storm harness covers all of them. put and
// take block until fulfilled or closed (zero deadline).
type closeOps struct {
	put    func(v int64) Status
	take   func() (int64, Status)
	close  func()
	closed func() bool
}

func queueCloseOps(q *DualQueue[int64]) closeOps {
	return closeOps{
		put:    func(v int64) Status { return q.PutDeadline(v, time.Time{}, nil) },
		take:   func() (int64, Status) { return q.TakeDeadline(time.Time{}, nil) },
		close:  q.Close,
		closed: q.Closed,
	}
}

func stackCloseOps(q *DualStack[int64]) closeOps {
	return closeOps{
		put:    func(v int64) Status { return q.PutDeadline(v, time.Time{}, nil) },
		take:   func() (int64, Status) { return q.TakeDeadline(time.Time{}, nil) },
		close:  q.Close,
		closed: q.Closed,
	}
}

func transferCloseOps(tq *TransferQueue[int64]) closeOps {
	return closeOps{
		put:    func(v int64) Status { return tq.TransferDeadline(v, time.Time{}, nil) },
		take:   func() (int64, Status) { return tq.TakeDeadline(time.Time{}, nil) },
		close:  tq.Close,
		closed: tq.Closed,
	}
}

// runCloseStorm closes the structure in the middle of a full-throttle
// producer/consumer storm of unbounded (block-until-closed) operations,
// then checks that every goroutine returned, that the recorded history is
// conserving and synchronous, and that the two sides agree on how many
// transfers completed — i.e. close never tears a hand-off in half.
func runCloseStorm(t *testing.T, ops closeOps, producers, consumers int) {
	t.Helper()
	rec := verify.NewRecorder()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			log := rec.NewThread()
			for seq := int64(0); ; seq++ {
				v := id<<40 | seq
				inv := log.Begin()
				st := ops.put(v)
				log.End(verify.Put, v, inv, st == OK)
				if st == Closed {
					return
				}
				if st != OK {
					t.Errorf("put %d: unexpected status %v", v, st)
					return
				}
			}
		}(int64(p))
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			log := rec.NewThread()
			for {
				inv := log.Begin()
				v, st := ops.take()
				log.End(verify.Take, v, inv, st == OK)
				if st == Closed {
					return
				}
				if st != OK {
					t.Errorf("take: unexpected status %v", st)
					return
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	ops.close()
	// The acceptance criterion "every waiter returns Closed" is this Wait
	// terminating: a missed wakeup would hang the test.
	wg.Wait()

	if !ops.closed() {
		t.Fatal("Closed() false after Close")
	}
	ops.close() // idempotent
	if st := ops.put(99); st != Closed {
		t.Fatalf("put after close: got %v, want Closed", st)
	}
	if _, st := ops.take(); st != Closed {
		t.Fatalf("take after close: got %v, want Closed", st)
	}

	res := verify.Check(rec.History(), true)
	if !res.Ok() {
		for _, e := range res.Errors {
			t.Errorf("history violation: %s", e)
		}
	}
	if res.Transfers == 0 {
		t.Error("storm completed no transfers before close")
	}
}

func TestDualQueueCloseUnderLoad(t *testing.T) {
	runCloseStorm(t, queueCloseOps(NewDualQueue[int64](WaitConfig{})), 6, 6)
}

func TestDualStackCloseUnderLoad(t *testing.T) {
	runCloseStorm(t, stackCloseOps(NewDualStack[int64](WaitConfig{})), 6, 6)
}

func TestTransferQueueCloseUnderLoad(t *testing.T) {
	runCloseStorm(t, transferCloseOps(NewTransferQueue[int64](WaitConfig{})), 6, 6)
}

// TestCloseWakesParkedWaiters parks waiters on both sides (producers on
// the queue, consumers too would deadlock a synchronous structure — so
// two phases) and closes; every waiter must return Closed and the
// ClosedWakeups counter must see them.
func TestCloseWakesParkedWaiters(t *testing.T) {
	for _, tc := range []struct {
		name  string
		fresh func(h *metrics.Handle) closeOps
	}{
		{"queue", func(h *metrics.Handle) closeOps {
			return queueCloseOps(NewDualQueue[int64](WaitConfig{Metrics: h}))
		}},
		{"stack", func(h *metrics.Handle) closeOps {
			return stackCloseOps(NewDualStack[int64](WaitConfig{Metrics: h}))
		}},
		{"transfer", func(h *metrics.Handle) closeOps {
			return transferCloseOps(NewTransferQueue[int64](WaitConfig{Metrics: h}))
		}},
	} {
		for _, side := range []string{"producers", "consumers"} {
			t.Run(tc.name+"/"+side, func(t *testing.T) {
				h := metrics.New()
				ops := tc.fresh(h)
				const waiters = 4
				results := make(chan Status, waiters)
				for i := 0; i < waiters; i++ {
					go func(v int64) {
						if side == "producers" {
							results <- ops.put(v)
						} else {
							_, st := ops.take()
							results <- st
						}
					}(int64(i))
				}
				// Let the waiters engage and park before closing.
				time.Sleep(10 * time.Millisecond)
				ops.close()
				for i := 0; i < waiters; i++ {
					select {
					case st := <-results:
						if st != Closed {
							t.Fatalf("waiter returned %v, want Closed", st)
						}
					case <-time.After(5 * time.Second):
						t.Fatal("waiter not woken by Close")
					}
				}
				if got := h.Snapshot().Get(metrics.ClosedWakeups); got < waiters {
					t.Errorf("closed-wakeups = %d, want >= %d", got, waiters)
				}
			})
		}
	}
}

// TestTransferQueueCloseKeepsDeposits checks the §5 drain guarantee under
// a concurrent close: every asynchronous Put that reported OK must later
// surface exactly once — through a consumer or through Drain — and every
// Put that reported Closed must never surface.
func TestTransferQueueCloseKeepsDeposits(t *testing.T) {
	tq := NewTransferQueue[int64](WaitConfig{})
	const producers, perProducer = 4, 2000

	accepted := make([]map[int64]bool, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		accepted[p] = make(map[int64]bool, perProducer)
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for seq := int64(0); seq < perProducer; seq++ {
				v := id<<40 | seq
				if tq.Put(v) == OK {
					accepted[id][v] = true
				} else {
					return // closed: all later Puts would be refused too
				}
			}
		}(int64(p))
	}

	taken := make(map[int64]bool)
	var takenMu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < 2; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, st := tq.TakeDeadline(time.Time{}, nil)
				if st != OK {
					return // Closed, and the buffer is empty
				}
				takenMu.Lock()
				if taken[v] {
					t.Errorf("value %d delivered twice", v)
				}
				taken[v] = true
				takenMu.Unlock()
			}
		}()
	}

	time.Sleep(2 * time.Millisecond)
	tq.Close()
	wg.Wait()  // producers stop accepting
	cwg.Wait() // consumers drain the rest, then observe Closed

	drained := tq.Drain()
	for _, v := range drained {
		if taken[v] {
			t.Errorf("value %d both taken and drained", v)
		}
		taken[v] = true
	}
	if tq.Put(12345) != Closed {
		t.Error("Put accepted after Close")
	}

	total := 0
	for id := range accepted {
		for v := range accepted[id] {
			if !taken[v] {
				t.Errorf("accepted deposit %d lost by close", v)
			}
			total++
		}
	}
	for v := range taken {
		id := v >> 40
		if !accepted[id][v] {
			t.Errorf("value %d surfaced but was never accepted", v)
		}
	}
	if total == 0 {
		t.Error("no deposits accepted before close; test proved nothing")
	}
}

// TestDemandOpsPanicAfterClose: the demand operations have no status
// channel, so — like a send on a closed Go channel — they panic.
func TestDemandOpsPanicAfterClose(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic on closed structure", name)
			}
		}()
		f()
	}
	q := NewDualQueue[int](WaitConfig{})
	q.Close()
	mustPanic("queue.Put", func() { q.Put(1) })
	mustPanic("queue.Take", func() { q.Take() })
	mustPanic("queue.PutReserve", func() { q.PutReserve(1) })
	mustPanic("queue.TakeReserve", func() { q.TakeReserve() })

	s := NewDualStack[int](WaitConfig{})
	s.Close()
	mustPanic("stack.Put", func() { s.Put(1) })
	mustPanic("stack.Take", func() { s.Take() })
	mustPanic("stack.PutReserve", func() { s.PutReserve(1) })
	mustPanic("stack.TakeReserve", func() { s.TakeReserve() })

	// Zero-patience probes stay non-panicking: they report "nothing
	// available" rather than tearing down pollers racing a shutdown.
	if ok := q.Offer(1); ok {
		t.Error("queue.Offer succeeded on closed queue")
	}
	if _, ok := s.Poll(); ok {
		t.Error("stack.Poll succeeded on closed stack")
	}
}

// TestTicketCloseSemantics: a reservation evicted by Close reports Closed
// through Await, never reports fulfillment through TryFollowup, and may
// be aborted successfully (no value was transferred).
func TestTicketCloseSemantics(t *testing.T) {
	t.Run("queue-await", func(t *testing.T) {
		q := NewDualQueue[int](WaitConfig{})
		tk, ok := q.PutReserve(7)
		if ok {
			t.Fatal("immediate fulfillment on empty queue")
		}
		q.Close()
		if _, ok := tk.TryFollowup(); ok {
			t.Error("TryFollowup reported delivery on a closed reservation")
		}
		if _, st := tk.Await(time.Time{}, nil); st != Closed {
			t.Errorf("Await = %v, want Closed", st)
		}
	})
	t.Run("queue-abort", func(t *testing.T) {
		q := NewDualQueue[int](WaitConfig{})
		tk, _ := q.PutReserve(7)
		q.Close()
		if !tk.Abort() {
			t.Error("Abort of a close-evicted reservation failed")
		}
	})
	t.Run("stack-await", func(t *testing.T) {
		s := NewDualStack[int](WaitConfig{})
		tk, ok := s.PutReserve(7)
		if ok {
			t.Fatal("immediate fulfillment on empty stack")
		}
		s.Close()
		if _, ok := tk.TryFollowup(); ok {
			t.Error("TryFollowup reported delivery on a closed reservation")
		}
		if _, st := tk.Await(time.Time{}, nil); st != Closed {
			t.Errorf("Await = %v, want Closed", st)
		}
	})
	t.Run("stack-abort", func(t *testing.T) {
		s := NewDualStack[int](WaitConfig{})
		tk, _ := s.PutReserve(7)
		s.Close()
		if !tk.Abort() {
			t.Error("Abort of a close-evicted reservation failed")
		}
	})
}

// TestReserveCloseRaceSelfEvicts pins the hardest close race for the
// reservation API: the requester reads closed == false in the engage loop,
// then Close sets the flag AND completes its entire eviction sweep before
// the node's link/push CAS lands. The sweep cannot see the node, so only
// the requester's post-link re-check can evict it; without that re-check
// the ticket's unbounded Await parks forever. The q/s-close-race-pause
// injection sites sit exactly in that window, and a scripted PreemptFunc
// holds it open while the test runs Close to completion.
func TestReserveCloseRaceSelfEvicts(t *testing.T) {
	type reserver interface {
		ReserveTake() (int, Ticket[int], bool)
		ReservePut(int) (Ticket[int], bool)
		Close()
	}
	makers := []struct {
		name string
		site fault.Site
		new  func(f *fault.Injector) reserver
	}{
		{"queue", fault.QCloseRacePause,
			func(f *fault.Injector) reserver { return NewDualQueue[int](WaitConfig{Fault: f}) }},
		{"stack", fault.SCloseRacePause,
			func(f *fault.Injector) reserver { return NewDualStack[int](WaitConfig{Fault: f}) }},
	}
	ops := []struct {
		name    string
		reserve func(q reserver) (Ticket[int], bool)
	}{
		{"take", func(q reserver) (Ticket[int], bool) { _, tk, ok := q.ReserveTake(); return tk, ok }},
		{"put", func(q reserver) (Ticket[int], bool) { return q.ReservePut(9) }},
	}
	for _, mk := range makers {
		for _, op := range ops {
			t.Run(mk.name+"-"+op.name, func(t *testing.T) {
				gate := make(chan struct{})
				entered := make(chan struct{}, 1)
				inj := fault.New(fault.Config{
					Seed:        1,
					PreemptRate: 1,
					Budget:      1,
					Sites:       []fault.Site{mk.site},
					PreemptFunc: func(fault.Site) { entered <- struct{}{}; <-gate },
				})
				q := mk.new(inj)
				res := make(chan Status, 1)
				go func() {
					tk, ok := op.reserve(q)
					if ok {
						res <- OK // paired immediately; impossible here but not a hang
						return
					}
					_, st := tk.Await(time.Time{}, nil)
					res <- st
				}()
				<-entered // closed observed false; node not yet linked
				q.Close() // flag set and sweep fully done before the link CAS
				close(gate)
				select {
				case st := <-res:
					if st != Closed {
						t.Fatalf("Await = %v, want Closed", st)
					}
				case <-time.After(10 * time.Second):
					t.Fatal("reservation stranded: Await never returned after Close raced the insert")
				}
			})
		}
	}
}
