package core

import (
	"runtime"
	"testing"
	"time"
)

// expectGoroutinesBelow polls until the live goroutine count drops to at
// most want, failing after a generous deadline. Used to prove that waiting
// goroutines are actually released — a queue that loses wakeups strands
// its waiters forever.
func expectGoroutinesBelow(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not drain: %d > %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDualQueueNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	q := NewDualQueue[int](WaitConfig{})
	for round := 0; round < 50; round++ {
		done := make(chan struct{})
		go func() {
			for i := 0; i < 20; i++ {
				q.Put(i)
			}
			close(done)
		}()
		for i := 0; i < 20; i++ {
			q.Take()
		}
		<-done
	}
	// Timed waiters that expire must also vanish.
	for i := 0; i < 20; i++ {
		go q.OfferTimeout(i, time.Millisecond)
		go q.PollTimeout(time.Millisecond)
	}
	expectGoroutinesBelow(t, base+2)
}

func TestDualStackNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	q := NewDualStack[int](WaitConfig{})
	for round := 0; round < 50; round++ {
		done := make(chan struct{})
		go func() {
			for i := 0; i < 20; i++ {
				q.Put(i)
			}
			close(done)
		}()
		for i := 0; i < 20; i++ {
			q.Take()
		}
		<-done
	}
	for i := 0; i < 20; i++ {
		go q.OfferTimeout(i, time.Millisecond)
		go q.PollTimeout(time.Millisecond)
	}
	expectGoroutinesBelow(t, base+2)
}

func TestDualQueueCleanMeChain(t *testing.T) {
	// Exercise the deferred-cleaning bookkeeping across multiple
	// cancellations at the tail: a live producer pins the head while a
	// sequence of timed offers cancel behind it, each becoming (briefly)
	// an uncleanable tail node whose predecessor lands in cleanMe.
	q := NewDualQueue[int](WaitConfig{})
	go q.Put(1)
	waitLen[int](t, q, 1)
	for i := 0; i < 10; i++ {
		if q.OfferTimeout(100+i, 2*time.Millisecond) {
			t.Fatalf("offer %d unexpectedly matched", i)
		}
	}
	// The canceled chain must not be observable as live waiters...
	if n := q.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1 (only the live producer)", n)
	}
	// ...and deferred cleaning must keep reclaiming while the head is
	// pinned: each new cancellation's clean() unlinks roughly every other
	// predecessor (as in Java 6 — a cleanMe record can go stale when its
	// saved predecessor is itself unlinked), so the debris is bounded by
	// a fraction of the burst, never the whole burst plus growth.
	if n := countQueueNodes(q); n > 7 {
		t.Fatalf("%d nodes linger; deferred cleaning is not reclaiming", n)
	}
	// The pinned producer still transfers — the consumer sweeps canceled
	// nodes out of its way as it searches for the live one.
	if got := q.Take(); got != 1 {
		t.Fatalf("Take = %d, want 1", got)
	}
	// A subsequent operation drains the remaining canceled debris from
	// the head; after it, the structure is clean.
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll fabricated a value from canceled nodes")
	}
	if n := countQueueNodes(q); n > 1 {
		t.Fatalf("%d nodes linger after the head swept past the debris", n)
	}
	// And the queue is fully functional afterwards.
	done := make(chan int)
	go func() { done <- q.Take() }()
	waitLen[int](t, q, 1)
	q.Put(2)
	if got := <-done; got != 2 {
		t.Fatalf("Take = %d, want 2", got)
	}
}

func TestDualStackCancellationBurstThenUse(t *testing.T) {
	// Mirror of the cleanMe chain test for the stack: a live producer is
	// buried under a burst of canceled offers; takes must skip the debris
	// and reach it, and the debris must be swept.
	q := NewDualStack[int](WaitConfig{})
	go q.Put(1)
	waitLen[int](t, q, 1)
	for i := 0; i < 10; i++ {
		if q.OfferTimeout(100+i, 2*time.Millisecond) {
			t.Fatalf("offer %d unexpectedly matched", i)
		}
	}
	if got := q.Take(); got != 1 {
		t.Fatalf("Take = %d, want 1 (canceled nodes must be skipped)", got)
	}
	if n := countStackNodes(q); n > 2 {
		t.Fatalf("%d nodes linger after the burst was consumed", n)
	}
}
