package core

import (
	"runtime"
	"testing"
	"time"
)

// expectGoroutinesBelow polls until the live goroutine count drops to at
// most want, failing after a generous deadline. Used to prove that waiting
// goroutines are actually released — a queue that loses wakeups strands
// its waiters forever.
func expectGoroutinesBelow(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not drain: %d > %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDualQueueNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	q := NewDualQueue[int](WaitConfig{})
	for round := 0; round < 50; round++ {
		done := make(chan struct{})
		go func() {
			for i := 0; i < 20; i++ {
				q.Put(i)
			}
			close(done)
		}()
		for i := 0; i < 20; i++ {
			q.Take()
		}
		<-done
	}
	// Timed waiters that expire must also vanish.
	for i := 0; i < 20; i++ {
		go q.OfferTimeout(i, time.Millisecond)
		go q.PollTimeout(time.Millisecond)
	}
	expectGoroutinesBelow(t, base+2)
}

func TestDualStackNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	q := NewDualStack[int](WaitConfig{})
	for round := 0; round < 50; round++ {
		done := make(chan struct{})
		go func() {
			for i := 0; i < 20; i++ {
				q.Put(i)
			}
			close(done)
		}()
		for i := 0; i < 20; i++ {
			q.Take()
		}
		<-done
	}
	for i := 0; i < 20; i++ {
		go q.OfferTimeout(i, time.Millisecond)
		go q.PollTimeout(time.Millisecond)
	}
	expectGoroutinesBelow(t, base+2)
}

func TestDualQueueCleanMeChain(t *testing.T) {
	// Exercise the deferred-cleaning bookkeeping across multiple
	// cancellations at the tail: a live producer pins the head while a
	// sequence of timed offers cancel behind it, each becoming (briefly)
	// an uncleanable tail node whose predecessor lands in cleanMe.
	q := NewDualQueue[int](WaitConfig{})
	go q.Put(1)
	waitLen[int](t, q, 1)
	for i := 0; i < 10; i++ {
		if q.OfferTimeout(100+i, 2*time.Millisecond) {
			t.Fatalf("offer %d unexpectedly matched", i)
		}
	}
	// The canceled chain must not be observable as live waiters...
	if n := q.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1 (only the live producer)", n)
	}
	// ...and deferred cleaning must keep reclaiming while the head is
	// pinned: each new cancellation's clean() unlinks roughly every other
	// predecessor (as in Java 6 — a cleanMe record can go stale when its
	// saved predecessor is itself unlinked), so the debris is bounded by
	// a fraction of the burst, never the whole burst plus growth.
	if n := countQueueNodes(q); n > 7 {
		t.Fatalf("%d nodes linger; deferred cleaning is not reclaiming", n)
	}
	// The pinned producer still transfers — the consumer sweeps canceled
	// nodes out of its way as it searches for the live one.
	if got := q.Take(); got != 1 {
		t.Fatalf("Take = %d, want 1", got)
	}
	// A subsequent operation drains the remaining canceled debris from
	// the head; after it, the structure is clean.
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll fabricated a value from canceled nodes")
	}
	if n := countQueueNodes(q); n > 1 {
		t.Fatalf("%d nodes linger after the head swept past the debris", n)
	}
	// And the queue is fully functional afterwards.
	done := make(chan int)
	go func() { done <- q.Take() }()
	waitLen[int](t, q, 1)
	q.Put(2)
	if got := <-done; got != 2 {
		t.Fatalf("Take = %d, want 2", got)
	}
}

// leakProbe allocates a value with a finalizer and returns it plus a
// channel closed when the collector reclaims it.
func leakProbe() (*[]byte, chan struct{}) {
	collected := make(chan struct{})
	v := &[]byte{1, 2, 3}
	runtime.SetFinalizer(v, func(*[]byte) { close(collected) })
	return v, collected
}

// expectCollected GCs until the probe's finalizer runs, failing if the value
// stays reachable — which, with the structure still alive, means a pool (or
// lingering node) retained the user's value.
func expectCollected(t *testing.T, what string, collected chan struct{}) {
	t.Helper()
	for i := 0; i < 50; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("%s still reachable after GC: a pool or dead node retains the user value", what)
}

// TestDualQueuePoolsRetainNoUserValues proves the scrubbing half of the
// recycling doctrine end to end: values that traveled through pooled item
// boxes — a completed hand-off (the taker recycles the producer's box) and
// an abandoned offer (the producer reclaims its own box) — must become
// garbage once the operations finish, even though the boxes themselves stay
// cached in the live queue's pool.
func TestDualQueuePoolsRetainNoUserValues(t *testing.T) {
	q := NewDualQueue[*[]byte](WaitConfig{})

	transferred, c1 := leakProbe()
	done := make(chan struct{})
	go func() { q.Put(transferred); close(done) }()
	if got := q.Take(); got != transferred {
		t.Fatal("Take returned a different value than Put sent")
	}
	<-done

	abandoned, c2 := leakProbe()
	if q.OfferTimeout(abandoned, time.Millisecond) {
		t.Fatal("offer on an empty queue unexpectedly matched")
	}

	transferred, abandoned = nil, nil
	expectCollected(t, "transferred value", c1)
	expectCollected(t, "abandoned offer's value", c2)
	q.Offer(nil) // keep q alive past the GC loop, and prove it still works
}

// TestDualStackDeadNodesRetainNoUserValues is the stack-side scrub proof:
// an abandoned datum rides in its node's embedded box, and clean zeroes it,
// so the value is collectable even while the dead node itself lingers (it
// may stay linked as debris until a later sweep, and Go's GC offers no
// finalizer-like hook for when that happens).
func TestDualStackDeadNodesRetainNoUserValues(t *testing.T) {
	q := NewDualStack[*[]byte](WaitConfig{})

	transferred, c1 := leakProbe()
	done := make(chan struct{})
	go func() { q.Put(transferred); close(done) }()
	if got := q.Take(); got != transferred {
		t.Fatal("Take returned a different value than Put sent")
	}
	<-done

	// Bury an abandoned offer beneath a live waiter so its node plausibly
	// lingers linked; the embedded box must be scrubbed regardless.
	abandoned, c2 := leakProbe()
	if q.OfferTimeout(abandoned, time.Millisecond) {
		t.Fatal("offer on an empty stack unexpectedly matched")
	}

	transferred, abandoned = nil, nil
	expectCollected(t, "transferred value", c1)
	expectCollected(t, "abandoned offer's value", c2)
	q.Offer(nil)
}

// TestPoolScrubbingWhitebox checks the scrub invariants at the pool
// boundary directly: nothing enters a pool still referencing user data or
// stack/queue links. These invariants are what make the close-sentinel and
// cancellation logic sound across recycling — item words are compared
// against sentinel pointers by identity, so a recycled box or spare that
// leaked an old reference could alias a live comparison.
func TestPoolScrubbingWhitebox(t *testing.T) {
	v := new(int)

	q := NewDualQueue[*int](WaitConfig{})
	b := q.getBox(v)
	q.putBox(b)
	if b.v != nil {
		t.Error("queue putBox left the user value in the pooled box")
	}
	n := q.getNode(true, false)
	n.item.Store(b)
	q.putSpare(n)
	if n.item.Load() != nil {
		t.Error("queue putSpare left the item pointer in the pooled spare")
	}

	s := NewDualStack[*int](WaitConfig{})
	sn := s.getNode(modeData)
	sn.box.v = v
	sn.item.Store(&sn.box)
	sn.next.Store(&snode[*int]{})
	s.putSpare(sn)
	if sn.box.v != nil || sn.item.Load() != nil || sn.next.Load() != nil {
		t.Error("stack putSpare left value or links in the pooled spare")
	}

	// clean must scrub a dead node's embedded box even though the node
	// itself is never pooled.
	dead := s.getNode(modeData)
	dead.box.v = v
	dead.item.Store(&dead.box)
	dead.match.Store(dead) // self-matched: canceled
	s.clean(dead)
	if dead.box.v != nil {
		t.Error("stack clean left the user value in the dead node's box")
	}
}

func TestDualStackCancellationBurstThenUse(t *testing.T) {
	// Mirror of the cleanMe chain test for the stack: a live producer is
	// buried under a burst of canceled offers; takes must skip the debris
	// and reach it, and the debris must be swept.
	q := NewDualStack[int](WaitConfig{})
	go q.Put(1)
	waitLen[int](t, q, 1)
	for i := 0; i < 10; i++ {
		if q.OfferTimeout(100+i, 2*time.Millisecond) {
			t.Fatalf("offer %d unexpectedly matched", i)
		}
	}
	if got := q.Take(); got != 1 {
		t.Fatalf("Take = %d, want 1 (canceled nodes must be skipped)", got)
	}
	if n := countStackNodes(q); n > 2 {
		t.Fatalf("%d nodes linger after the burst was consumed", n)
	}
}
