package core

import (
	"testing"
	"time"
)

// These tests construct queue states directly to pin down clean()'s
// branches, which are hard to reach deterministically through the public
// API because they depend on precise interleavings.

// buildQueue links the given nodes behind the dummy and fixes up tail.
func buildQueue(q *DualQueue[int], nodes ...*qnode[int]) {
	cur := q.head.Load()
	for _, n := range nodes {
		cur.next.Store(n)
		cur = n
	}
	q.tail.Store(cur)
}

func dataNode(q *DualQueue[int], v int) *qnode[int] {
	n := &qnode[int]{isData: true}
	n.item.Store(&qitem[int]{v: v})
	return n
}

func canceledNode(q *DualQueue[int]) *qnode[int] {
	n := &qnode[int]{isData: true}
	n.item.Store(q.canceled)
	return n
}

func TestCleanUnlinksInteriorNodeImmediately(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	live1 := dataNode(q, 1)
	dead := canceledNode(q)
	live2 := dataNode(q, 2)
	buildQueue(q, live1, dead, live2)

	q.clean(live1, dead)
	if live1.next.Load() != live2 {
		t.Fatal("interior canceled node not unlinked")
	}
	// The queue must still deliver both live values in order.
	if v, ok := q.Poll(); !ok || v != 1 {
		t.Fatalf("Poll = (%d,%v), want (1,true)", v, ok)
	}
	if v, ok := q.Poll(); !ok || v != 2 {
		t.Fatalf("Poll = (%d,%v), want (2,true)", v, ok)
	}
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll fabricated a third value")
	}
}

func TestCleanDefersTailNodeViaCleanMe(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	live := dataNode(q, 1)
	dead := canceledNode(q)
	buildQueue(q, live, dead)

	q.clean(live, dead)
	// The tail node cannot be unlinked; its predecessor must be saved.
	if q.cleanMe.Load() != live {
		t.Fatal("cleanMe does not record the canceled tail's predecessor")
	}
	if live.next.Load() != dead {
		t.Fatal("tail node was unlinked while it was the tail")
	}
}

func TestCleanFlushesStaleCleanMe(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	live := dataNode(q, 1)
	dead := canceledNode(q)
	buildQueue(q, live, dead)

	// Plant a stale record: the dummy's successor (live) is not
	// canceled, so this cleanMe entry is garbage a later clean must
	// discard before saving its own.
	q.cleanMe.Store(q.head.Load())

	q.clean(live, dead)
	if got := q.cleanMe.Load(); got != live {
		t.Fatalf("stale cleanMe not replaced: got %p, want pred of canceled tail", got)
	}
}

func TestCleanFlushesPreviousDeferredNode(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	live := dataNode(q, 1)
	dead1 := canceledNode(q)
	dead2 := canceledNode(q)
	buildQueue(q, live, dead1, dead2)
	// dead1 was deferred earlier (it was the tail then).
	q.cleanMe.Store(live)

	// Cleaning dead2 (current tail) must first unlink dead1 via the
	// saved record, then save dead2's own predecessor.
	q.clean(dead1, dead2)
	if live.next.Load() != dead2 {
		t.Fatal("previously deferred node not unlinked by later clean")
	}
	if q.cleanMe.Load() != dead1 {
		t.Fatal("new deferred record not installed")
	}
	// Delivery still works.
	if v, ok := q.Poll(); !ok || v != 1 {
		t.Fatalf("Poll = (%d,%v), want (1,true)", v, ok)
	}
}

func TestCleanEarlyExitWhenAlreadyUnlinked(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	live := dataNode(q, 1)
	dead := canceledNode(q)
	other := dataNode(q, 2)
	buildQueue(q, live, other)
	// dead was already spliced out by a helper: pred.next != dead.
	dead.next.Store(other)

	q.clean(live, dead) // must return promptly without corrupting links
	if live.next.Load() != other {
		t.Fatal("clean disturbed an already-consistent list")
	}
}

func TestAdvanceHeadSelfLinksRetiredNode(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	n := dataNode(q, 1)
	buildQueue(q, n)
	old := q.head.Load()
	q.advanceHead(old, n)
	if q.head.Load() != n {
		t.Fatal("head not advanced")
	}
	if !isOffList(old) {
		t.Fatal("retired head not self-linked")
	}
	// advanceHead with a stale head must be a no-op.
	stale := dataNode(q, 9)
	q.advanceHead(stale, n)
	if q.head.Load() != n {
		t.Fatal("advanceHead with stale head moved the head")
	}
}

func TestCleanSweepsCanceledHeadSuccessor(t *testing.T) {
	q := NewDualQueue[int](WaitConfig{})
	dead := canceledNode(q)
	live := dataNode(q, 5)
	tailDead := canceledNode(q)
	buildQueue(q, dead, live, tailDead)

	// Cleaning the canceled tail first retires the canceled node at the
	// head (the hn.isCancelled branch).
	q.clean(live, tailDead)
	if q.head.Load().next.Load() != live && q.head.Load() != dead {
		t.Fatal("canceled head successor not retired")
	}
	if v, ok := q.Poll(); !ok || v != 5 {
		t.Fatalf("Poll = (%d,%v), want (5,true)", v, ok)
	}
}

func TestEngageOfferFulfillsDespiteExpiredDeadline(t *testing.T) {
	// A zero-patience offer must still fulfill a waiting consumer: the
	// "can't wait" exit applies only when enqueueing would be needed.
	q := NewDualQueue[int](WaitConfig{})
	got := make(chan int)
	go func() { got <- q.Take() }()
	waitLen[int](t, q, 1)
	if !q.Offer(3) {
		t.Fatal("zero-patience Offer failed with a waiting consumer")
	}
	if v := <-got; v != 3 {
		t.Fatalf("Take = %d, want 3", v)
	}
}

func TestFinishForgetsReferences(t *testing.T) {
	// After a fulfilled wait, the node must not retain the waiter (and a
	// fulfilled request node must not retain the data) — the paper's
	// "forget references" pragmatic, which keeps blocked threads from
	// pinning garbage.
	q := NewDualQueue[int](WaitConfig{})
	done := make(chan int)
	go func() { done <- q.Take() }()
	waitLen[int](t, q, 1)
	// Snapshot the request node before fulfilling it.
	node := q.head.Load().next.Load()
	q.Put(8)
	if got := <-done; got != 8 {
		t.Fatalf("Take = %d", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for node.waiter.Load() != nil {
		if time.Now().After(deadline) {
			t.Fatal("fulfilled node still holds its waiter reference")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if x := node.item.Load(); x != q.canceled {
		t.Fatal("fulfilled request node still holds the data reference")
	}
}

// --- dual stack clean() branches ---

func stackDataNode(v int) *snode[int] {
	n := &snode[int]{mode: modeData}
	n.item.Store(&qitem[int]{v: v})
	return n
}

func stackCanceledNode() *snode[int] {
	n := &snode[int]{mode: modeData}
	n.match.Store(n) // self-match = canceled
	return n
}

// buildStack links nodes top-to-bottom and installs the head.
func buildStack(q *DualStack[int], nodes ...*snode[int]) {
	for i := 0; i < len(nodes)-1; i++ {
		nodes[i].next.Store(nodes[i+1])
	}
	if len(nodes) > 0 {
		q.head.Store(nodes[0])
	}
}

func TestStackCleanAbsorbsCanceledHead(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	deadTop := stackCanceledNode()
	live := stackDataNode(5)
	deadBottom := stackCanceledNode()
	buildStack(q, deadTop, live, deadBottom)

	q.clean(deadBottom)
	// The canceled top must be gone; the live node must be reachable.
	if h := q.head.Load(); h != live {
		t.Fatalf("head = %p, want the live node", h)
	}
	if v, ok := q.Poll(); !ok || v != 5 {
		t.Fatalf("Poll = (%d,%v), want (5,true)", v, ok)
	}
}

func TestStackCleanUnsplicesEmbeddedNode(t *testing.T) {
	q := NewDualStack[int](WaitConfig{})
	live1 := stackDataNode(1)
	dead := stackCanceledNode()
	live2 := stackDataNode(2)
	buildStack(q, live1, dead, live2)

	q.clean(dead)
	if live1.next.Load() != live2 {
		t.Fatal("embedded canceled node not unspliced")
	}
	// LIFO delivery of the two live values.
	if v, ok := q.Poll(); !ok || v != 1 {
		t.Fatalf("Poll = (%d,%v), want (1,true)", v, ok)
	}
	if v, ok := q.Poll(); !ok || v != 2 {
		t.Fatalf("Poll = (%d,%v), want (2,true)", v, ok)
	}
}

func TestStackCleanBoundedByPast(t *testing.T) {
	// clean(s) sweeps only down to s's recorded successor; deeper
	// canceled nodes are someone else's responsibility (their owners
	// called clean too). Build [dead1, s(dead), past, deadDeep] and
	// check deadDeep is untouched by cleaning s.
	q := NewDualStack[int](WaitConfig{})
	dead1 := stackCanceledNode()
	s := stackCanceledNode()
	past := stackDataNode(7)
	deadDeep := stackCanceledNode()
	bottom := stackDataNode(8)
	buildStack(q, dead1, s, past, deadDeep, bottom)

	q.clean(s)
	if past.next.Load() != deadDeep {
		t.Fatal("clean swept past its recorded bound")
	}
	// And the live values are still deliverable (the deep canceled node
	// is skipped when it surfaces).
	if v, ok := q.Poll(); !ok || v != 7 {
		t.Fatalf("Poll = (%d,%v), want (7,true)", v, ok)
	}
	if v, ok := q.Poll(); !ok || v != 8 {
		t.Fatalf("Poll = (%d,%v), want (8,true)", v, ok)
	}
}

func TestStackTryMatchHelpedSemantics(t *testing.T) {
	// tryMatch must report success when the match was already made with
	// the same fulfiller (the helped case) and failure for a different
	// one.
	m := stackDataNode(1)
	f := &snode[int]{mode: modeRequest | modeFulfilling}
	if !tryMatch(m, f) {
		t.Fatal("tryMatch failed on an unmatched node")
	}
	if !tryMatch(m, f) {
		t.Fatal("tryMatch (helped case) did not report success")
	}
	other := &snode[int]{mode: modeRequest | modeFulfilling}
	if tryMatch(m, other) {
		t.Fatal("tryMatch succeeded with a different fulfiller")
	}
}
