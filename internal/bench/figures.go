package bench

import (
	"fmt"

	"synchq/internal/stats"
)

// The paper's sweep levels. PairLevels is the x-axis of Figures 3 and 6
// (pairs / threads); SingleLevels is the x-axis of Figures 4 and 5
// (consumers / producers opposite a singleton).
var (
	PairLevels   = []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
	SingleLevels = []int{1, 2, 3, 5, 8, 12, 18, 27, 41, 62}
)

// SweepOpts parameterizes a figure regeneration.
type SweepOpts struct {
	// Transfers per measurement cell; zero selects a default that keeps
	// the slowest baselines tractable.
	Transfers int64
	// Levels overrides the figure's default x-axis.
	Levels []int
	// Repeats per cell; the minimum is reported (least-noise estimator
	// for a fixed amount of work). Zero selects 3.
	Repeats int
	// Extras adds the Go channel and naive queue series.
	Extras bool
	// Cores, when non-empty, restricts the scaling sweep to the named
	// series (by exact series name, e.g. "queue", "seg",
	// "queue+shard+elim") so CI can gate a reduced sweep quickly. Figures
	// other than scaling ignore it.
	Cores []string
	// Progress, if non-nil, is called before each cell is measured.
	Progress func(figure int, algo string, level int)
}

func (o SweepOpts) withDefaults(defaultLevels []int, defaultTransfers int64) SweepOpts {
	if o.Transfers == 0 {
		o.Transfers = defaultTransfers
	}
	if len(o.Levels) == 0 {
		o.Levels = defaultLevels
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	return o
}

// measure runs one cell: repeats runs, minimum ns/transfer.
func measure(a Algorithm, producers, consumers int, transfers int64, repeats int) float64 {
	best := 0.0
	for r := 0; r < repeats; r++ {
		res := RunHandoff(a.New(), producers, consumers, transfers, nil)
		ns := res.NsPerTransfer()
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// columnNames lists the series labels for a sweep.
func columnNames(algos []Algorithm) []string {
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name
	}
	return names
}

// Figure3 regenerates "Synchronous handoff: N producers, N consumers":
// ns/transfer as the number of producer/consumer pairs sweeps the paper's
// levels.
func Figure3(o SweepOpts) *stats.Table {
	o = o.withDefaults(PairLevels, 20000)
	algos := Algorithms(o.Extras)
	t := stats.NewTable("Figure 3: synchronous handoff, N producers : N consumers", "pairs", "ns/transfer", columnNames(algos))
	for _, level := range o.Levels {
		for _, a := range algos {
			if o.Progress != nil {
				o.Progress(3, a.Name, level)
			}
			ns := measure(a, level, level, o.Transfers, o.Repeats)
			t.Set(fmt.Sprint(level), a.Name, ns)
		}
	}
	return t
}

// Figure4 regenerates "Synchronous handoff: 1 producer, N consumers".
func Figure4(o SweepOpts) *stats.Table {
	o = o.withDefaults(SingleLevels, 20000)
	algos := Algorithms(o.Extras)
	t := stats.NewTable("Figure 4: synchronous handoff, 1 producer : N consumers", "consumers", "ns/transfer", columnNames(algos))
	for _, level := range o.Levels {
		for _, a := range algos {
			if o.Progress != nil {
				o.Progress(4, a.Name, level)
			}
			ns := measure(a, 1, level, o.Transfers, o.Repeats)
			t.Set(fmt.Sprint(level), a.Name, ns)
		}
	}
	return t
}

// Figure5 regenerates "Synchronous handoff: N producers, 1 consumer".
func Figure5(o SweepOpts) *stats.Table {
	o = o.withDefaults(SingleLevels, 20000)
	algos := Algorithms(o.Extras)
	t := stats.NewTable("Figure 5: synchronous handoff, N producers : 1 consumer", "producers", "ns/transfer", columnNames(algos))
	for _, level := range o.Levels {
		for _, a := range algos {
			if o.Progress != nil {
				o.Progress(5, a.Name, level)
			}
			ns := measure(a, level, 1, o.Transfers, o.Repeats)
			t.Set(fmt.Sprint(level), a.Name, ns)
		}
	}
	return t
}
