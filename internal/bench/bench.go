// Package bench is the measurement harness that regenerates the paper's
// evaluation: synchronous hand-off microbenchmarks at producer:consumer
// ratios N:N (Figure 3), 1:N (Figure 4), and N:1 (Figure 5), and the
// cached-thread-pool macrobenchmark (Figure 6), each swept over the
// paper's concurrency levels with one series per algorithm.
package bench

import (
	"sync"
	"time"

	"synchq/internal/baseline"
	"synchq/internal/core"
	"synchq/internal/verify"
	"synchq/pool"
)

// SQ is the minimal surface the hand-off benchmarks drive. Payloads are
// int64 so values can encode producer ID and sequence number for
// verification.
type SQ interface {
	Put(int64)
	Take() int64
}

// Algorithm describes one benchmarked implementation.
type Algorithm struct {
	// Name matches the series label used in the paper's figure legends
	// where applicable.
	Name string
	// New constructs a fresh queue for a measurement.
	New func() SQ
	// NewPoolQueue constructs the queue as a thread-pool hand-off
	// channel, or is nil if the algorithm lacks the timed interface the
	// pool needs (Hanson, Naive — the paper likewise omits them from
	// Figure 6).
	NewPoolQueue func() pool.Queue
	// Extra marks algorithms beyond the paper's five series (the Go
	// channel and the naive monitor queue).
	Extra bool
}

// Algorithms returns the benchmarked implementations in the paper's legend
// order; with extras, the Go-native channel and the naive queue are
// appended.
func Algorithms(extras bool) []Algorithm {
	algos := []Algorithm{
		{
			Name:         "SynchronousQueue",
			New:          func() SQ { return baseline.NewJava5[int64](false) },
			NewPoolQueue: func() pool.Queue { return baseline.NewJava5[pool.Task](false) },
		},
		{
			Name:         "SynchronousQueue (fair)",
			New:          func() SQ { return baseline.NewJava5[int64](true) },
			NewPoolQueue: func() pool.Queue { return baseline.NewJava5[pool.Task](true) },
		},
		{
			Name: "HansonSQ",
			New:  func() SQ { return baseline.NewHanson[int64]() },
		},
		{
			Name:         "New SynchQueue",
			New:          func() SQ { return core.NewDualStack[int64](core.WaitConfig{}) },
			NewPoolQueue: func() pool.Queue { return core.NewDualStack[pool.Task](core.WaitConfig{}) },
		},
		{
			Name:         "New SynchQueue (fair)",
			New:          func() SQ { return core.NewDualQueue[int64](core.WaitConfig{}) },
			NewPoolQueue: func() pool.Queue { return core.NewDualQueue[pool.Task](core.WaitConfig{}) },
		},
	}
	if extras {
		algos = append(algos,
			Algorithm{
				Name:         "GoChannel",
				New:          func() SQ { return chanSQ{baseline.NewChannel[int64]()} },
				NewPoolQueue: func() pool.Queue { return baseline.NewChannel[pool.Task]() },
				Extra:        true,
			},
			Algorithm{
				Name:  "NaiveSQ",
				New:   func() SQ { return baseline.NewNaive[int64]() },
				Extra: true,
			},
			Algorithm{
				Name:  "HansonSQ (fastpath)",
				New:   func() SQ { return baseline.NewHansonFast[int64]() },
				Extra: true,
			},
		)
	}
	return algos
}

// chanSQ adapts the channel baseline (whose Take returns T) to SQ.
type chanSQ struct{ c *baseline.Channel[int64] }

func (s chanSQ) Put(v int64) { s.c.Put(v) }
func (s chanSQ) Take() int64 { return s.c.Take() }

// ByName returns the named algorithm.
func ByName(name string) (Algorithm, bool) {
	for _, a := range Algorithms(true) {
		if a.Name == name {
			return a, true
		}
	}
	return Algorithm{}, false
}

// HandoffResult is one hand-off measurement.
type HandoffResult struct {
	Producers int
	Consumers int
	Transfers int64
	Elapsed   time.Duration
}

// NsPerTransfer returns the figure metric: average wall nanoseconds per
// transferred value.
func (r HandoffResult) NsPerTransfer() float64 {
	if r.Transfers == 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Transfers)
}

// split divides total into n near-equal non-negative quotas.
func split(total int64, n int) []int64 {
	q := make([]int64, n)
	base := total / int64(n)
	rem := total % int64(n)
	for i := range q {
		q[i] = base
		if int64(i) < rem {
			q[i]++
		}
	}
	return q
}

// encode packs a producer ID and sequence number into a unique value.
func encode(producer int, seq int64) int64 { return int64(producer)<<40 | seq }

// RunHandoff drives producers and consumers that transfer exactly
// `transfers` values through q as fast as they can — the paper's limiting
// case of producer-consumer applications as per-element processing cost
// approaches zero — and reports the elapsed wall time. If rec is non-nil,
// every operation is recorded for verification.
func RunHandoff(q SQ, producers, consumers int, transfers int64, rec *verify.Recorder) HandoffResult {
	putQuota := split(transfers, producers)
	takeQuota := split(transfers, consumers)

	var wg sync.WaitGroup
	start := make(chan struct{})

	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int, quota int64) {
			defer wg.Done()
			var log *verify.ThreadLog
			if rec != nil {
				log = rec.NewThread()
			}
			<-start
			for seq := int64(0); seq < quota; seq++ {
				v := encode(id, seq)
				if log != nil {
					inv := log.Begin()
					q.Put(v)
					log.End(verify.Put, v, inv, true)
				} else {
					q.Put(v)
				}
			}
		}(i, putQuota[i])
	}
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(quota int64) {
			defer wg.Done()
			var log *verify.ThreadLog
			if rec != nil {
				log = rec.NewThread()
			}
			<-start
			for seq := int64(0); seq < quota; seq++ {
				if log != nil {
					inv := log.Begin()
					v := q.Take()
					log.End(verify.Take, v, inv, true)
				} else {
					q.Take()
				}
			}
		}(takeQuota[i])
	}

	t0 := time.Now()
	close(start)
	wg.Wait()
	return HandoffResult{
		Producers: producers,
		Consumers: consumers,
		Transfers: transfers,
		Elapsed:   time.Since(t0),
	}
}
