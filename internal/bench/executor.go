package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"synchq/internal/core"
	"synchq/internal/metrics"
	"synchq/internal/stats"
	"synchq/pool"
)

// This file is the RPC-frontend macro-benchmark behind `sqbench -figure
// executor` and the committed BENCH_executor.json artifact: the executor
// tier (deadline-aware admission, bounded backlog with shedding, graceful
// drain) driven by a bursty arrival process, in the two production
// shapes — a cached pool on the synchronous hand-off queue and a bounded
// fixed pool on a buffered work queue with newest-wins shedding. `make
// bench-executor` runs its host-independent regression gate.

// executorService is the simulated per-request handler cost: long enough
// that an overload burst genuinely outruns the workers, short enough that
// a leg finishes in benchmark timescales.
const executorService = 20 * time.Microsecond

// executorWaitQueue adapts the dual queue to pool.WaitQueue, so the
// cached configuration measures the executor over the paper's hand-off
// fabric with real blocking offers and cancelable idle polls.
type executorWaitQueue struct{ q *core.DualQueue[pool.Task] }

func (e executorWaitQueue) Offer(t pool.Task) bool                        { return e.q.Offer(t) }
func (e executorWaitQueue) PollTimeout(d time.Duration) (pool.Task, bool) { return e.q.PollTimeout(d) }
func (e executorWaitQueue) Close()                                        { e.q.Close() }
func (e executorWaitQueue) OfferWait(t pool.Task, deadline time.Time, cancel <-chan struct{}) bool {
	return e.q.PutDeadline(t, deadline, cancel) == core.OK
}
func (e executorWaitQueue) PollWait(deadline time.Time, cancel <-chan struct{}) (pool.Task, bool) {
	v, st := e.q.TakeDeadline(deadline, cancel)
	return v, st == core.OK
}

// ExecutorLeg is one arrival-pattern phase of a run.
type ExecutorLeg struct {
	Name      string  `json:"name"`
	Offered   int64   `json:"offered"`
	Accepted  int64   `json:"accepted"`
	Rejected  int64   `json:"rejected"`
	Completed int64   `json:"completed"`
	Shed      int64   `json:"shed"`
	ElapsedNs int64   `json:"elapsed_ns"`
	NsPerTask float64 `json:"ns_per_task"`
}

// ExecutorRun is one executor configuration's full measurement: a paced
// steady leg, an overload burst leg, and a bounded graceful drain.
type ExecutorRun struct {
	Series          string      `json:"series"`
	Submitters      int         `json:"submitters"`
	Steady          ExecutorLeg `json:"steady"`
	Burst           ExecutorLeg `json:"burst"`
	DrainNs         int64       `json:"drain_ns"`
	DrainForced     bool        `json:"drain_forced"`
	Returned        int64       `json:"returned"`
	QueueWaitP50Ns  int64       `json:"queue_wait_p50_ns"`
	QueueWaitP99Ns  int64       `json:"queue_wait_p99_ns"`
	Spawned         int64       `json:"workers_spawned"`
	ConservationGap int64       `json:"conservation_gap"`
	LiveAtEnd       int64       `json:"live_at_end"`
}

// ExecutorReport is the JSON document behind BENCH_executor.json.
type ExecutorReport struct {
	Benchmark  string        `json:"benchmark"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	Requests   int64         `json:"requests_per_leg"`
	Runs       []ExecutorRun `json:"runs"`
}

// JSON renders the report with stable formatting so the committed
// artifact diffs cleanly across regenerations.
func (r ExecutorReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Gate is the regression check `make bench-executor` enforces. It is
// deliberately host-independent — no wall-clock thresholds — so a
// timeshared CI host cannot flake it:
//
//   - the conservation ledger balances exactly after the drain,
//   - both legs completed real work,
//   - the burst leg actually overloaded (something was shed or rejected),
//   - no worker goroutine outlived the drain.
func (r ExecutorReport) Gate() error {
	for _, run := range r.Runs {
		if run.ConservationGap != 0 {
			return fmt.Errorf("executor gate: %s: conservation gap %d (accepted != completed+shed+returned)",
				run.Series, run.ConservationGap)
		}
		if run.Steady.Completed == 0 || run.Burst.Completed == 0 {
			return fmt.Errorf("executor gate: %s: a leg completed no tasks (steady=%d burst=%d)",
				run.Series, run.Steady.Completed, run.Burst.Completed)
		}
		if run.Burst.Shed+run.Burst.Rejected == 0 {
			return fmt.Errorf("executor gate: %s: the burst leg neither shed nor rejected — overload never bit",
				run.Series)
		}
		if run.LiveAtEnd != 0 {
			return fmt.Errorf("executor gate: %s: %d workers still live after drain", run.Series, run.LiveAtEnd)
		}
	}
	return nil
}

// executorSeries is one benchmarked configuration.
type executorSeries struct {
	name  string
	build func(h *metrics.Handle, submitters int) *pool.Pool
	// steadyDeadline / burstDeadline are the per-request SLOs.
	steadyDeadline, burstDeadline time.Duration
}

func executorSeriesDefs(procs int) []executorSeries {
	maxWorkers := procs * 4
	if maxWorkers > 64 {
		maxWorkers = 64
	}
	return []executorSeries{
		{
			// The paper's §6 shape: a cached pool over the synchronous
			// hand-off queue, with bounded blocking backpressure.
			name: "cached-synchronous",
			build: func(h *metrics.Handle, _ int) *pool.Pool {
				q := executorWaitQueue{core.NewDualQueue[pool.Task](core.WaitConfig{})}
				return pool.New(q, pool.Config{
					KeepAlive:          50 * time.Millisecond,
					MaxWorkers:         maxWorkers,
					OnSaturation:       pool.BlockWithDeadline,
					SaturationPatience: 100 * time.Microsecond,
					Metrics:            h,
				})
			},
			steadyDeadline: 100 * time.Millisecond,
			burstDeadline:  2 * time.Millisecond,
		},
		{
			// The load-shedding frontend shape: a bounded fixed pool over
			// a buffered work queue, newest-wins under overload.
			name: "buffered-shedding",
			build: func(h *metrics.Handle, _ int) *pool.Pool {
				return pool.New(pool.NewBuffered(), pool.Config{
					KeepAlive:    50 * time.Millisecond,
					CoreWorkers:  procs,
					MaxWorkers:   procs,
					MaxPending:   64,
					OnSaturation: pool.ShedOldest,
					Metrics:      h,
				})
			},
			steadyDeadline: 100 * time.Millisecond,
			burstDeadline:  2 * time.Millisecond,
		},
	}
}

// executorLegStats snapshots the counters a leg's deltas are taken from.
type executorLegStats struct{ accepted, rejected, completed, shed int64 }

func executorSnap(p *pool.Pool) executorLegStats {
	st := p.Stats()
	return executorLegStats{st.Accepted, st.Rejected + st.Expired, st.Completed, st.Shed}
}

// runExecutorLeg drives one arrival pattern: `submitters` goroutines
// offering `requests` total simulated RPCs with the given deadline.
// pace > 0 spaces consecutive submissions (steady load); pace == 0 fires
// salvo bursts back to back (overload).
func runExecutorLeg(p *pool.Pool, name string, submitters int, requests int64, deadline, pace time.Duration) ExecutorLeg {
	quota := split(requests, submitters)
	before := executorSnap(p)
	handler := func() {
		t0 := time.Now()
		for time.Since(t0) < executorService {
		}
	}

	var wg sync.WaitGroup
	var offered int64
	start := make(chan struct{})
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			<-start
			for j := int64(0); j < n; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), deadline)
				p.SubmitContext(ctx, handler)
				cancel()
				if pace > 0 {
					time.Sleep(pace)
				} else if j%50 == 49 {
					// Bursty arrivals: salvos of 50 with a gap.
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(quota[i])
	}
	for _, n := range quota {
		offered += n
	}

	t0 := time.Now()
	close(start)
	wg.Wait()
	// Let the accepted backlog of this leg finish before measuring, so
	// leg deltas do not bleed into each other (bounded wait: the backlog
	// is capped and every pending task either runs or sheds).
	for i := 0; i < 4000; i++ {
		st := p.Stats()
		if st.Pending == 0 && st.Active == 0 {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	elapsed := time.Since(t0)

	after := executorSnap(p)
	leg := ExecutorLeg{
		Name:      name,
		Offered:   offered,
		Accepted:  after.accepted - before.accepted,
		Rejected:  after.rejected - before.rejected,
		Completed: after.completed - before.completed,
		Shed:      after.shed - before.shed,
		ElapsedNs: elapsed.Nanoseconds(),
	}
	if leg.Completed > 0 {
		leg.NsPerTask = float64(leg.ElapsedNs) / float64(leg.Completed)
	}
	return leg
}

// Executor runs the macro-benchmark and returns both renderings: the
// aligned table for the terminal and the JSON report for the artifact.
func Executor(o SweepOpts) (*stats.Table, ExecutorReport) {
	procs := runtime.GOMAXPROCS(0)
	submitters := procs * 2
	requests := o.Transfers
	if requests <= 0 {
		requests = 20000
	}

	report := ExecutorReport{
		Benchmark:  "executor",
		GOMAXPROCS: procs,
		NumCPU:     runtime.NumCPU(),
		Requests:   requests,
	}
	cols := []string{"steady ns/task", "burst ns/task", "burst shed", "burst rejected", "returned", "drain µs"}
	t := stats.NewTable("Executor: bursty RPC frontend (admission, shedding, graceful drain)",
		"series", "", cols)

	for _, s := range executorSeriesDefs(procs) {
		if o.Progress != nil {
			o.Progress(0, s.name+" [executor]", submitters)
		}
		h := metrics.New()
		p := s.build(h, submitters)

		run := ExecutorRun{Series: s.name, Submitters: submitters}
		// Steady leg: arrivals paced near capacity, generous SLOs.
		pace := executorService * time.Duration(submitters) / time.Duration(procs)
		run.Steady = runExecutorLeg(p, "steady", submitters, requests, s.steadyDeadline, pace)
		// Burst leg: salvo arrivals far over capacity, tight SLOs.
		run.Burst = runExecutorLeg(p, "burst", submitters, requests, s.burstDeadline, 0)

		// Graceful drain with a tight bound, mid-keep-alive: phase 2
		// usually finishes (the legs waited out their backlogs), but the
		// bound keeps a loaded CI host from hanging the benchmark.
		dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		d0 := time.Now()
		res := p.Drain(dctx)
		cancel()
		run.DrainNs = time.Since(d0).Nanoseconds()
		run.DrainForced = res.Forced
		run.Returned = int64(len(res.Returned))

		st := p.Stats()
		run.Spawned = st.Spawned
		run.ConservationGap = st.ConservationGap()
		run.LiveAtEnd = st.Live
		hg := h.Histograms().Get(metrics.QueueWaitNs)
		if hg.Count() > 0 {
			run.QueueWaitP50Ns = int64(hg.Percentile(0.50))
			run.QueueWaitP99Ns = int64(hg.Percentile(0.99))
		}
		report.Runs = append(report.Runs, run)

		t.Set(s.name, cols[0], run.Steady.NsPerTask)
		t.Set(s.name, cols[1], run.Burst.NsPerTask)
		t.Set(s.name, cols[2], float64(run.Burst.Shed))
		t.Set(s.name, cols[3], float64(run.Burst.Rejected))
		t.Set(s.name, cols[4], float64(run.Returned))
		t.Set(s.name, cols[5], float64(run.DrainNs)/1e3)
	}
	return t, report
}
