package bench

import (
	"fmt"
	"runtime"
	"time"

	"synchq/internal/core"
	"synchq/internal/exchanger"
	"synchq/internal/stats"
)

// AblationSpin sweeps the wait policy (Ablation A in DESIGN.md): the
// paper's spin-then-park default against park-only and heavy-spin
// variants, for both new algorithms, across the pair levels.
func AblationSpin(o SweepOpts) *stats.Table {
	o = o.withDefaults([]int{1, 4, 16}, 20000)
	policies := []struct {
		name string
		cfg  core.WaitConfig
	}{
		{"default", core.WaitConfig{}},
		{"park-only", core.WaitConfig{TimedSpins: -1, UntimedSpins: -1}},
		{"spin-heavy", core.WaitConfig{TimedSpins: 512, UntimedSpins: 4096}},
	}
	var cols []string
	for _, pol := range policies {
		cols = append(cols, "stack/"+pol.name, "queue/"+pol.name)
	}
	t := stats.NewTable("Ablation A: wait policy (spin-then-park)", "pairs", "ns/transfer", cols)
	for _, level := range o.Levels {
		for _, pol := range policies {
			cfg := pol.cfg
			stack := Algorithm{New: func() SQ { return core.NewDualStack[int64](cfg) }}
			queue := Algorithm{New: func() SQ { return core.NewDualQueue[int64](cfg) }}
			t.Set(fmt.Sprint(level), "stack/"+pol.name,
				measure(stack, level, level, o.Transfers, o.Repeats))
			t.Set(fmt.Sprint(level), "queue/"+pol.name,
				measure(queue, level, level, o.Transfers, o.Repeats))
		}
	}
	return t
}

// AblationClean sweeps the cancellation path (Ablation B): offers against
// an absent consumer with the given patience, so every operation enqueues,
// times out, cancels, and is cleaned. Reported is ns per canceled
// operation; TestDualQueueTimeoutStormLeavesNoGarbage checks the
// complementary space bound.
func AblationClean(o SweepOpts) *stats.Table {
	o = o.withDefaults([]int{1}, 2000)
	patiences := []time.Duration{time.Microsecond, 100 * time.Microsecond}
	var cols []string
	for _, p := range patiences {
		cols = append(cols, "queue/"+p.String(), "stack/"+p.String())
	}
	t := stats.NewTable("Ablation B: cancellation + cleaning cost", "threads", "ns/op", cols)
	for _, level := range o.Levels {
		for _, p := range patiences {
			q := core.NewDualQueue[int64](core.WaitConfig{})
			t0 := time.Now()
			for i := int64(0); i < o.Transfers; i++ {
				q.OfferTimeout(i, p)
			}
			t.Set(fmt.Sprint(level), "queue/"+p.String(),
				float64(time.Since(t0).Nanoseconds())/float64(o.Transfers))

			s := core.NewDualStack[int64](core.WaitConfig{})
			t0 = time.Now()
			for i := int64(0); i < o.Transfers; i++ {
				s.OfferTimeout(i, p)
			}
			t.Set(fmt.Sprint(level), "stack/"+p.String(),
				float64(time.Since(t0).Nanoseconds())/float64(o.Transfers))
		}
	}
	return t
}

// elimSQ pairs an arena with a dual stack, mirroring synchq.EliminatingQueue
// without importing the public package (internal packages stay acyclic).
type elimSQ struct {
	q        *core.DualStack[int64]
	arena    *exchanger.Arena[int64]
	patience time.Duration
}

func newElimSQ(slots int, patience time.Duration) elimSQ {
	return elimSQ{
		q:        core.NewDualStack[int64](core.WaitConfig{}),
		arena:    exchanger.NewArena[int64](slots),
		patience: patience,
	}
}

func (e elimSQ) Put(v int64) {
	if e.arena.TryGive(v, e.patience) {
		return
	}
	e.q.Put(v)
}

func (e elimSQ) Take() int64 {
	if v, ok := e.arena.TryTake(e.patience); ok {
		return v
	}
	return e.q.Take()
}

// AblationElimination sweeps the elimination front-end (Ablation C)
// against the plain dual stack across pair levels; the paper predicts a
// win only under extreme contention.
func AblationElimination(o SweepOpts) *stats.Table {
	o = o.withDefaults([]int{4, 16, 64}, 20000)
	t := stats.NewTable("Ablation C: elimination front-end", "pairs", "ns/transfer",
		[]string{"plain stack", "eliminating"})
	for _, level := range o.Levels {
		plain := Algorithm{New: func() SQ { return core.NewDualStack[int64](core.WaitConfig{}) }}
		elim := Algorithm{New: func() SQ { return newElimSQ(0, 5*time.Microsecond) }}
		t.Set(fmt.Sprint(level), "plain stack",
			measure(plain, level, level, o.Transfers, o.Repeats))
		t.Set(fmt.Sprint(level), "eliminating",
			measure(elim, level, level, o.Transfers, o.Repeats))
	}
	return t
}

// ProcsSweep measures the paper's five algorithms at a fixed pair count
// while sweeping GOMAXPROCS — the "multiprogramming / preemption" axis.
// The paper reports its ordering holds "regardless of preemption or level
// of concurrency"; on a host with few CPUs this sweep is where the
// contention effects the paper measures become visible. GOMAXPROCS is
// restored afterwards.
func ProcsSweep(o SweepOpts, pairs int) *stats.Table {
	o = o.withDefaults([]int{1, 2, 4, 8, 16}, 20000)
	if pairs <= 0 {
		pairs = 16
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	algos := Algorithms(o.Extras)
	t := stats.NewTable(
		fmt.Sprintf("Preemption sweep: %d pairs, varying GOMAXPROCS", pairs),
		"procs", "ns/transfer", columnNames(algos))
	for _, procs := range o.Levels {
		runtime.GOMAXPROCS(procs)
		for _, a := range algos {
			if o.Progress != nil {
				o.Progress(0, a.Name, procs)
			}
			t.Set(fmt.Sprint(procs), a.Name,
				measure(a, pairs, pairs, o.Transfers, o.Repeats))
		}
	}
	return t
}
