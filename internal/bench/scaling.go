package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"synchq/internal/core"
	"synchq/internal/exchanger"
	"synchq/internal/segq"
	"synchq/internal/shard"
	"synchq/internal/stats"
)

// This file is the producer×consumer scaling sweep behind `sqbench -figure
// scaling` and the committed BENCH_scaling.json artifact: both dual
// structures, each plain, elimination-fronted (adaptive arena), sharded,
// and sharded+elimination, swept from one pair up to GOMAXPROCS pairs.
// It is the evaluation for the PR that added the adaptive arena and the
// shard fabric, and `make bench-scaling` runs its coarse regression gate.

// fabricSQ drives a shard fabric through the pairing surface. The adapter
// lives here, like elimSQ, so internal packages stay acyclic (bench must
// not import the public synchq package).
type fabricSQ struct{ f *shard.Fabric[int64] }

func (s fabricSQ) Put(v int64) { s.f.Put(v) }
func (s fabricSQ) Take() int64 { return s.f.Take() }

// newFabricSQ stripes the selected dual structure across the default
// (GOMAXPROCS-sized) shard count.
func newFabricSQ(fair bool) fabricSQ {
	return fabricSQ{shard.New(0, func(int) shard.Dual[int64] {
		if fair {
			return core.NewDualQueue[int64](core.WaitConfig{})
		}
		return core.NewDualStack[int64](core.WaitConfig{})
	})}
}

// newAutoFabricSQ builds the self-scaling fabric: same ceiling as the
// static stripe, but the effective width follows observed contention —
// collapsed to one shard at one pair, widening as pairs are added.
func newAutoFabricSQ() fabricSQ {
	return fabricSQ{shard.NewAuto(0, func(int) shard.Dual[int64] {
		return core.NewDualQueue[int64](core.WaitConfig{})
	})}
}

// adaptiveElimSQ fronts any pairing surface with a self-tuning elimination
// arena, mirroring synchq.NewEliminatingAdaptive.
type adaptiveElimSQ struct {
	arena *exchanger.Arena[int64]
	q     SQ
}

func newAdaptiveElimSQ(q SQ) adaptiveElimSQ {
	return adaptiveElimSQ{arena: exchanger.NewArenaAdaptive[int64](0), q: q}
}

func (e adaptiveElimSQ) Put(v int64) {
	if e.arena.TryGiveAdaptive(v) {
		return
	}
	e.q.Put(v)
}

func (e adaptiveElimSQ) Take() int64 {
	if v, ok := e.arena.TryTakeAdaptive(); ok {
		return v
	}
	return e.q.Take()
}

// scalingSeries enumerates the twelve swept configurations: {stack,
// queue} × {plain, +elim, +shard, +shard+elim}, the segmented core plain
// and sharded, and the self-scaling fabric over the fair queue ("auto")
// and over segmented shards ("auto+seg"). Names are stable — they are the
// JSON artifact's series keys.
func scalingSeries() []Algorithm {
	series := make([]Algorithm, 0, 12)
	for _, base := range []struct {
		name string
		fair bool
	}{{"stack", false}, {"queue", true}} {
		fair := base.fair
		plain := func() SQ {
			if fair {
				return core.NewDualQueue[int64](core.WaitConfig{})
			}
			return core.NewDualStack[int64](core.WaitConfig{})
		}
		series = append(series,
			Algorithm{Name: base.name, New: plain},
			Algorithm{Name: base.name + "+elim", New: func() SQ { return newAdaptiveElimSQ(plain()) }},
			Algorithm{Name: base.name + "+shard", New: func() SQ { return newFabricSQ(fair) }},
			Algorithm{Name: base.name + "+shard+elim", New: func() SQ { return newAdaptiveElimSQ(newFabricSQ(fair)) }},
		)
	}
	series = append(series,
		Algorithm{Name: "seg", New: func() SQ { return segq.New[int64](core.WaitConfig{}) }},
		Algorithm{Name: "seg+shard", New: func() SQ {
			return fabricSQ{shard.New(0, func(int) shard.Dual[int64] {
				return segq.New[int64](core.WaitConfig{})
			})}
		}},
		Algorithm{Name: "auto", New: func() SQ { return newAutoFabricSQ() }},
		Algorithm{Name: "auto+seg", New: func() SQ {
			return fabricSQ{shard.NewAuto(0, func(int) shard.Dual[int64] {
				return segq.New[int64](core.WaitConfig{})
			})}
		}},
	)
	return series
}

// filterSeries restricts series to the named subset (exact series names),
// preserving sweep order. An unknown name is reported rather than silently
// dropped so a typo in a CI -cores flag cannot quietly gate nothing.
func filterSeries(series []Algorithm, names []string) ([]Algorithm, error) {
	if len(names) == 0 {
		return series, nil
	}
	byName := make(map[string]bool, len(names))
	for _, n := range names {
		byName[n] = true
	}
	var kept []Algorithm
	for _, a := range series {
		if byName[a.Name] {
			kept = append(kept, a)
			delete(byName, a.Name)
		}
	}
	for n := range byName {
		return nil, fmt.Errorf("unknown scaling series %q (have: %s)", n, strings.Join(seriesNames(series), ","))
	}
	return kept, nil
}

func seriesNames(series []Algorithm) []string {
	names := make([]string, len(series))
	for i, a := range series {
		names[i] = a.Name
	}
	return names
}

// ValidateScalingCores checks a -cores selection against the sweep's
// series names, so CLI entry points can reject a typo with a friendly
// message instead of the panic Scaling reserves for programmer error.
func ValidateScalingCores(names []string) error {
	_, err := filterSeries(scalingSeries(), names)
	return err
}

// ScalingLevels is the sweep's default x-axis: powers of two from one pair
// up to and including GOMAXPROCS pairs.
func ScalingLevels() []int {
	max := runtime.GOMAXPROCS(0)
	var levels []int
	for l := 1; l < max; l *= 2 {
		levels = append(levels, l)
	}
	return append(levels, max)
}

// ScalingCell is one series' measurement at one pair level.
type ScalingCell struct {
	Pairs         int     `json:"pairs"`
	NsPerTransfer float64 `json:"ns_per_transfer"`
}

// ScalingSeries is one swept configuration.
type ScalingSeries struct {
	Name  string        `json:"name"`
	Cells []ScalingCell `json:"cells"`
}

// ScalingSummary is the headline comparison at the maximum pair count:
// the sharded, elimination-fronted fair queue and the segmented core,
// each against the plain fair queue — the configuration pairs the
// acceptance gates compare. Fields for series excluded by a Cores filter
// are zero.
type ScalingSummary struct {
	MaxPairs   int     `json:"max_pairs"`
	BaselineNs float64 `json:"baseline_ns_per_transfer"`      // plain "queue"
	ShardedNs  float64 `json:"sharded_ns_per_transfer"`       // "queue+shard+elim"
	Speedup    float64 `json:"speedup"`                       // BaselineNs / ShardedNs
	SegNs      float64 `json:"seg_ns_per_transfer,omitempty"` // "seg"
	SegSpeedup float64 `json:"seg_speedup,omitempty"`         // BaselineNs / SegNs
	// The self-scaling fabric's two headline numbers: at max pairs it
	// should ride the stripe (AutoSpeedup vs the plain queue, like the
	// static series), and at ONE pair it should have collapsed to a single
	// shard, so its cost over the plain queue — the collapse tax — stays
	// within a few percent instead of the static stripe's ~25%.
	AutoNs      float64 `json:"auto_ns_per_transfer,omitempty"` // "auto" at max pairs
	AutoSpeedup float64 `json:"auto_speedup,omitempty"`         // BaselineNs / AutoNs
	Baseline1Ns float64 `json:"baseline_1pair_ns,omitempty"`    // "queue" at 1 pair
	Auto1Ns     float64 `json:"auto_1pair_ns,omitempty"`        // "auto" at 1 pair
	AutoTax     float64 `json:"auto_collapse_tax,omitempty"`    // Auto1Ns / Baseline1Ns
	// Auto1Collapsed counts the one-pair auto repeats whose fabric ended
	// at effective width one — the behavioral record of the collapse the
	// tax ratio measures in wall-clock terms (see Gate for why both are
	// kept).
	Auto1Collapsed int `json:"auto_1pair_collapsed,omitempty"`
}

// ScalingReport is the JSON document behind BENCH_scaling.json.
type ScalingReport struct {
	Benchmark  string          `json:"benchmark"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	Transfers  int64           `json:"transfers"`
	Repeats    int             `json:"repeats"`
	Shards     int             `json:"shards"`
	Series     []ScalingSeries `json:"series"`
	Summary    ScalingSummary  `json:"summary"`
}

// JSON renders the report with stable formatting so the committed artifact
// diffs cleanly across regenerations.
func (r ScalingReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// gateFloorSingleCPU is the speedup floor on hosts with one hardware
// thread. Sharding exists to split cache-line traffic across cores; on a
// single CPU there are no cores to split across, the plain queue's CAS
// failure rate is already zero, and every striping layer is pure
// overhead. All the gate can honestly demand there is that the overhead
// stays bounded.
const gateFloorSingleCPU = 0.35

// gateAutoTax bounds the self-scaling fabric's one-pair collapse tax: at
// one pair the controller must have folded the fabric to a single shard,
// so the only residual cost over the plain queue is the fabric's
// dispatch (one mask load, one summary check). Five percent covers that
// honestly on real multicore.
const gateAutoTax = 1.05

// gateAutoTaxSingleCPU is the same bound for hosts with one hardware
// thread, where the sweep's "pair" is two goroutines timesharing one CPU
// and every scheduler quantum boundary lands in the measurement (the same
// convention as gateFloorSingleCPU: single-CPU numbers bound overhead,
// they do not demonstrate scaling). On such hosts even the plain queue's
// one-pair cell swings well over 1.5x run to run (the denominator of the
// tax ratio), so a ratio bound alone cannot be both honest and stable;
// when the ratio overshoots, the gate falls back to the behavioral check
// recorded in Auto1Collapsed — a majority of repeats must have finished
// the cell with the fabric folded back to width one, which is the
// regression the tax ratio exists to catch.
const gateAutoTaxSingleCPU = 1.4

// Gate is the coarse regression check `make bench-scaling` enforces: at
// the maximum pair count, every headline configuration present in the
// sweep — the sharded+adaptive fair queue, the segmented core — must not
// be slower than the plain fair queue. (The committed artifact is
// expected to show a much larger margin on real multicore; the gate is
// deliberately loose so a timeshared CI host does not flake it.) On a
// host with a single hardware thread the gate degrades to a
// bounded-overhead check — see gateFloorSingleCPU. A sweep narrowed by
// Cores gates only the pairs it measured; a sweep with no checkable pair
// is an error, not a silent pass.
func (r ScalingReport) Gate() error {
	floor := 1.0
	if r.NumCPU < 2 {
		floor = gateFloorSingleCPU
	}
	checked := 0
	if r.Summary.ShardedNs > 0 && r.Summary.BaselineNs > 0 {
		checked++
		if r.Summary.Speedup < floor {
			return fmt.Errorf("scaling gate: queue+shard+elim at %d pairs is %.0f ns/transfer vs %.0f unsharded (speedup %.2fx < %.2fx, numcpu=%d)",
				r.Summary.MaxPairs, r.Summary.ShardedNs, r.Summary.BaselineNs, r.Summary.Speedup, floor, r.NumCPU)
		}
	}
	if r.Summary.SegNs > 0 && r.Summary.BaselineNs > 0 {
		checked++
		if r.Summary.SegSpeedup < floor {
			return fmt.Errorf("scaling gate: seg at %d pairs is %.0f ns/transfer vs %.0f plain queue (speedup %.2fx < %.2fx, numcpu=%d)",
				r.Summary.MaxPairs, r.Summary.SegNs, r.Summary.BaselineNs, r.Summary.SegSpeedup, floor, r.NumCPU)
		}
	}
	if r.Summary.AutoNs > 0 && r.Summary.BaselineNs > 0 {
		checked++
		if r.Summary.AutoSpeedup < floor {
			return fmt.Errorf("scaling gate: auto at %d pairs is %.0f ns/transfer vs %.0f plain queue (speedup %.2fx < %.2fx, numcpu=%d)",
				r.Summary.MaxPairs, r.Summary.AutoNs, r.Summary.BaselineNs, r.Summary.AutoSpeedup, floor, r.NumCPU)
		}
	}
	// The collapse-tax gate: at one pair the self-scaling fabric must be
	// within gateAutoTax of the plain queue (gateAutoTaxSingleCPU on a
	// single-CPU host) — the whole point of adaptivity over the static
	// stripe's fixed ~25% one-pair overhead.
	if r.Summary.Auto1Ns > 0 && r.Summary.Baseline1Ns > 0 {
		checked++
		tax := gateAutoTax
		if r.NumCPU < 2 {
			tax = gateAutoTaxSingleCPU
		}
		if r.Summary.AutoTax > tax {
			// Single-CPU fallback: the ratio's denominator is scheduler
			// noise there, the recorded end widths are not (see
			// gateAutoTaxSingleCPU).
			collapsed := r.NumCPU < 2 && r.Summary.Auto1Collapsed*2 >= r.Repeats
			if !collapsed {
				return fmt.Errorf("scaling gate: auto at 1 pair is %.0f ns/transfer vs %.0f plain queue (collapse tax %.2fx > %.2fx, collapsed in %d/%d repeats, numcpu=%d)",
					r.Summary.Auto1Ns, r.Summary.Baseline1Ns, r.Summary.AutoTax, tax, r.Summary.Auto1Collapsed, r.Repeats, r.NumCPU)
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("scaling gate: no checkable pair in the sweep (need \"queue\" plus \"queue+shard+elim\", \"seg\" or \"auto\")")
	}
	return nil
}

// Scaling runs the sweep and returns both renderings: the aligned table
// for the terminal and the JSON report for the artifact. It panics on an
// unknown Cores name (the callers are CLI entry points whose -cores input
// is validated here).
func Scaling(o SweepOpts) (*stats.Table, ScalingReport) {
	o = o.withDefaults(ScalingLevels(), 20000)
	series, err := filterSeries(scalingSeries(), o.Cores)
	if err != nil {
		panic(err)
	}
	t := stats.NewTable("Scaling: N producers : N consumers, ± elimination ± sharding",
		"pairs", "ns/transfer", columnNames(series))

	report := ScalingReport{
		Benchmark:  "scaling",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Transfers:  o.Transfers,
		Repeats:    o.Repeats,
		Shards:     shard.DefaultShards(),
	}
	cells := make(map[string][]ScalingCell)
	autoCollapsed := 0
	for _, level := range o.Levels {
		for _, a := range series {
			if o.Progress != nil {
				o.Progress(0, a.Name+" [scaling]", level)
			}
			var ns float64
			if a.Name == "auto" && level == 1 {
				ns, autoCollapsed = measureAutoCollapse(a, o.Transfers, o.Repeats)
			} else {
				ns = measure(a, level, level, o.Transfers, o.Repeats)
			}
			t.Set(fmt.Sprint(level), a.Name, ns)
			cells[a.Name] = append(cells[a.Name], ScalingCell{Pairs: level, NsPerTransfer: ns})
		}
	}
	for _, a := range series {
		report.Series = append(report.Series, ScalingSeries{Name: a.Name, Cells: cells[a.Name]})
	}

	max := o.Levels[len(o.Levels)-1]
	report.Summary = ScalingSummary{MaxPairs: max}
	last := func(name string) float64 {
		for _, s := range report.Series {
			if s.Name == name {
				for _, c := range s.Cells {
					if c.Pairs == max {
						return c.NsPerTransfer
					}
				}
			}
		}
		return 0
	}
	report.Summary.BaselineNs = last("queue")
	report.Summary.ShardedNs = last("queue+shard+elim")
	if report.Summary.ShardedNs > 0 {
		report.Summary.Speedup = report.Summary.BaselineNs / report.Summary.ShardedNs
	}
	report.Summary.SegNs = last("seg")
	if report.Summary.SegNs > 0 {
		report.Summary.SegSpeedup = report.Summary.BaselineNs / report.Summary.SegNs
	}
	report.Summary.AutoNs = last("auto")
	if report.Summary.AutoNs > 0 {
		report.Summary.AutoSpeedup = report.Summary.BaselineNs / report.Summary.AutoNs
	}
	at1 := func(name string) float64 {
		for _, s := range report.Series {
			if s.Name == name {
				for _, c := range s.Cells {
					if c.Pairs == 1 {
						return c.NsPerTransfer
					}
				}
			}
		}
		return 0
	}
	report.Summary.Baseline1Ns = at1("queue")
	report.Summary.Auto1Ns = at1("auto")
	if report.Summary.Auto1Ns > 0 && report.Summary.Baseline1Ns > 0 {
		report.Summary.AutoTax = report.Summary.Auto1Ns / report.Summary.Baseline1Ns
		report.Summary.Auto1Collapsed = autoCollapsed
	}
	return t, report
}

// measureAutoCollapse is measure for the self-scaling fabric's one-pair
// cell: the same timing discipline (repeats runs, minimum ns/transfer),
// plus a per-repeat record of whether the fabric finished the run folded
// back to effective width one — the Auto1Collapsed count the single-CPU
// gate falls back on when the wall-clock tax ratio is noise-dominated.
func measureAutoCollapse(a Algorithm, transfers int64, repeats int) (float64, int) {
	best, collapsed := 0.0, 0
	for r := 0; r < repeats; r++ {
		q := a.New()
		res := RunHandoff(q, 1, 1, transfers, nil)
		if fs, ok := q.(fabricSQ); ok && fs.f.Shards() == 1 {
			collapsed++
		}
		ns := res.NsPerTransfer()
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best, collapsed
}

// ScalingFigure adapts Scaling to the figure registry (table only).
func ScalingFigure(o SweepOpts) *stats.Table {
	t, _ := Scaling(o)
	return t
}
