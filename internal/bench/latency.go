package bench

import (
	"encoding/json"
	"fmt"
	"runtime"

	"synchq/internal/core"
	"synchq/internal/metrics"
	"synchq/internal/stats"
)

// This file is the latency-observability benchmark behind `sqbench -figure
// latency` and the committed BENCH_latency.json artifact: for both dual
// structures it measures hand-off throughput with the latency histograms
// off and on, reports the instrumentation overhead, and digests the
// recorded wait/hand-off distributions (p50/p99/p999). `make bench-latency`
// runs its regression gate: enabling metrics must not tax the hot path by
// more than latencyGateMaxOverhead.

// LatencyDigest is the percentile summary of one recorded histogram, in
// nanoseconds (the percentile fields are log₂-bucket upper bounds; see
// metrics.BucketValue).
type LatencyDigest struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50_ns"`
	P99   int64 `json:"p99_ns"`
	P999  int64 `json:"p999_ns"`
	Max   int64 `json:"max_ns"`
}

// digestOf summarizes bucket counts, nil when nothing was recorded (so
// empty histograms vanish from the JSON artifact).
func digestOf(c metrics.BucketCounts) *LatencyDigest {
	n := c.Count()
	if n == 0 {
		return nil
	}
	return &LatencyDigest{
		Count: n,
		P50:   c.Percentile(0.50),
		P99:   c.Percentile(0.99),
		P999:  c.Percentile(0.999),
		Max:   c.Max(),
	}
}

// LatencyCell is one structure's measurement: throughput with the
// histograms off and on, the relative overhead, and the distributions the
// instrumented runs recorded.
type LatencyCell struct {
	Name             string         `json:"name"` // "queue" (fair) or "stack" (unfair)
	Fair             bool           `json:"fair"`
	UninstrumentedNs float64        `json:"uninstrumented_ns_per_transfer"`
	InstrumentedNs   float64        `json:"instrumented_ns_per_transfer"`
	Overhead         float64        `json:"overhead"` // instrumented/uninstrumented − 1
	Handoff          *LatencyDigest `json:"handoff,omitempty"`
	Spin             *LatencyDigest `json:"spin,omitempty"`
	Park             *LatencyDigest `json:"park,omitempty"`
	Wasted           *LatencyDigest `json:"wasted,omitempty"`
}

// LatencySummary is the gate's input: the worst overhead across cells.
type LatencySummary struct {
	MaxOverhead float64 `json:"max_overhead"`
}

// LatencyReport is the JSON document behind BENCH_latency.json.
type LatencyReport struct {
	Benchmark  string         `json:"benchmark"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"numcpu"`
	Transfers  int64          `json:"transfers"`
	Repeats    int            `json:"repeats"`
	Pairs      int            `json:"pairs"`
	Cells      []LatencyCell  `json:"cells"`
	Summary    LatencySummary `json:"summary"`
}

// JSON renders the report with stable formatting so the committed artifact
// diffs cleanly across regenerations.
func (r LatencyReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// latencyGateMaxOverhead is the regression budget: turning the latency
// histograms on may cost at most this fraction of hand-off throughput. The
// instrumented steady state pays a per-thread PRNG draw per operation for
// the sampling decision plus, on the sampled 1-in-metrics.SampleRate of
// operations, the full chain of clock reads and bucket increments — tens
// of nanoseconds amortized against hand-offs that cost hundreds.
const latencyGateMaxOverhead = 0.10

// latencyGateMaxOverheadSingleCPU is the relaxed budget on hosts with one
// hardware thread, following the precedent of the scaling gate's
// gateFloorSingleCPU: with a single CPU every hand-off serializes through
// the scheduler and the baseline itself wobbles 20–30% run to run (the
// uninstrumented min-of-repeats moves by that much between invocations on
// a timeshared single-core host), so a tight ratio gate would flake on
// noise the instrumentation did not cause. The budget must sit above the
// baseline's own spread to gate the instrumentation rather than the host.
const latencyGateMaxOverheadSingleCPU = 0.50

// Gate is the regression check `make bench-latency` enforces: the worst
// metrics-on overhead across cells must stay within the budget.
func (r LatencyReport) Gate() error {
	budget := latencyGateMaxOverhead
	if r.NumCPU < 2 {
		budget = latencyGateMaxOverheadSingleCPU
	}
	if r.Summary.MaxOverhead > budget {
		return fmt.Errorf("latency gate: metrics-on overhead %.1f%% exceeds %.0f%% budget (numcpu=%d)",
			r.Summary.MaxOverhead*100, budget*100, r.NumCPU)
	}
	return nil
}

// instrumentedSQ builds the selected dual structure recording into h (nil
// h: uninstrumented).
func instrumentedSQ(fair bool, h *metrics.Handle) SQ {
	w := core.WaitConfig{Metrics: h}
	if fair {
		return core.NewDualQueue[int64](w)
	}
	return core.NewDualStack[int64](w)
}

// Latency runs the overhead measurement and returns both renderings: the
// aligned table for the terminal and the JSON report for the artifact.
//
// Within each cell the uninstrumented and instrumented runs are
// interleaved repeat by repeat, so slow drift of the host (thermal,
// timeshared neighbors) decorrelates from the on/off comparison; the
// minimum of the repeats is reported, the least-noise estimator for a
// fixed amount of work. The instrumented runs of a cell share one handle,
// so the digests summarize every sample from every repeat.
func Latency(o SweepOpts) (*stats.Table, LatencyReport) {
	o = o.withDefaults([]int{1}, 20000)
	pairs := o.Levels[0]

	report := LatencyReport{
		Benchmark:  "latency",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Transfers:  o.Transfers,
		Repeats:    o.Repeats,
		Pairs:      pairs,
	}
	t := stats.NewTable("Latency observability: histogram overhead, "+fmt.Sprint(pairs)+" producer:consumer pair(s)",
		"series", "ns/transfer", []string{"off", "on", "overhead %"})

	for _, cfg := range []struct {
		name string
		fair bool
	}{{"queue", true}, {"stack", false}} {
		h := metrics.New()
		var offBest, onBest float64
		for r := 0; r < o.Repeats; r++ {
			if o.Progress != nil {
				o.Progress(0, cfg.name+" [latency]", r+1)
			}
			off := RunHandoff(instrumentedSQ(cfg.fair, nil), pairs, pairs, o.Transfers, nil).NsPerTransfer()
			on := RunHandoff(instrumentedSQ(cfg.fair, h), pairs, pairs, o.Transfers, nil).NsPerTransfer()
			if r == 0 || off < offBest {
				offBest = off
			}
			if r == 0 || on < onBest {
				onBest = on
			}
		}
		overhead := 0.0
		if offBest > 0 {
			overhead = onBest/offBest - 1
		}
		hs := h.Histograms()
		cell := LatencyCell{
			Name:             cfg.name,
			Fair:             cfg.fair,
			UninstrumentedNs: offBest,
			InstrumentedNs:   onBest,
			Overhead:         overhead,
			Handoff:          digestOf(hs.Get(metrics.HandoffNs)),
			Spin:             digestOf(hs.Get(metrics.SpinNs)),
			Park:             digestOf(hs.Get(metrics.ParkNs)),
			Wasted:           digestOf(hs.Get(metrics.WastedNs)),
		}
		report.Cells = append(report.Cells, cell)
		if overhead > report.Summary.MaxOverhead {
			report.Summary.MaxOverhead = overhead
		}
		t.Set(cfg.name, "off", offBest)
		t.Set(cfg.name, "on", onBest)
		t.Set(cfg.name, "overhead %", overhead*100)
	}
	return t, report
}

// LatencyFigure adapts Latency to the figure registry (table only).
func LatencyFigure(o SweepOpts) *stats.Table {
	t, _ := Latency(o)
	return t
}
