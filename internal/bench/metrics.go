package bench

import (
	"fmt"

	"synchq/internal/core"
	"synchq/internal/metrics"
	"synchq/internal/shard"
	"synchq/internal/stats"
)

// MeteredAlgorithm is an algorithm that can be constructed with an
// instrumentation handle attached: the two core dual structures, the
// sharded fair queue, and the elimination-fronted fair queue. New rows
// join the -metrics column set by being added here.
type MeteredAlgorithm struct {
	// Name matches the figure legend; Short prefixes the metric columns.
	Name, Short string
	New         func(h *metrics.Handle) SQ
}

// MeteredAlgorithms returns the instrumented implementations.
func MeteredAlgorithms() []MeteredAlgorithm {
	return []MeteredAlgorithm{
		{
			Name:  "New SynchQueue",
			Short: "unfair",
			New:   func(h *metrics.Handle) SQ { return core.NewDualStack[int64](core.WaitConfig{Metrics: h}) },
		},
		{
			Name:  "New SynchQueue (fair)",
			Short: "fair",
			New:   func(h *metrics.Handle) SQ { return core.NewDualQueue[int64](core.WaitConfig{Metrics: h}) },
		},
		{
			Name:  "Sharded SynchQueue (fair)",
			Short: "shard",
			New: func(h *metrics.Handle) SQ {
				return fabricSQ{shard.New(0, func(int) shard.Dual[int64] {
					return core.NewDualQueue[int64](core.WaitConfig{Metrics: h})
				}).SetMetrics(h)}
			},
		},
		{
			Name:  "Eliminating SynchQueue (fair)",
			Short: "elim",
			New: func(h *metrics.Handle) SQ {
				e := newAdaptiveElimSQ(core.NewDualQueue[int64](core.WaitConfig{Metrics: h}))
				e.arena.SetMetrics(h)
				return e
			},
		},
	}
}

// metricCols are the per-algorithm counter columns of a metrics table:
// wall time plus the counter deltas of the reported run, normalized per
// 1000 transfers so cells stay comparable across cell sizes. elimhit/k
// and steal/k stay zero for the unstriped, arena-less algorithms.
var metricCols = []string{"ns/op", "casfail/k", "spins/k", "parks/k", "unparks/k", "sweeps/k", "elimhit/k", "steal/k"}

func metricCells(ns float64, d metrics.Snapshot, transfers int64) []float64 {
	perK := func(v int64) float64 { return float64(v) * 1000 / float64(transfers) }
	return []float64{
		ns,
		perK(d.CASFailures()),
		perK(d.Get(metrics.Spins)),
		perK(d.Get(metrics.Parks)),
		perK(d.Get(metrics.Unparks)),
		perK(d.Get(metrics.CleanSweeps)),
		perK(d.Get(metrics.ElimHits)),
		perK(d.Get(metrics.ShardSteals)),
	}
}

// FigureMetrics reruns the handoff workload of Figure 3, 4, or 5 on the
// instrumented core algorithms and reports, per sweep level, the
// throughput alongside the counter deltas of the same (best) run — the
// "-metrics column set": CAS failures, spins, parks, unparks, and cleaning
// sweeps per 1000 transfers. This is the view every perf PR reports
// against; ns/transfer says how fast, the counters say why.
func FigureMetrics(fig int, o SweepOpts) *stats.Table {
	var (
		xlabel string
		shape  func(level int) (producers, consumers int)
	)
	defaults := PairLevels
	switch fig {
	case 4:
		xlabel = "consumers"
		defaults = SingleLevels
		shape = func(l int) (int, int) { return 1, l }
	case 5:
		xlabel = "producers"
		defaults = SingleLevels
		shape = func(l int) (int, int) { return l, 1 }
	default:
		fig = 3
		xlabel = "pairs"
		shape = func(l int) (int, int) { return l, l }
	}
	o = o.withDefaults(defaults, 20000)

	algos := MeteredAlgorithms()
	var cols []string
	for _, a := range algos {
		for _, c := range metricCols {
			cols = append(cols, a.Short+" "+c)
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Figure %d counters: instrumented handoff (per 1000 transfers)", fig),
		xlabel, "ns/transfer + counter deltas", cols)

	for _, level := range o.Levels {
		producers, consumers := shape(level)
		for _, a := range algos {
			if o.Progress != nil {
				o.Progress(fig, a.Name+" [metrics]", level)
			}
			h := metrics.New()
			bestNs := 0.0
			var bestDelta metrics.Snapshot
			for r := 0; r < o.Repeats; r++ {
				before := h.Snapshot()
				res := RunHandoff(a.New(h), producers, consumers, o.Transfers, nil)
				delta := h.Snapshot().Sub(before)
				ns := res.NsPerTransfer()
				if r == 0 || ns < bestNs {
					bestNs = ns
					bestDelta = delta
				}
			}
			for i, v := range metricCells(bestNs, bestDelta, o.Transfers) {
				t.Set(fmt.Sprint(level), a.Short+" "+metricCols[i], v)
			}
		}
	}
	return t
}
