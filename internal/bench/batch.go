package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"synchq/internal/core"
	"synchq/internal/segq"
	"synchq/internal/stats"
)

// This file is the batched hand-off sweep behind `sqbench -figure batch`
// and the committed BENCH_batch.json artifact: for each batch-capable
// core it measures ns/item for k-item batch operations against the
// equivalent loop of k single operations, swept over batch size × pair
// count. It is the evaluation for the PR that added PutBatch/TakeBatch
// (the segmented core's multi-cell claim and the transfer queue's burst
// splice), and `make bench-batch` runs its regression gate.

// batchSQ is the surface the batch sweep drives: the single-op pairing
// surface plus blocking batch variants. PutBatch must deliver every item
// (the sweep never closes or cancels); TakeBatch appends at least one and
// at most max items to buf.
type batchSQ interface {
	Put(v int64)
	Take() int64
	PutBatch(items []int64)
	TakeBatch(buf []int64, max int) []int64
}

// segBatchSQ drives the segmented core's native multi-cell claim.
type segBatchSQ struct{ q *segq.Queue[int64] }

func (s segBatchSQ) Put(v int64) { s.q.Put(v) }
func (s segBatchSQ) Take() int64 { return s.q.Take() }

func (s segBatchSQ) PutBatch(items []int64) {
	for len(items) > 0 {
		d, st := s.q.PutBatch(items, time.Time{}, nil)
		if st != core.OK {
			panic(fmt.Sprintf("bench: seg PutBatch status %v", st))
		}
		items = items[d:]
	}
}

func (s segBatchSQ) TakeBatch(buf []int64, max int) []int64 {
	out, st := s.q.TakeBatch(buf, max, time.Time{}, nil)
	if st != core.OK {
		panic(fmt.Sprintf("bench: seg TakeBatch status %v", st))
	}
	return out
}

// transferBatchSQ drives the transfer queue's asynchronous deposit path:
// the single-op baseline enqueues one node per Put (one tail CAS each),
// the batched path links a privately built chain with a single splice.
type transferBatchSQ struct{ q *core.TransferQueue[int64] }

func (s transferBatchSQ) Put(v int64) { s.q.Put(v) }
func (s transferBatchSQ) Take() int64 { return s.q.Take() }

func (s transferBatchSQ) PutBatch(items []int64) {
	if _, st := s.q.PutAll(items); st != core.OK {
		panic(fmt.Sprintf("bench: transfer PutAll status %v", st))
	}
}

func (s transferBatchSQ) TakeBatch(buf []int64, max int) []int64 {
	out, st := s.q.TakeBatch(buf, max, time.Time{}, nil)
	if st != core.OK {
		panic(fmt.Sprintf("bench: transfer TakeBatch status %v", st))
	}
	return out
}

// queueBatchSQ drives the plain fair dual queue through the generic
// loop-with-single-arrival fallback — the reference series showing what
// batching buys when the core has no native multi-item path.
type queueBatchSQ struct{ q *core.DualQueue[int64] }

func (s queueBatchSQ) Put(v int64) { s.q.Put(v) }
func (s queueBatchSQ) Take() int64 { return s.q.Take() }

func (s queueBatchSQ) PutBatch(items []int64) {
	if _, st := s.q.PutBatch(items, time.Time{}, nil); st != core.OK {
		panic(fmt.Sprintf("bench: queue PutBatch status %v", st))
	}
}

func (s queueBatchSQ) TakeBatch(buf []int64, max int) []int64 {
	out, st := s.q.TakeBatch(buf, max, time.Time{}, nil)
	if st != core.OK {
		panic(fmt.Sprintf("bench: queue TakeBatch status %v", st))
	}
	return out
}

// batchCore is one swept implementation.
type batchCore struct {
	Name string
	New  func() batchSQ
}

// batchCores enumerates the swept cores. Names are stable — they are the
// JSON artifact's series keys. "seg" and "transfer" are the gated pair;
// "queue" is the ungated loop-fallback reference.
func batchCores() []batchCore {
	return []batchCore{
		{Name: "seg", New: func() batchSQ {
			return segBatchSQ{segq.New[int64](core.WaitConfig{})}
		}},
		{Name: "transfer", New: func() batchSQ {
			return transferBatchSQ{core.NewTransferQueue[int64](core.WaitConfig{})}
		}},
		{Name: "queue", New: func() batchSQ {
			return queueBatchSQ{core.NewDualQueue[int64](core.WaitConfig{})}
		}},
	}
}

func filterBatchCores(cores []batchCore, names []string) ([]batchCore, error) {
	if len(names) == 0 {
		return cores, nil
	}
	byName := make(map[string]bool, len(names))
	for _, n := range names {
		byName[n] = true
	}
	var kept []batchCore
	all := make([]string, len(cores))
	for i, c := range cores {
		all[i] = c.Name
		if byName[c.Name] {
			kept = append(kept, c)
			delete(byName, c.Name)
		}
	}
	for n := range byName {
		return nil, fmt.Errorf("unknown batch series %q (have: %s)", n, strings.Join(all, ","))
	}
	return kept, nil
}

// ValidateBatchCores checks a -cores selection against the sweep's series
// names, so CLI entry points can reject a typo with a friendly message
// instead of the panic Batch reserves for programmer error.
func ValidateBatchCores(names []string) error {
	_, err := filterBatchCores(batchCores(), names)
	return err
}

// BatchSizes is the sweep's batch-size axis. 1 is the single-op baseline
// (plain Put/Take loops, no batch call at all); the gate compares at the
// headline size gateBatchK.
func BatchSizes() []int { return []int{1, 8, 32} }

// gateBatchK is the headline batch size the summary and gate compare at.
const gateBatchK = 8

// runBatchHandoff transfers exactly `transfers` values through q with
// `pairs` producers and consumers and reports the elapsed wall time. With
// k == 1 it is the single-op loop (the baseline the batch paths must
// beat); with k > 1 producers push k-item batches and consumers drain
// with TakeBatch(max=k).
func runBatchHandoff(q batchSQ, pairs, k int, transfers int64) time.Duration {
	putQuota := split(transfers, pairs)
	takeQuota := split(transfers, pairs)

	var wg sync.WaitGroup
	start := make(chan struct{})

	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(id int, quota int64) {
			defer wg.Done()
			<-start
			if k <= 1 {
				for seq := int64(0); seq < quota; seq++ {
					q.Put(encode(id, seq))
				}
				return
			}
			buf := make([]int64, k)
			for seq := int64(0); seq < quota; {
				n := int64(k)
				if rem := quota - seq; rem < n {
					n = rem
				}
				for j := int64(0); j < n; j++ {
					buf[j] = encode(id, seq+j)
				}
				q.PutBatch(buf[:n])
				seq += n
			}
		}(i, putQuota[i])
	}
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(quota int64) {
			defer wg.Done()
			<-start
			if k <= 1 {
				for seq := int64(0); seq < quota; seq++ {
					q.Take()
				}
				return
			}
			var buf []int64
			for taken := int64(0); taken < quota; {
				max := int64(k)
				if rem := quota - taken; rem < max {
					max = rem
				}
				buf = q.TakeBatch(buf[:0], int(max))
				taken += int64(len(buf))
			}
		}(takeQuota[i])
	}

	t0 := time.Now()
	close(start)
	wg.Wait()
	return time.Since(t0)
}

// measureBatch reports the best-of-repeats ns/item for one cell.
func measureBatch(c batchCore, pairs, k int, transfers int64, repeats int) float64 {
	best := 0.0
	for r := 0; r < repeats; r++ {
		el := runBatchHandoff(c.New(), pairs, k, transfers)
		ns := float64(el.Nanoseconds()) / float64(transfers)
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// BatchCell is one series' measurement at one (pairs, batch size) point.
// K == 1 is the single-op baseline.
type BatchCell struct {
	Pairs     int     `json:"pairs"`
	K         int     `json:"k"`
	NsPerItem float64 `json:"ns_per_item"`
}

// BatchSeries is one swept core.
type BatchSeries struct {
	Name  string      `json:"name"`
	Cells []BatchCell `json:"cells"`
}

// BatchSummary is the headline comparison at the maximum pair count and
// the headline batch size: each gated core's batched ns/item against its
// own single-op loop. Gain is SingleNs/BatchNs — above 1 means batching
// is faster per item. Fields for series excluded by a Cores filter are
// zero.
type BatchSummary struct {
	MaxPairs         int     `json:"max_pairs"`
	K                int     `json:"k"`
	SegSingleNs      float64 `json:"seg_single_ns_per_item,omitempty"`
	SegBatchNs       float64 `json:"seg_batch_ns_per_item,omitempty"`
	SegGain          float64 `json:"seg_gain,omitempty"`
	TransferSingleNs float64 `json:"transfer_single_ns_per_item,omitempty"`
	TransferBatchNs  float64 `json:"transfer_batch_ns_per_item,omitempty"`
	TransferGain     float64 `json:"transfer_gain,omitempty"`
}

// BatchReport is the JSON document behind BENCH_batch.json.
type BatchReport struct {
	Benchmark  string        `json:"benchmark"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	Transfers  int64         `json:"transfers"`
	Repeats    int           `json:"repeats"`
	Series     []BatchSeries `json:"series"`
	Summary    BatchSummary  `json:"summary"`
}

// JSON renders the report with stable formatting so the committed
// artifact diffs cleanly across regenerations.
func (r BatchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// gateBatchGain is the gain floor on multicore hosts: a k≥8 batch must
// move items at no more than 0.75× the single-op loop's ns/item (the
// issue's "≥ 25% lower" acceptance bar), i.e. gain ≥ 1/0.75.
const gateBatchGain = 1.0 / 0.75

// Single-CPU floors, per core — the two batch paths degrade differently
// when the host has one hardware thread (the same honesty as the scaling
// gate's relaxed floor, which documents that contention-relief wins
// cannot exist without contention):
//
//   - gateBatchGainSegSingleCPU: the multi-cell claim's headline saving —
//     one F&A and one spin-then-park episode for k items instead of k of
//     each — is a context-switch saving, and a single CPU context-switches
//     MORE, not less, so the win survives there (measured 1.3–2.0× across
//     runs on a one-thread host). But that spread is scheduler noise the
//     benchmark cannot control, so the single-CPU floor demands a clear
//     win rather than the full 25% — a floor inside the noise band would
//     make the gate a coin flip.
//   - gateBatchGainTransferSingleCPU: the burst splice's saving is
//     tail-CAS contention, which does not exist on one CPU; and with
//     consumers already waiting, PutAll's fulfill arm peels items one at
//     a time anyway, so the batch pays chain-building for nothing. The
//     single-CPU floor therefore only bounds the overhead — batching may
//     be slower, but never pathologically so.
const (
	gateBatchGainSegSingleCPU      = 1.15
	gateBatchGainTransferSingleCPU = 0.50
)

// Gate is the regression check `make bench-batch` enforces: at the
// maximum pair count and the headline batch size, every gated core
// present in the sweep — seg (native multi-cell claim) and transfer
// (burst splice) — must beat its own single-op loop by the floor. The
// loop-fallback "queue" series is reported but never gated (it exists to
// show the fallback costs nothing, not to claim a win). A sweep narrowed
// by Cores gates only the cores it measured; a sweep with no checkable
// pair is an error, not a silent pass.
func (r BatchReport) Gate() error {
	segFloor, transferFloor := gateBatchGain, gateBatchGain
	if r.NumCPU < 2 {
		segFloor = gateBatchGainSegSingleCPU
		transferFloor = gateBatchGainTransferSingleCPU
	}
	checked := 0
	if r.Summary.SegBatchNs > 0 && r.Summary.SegSingleNs > 0 {
		checked++
		if r.Summary.SegGain < segFloor {
			return fmt.Errorf("batch gate: seg k=%d at %d pairs is %.0f ns/item vs %.0f single-op (gain %.2fx < %.2fx, numcpu=%d)",
				r.Summary.K, r.Summary.MaxPairs, r.Summary.SegBatchNs, r.Summary.SegSingleNs, r.Summary.SegGain, segFloor, r.NumCPU)
		}
	}
	if r.Summary.TransferBatchNs > 0 && r.Summary.TransferSingleNs > 0 {
		checked++
		if r.Summary.TransferGain < transferFloor {
			return fmt.Errorf("batch gate: transfer k=%d at %d pairs is %.0f ns/item vs %.0f single-op (gain %.2fx < %.2fx, numcpu=%d)",
				r.Summary.K, r.Summary.MaxPairs, r.Summary.TransferBatchNs, r.Summary.TransferSingleNs, r.Summary.TransferGain, transferFloor, r.NumCPU)
		}
	}
	if checked == 0 {
		return fmt.Errorf("batch gate: no checkable pair in the sweep (need \"seg\" or \"transfer\")")
	}
	return nil
}

// Batch runs the sweep and returns both renderings: the aligned table for
// the terminal and the JSON report for the artifact. It panics on an
// unknown Cores name (the callers are CLI entry points whose -cores input
// is validated here).
func Batch(o SweepOpts) (*stats.Table, BatchReport) {
	o = o.withDefaults(ScalingLevels(), 20000)
	cores, err := filterBatchCores(batchCores(), o.Cores)
	if err != nil {
		panic(err)
	}
	sizes := BatchSizes()

	cols := make([]string, 0, len(cores)*len(sizes))
	for _, c := range cores {
		for _, k := range sizes {
			cols = append(cols, fmt.Sprintf("%s k=%d", c.Name, k))
		}
	}
	t := stats.NewTable("Batch: k-item batch ops vs k single ops, N producers : N consumers",
		"pairs", "ns/item", cols)

	report := BatchReport{
		Benchmark:  "batch",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Transfers:  o.Transfers,
		Repeats:    o.Repeats,
	}
	cells := make(map[string][]BatchCell)
	for _, level := range o.Levels {
		for _, c := range cores {
			for _, k := range sizes {
				if o.Progress != nil {
					o.Progress(0, fmt.Sprintf("%s k=%d [batch]", c.Name, k), level)
				}
				ns := measureBatch(c, level, k, o.Transfers, o.Repeats)
				t.Set(fmt.Sprint(level), fmt.Sprintf("%s k=%d", c.Name, k), ns)
				cells[c.Name] = append(cells[c.Name], BatchCell{Pairs: level, K: k, NsPerItem: ns})
			}
		}
	}
	for _, c := range cores {
		report.Series = append(report.Series, BatchSeries{Name: c.Name, Cells: cells[c.Name]})
	}

	max := o.Levels[len(o.Levels)-1]
	report.Summary = BatchSummary{MaxPairs: max, K: gateBatchK}
	at := func(name string, k int) float64 {
		for _, s := range report.Series {
			if s.Name == name {
				for _, c := range s.Cells {
					if c.Pairs == max && c.K == k {
						return c.NsPerItem
					}
				}
			}
		}
		return 0
	}
	report.Summary.SegSingleNs = at("seg", 1)
	report.Summary.SegBatchNs = at("seg", gateBatchK)
	if report.Summary.SegBatchNs > 0 {
		report.Summary.SegGain = report.Summary.SegSingleNs / report.Summary.SegBatchNs
	}
	report.Summary.TransferSingleNs = at("transfer", 1)
	report.Summary.TransferBatchNs = at("transfer", gateBatchK)
	if report.Summary.TransferBatchNs > 0 {
		report.Summary.TransferGain = report.Summary.TransferSingleNs / report.Summary.TransferBatchNs
	}
	return t, report
}

// BatchFigure adapts Batch to the figure registry (table only).
func BatchFigure(o SweepOpts) *stats.Table {
	t, _ := Batch(o)
	return t
}
