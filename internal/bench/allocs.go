package bench

import (
	"encoding/json"
	"runtime"
	"time"

	"synchq/internal/core"
	"synchq/internal/exchanger"
)

// This file measures the allocation cost of the hand-off hot path — the
// figure the node/box pooling, embedded parkers, and channel-free parking
// exist to drive down. Unlike the throughput figures it reports allocs and
// bytes per paired Put/Take, measured from the runtime's global allocation
// counters so both sides of the pair are charged.

// AllocResult is one algorithm's steady-state hand-off allocation cost.
type AllocResult struct {
	Algo          string  `json:"algo"`
	Pairs         int64   `json:"pairs"`
	AllocsPerPair float64 `json:"allocs_per_pair"`
	AllocsPerSide float64 `json:"allocs_per_op_per_side"`
	BytesPerPair  float64 `json:"bytes_per_pair"`
	NsPerPair     float64 `json:"ns_per_pair"`
}

// AllocReport is the JSON document emitted by sqbench -json.
type AllocReport struct {
	Benchmark  string        `json:"benchmark"`
	Pairs      int64         `json:"pairs"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []AllocResult `json:"results"`
}

// runPairs drives `pairs` paired hand-offs: a partner goroutine takes while
// the caller puts.
func runPairs(q SQ, pairs int64) {
	done := make(chan struct{})
	go func() {
		for i := int64(0); i < pairs; i++ {
			q.Take()
		}
		close(done)
	}()
	for i := int64(0); i < pairs; i++ {
		q.Put(i)
	}
	<-done
}

// measureAllocs reports the per-pair allocation cost of q over `pairs`
// hand-offs, after a warm-up that primes the recycling pools. The global
// malloc counters include the partner goroutine's allocations (and a few
// fixed-cost ones for the harness channel and goroutine), so the figure is
// the whole pair's cost, amortized.
func measureAllocs(name string, q SQ, pairs int64) AllocResult {
	runPairs(q, 512) // warm the pools past the cold-start allocations

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	runPairs(q, pairs)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)

	perPair := float64(after.Mallocs-before.Mallocs) / float64(pairs)
	return AllocResult{
		Algo:          name,
		Pairs:         pairs,
		AllocsPerPair: perPair,
		AllocsPerSide: perPair / 2,
		BytesPerPair:  float64(after.TotalAlloc-before.TotalAlloc) / float64(pairs),
		NsPerPair:     float64(elapsed.Nanoseconds()) / float64(pairs),
	}
}

// exchangerSQ adapts the exchanger to the SQ pairing surface: a put brings
// a value, a take brings the zero value and keeps the partner's.
type exchangerSQ struct{ e *exchanger.Exchanger[int64] }

func (s exchangerSQ) Put(v int64) { s.e.Exchange(v) }
func (s exchangerSQ) Take() int64 { return s.e.Exchange(0) }

// transferSQ drives the TransferQueue's synchronous face.
type transferSQ struct{ q *core.TransferQueue[int64] }

func (s transferSQ) Put(v int64) { s.q.Transfer(v) }
func (s transferSQ) Take() int64 { return s.q.Take() }

// HandoffAllocs measures the steady-state hand-off allocation cost of the
// three dual structures and the exchanger under the default wait policy.
func HandoffAllocs(pairs int64) AllocReport {
	if pairs <= 0 {
		pairs = 50000
	}
	results := []AllocResult{
		measureAllocs("DualQueue", core.NewDualQueue[int64](core.WaitConfig{}), pairs),
		measureAllocs("DualStack", core.NewDualStack[int64](core.WaitConfig{}), pairs),
		measureAllocs("TransferQueue", transferSQ{core.NewTransferQueue[int64](core.WaitConfig{})}, pairs),
		measureAllocs("Exchanger", exchangerSQ{exchanger.New[int64]()}, pairs),
	}
	return AllocReport{
		Benchmark:  "handoff-allocs",
		Pairs:      pairs,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    results,
	}
}

// JSON renders the report with stable formatting (no timestamp, sorted
// fields as declared) so committed artifacts diff cleanly across runs.
func (r AllocReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
