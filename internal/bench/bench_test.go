package bench

import (
	"runtime"
	"strings"
	"testing"

	"synchq/internal/verify"
)

func TestSplit(t *testing.T) {
	cases := []struct {
		total int64
		n     int
		want  []int64
	}{
		{10, 3, []int64{4, 3, 3}},
		{9, 3, []int64{3, 3, 3}},
		{1, 4, []int64{1, 0, 0, 0}},
		{0, 2, []int64{0, 0}},
	}
	for _, c := range cases {
		got := split(c.total, c.n)
		var sum int64
		for i, v := range got {
			sum += v
			if v != c.want[i] {
				t.Fatalf("split(%d,%d) = %v, want %v", c.total, c.n, got, c.want)
			}
		}
		if sum != c.total {
			t.Fatalf("split(%d,%d) sums to %d", c.total, c.n, sum)
		}
	}
}

func TestEncodeIsUnique(t *testing.T) {
	seen := make(map[int64]bool)
	for p := 0; p < 64; p++ {
		for s := int64(0); s < 100; s++ {
			v := encode(p, s)
			if seen[v] {
				t.Fatalf("encode(%d,%d) collides", p, s)
			}
			seen[v] = true
		}
	}
}

func TestAlgorithmsRegistry(t *testing.T) {
	base := Algorithms(false)
	if len(base) != 5 {
		t.Fatalf("paper algorithm count = %d, want 5", len(base))
	}
	wantOrder := []string{
		"SynchronousQueue",
		"SynchronousQueue (fair)",
		"HansonSQ",
		"New SynchQueue",
		"New SynchQueue (fair)",
	}
	for i, a := range base {
		if a.Name != wantOrder[i] {
			t.Fatalf("algorithm %d = %q, want %q", i, a.Name, wantOrder[i])
		}
	}
	all := Algorithms(true)
	if len(all) != 8 {
		t.Fatalf("extended algorithm count = %d, want 8", len(all))
	}
	if _, ok := ByName("HansonSQ"); !ok {
		t.Fatal("ByName failed for HansonSQ")
	}
	if _, ok := ByName("nonsense"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
}

func TestEveryAlgorithmPassesVerification(t *testing.T) {
	// Each implementation transfers 600 values through 3:2 ratio threads
	// with full history recording; the verifier checks conservation and
	// synchrony for every transfer.
	for _, a := range Algorithms(true) {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			rec := verify.NewRecorder()
			res := RunHandoff(a.New(), 3, 2, 600, rec)
			if res.Transfers != 600 {
				t.Fatalf("Transfers = %d, want 600", res.Transfers)
			}
			vres := verify.Check(rec.History(), true)
			if !vres.Ok() {
				t.Fatalf("verification failed: %v", vres.Errors)
			}
			if vres.Transfers != 600 {
				t.Fatalf("verified %d transfers, want 600", vres.Transfers)
			}
		})
	}
}

func TestRunHandoffRatios(t *testing.T) {
	a, _ := ByName("New SynchQueue (fair)")
	for _, ratio := range [][2]int{{1, 1}, {1, 4}, {4, 1}, {3, 5}} {
		res := RunHandoff(a.New(), ratio[0], ratio[1], 400, nil)
		if res.Transfers != 400 || res.Elapsed <= 0 {
			t.Fatalf("ratio %v: bad result %+v", ratio, res)
		}
		if res.NsPerTransfer() <= 0 {
			t.Fatalf("ratio %v: NsPerTransfer = %v", ratio, res.NsPerTransfer())
		}
	}
}

func TestRunPoolExecutesAllTasks(t *testing.T) {
	for _, a := range Algorithms(false) {
		if a.NewPoolQueue == nil {
			continue
		}
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res := RunPool(a.NewPoolQueue(), 4, 500)
			if res.Tasks != 500 {
				t.Fatalf("Tasks = %d, want 500", res.Tasks)
			}
			if res.NsPerTask() <= 0 {
				t.Fatal("NsPerTask not positive")
			}
		})
	}
}

func TestFigureSmoke(t *testing.T) {
	// Tiny sweeps to check the full figure plumbing end to end.
	opts := SweepOpts{Transfers: 200, Levels: []int{1, 2}, Repeats: 1}
	for _, fig := range []func(SweepOpts) interface{ Render() string }{
		func(o SweepOpts) interface{ Render() string } { return Figure3(o) },
		func(o SweepOpts) interface{ Render() string } { return Figure4(o) },
		func(o SweepOpts) interface{ Render() string } { return Figure5(o) },
		func(o SweepOpts) interface{ Render() string } { return Figure6(o) },
	} {
		out := fig(opts).Render()
		if !strings.Contains(out, "SynchronousQueue") || !strings.Contains(out, "New SynchQueue") {
			t.Fatalf("figure output missing series:\n%s", out)
		}
	}
}

func TestHandoffResultZeroTransfers(t *testing.T) {
	r := HandoffResult{}
	if r.NsPerTransfer() != 0 {
		t.Fatal("zero-transfer result should report 0 ns")
	}
	p := PoolResult{}
	if p.NsPerTask() != 0 {
		t.Fatal("zero-task result should report 0 ns")
	}
}

func TestAblationTablesSmoke(t *testing.T) {
	opts := SweepOpts{Transfers: 200, Levels: []int{1, 2}, Repeats: 1}
	if out := AblationSpin(opts).Render(); !strings.Contains(out, "stack/default") {
		t.Fatalf("AblationSpin output missing series:\n%s", out)
	}
	cleanOpts := SweepOpts{Transfers: 50, Levels: []int{1}, Repeats: 1}
	if out := AblationClean(cleanOpts).Render(); !strings.Contains(out, "queue/") {
		t.Fatalf("AblationClean output missing series:\n%s", out)
	}
	if out := AblationElimination(opts).Render(); !strings.Contains(out, "eliminating") {
		t.Fatalf("AblationElimination output missing series:\n%s", out)
	}
}

func TestProcsSweepRestoresGOMAXPROCS(t *testing.T) {
	before := runtime.GOMAXPROCS(0)
	out := ProcsSweep(SweepOpts{Transfers: 200, Levels: []int{1, 2}, Repeats: 1}, 2).Render()
	if runtime.GOMAXPROCS(0) != before {
		t.Fatalf("GOMAXPROCS not restored: %d -> %d", before, runtime.GOMAXPROCS(0))
	}
	if !strings.Contains(out, "New SynchQueue") {
		t.Fatalf("ProcsSweep output missing series:\n%s", out)
	}
}
