package bench

import (
	"fmt"
	"sync"
	"time"

	"synchq/internal/stats"
	"synchq/pool"
)

// PoolResult is one cached-thread-pool measurement.
type PoolResult struct {
	Submitters int
	Tasks      int64
	Elapsed    time.Duration
	Workers    int64 // workers ever spawned
	Handoffs   int64 // tasks dispatched to an already-idle worker
}

// NsPerTask returns the Figure 6 metric: average wall nanoseconds per
// executed task.
func (r PoolResult) NsPerTask() float64 {
	if r.Tasks == 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Tasks)
}

// RunPool drives the paper's "real-world" scenario: `submitters`
// goroutines submit `tasks` trivial tasks in total to a cached thread pool
// whose hand-off channel is q, then wait for every task to finish. The
// keep-alive is set short so pool shrinkage is exercised within benchmark
// timescales.
func RunPool(q pool.Queue, submitters int, tasks int64) PoolResult {
	p := pool.New(q, pool.Config{KeepAlive: 50 * time.Millisecond})
	quota := split(tasks, submitters)

	var done sync.WaitGroup
	done.Add(int(tasks))
	task := func() { done.Done() }

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			<-start
			for j := int64(0); j < n; j++ {
				for p.Submit(task) != nil {
					// Unbounded cached pool: Submit only
					// fails after shutdown, which cannot
					// happen here; retry defensively.
				}
			}
		}(quota[i])
	}

	t0 := time.Now()
	close(start)
	wg.Wait()
	done.Wait()
	elapsed := time.Since(t0)

	st := p.Stats()
	p.Shutdown()
	p.Wait()
	return PoolResult{
		Submitters: submitters,
		Tasks:      tasks,
		Elapsed:    elapsed,
		Workers:    st.Spawned,
		Handoffs:   st.Handoffs,
	}
}

// Figure6 regenerates "ThreadPoolExecutor benchmark": ns/task as the
// number of submitter threads sweeps the paper's levels, one series per
// algorithm that supports the pool's timed interface (Hanson and Naive are
// omitted, as in the paper).
func Figure6(o SweepOpts) *stats.Table {
	o = o.withDefaults(PairLevels, 20000)
	var algos []Algorithm
	for _, a := range Algorithms(o.Extras) {
		if a.NewPoolQueue != nil {
			algos = append(algos, a)
		}
	}
	t := stats.NewTable("Figure 6: CachedThreadPool over synchronous queues", "threads", "ns/task", columnNames(algos))
	for _, level := range o.Levels {
		for _, a := range algos {
			if o.Progress != nil {
				o.Progress(6, a.Name, level)
			}
			best := 0.0
			for r := 0; r < o.Repeats; r++ {
				res := RunPool(a.NewPoolQueue(), level, o.Transfers)
				ns := res.NsPerTask()
				if r == 0 || ns < best {
					best = ns
				}
			}
			t.Set(fmt.Sprint(level), a.Name, best)
		}
	}
	return t
}
