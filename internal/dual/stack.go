package dual

import (
	"sync/atomic"
	"time"
)

// snode is a stack node: either a data node or a reservation.
type snode[T any] struct {
	waitNode[T]
	next   *snode[T] // immutable after push
	isData bool
}

// Stack is the nonblocking dual stack: LIFO for both data and reservations.
// Push never blocks; Pop blocks (spin-then-park) when no data is present.
// The zero value is an empty stack, but NewStack must be used so the
// cancellation sentinel exists.
type Stack[T any] struct {
	head     atomic.Pointer[snode[T]]
	canceled *dbox[T]
}

// NewStack returns an empty dual stack.
func NewStack[T any]() *Stack[T] {
	return &Stack[T]{canceled: new(dbox[T])}
}

// Push deposits v. If consumers are waiting, the topmost reservation is
// fulfilled directly; otherwise a data node is pushed. Push never blocks.
func (s *Stack[T]) Push(v T) {
	vp := &dbox[T]{v: v}
	var n *snode[T]
	for {
		h := s.head.Load()
		if h == nil || h.isData {
			if n == nil {
				n = &snode[T]{isData: true}
				n.item.Store(vp)
			}
			n.next = h
			if s.head.CompareAndSwap(h, n) {
				return
			}
			continue
		}
		// Top is a reservation.
		x := h.item.Load()
		if x != nil {
			// Fulfilled or canceled earlier; retire it and retry.
			s.head.CompareAndSwap(h, h.next)
			continue
		}
		if h.fulfill(vp) {
			s.head.CompareAndSwap(h, h.next)
			return
		}
	}
}

// Pop removes and returns the most recently pushed datum, blocking until a
// producer supplies one.
func (s *Stack[T]) Pop() T {
	n, immediate := s.claimOrReserve()
	if immediate != nil {
		return immediate.v
	}
	x := n.await(func() bool { return s.head.Load() == n })
	s.helpRetire(n)
	return x.v
}

// PopTimeout is Pop with patience d. ok is false on timeout.
func (s *Stack[T]) PopTimeout(d time.Duration) (T, bool) {
	var zero T
	n, immediate := s.claimOrReserve()
	if immediate != nil {
		return immediate.v, true
	}
	deadline := time.Now().Add(d)
	x, ok := n.awaitTimeout(func() bool { return s.head.Load() == n }, deadline, s.canceled)
	if !ok {
		// Abandon the canceled node; it is unlinked when it surfaces
		// at the top of the stack.
		s.helpRetire(n)
		return zero, false
	}
	s.helpRetire(n)
	return x.v, true
}

// TryPop takes a datum only if one is already present.
func (s *Stack[T]) TryPop() (T, bool) {
	var zero T
	for {
		h := s.head.Load()
		if h == nil {
			return zero, false
		}
		if !h.isData {
			if h.item.Load() != nil {
				// Stale fulfilled/canceled reservation: retire.
				s.head.CompareAndSwap(h, h.next)
				continue
			}
			return zero, false
		}
		x := h.item.Load()
		if x == nil || !h.item.CompareAndSwap(x, nil) {
			s.head.CompareAndSwap(h, h.next)
			continue
		}
		s.head.CompareAndSwap(h, h.next)
		return x.v, true
	}
}

// claimOrReserve either claims an available datum or pushes a reservation.
func (s *Stack[T]) claimOrReserve() (*snode[T], *dbox[T]) {
	var n *snode[T]
	for {
		h := s.head.Load()
		if h == nil || !h.isData {
			if h != nil && h.item.Load() != nil {
				// Fulfilled/canceled reservation on top: retire.
				s.head.CompareAndSwap(h, h.next)
				continue
			}
			if n == nil {
				n = &snode[T]{}
			}
			n.next = h
			if s.head.CompareAndSwap(h, n) {
				return n, nil
			}
			continue
		}
		x := h.item.Load()
		if x == nil || !h.item.CompareAndSwap(x, nil) {
			s.head.CompareAndSwap(h, h.next)
			continue
		}
		s.head.CompareAndSwap(h, h.next)
		return nil, x
	}
}

// helpRetire pops our own node if it is still the top of the stack, and
// forgets the waiter reference so the GC is not held back.
func (s *Stack[T]) helpRetire(n *snode[T]) {
	if s.head.Load() == n {
		s.head.CompareAndSwap(n, n.next)
	}
	n.waiter.Store(nil)
}

// Empty reports whether the stack was observed empty.
func (s *Stack[T]) Empty() bool { return s.head.Load() == nil }

// HasData reports whether the stack was observed holding data.
func (s *Stack[T]) HasData() bool {
	h := s.head.Load()
	return h != nil && h.isData
}

// HasReservations reports whether the stack was observed holding waiting
// consumers.
func (s *Stack[T]) HasReservations() bool {
	h := s.head.Load()
	return h != nil && !h.isData
}
