package dual

import (
	"sync/atomic"
	"time"
)

// qnode is a list node that is either a data node (value deposited by a
// producer, isData true) or a reservation (waitNode machinery, isData
// false). The head node is always a dummy.
type qnode[T any] struct {
	waitNode[T]
	next   atomic.Pointer[qnode[T]]
	isData bool
}

// Queue is the nonblocking dual queue: FIFO for both data and reservations.
// Enqueue never blocks; Dequeue blocks (spin-then-park) when no data is
// present. Use NewQueue to create one.
type Queue[T any] struct {
	head     atomic.Pointer[qnode[T]]
	tail     atomic.Pointer[qnode[T]]
	canceled *dbox[T] // sentinel installed in reservations that time out
}

// NewQueue returns an empty dual queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{canceled: new(dbox[T])}
	dummy := &qnode[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Enqueue deposits v. If a consumer is waiting, v is handed to the oldest
// waiting consumer and Enqueue returns once the hand-off is committed;
// otherwise v is appended as a data node. Enqueue never blocks.
func (q *Queue[T]) Enqueue(v T) {
	vp := &dbox[T]{v: v}
	var n *qnode[T]
	for {
		h := q.head.Load()
		t := q.tail.Load()
		if h == t || t.isData {
			// Empty or all-data: append a data node (M&S enqueue).
			next := t.next.Load()
			if t != q.tail.Load() {
				continue
			}
			if next != nil {
				q.tail.CompareAndSwap(t, next)
				continue
			}
			if n == nil {
				n = &qnode[T]{isData: true}
				n.item.Store(vp)
			}
			if t.next.CompareAndSwap(nil, n) {
				q.tail.CompareAndSwap(t, n)
				return
			}
			continue
		}
		// Reservations present: fulfill the head-most one.
		m := h.next.Load()
		if t != q.tail.Load() || h != q.head.Load() || m == nil {
			continue // inconsistent snapshot
		}
		success := m.item.Load() == nil && m.fulfill(vp)
		// Dequeue the former dummy whether or not we fulfilled: a
		// failed CAS means m was fulfilled or canceled by another
		// thread and must be retired either way.
		q.head.CompareAndSwap(h, m)
		if success {
			return
		}
	}
}

// Dequeue removes and returns the oldest datum, blocking until a producer
// supplies one.
func (q *Queue[T]) Dequeue() T {
	r := q.reserve()
	if r.immediate != nil {
		return r.immediate.v
	}
	x := r.node.await(func() bool { return q.head.Load().next.Load() == r.node })
	q.helpRetire(r.node)
	return x.v
}

// DequeueTimeout is Dequeue with patience d. ok is false on timeout.
func (q *Queue[T]) DequeueTimeout(d time.Duration) (T, bool) {
	var zero T
	r := q.reserve()
	if r.immediate != nil {
		return r.immediate.v, true
	}
	deadline := time.Now().Add(d)
	x, ok := r.node.awaitTimeout(func() bool { return q.head.Load().next.Load() == r.node }, deadline, q.canceled)
	if !ok {
		// The canceled reservation is abandoned in place; it is
		// retired by the next thread that finds it at the head.
		return zero, false
	}
	q.helpRetire(r.node)
	return x.v, true
}

// TryDequeue takes a datum only if one is already present.
func (q *Queue[T]) TryDequeue() (T, bool) {
	var zero T
	for {
		h := q.head.Load()
		t := q.tail.Load()
		if h == t || !t.isData {
			// Check for an in-flight enqueue lagging the tail.
			if next := t.next.Load(); next != nil && h == t {
				q.tail.CompareAndSwap(t, next)
				continue
			}
			return zero, false
		}
		m := h.next.Load()
		if h != q.head.Load() || m == nil {
			continue
		}
		x := m.item.Load()
		if x == nil || x == q.canceled || !m.item.CompareAndSwap(x, nil) {
			q.head.CompareAndSwap(h, m) // retire claimed node, retry
			continue
		}
		q.head.CompareAndSwap(h, m)
		return x.v, true
	}
}

type reservation[T any] struct {
	node      *qnode[T]
	immediate *dbox[T]
}

// reserve either claims an available datum (immediate non-nil) or appends a
// reservation node and returns it.
func (q *Queue[T]) reserve() reservation[T] {
	var n *qnode[T]
	for {
		h := q.head.Load()
		t := q.tail.Load()
		if h == t || !t.isData {
			// Empty or all-reservations: append our reservation.
			next := t.next.Load()
			if t != q.tail.Load() {
				continue
			}
			if next != nil {
				q.tail.CompareAndSwap(t, next)
				continue
			}
			if n == nil {
				n = &qnode[T]{}
			}
			if t.next.CompareAndSwap(nil, n) {
				q.tail.CompareAndSwap(t, n)
				return reservation[T]{node: n}
			}
			continue
		}
		// Data present: claim the head-most datum.
		m := h.next.Load()
		if t != q.tail.Load() || h != q.head.Load() || m == nil {
			continue
		}
		x := m.item.Load()
		claimed := x != nil && x != q.canceled && m.item.CompareAndSwap(x, nil)
		q.head.CompareAndSwap(h, m)
		if claimed {
			return reservation[T]{immediate: x}
		}
	}
}

// helpRetire advances the head past our fulfilled reservation if it is the
// current front node, so the fulfiller does not have to.
func (q *Queue[T]) helpRetire(n *qnode[T]) {
	h := q.head.Load()
	if h.next.Load() == n {
		q.head.CompareAndSwap(h, n)
	}
	n.waiter.Store(nil)
}

// Empty reports whether the queue holds no data and no reservations. The
// answer may be stale immediately.
func (q *Queue[T]) Empty() bool {
	h := q.head.Load()
	return h == q.tail.Load() && h.next.Load() == nil
}

// HasData reports whether the queue was observed holding data nodes.
func (q *Queue[T]) HasData() bool {
	t := q.tail.Load()
	return t != q.head.Load() && t.isData
}

// HasReservations reports whether the queue was observed holding waiting
// consumers.
func (q *Queue[T]) HasReservations() bool {
	t := q.tail.Load()
	return t != q.head.Load() && !t.isData
}
