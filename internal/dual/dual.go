// Package dual implements the nonblocking dual queue and dual stack of
// Scherer & Scott ("Nonblocking Concurrent Objects with Condition
// Synchronization", DISC 2004) — the structures the paper's synchronous
// queues extend.
//
// A dual data structure may hold either data or reservations (requests), but
// never both at once. In these non-synchronous variants only consumers ever
// wait: a dequeue/pop on an empty structure inserts a reservation and blocks
// until a producer fulfills it, while enqueue/push never blocks — if
// reservations are present the producer satisfies the oldest (queue) or
// topmost (stack) one directly, otherwise it deposits a data node.
//
// These structures ARE the paper's challenge statement: "the nonsynchronous
// dual data structures already block when a consumer arrives before a
// producer; our challenge is to arrange for producers to block until a
// consumer arrives as well" (§3.3).
package dual

import (
	"sync/atomic"
	"time"

	"synchq/internal/park"
	"synchq/internal/spin"
)

// dbox boxes a deposited value. The trailing pad guarantees every
// allocation a unique address even when T is zero-sized, so pointer
// identity against the cancellation sentinel is always meaningful.
type dbox[T any] struct {
	v T
	_ byte
}

// waitNode carries the shared fulfillment machinery for reservation nodes in
// both the queue and the stack: an item slot CASed from nil to the datum,
// and a parker for the blocked consumer.
type waitNode[T any] struct {
	item   atomic.Pointer[dbox[T]]
	waiter atomic.Pointer[park.Parker]
}

// fulfill installs v into the reservation and wakes its owner. It reports
// whether this caller won the fulfillment race.
func (w *waitNode[T]) fulfill(v *dbox[T]) bool {
	if !w.item.CompareAndSwap(nil, v) {
		return false
	}
	if p := w.waiter.Load(); p != nil {
		p.Unpark()
	}
	return true
}

// await blocks until the reservation is fulfilled, spinning briefly first
// when profitable, and returns the datum.
func (w *waitNode[T]) await(hot func() bool) *dbox[T] {
	spins := 0
	if hot() {
		spins = spin.UntimedSpins()
	}
	for i := 0; ; i++ {
		if x := w.item.Load(); x != nil {
			return x
		}
		if spins > 0 {
			spins--
			spin.Pause(i)
			continue
		}
		p := w.waiter.Load()
		if p == nil {
			p = park.New()
			w.waiter.Store(p)
			continue // re-check item before parking
		}
		p.Park()
	}
}

// awaitTimeout is await with a deadline; ok is false on timeout, in which
// case the reservation has been atomically canceled (item == canceled).
func (w *waitNode[T]) awaitTimeout(hot func() bool, deadline time.Time, canceled *dbox[T]) (*dbox[T], bool) {
	spins := 0
	if hot() {
		spins = spin.TimedSpins()
	}
	for i := 0; ; i++ {
		if x := w.item.Load(); x != nil {
			if x == canceled {
				return nil, false
			}
			return x, true
		}
		if !time.Now().Before(deadline) {
			w.item.CompareAndSwap(nil, canceled)
			continue // reload: either we canceled or a fulfiller won
		}
		if spins > 0 {
			spins--
			spin.Pause(i)
			continue
		}
		p := w.waiter.Load()
		if p == nil {
			p = park.New()
			w.waiter.Store(p)
			continue
		}
		p.ParkDeadline(deadline)
	}
}
