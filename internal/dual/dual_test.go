package dual

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestQueueEnqueueNeverBlocks(t *testing.T) {
	q := NewQueue[int]()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			q.Enqueue(i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Enqueue blocked")
	}
	if !q.HasData() {
		t.Fatal("queue does not report buffered data")
	}
}

func TestQueueFIFOData(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 50; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 50; i++ {
		if v := q.Dequeue(); v != i {
			t.Fatalf("Dequeue = %d, want %d", v, i)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after drain")
	}
}

func TestQueueConsumerBlocksUntilProducer(t *testing.T) {
	q := NewQueue[int]()
	var got atomic.Int64
	var finished atomic.Bool
	go func() {
		got.Store(int64(q.Dequeue()))
		finished.Store(true)
	}()
	waitUntil(t, "reservation enqueued", q.HasReservations)
	if finished.Load() {
		t.Fatal("Dequeue returned with no data")
	}
	q.Enqueue(42)
	waitUntil(t, "dequeue finished", finished.Load)
	if got.Load() != 42 {
		t.Fatalf("Dequeue = %d, want 42", got.Load())
	}
}

func TestQueueFIFOReservations(t *testing.T) {
	q := NewQueue[int]()
	const n = 6
	results := make([]chan int, n)
	for i := 0; i < n; i++ {
		results[i] = make(chan int, 1)
		ch := results[i]
		go func() { ch <- q.Dequeue() }()
		want := i + 1
		waitUntil(t, "reservations queued", func() bool {
			// Count reservations by filling them later; here just
			// wait for presence plus settle time via length proxy.
			return q.HasReservations() && countReservations(q) == want
		})
	}
	for i := 0; i < n; i++ {
		q.Enqueue(100 + i)
	}
	for i := 0; i < n; i++ {
		if got := <-results[i]; got != 100+i {
			t.Fatalf("consumer %d got %d, want %d (FIFO violated)", i, got, 100+i)
		}
	}
}

// countReservations walks the list counting unfilled reservations.
func countReservations[T any](q *Queue[T]) int {
	n := 0
	for cur := q.head.Load().next.Load(); cur != nil; cur = cur.next.Load() {
		if !cur.isData && cur.item.Load() == nil {
			n++
		}
	}
	return n
}

func TestQueueDequeueTimeout(t *testing.T) {
	q := NewQueue[int]()
	t0 := time.Now()
	if _, ok := q.DequeueTimeout(20 * time.Millisecond); ok {
		t.Fatal("DequeueTimeout succeeded on empty queue")
	}
	if time.Since(t0) < 15*time.Millisecond {
		t.Fatal("DequeueTimeout returned early")
	}
	q.Enqueue(5)
	if v, ok := q.DequeueTimeout(time.Second); !ok || v != 5 {
		t.Fatalf("DequeueTimeout = (%d,%v), want (5,true)", v, ok)
	}
}

func TestQueueTryDequeue(t *testing.T) {
	q := NewQueue[int]()
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue succeeded on empty queue")
	}
	q.Enqueue(1)
	q.Enqueue(2)
	if v, ok := q.TryDequeue(); !ok || v != 1 {
		t.Fatalf("TryDequeue = (%d,%v), want (1,true)", v, ok)
	}
	if v, ok := q.TryDequeue(); !ok || v != 2 {
		t.Fatalf("TryDequeue = (%d,%v), want (2,true)", v, ok)
	}
}

func TestQueueTimeoutThenFulfillSkipsCanceled(t *testing.T) {
	q := NewQueue[int]()
	// One consumer times out, a second keeps waiting; an enqueue must
	// reach the live consumer, skipping the canceled reservation.
	if _, ok := q.DequeueTimeout(5 * time.Millisecond); ok {
		t.Fatal("unexpected data")
	}
	got := make(chan int, 1)
	go func() {
		v, ok := q.DequeueTimeout(5 * time.Second)
		if ok {
			got <- v
		}
	}()
	waitUntil(t, "live reservation", func() bool { return countReservations(q) == 1 })
	q.Enqueue(9)
	select {
	case v := <-got:
		if v != 9 {
			t.Fatalf("got %d, want 9", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live consumer never received the value")
	}
}

func TestQueueConcurrentConservation(t *testing.T) {
	q := NewQueue[int64]()
	const producers, consumers, perProducer = 8, 8, 1000
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[int64]bool)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				q.Enqueue(id<<32 | i)
			}
		}(int64(p))
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < producers*perProducer/consumers; i++ {
				v := q.Dequeue()
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d delivered twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d values, want %d", len(seen), producers*perProducer)
	}
}

func TestStackPushNeverBlocks(t *testing.T) {
	s := NewStack[int]()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			s.Push(i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Push blocked")
	}
	if !s.HasData() {
		t.Fatal("stack does not report buffered data")
	}
}

func TestStackLIFOData(t *testing.T) {
	s := NewStack[int]()
	for i := 0; i < 50; i++ {
		s.Push(i)
	}
	for i := 49; i >= 0; i-- {
		if v := s.Pop(); v != i {
			t.Fatalf("Pop = %d, want %d", v, i)
		}
	}
	if !s.Empty() {
		t.Fatal("stack not empty after drain")
	}
}

func TestStackConsumerBlocksUntilProducer(t *testing.T) {
	s := NewStack[int]()
	var got atomic.Int64
	var finished atomic.Bool
	go func() {
		got.Store(int64(s.Pop()))
		finished.Store(true)
	}()
	waitUntil(t, "reservation pushed", s.HasReservations)
	if finished.Load() {
		t.Fatal("Pop returned with no data")
	}
	s.Push(42)
	waitUntil(t, "pop finished", finished.Load)
	if got.Load() != 42 {
		t.Fatalf("Pop = %d, want 42", got.Load())
	}
}

func TestStackPopTimeout(t *testing.T) {
	s := NewStack[int]()
	t0 := time.Now()
	if _, ok := s.PopTimeout(20 * time.Millisecond); ok {
		t.Fatal("PopTimeout succeeded on empty stack")
	}
	if time.Since(t0) < 15*time.Millisecond {
		t.Fatal("PopTimeout returned early")
	}
	s.Push(5)
	if v, ok := s.PopTimeout(time.Second); !ok || v != 5 {
		t.Fatalf("PopTimeout = (%d,%v), want (5,true)", v, ok)
	}
}

func TestStackTryPop(t *testing.T) {
	s := NewStack[int]()
	if _, ok := s.TryPop(); ok {
		t.Fatal("TryPop succeeded on empty stack")
	}
	s.Push(1)
	s.Push(2)
	if v, ok := s.TryPop(); !ok || v != 2 {
		t.Fatalf("TryPop = (%d,%v), want (2,true)", v, ok)
	}
	if v, ok := s.TryPop(); !ok || v != 1 {
		t.Fatalf("TryPop = (%d,%v), want (1,true)", v, ok)
	}
}

func TestStackTimeoutThenFulfillSkipsCanceled(t *testing.T) {
	s := NewStack[int]()
	if _, ok := s.PopTimeout(5 * time.Millisecond); ok {
		t.Fatal("unexpected data")
	}
	got := make(chan int, 1)
	go func() {
		if v, ok := s.PopTimeout(5 * time.Second); ok {
			got <- v
		}
	}()
	waitUntil(t, "live reservation on top", func() bool {
		h := s.head.Load()
		return h != nil && !h.isData && h.item.Load() == nil
	})
	s.Push(9)
	select {
	case v := <-got:
		if v != 9 {
			t.Fatalf("got %d, want 9", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live consumer never received the value")
	}
}

func TestStackConcurrentConservation(t *testing.T) {
	s := NewStack[int64]()
	const producers, consumers, perProducer = 8, 8, 1000
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[int64]bool)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				s.Push(id<<32 | i)
			}
		}(int64(p))
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < producers*perProducer/consumers; i++ {
				v := s.Pop()
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d delivered twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d values, want %d", len(seen), producers*perProducer)
	}
}

func TestZeroSizedPayloads(t *testing.T) {
	// Regression: for zero-sized T all value pointers share one address,
	// so sentinel comparisons must use the boxed representation.
	t.Run("queue", func(t *testing.T) {
		q := NewQueue[struct{}]()
		if _, ok := q.DequeueTimeout(2 * time.Millisecond); ok {
			t.Fatal("DequeueTimeout succeeded on empty queue")
		}
		q.Enqueue(struct{}{})
		if _, ok := q.TryDequeue(); !ok {
			t.Fatal("TryDequeue failed with data present")
		}
	})
	t.Run("stack", func(t *testing.T) {
		s := NewStack[struct{}]()
		if _, ok := s.PopTimeout(2 * time.Millisecond); ok {
			t.Fatal("PopTimeout succeeded on empty stack")
		}
		s.Push(struct{}{})
		if _, ok := s.TryPop(); !ok {
			t.Fatal("TryPop failed with data present")
		}
	})
}
