// Package exchanger implements elimination-based pairing: an arena of slots
// in which two threads meet, swap values, and leave without touching a
// central data structure.
//
// Elimination (Shavit & Touitou) spreads the contention that the paper
// identifies as the remaining bottleneck of its synchronous queues — all
// threads CASing one head/tail word — across multiple memory locations. The
// paper's authors applied the technique to the java.util.concurrent
// Exchanger (Scherer, Lea & Scott 2005) and report, in §5, preliminary
// experiments using elimination as a front-end to the synchronous queues;
// this package provides both: a standalone Exchanger and an Arena usable as
// an elimination front-end (benchmarked as Ablation C).
package exchanger

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
	"synchq/internal/park"
	"synchq/internal/spin"
)

// Status is the outcome of a bounded exchange attempt.
type Status int

const (
	// OK means a partner was found and values were swapped.
	OK Status = iota
	// Timeout means no partner arrived within the patience interval.
	Timeout
	// Canceled means the cancel channel fired first.
	Canceled
)

// xnode is one party waiting in an arena slot: mine is the value it brings
// (nil for a pure consumer in elimination mode), hole receives the
// partner's value or a sentinel (canceled / taken-by-pure-consumer).
type xnode[T any] struct {
	mine   *xbox[T]
	hole   atomic.Pointer[xbox[T]]
	waiter atomic.Pointer[park.Parker]
	// wp is the embedded parker, initialized in place by await and
	// published through the waiter word, so slow-path waits allocate
	// nothing beyond the node.
	wp     park.Parker
	isData bool
}

// slot is a padded arena cell, spacing the CAS targets so threads meeting
// in different slots do not collide on a cache line — the entire point of
// elimination.
type slot[T any] struct {
	_ [64]byte
	n atomic.Pointer[xnode[T]]
	_ [64]byte
}

// xbox boxes an exchanged value. The pooled flag doubles as the padding
// byte that guarantees every allocation a unique address even when T is
// zero-sized, so pointer identity against the hole sentinels is always
// meaningful.
//
// Boxes with pooled set circulate through the exchanger's box pool under
// the scrub-before-pool doctrine: a box is recycled only by the single
// party that read its value (ownership transfers at the hole CAS, and the
// winner of that CAS is the only reader), or by its owner when the value
// never transferred (the owner's hole was poisoned first, so no fulfiller
// can reach the box). Hole CASes always compare against nil, never against
// a box address, so recycling boxes cannot reintroduce ABA; the waiter
// nodes, whose addresses ARE CAS compare values in the slot words, stay
// GC-only (see DESIGN.md "Node and parker lifecycle").
type xbox[T any] struct {
	v      T
	pooled bool
}

// Exchanger lets pairs of goroutines swap values: each party presents a
// value and receives its partner's. Meetings are spread over an arena
// sized to the machine. Use New to create one; an Exchanger must not be
// copied after first use.
type Exchanger[T any] struct {
	arena    []slot[T]
	canceled *xbox[T] // hole sentinel: party canceled
	taken    *xbox[T] // hole sentinel: matched by a pure consumer
	// asArena restricts meetings to complementary parties (data with
	// request); a standalone exchanger lets any two parties meet.
	asArena bool
	// ad, when non-nil, adapts the active slot range and per-attempt
	// patience to observed contention (see adaptor); nil pins the static
	// full-width policy.
	ad *adaptor
	// bpool recycles pooled value boxes (see xbox).
	bpool sync.Pool
	// m receives the instrumentation counters; nil disables them.
	m *metrics.Handle
	// f injects deterministic faults at the CAS sites; nil disables.
	f *fault.Injector
}

// SetMetrics attaches an instrumentation handle (nil disables) and returns
// e for chaining. Call before the exchanger is shared between goroutines.
func (e *Exchanger[T]) SetMetrics(h *metrics.Handle) *Exchanger[T] {
	e.m = h
	if e.ad != nil {
		h.Set(metrics.ArenaWidth, int64(e.ad.Width()))
	}
	return e
}

// SetFault attaches a fault injector (nil disables) and returns e for
// chaining. Call before the exchanger is shared between goroutines.
func (e *Exchanger[T]) SetFault(f *fault.Injector) *Exchanger[T] {
	e.f = f
	return e
}

// Metrics returns the exchanger's instrumentation handle (nil when
// disabled).
func (e *Exchanger[T]) Metrics() *metrics.Handle { return e.m }

// arenaSize picks the number of slots: one is enough at low parallelism;
// contention spreading only pays with many hardware threads.
func arenaSize() int {
	n := runtime.GOMAXPROCS(0) / 2
	if n < 1 {
		n = 1
	}
	if n > 32 {
		n = 32
	}
	return n
}

// New returns an Exchanger with a platform-sized arena.
func New[T any]() *Exchanger[T] { return NewSize[T](arenaSize()) }

// NewSize returns an Exchanger with the given number of arena slots
// (minimum 1). Exposed so benchmarks can ablate the arena size.
func NewSize[T any](slots int) *Exchanger[T] {
	if slots < 1 {
		slots = 1
	}
	return &Exchanger[T]{arena: make([]slot[T], slots), canceled: new(xbox[T]), taken: new(xbox[T])}
}

// getBox returns a value box holding v, recycled from the box pool when
// possible.
func (e *Exchanger[T]) getBox(v T) *xbox[T] {
	if x, _ := e.bpool.Get().(*xbox[T]); x != nil {
		e.m.Inc(metrics.NodeReuses)
		x.v = v
		return x
	}
	e.m.Inc(metrics.NodeAllocs)
	return &xbox[T]{v: v, pooled: true}
}

// putBox recycles a box whose value has been consumed (or never
// transferred). Only boxes the exchanger itself issued are pooled — the
// pooled flag excludes the sentinels and caller-built boxes — and the
// value is scrubbed first so the pool never retains user data.
func (e *Exchanger[T]) putBox(x *xbox[T]) {
	if x == nil || !x.pooled {
		return
	}
	var zero T
	x.v = zero
	e.bpool.Put(x)
}

// Exchange presents v and blocks until a partner presents its own value,
// then returns the partner's value.
func (e *Exchanger[T]) Exchange(v T) T {
	x, _ := e.exchange(e.getBox(v), true, time.Time{}, nil)
	out := x.v
	e.putBox(x) // we are the box's sole reader: consume and recycle
	return out
}

// ExchangeTimeout is Exchange with patience d; ok is false on timeout.
func (e *Exchanger[T]) ExchangeTimeout(v T, d time.Duration) (T, bool) {
	b := e.getBox(v)
	x, st := e.exchange(b, true, time.Now().Add(d), nil)
	if st != OK {
		// The hole was poisoned before any fulfiller could deposit, so
		// our datum never transferred and the box is still ours.
		e.putBox(b)
		var zero T
		return zero, false
	}
	out := x.v
	e.putBox(x)
	return out, true
}

// ExchangeCancel is Exchange abandoned when cancel fires.
func (e *Exchanger[T]) ExchangeCancel(v T, cancel <-chan struct{}) (T, Status) {
	b := e.getBox(v)
	x, st := e.exchange(b, true, time.Time{}, cancel)
	if st != OK {
		e.putBox(b) // never transferred (see ExchangeTimeout)
		var zero T
		return zero, st
	}
	out := x.v
	e.putBox(x)
	return out, OK
}

// exchange is the engine shared by the standalone Exchanger and the Arena.
// Slot 0 is the main location: only there does a party wait with its full
// patience (or forever). Excursions to outer slots — taken after collisions
// on the main slot — are strictly spin-bounded, after which the party falls
// back to slot 0, the paper's "fall back to the main location" rule. This
// guarantees that two unbounded parties eventually meet.
//
// When an adaptor is attached, every attempt reports its outcome and how
// many CAS races it lost, feeding the contention EWMA that reshapes the
// active slot range and the arena patience.
func (e *Exchanger[T]) exchange(v *xbox[T], isData bool, deadline time.Time, cancel <-chan struct{}) (*xbox[T], Status) {
	t0 := e.m.Start()
	fails := 0
	x, st := e.exchangeCounting(v, isData, deadline, cancel, &fails, t0)
	if t0 != 0 {
		d := time.Duration(metrics.Nanos() - t0)
		switch {
		case st != OK:
			// An arena miss is not wasted wait from the caller's view:
			// the operation falls back to the backing structure, and the
			// eliminating layer records the full detour as FallbackNs.
			if !e.asArena {
				e.m.Record(metrics.WastedNs, d)
			}
		case e.asArena:
			e.m.Record(metrics.ElimNs, d)
		default:
			e.m.Record(metrics.HandoffNs, d)
		}
	}
	if e.ad != nil {
		e.ad.observe(st == OK, fails, e.m)
	}
	return x, st
}

func (e *Exchanger[T]) exchangeCounting(v *xbox[T], isData bool, deadline time.Time, cancel <-chan struct{}, fails *int, t0 int64) (*xbox[T], Status) {
	me := &xnode[T]{mine: v, isData: isData}
	idx := 0
	for {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			e.m.Inc(metrics.Timeouts)
			return nil, Timeout
		}
		if cancel != nil {
			select {
			case <-cancel:
				e.m.Inc(metrics.Cancellations)
				return nil, Canceled
			default:
			}
		}
		s := &e.arena[idx]
		cur := s.n.Load()
		switch {
		case cur == nil && idx == 0:
			if e.f.FailCAS(fault.XSlotCAS) {
				// Injected collision on the main slot: take the
				// excursion arc a real lost claim would take.
				e.m.Inc(metrics.CASFailEnqueue)
				*fails++
				e.f.Preempt(fault.XArenaPause)
				idx = e.outerSlot()
				continue
			}
			if s.n.CompareAndSwap(nil, me) {
				x, st := e.await(me, s, deadline, cancel, t0)
				if st == OK {
					return x, OK
				}
				return nil, st
			}
			// Collision on the main slot: brief excursion. The pause
			// site holds this window — collision observed, excursion
			// not yet taken — open for the chaos schedules.
			e.m.Inc(metrics.CASFailEnqueue)
			*fails++
			e.f.Preempt(fault.XArenaPause)
			idx = e.outerSlot()
		case cur == nil:
			if s.n.CompareAndSwap(nil, me) {
				if x, ok := e.awaitBrief(me, s); ok {
					return x, OK
				}
				// Withdrew; the node's hole is poisoned, so
				// a fresh node is needed.
				me = &xnode[T]{mine: v, isData: isData}
			} else {
				e.m.Inc(metrics.CASFailEnqueue)
				*fails++
			}
			idx = 0
		case !e.asArena || cur.isData != isData:
			// Eligible partner: claim it and fulfill.
			if e.f.FailCAS(fault.XFulfillCAS) {
				// Injected lost claim: retry from a fresh look at
				// the slot, as after a real loss.
				e.m.Inc(metrics.CASFailFulfill)
				*fails++
				continue
			}
			if s.n.CompareAndSwap(cur, nil) {
				e.f.Preempt(fault.XFulfillPause)
				if cur.hole.CompareAndSwap(nil, e.fulfillValue(v)) {
					e.m.Inc(metrics.Fulfillments)
					if p := cur.waiter.Load(); p != nil {
						p.Unpark()
					}
					return cur.mine, OK
				}
				// Partner canceled between claim and
				// fulfill; keep looking.
				e.m.Inc(metrics.CASFailFulfill)
				*fails++
			} else {
				e.m.Inc(metrics.CASFailFulfill)
				*fails++
			}
		default:
			// Same-mode occupant (arena mode): look elsewhere,
			// alternating between the main and an outer slot.
			if idx == 0 {
				idx = e.outerSlot()
			} else {
				idx = 0
			}
		}
	}
}

// outerSlot picks a random non-main slot within the active width (the full
// arena under the static policy, the adaptor's current width otherwise),
// or the main slot if only one slot is active.
func (e *Exchanger[T]) outerSlot() int {
	w := len(e.arena)
	if e.ad != nil {
		if aw := e.ad.Width(); aw < w {
			w = aw
		}
	}
	if w <= 1 {
		return 0
	}
	return 1 + rand.IntN(w-1)
}

// awaitBrief spins for a bounded interval waiting for a partner at an
// outer slot, then withdraws. It never parks: outer slots are purely for
// contention spreading, so waits there stay cheap and bounded.
func (e *Exchanger[T]) awaitBrief(me *xnode[T], s *slot[T]) (*xbox[T], bool) {
	for i := 0; i < spin.MaxUntimedSpins; i++ {
		x := me.hole.Load()
		if x != nil && x != e.canceled {
			if x == e.taken {
				return nil, true
			}
			return x, true
		}
		// Outer slots are off the hot path, so the per-iteration
		// metered tick is fine here.
		spin.MeteredPause(i, e.m)
	}
	if me.hole.CompareAndSwap(nil, e.canceled) {
		s.n.CompareAndSwap(me, nil) // withdraw
		return nil, false
	}
	// A partner fulfilled us as we were giving up.
	x := me.hole.Load()
	if x == e.taken {
		return nil, true
	}
	return x, true
}

// fulfillValue is what we deposit into the partner's hole: our value, or —
// for a pure consumer bringing no value — the "taken" sentinel.
func (e *Exchanger[T]) fulfillValue(v *xbox[T]) *xbox[T] {
	if v != nil {
		return v
	}
	return e.taken
}

// await waits for our hole to be filled, spin-then-park, cancelling on
// deadline/cancel. On cancellation it also withdraws the node from its
// slot so later arrivals do not claim a dead node. t0 is the exchange's
// arrival timestamp for the spin-vs-park breakdown (zero when
// uninstrumented); the end-to-end outcome is recorded by exchange.
func (e *Exchanger[T]) await(me *xnode[T], s *slot[T], deadline time.Time, cancel <-chan struct{}, t0 int64) (*xbox[T], Status) {
	spins := spin.UntimedSpins()
	if !deadline.IsZero() {
		spins = spin.TimedSpins()
	}
	armed := false
	status := Timeout
	spun := int64(0)
	for i := 0; ; i++ {
		x := me.hole.Load()
		if x != nil {
			e.m.Add(metrics.Spins, spun)
			if !armed {
				spin.EndPhase(e.m, t0) // the whole wait was the spin phase
			}
			switch x {
			case e.canceled:
				if status == Canceled {
					e.m.Inc(metrics.Cancellations)
				} else {
					e.m.Inc(metrics.Timeouts)
				}
				s.n.CompareAndSwap(me, nil) // withdraw
				return nil, status
			case e.taken:
				return nil, OK // matched by a pure consumer
			default:
				return x, OK
			}
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			status = Timeout
			me.hole.CompareAndSwap(nil, e.canceled)
			continue
		}
		if cancel != nil {
			select {
			case <-cancel:
				status = Canceled
				me.hole.CompareAndSwap(nil, e.canceled)
				continue
			default:
			}
		}
		if spins > 0 {
			spins--
			spun++
			spin.Pause(i)
			continue
		}
		if !armed {
			spin.EndPhase(e.m, t0) // spin budget exhausted: the busy phase ends here
			me.wp.Init(e.m, e.f)
			me.waiter.Store(&me.wp)
			armed = true
			continue
		}
		switch me.wp.Wait(deadline, cancel) {
		case park.Unparked:
		case park.DeadlineExceeded:
			status = Timeout
			me.hole.CompareAndSwap(nil, e.canceled)
		case park.Canceled:
			status = Canceled
			me.hole.CompareAndSwap(nil, e.canceled)
		}
	}
}
