package exchanger

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A single pair exchanging through arenas of different sizes: slot 0 is
// always the meeting point for two parties, so size should not matter
// here — this is the elimination overhead floor.
func BenchmarkPairExchange(b *testing.B) {
	for _, slots := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			e := NewSize[int](slots)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < b.N; i++ {
					e.Exchange(i)
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Exchange(i)
			}
			wg.Wait()
		})
	}
}

// Many pairs exchanging concurrently: with more slots, meetings spread and
// contention on any single word drops — the paper's elimination payoff,
// visible only with real hardware parallelism.
//
// Parties share one global work target rather than per-party quotas:
// pairwise matching with fixed quotas can strand a single party whose
// potential partners have all finished (an unbounded Exchange would then
// wait forever). With a shared counter, any party below the target implies
// every party is still participating, so a partner always arrives.
func BenchmarkManyPairsExchange(b *testing.B) {
	for _, cfg := range []struct{ pairs, slots int }{
		{4, 1}, {4, 8}, {16, 1}, {16, 8},
	} {
		b.Run(fmt.Sprintf("pairs=%d/slots=%d", cfg.pairs, cfg.slots), func(b *testing.B) {
			e := NewSize[int](cfg.slots)
			var wg sync.WaitGroup
			var done atomic.Int64
			target := int64(b.N)
			b.ResetTimer()
			for p := 0; p < 2*cfg.pairs; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for done.Load() < target {
						if _, ok := e.ExchangeTimeout(1, time.Millisecond); ok {
							done.Add(1)
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
