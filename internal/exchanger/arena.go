package exchanger

import (
	"time"

	"synchq/internal/fault"
	"synchq/internal/metrics"
)

// Arena is an elimination front-end for a synchronous queue: producers and
// consumers first try, with bounded patience, to meet in the arena; only on
// failure do they fall back to the queue proper. Two threads that meet here
// cancel each other out without ever touching the queue's head/tail words —
// the contention-reduction idea the paper sketches in §5.
//
// An Arena never buffers: a producer that fails to meet a consumer within
// its patience withdraws, preserving synchronous semantics.
//
// An arena is either static (NewArena: fixed slot count, caller-chosen
// patience per attempt) or adaptive (NewArenaAdaptive: the active slot
// range and per-attempt patience self-tune from the observed contention,
// collapsing to direct hand-off — no arena detour at all — when the
// structure is quiet).
type Arena[T any] struct {
	e *Exchanger[T]
}

// NewArena returns an elimination arena with the given number of slots
// (minimum 1; pass 0 for the platform default).
func NewArena[T any](slots int) *Arena[T] {
	var e *Exchanger[T]
	if slots <= 0 {
		e = New[T]()
	} else {
		e = NewSize[T](slots)
	}
	e.asArena = true
	return &Arena[T]{e: e}
}

// NewArenaAdaptive returns a self-tuning elimination arena: maxSlots caps
// the arena width (0 for the platform default, sized from GOMAXPROCS), and
// the active width and per-attempt patience adapt online to the observed
// CAS-failure rate. Use TryGiveAdaptive/TryTakeAdaptive, which supply
// their own patience.
func NewArenaAdaptive[T any](maxSlots int) *Arena[T] {
	if maxSlots <= 0 {
		maxSlots = adaptiveMaxWidth()
	}
	e := NewSize[T](maxSlots)
	e.asArena = true
	e.ad = newAdaptor(len(e.arena))
	return &Arena[T]{e: e}
}

// SetMetrics attaches an instrumentation handle (nil disables) and returns
// a for chaining. Call before the arena is shared between goroutines.
func (a *Arena[T]) SetMetrics(h *metrics.Handle) *Arena[T] {
	a.e.SetMetrics(h)
	return a
}

// SetFault attaches a fault injector (nil disables) and returns a for
// chaining. Call before the arena is shared between goroutines.
func (a *Arena[T]) SetFault(f *fault.Injector) *Arena[T] {
	a.e.SetFault(f)
	return a
}

// Metrics returns the arena's instrumentation handle (nil when disabled).
func (a *Arena[T]) Metrics() *metrics.Handle { return a.e.m }

// Adaptive reports whether the arena self-tunes.
func (a *Arena[T]) Adaptive() bool { return a.e.ad != nil }

// Width returns the arena's active slot count: the full arena under the
// static policy, the adaptor's current width otherwise.
func (a *Arena[T]) Width() int {
	if a.e.ad != nil {
		return a.e.ad.Width()
	}
	return len(a.e.arena)
}

// Patience returns the adaptive per-attempt patience (zero when collapsed
// to direct hand-off, or when the arena is static and the caller supplies
// patience explicitly).
func (a *Arena[T]) Patience() time.Duration {
	if a.e.ad != nil {
		return a.e.ad.Patience()
	}
	return 0
}

// TryGive attempts to hand v to a consumer via the arena, waiting at most
// patience. It reports whether the hand-off happened.
func (a *Arena[T]) TryGive(v T, patience time.Duration) bool {
	b := a.e.getBox(v)
	_, st := a.e.exchange(b, true, time.Now().Add(patience), nil)
	if st != OK {
		a.e.putBox(b) // the datum never transferred; the box is still ours
		a.e.m.Inc(metrics.ElimMisses)
		return false
	}
	a.e.m.Inc(metrics.ElimHits)
	return true
}

// TryTake attempts to receive a value from a producer via the arena,
// waiting at most patience.
func (a *Arena[T]) TryTake(patience time.Duration) (T, bool) {
	x, st := a.e.exchange(nil, false, time.Now().Add(patience), nil)
	if st != OK || x == nil {
		var zero T
		a.e.m.Inc(metrics.ElimMisses)
		return zero, false
	}
	v := x.v
	a.e.putBox(x) // sole reader of the producer's box: consume and recycle
	a.e.m.Inc(metrics.ElimHits)
	return v, true
}

// TryGiveAdaptive is TryGive with self-tuned patience: in collapsed mode
// (uncontended) it declines immediately except for the periodic re-probe,
// so the caller goes straight to the backing structure.
func (a *Arena[T]) TryGiveAdaptive(v T) bool {
	p, try := a.adaptiveAttempt()
	if !try {
		a.e.m.Inc(metrics.ElimMisses)
		return false
	}
	return a.TryGive(v, p)
}

// TryTakeAdaptive is TryTake with self-tuned patience.
func (a *Arena[T]) TryTakeAdaptive() (T, bool) {
	p, try := a.adaptiveAttempt()
	if !try {
		a.e.m.Inc(metrics.ElimMisses)
		var zero T
		return zero, false
	}
	return a.TryTake(p)
}

// adaptiveAttempt resolves the patience for one adaptive attempt; a static
// arena (no adaptor) falls back to a small fixed patience so the adaptive
// entry points remain usable on any arena.
func (a *Arena[T]) adaptiveAttempt() (time.Duration, bool) {
	if a.e.ad == nil {
		return 5 * time.Microsecond, true
	}
	return a.e.ad.attempt()
}
