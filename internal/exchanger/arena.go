package exchanger

import "time"

// Arena is an elimination front-end for a synchronous queue: producers and
// consumers first try, with bounded patience, to meet in the arena; only on
// failure do they fall back to the queue proper. Two threads that meet here
// cancel each other out without ever touching the queue's head/tail words —
// the contention-reduction idea the paper sketches in §5.
//
// An Arena never buffers: a producer that fails to meet a consumer within
// its patience withdraws, preserving synchronous semantics.
type Arena[T any] struct {
	e *Exchanger[T]
}

// NewArena returns an elimination arena with the given number of slots
// (minimum 1; pass 0 for the platform default).
func NewArena[T any](slots int) *Arena[T] {
	var e *Exchanger[T]
	if slots <= 0 {
		e = New[T]()
	} else {
		e = NewSize[T](slots)
	}
	e.asArena = true
	return &Arena[T]{e: e}
}

// TryGive attempts to hand v to a consumer via the arena, waiting at most
// patience. It reports whether the hand-off happened.
func (a *Arena[T]) TryGive(v T, patience time.Duration) bool {
	_, st := a.e.exchange(&xbox[T]{v: v}, true, time.Now().Add(patience), nil)
	return st == OK
}

// TryTake attempts to receive a value from a producer via the arena,
// waiting at most patience.
func (a *Arena[T]) TryTake(patience time.Duration) (T, bool) {
	x, st := a.e.exchange(nil, false, time.Now().Add(patience), nil)
	if st != OK || x == nil {
		var zero T
		return zero, false
	}
	return x.v, true
}
