package exchanger

import (
	"sync"
	"testing"
	"time"
)

func TestExchangeSwapsValues(t *testing.T) {
	e := New[int]()
	done := make(chan int)
	go func() { done <- e.Exchange(1) }()
	got := e.Exchange(2)
	other := <-done
	if got != 1 || other != 2 {
		t.Fatalf("exchange = (%d,%d), want (1,2)", got, other)
	}
}

func TestExchangeTimeoutExpires(t *testing.T) {
	e := New[int]()
	t0 := time.Now()
	if _, ok := e.ExchangeTimeout(1, 20*time.Millisecond); ok {
		t.Fatal("ExchangeTimeout succeeded with no partner")
	}
	if time.Since(t0) < 15*time.Millisecond {
		t.Fatal("ExchangeTimeout returned early")
	}
}

func TestExchangeTimeoutSucceedsWithPartner(t *testing.T) {
	e := New[int]()
	done := make(chan int)
	go func() { done <- e.Exchange(10) }()
	v, ok := e.ExchangeTimeout(20, 5*time.Second)
	if !ok || v != 10 {
		t.Fatalf("ExchangeTimeout = (%d,%v), want (10,true)", v, ok)
	}
	if got := <-done; got != 20 {
		t.Fatalf("partner received %d, want 20", got)
	}
}

func TestExchangeCancel(t *testing.T) {
	e := New[int]()
	cancel := make(chan struct{})
	done := make(chan Status)
	go func() {
		_, st := e.ExchangeCancel(1, cancel)
		done <- st
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	if st := <-done; st != Canceled {
		t.Fatalf("ExchangeCancel status = %v, want Canceled", st)
	}
}

func TestManyPairsAllMatched(t *testing.T) {
	// 2N parties must pair perfectly: every value appears exactly once
	// among the results, and nobody receives their own value... except
	// that pairing is arbitrary, so we only check conservation.
	e := New[int]()
	const pairs = 16
	results := make(chan int, 2*pairs)
	var wg sync.WaitGroup
	for i := 0; i < 2*pairs; i++ {
		wg.Add(1)
		v := i
		go func() {
			defer wg.Done()
			results <- e.Exchange(v)
		}()
	}
	wg.Wait()
	close(results)
	seen := make(map[int]bool)
	for v := range results {
		if seen[v] {
			t.Fatalf("value %d received twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 2*pairs {
		t.Fatalf("received %d distinct values, want %d", len(seen), 2*pairs)
	}
}

func TestSingleSlotExchangerStillPairs(t *testing.T) {
	e := NewSize[int](1)
	const pairs = 8
	var wg sync.WaitGroup
	results := make(chan int, 2*pairs)
	for i := 0; i < 2*pairs; i++ {
		wg.Add(1)
		v := i
		go func() {
			defer wg.Done()
			results <- e.Exchange(v)
		}()
	}
	wg.Wait()
	close(results)
	n := 0
	for range results {
		n++
	}
	if n != 2*pairs {
		t.Fatalf("completed %d exchanges, want %d", n, 2*pairs)
	}
}

func TestArenaGiveTakePair(t *testing.T) {
	a := NewArena[int](4)
	got := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if v, ok := a.TryTake(time.Second); ok {
			got <- v
		} else {
			got <- -1
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if !a.TryGive(42, time.Second) {
		t.Fatal("TryGive failed with a waiting taker")
	}
	wg.Wait()
	if v := <-got; v != 42 {
		t.Fatalf("TryTake = %d, want 42", v)
	}
}

func TestArenaTimesOutWithoutCounterpart(t *testing.T) {
	a := NewArena[int](4)
	if a.TryGive(1, 5*time.Millisecond) {
		t.Fatal("TryGive succeeded with no taker")
	}
	if _, ok := a.TryTake(5 * time.Millisecond); ok {
		t.Fatal("TryTake succeeded with no giver")
	}
}

func TestArenaSameModePartiesDoNotMatch(t *testing.T) {
	// Two producers must never exchange with each other.
	a := NewArena[int](1)
	var wg sync.WaitGroup
	oks := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		v := i
		go func() {
			defer wg.Done()
			oks <- a.TryGive(v, 20*time.Millisecond)
		}()
	}
	wg.Wait()
	close(oks)
	for ok := range oks {
		if ok {
			t.Fatal("a producer matched without any consumer present")
		}
	}
}

func TestArenaConservationUnderLoad(t *testing.T) {
	a := NewArena[int](0)
	const n = 500
	var given, taken sync.Map
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if a.TryGive(i, time.Millisecond) {
				given.Store(i, true)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if v, ok := a.TryTake(time.Millisecond); ok {
				if _, dup := taken.LoadOrStore(v, true); dup {
					t.Errorf("value %d taken twice", v)
				}
			}
		}
	}()
	wg.Wait()
	// Everything taken must have been given.
	taken.Range(func(k, _ any) bool {
		if _, ok := given.Load(k); !ok {
			t.Errorf("value %v taken but not recorded as given", k)
		}
		return true
	})
	nGiven, nTaken := 0, 0
	given.Range(func(_, _ any) bool { nGiven++; return true })
	taken.Range(func(_, _ any) bool { nTaken++; return true })
	if nGiven != nTaken {
		t.Fatalf("gave %d values but took %d", nGiven, nTaken)
	}
}

func TestZeroSizedExchange(t *testing.T) {
	// Regression: zero-sized T must not confuse the hole sentinels.
	e := New[struct{}]()
	if _, ok := e.ExchangeTimeout(struct{}{}, 2*time.Millisecond); ok {
		t.Fatal("ExchangeTimeout succeeded with no partner")
	}
	done := make(chan struct{})
	go func() {
		e.Exchange(struct{}{})
		close(done)
	}()
	e.Exchange(struct{}{})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("zero-sized exchange hung")
	}
	a := NewArena[struct{}](2)
	if a.TryGive(struct{}{}, 2*time.Millisecond) {
		t.Fatal("TryGive succeeded with no taker")
	}
}
