package exchanger

import (
	"testing"

	"synchq/internal/metrics"
)

// These tests drive the adaptor through its observe/attempt feedback loop
// directly — the arena integration is covered by the arena tests; here we
// pin the controller's three behaviors: widening under lost races,
// collapsing when quiet, and the bounded re-probe out of collapse.

func TestAdaptorWidensUnderContention(t *testing.T) {
	h := metrics.New()
	a := newAdaptor(8)
	if a.Width() != 1 {
		t.Fatalf("initial width = %d, want 1", a.Width())
	}
	for i := 0; i < 100; i++ {
		a.observe(true, 8, h)
	}
	if w := a.Width(); w < 2 {
		t.Errorf("width after sustained lost races = %d, want >= 2", w)
	}
	if g := h.Snapshot().Get(metrics.ArenaWidth); g < 2 {
		t.Errorf("ArenaWidth gauge = %d, want >= 2", g)
	}
	// The EWMA decays when the contention lifts: quiet hits narrow again.
	for i := 0; i < 200; i++ {
		a.observe(true, 0, h)
	}
	if w := a.Width(); w != 1 {
		t.Errorf("width after contention lifted = %d, want 1", w)
	}
}

func TestAdaptorWidthRespectsCeiling(t *testing.T) {
	h := metrics.New()
	a := newAdaptor(3)
	for i := 0; i < 200; i++ {
		a.observe(true, adSigCap, h)
	}
	if w := a.Width(); w > 3 {
		t.Errorf("width = %d exceeds maxWidth 3", w)
	}
}

func TestAdaptorPatienceRampsOnHitsAndCollapsesWhenQuiet(t *testing.T) {
	h := metrics.New()
	a := newAdaptor(8)
	for i := 0; i < 20; i++ {
		a.observe(true, 0, h)
	}
	if p := a.Patience(); p != adCeil {
		t.Errorf("patience after sustained hits = %v, want ceiling %v", p, adCeil)
	}
	// Quiet misses (no lost races, no partner) halve patience down to zero:
	// the arena costs latency and absorbs nothing, so it collapses.
	for i := 0; i < 20; i++ {
		a.observe(false, 0, h)
	}
	if p := a.Patience(); p != 0 {
		t.Errorf("patience after sustained quiet misses = %v, want 0 (collapsed)", p)
	}
}

func TestAdaptorContendedMissHoldsFloor(t *testing.T) {
	h := metrics.New()
	a := newAdaptor(8)
	// Sustained misses that still lose CAS races mean traffic is present;
	// the controller must keep probing at the floor instead of collapsing.
	for i := 0; i < 50; i++ {
		a.observe(false, 4, h)
	}
	if p := a.Patience(); p < adFloor {
		t.Errorf("patience under contended misses = %v, want >= floor %v", p, adFloor)
	}
}

func TestAdaptorCollapsedModeReprobes(t *testing.T) {
	h := metrics.New()
	a := newAdaptor(8)
	for i := 0; i < 20; i++ {
		a.observe(false, 0, h)
	}
	if p, try := a.attempt(); try {
		t.Fatalf("collapsed adaptor granted an attempt immediately (patience %v)", p)
	}
	// Within one probe period some caller must be let through at the floor
	// patience, so a contention burst re-opens the arena.
	probed := false
	for i := 0; i < adProbeEvery+1; i++ {
		if p, try := a.attempt(); try {
			probed = true
			if p != adFloor {
				t.Errorf("re-probe patience = %v, want floor %v", p, adFloor)
			}
			break
		}
	}
	if !probed {
		t.Errorf("no re-probe within %d collapsed attempts", adProbeEvery+1)
	}
	// A hit on the probe re-opens the arena for everyone.
	a.observe(true, 0, h)
	if _, try := a.attempt(); !try {
		t.Error("arena still collapsed after a successful probe")
	}
}

// TestArenaAdaptiveEndToEnd exercises the adaptive arena through its public
// TryGive/TryTake faces: concurrent giver/taker pairs must exchange values
// through the arena (or report a miss, never a wrong value), and the
// controller must stay within its width bounds throughout.
func TestArenaAdaptiveEndToEnd(t *testing.T) {
	a := NewArenaAdaptive[int64](0)
	if !a.Adaptive() {
		t.Fatal("NewArenaAdaptive returned a non-adaptive arena")
	}
	const n = 2000
	done := make(chan int64, 1)
	go func() {
		var got int64
		for i := 0; i < n; i++ {
			if v, ok := a.TryTakeAdaptive(); ok {
				got += v
			}
		}
		done <- got
	}()
	var gave int64
	for i := 0; i < n; i++ {
		if a.TryGiveAdaptive(1) {
			gave++
		}
		if w := a.Width(); w < 1 || w > adaptiveMaxWidth() {
			t.Fatalf("width %d outside [1, %d]", w, adaptiveMaxWidth())
		}
	}
	got := <-done
	// Every value a giver handed off must have reached exactly one taker:
	// takers saw `got` ones, and no more than `gave` were handed in. The
	// remainder can drain to at most the arena's in-flight capacity.
	if got > gave {
		t.Errorf("takers received %d values, givers handed off only %d", got, gave)
	}
	if miss := gave - got; miss > int64(adaptiveMaxWidth()) {
		t.Errorf("%d given values unaccounted for (> arena capacity %d)", miss, adaptiveMaxWidth())
	}
	// Give the unpaired side patience 0 going forward; drain any resident.
	for i := 0; i < adaptiveMaxWidth()+1; i++ {
		if v, ok := a.TryTake(0); ok {
			got += v
		}
	}
	if got != gave {
		t.Errorf("after drain: takers received %d, givers handed off %d", got, gave)
	}
}
