package exchanger

import (
	"runtime"
	"sync/atomic"
	"time"

	"synchq/internal/metrics"
	"synchq/internal/spin"
)

// adaptor is the contention controller of an adaptive elimination arena.
// It replaces the static elimination knobs (fixed slot count, fixed
// patience) with two quantities tuned online from one cheap signal — an
// EWMA of CAS races lost per arena attempt, the shared spin.EWMA filter
// internal/spin also uses for the spin-before-park budget:
//
//   - width: how many arena slots are active. One slot when quiet (every
//     party meets at the main slot, so two lonely parties cannot miss each
//     other), one more slot per unit of average lost races per attempt —
//     Hendler/Shavit-style widening under load, narrowing when it lifts.
//   - patience: how long one arena attempt may wait for a partner.
//     Multiplicative increase while attempts are hitting (elimination is
//     absorbing traffic the backing structure never sees), decay on quiet
//     misses, collapsing to zero — direct hand-off, no arena detour — when
//     the structure is uncontended and the arena only adds latency.
//
// Collapsed mode is not permanent: every adProbeEvery-th caller probes the
// arena at the floor patience, so a contention burst re-opens the arena
// within a bounded number of operations.
//
// All words are read-modify-written racily (lost updates only soften the
// signal, exactly as in spin.Calibrator); the struct is padded so the hot
// words do not false-share with neighbors.
type adaptor struct {
	_        [64]byte
	ewma     spin.EWMA     // lost-races-per-attempt average
	width    atomic.Uint32 // active arena slots, 1..maxWidth
	patience atomic.Int64  // per-attempt patience in ns; 0 = collapsed
	probe    atomic.Uint32 // collapsed-mode attempt counter
	_        [64]byte
	maxWidth uint32
}

const (
	// adSigCap bounds one attempt's contribution to the EWMA so a single
	// pathological attempt cannot saturate the signal.
	adSigCap = 16
	// adFloor is the probe patience: the smallest interval worth waiting
	// in a slot at all (below this a partner cannot plausibly arrive).
	adFloor = time.Microsecond
	// adCeil caps the patience ramp under sustained hits.
	adCeil = 16 * time.Microsecond
	// adProbeEvery is the collapsed-mode re-probe period: one attempt in
	// this many pays a floor-patience probe to re-sense contention.
	adProbeEvery = 64
)

// newAdaptor returns an adaptor for an arena of maxWidth slots, starting
// narrow (one active slot) and curious (floor patience).
func newAdaptor(maxWidth int) *adaptor {
	a := &adaptor{maxWidth: uint32(maxWidth)}
	a.width.Store(1)
	a.patience.Store(int64(adFloor))
	return a
}

// adaptiveMaxWidth sizes an adaptive arena's slot ceiling from the
// machine: contention spreading cannot use more slots than there are
// hardware threads to collide, and at least two slots keeps an excursion
// slot available.
func adaptiveMaxWidth() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	if n > 64 {
		n = 64
	}
	return n
}

// attempt returns the patience for the next arena attempt and whether the
// arena should be tried at all. In collapsed mode only every
// adProbeEvery-th caller probes; everyone else goes straight to the
// backing structure.
func (a *adaptor) attempt() (time.Duration, bool) {
	if p := a.patience.Load(); p > 0 {
		return time.Duration(p), true
	}
	if a.probe.Add(1)%adProbeEvery == 0 {
		return adFloor, true
	}
	return 0, false
}

// observe feeds one completed arena attempt back into the controller: hit
// reports whether a partner was met, fails how many CAS races the attempt
// lost along the way. The ArenaWidth gauge on m tracks width changes.
func (a *adaptor) observe(hit bool, fails int, m *metrics.Handle) {
	sig := uint64(fails)
	if sig > adSigCap {
		sig = adSigCap
	}
	e := a.ewma.Observe(sig)

	w := uint32(1 + e)
	if w > a.maxWidth {
		w = a.maxWidth
	}
	if w != a.width.Load() {
		a.width.Store(w)
		m.Set(metrics.ArenaWidth, int64(w))
	}

	p := a.patience.Load()
	switch {
	case hit:
		if p < int64(adFloor) {
			p = int64(adFloor)
		} else {
			p *= 2
		}
		if p > int64(adCeil) {
			p = int64(adCeil)
		}
	case e >= 1:
		// Contended miss: the attempt was unlucky, not pointless — hold
		// at the floor so the arena keeps absorbing what it can.
		if p < int64(adFloor) {
			p = int64(adFloor)
		}
	default:
		// Quiet miss: decay toward direct hand-off.
		p /= 2
		if p < int64(adFloor) {
			p = 0
		}
	}
	a.patience.Store(p)
}

// Width returns the arena's current active slot count (for tests and
// monitoring).
func (a *adaptor) Width() int { return int(a.width.Load()) }

// Patience returns the current per-attempt patience (zero = collapsed).
func (a *adaptor) Patience() time.Duration { return time.Duration(a.patience.Load()) }
