// Package sim is a deterministic discrete-event simulator of a shared-
// memory multiprocessor, used to reproduce the paper's contention effects
// on hosts that lack real hardware parallelism.
//
// The reproduction's benchmark host has a single hardware thread, so the
// phenomena the paper measures on 16-way SPARC hardware — cache-line
// contention on the queues' head/tail words, lock convoys under
// preemption, the cost of blocking versus spinning — cannot occur
// natively. Following the substitution rule in DESIGN.md, this package
// models them: P simulated processors execute simulated threads whose
// memory accesses are charged through an invalidation-based coherence cost
// model (a read or write to a word last written by another processor costs
// a remote miss; repeated local access is cheap), with parking, wake-up
// latency, context-switch cost, and preemption quanta.
//
// The five algorithms' synchronization skeletons are reimplemented against
// this machine (queues.go); runner.go regenerates Figure 3 on the
// simulated multiprocessor, where the paper's gaps — muted on one real
// CPU — reappear. The simulation is fully deterministic: scheduling picks
// the minimum virtual clock (ties by thread id), so every run of the same
// configuration produces identical results.
package sim

import (
	"fmt"
)

// Config holds the machine's cost model, in abstract cycles.
type Config struct {
	// Procs is the number of simulated processors.
	Procs int
	// LocalCost is a cache-hit memory access.
	LocalCost int64
	// RemoteCost is a coherence miss (the word was written by another
	// processor since this thread last touched it).
	RemoteCost int64
	// CASExtra is the additional cost of a read-modify-write over a
	// plain access (fence/exclusive-ownership overhead).
	CASExtra int64
	// ParkCost is the scheduler work to deschedule a thread.
	ParkCost int64
	// UnparkCost is the scheduler work to make a thread runnable.
	UnparkCost int64
	// WakeLatency is the delay before an unparked thread can run.
	WakeLatency int64
	// CtxSwitch is charged whenever a thread is (re)dispatched onto a
	// processor.
	CtxSwitch int64
	// Quantum is the preemption interval.
	Quantum int64
}

// DefaultConfig returns a cost model with the relative magnitudes the
// paper's discussion uses: remote misses tens of cycles, park/unpark and
// context switches thousands ("the OS scheduler may take thousands of
// cycles to block or unblock threads").
func DefaultConfig(procs int) Config {
	return Config{
		Procs:       procs,
		LocalCost:   1,
		RemoteCost:  50,
		CASExtra:    20,
		ParkCost:    1500,
		UnparkCost:  800,
		WakeLatency: 3000,
		CtxSwitch:   2000,
		Quantum:     50000,
	}
}

// Cell is a handle to one simulated shared-memory word.
type Cell int

type cellState struct {
	val        int64
	version    int64
	lastWriter int
}

type tstate int

const (
	tsRunning tstate = iota // owns a processor; has (or will post) a pending op
	tsWaiting               // runnable, waiting for a processor
	tsParked                // descheduled until Unpark
	tsDone
)

type opKind int

const (
	opRead opKind = iota
	opWrite
	opCAS
	opPark
	opUnpark
	opWork
	opExit
)

type op struct {
	kind   opKind
	cell   Cell
	old    int64
	new    int64
	target *Thread
	cost   int64 // for opWork
}

type result struct {
	val int64
	ok  bool
}

// Thread is a simulated thread. Its program runs on a real goroutine that
// executes in lockstep with the engine: exactly one thread goroutine is
// ever between "resumed" and "posted next op", so thread programs may
// safely touch engine-owned structures during their turn.
type Thread struct {
	id  int
	eng *Engine

	clock     int64
	quantum   int64
	state     tstate
	proc      int
	permit    bool
	parkWoken bool
	seen      map[Cell]int64

	pending op
	posted  chan struct{}
	resume  chan result
}

// ID returns the thread's id (its index in the program list).
func (t *Thread) ID() int { return t.id }

// Engine is one simulation instance. Create with New, add cells and
// threads, then Run.
type Engine struct {
	cfg      Config
	cells    []cellState
	threads  []*Thread
	procFree []int64
	procUsed []bool
	now      int64
	liveOps  int
}

// New returns an engine with the given cost model.
func New(cfg Config) *Engine {
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	return &Engine{
		cfg:      cfg,
		procFree: make([]int64, cfg.Procs),
		procUsed: make([]bool, cfg.Procs),
	}
}

// NewCell allocates a shared word (initial value v). May be called before
// Run or by a thread during its turn.
func (e *Engine) NewCell(v int64) Cell {
	e.cells = append(e.cells, cellState{val: v, lastWriter: -1})
	return Cell(len(e.cells) - 1)
}

// NewCell allocates a cell from within a thread program.
func (t *Thread) NewCell(v int64) Cell { return t.eng.NewCell(v) }

// Thread returns thread i; valid once Run has created the threads. Thread
// programs must fetch cross-thread references through this accessor (or
// other engine-owned state) only after their first operation — prologue
// code runs before the simulation starts and in nondeterministic real
// order.
func (e *Engine) Thread(i int) *Thread { return e.threads[i] }

// Run executes the programs to completion and returns the virtual time at
// which the last thread finished, in cycles. It panics on deadlock (all
// live threads parked with no permit).
func (e *Engine) Run(programs []func(*Thread)) int64 {
	e.threads = make([]*Thread, len(programs))
	for i := range programs {
		e.threads[i] = &Thread{
			id:     i,
			eng:    e,
			state:  tsWaiting,
			proc:   -1,
			seen:   make(map[Cell]int64),
			posted: make(chan struct{}),
			resume: make(chan result),
		}
	}
	for i, prog := range programs {
		t := e.threads[i]
		p := prog
		go func() {
			p(t)
			t.pending = op{kind: opExit}
			t.posted <- struct{}{}
		}()
	}
	// Initial posts: every thread submits its first op.
	for _, t := range e.threads {
		<-t.posted
	}

	done := 0
	for done < len(e.threads) {
		e.dispatch()
		th := e.pickRunnable()
		if th == nil {
			panic("sim: deadlock — every live thread is parked or starved\n" + e.dump())
		}
		if e.execute(th) {
			done++
		}
	}
	return e.now
}

// dispatch assigns free processors to waiting threads, cheapest first.
func (e *Engine) dispatch() {
	for {
		proc := -1
		for p := range e.procUsed {
			if !e.procUsed[p] && (proc == -1 || e.procFree[p] < e.procFree[proc]) {
				proc = p
			}
		}
		if proc == -1 {
			return
		}
		var th *Thread
		for _, t := range e.threads {
			if t.state != tsWaiting {
				continue
			}
			if th == nil || t.clock < th.clock || (t.clock == th.clock && t.id < th.id) {
				th = t
			}
		}
		if th == nil {
			return
		}
		start := th.clock
		if e.procFree[proc] > start {
			start = e.procFree[proc]
		}
		th.clock = start + e.cfg.CtxSwitch
		th.quantum = e.cfg.Quantum
		th.proc = proc
		th.state = tsRunning
		e.procUsed[proc] = true
		if th.parkWoken {
			// Complete the Park that descheduled it: resume the
			// program and collect its next op.
			th.parkWoken = false
			th.resume <- result{}
			<-th.posted
		}
	}
}

// pickRunnable returns the running thread with the smallest clock.
func (e *Engine) pickRunnable() *Thread {
	var th *Thread
	for _, t := range e.threads {
		if t.state != tsRunning {
			continue
		}
		if th == nil || t.clock < th.clock || (t.clock == th.clock && t.id < th.id) {
			th = t
		}
	}
	return th
}

// releaseProc frees th's processor at th's current clock.
func (e *Engine) releaseProc(th *Thread) {
	if th.proc >= 0 {
		e.procFree[th.proc] = th.clock
		e.procUsed[th.proc] = false
		th.proc = -1
	}
}

// accessCost returns the coherence cost of touching c from th and, for
// writes, invalidates other caches by bumping the version.
func (e *Engine) accessCost(th *Thread, c Cell, write bool) int64 {
	cs := &e.cells[c]
	cost := e.cfg.LocalCost
	if cs.version > th.seen[c] || (write && cs.lastWriter != th.id && cs.lastWriter != -1) {
		cost = e.cfg.RemoteCost
	}
	if write {
		cs.version++
		cs.lastWriter = th.id
	}
	th.seen[c] = cs.version
	return cost
}

// execute runs th's pending op; it reports whether th exited.
func (e *Engine) execute(th *Thread) bool {
	o := th.pending
	var res result
	before := th.clock

	switch o.kind {
	case opRead:
		th.clock += e.accessCost(th, o.cell, false)
		res.val = e.cells[o.cell].val

	case opWrite:
		th.clock += e.accessCost(th, o.cell, true)
		e.cells[o.cell].val = o.new

	case opCAS:
		th.clock += e.accessCost(th, o.cell, true) + e.cfg.CASExtra
		if e.cells[o.cell].val == o.old {
			e.cells[o.cell].val = o.new
			res.ok = true
		}

	case opWork:
		th.clock += o.cost

	case opPark:
		th.clock += e.cfg.ParkCost
		if th.permit {
			th.permit = false
			break // returns immediately
		}
		e.advanceNow(th.clock)
		e.releaseProc(th)
		th.state = tsParked
		th.parkWoken = false
		return false // no resume until unparked and redispatched

	case opUnpark:
		th.clock += e.cfg.UnparkCost
		tg := o.target
		if tg.state == tsParked {
			wake := th.clock + e.cfg.WakeLatency
			if tg.clock < wake {
				tg.clock = wake
			}
			tg.state = tsWaiting
			tg.parkWoken = true
		} else {
			tg.permit = true
		}

	case opExit:
		e.advanceNow(th.clock)
		e.releaseProc(th)
		th.state = tsDone
		return true

	default:
		panic(fmt.Sprintf("sim: unknown op %d", o.kind))
	}

	e.advanceNow(th.clock)
	consumed := th.clock - before
	if consumed < 1 {
		consumed = 1 // monotone consumption even for zero-cost ops
	}
	th.quantum -= consumed
	preempt := th.quantum <= 0
	if preempt {
		e.releaseProc(th)
		th.state = tsWaiting
	}
	th.resume <- res
	<-th.posted
	return false
}

func (e *Engine) advanceNow(t int64) {
	if t > e.now {
		e.now = t
	}
}

// dump renders thread states for deadlock diagnostics.
func (e *Engine) dump() string {
	names := map[tstate]string{tsRunning: "running", tsWaiting: "waiting", tsParked: "parked", tsDone: "done"}
	s := ""
	for _, t := range e.threads {
		s += fmt.Sprintf("  thread %d: %s clock=%d permit=%v pendingOp=%d\n",
			t.id, names[t.state], t.clock, t.permit, t.pending.kind)
	}
	return s
}

// --- thread-side API ---

func (t *Thread) do(o op) result {
	t.pending = o
	t.posted <- struct{}{}
	return <-t.resume
}

// Read returns the cell's value, charging coherence costs.
func (t *Thread) Read(c Cell) int64 { return t.do(op{kind: opRead, cell: c}).val }

// Write stores v into the cell.
func (t *Thread) Write(c Cell, v int64) { t.do(op{kind: opWrite, cell: c, new: v}) }

// CAS atomically replaces old with new, reporting success.
func (t *Thread) CAS(c Cell, old, new int64) bool {
	return t.do(op{kind: opCAS, cell: c, old: old, new: new}).ok
}

// Park deschedules the thread until a permit is available (LockSupport
// semantics: an earlier Unpark is not lost).
func (t *Thread) Park() { t.do(op{kind: opPark}) }

// Unpark makes other's permit available, waking it if parked.
func (t *Thread) Unpark(other *Thread) { t.do(op{kind: opUnpark, target: other}) }

// Work charges `cycles` of local computation.
func (t *Thread) Work(cycles int64) { t.do(op{kind: opWork, cost: cycles}) }

// Clock returns the thread's current virtual time.
func (t *Thread) Clock() int64 { return t.clock }
