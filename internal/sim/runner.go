package sim

import (
	"fmt"

	"synchq/internal/stats"
)

// Model names a simulated algorithm, in the paper's legend order.
type Model int

const (
	// ModelJava5Unfair is the Java 5 queue under a barging lock.
	ModelJava5Unfair Model = iota
	// ModelJava5Fair is the Java 5 queue under a FIFO-handoff lock.
	ModelJava5Fair
	// ModelHanson is the three-semaphore queue.
	ModelHanson
	// ModelDualStack is the paper's unfair algorithm.
	ModelDualStack
	// ModelDualQueue is the paper's fair algorithm.
	ModelDualQueue
)

// ModelNames matches the labels used by the live benchmarks.
var ModelNames = map[Model]string{
	ModelJava5Unfair: "SynchronousQueue",
	ModelJava5Fair:   "SynchronousQueue (fair)",
	ModelHanson:      "HansonSQ",
	ModelDualStack:   "New SynchQueue",
	ModelDualQueue:   "New SynchQueue (fair)",
}

// Models lists every model in legend order.
var Models = []Model{ModelJava5Unfair, ModelJava5Fair, ModelHanson, ModelDualStack, ModelDualQueue}

func newModel(e *Engine, m Model) Queue {
	switch m {
	case ModelJava5Unfair:
		return NewJava5(e, false)
	case ModelJava5Fair:
		return NewJava5(e, true)
	case ModelHanson:
		return NewHanson(e)
	case ModelDualStack:
		return NewDualStack(e)
	case ModelDualQueue:
		return NewDualQueue(e)
	default:
		panic("sim: unknown model")
	}
}

// HandoffResult is one simulated measurement.
type HandoffResult struct {
	Transfers int64
	// Cycles is the virtual time at which the last thread finished.
	Cycles int64
	// Delivered is the sum of delivered values, for conservation checks.
	Delivered int64
}

// CyclesPerTransfer is the simulated analogue of ns/transfer.
func (r HandoffResult) CyclesPerTransfer() float64 {
	if r.Transfers == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Transfers)
}

// RunHandoff simulates `producers` producer threads and `consumers`
// consumer threads transferring exactly `transfers` values through the
// model on the configured machine, including a small per-transfer local
// work charge so threads do not lockstep artificially.
func RunHandoff(cfg Config, m Model, producers, consumers int, transfers int64) HandoffResult {
	e := New(cfg)
	q := newModel(e, m)

	quota := func(total int64, k, i int) int64 {
		n := total / int64(k)
		if int64(i) < total%int64(k) {
			n++
		}
		return n
	}

	var delivered int64 // written only by consumer turns (lockstep-safe)
	progs := make([]func(*Thread), 0, producers+consumers)
	for i := 0; i < producers; i++ {
		n := quota(transfers, producers, i)
		id := int64(i)
		progs = append(progs, func(t *Thread) {
			for j := int64(0); j < n; j++ {
				t.Work(20) // produce the element
				q.Put(t, id<<32|j)
			}
		})
	}
	for i := 0; i < consumers; i++ {
		n := quota(transfers, consumers, i)
		progs = append(progs, func(t *Thread) {
			for j := int64(0); j < n; j++ {
				v := q.Take(t)
				t.Work(20) // consume the element
				delivered += v
			}
		})
	}

	cycles := e.Run(progs)
	return HandoffResult{Transfers: transfers, Cycles: cycles, Delivered: delivered}
}

// Figure3 regenerates the paper's Figure 3 on the simulated
// multiprocessor: cycles/transfer for N producer/consumer pairs, one
// series per algorithm.
func Figure3(cfg Config, levels []int, transfers int64) *stats.Table {
	if len(levels) == 0 {
		levels = []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
	}
	if transfers == 0 {
		transfers = 2000
	}
	cols := make([]string, len(Models))
	for i, m := range Models {
		cols[i] = ModelNames[m]
	}
	t := stats.NewTable(
		fmt.Sprintf("Simulated Figure 3: %d-processor machine", cfg.Procs),
		"pairs", "cycles/transfer", cols)
	for _, level := range levels {
		for _, m := range Models {
			r := RunHandoff(cfg, m, level, level, transfers)
			t.Set(fmt.Sprint(level), ModelNames[m], r.CyclesPerTransfer())
		}
	}
	return t
}

// Figure4 regenerates the paper's Figure 4 (1 producer : N consumers) on
// the simulated multiprocessor.
func Figure4(cfg Config, levels []int, transfers int64) *stats.Table {
	if len(levels) == 0 {
		levels = []int{1, 2, 3, 5, 8, 12, 18, 27, 41, 62}
	}
	if transfers == 0 {
		transfers = 2000
	}
	cols := make([]string, len(Models))
	for i, m := range Models {
		cols[i] = ModelNames[m]
	}
	t := stats.NewTable(
		fmt.Sprintf("Simulated Figure 4: 1 producer : N consumers, %d-processor machine", cfg.Procs),
		"consumers", "cycles/transfer", cols)
	for _, level := range levels {
		for _, m := range Models {
			r := RunHandoff(cfg, m, 1, level, transfers)
			t.Set(fmt.Sprint(level), ModelNames[m], r.CyclesPerTransfer())
		}
	}
	return t
}

// Figure5 regenerates the paper's Figure 5 (N producers : 1 consumer) on
// the simulated multiprocessor.
func Figure5(cfg Config, levels []int, transfers int64) *stats.Table {
	if len(levels) == 0 {
		levels = []int{1, 2, 3, 5, 8, 12, 18, 27, 41, 62}
	}
	if transfers == 0 {
		transfers = 2000
	}
	cols := make([]string, len(Models))
	for i, m := range Models {
		cols[i] = ModelNames[m]
	}
	t := stats.NewTable(
		fmt.Sprintf("Simulated Figure 5: N producers : 1 consumer, %d-processor machine", cfg.Procs),
		"producers", "cycles/transfer", cols)
	for _, level := range levels {
		for _, m := range Models {
			r := RunHandoff(cfg, m, level, 1, transfers)
			t.Set(fmt.Sprint(level), ModelNames[m], r.CyclesPerTransfer())
		}
	}
	return t
}

// ProcsSweep holds the workload shape fixed and sweeps the number of
// simulated processors, exposing where each algorithm's contention and
// blocking costs bite as real parallelism grows.
func ProcsSweep(levels []int, pairs int, transfers int64) *stats.Table {
	if len(levels) == 0 {
		levels = []int{1, 2, 4, 8, 16, 32}
	}
	if pairs <= 0 {
		pairs = 16
	}
	if transfers == 0 {
		transfers = 2000
	}
	cols := make([]string, len(Models))
	for i, m := range Models {
		cols[i] = ModelNames[m]
	}
	t := stats.NewTable(
		fmt.Sprintf("Simulated processor sweep: %d pairs", pairs),
		"procs", "cycles/transfer", cols)
	for _, procs := range levels {
		cfg := DefaultConfig(procs)
		for _, m := range Models {
			r := RunHandoff(cfg, m, pairs, pairs, transfers)
			t.Set(fmt.Sprint(procs), ModelNames[m], r.CyclesPerTransfer())
		}
	}
	return t
}
