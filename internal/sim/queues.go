package sim

// Simulated synchronization skeletons of the paper's algorithms. Each
// model performs, against the simulated machine, the same pattern of
// shared-memory accesses and scheduling events as the real algorithm:
// which words are CASed, which are spun on, when threads park, and who
// unparks whom. Timeout support is omitted (Figure 3 exercises only the
// demand operations).

// Queue is a simulated synchronous queue model.
type Queue interface {
	Put(t *Thread, v int64)
	Take(t *Thread) int64
}

// --- Hanson's queue: three semaphores ---

type hansonQ struct {
	item             Cell
	syncS, send, rcv *Semaphore
}

// NewHanson builds the simulated Hanson queue (Listing 1).
func NewHanson(e *Engine) Queue {
	return &hansonQ{
		item:  e.NewCell(0),
		syncS: NewSemaphore(e, 0),
		send:  NewSemaphore(e, 1),
		rcv:   NewSemaphore(e, 0),
	}
}

func (q *hansonQ) Put(t *Thread, v int64) {
	q.send.Acquire(t)
	t.Write(q.item, v)
	q.rcv.Release(t)
	q.syncS.Acquire(t)
}

func (q *hansonQ) Take(t *Thread) int64 {
	q.rcv.Acquire(t)
	v := t.Read(q.item)
	q.syncS.Release(t)
	q.send.Release(t)
	return v
}

// --- Java 5 queue: one lock, two wait lists ---

type j5node struct {
	item   Cell
	waiter *Thread
}

type java5Q struct {
	lock      Locker
	producers []*j5node
	consumers []*j5node
}

// NewJava5 builds the simulated Java 5 queue (Listing 4): fair selects the
// FIFO-handoff entry lock, unfair the barging spinlock.
func NewJava5(e *Engine, fair bool) Queue {
	var l Locker
	if fair {
		l = NewFairLock(e)
	} else {
		l = NewSpinLock(e)
	}
	return &java5Q{lock: l}
}

func (q *java5Q) Put(t *Thread, v int64) {
	q.lock.Lock(t)
	if len(q.consumers) > 0 {
		n := q.consumers[0]
		q.consumers = q.consumers[1:]
		q.lock.Unlock(t)
		t.Write(n.item, v)
		t.Unpark(n.waiter)
		return
	}
	n := &j5node{item: t.NewCell(0), waiter: t}
	t.Write(n.item, v)
	q.producers = append(q.producers, n)
	q.lock.Unlock(t)
	t.Park() // woken once a consumer has taken the item
}

func (q *java5Q) Take(t *Thread) int64 {
	q.lock.Lock(t)
	if len(q.producers) > 0 {
		n := q.producers[0]
		q.producers = q.producers[1:]
		q.lock.Unlock(t)
		v := t.Read(n.item)
		t.Unpark(n.waiter)
		return v
	}
	n := &j5node{item: t.NewCell(0), waiter: t}
	q.consumers = append(q.consumers, n)
	q.lock.Unlock(t)
	t.Park()
	return t.Read(n.item)
}

// --- the new algorithms: dual stack and dual queue ---

// node indices are stored in cells as idx+1 (0 = nil).

type dsNode struct {
	mode   int64 // 0 request, 1 data, |2 fulfilling
	item   Cell
	next   Cell
	match  Cell // 0 none, else fulfiller idx+1
	waiter *Thread
}

type dualStackQ struct {
	head  Cell
	nodes []*dsNode
}

// NewDualStack builds the simulated synchronous dual stack (Listing 6,
// without the timeout branches).
func NewDualStack(e *Engine) Queue {
	return &dualStackQ{head: e.NewCell(0)}
}

func (q *dualStackQ) alloc(t *Thread, mode, v int64) int64 {
	n := &dsNode{mode: mode, item: t.NewCell(v), next: t.NewCell(0), match: t.NewCell(0)}
	q.nodes = append(q.nodes, n)
	return int64(len(q.nodes)) // idx+1
}

func (q *dualStackQ) node(ref int64) *dsNode { return q.nodes[ref-1] }

func (q *dualStackQ) Put(t *Thread, v int64) { q.transfer(t, 1, v) }
func (q *dualStackQ) Take(t *Thread) int64   { return q.transfer(t, 0, 0) }

func (q *dualStackQ) transfer(t *Thread, mode, v int64) int64 {
	var mine int64
	for {
		h := t.Read(q.head)
		switch {
		case h == 0 || q.node(h).mode == mode:
			if mine == 0 {
				mine = q.alloc(t, mode, v)
			}
			me := q.node(mine)
			t.Write(me.next, h)
			if !t.CAS(q.head, h, mine) {
				continue
			}
			m := q.await(t, me)
			// Help pop the annihilated pair.
			if h2 := t.Read(q.head); h2 != 0 && t.Read(q.node(h2).next) == mine {
				t.CAS(q.head, h2, t.Read(me.next))
			}
			if mode == 0 {
				return t.Read(q.node(m).item)
			}
			return 0

		case q.node(h).mode&2 == 0:
			// Complementary: push a fulfilling node.
			f := q.alloc(t, mode|2, v)
			fn := q.node(f)
			t.Write(fn.next, h)
			if !t.CAS(q.head, h, f) {
				continue
			}
			for {
				m := t.Read(fn.next)
				if m == 0 {
					t.CAS(q.head, f, 0)
					break
				}
				mn := t.Read(q.node(m).next)
				won := t.CAS(q.node(m).match, 0, f)
				if won || t.Read(q.node(m).match) == f {
					// Matched — by us, or by a helper on our
					// behalf (tryMatch's second clause).
					if won {
						if w := q.node(m).waiter; w != nil {
							t.Unpark(w)
						}
					}
					t.CAS(q.head, f, mn)
					if mode == 0 {
						return t.Read(q.node(m).item)
					}
					return 0
				}
				t.Write(fn.next, mn)
			}

		default:
			// Help the fulfilling node on top.
			fn := q.node(h)
			m := t.Read(fn.next)
			if m == 0 {
				t.CAS(q.head, h, 0)
				continue
			}
			mn := t.Read(q.node(m).next)
			won := t.CAS(q.node(m).match, 0, h)
			switch {
			case won:
				if w := q.node(m).waiter; w != nil {
					t.Unpark(w)
				}
				t.CAS(q.head, h, mn)
			case t.Read(q.node(m).match) == h:
				// Another helper (or the fulfiller) already
				// completed the match: just help pop. Touching
				// fn.next here instead would make the fulfiller
				// skip past its true matchee and pair twice.
				t.CAS(q.head, h, mn)
			default:
				// m was canceled (unreachable without timeout
				// support): unlink it for the fulfiller.
				t.Write(fn.next, mn)
			}
		}
	}
}

// await spins briefly on the node's match word, then parks; it returns the
// match reference.
func (q *dualStackQ) await(t *Thread, me *dsNode) int64 {
	for i := 0; i < spinBudget; i++ {
		if m := t.Read(me.match); m != 0 {
			return m
		}
	}
	me.waiter = t
	for {
		if m := t.Read(me.match); m != 0 {
			return m
		}
		t.Park()
	}
}

type dqNode struct {
	isData bool
	item   Cell
	next   Cell
	waiter *Thread
}

type dualQueueQ struct {
	head, tail Cell
	nodes      []*dqNode
}

// NewDualQueue builds the simulated synchronous dual queue (Listing 5,
// without the timeout branches).
func NewDualQueue(e *Engine) Queue {
	q := &dualQueueQ{head: e.NewCell(0), tail: e.NewCell(0)}
	dummy := &dqNode{item: e.NewCell(0), next: e.NewCell(0)}
	q.nodes = append(q.nodes, dummy)
	e.cells[q.head].val = 1
	e.cells[q.tail].val = 1
	return q
}

func (q *dualQueueQ) alloc(t *Thread, isData bool, item int64) int64 {
	n := &dqNode{isData: isData, item: t.NewCell(item), next: t.NewCell(0)}
	q.nodes = append(q.nodes, n)
	return int64(len(q.nodes))
}

func (q *dualQueueQ) node(ref int64) *dqNode { return q.nodes[ref-1] }

// Items: producers deposit v+1 (so 0 means "empty"); consumers CAS item to
// 0 to claim, producers CAS 0 to v+1 to fulfill requests.
func (q *dualQueueQ) Put(t *Thread, v int64) { q.transfer(t, true, v+1) }
func (q *dualQueueQ) Take(t *Thread) int64   { return q.transfer(t, false, 0) - 1 }

func (q *dualQueueQ) transfer(t *Thread, isData bool, e int64) int64 {
	var mine int64
	for {
		tl := t.Read(q.tail)
		hd := t.Read(q.head)
		tn := q.node(tl)

		if hd == tl || tn.isData == isData {
			next := t.Read(tn.next)
			if next != 0 {
				t.CAS(q.tail, tl, next)
				continue
			}
			if mine == 0 {
				mine = q.alloc(t, isData, e)
			}
			if !t.CAS(tn.next, 0, mine) {
				continue
			}
			t.CAS(q.tail, tl, mine)
			me := q.node(mine)
			x := q.await(t, me, e)
			// Help dequeue ourselves.
			if h2 := t.Read(q.head); t.Read(q.node(h2).next) == mine {
				t.CAS(q.head, h2, mine)
			}
			if x != 0 {
				return x // request fulfilled with a datum
			}
			return e // datum taken
		}

		m := t.Read(q.node(hd).next)
		if m == 0 {
			continue
		}
		mn := q.node(m)
		x := t.Read(mn.item)
		if isData == (x != 0) || !t.CAS(mn.item, x, e) {
			t.CAS(q.head, hd, m)
			continue
		}
		t.CAS(q.head, hd, m)
		if w := mn.waiter; w != nil {
			t.Unpark(w)
		}
		if x != 0 {
			return x
		}
		return e
	}
}

// await spins briefly on the node's item word, then parks; it returns the
// new item value (nonzero for fulfilled requests, zero for taken data).
func (q *dualQueueQ) await(t *Thread, me *dqNode, e int64) int64 {
	for i := 0; i < spinBudget; i++ {
		if x := t.Read(me.item); x != e {
			return x
		}
	}
	me.waiter = t
	for {
		if x := t.Read(me.item); x != e {
			return x
		}
		t.Park()
	}
}
