package sim

// Synchronization primitives built over the simulated machine. Waiter
// lists live outside simulated memory (the lockstep engine makes that
// safe — exactly one thread program runs at a time); every access that
// would cause coherence traffic on real hardware goes through Cells so it
// is charged.

// spinBudget is the spin-then-park budget used by the lock and by the
// queue algorithms' waiters, mirroring the paper's brief-spin-before-park.
const spinBudget = 32

// SpinLock is a test-and-set lock with brief spinning and park-based
// blocking, barging on release — the model of an ordinary (unfair) mutex,
// used by the Java 5 unfair queue and by the semaphores.
type SpinLock struct {
	cell    Cell
	waiters []*Thread
}

// NewSpinLock allocates a free lock.
func NewSpinLock(e *Engine) *SpinLock {
	return &SpinLock{cell: e.NewCell(0)}
}

// Lock acquires the lock.
func (l *SpinLock) Lock(t *Thread) {
	for {
		if t.CAS(l.cell, 0, 1) {
			return
		}
		for i := 0; i < spinBudget; i++ {
			if t.Read(l.cell) == 0 {
				break
			}
		}
		if t.CAS(l.cell, 0, 1) {
			return
		}
		l.waiters = append(l.waiters, t)
		// Last-chance CAS so we never sleep past a release that
		// happened before we enqueued.
		if t.CAS(l.cell, 0, 1) {
			if !l.remove(t) {
				// A releaser popped us concurrently and its
				// wake-up (permit) is committed; absorb it so
				// it cannot leak into a later park.
				t.Park()
			}
			return
		}
		t.Park()
	}
}

// Unlock releases the lock and wakes one waiter, which must still race
// for the lock (barging).
func (l *SpinLock) Unlock(t *Thread) {
	t.Write(l.cell, 0)
	if len(l.waiters) > 0 {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		t.Unpark(w)
	}
}

func (l *SpinLock) remove(t *Thread) bool {
	for i, w := range l.waiters {
		if w == t {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// FairLock grants ownership in strict FIFO order with direct handoff — the
// model of the Java 5 fair-mode entry lock whose pileups the paper blames
// for the fair queue's collapse.
type FairLock struct {
	cell    Cell // 0 free, 1 held
	waiters []*Thread
}

// NewFairLock allocates a free fair lock.
func NewFairLock(e *Engine) *FairLock {
	return &FairLock{cell: e.NewCell(0)}
}

// Lock acquires the lock, queueing behind all earlier arrivals.
func (l *FairLock) Lock(t *Thread) {
	if len(l.waiters) == 0 && t.CAS(l.cell, 0, 1) {
		return
	}
	l.waiters = append(l.waiters, t)
	// Last-chance CAS: an unlock that ran between our failed fast path
	// and our enqueue found no waiters and freed the lock; without this
	// we would sleep forever.
	if t.CAS(l.cell, 0, 1) {
		if !l.remove(t) {
			t.Park() // a handoff already committed to us; absorb it
		}
		return
	}
	t.Park()
	// Ownership was handed to us directly; touch the lock word as the
	// real lock's state check would.
	t.Read(l.cell)
}

func (l *FairLock) remove(t *Thread) bool {
	for i, w := range l.waiters {
		if w == t {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// Unlock hands the lock to the longest waiter, or frees it.
func (l *FairLock) Unlock(t *Thread) {
	if len(l.waiters) > 0 {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		t.Unpark(w) // cell stays 1: direct handoff
		return
	}
	t.Write(l.cell, 0)
}

// Locker is the shared lock surface of SpinLock and FairLock.
type Locker interface {
	Lock(t *Thread)
	Unlock(t *Thread)
}

// Semaphore is a counting semaphore built, as in classic runtimes, from a
// mutex-protected counter and waiter list. It is the substrate of the
// simulated Hanson queue.
type Semaphore struct {
	lock    *SpinLock
	count   Cell
	waiters []*Thread
}

// NewSemaphore allocates a semaphore with the given permits.
func NewSemaphore(e *Engine, permits int64) *Semaphore {
	return &Semaphore{lock: NewSpinLock(e), count: e.NewCell(permits)}
}

// Acquire obtains a permit, blocking until one is available.
func (s *Semaphore) Acquire(t *Thread) {
	s.lock.Lock(t)
	c := t.Read(s.count)
	if c > 0 {
		t.Write(s.count, c-1)
		s.lock.Unlock(t)
		return
	}
	s.waiters = append(s.waiters, t)
	s.lock.Unlock(t)
	t.Park() // a releaser grants the permit directly
}

// Release returns a permit, granting it directly to the oldest waiter if
// any.
func (s *Semaphore) Release(t *Thread) {
	s.lock.Lock(t)
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.lock.Unlock(t)
		t.Unpark(w)
		return
	}
	t.Write(s.count, t.Read(s.count)+1)
	s.lock.Unlock(t)
}
