package sim

import (
	"testing"
)

func TestEngineSequentialCosts(t *testing.T) {
	cfg := DefaultConfig(1)
	e := New(cfg)
	c := e.NewCell(7)
	var got int64
	cycles := e.Run([]func(*Thread){
		func(th *Thread) {
			got = th.Read(c)
			th.Write(c, 9)
			if th.Read(c) != 9 {
				t.Error("write not visible")
			}
		},
	})
	if got != 7 {
		t.Fatalf("Read = %d, want 7", got)
	}
	// ctx switch + first read (remote: written by "nobody" counts local
	// — lastWriter -1) + write + read.
	if cycles <= cfg.CtxSwitch {
		t.Fatalf("cycles = %d, suspiciously small", cycles)
	}
}

func TestCASSemantics(t *testing.T) {
	e := New(DefaultConfig(1))
	c := e.NewCell(1)
	e.Run([]func(*Thread){
		func(th *Thread) {
			if th.CAS(c, 2, 3) {
				t.Error("CAS succeeded with wrong expected value")
			}
			if !th.CAS(c, 1, 2) {
				t.Error("CAS failed with right expected value")
			}
			if th.Read(c) != 2 {
				t.Error("CAS did not store")
			}
		},
	})
}

func TestRemoteAccessCostsMore(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Quantum = 1 << 40 // no preemption: isolate the memory costs
	e := New(cfg)
	c := e.NewCell(0)
	var localCost, remoteCost int64
	e.Run([]func(*Thread){
		func(th *Thread) {
			th.Write(c, 1) // take ownership
			before := th.Clock()
			th.Read(c) // cached
			localCost = th.Clock() - before
			th.Work(100000) // let the other thread write
			before = th.Clock()
			th.Read(c) // invalidated by thread 1
			remoteCost = th.Clock() - before
		},
		func(th *Thread) {
			th.Work(10000)
			th.Write(c, 2)
		},
	})
	if localCost != cfg.LocalCost {
		t.Fatalf("cached read cost = %d, want %d", localCost, cfg.LocalCost)
	}
	if remoteCost != cfg.RemoteCost {
		t.Fatalf("invalidated read cost = %d, want %d", remoteCost, cfg.RemoteCost)
	}
}

func TestParkUnparkPermit(t *testing.T) {
	e := New(DefaultConfig(2))
	order := make([]int, 0, 4)
	e.Run([]func(*Thread){
		func(th *Thread) {
			th.Work(1) // first op: engine state is now safe to read
			order = append(order, 1)
			th.Park() // blocks until thread 1 unparks
			order = append(order, 3)
		},
		func(th *Thread) {
			th.Work(50000) // ensure thread 0 parks first
			order = append(order, 2)
			th.Unpark(th.eng.Thread(0))
		},
	})
	want := []int{1, 2, 3}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestUnparkBeforeParkIsPermit(t *testing.T) {
	e := New(DefaultConfig(2))
	done := false
	e.Run([]func(*Thread){
		func(th *Thread) {
			th.Work(50000) // let thread 1 unpark first
			th.Park()      // must not block: permit stored
			done = true
		},
		func(th *Thread) {
			th.Work(1)
			th.Unpark(th.eng.Thread(0))
		},
	})
	if !done {
		t.Fatal("park with stored permit blocked forever")
	}
}

func TestProcessorContentionSerializes(t *testing.T) {
	// Two compute-bound threads on one processor take ~2x the time of
	// the same work on two processors.
	work := func(th *Thread) { th.Work(100000) }
	one := New(DefaultConfig(1)).Run([]func(*Thread){work, work})
	two := New(DefaultConfig(2)).Run([]func(*Thread){work, work})
	if one < two {
		t.Fatalf("1-proc run (%d) faster than 2-proc run (%d)", one, two)
	}
	if float64(one) < 1.8*float64(two) {
		t.Fatalf("1-proc run (%d) not ~2x the 2-proc run (%d)", one, two)
	}
}

func TestDeterminism(t *testing.T) {
	for _, m := range Models {
		a := RunHandoff(DefaultConfig(4), m, 3, 3, 300)
		b := RunHandoff(DefaultConfig(4), m, 3, 3, 300)
		if a != b {
			t.Fatalf("%s: nondeterministic: %+v vs %+v", ModelNames[m], a, b)
		}
	}
}

func TestAllModelsConserveValues(t *testing.T) {
	// The sum of delivered values must equal the sum of produced values
	// for every model and shape.
	shapes := [][2]int{{1, 1}, {2, 2}, {4, 4}, {1, 4}, {4, 1}}
	for _, m := range Models {
		for _, sh := range shapes {
			const transfers = 400
			r := RunHandoff(DefaultConfig(4), m, sh[0], sh[1], transfers)
			// Expected sum: producers emit id<<32|j for their quotas.
			var want int64
			quota := func(total int64, k, i int) int64 {
				n := total / int64(k)
				if int64(i) < total%int64(k) {
					n++
				}
				return n
			}
			for p := 0; p < sh[0]; p++ {
				n := quota(transfers, sh[0], p)
				want += int64(p) << 32 * n
				want += n * (n - 1) / 2
			}
			if r.Delivered != want {
				t.Fatalf("%s %v: delivered sum %d, want %d (lost or duplicated values)",
					ModelNames[m], sh, r.Delivered, want)
			}
		}
	}
}

func TestSimulatedFigure3Ordering(t *testing.T) {
	// On a 16-processor simulated machine at high concurrency, the
	// paper's ordering must hold: the new algorithms beat Hanson and the
	// Java 5 fair queue by a wide margin.
	cfg := DefaultConfig(16)
	const pairs, transfers = 16, 1500
	res := make(map[Model]float64)
	for _, m := range Models {
		res[m] = RunHandoff(cfg, m, pairs, pairs, transfers).CyclesPerTransfer()
	}
	if res[ModelDualStack] >= res[ModelHanson] {
		t.Errorf("dual stack (%.0f) not faster than Hanson (%.0f)", res[ModelDualStack], res[ModelHanson])
	}
	if res[ModelDualQueue] >= res[ModelJava5Fair] {
		t.Errorf("dual queue (%.0f) not faster than Java5 fair (%.0f)", res[ModelDualQueue], res[ModelJava5Fair])
	}
	if res[ModelDualStack] >= res[ModelJava5Fair] {
		t.Errorf("dual stack (%.0f) not faster than Java5 fair (%.0f)", res[ModelDualStack], res[ModelJava5Fair])
	}
	t.Logf("cycles/transfer at %d pairs on %d procs:", pairs, cfg.Procs)
	for _, m := range Models {
		t.Logf("  %-26s %8.0f", ModelNames[m], res[m])
	}
}

func TestSimulatedFigureTablesSmoke(t *testing.T) {
	cfg := DefaultConfig(4)
	for _, tab := range []interface{ Render() string }{
		Figure3(cfg, []int{1, 2}, 200),
		Figure4(cfg, []int{1, 2}, 200),
		Figure5(cfg, []int{1, 2}, 200),
		ProcsSweep([]int{1, 2}, 2, 200),
	} {
		out := tab.Render()
		if out == "" || !containsAll(out, "SynchronousQueue", "New SynchQueue") {
			t.Fatalf("table missing series:\n%s", out)
		}
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestSingletonShapesComplete(t *testing.T) {
	// 1:N and N:1 must terminate for every model (regression for the
	// helping paths under extreme asymmetry).
	for _, m := range Models {
		r := RunHandoff(DefaultConfig(8), m, 1, 8, 400)
		if r.Transfers != 400 {
			t.Fatalf("%s 1:8: %+v", ModelNames[m], r)
		}
		r = RunHandoff(DefaultConfig(8), m, 8, 1, 400)
		if r.Transfers != 400 {
			t.Fatalf("%s 8:1: %+v", ModelNames[m], r)
		}
	}
}
