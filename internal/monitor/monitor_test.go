package monitor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMutualExclusion(t *testing.T) {
	var m Monitor
	var counter int
	var wg sync.WaitGroup
	const workers, rounds = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*rounds {
		t.Fatalf("counter = %d, want %d", counter, workers*rounds)
	}
}

func TestWaitNotify(t *testing.T) {
	var m Monitor
	ready := false
	var woke atomic.Bool
	go func() {
		m.Lock()
		for !ready {
			m.Wait()
		}
		m.Unlock()
		woke.Store(true)
	}()
	time.Sleep(10 * time.Millisecond)
	if woke.Load() {
		t.Fatal("waiter proceeded before predicate was set")
	}
	m.Lock()
	ready = true
	m.Notify()
	m.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for !woke.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Notify did not wake the waiter")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNotifyAllWakesEveryWaiter(t *testing.T) {
	var m Monitor
	released := false
	const n = 6
	var woke sync.WaitGroup
	woke.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			m.Lock()
			for !released {
				m.Wait()
			}
			m.Unlock()
			woke.Done()
		}()
	}
	time.Sleep(10 * time.Millisecond)
	m.Lock()
	released = true
	m.NotifyAll()
	m.Unlock()
	done := make(chan struct{})
	go func() { woke.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("NotifyAll did not wake every waiter")
	}
}

func TestDoRunsUnderLock(t *testing.T) {
	var m Monitor
	var inside atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				m.Do(func() {
					if inside.Add(1) != 1 {
						t.Error("two goroutines inside the monitor")
					}
					inside.Add(-1)
				})
			}
		}()
	}
	wg.Wait()
}
