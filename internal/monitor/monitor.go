// Package monitor implements Java-style intrinsic monitors: a mutual
// exclusion lock with an associated condition supporting Wait, Notify, and
// NotifyAll.
//
// The paper's naive synchronous queue (Listing 3) is written against exactly
// this primitive ("synchronized" methods plus wait/notifyAll), and its poor
// performance — a number of wake-ups quadratic in the number of waiting
// threads — is a property of the broadcast pattern this package faithfully
// provides.
package monitor

import "sync"

// Monitor couples a lock with a condition variable, mirroring a Java object
// monitor. The zero value is ready to use. A Monitor must not be copied
// after first use.
type Monitor struct {
	mu   sync.Mutex
	cond *sync.Cond
	once sync.Once
}

func (m *Monitor) init() {
	m.once.Do(func() { m.cond = sync.NewCond(&m.mu) })
}

// Lock enters the monitor.
func (m *Monitor) Lock() {
	m.init()
	m.mu.Lock()
}

// Unlock exits the monitor.
func (m *Monitor) Unlock() {
	m.mu.Unlock()
}

// Wait atomically releases the monitor and blocks until notified, then
// re-acquires the monitor before returning. As with Java's Object.wait, the
// caller must hold the monitor and must re-check its predicate in a loop.
func (m *Monitor) Wait() {
	m.init()
	m.cond.Wait()
}

// Notify wakes one goroutine blocked in Wait, if any. The caller must hold
// the monitor.
func (m *Monitor) Notify() {
	m.init()
	m.cond.Signal()
}

// NotifyAll wakes every goroutine blocked in Wait. The caller must hold the
// monitor. This is the quadratic-wakeup hammer the naive queue uses.
func (m *Monitor) NotifyAll() {
	m.init()
	m.cond.Broadcast()
}

// Do runs f while holding the monitor, a convenience for simple critical
// sections.
func (m *Monitor) Do(f func()) {
	m.Lock()
	defer m.Unlock()
	f()
}
