package props

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func verdictFor(t *testing.T, vs []Verdict, name string) Verdict {
	t.Helper()
	for _, v := range vs {
		if v.Property == name {
			return v
		}
	}
	t.Fatalf("no verdict row for %q in %+v", name, vs)
	return Verdict{}
}

func TestAlwaysPassAccumulatesEvidence(t *testing.T) {
	s := NewSuite("stub/default")
	s.Always("conservation", func(final bool) error { return nil })
	for i := 0; i < 3; i++ {
		s.CheckAlways(false)
	}
	s.CheckAlways(true)
	v := verdictFor(t, s.Verdicts(), "conservation")
	if !v.Pass() || v.Evidence != 4 || v.Kind != "always" {
		t.Fatalf("want passing always with evidence 4, got %+v", v)
	}
	if !s.Ok() {
		t.Fatal("suite should pass")
	}
}

// TestBrokenAlwaysCheckerFails is the deliberately-broken-checker stub: a
// checker that reports a violation must produce a failing row whose detail
// carries the error, and must fail the suite (the harness maps that to a
// nonzero exit).
func TestBrokenAlwaysCheckerFails(t *testing.T) {
	s := NewSuite("stub/default")
	s.Always("conservation", func(final bool) error {
		if final {
			return errors.New("offered=7 delivered=6")
		}
		return nil
	})
	s.CheckAlways(false)
	s.CheckAlways(true)
	v := verdictFor(t, s.Verdicts(), "conservation")
	if v.Pass() {
		t.Fatalf("broken checker must fail, got %+v", v)
	}
	if !strings.Contains(v.Detail, "offered=7 delivered=6") {
		t.Fatalf("detail must carry the checker error, got %q", v.Detail)
	}
	if s.Ok() {
		t.Fatal("suite with a failing always-property must not be Ok")
	}
}

// TestNeverFiredSometimesFails: a sometimes-property that is declared but
// never observed must fail the run with a "never fired" row — the workload
// stopped reaching the code it claims to exercise.
func TestNeverFiredSometimesFails(t *testing.T) {
	s := NewSuite("stub/default")
	s.Sometimes("elimination-fires")
	fired := s.Sometimes("cancel-races-fulfill")
	fired.Observe()
	fired.AddEvidence(2)

	vs := s.Verdicts()
	dead := verdictFor(t, vs, "elimination-fires")
	if dead.Pass() || dead.Detail != "never fired" || dead.Evidence != 0 {
		t.Fatalf("never-fired sometimes must fail with 'never fired', got %+v", dead)
	}
	live := verdictFor(t, vs, "cancel-races-fulfill")
	if !live.Pass() || live.Evidence != 3 {
		t.Fatalf("observed sometimes must pass with evidence 3, got %+v", live)
	}
	if s.Ok() {
		t.Fatal("suite with a never-fired sometimes must not be Ok")
	}
}

// TestNeverReachedSiteFails: a registered reachable site whose counter
// stays zero must fail with a "site never reached" row, while a hit site
// reports its count as evidence.
func TestNeverReachedSiteFails(t *testing.T) {
	s := NewSuite("stub/default")
	var hits int64 = 17
	s.Reachable("reach:q-enqueue-cas", func() int64 { return hits })
	s.Reachable("reach:q-clean-cas", func() int64 { return 0 })

	vs := s.Verdicts()
	hit := verdictFor(t, vs, "reach:q-enqueue-cas")
	if !hit.Pass() || hit.Evidence != 17 {
		t.Fatalf("hit site must pass with its count as evidence, got %+v", hit)
	}
	dead := verdictFor(t, vs, "reach:q-clean-cas")
	if dead.Pass() || dead.Detail != "site never reached" {
		t.Fatalf("unreached site must fail with 'site never reached', got %+v", dead)
	}
	if s.Ok() {
		t.Fatal("suite with an unreached site must not be Ok")
	}
}

func TestFailDetailBounded(t *testing.T) {
	s := NewSuite("stub/default")
	p := s.Always("synchrony", nil)
	for i := 0; i < 50; i++ {
		p.Fail("violation %d", i)
	}
	v := verdictFor(t, s.Verdicts(), "synchrony")
	if v.Pass() {
		t.Fatal("explicitly failed property must fail")
	}
	if !strings.Contains(v.Detail, "(+44 more)") {
		t.Fatalf("detail must summarize overflow, got %q", v.Detail)
	}
}

func TestVerdictOrderGroupsKinds(t *testing.T) {
	s := NewSuite("stub/default")
	s.Reachable("reach:x", func() int64 { return 1 })
	s.Sometimes("fires")
	s.Always("holds", func(bool) error { return nil })
	s.Observe("fires")
	vs := s.Verdicts()
	kinds := []string{vs[0].Kind, vs[1].Kind, vs[2].Kind}
	want := []string{"always", "sometimes", "reachable"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("verdicts must group always<sometimes<reachable, got %v", kinds)
		}
	}
}

func TestDuplicateAndUndeclaredPanic(t *testing.T) {
	s := NewSuite("stub/default")
	s.Sometimes("x")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate registration must panic")
			}
		}()
		s.Always("x", nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("observing an undeclared property must panic")
			}
		}()
		s.Observe("undeclared")
	}()
}

func TestConcurrentObserveAndCheck(t *testing.T) {
	s := NewSuite("stub/default")
	s.Sometimes("event")
	s.Always("inv", func(final bool) error { return nil })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Observe("event")
				s.CheckAlways(false)
			}
		}()
	}
	wg.Wait()
	if got := s.Lookup("event").Evidence(); got != 8000 {
		t.Fatalf("want 8000 observations, got %d", got)
	}
	if got := s.Lookup("inv").Evidence(); got != 8000 {
		t.Fatalf("want 8000 passing checks, got %d", got)
	}
}

// TestReportSchema pins the machine-readable schema: the JSON a CI step
// parses must keep its field names and pass/fail encoding stable.
func TestReportSchema(t *testing.T) {
	good := NewSuite("queue/default")
	good.SetReplay("go run ./cmd/sqstress -chaos -seed 7 -cores queue")
	good.Always("conservation", func(bool) error { return nil })
	good.CheckAlways(true)

	bad := NewSuite("stack/nospin")
	bad.SetReplay("go run ./cmd/sqstress -chaos -seed 7 -cores stack -opts nospin")
	bad.Sometimes("elimination-fires") // never fired

	r := NewReport(7, 4, []string{"steady", "cancel-storm"})
	r.Add(good)
	r.Add(bad)
	if r.OK {
		t.Fatal("report with a failing config must not be OK")
	}

	var decoded struct {
		Seed      uint64   `json:"seed"`
		Procs     int      `json:"procs"`
		Scenarios []string `json:"scenarios"`
		OK        bool     `json:"ok"`
		Configs   []struct {
			Config   string `json:"config"`
			Replay   string `json:"replay"`
			OK       bool   `json:"ok"`
			Verdicts []struct {
				Property string `json:"property"`
				Kind     string `json:"kind"`
				Verdict  string `json:"verdict"`
				Evidence int64  `json:"evidence"`
				Detail   string `json:"detail"`
			} `json:"verdicts"`
		} `json:"configs"`
	}
	if err := json.Unmarshal(r.JSON(), &decoded); err != nil {
		t.Fatalf("report JSON must decode: %v", err)
	}
	if decoded.Seed != 7 || decoded.Procs != 4 || len(decoded.Configs) != 2 {
		t.Fatalf("schema mismatch: %+v", decoded)
	}
	if !decoded.Configs[0].OK || decoded.Configs[1].OK {
		t.Fatalf("per-config ok flags wrong: %+v", decoded.Configs)
	}
	row := decoded.Configs[1].Verdicts[0]
	if row.Property != "elimination-fires" || row.Kind != "sometimes" || row.Verdict != "fail" {
		t.Fatalf("failing row wrong: %+v", row)
	}

	text := r.Render()
	for _, want := range []string{"queue/default", "stack/nospin", "FAIL", "never fired", "replay: go run ./cmd/sqstress -chaos -seed 7 -cores stack"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, text)
		}
	}
}
